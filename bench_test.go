// Package repro_test is the benchmark harness: one benchmark per paper
// table and figure (regenerating its rows via the experiment drivers) plus
// the ablation studies listed in DESIGN.md and throughput benchmarks for
// the substrates (simulator event rate, real kernel grind time, model
// evaluation cost at full machine scale).
//
// Run with: go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fitting"
	"repro/internal/grid"
	"repro/internal/logp"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/sweep"
)

// benchDriver runs an experiment driver once per iteration.
func benchDriver(b *testing.B, id string, quick bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run(id, quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// --- Section 3: communication models ---

func BenchmarkTable2Fit(b *testing.B) { benchDriver(b, "table2", false) }

func BenchmarkFig3aOffNode(b *testing.B) { benchDriver(b, "fig3a", false) }

func BenchmarkFig3bOnChip(b *testing.B) { benchDriver(b, "fig3b", false) }

func BenchmarkAllReduce(b *testing.B) { benchDriver(b, "allreduce", true) }

// --- Section 4: model validation (model vs discrete-event simulator) ---

func benchValidate(b *testing.B, bm apps.Benchmark, p int) {
	b.Helper()
	mach := machine.XT4()
	var lastErr float64
	for i := 0; i < b.N; i++ {
		pt, err := experiments.CompareOne(bm, mach, p, 1)
		if err != nil {
			b.Fatal(err)
		}
		lastErr = pt.RelErr
	}
	b.ReportMetric(lastErr*100, "model-err-%")
}

func BenchmarkValidateLU(b *testing.B) { benchValidate(b, apps.LU(grid.Cube(96)), 256) }

func BenchmarkValidateSweep3D(b *testing.B) { benchValidate(b, apps.Sweep3D(grid.Cube(96), 2), 256) }

func BenchmarkValidateChimaera(b *testing.B) { benchValidate(b, apps.Chimaera(grid.Cube(96), 1), 256) }

// --- Section 5: application and platform design figures ---

func BenchmarkFig5Htile(b *testing.B) { benchDriver(b, "fig5", false) }

func BenchmarkFig6Sizing(b *testing.B) { benchDriver(b, "fig6", true) }

func BenchmarkFig7Throughput(b *testing.B) { benchDriver(b, "fig7", false) }

func BenchmarkFig8PartitionMetrics(b *testing.B) { benchDriver(b, "fig8", false) }

func BenchmarkFig9OptimalJobs(b *testing.B) { benchDriver(b, "fig9", false) }

func BenchmarkFig10Multicore(b *testing.B) { benchDriver(b, "fig10", false) }

func BenchmarkFig11Breakdown(b *testing.B) { benchDriver(b, "fig11", false) }

func BenchmarkFig12PipelineFill(b *testing.B) { benchDriver(b, "fig12", false) }

func BenchmarkTable4Baseline(b *testing.B) { benchDriver(b, "table4", false) }

// BenchmarkFig6Measured regenerates Figure 6's "measured" point by
// simulating a full iteration of Sweep3D 10⁹ cells on 1024 dual-core
// processors. This is the heaviest simulation in the harness.
func BenchmarkFig6Measured(b *testing.B) {
	if testing.Short() {
		b.Skip("heavy simulation")
	}
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig6Data([]int{1024}, []int{1024})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].MeasuredDays, "days")
	}
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationSyncTerms quantifies the SP/2 handshake back-propagation
// terms the paper omits on the XT4 (Section 4.2).
func BenchmarkAblationSyncTerms(b *testing.B) {
	bm := apps.Sweep3D(grid.Cube(96), 2)
	dec := grid.MustDecompose(grid.Cube(96), 16, 16)
	var frac float64
	for i := 0; i < b.N; i++ {
		m := core.New(bm.App, machine.XT4())
		plain, err := m.Evaluate(dec)
		if err != nil {
			b.Fatal(err)
		}
		m.Opts.SyncTerms = true
		syn, err := m.Evaluate(dec)
		if err != nil {
			b.Fatal(err)
		}
		frac = (syn.Total - plain.Total) / plain.Total
	}
	b.ReportMetric(frac*100, "sync-cost-%")
}

// BenchmarkAblationContention quantifies the Table 6 shared-bus contention
// terms on the dual-core XT4.
func BenchmarkAblationContention(b *testing.B) {
	bm := apps.Sweep3D(grid.Cube(96), 2)
	dec := grid.MustDecompose(grid.Cube(96), 16, 16)
	var frac float64
	for i := 0; i < b.N; i++ {
		m := core.New(bm.App, machine.XT4())
		with, err := m.Evaluate(dec)
		if err != nil {
			b.Fatal(err)
		}
		m.Opts.NoContention = true
		without, err := m.Evaluate(dec)
		if err != nil {
			b.Fatal(err)
		}
		frac = (with.Total - without.Total) / without.Total
	}
	b.ReportMetric(frac*100, "contention-cost-%")
}

// BenchmarkAblationOnChip quantifies the benefit the on-chip communication
// path contributes to the pipeline fill on dual-core nodes.
func BenchmarkAblationOnChip(b *testing.B) {
	bm := apps.Sweep3D(grid.Cube(96), 2)
	dec := grid.MustDecompose(grid.Cube(96), 16, 16)
	var frac float64
	for i := 0; i < b.N; i++ {
		m := core.New(bm.App, machine.XT4())
		with, err := m.Evaluate(dec)
		if err != nil {
			b.Fatal(err)
		}
		m.Opts.ForceOffNode = true
		off, err := m.Evaluate(dec)
		if err != nil {
			b.Fatal(err)
		}
		frac = (off.FillTimePerIter - with.FillTimePerIter) / with.FillTimePerIter
	}
	b.ReportMetric(frac*100, "onchip-fill-benefit-%")
}

// BenchmarkAblationRendezvousCrossover sweeps message sizes around the
// 1 KB protocol threshold to expose the eager/rendezvous crossover.
func BenchmarkAblationRendezvousCrossover(b *testing.B) {
	mach := machine.XT4()
	var jump float64
	for i := 0; i < b.N; i++ {
		small, err := fitting.PingPong(mach, logp.OffNode, 1024, 4)
		if err != nil {
			b.Fatal(err)
		}
		large, err := fitting.PingPong(mach, logp.OffNode, 1025, 4)
		if err != nil {
			b.Fatal(err)
		}
		jump = large - small
	}
	b.ReportMetric(jump, "handshake-µs")
}

// --- Substrate throughput ---

// BenchmarkModelEvaluation128K measures the cost of one plug-and-play model
// evaluation at full machine scale (the StartP recurrence over 512×256
// processors).
func BenchmarkModelEvaluation128K(b *testing.B) {
	bm := apps.Sweep3D(grid.NewGrid(1000, 1000, 1000), 2)
	m := core.New(bm.App, machine.XT4())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.EvaluateP(131072); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignExample measures batch throughput of the campaign
// engine on the built-in example sweep (24 model+simulator runs over
// apps × machines × ranks × LogGP overrides), with each worker reusing one
// simulator across runs. The runs/s metric is what cmd/benchjson tracks.
func BenchmarkCampaignExample(b *testing.B) {
	runs, err := campaign.Example().Expand()
	if err != nil {
		b.Fatal(err)
	}
	eng := campaign.Engine{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(runs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(runs)*b.N)/b.Elapsed().Seconds(), "runs/s")
}

// BenchmarkCampaignSerialReuse measures the per-run cost of the
// simulator-reuse path itself: one worker, back-to-back runs, no pool
// overhead.
func BenchmarkCampaignSerialReuse(b *testing.B) {
	runs, err := campaign.Example().Expand()
	if err != nil {
		b.Fatal(err)
	}
	eng := campaign.Engine{Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(runs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(runs)*b.N)/b.Elapsed().Seconds(), "runs/s")
}

// BenchmarkSimulatorEventRate measures discrete-event throughput on a
// Sweep3D iteration at P=256.
func BenchmarkSimulatorEventRate(b *testing.B) {
	g := grid.Cube(64)
	bm := apps.Sweep3D(g, 2)
	mach := machine.XT4()
	dec := grid.MustDecompose(g, 16, 16)
	var events uint64
	for i := 0; i < b.N; i++ {
		sched, err := bm.Schedule(dec, 1)
		if err != nil {
			b.Fatal(err)
		}
		topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
		sim := simmpi.New(topo)
		for r, p := range sched.Programs() {
			sim.SetProgram(r, p)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

// benchParallelEventRate measures aggregate discrete-event throughput of a
// huge Sweep3D run — 65,536 ranks on a 256×256 decomposition — at the given
// shard count. Setup (schedule expansion, topology and program installation)
// is excluded from the timer so the metric isolates Run itself; shards=1 is
// the serial reference the speedup is read against.
func benchParallelEventRate(b *testing.B, shards int) {
	g := grid.NewGrid(256, 256, 32)
	bm := apps.Sweep3D(g, 2)
	mach := machine.XT4()
	dec := grid.MustDecompose(g, 256, 256)
	var events, windows, stalls uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sched, err := bm.Schedule(dec, 1)
		if err != nil {
			b.Fatal(err)
		}
		topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
		sim, err := simmpi.NewWithOptions(topo, simmpi.Options{Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		for r, p := range sched.Programs() {
			sim.SetProgram(r, p)
		}
		b.StartTimer()
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
		_, windows, stalls = sim.ParallelStats()
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	if windows > 0 {
		b.ReportMetric(float64(stalls)/float64(windows), "stalls/window")
	}
}

// BenchmarkParallelEventRate is the conservative-parallel headline: the
// 64K-rank run of benchParallelEventRate across shard counts. The shards=4
// aggregate events/s is the number tracked by cmd/benchjson.
func BenchmarkParallelEventRate(b *testing.B) {
	if testing.Short() {
		b.Skip("heavy simulation")
	}
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			benchParallelEventRate(b, k)
		})
	}
}

// BenchmarkTransportKernel measures the real transport kernel's per-cell
// cost (the quantity the model takes as Wg).
func BenchmarkTransportKernel(b *testing.B) {
	g := grid.Cube(48)
	p := sweep.NewTransportProblem(g, 6)
	octs := sweep.Octants([]grid.Corner{grid.NW, grid.SE})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SolveSequential(octs)
	}
	cells := float64(g.Cells()) * float64(len(octs))
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/cells, "ns/cell-visit")
}

// BenchmarkTransportKernelParallel measures the goroutine-parallel
// transport sweep on a 4×4 worker grid.
func BenchmarkTransportKernelParallel(b *testing.B) {
	g := grid.Cube(48)
	p := sweep.NewTransportProblem(g, 6)
	dec := grid.MustDecompose(g, 4, 4)
	octs := sweep.Octants([]grid.Corner{grid.NW, grid.SE})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveParallel(dec, 4, octs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSORKernel measures the LU-like substitution kernel.
func BenchmarkSSORKernel(b *testing.B) {
	p := sweep.NewSSORProblem(grid.Cube(48))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SolveSequential()
	}
}

// BenchmarkAllReduceSim measures the native collective at P=1024.
func BenchmarkAllReduceSim(b *testing.B) {
	mach := machine.XT4()
	for i := 0; i < b.N; i++ {
		topo := simnet.NewTopology(mach.Params, 1024, simnet.LinearPlacement(mach))
		sim := simmpi.New(topo)
		for r := 0; r < 1024; r++ {
			sim.SetProgram(r, simmpi.Ops(simmpi.AllReduce(8)))
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPingPongSim measures raw simulated message throughput.
func BenchmarkPingPongSim(b *testing.B) {
	mach := machine.XT4()
	for i := 0; i < b.N; i++ {
		if _, err := fitting.PingPong(mach, logp.OffNode, 4096, 100); err != nil {
			b.Fatal(err)
		}
	}
}
