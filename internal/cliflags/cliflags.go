// Package cliflags is the shared flag surface of the simulator commands.
// The observability knobs (-hist, -chrome-trace, -sample-every,
// -sample-out, -trace-windows), the execution knobs (-workers, -shards)
// and the artifact writer used to emit trace and sample files had grown
// near-identical copies in cmd/campaign, cmd/sweepsim and cmd/campaignd;
// this package keeps one definition of each so every command spells the
// same flag the same way with the same help text. The profiling flags
// already have a shared home in internal/prof — register them alongside
// these with prof.Register.
package cliflags

import (
	"flag"
	"os"

	"repro/internal/obs"
)

// ObsFlags are the observability flags shared by the simulator commands.
type ObsFlags struct {
	// Hist attaches duration-histogram percentiles to results.
	Hist bool
	// ChromeTrace, if non-empty, is the Chrome trace-event timeline path.
	ChromeTrace string
	// SampleEvery, if positive, samples time-series metrics every Δt µs.
	SampleEvery float64
	// SampleOut is the CSV path -sample-every writes to.
	SampleOut string
	// TraceWindows includes per-shard lookahead-window tracks in the
	// timeline (these depend on the shard count).
	TraceWindows bool
}

// histUsage is the one help text of -hist, shared by RegisterObs and
// RegisterHist so every command documents the flag identically.
const histUsage = "attach duration-histogram percentiles (recv wait, message latency, link delay)"

// RegisterHist declares the standalone -hist flag on fs — for commands
// (campaignd) that collect histograms without the rest of the
// observability surface.
func RegisterHist(fs *flag.FlagSet) *bool {
	return fs.Bool("hist", false, histUsage)
}

// RegisterObs declares the shared observability flags on fs.
func RegisterObs(fs *flag.FlagSet) *ObsFlags {
	var o ObsFlags
	fs.BoolVar(&o.Hist, "hist", false, histUsage)
	fs.StringVar(&o.ChromeTrace, "chrome-trace", "", "write a Chrome trace-event timeline (load in Perfetto) to this file")
	fs.Float64Var(&o.SampleEvery, "sample-every", 0, "sample time-series metrics every Δt µs into -sample-out")
	fs.StringVar(&o.SampleOut, "sample-out", "samples.csv", "time-series CSV path for -sample-every")
	fs.BoolVar(&o.TraceWindows, "trace-windows", false, "include per-shard lookahead-window tracks in -chrome-trace (these depend on -shards)")
	return &o
}

// Recording reports whether a flight recorder is needed: a timeline or
// time-series output was requested.
func (o *ObsFlags) Recording() bool {
	return o.ChromeTrace != "" || o.SampleEvery > 0
}

// Recorder builds the flight recorder the flags call for, or nil when no
// recording was requested. Histograms are not enabled here — campaign-style
// commands give every run its own histogram recorder instead.
func (o *ObsFlags) Recorder() *obs.Recorder {
	if !o.Recording() {
		return nil
	}
	return &obs.Recorder{Spans: true, Messages: true, Links: true, Windows: o.TraceWindows}
}

// WriteArtifacts writes the timeline and sample artifacts the flags
// requested from rec, with paths transformed by pathFn (the identity when
// nil — campaign ranges use it to keep per-range artifacts apart).
func (o *ObsFlags) WriteArtifacts(rec *obs.Recorder, topt obs.TimelineOptions, pathFn func(string) string) error {
	if rec == nil {
		return nil
	}
	if pathFn == nil {
		pathFn = func(p string) string { return p }
	}
	if o.ChromeTrace != "" {
		if err := WriteArtifact(pathFn(o.ChromeTrace), func(f *os.File) error {
			return obs.WriteTimeline(f, rec, topt)
		}); err != nil {
			return err
		}
	}
	if o.SampleEvery > 0 {
		if err := WriteArtifact(pathFn(o.SampleOut), func(f *os.File) error {
			return obs.WriteSamples(f, rec, o.SampleEvery)
		}); err != nil {
			return err
		}
	}
	return nil
}

// RegisterWorkers declares the shared -workers flag on fs.
func RegisterWorkers(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "worker pool size (default: GOMAXPROCS)")
}

// RegisterShards declares the shared -shards flag on fs. def is the
// default shard count: campaign-style commands use 0 ("inherit from the
// spec"), single-run commands use 1 (serial).
func RegisterShards(fs *flag.FlagSet, def int) *int {
	return fs.Int("shards", def, "conservative-parallel shard count (results are bit-identical for every sharded count)")
}

// WriteArtifact creates path (parents included) and streams one artifact
// into it.
func WriteArtifact(path string, write func(*os.File) error) error {
	if err := obs.EnsureParent(path); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
