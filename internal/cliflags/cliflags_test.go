package cliflags

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestSharedFlagSurface: every command registering through this package
// gets the same spellings, and the parsed values land where they should.
func TestSharedFlagSurface(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	o := RegisterObs(fs)
	workers := RegisterWorkers(fs)
	shards := RegisterShards(fs, 1)

	for _, name := range []string{"hist", "chrome-trace", "sample-every", "sample-out", "trace-windows", "workers", "shards"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	err := fs.Parse([]string{
		"-hist", "-chrome-trace=tl.json", "-sample-every=5", "-sample-out=s.csv",
		"-trace-windows", "-workers=6", "-shards=4",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Hist || o.ChromeTrace != "tl.json" || o.SampleEvery != 5 || o.SampleOut != "s.csv" || !o.TraceWindows {
		t.Errorf("obs flags parsed as %+v", *o)
	}
	if *workers != 6 || *shards != 4 {
		t.Errorf("workers=%d shards=%d", *workers, *shards)
	}
	if !o.Recording() {
		t.Error("Recording() false with -chrome-trace set")
	}
	rec := o.Recorder()
	if rec == nil || !rec.Spans || !rec.Messages || !rec.Links || !rec.Windows {
		t.Errorf("Recorder() = %+v", rec)
	}
}

func TestRecorderNilWithoutRecordingFlags(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	o := RegisterObs(fs)
	if err := fs.Parse([]string{"-hist"}); err != nil {
		t.Fatal(err)
	}
	if o.Recording() || o.Recorder() != nil {
		t.Error("-hist alone must not build a flight recorder")
	}
}

func TestWriteArtifactCreatesParents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a", "b", "artifact.txt")
	err := WriteArtifact(path, func(f *os.File) error {
		_, err := f.WriteString("x")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "x" {
		t.Errorf("artifact content %q, err %v", b, err)
	}
}

func TestRangePath(t *testing.T) {
	for _, tc := range []struct {
		in       string
		lo, hi   int
		expected string
	}{
		{"trace.json", 60, 120, "trace.60-120.json"},
		{"out/samples.csv", 0, 6, "out/samples.0-6.csv"},
		{"noext", 1, 2, "noext.1-2"},
	} {
		if got := obs.RangePath(tc.in, tc.lo, tc.hi); got != tc.expected {
			t.Errorf("RangePath(%q,%d,%d) = %q, want %q", tc.in, tc.lo, tc.hi, got, tc.expected)
		}
	}
}
