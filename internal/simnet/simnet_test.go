package simnet

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/logp"
	"repro/internal/machine"
)

func TestGridPlacementRectangles(t *testing.T) {
	// On a 4×4 grid of a 2×2-core machine, each node hosts a 2×2 block.
	dec := grid.MustDecompose(grid.Cube(16), 4, 4)
	mach, err := machine.XT4MultiCore(4)
	if err != nil {
		t.Fatal(err)
	}
	place := GridPlacement(dec, mach)
	nodeOf := func(i, j int) int {
		n, _ := place(dec.Rank(grid.Coord{I: i, J: j}))
		return n
	}
	if nodeOf(1, 1) != nodeOf(2, 2) {
		t.Error("(1,1) and (2,2) should share a node")
	}
	if nodeOf(1, 1) == nodeOf(3, 1) {
		t.Error("(1,1) and (3,1) should be on different nodes")
	}
	if nodeOf(1, 1) == nodeOf(1, 3) {
		t.Error("(1,1) and (1,3) should be on different nodes")
	}
	// All 16 ranks over 4 nodes.
	topo := NewTopology(mach.Params, dec.P(), place)
	if got := topo.Nodes(); got != 4 {
		t.Errorf("Nodes = %d, want 4", got)
	}
}

func TestGridPlacementDualCoreXT4(t *testing.T) {
	// 1×2 rectangles: vertical neighbour pairs share nodes.
	dec := grid.MustDecompose(grid.Cube(16), 4, 4)
	mach := machine.XT4()
	topo := NewTopology(mach.Params, dec.P(), GridPlacement(dec, mach))
	r := func(i, j int) int { return dec.Rank(grid.Coord{I: i, J: j}) }
	if !topo.SameNode(r(1, 1), r(1, 2)) {
		t.Error("(1,1)-(1,2) should share a node on 1x2 cores")
	}
	if topo.SameNode(r(1, 2), r(1, 3)) {
		t.Error("(1,2)-(1,3) must not share a node")
	}
	if topo.SameNode(r(1, 1), r(2, 1)) {
		t.Error("horizontal neighbours must not share a node")
	}
	if topo.Path(r(1, 1), r(1, 2)) != logp.OnChip {
		t.Error("vertical pair should be on-chip")
	}
	if topo.Path(r(1, 1), r(2, 1)) != logp.OffNode {
		t.Error("horizontal pair should be off-node")
	}
}

func TestLinearPlacement(t *testing.T) {
	mach := machine.XT4()
	topo := NewTopology(mach.Params, 6, LinearPlacement(mach))
	if !topo.SameNode(0, 1) || topo.SameNode(1, 2) || !topo.SameNode(4, 5) {
		t.Error("linear placement pairs wrong")
	}
	if topo.Nodes() != 3 {
		t.Errorf("Nodes = %d", topo.Nodes())
	}
}

func TestSpreadPlacement(t *testing.T) {
	topo := NewTopology(logp.XT4(), 5, SpreadPlacement())
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			if topo.SameNode(a, b) {
				t.Fatalf("spread placement put %d and %d on one node", a, b)
			}
		}
	}
}

func TestBusGroups(t *testing.T) {
	// A 16-core node with 4 bus groups: cores 0–3 share a bus, 4–7 the
	// next, etc. Acquisitions on different buses do not queue each other.
	mach, err := machine.XT4MultiCoreGrouped(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	topo := NewTopology(mach.Params, 16, LinearPlacement(mach))
	if w := topo.AcquireBus(0, 0, 4096); w != 0 {
		t.Errorf("first acquire waited %v", w)
	}
	if w := topo.AcquireBus(1, 0, 4096); w <= 0 {
		t.Error("same-bus acquire should wait")
	}
	if w := topo.AcquireBus(4, 0, 4096); w != 0 {
		t.Errorf("different-bus acquire waited %v", w)
	}
	req, q, busy, waited := topo.BusStats()
	if req != 3 || q != 1 || busy <= 0 || waited <= 0 {
		t.Errorf("BusStats = %d %d %v %v", req, q, busy, waited)
	}
}

func TestBusOccupancyIsPaperI(t *testing.T) {
	p := logp.XT4()
	topo := NewTopology(p, 2, SpreadPlacement())
	want := p.Odma() + 4096*p.Gdma
	if got := topo.BusOccupancy(4096); got != want {
		t.Errorf("BusOccupancy = %v, want I = odma + size×Gdma = %v", got, want)
	}
}

func TestNewTopologyPanicsOnZeroRanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTopology(logp.XT4(), 0, SpreadPlacement())
}
