// Package simnet models the hardware substrate of a multi-core parallel
// machine for the discrete-event MPI simulator: the placement of logical
// ranks onto nodes and cores, the per-node (or per-core-group) shared
// memory bus, and the raw LogGP-timed message segments.
//
// The design follows paper Sections 3 and 4.3: an uncontended message
// follows the LogGP equations of Table 1 exactly, while every off-node DMA
// and every on-chip large-message DMA must pass through the owning node's
// shared bus, which is a FCFS resource. Contention therefore appears as
// emergent queueing delay rather than the model's closed-form I terms,
// letting experiments quantify the abstraction error of Table 6.
package simnet

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/grid"
	"repro/internal/logp"
	"repro/internal/machine"
	"repro/internal/topo"
)

// Placement maps a logical rank to its node and to the bus group within
// that node.
type Placement func(rank int) (node, busGroup int)

// GridPlacement places the ranks of a 2-D wavefront decomposition onto a
// machine so that each node's cores form a Cx × Cy rectangle of the
// logical processor grid (paper Section 4.3). Bus groups within a node
// split the rectangle row-wise.
func GridPlacement(dec grid.Decomposition, m machine.Machine) Placement {
	nodesX := ceilDiv(dec.N, m.Cx)
	coresPerBus := m.CoresPerBus()
	return func(rank int) (node, busGroup int) {
		c := dec.CoordOf(rank)
		nodeX := (c.I - 1) / m.Cx
		nodeY := (c.J - 1) / m.Cy
		node = nodeY*nodesX + nodeX
		ci := (c.I - 1) % m.Cx
		cj := (c.J - 1) % m.Cy
		coreIdx := cj*m.Cx + ci
		busGroup = coreIdx / coresPerBus
		return node, busGroup
	}
}

// LinearPlacement packs ranks onto nodes in linear order: ranks
// [k·C, (k+1)·C) share node k. It is used by microbenchmarks such as
// ping-pong where no 2-D structure exists.
func LinearPlacement(m machine.Machine) Placement {
	coresPerBus := m.CoresPerBus()
	return func(rank int) (node, busGroup int) {
		node = rank / m.CoresPerNode
		core := rank % m.CoresPerNode
		return node, core / coresPerBus
	}
}

// SpreadPlacement places every rank on its own node (one core per node,
// Section 4.2's model baseline).
func SpreadPlacement() Placement {
	return func(rank int) (node, busGroup int) { return rank, 0 }
}

// Topology is the instantiated hardware substrate for a fixed rank count.
//
// Params is frozen at NewTopology: hot-path costs (BusOccupancy) are
// precomputed from it, so mutating the field afterwards is not supported —
// build a new Topology instead.
type Topology struct {
	Params  logp.Params
	ranks   int
	occBase float64 // Odma(), precomputed: BusOccupancy is hot-path
	occGdma float64 // Params.Gdma, precomputed alongside occBase
	nodeOf  []int32
	busOf   []int32 // global bus index
	buses   []des.Resource
	ic      *topo.Interconnect // nil: flat wire between nodes (paper model)
}

// NewTopology resolves a placement for the given number of ranks.
func NewTopology(p logp.Params, ranks int, place Placement) *Topology {
	if ranks <= 0 {
		panic(fmt.Sprintf("simnet: invalid rank count %d", ranks))
	}
	t := &Topology{
		Params:  p,
		ranks:   ranks,
		occBase: p.Odma(),
		occGdma: p.Gdma,
		nodeOf:  make([]int32, ranks),
		busOf:   make([]int32, ranks),
	}
	busIndex := map[[2]int]int32{}
	for r := 0; r < ranks; r++ {
		node, bus := place(r)
		key := [2]int{node, bus}
		id, ok := busIndex[key]
		if !ok {
			id = int32(len(busIndex))
			busIndex[key] = id
		}
		t.nodeOf[r] = int32(node)
		t.busOf[r] = id
	}
	t.buses = make([]des.Resource, len(busIndex))
	return t
}

// NewMachineTopology builds the complete hardware substrate of a machine
// for a grid decomposition: rank placement onto its nodes and buses plus
// its inter-node interconnect, if any. Every simulation surface that takes
// a machine.Machine should construct its topology here — sites that call
// NewTopology directly bypass the machine's interconnect spec.
func NewMachineTopology(m machine.Machine, dec grid.Decomposition) (*Topology, error) {
	t := NewTopology(m.Params, dec.P(), GridPlacement(dec, m))
	if err := t.AttachInterconnect(m.Interconnect); err != nil {
		return nil, err
	}
	return t, nil
}

// AttachInterconnect instantiates an inter-node link fabric for the
// topology's node count and routes every off-node message segment across it
// (see AcquireLinks). The bus-only spec (topo.Spec{}) is a no-op, keeping
// the flat-wire behaviour bit-identical.
func (t *Topology) AttachInterconnect(spec topo.Spec) error {
	if spec.Kind == topo.Bus {
		t.ic = nil
		return nil
	}
	nodes := 0
	for _, n := range t.nodeOf {
		if int(n) >= nodes {
			nodes = int(n) + 1
		}
	}
	ic, err := topo.New(spec, nodes, t.Params.G)
	if err != nil {
		return err
	}
	t.ic = ic
	return nil
}

// Interconnect returns the attached link fabric, or nil for the flat-wire
// network.
func (t *Topology) Interconnect() *topo.Interconnect { return t.ic }

// Reset returns every shared-bus resource (and every interconnect link) to
// the idle, zero-statistics state so the topology can serve a fresh
// simulation on a new virtual time axis. Placement and parameters are
// immutable and survive the reset.
func (t *Topology) Reset() {
	for i := range t.buses {
		t.buses[i] = des.Resource{}
	}
	t.ic.Reset()
}

// Ranks returns the number of ranks in the topology.
func (t *Topology) Ranks() int { return t.ranks }

// NodeOf returns the node hosting rank r.
func (t *Topology) NodeOf(r int) int { return int(t.nodeOf[r]) }

// SameNode reports whether ranks a and b are cores of the same node, in
// which case the on-chip communication model of Table 1(b) applies.
func (t *Topology) SameNode(a, b int) bool { return t.nodeOf[a] == t.nodeOf[b] }

// Path returns the communication path between two ranks.
func (t *Topology) Path(a, b int) logp.Path {
	if t.SameNode(a, b) {
		return logp.OnChip
	}
	return logp.OffNode
}

// BusOccupancy returns the bus holding time of one DMA of the given message
// size: odma + size × Gdma, the paper's per-interference cost I (Table 6).
func (t *Topology) BusOccupancy(size int) float64 {
	return t.occBase + float64(size)*t.occGdma
}

// AcquireBus reserves rank r's shared bus at virtual time now for one DMA
// of the given size and returns the queueing delay experienced. Uncontended
// acquisitions return zero: the nominal DMA cost is already inside the
// LogGP per-message equations, so only excess waiting is added to message
// timelines.
func (t *Topology) AcquireBus(r int, now float64, size int) (wait float64) {
	return t.buses[t.busOf[r]].Acquire(now, t.BusOccupancy(size))
}

// AcquireLinks routes one off-node message segment of the given size from
// rank a's node to rank b's node across the interconnect at virtual time
// now, and returns the extra delay relative to the flat wire: link queueing
// plus per-hop latency beyond the first hop. Without an attached
// interconnect (or for same-node traffic) it returns exactly zero, so the
// caller's timing arithmetic is bit-identical to the flat-wire model.
func (t *Topology) AcquireLinks(a, b int, now float64, size int) float64 {
	if t.ic == nil {
		return 0
	}
	return t.ic.Acquire(int(t.nodeOf[a]), int(t.nodeOf[b]), now, size)
}

// SetLinkTracer installs a per-reservation tracer on the attached
// interconnect; pass nil to disable. A no-op on the flat-wire network.
func (t *Topology) SetLinkTracer(fn topo.LinkTracer) { t.ic.SetLinkTracer(fn) }

// LinkStats aggregates contention counters over all interconnect links;
// all-zero for the flat-wire network.
func (t *Topology) LinkStats() (requests, queued uint64, busy, waited float64) {
	return t.ic.Stats()
}

// BusStats aggregates contention counters over all buses.
func (t *Topology) BusStats() (requests, queued uint64, busy, waited float64) {
	for i := range t.buses {
		rq, q, b, w := t.buses[i].Stats()
		requests += rq
		queued += q
		busy += b
		waited += w
	}
	return requests, queued, busy, waited
}

// Lookahead returns the minimum virtual-time distance any interaction
// between ranks of distinct nodes travels — the conservative-PDES lookahead
// for shard partitions aligned on node boundaries. Every off-node event
// chain in the LogGP protocol (eager flight, RTS, CTS, rendezvous data)
// carries at least one +L wire-latency term, and bus or link queueing only
// adds delay on top, so the wire latency L is a sound static bound. A zero
// L offers no lookahead; callers must fall back to serial execution.
func (t *Topology) Lookahead() float64 { return t.Params.L }

// Nodes returns the number of distinct nodes in use.
func (t *Topology) Nodes() int {
	seen := map[int32]struct{}{}
	for _, n := range t.nodeOf {
		seen[n] = struct{}{}
	}
	return len(seen)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
