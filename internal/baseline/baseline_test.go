package baseline

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/logp"
	"repro/internal/machine"
	"repro/internal/stats"
)

func config(g grid.Grid, n, m int, p logp.Params) Sweep3DConfig {
	return Sweep3DConfig{
		Grid: g, N: n, M: m,
		WgAngle: 0.123,
		MK:      4, MMI: 3, MMO: 6,
		Params: p,
	}
}

func TestValidate(t *testing.T) {
	good := config(grid.Cube(48), 4, 4, logp.XT4())
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.N = 1
	if bad.Validate() == nil {
		t.Error("n=1 accepted (Table 4 model needs n,m > 1)")
	}
	bad = good
	bad.MMO = 5 // not divisible by mmi=3
	if bad.Validate() == nil {
		t.Error("invalid angle blocking accepted")
	}
	bad = good
	bad.WgAngle = -1
	if bad.Validate() == nil {
		t.Error("negative WgAngle accepted")
	}
	bad = good
	bad.Grid = grid.Grid{}
	if bad.Validate() == nil {
		t.Error("invalid grid accepted")
	}
}

func TestEvaluateComponents(t *testing.T) {
	c := config(grid.Cube(48), 4, 4, logp.XT4())
	r, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	// W = Wg × mmi × mk × jt × it = 0.123 × 3 × 4 × 12 × 12.
	want := 0.123 * 3 * 4 * 12 * 12
	if math.Abs(r.W-want) > 1e-9 {
		t.Errorf("W = %v, want %v", r.W, want)
	}
	if r.StartP1M <= 0 || r.StartPNM <= r.StartP1M {
		t.Errorf("fills: StartP(1,m)=%v StartP(n,m)=%v", r.StartP1M, r.StartPNM)
	}
	if r.Total != 2*(r.Time56+r.Time78) {
		t.Errorf("(s5) broken: %v vs %v", r.Total, 2*(r.Time56+r.Time78))
	}
}

func TestSyncTermsIncreaseTime(t *testing.T) {
	c := config(grid.Cube(48), 8, 8, logp.SP2())
	plain, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	c.SyncTerms = true
	sync, err := Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	if sync.Total <= plain.Total {
		t.Errorf("sync terms did not increase time: %v vs %v", sync.Total, plain.Total)
	}
	// On the SP/2 the sync terms are a noticeable fraction; on the XT4
	// they are negligible (paper Section 4.2).
	spFrac := (sync.Total - plain.Total) / plain.Total
	cx := config(grid.Cube(48), 8, 8, logp.XT4())
	cx.SyncTerms = true
	xs, err := Evaluate(cx)
	if err != nil {
		t.Fatal(err)
	}
	cx.SyncTerms = false
	xp, err := Evaluate(cx)
	if err != nil {
		t.Fatal(err)
	}
	xtFrac := (xs.Total - xp.Total) / xp.Total
	if xtFrac >= spFrac/5 {
		t.Errorf("XT4 sync fraction %v should be far below SP/2's %v", xtFrac, spFrac)
	}
	if xtFrac > 0.05 {
		t.Errorf("XT4 sync fraction %v should be small", xtFrac)
	}
}

func TestBaselineAgreesWithPlugAndPlay(t *testing.T) {
	// On Sweep3D — the one code the Table 4 model covers — the two models
	// must agree closely (the plug-and-play model generalises it).
	g := grid.Cube(96)
	for _, p := range []int{16, 64, 256} {
		dec, err := grid.SquareDecomposition(g, p)
		if err != nil {
			t.Fatal(err)
		}
		c := config(g, dec.N, dec.M, logp.XT4())
		base, err := Evaluate(c)
		if err != nil {
			t.Fatal(err)
		}
		bm := apps.Sweep3D(g, c.MK*c.MMI/c.MMO).WithIterations(1)
		// Match the baseline's per-angle work and drop the all-reduce,
		// which the Table 4 model does not include.
		app := bm.App
		app.Wg = c.WgAngle * float64(c.MMO)
		app.NonWavefront = nil
		rep, err := core.New(app, machine.XT4SingleCore()).Evaluate(dec)
		if err != nil {
			t.Fatal(err)
		}
		if re := stats.RelErr(rep.TimePerIteration, base.Total); re > 0.1 {
			t.Errorf("P=%d: plug-and-play %v vs baseline %v (%.1f%%)",
				p, rep.TimePerIteration, base.Total, re*100)
		}
	}
}

func TestHoisieModels(t *testing.T) {
	c := HoisieConfig{N: 8, M: 8, Tiles: 32, TileWork: 10, CommCost: 2}
	sweep := HoisieSweep(c)
	want := float64(8+8-2+32) * 12
	if sweep != want {
		t.Errorf("HoisieSweep = %v, want %v", sweep, want)
	}
	iter := HoisieIteration(c, 8)
	if iter <= 8*float64(c.Tiles)*12 {
		t.Errorf("HoisieIteration = %v missing fill", iter)
	}
	// More sweeps cost more.
	if HoisieIteration(c, 2) >= HoisieIteration(c, 8) {
		t.Error("iteration time not increasing in sweeps")
	}
}
