// Package baseline implements the two previous-generation wavefront models
// the paper compares against:
//
//   - The Sundaram-Stukel & Vernon LogGP model of Sweep3D (PPoPP'99),
//     reproduced in paper Table 4 (equations s1–s5). It is specific to
//     Sweep3D's sweep structure and was developed for the IBM SP/2,
//     including handshake back-propagation synchronization terms.
//   - The Hoisie et al. single-sweep pipeline model (Int. J. HPC
//     Applications, 2000), which counts pipeline stages on the processor
//     array and multiplies by per-stage cost.
//
// Both serve as comparison baselines for the plug-and-play model in the
// experiments: the plug-and-play model reproduces their predictions where
// their assumptions hold, while also covering codes they cannot express.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/logp"
)

// Sweep3DConfig holds the inputs of the Table 4 model in its original
// parameterisation.
type Sweep3DConfig struct {
	// Grid is the problem size.
	Grid grid.Grid
	// N, M are the processor array dimensions (n columns × m rows).
	N, M int
	// WgAngle is the measured computation time per angle per cell, µs
	// (the Table 4 model's Wg; the plug-and-play model's Wg equals
	// WgAngle × MMO).
	WgAngle float64
	// MK is the tile height in cells, MMI the number of angles computed
	// before boundary values are sent, MMO the total angles per cell.
	MK, MMI, MMO int
	// Params are the platform LogGP parameters.
	Params logp.Params
	// SyncTerms includes the (m−1)L and (n−2)L handshake back-propagation
	// terms that were significant on the SP/2 (Table 4 equations s3, s4).
	SyncTerms bool
}

// Validate reports configuration errors.
func (c Sweep3DConfig) Validate() error {
	switch {
	case c.Grid.Nx <= 0 || c.Grid.Ny <= 0 || c.Grid.Nz <= 0:
		return fmt.Errorf("baseline: invalid grid %v", c.Grid)
	case c.N <= 1 || c.M <= 1:
		return fmt.Errorf("baseline: Table 4 model requires n, m > 1 (got %dx%d)", c.N, c.M)
	case c.WgAngle < 0:
		return fmt.Errorf("baseline: negative WgAngle")
	case c.MK <= 0 || c.MMI <= 0 || c.MMO <= 0 || c.MMO%c.MMI != 0:
		return fmt.Errorf("baseline: invalid angle blocking mk=%d mmi=%d mmo=%d", c.MK, c.MMI, c.MMO)
	}
	return nil
}

// Result is the Table 4 model output, in µs.
type Result struct {
	W        float64 // per-block work (s1)
	StartP1M float64 // pipeline fill to (1,m)
	StartPNM float64 // pipeline fill to (n,m)
	Time56   float64 // equation (s3)
	Time78   float64 // equation (s4)
	Total    float64 // equation (s5): one iteration, all 8 sweeps
}

// Evaluate computes the Table 4 model for one iteration of Sweep3D.
func Evaluate(c Sweep3DConfig) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	p := c.Params
	it := ceilDiv(c.Grid.Nx, c.N)
	jt := ceilDiv(c.Grid.Ny, c.M)
	kblocks := ceilDiv(c.Grid.Nz, c.MK)
	anglesFactor := float64(c.MMO) / float64(c.MMI)

	// (s1): W = Wg × mmi × mk × jt × it.
	w := c.WgAngle * float64(c.MMI) * float64(c.MK) * float64(jt) * float64(it)

	// Boundary message sizes for an mmi-angle, mk-cell block.
	sEW := 8 * c.MMI * c.MK * jt
	sNS := 8 * c.MMI * c.MK * it

	// (s2): StartP recurrence. All communication off-node (the SP/2 had
	// single-core nodes).
	start := startPRecurrence(c.N, c.M, w, p, sEW, sNS)
	s1m := start[idx(1, c.M, c.N)]
	snm := start[idx(c.N, c.M, c.N)]
	sn1m := start[idx(c.N-1, c.M, c.N)]

	sync3, sync4 := 0.0, 0.0
	if c.SyncTerms {
		sync3 = float64(c.M-1) * p.L
		sync4 = float64(c.M-1)*p.L + float64(c.N-2)*p.L
	}

	sendE := p.SendOffNode(sEW)
	recvW := p.ReceiveOffNode(sEW)
	recvN := p.ReceiveOffNode(sNS)

	// (s3): time until the corner processor on the main diagonal finishes
	// its stack of tiles in the sweep.
	time56 := s1m + 2*(w+sendE+recvN+sync3)*float64(kblocks)*anglesFactor

	// (s4): time until the sweep completely finishes on processor (n,m).
	time78 := sn1m + 2*(w+sendE+recvW+recvN+sync4)*float64(kblocks)*anglesFactor +
		recvW + w

	// (s5): total per-iteration time across the 8 sweeps.
	total := 2 * (time56 + time78)

	return Result{
		W:        w,
		StartP1M: s1m,
		StartPNM: snm,
		Time56:   time56,
		Time78:   time78,
		Total:    total,
	}, nil
}

// startPRecurrence evaluates equation (s2) over the full processor array
// and returns StartP values in row-major order (1-based coordinates).
func startPRecurrence(n, m int, w float64, p logp.Params, sEW, sNS int) []float64 {
	start := make([]float64, (n+1)*(m+1))
	totalE := p.TotalCommOffNode(sEW)
	totalS := p.TotalCommOffNode(sNS)
	recvN := p.ReceiveOffNode(sNS)
	sendE := p.SendOffNode(sEW)
	for j := 1; j <= m; j++ {
		for i := 1; i <= n; i++ {
			if i == 1 && j == 1 {
				start[idx(i, j, n)] = 0
				continue
			}
			west, north := math.Inf(-1), math.Inf(-1)
			if i > 1 {
				t := start[idx(i-1, j, n)] + w + totalE
				if j > 1 {
					t += recvN
				}
				west = t
			}
			if j > 1 {
				t := start[idx(i, j-1, n)] + w + totalS
				if i < n {
					t += sendE
				}
				north = t
			}
			start[idx(i, j, n)] = math.Max(west, north)
		}
	}
	return start
}

func idx(i, j, n int) int { return j*(n+1) + i }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// HoisieConfig parameterises the Hoisie et al. single-sweep pipeline model:
// on an n × m array, a sweep's completion time is
// (#pipeline stages) × (per-stage cost), where the stage count is
// (n + m − 2) + #tiles and the per-stage cost is the tile compute time plus
// the communication time of one boundary exchange.
type HoisieConfig struct {
	N, M     int
	Tiles    int     // tiles per stack (Nz/Htile)
	TileWork float64 // per-tile compute time, µs
	CommCost float64 // per-stage communication cost, µs
}

// HoisieSweep returns the single-sweep completion time of the Hoisie model.
func HoisieSweep(c HoisieConfig) float64 {
	stages := float64(c.N+c.M-2) + float64(c.Tiles)
	return stages * (c.TileWork + c.CommCost)
}

// HoisieIteration extends the single-sweep model to a full iteration with
// the given number of sweeps, assuming sweeps follow each other back to
// back (the customisation the paper notes the Hoisie model requires for
// each specific code).
func HoisieIteration(c HoisieConfig, sweeps int) float64 {
	fill := float64(c.N+c.M-2) * (c.TileWork + c.CommCost)
	stack := float64(c.Tiles) * (c.TileWork + c.CommCost)
	return fill + float64(sweeps)*stack + fill // fill in, pipelined sweeps, drain
}
