// Package metrics implements the procurement and configuration metrics of
// paper Section 5.2: simulation throughput (time steps solved per month),
// the response-time/throughput trade-off ratios R/X and R²/X for choosing
// partition sizes, and the optimal number of parallel simulations on a
// fixed platform (Figures 7–9).
package metrics

import (
	"fmt"
	"math"
)

// MicrosecondsPerMonth is the number of microseconds in a 30-day month.
const MicrosecondsPerMonth = 30 * 86400 * 1e6

// TimeStepsPerMonth converts a per-time-step execution time in µs into the
// number of time steps solved per month by one simulation.
func TimeStepsPerMonth(perStepMicros float64) float64 {
	if perStepMicros <= 0 {
		return math.Inf(1)
	}
	return MicrosecondsPerMonth / perStepMicros
}

// ErrorBand classifies an absolute relative model error into the accuracy
// bands the paper reports (Section 4: under 5% for LU, under 10% for the
// particle transport codes in high-performance configurations). Campaign
// summaries count runs per band to show where a model leaves its validated
// envelope.
func ErrorBand(absRelErr float64) string {
	e := math.Abs(absRelErr)
	switch {
	case e < 0.05:
		return "<5%"
	case e < 0.10:
		return "<10%"
	case e < 0.20:
		return "<20%"
	default:
		return ">=20%"
	}
}

// ErrorBandNames lists the ErrorBand labels in increasing-error order.
func ErrorBandNames() []string { return []string{"<5%", "<10%", "<20%", ">=20%"} }

// PartitionPoint is the throughput of one partitioning choice: Pavail
// processors split into Jobs equal partitions each running an independent
// simulation.
type PartitionPoint struct {
	Pavail    int
	Jobs      int
	Partition int     // processors per simulation
	R         float64 // execution time of one simulation (per unit of work), µs
	X         float64 // simulations completed per R: Jobs simulations finish every R
	StepsPerM float64 // time steps solved per month per simulation
	RoverX    float64 // R/X: response-time / throughput trade-off
	R2overX   float64 // R²/X: emphasises response time
}

// Evaluator returns the execution time in µs of one simulation on p
// processors (e.g. a closure over the plug-and-play model).
type Evaluator func(p int) (float64, error)

// Partitions evaluates running 1, 2, 4, ... jobs in parallel on equal
// splits of pavail processors (paper Figure 7).
func Partitions(pavail int, jobCounts []int, eval Evaluator) ([]PartitionPoint, error) {
	out := make([]PartitionPoint, 0, len(jobCounts))
	for _, jobs := range jobCounts {
		if jobs <= 0 || pavail%jobs != 0 {
			return nil, fmt.Errorf("metrics: cannot split %d processors into %d equal partitions", pavail, jobs)
		}
		part := pavail / jobs
		r, err := eval(part)
		if err != nil {
			return nil, err
		}
		// X: jobs simulations complete per time R, i.e. throughput in
		// simulations per µs is jobs/R.
		x := float64(jobs) / r
		out = append(out, PartitionPoint{
			Pavail:    pavail,
			Jobs:      jobs,
			Partition: part,
			R:         r,
			X:         x,
			StepsPerM: TimeStepsPerMonth(r),
			RoverX:    r / x,
			R2overX:   r * r / x,
		})
	}
	return out, nil
}

// Optimum identifies the partitioning that minimises the given criterion.
type Criterion int

// Partition-choice criteria (paper Figure 8): R/X balances response time
// against throughput; R²/X places greater emphasis on response time.
const (
	MinRoverX Criterion = iota
	MinR2overX
)

// String implements fmt.Stringer.
func (c Criterion) String() string {
	if c == MinR2overX {
		return "min R²/X"
	}
	return "min R/X"
}

// Optimal returns the partition point minimising the criterion.
func Optimal(points []PartitionPoint, c Criterion) (PartitionPoint, error) {
	if len(points) == 0 {
		return PartitionPoint{}, fmt.Errorf("metrics: no partition points")
	}
	best := points[0]
	for _, p := range points[1:] {
		switch c {
		case MinR2overX:
			if p.R2overX < best.R2overX {
				best = p
			}
		default:
			if p.RoverX < best.RoverX {
				best = p
			}
		}
	}
	return best, nil
}

// OptimalJobs sweeps the power-of-two job counts on pavail processors and
// returns the optimal number of parallel simulations under the criterion
// (paper Figure 9). minPartition bounds the smallest per-job partition
// considered.
func OptimalJobs(pavail, minPartition int, c Criterion, eval Evaluator) (PartitionPoint, error) {
	var jobs []int
	for j := 1; pavail/j >= minPartition; j *= 2 {
		if pavail%j == 0 {
			jobs = append(jobs, j)
		}
	}
	if len(jobs) == 0 {
		return PartitionPoint{}, fmt.Errorf("metrics: no feasible job counts for pavail=%d minPartition=%d", pavail, minPartition)
	}
	points, err := Partitions(pavail, jobs, eval)
	if err != nil {
		return PartitionPoint{}, err
	}
	return Optimal(points, c)
}

// Speedup returns T(base)/T(p) for a scaling curve expressed as a map from
// processor count to execution time.
func Speedup(times map[int]float64, base int) (map[int]float64, error) {
	tb, ok := times[base]
	if !ok {
		return nil, fmt.Errorf("metrics: no base point p=%d", base)
	}
	out := make(map[int]float64, len(times))
	for p, t := range times {
		if t <= 0 {
			return nil, fmt.Errorf("metrics: non-positive time at p=%d", p)
		}
		out[p] = tb / t
	}
	return out, nil
}

// DiminishingReturns returns the smallest processor count in the sorted
// sweep beyond which doubling processors improves execution time by less
// than the given fraction (e.g. 0.2 for 20%); it returns the last point if
// no such knee exists.
func DiminishingReturns(ps []int, times []float64, threshold float64) (int, error) {
	if len(ps) != len(times) || len(ps) == 0 {
		return 0, fmt.Errorf("metrics: invalid sweep")
	}
	for i := 0; i+1 < len(ps); i++ {
		if times[i] <= 0 {
			return 0, fmt.Errorf("metrics: non-positive time at p=%d", ps[i])
		}
		improvement := 1 - times[i+1]/times[i]
		if improvement < threshold {
			return ps[i], nil
		}
	}
	return ps[len(ps)-1], nil
}
