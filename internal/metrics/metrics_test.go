package metrics

import (
	"fmt"
	"math"
	"testing"
)

// perfectScaling models R(p) = k/p (ideal speedup).
func perfectScaling(k float64) Evaluator {
	return func(p int) (float64, error) { return k / float64(p), nil }
}

// saturatingScaling models R(p) = k/p + c (communication floor).
func saturatingScaling(k, c float64) Evaluator {
	return func(p int) (float64, error) { return k/float64(p) + c, nil }
}

func TestTimeStepsPerMonth(t *testing.T) {
	// One step per day → 30 steps per month.
	if got := TimeStepsPerMonth(86400 * 1e6); math.Abs(got-30) > 1e-9 {
		t.Errorf("steps/month = %v", got)
	}
	if !math.IsInf(TimeStepsPerMonth(0), 1) {
		t.Error("zero time should give infinite throughput")
	}
}

func TestPartitionsPerfectScalingIsThroughputNeutral(t *testing.T) {
	// With ideal speedup, total throughput is independent of partitioning:
	// X = jobs/R = jobs·p/k = pavail/k for all splits.
	pts, err := Partitions(1024, []int{1, 2, 4, 8}, perfectScaling(1e6))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[1:] {
		if math.Abs(p.X-pts[0].X)/pts[0].X > 1e-9 {
			t.Errorf("throughput not neutral: %v vs %v", p.X, pts[0].X)
		}
	}
	// Under ideal scaling R/X = R²/jobs = k²/(partition·pavail): larger
	// partitions strictly win, so one big job is optimal — partitioning
	// only pays once scaling saturates.
	best, err := Optimal(pts, MinRoverX)
	if err != nil {
		t.Fatal(err)
	}
	if best.Jobs != 1 {
		t.Errorf("ideal scaling min R/X jobs = %d, want 1", best.Jobs)
	}
}

func TestPartitionsSaturatingScalingFavorsFewerJobsForR2X(t *testing.T) {
	eval := saturatingScaling(1e9, 5e5)
	pts, err := Partitions(65536, []int{1, 2, 4, 8, 16}, eval)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := Optimal(pts, MinRoverX)
	if err != nil {
		t.Fatal(err)
	}
	r2x, err := Optimal(pts, MinR2overX)
	if err != nil {
		t.Fatal(err)
	}
	// R²/X weighs response time more → at least as large partitions
	// (fewer jobs) as R/X.
	if r2x.Jobs > rx.Jobs {
		t.Errorf("R²/X jobs (%d) should be ≤ R/X jobs (%d)", r2x.Jobs, rx.Jobs)
	}
}

func TestPartitionsErrors(t *testing.T) {
	if _, err := Partitions(10, []int{3}, perfectScaling(1)); err == nil {
		t.Error("non-divisor jobs accepted")
	}
	if _, err := Partitions(10, []int{0}, perfectScaling(1)); err == nil {
		t.Error("zero jobs accepted")
	}
	fail := func(int) (float64, error) { return 0, fmt.Errorf("boom") }
	if _, err := Partitions(8, []int{2}, fail); err == nil {
		t.Error("evaluator error swallowed")
	}
}

func TestOptimalEmpty(t *testing.T) {
	if _, err := Optimal(nil, MinRoverX); err == nil {
		t.Error("empty points accepted")
	}
}

func TestOptimalJobs(t *testing.T) {
	eval := saturatingScaling(1e9, 2e5)
	pt, err := OptimalJobs(65536, 1024, MinRoverX, eval)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Jobs < 1 || pt.Partition < 1024 {
		t.Errorf("optimal = %+v", pt)
	}
	if _, err := OptimalJobs(512, 1024, MinRoverX, eval); err == nil {
		t.Error("infeasible min partition accepted")
	}
}

func TestPartitionPointFields(t *testing.T) {
	pts, err := Partitions(64, []int{2}, perfectScaling(128e6))
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.Partition != 32 || p.Jobs != 2 || p.Pavail != 64 {
		t.Errorf("point = %+v", p)
	}
	wantR := 128e6 / 32
	if p.R != wantR {
		t.Errorf("R = %v", p.R)
	}
	if math.Abs(p.RoverX-wantR*wantR/2) > 1e-6 {
		t.Errorf("R/X = %v", p.RoverX)
	}
	if math.Abs(p.R2overX-wantR*wantR*wantR/2) > 1 {
		t.Errorf("R²/X = %v", p.R2overX)
	}
}

func TestCriterionString(t *testing.T) {
	if MinRoverX.String() == "" || MinR2overX.String() == "" {
		t.Error("empty criterion names")
	}
	if MinRoverX.String() == MinR2overX.String() {
		t.Error("criteria should have distinct names")
	}
}

func TestSpeedup(t *testing.T) {
	times := map[int]float64{1: 100, 2: 50, 4: 30}
	s, err := Speedup(times, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s[1] != 1 || s[2] != 2 || math.Abs(s[4]-100.0/30) > 1e-9 {
		t.Errorf("speedup = %v", s)
	}
	if _, err := Speedup(times, 8); err == nil {
		t.Error("missing base accepted")
	}
	if _, err := Speedup(map[int]float64{1: 0}, 1); err == nil {
		t.Error("zero time accepted")
	}
}

func TestDiminishingReturns(t *testing.T) {
	ps := []int{1, 2, 4, 8}
	times := []float64{100, 55, 40, 38}
	knee, err := DiminishingReturns(ps, times, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// 100→55 (45%) and 55→40 (27%) clear the 20% bar; 40→38 (5%) does not,
	// so the knee is at p=4.
	if knee != 4 {
		t.Errorf("knee = %d, want 4", knee)
	}
	// All improvements above threshold → last point.
	knee, err = DiminishingReturns([]int{1, 2}, []float64{100, 50}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if knee != 2 {
		t.Errorf("knee = %d, want last point", knee)
	}
	if _, err := DiminishingReturns([]int{1}, []float64{1, 2}, 0.1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := DiminishingReturns([]int{1, 2}, []float64{0, 1}, 0.1); err == nil {
		t.Error("zero time accepted")
	}
}
