// Package workload generates seeded, deterministic per-tile compute
// variation for wavefront schedules: load-imbalance distributions
// (uniform/normal/lognormal/hotspot), OS-noise injection, and
// multi-block grid regions with their own cost multipliers.
//
// The paper's model (and the rest of this reproduction) assumes
// perfectly uniform per-tile compute — the regime where an analytic
// model is easiest to trust. A workload Spec perturbs the simulator
// side only: each tile's compute time becomes base × Mul + Noise,
// where Mul and Noise are pure functions of (seed, rank, sweep, tile).
// The analytic model deliberately keeps the paper's uniform-compute
// assumption, so the measured model-vs-simulator error under imbalance
// is the feature, not a bug.
//
// Determinism is structural rather than procedural: there is no
// sequential RNG stream to replay in order. Every sample is an
// independent hash of its coordinates (splitmix64-style), so the same
// spec yields bit-identical workloads regardless of worker count,
// shard count, or evaluation order. The zero Spec — and any spec whose
// knobs are all at their neutral values — multiplies by exactly 1.0
// and adds exactly 0.0, leaving schedules bit-identical to the
// constant-cost path.
package workload

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/grid"
)

// Distribution names accepted by Spec.Dist. The empty string means
// uniform.
const (
	DistUniform   = "uniform"
	DistNormal    = "normal"
	DistLognormal = "lognormal"
	DistHotspot   = "hotspot"
)

// NoiseSpec injects OS-noise events: per tile, a Poisson-distributed
// number of events (mean Rate) each adding an exponentially-distributed
// delay with mean AmpUS µs to the tile's compute time. This is the
// classic fixed-work quantum model of OS jitter: infrequent daemons and
// interrupts stealing whole time slices, not a per-cell slowdown.
type NoiseSpec struct {
	Rate  float64 `json:"rate"`   // expected noise events per tile
	AmpUS float64 `json:"amp_us"` // mean per-event delay in µs
}

// Block marks a rectangular region of the processor array whose ranks
// multiply their per-tile compute by Mul — the multi-block/irregular-
// grid knob: a refined mesh block or a physics-heavy subdomain costs
// more per tile than the rest of the domain. Bounds are fractions of
// the array in [0, 1] so one spec applies across processor counts: rank
// (i, j) of an n × m array is inside when (i-½)/n ∈ [X0, X1) and
// (j-½)/m ∈ [Y0, Y1). Overlapping blocks compound multiplicatively.
type Block struct {
	X0  float64 `json:"x0"`
	Y0  float64 `json:"y0"`
	X1  float64 `json:"x1"`
	Y1  float64 `json:"y1"`
	Mul float64 `json:"mul"`
}

// Spec parameterises a workload generator. The zero value is the
// uniform workload: multiplier exactly 1, noise exactly 0.
type Spec struct {
	// Dist selects the per-tile multiplier distribution: "" or
	// "uniform" (mean 1, half-width √3·Sigma), "normal" (mean 1,
	// std-dev Sigma), "lognormal" (mean 1, log-std-dev Sigma), or
	// "hotspot" (a HotFrac fraction of ranks run every tile HotMul×
	// slower — persistent slow nodes, not transient jitter).
	Dist string `json:"dist,omitempty"`

	// Seed selects the deterministic sample stream. Two specs that
	// differ only in Seed are distinct workloads (and distinct RunKeys).
	Seed uint64 `json:"seed,omitempty"`

	// Sigma is the spread of the uniform/normal/lognormal distributions;
	// 0 collapses them to exactly 1.
	Sigma float64 `json:"sigma,omitempty"`

	// HotFrac and HotMul configure the hotspot distribution.
	HotFrac float64 `json:"hot_frac,omitempty"`
	HotMul  float64 `json:"hot_mul,omitempty"`

	// Noise, if non-nil, adds OS-noise events on top of the multiplier.
	Noise *NoiseSpec `json:"noise,omitempty"`

	// Blocks, if non-empty, compound per-region multipliers onto every
	// rank inside each region.
	Blocks []Block `json:"blocks,omitempty"`
}

// minMul floors the per-tile multiplier so that heavy-tailed draws can
// never produce a non-positive (time-reversing) compute duration.
const minMul = 0.05

// maxNoiseRate bounds the Poisson rate so noise sampling stays O(Rate)
// per tile.
const maxNoiseRate = 16

// Validate reports spec errors. It is decomposition-independent so that
// campaign specs can be validated before ranks are chosen.
func (s *Spec) Validate() error {
	switch s.Dist {
	case "", DistUniform, DistNormal, DistLognormal:
		if s.Sigma < 0 || math.IsNaN(s.Sigma) || math.IsInf(s.Sigma, 0) {
			return fmt.Errorf("workload: invalid sigma %v", s.Sigma)
		}
		if s.HotFrac != 0 || s.HotMul != 0 {
			return fmt.Errorf("workload: hot_frac/hot_mul require dist %q", DistHotspot)
		}
	case DistHotspot:
		if s.Sigma != 0 {
			return fmt.Errorf("workload: sigma is not a %q parameter", DistHotspot)
		}
		if s.HotFrac < 0 || s.HotFrac > 1 || math.IsNaN(s.HotFrac) {
			return fmt.Errorf("workload: hot_frac %v outside [0, 1]", s.HotFrac)
		}
		if s.HotMul < minMul || math.IsNaN(s.HotMul) || math.IsInf(s.HotMul, 0) {
			return fmt.Errorf("workload: hot_mul %v below minimum %v", s.HotMul, minMul)
		}
	default:
		return fmt.Errorf("workload: unknown distribution %q (want %s, %s, %s or %s)",
			s.Dist, DistUniform, DistNormal, DistLognormal, DistHotspot)
	}
	if n := s.Noise; n != nil {
		if n.Rate < 0 || n.Rate > maxNoiseRate || math.IsNaN(n.Rate) {
			return fmt.Errorf("workload: noise rate %v outside [0, %d]", n.Rate, maxNoiseRate)
		}
		if n.AmpUS < 0 || math.IsNaN(n.AmpUS) || math.IsInf(n.AmpUS, 0) {
			return fmt.Errorf("workload: invalid noise amplitude %v", n.AmpUS)
		}
	}
	for i, b := range s.Blocks {
		if !(b.X0 >= 0 && b.X0 < b.X1 && b.X1 <= 1) || !(b.Y0 >= 0 && b.Y0 < b.Y1 && b.Y1 <= 1) {
			return fmt.Errorf("workload: block %d bounds [%v,%v)x[%v,%v) outside the unit square",
				i, b.X0, b.X1, b.Y0, b.Y1)
		}
		if b.Mul < minMul || math.IsNaN(b.Mul) || math.IsInf(b.Mul, 0) {
			return fmt.Errorf("workload: block %d multiplier %v below minimum %v", i, b.Mul, minMul)
		}
	}
	return nil
}

// IsUniform reports whether the spec is the exact-identity workload:
// every multiplier is exactly 1.0 and every noise term exactly 0.0, so
// attaching it cannot change any schedule bit.
func (s *Spec) IsUniform() bool {
	switch s.Dist {
	case "", DistUniform, DistNormal, DistLognormal:
		if s.Sigma != 0 {
			return false
		}
	case DistHotspot:
		if s.HotFrac > 0 && s.HotMul != 1 {
			return false
		}
	default:
		return false
	}
	if s.Noise != nil && s.Noise.Rate > 0 && s.Noise.AmpUS > 0 {
		return false
	}
	for _, b := range s.Blocks {
		if b.Mul != 1 {
			return false
		}
	}
	return true
}

// String returns a compact human-readable label, used as the campaign
// run dimension value. Distinct specs produce distinct labels.
func (s *Spec) String() string {
	var b strings.Builder
	switch s.Dist {
	case "", DistUniform:
		if s.Sigma == 0 {
			b.WriteString("uniform")
		} else {
			fmt.Fprintf(&b, "uniform(σ=%g,seed=%d)", s.Sigma, s.Seed)
		}
	case DistNormal, DistLognormal:
		fmt.Fprintf(&b, "%s(σ=%g,seed=%d)", s.Dist, s.Sigma, s.Seed)
	case DistHotspot:
		fmt.Fprintf(&b, "hotspot(%g%%×%g,seed=%d)", s.HotFrac*100, s.HotMul, s.Seed)
	default:
		fmt.Fprintf(&b, "%s(?)", s.Dist)
	}
	if n := s.Noise; n != nil && n.Rate > 0 {
		fmt.Fprintf(&b, "+noise(%g×%gµs)", n.Rate, n.AmpUS)
	}
	for _, blk := range s.Blocks {
		fmt.Fprintf(&b, "+block[%g,%g,%g,%g]×%g", blk.X0, blk.Y0, blk.X1, blk.Y1, blk.Mul)
	}
	return b.String()
}

// Generator evaluates a validated Spec on a concrete decomposition.
// All methods are pure functions of their arguments and safe for
// concurrent use.
type Generator struct {
	spec Spec
	// rankMul folds everything that varies per rank but not per tile —
	// block membership and hotspot status — into one precomputed
	// multiplier, exactly 1.0 for unaffected ranks.
	rankMul []float64
	// perTile is true when Dist draws a fresh multiplier per tile
	// (uniform/normal/lognormal with Sigma > 0).
	perTile bool
}

// New validates spec against dec and returns its generator.
func New(spec Spec, dec grid.Decomposition) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		spec:    spec,
		rankMul: make([]float64, dec.P()),
		perTile: spec.Dist != DistHotspot && spec.Sigma > 0,
	}
	for r := range g.rankMul {
		mul := 1.0
		c := dec.CoordOf(r)
		fx := (float64(c.I) - 0.5) / float64(dec.N)
		fy := (float64(c.J) - 0.5) / float64(dec.M)
		for _, b := range spec.Blocks {
			if fx >= b.X0 && fx < b.X1 && fy >= b.Y0 && fy < b.Y1 {
				mul *= b.Mul
			}
		}
		if spec.Dist == DistHotspot && spec.HotFrac > 0 {
			// Hot ranks are a seeded per-rank draw, so the hot set is
			// stable across sweeps and tiles: persistent slow nodes.
			if u01(hash(spec.Seed, uint64(r), hotLane, 0)) < spec.HotFrac {
				mul *= spec.HotMul
			}
		}
		g.rankMul[r] = mul
	}
	return g, nil
}

// Spec returns the generator's spec.
func (g *Generator) Spec() Spec { return g.spec }

// Lane constants separate the hash streams of independent sampling
// purposes so that e.g. the multiplier draw and the noise draw of the
// same tile are uncorrelated.
const (
	mulLane uint64 = iota + 1
	noiseLane
	hotLane
)

// TileMul returns the compute-time multiplier of (rank, sweep, tile):
// the distribution draw times the rank's block/hotspot multiplier.
// A neutral spec returns exactly 1.0.
func (g *Generator) TileMul(rank, sweep, tile int) float64 {
	mul := g.rankMul[rank]
	if g.perTile {
		h := hash(g.spec.Seed, uint64(rank), mulLane, pack(sweep, tile))
		switch g.spec.Dist {
		case "", DistUniform:
			// Half-width √3·σ keeps the standard deviation at σ.
			mul *= 1 + g.spec.Sigma*math.Sqrt(3)*(2*u01(h)-1)
		case DistNormal:
			mul *= 1 + g.spec.Sigma*normal(h)
		case DistLognormal:
			// μ = -σ²/2 keeps the mean at exactly e⁰ = 1.
			s := g.spec.Sigma
			mul *= math.Exp(-s*s/2 + s*normal(h))
		}
		if mul < minMul {
			mul = minMul
		}
	}
	return mul
}

// TileNoise returns the additive OS-noise delay in µs of
// (rank, sweep, tile): the sum of a Poisson(Rate) number of
// Exp(AmpUS) event delays. A nil or zero NoiseSpec returns exactly 0.0.
func (g *Generator) TileNoise(rank, sweep, tile int) float64 {
	n := g.spec.Noise
	if n == nil || n.Rate <= 0 || n.AmpUS <= 0 {
		return 0
	}
	// Knuth's Poisson sampler: multiply uniforms until the product
	// drops below e^-rate. Each uniform comes from its own lane-offset
	// hash, so the sample is still a pure function of the coordinates.
	limit := math.Exp(-n.Rate)
	base := pack(sweep, tile)
	prod := 1.0
	events := -1
	for k := uint64(0); ; k++ {
		prod *= u01(hash(g.spec.Seed, uint64(rank), noiseLane+8*k, base))
		if prod < limit {
			events = int(k)
			break
		}
	}
	total := 0.0
	for k := 0; k < events; k++ {
		u := u01(hash(g.spec.Seed, uint64(rank), noiseLane+8*uint64(k)+4, base))
		total += n.AmpUS * -math.Log(1-u)
	}
	return total
}

// Tile returns the (multiplier, extra µs) pair of one tile — the shape
// wavefront.Schedule.Tile expects (a method value of this function is
// what apps wires in).
func (g *Generator) Tile(rank, sweep, tile int) (mul, extraUS float64) {
	return g.TileMul(rank, sweep, tile), g.TileNoise(rank, sweep, tile)
}

// pack folds the (sweep, tile) coordinates into one hash input word.
// Tiles per sweep are bounded far below 2³², so the fold is injective
// for every reachable schedule.
func pack(sweep, tile int) uint64 {
	return uint64(sweep)<<32 | uint64(uint32(tile))
}

// hash is a splitmix64-style mix of a seed and three coordinate words.
// It is the sole source of randomness in the package: stateless, so
// every sample is independently addressable.
func hash(seed, a, b, c uint64) uint64 {
	z := seed ^ 0x9e3779b97f4a7c15
	z = sm64(z ^ a*0xbf58476d1ce4e5b9)
	z = sm64(z ^ b*0x94d049bb133111eb)
	z = sm64(z ^ c*0xd6e8feb86659fd93)
	return z
}

func sm64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// u01 maps a hash to the half-open unit interval [0, 1) with 53-bit
// resolution.
func u01(h uint64) float64 {
	return float64(h>>11) * (1.0 / (1 << 53))
}

// normal converts one hash into a standard-normal draw via Box-Muller;
// the second uniform comes from re-mixing the first hash, keeping the
// draw a function of a single coordinate hash.
func normal(h uint64) float64 {
	u1 := u01(h)
	u2 := u01(sm64(h))
	// Guard the log: u1 == 0 happens with probability 2⁻⁵³.
	if u1 == 0 {
		u1 = 0x1p-53
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
