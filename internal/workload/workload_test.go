package workload

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func mustGen(t *testing.T, spec Spec, dec grid.Decomposition) *Generator {
	t.Helper()
	g, err := New(spec, dec)
	if err != nil {
		t.Fatalf("New(%+v): %v", spec, err)
	}
	return g
}

func dec4x4(t *testing.T) grid.Decomposition {
	t.Helper()
	return grid.MustDecompose(grid.Cube(32), 4, 4)
}

// The zero spec and the seed=0 uniform spec must be exact identities:
// multiplier bit-equal to 1.0 and noise bit-equal to 0.0 everywhere,
// so attaching them cannot perturb any golden result.
func TestUniformIsExactIdentity(t *testing.T) {
	dec := dec4x4(t)
	for _, spec := range []Spec{
		{},
		{Dist: DistUniform, Seed: 0},
		{Dist: DistUniform, Seed: 99},
		{Dist: DistNormal, Sigma: 0},
		{Dist: DistLognormal, Sigma: 0},
		{Dist: DistHotspot, HotFrac: 0.5, HotMul: 1},
		{Noise: &NoiseSpec{Rate: 0, AmpUS: 50}},
		{Blocks: []Block{{X0: 0, Y0: 0, X1: 1, Y1: 1, Mul: 1}}},
	} {
		if !spec.IsUniform() {
			t.Errorf("spec %+v: IsUniform() = false, want true", spec)
		}
		g := mustGen(t, spec, dec)
		for r := 0; r < dec.P(); r++ {
			for sweep := 0; sweep < 3; sweep++ {
				for tile := 0; tile < 5; tile++ {
					mul, extra := g.Tile(r, sweep, tile)
					if mul != 1.0 || extra != 0.0 {
						t.Fatalf("spec %+v rank %d sweep %d tile %d: Tile = (%v, %v), want exactly (1, 0)",
							spec, r, sweep, tile, mul, extra)
					}
				}
			}
		}
	}
}

// Samples are pure functions of (seed, rank, sweep, tile): re-creating
// the generator, or evaluating in any order, yields bit-identical
// values; changing the seed yields a different stream.
func TestPurityAndSeedSensitivity(t *testing.T) {
	dec := dec4x4(t)
	spec := Spec{Dist: DistLognormal, Sigma: 0.5, Seed: 7,
		Noise: &NoiseSpec{Rate: 1.5, AmpUS: 40}}
	a := mustGen(t, spec, dec)
	b := mustGen(t, spec, dec)

	type sample struct{ mul, noise float64 }
	forward := map[[3]int]sample{}
	for r := 0; r < dec.P(); r++ {
		for sweep := 0; sweep < 4; sweep++ {
			for tile := 0; tile < 8; tile++ {
				forward[[3]int{r, sweep, tile}] = sample{a.TileMul(r, sweep, tile), a.TileNoise(r, sweep, tile)}
			}
		}
	}
	// Reverse order on an independent generator.
	for r := dec.P() - 1; r >= 0; r-- {
		for sweep := 3; sweep >= 0; sweep-- {
			for tile := 7; tile >= 0; tile-- {
				want := forward[[3]int{r, sweep, tile}]
				got := sample{b.TileMul(r, sweep, tile), b.TileNoise(r, sweep, tile)}
				if got != want {
					t.Fatalf("rank %d sweep %d tile %d: %+v != %+v", r, sweep, tile, got, want)
				}
			}
		}
	}

	other := mustGen(t, Spec{Dist: DistLognormal, Sigma: 0.5, Seed: 8,
		Noise: &NoiseSpec{Rate: 1.5, AmpUS: 40}}, dec)
	same := 0
	for r := 0; r < dec.P(); r++ {
		if other.TileMul(r, 0, 0) == a.TileMul(r, 0, 0) {
			same++
		}
	}
	if same == dec.P() {
		t.Fatal("seed 7 and seed 8 produced identical multiplier streams")
	}
}

// The continuous distributions must hit their advertised first two
// moments: mean 1 and standard deviation Sigma (of the log for
// lognormal, whose arithmetic mean is still 1 by construction).
func TestDistributionMoments(t *testing.T) {
	dec := grid.MustDecompose(grid.Cube(32), 8, 8)
	const sweeps, tiles = 5, 40 // 64 ranks × 200 samples = 12800 draws
	for _, tc := range []struct {
		spec    Spec
		wantStd float64
	}{
		{Spec{Dist: DistUniform, Sigma: 0.2, Seed: 3}, 0.2},
		{Spec{Dist: DistNormal, Sigma: 0.15, Seed: 3}, 0.15},
		{Spec{Dist: DistLognormal, Sigma: 0.25, Seed: 3}, 0}, // std checked loosely below
	} {
		g := mustGen(t, tc.spec, dec)
		var sum, sum2 float64
		n := 0
		for r := 0; r < dec.P(); r++ {
			for sweep := 0; sweep < sweeps; sweep++ {
				for tile := 0; tile < tiles; tile++ {
					v := g.TileMul(r, sweep, tile)
					if v < minMul {
						t.Fatalf("%s: multiplier %v below floor", tc.spec.Dist, v)
					}
					sum += v
					sum2 += v * v
					n++
				}
			}
		}
		mean := sum / float64(n)
		std := math.Sqrt(sum2/float64(n) - mean*mean)
		if math.Abs(mean-1) > 0.02 {
			t.Errorf("%s: sample mean %v, want ≈ 1", tc.spec.Dist, mean)
		}
		if tc.wantStd > 0 && math.Abs(std-tc.wantStd) > 0.2*tc.wantStd {
			t.Errorf("%s: sample std %v, want ≈ %v", tc.spec.Dist, std, tc.wantStd)
		}
		if tc.spec.Dist == DistLognormal && (std < 0.15 || std > 0.40) {
			t.Errorf("lognormal: sample std %v outside plausible range for σ=0.25", std)
		}
	}
}

// Hotspot marks a stable per-rank subset: hot ranks are HotMul× on
// every tile, cold ranks exactly 1×, and the hot fraction is near
// HotFrac on a large array.
func TestHotspot(t *testing.T) {
	dec := grid.MustDecompose(grid.Cube(64), 32, 32) // 1024 ranks
	spec := Spec{Dist: DistHotspot, HotFrac: 0.2, HotMul: 3, Seed: 5}
	g := mustGen(t, spec, dec)
	hot := 0
	for r := 0; r < dec.P(); r++ {
		first := g.TileMul(r, 0, 0)
		if first != 1 && first != 3 {
			t.Fatalf("rank %d: multiplier %v, want exactly 1 or 3", r, first)
		}
		for sweep := 0; sweep < 3; sweep++ {
			for tile := 0; tile < 4; tile++ {
				if got := g.TileMul(r, sweep, tile); got != first {
					t.Fatalf("rank %d: hotspot multiplier varies across tiles (%v vs %v)", r, got, first)
				}
			}
		}
		if first == 3 {
			hot++
		}
	}
	frac := float64(hot) / float64(dec.P())
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("hot fraction %v, want ≈ 0.2", frac)
	}
}

// Blocks multiply exactly the ranks whose fractional coordinate falls
// inside the region, and overlapping blocks compound.
func TestBlocks(t *testing.T) {
	dec := dec4x4(t) // 4×4 array: rank columns at fx = .125, .375, .625, .875
	spec := Spec{Blocks: []Block{
		{X0: 0, Y0: 0, X1: 0.5, Y1: 0.5, Mul: 2},
		{X0: 0, Y0: 0, X1: 0.25, Y1: 0.25, Mul: 3},
	}}
	g := mustGen(t, spec, dec)
	for r := 0; r < dec.P(); r++ {
		c := dec.CoordOf(r)
		want := 1.0
		if c.I <= 2 && c.J <= 2 {
			want = 2
		}
		if c.I == 1 && c.J == 1 {
			want = 6
		}
		if got := g.TileMul(r, 0, 0); got != want {
			t.Errorf("rank %d at %+v: multiplier %v, want %v", r, c, got, want)
		}
	}
}

// Noise totals must track Rate × AmpUS in expectation and be zero for
// a disabled spec.
func TestNoiseMoments(t *testing.T) {
	dec := grid.MustDecompose(grid.Cube(32), 8, 8)
	spec := Spec{Noise: &NoiseSpec{Rate: 2, AmpUS: 50}, Seed: 11}
	g := mustGen(t, spec, dec)
	var sum float64
	n := 0
	for r := 0; r < dec.P(); r++ {
		for sweep := 0; sweep < 5; sweep++ {
			for tile := 0; tile < 20; tile++ {
				v := g.TileNoise(r, sweep, tile)
				if v < 0 {
					t.Fatalf("negative noise %v", v)
				}
				sum += v
				n++
			}
		}
	}
	mean := sum / float64(n)
	if mean < 80 || mean > 120 {
		t.Errorf("noise mean %vµs, want ≈ 100µs (rate 2 × 50µs)", mean)
	}
}

func TestValidateRejects(t *testing.T) {
	for _, spec := range []Spec{
		{Dist: "zipf"},
		{Dist: DistNormal, Sigma: -0.1},
		{Dist: DistNormal, Sigma: math.NaN()},
		{Dist: DistUniform, HotFrac: 0.5},
		{Dist: DistHotspot, HotFrac: 1.5, HotMul: 2},
		{Dist: DistHotspot, HotFrac: 0.5}, // HotMul unset
		{Dist: DistHotspot, HotFrac: 0.1, HotMul: 2, Sigma: 0.3},
		{Noise: &NoiseSpec{Rate: -1}},
		{Noise: &NoiseSpec{Rate: 100, AmpUS: 1}},
		{Noise: &NoiseSpec{Rate: 1, AmpUS: -5}},
		{Blocks: []Block{{X0: 0.5, X1: 0.25, Y0: 0, Y1: 1, Mul: 2}}},
		{Blocks: []Block{{X0: 0, X1: 1.5, Y0: 0, Y1: 1, Mul: 2}}},
		{Blocks: []Block{{X0: 0, X1: 1, Y0: 0, Y1: 1, Mul: 0}}},
	} {
		if err := spec.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", spec)
		}
		if _, err := New(spec, dec4x4(t)); err == nil {
			t.Errorf("New(%+v) = nil error, want error", spec)
		}
	}
}

// Labels double as campaign dimension values, so distinct specs need
// distinct labels.
func TestStringDistinct(t *testing.T) {
	specs := []Spec{
		{},
		{Dist: DistUniform, Sigma: 0.2, Seed: 1},
		{Dist: DistUniform, Sigma: 0.2, Seed: 2},
		{Dist: DistNormal, Sigma: 0.2, Seed: 1},
		{Dist: DistLognormal, Sigma: 0.2, Seed: 1},
		{Dist: DistHotspot, HotFrac: 0.1, HotMul: 4, Seed: 1},
		{Noise: &NoiseSpec{Rate: 0.5, AmpUS: 25}},
		{Noise: &NoiseSpec{Rate: 2, AmpUS: 25}},
		{Blocks: []Block{{X0: 0, Y0: 0, X1: 0.5, Y1: 0.5, Mul: 3}}},
		{Blocks: []Block{{X0: 0, Y0: 0, X1: 0.5, Y1: 0.5, Mul: 2}}},
	}
	seen := map[string]int{}
	for i, s := range specs {
		label := s.String()
		if label == "" {
			t.Errorf("spec %d: empty label", i)
		}
		if j, dup := seen[label]; dup {
			t.Errorf("specs %d and %d share label %q", i, j, label)
		}
		seen[label] = i
	}
	if got := (&Spec{}).String(); got != "uniform" {
		t.Errorf("zero spec label = %q, want \"uniform\"", got)
	}
}
