package logp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestXT4Values(t *testing.T) {
	p := XT4()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 2 constants.
	if p.G != 0.0004 || p.L != 0.305 || p.O != 3.92 {
		t.Errorf("off-node params = %+v", p)
	}
	if p.Gcopy != 0.000789 || p.Gdma != 0.000072 || p.Ochip != 3.80 || p.Ocopy != 1.98 {
		t.Errorf("on-chip params = %+v", p)
	}
	if got := p.Odma(); !almostEq(got, 3.80-1.98) {
		t.Errorf("Odma = %v", got)
	}
	// 1/G is 2.5 GB/s (Section 3.1).
	if bw := p.InterNodeBandwidth(); !almostEq(bw, 2500) {
		t.Errorf("bandwidth = %v bytes/µs, want 2500", bw)
	}
}

func TestSP2MuchSlowerThanXT4(t *testing.T) {
	sp2, xt4 := SP2(), XT4()
	if err := sp2.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper notes the XT4 parameters are one to two orders of
	// magnitude lower than the SP/2's.
	if sp2.L/xt4.L < 10 || sp2.O/xt4.O < 5 || sp2.G/xt4.G < 10 {
		t.Errorf("SP/2 should be much slower: %+v vs %+v", sp2, xt4)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	p := XT4()
	p.L = -1
	if err := p.Validate(); err == nil {
		t.Error("negative L accepted")
	}
	p = XT4()
	p.Ocopy = p.Ochip + 1
	if err := p.Validate(); err == nil {
		t.Error("ocopy > o accepted")
	}
	p = XT4()
	p.G = math.NaN()
	if err := p.Validate(); err == nil {
		t.Error("NaN G accepted")
	}
}

func TestOffNodeEquations(t *testing.T) {
	p := XT4()
	// Equation (1): o + size×G + L + o.
	if got, want := p.TotalCommOffNode(512), p.O+512*p.G+p.L+p.O; !almostEq(got, want) {
		t.Errorf("eq(1) = %v, want %v", got, want)
	}
	// Equation (2): o + h + o + size×G + L + o, h = 2L.
	want := p.O + 2*p.L + p.O + 4096*p.G + p.L + p.O
	if got := p.TotalCommOffNode(4096); !almostEq(got, want) {
		t.Errorf("eq(2) = %v, want %v", got, want)
	}
	// Equations (3), (4a), (4b).
	if got := p.SendOffNode(100); !almostEq(got, p.O) {
		t.Errorf("eq(3) send = %v", got)
	}
	if got := p.ReceiveOffNode(100); !almostEq(got, p.O) {
		t.Errorf("eq(3) recv = %v", got)
	}
	if got := p.SendOffNode(2048); !almostEq(got, p.O+2*p.L) {
		t.Errorf("eq(4a) = %v", got)
	}
	if got, want := p.ReceiveOffNode(2048), p.L+p.O+2048*p.G+p.L+p.O; !almostEq(got, want) {
		t.Errorf("eq(4b) = %v, want %v", got, want)
	}
}

func TestOnChipEquations(t *testing.T) {
	p := XT4()
	// Equation (5): ocopy + size×Gcopy + ocopy.
	if got, want := p.TotalCommOnChip(1000), p.Ocopy+1000*p.Gcopy+p.Ocopy; !almostEq(got, want) {
		t.Errorf("eq(5) = %v, want %v", got, want)
	}
	// Equation (6): o + size×Gdma + ocopy.
	if got, want := p.TotalCommOnChip(8192), p.Ochip+8192*p.Gdma+p.Ocopy; !almostEq(got, want) {
		t.Errorf("eq(6) = %v, want %v", got, want)
	}
	// Equations (7), (8a), (8b).
	if got := p.SendOnChip(64); !almostEq(got, p.Ocopy) {
		t.Errorf("eq(7) = %v", got)
	}
	if got := p.SendOnChip(4096); !almostEq(got, p.Ochip) {
		t.Errorf("eq(8a) = %v", got)
	}
	if got, want := p.ReceiveOnChip(4096), 4096*p.Gdma+p.Ocopy; !almostEq(got, want) {
		t.Errorf("eq(8b) = %v, want %v", got, want)
	}
}

func TestProtocolJumpAtThreshold(t *testing.T) {
	p := XT4()
	// The measured curves jump at 1025 bytes (Figure 3): off-node by the
	// handshake h = 2L, on-chip by the DMA setup.
	jumpOff := p.TotalCommOffNode(1025) - p.TotalCommOffNode(1024)
	if jumpOff < 2*p.L-0.01 {
		t.Errorf("off-node jump = %v, want ≥ h = %v", jumpOff, 2*p.L)
	}
	jumpOn := p.TotalCommOnChip(1025) - p.TotalCommOnChip(1024)
	if jumpOn <= 0 {
		t.Errorf("on-chip jump = %v, want > 0", jumpOn)
	}
}

func TestPathDispatch(t *testing.T) {
	p := XT4()
	for _, size := range []int{1, 1024, 1025, 100000} {
		if p.TotalComm(OffNode, size) != p.TotalCommOffNode(size) {
			t.Errorf("TotalComm(OffNode, %d) mismatch", size)
		}
		if p.TotalComm(OnChip, size) != p.TotalCommOnChip(size) {
			t.Errorf("TotalComm(OnChip, %d) mismatch", size)
		}
		if p.Send(OffNode, size) != p.SendOffNode(size) || p.Send(OnChip, size) != p.SendOnChip(size) {
			t.Errorf("Send dispatch mismatch at %d", size)
		}
		if p.Receive(OffNode, size) != p.ReceiveOffNode(size) || p.Receive(OnChip, size) != p.ReceiveOnChip(size) {
			t.Errorf("Receive dispatch mismatch at %d", size)
		}
	}
	if OffNode.String() != "off-node" || OnChip.String() != "on-chip" {
		t.Error("Path.String mismatch")
	}
}

func TestMonotoneInSizeWithinSegments(t *testing.T) {
	p := XT4()
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			a := r.Intn(1024) + 1
			b := a + r.Intn(1024-a+1)
			if r.Intn(2) == 0 { // large segment
				a += 2000
				b += 4000
			}
			vals[0], vals[1] = reflect.ValueOf(a), reflect.ValueOf(b)
		},
	}
	prop := func(a, b int) bool {
		return p.TotalCommOffNode(a) <= p.TotalCommOffNode(b)+1e-12 &&
			p.TotalCommOnChip(a) <= p.TotalCommOnChip(b)+1e-12
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestAllReduceSingleCoreReducesToLogP(t *testing.T) {
	p := XT4()
	for _, P := range []int{2, 4, 16, 1024} {
		want := math.Log2(float64(P)) * p.TotalCommOffNode(8)
		if got := p.AllReduce(P, 1, 8); !almostEq(got, want) {
			t.Errorf("AllReduce(%d, 1) = %v, want log2(P)×TotalComm = %v", P, got, want)
		}
	}
}

func TestAllReduceEquation9(t *testing.T) {
	p := XT4()
	// Hand-evaluate equation (9) for P=64, C=2.
	off := (math.Log2(64) - 1) * 2 * p.TotalCommOffNode(8)
	on := 1 * 2 * p.TotalCommOnChip(8)
	if got := p.AllReduce(64, 2, 8); !almostEq(got, off+on) {
		t.Errorf("AllReduce(64,2) = %v, want %v", got, off+on)
	}
	if got, want := p.AllReduceDouble(64, 2), p.AllReduce(64, 2, 8); got != want {
		t.Errorf("AllReduceDouble mismatch")
	}
}

func TestAllReduceClampsCoresToP(t *testing.T) {
	p := XT4()
	if got, want := p.AllReduce(2, 8, 8), p.AllReduce(2, 2, 8); !almostEq(got, want) {
		t.Errorf("AllReduce with C>P = %v, want %v", got, want)
	}
}

func TestAllReducePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	XT4().AllReduce(0, 1, 8)
}

func TestAllReduceGrowsWithP(t *testing.T) {
	p := XT4()
	prev := 0.0
	for _, P := range []int{2, 4, 8, 16, 32, 1024, 65536} {
		got := p.AllReduce(P, 2, 8)
		if got <= prev {
			t.Errorf("AllReduce not increasing at P=%d: %v <= %v", P, got, prev)
		}
		prev = got
	}
}

func TestHandshake(t *testing.T) {
	p := XT4()
	if got := p.Handshake(); !almostEq(got, 2*p.L) {
		t.Errorf("Handshake = %v, want 2L (oh=0)", got)
	}
	p.H = 1.5
	if got := p.Handshake(); !almostEq(got, 2*p.L+3) {
		t.Errorf("Handshake with oh = %v", got)
	}
}
