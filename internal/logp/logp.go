// Package logp implements the LogGP communication sub-models of paper
// Section 3: MPI send, receive and end-to-end ("total") communication time
// for off-node (Table 1(a), equations (1)–(4)) and on-chip (Table 1(b),
// equations (5)–(8)) transfers, and the MPI all-reduce model (equation (9)).
//
// All times are in microseconds and message sizes in bytes, matching the
// paper's Table 2 units. The models switch between the eager protocol and
// the rendezvous (handshake) protocol at a threshold of 1024 bytes.
package logp

import (
	"fmt"
	"math"
)

// EagerThreshold is the message size in bytes above which the MPI
// implementation performs a rendezvous handshake before transferring data
// (paper Section 3.1: "For all messages larger than 1024 bytes a handshake
// is performed").
const EagerThreshold = 1024

// Params holds the LogGP parameters of a platform, both off-node and
// on-chip, exactly as derived in paper Table 2. The gap-per-message
// parameter g is zero on modern architectures (Section 3): a node can
// transmit a new message as soon as the previous transmission completes.
type Params struct {
	Name string

	// Off-node parameters (Table 2, left column).
	G float64 // per-byte transmission cost, µs/byte
	L float64 // end-to-end latency, µs
	O float64 // send/receive processing overhead o = oinit + oc2NIC, µs
	H float64 // handshake overhead oh (assumed negligible on the XT4)

	// On-chip parameters (Table 2, right column).
	Gcopy float64 // per-byte cost of the two-copy path (≤1 KB), µs/byte
	Gdma  float64 // per-byte cost of the DMA path (>1 KB), µs/byte
	Ochip float64 // on-chip o = ocopy + odma, µs
	Ocopy float64 // processing overhead around the copies, µs
}

// XT4 returns the Cray XT4 parameters of paper Table 2.
func XT4() Params {
	return Params{
		Name:  "Cray XT4",
		G:     0.0004,
		L:     0.305,
		O:     3.92,
		H:     0,
		Gcopy: 0.000789,
		Gdma:  0.000072,
		Ochip: 3.80,
		Ocopy: 1.98,
	}
}

// SP2 returns the IBM SP/2 off-node parameters quoted in paper Section 3.1
// (G = 0.07 µs/byte, L = 23 µs, o = 23 µs). The SP/2 has single-core nodes,
// so the on-chip parameters mirror the off-node values; they are never
// exercised when C = 1.
func SP2() Params {
	return Params{
		Name:  "IBM SP/2",
		G:     0.07,
		L:     23,
		O:     23,
		H:     0,
		Gcopy: 0.07,
		Gdma:  0.07,
		Ochip: 23,
		Ocopy: 23,
	}
}

// Odma returns the DMA setup component of the on-chip overhead,
// odma = o − ocopy (paper Section 3.2: o = ocopy + odma).
func (p Params) Odma() float64 { return p.Ochip - p.Ocopy }

// Validate reports an error if any parameter is negative or the on-chip
// overhead decomposition is inconsistent.
func (p Params) Validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"G", p.G}, {"L", p.L}, {"o", p.O}, {"oh", p.H},
		{"Gcopy", p.Gcopy}, {"Gdma", p.Gdma}, {"o(onchip)", p.Ochip}, {"ocopy", p.Ocopy},
	} {
		if v.val < 0 || math.IsNaN(v.val) || math.IsInf(v.val, 0) {
			return fmt.Errorf("logp: parameter %s = %v out of range", v.name, v.val)
		}
	}
	if p.Ocopy > p.Ochip {
		return fmt.Errorf("logp: ocopy (%v) exceeds on-chip o (%v)", p.Ocopy, p.Ochip)
	}
	return nil
}

// InterNodeBandwidth returns the off-node bandwidth 1/G in bytes/µs
// (Section 3.1 notes 1/G yields 2.5 GB/s on the XT4).
func (p Params) InterNodeBandwidth() float64 { return 1 / p.G }

// Handshake returns h = L + oh + L + oh, the rendezvous round-trip time
// (paper Table 1(a)).
func (p Params) Handshake() float64 { return 2*p.L + 2*p.H }

// --- Off-node model: Table 1(a) ---

// TotalCommOffNode returns the end-to-end time to communicate a message of
// the given size between two cores on different nodes:
//
//	≤1KB:  o + size×G + L + o                      (eq 1)
//	>1KB:  o + h + o + size×G + L + o              (eq 2)
func (p Params) TotalCommOffNode(size int) float64 {
	if size <= EagerThreshold {
		return p.O + float64(size)*p.G + p.L + p.O
	}
	return p.O + p.Handshake() + p.O + float64(size)*p.G + p.L + p.O
}

// SendOffNode returns the time the sending core is busy executing the MPI
// send for an off-node message (eqs 3, 4a).
func (p Params) SendOffNode(size int) float64 {
	if size <= EagerThreshold {
		return p.O
	}
	return p.O + p.Handshake()
}

// ReceiveOffNode returns the time the receiving core is busy executing the
// MPI receive for an off-node message (eqs 3, 4b). For rendezvous messages
// the receive includes the reply latency and the data transfer:
// L + o + size×G + L + o.
func (p Params) ReceiveOffNode(size int) float64 {
	if size <= EagerThreshold {
		return p.O
	}
	return p.L + p.O + float64(size)*p.G + p.L + p.O
}

// --- On-chip model: Table 1(b) ---

// TotalCommOnChip returns the end-to-end time to communicate a message
// between two cores of the same chip:
//
//	≤1KB:  ocopy + size×Gcopy + ocopy              (eq 5)
//	>1KB:  o + size×Gdma + ocopy                   (eq 6)
func (p Params) TotalCommOnChip(size int) float64 {
	if size <= EagerThreshold {
		return p.Ocopy + float64(size)*p.Gcopy + p.Ocopy
	}
	return p.Ochip + float64(size)*p.Gdma + p.Ocopy
}

// SendOnChip returns the sender-side busy time for an on-chip message
// (eqs 7, 8a).
func (p Params) SendOnChip(size int) float64 {
	if size <= EagerThreshold {
		return p.Ocopy
	}
	return p.Ochip // ocopy + odma
}

// ReceiveOnChip returns the receiver-side busy time for an on-chip message
// (eqs 7, 8b): size×Gdma + ocopy for large messages.
func (p Params) ReceiveOnChip(size int) float64 {
	if size <= EagerThreshold {
		return p.Ocopy
	}
	return float64(size)*p.Gdma + p.Ocopy
}

// Path selects between the off-node and on-chip variants of the three
// communication sub-models.
type Path int

// Communication paths.
const (
	OffNode Path = iota // between cores on different nodes
	OnChip              // between cores on the same chip/node
)

// String implements fmt.Stringer.
func (p Path) String() string {
	if p == OnChip {
		return "on-chip"
	}
	return "off-node"
}

// TotalComm dispatches to TotalCommOffNode or TotalCommOnChip.
func (p Params) TotalComm(path Path, size int) float64 {
	if path == OnChip {
		return p.TotalCommOnChip(size)
	}
	return p.TotalCommOffNode(size)
}

// Send dispatches to SendOffNode or SendOnChip.
func (p Params) Send(path Path, size int) float64 {
	if path == OnChip {
		return p.SendOnChip(size)
	}
	return p.SendOffNode(size)
}

// Receive dispatches to ReceiveOffNode or ReceiveOnChip.
func (p Params) Receive(path Path, size int) float64 {
	if path == OnChip {
		return p.ReceiveOnChip(size)
	}
	return p.ReceiveOffNode(size)
}

// AllReduce returns the execution time of an MPI all-reduce over P total
// cores with C cores per node, exchanging messages of the given size
// (paper equation (9)):
//
//	T = [log2(P) − log2(C)] × C × TotalComm_offchip
//	  + log2(C) × C × TotalComm_onchip
//
// In the special case C = 1 this reduces to log2(P) × TotalComm.
func (p Params) AllReduce(P, C, size int) float64 {
	if P <= 0 || C <= 0 {
		panic(fmt.Sprintf("logp: invalid all-reduce configuration P=%d C=%d", P, C))
	}
	if C > P {
		C = P
	}
	logP := math.Log2(float64(P))
	logC := math.Log2(float64(C))
	off := (logP - logC) * float64(C) * p.TotalCommOffNode(size)
	on := logC * float64(C) * p.TotalCommOnChip(size)
	return off + on
}

// AllReduceDouble returns the all-reduce time for a single 8-byte double,
// the common reduction payload in Sweep3D and Chimaera convergence tests.
func (p Params) AllReduceDouble(P, C int) float64 { return p.AllReduce(P, C, 8) }
