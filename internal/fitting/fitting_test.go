package fitting

import (
	"math"
	"testing"

	"repro/internal/logp"
	"repro/internal/machine"
)

func TestPingPongMatchesModel(t *testing.T) {
	mach := machine.XT4()
	for _, path := range []logp.Path{logp.OffNode, logp.OnChip} {
		for _, bytes := range []int{64, 1024, 1025, 8192} {
			got, err := PingPong(mach, path, bytes, 3)
			if err != nil {
				t.Fatal(err)
			}
			want := mach.Params.TotalComm(path, bytes)
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Errorf("%v %dB: half-RTT = %v, want %v", path, bytes, got, want)
			}
		}
	}
}

func TestPingPongErrors(t *testing.T) {
	if _, err := PingPong(machine.XT4(), logp.OffNode, 0, 1); err == nil {
		t.Error("zero bytes accepted")
	}
	if _, err := PingPong(machine.XT4(), logp.OffNode, 8, 0); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := PingPong(machine.XT4SingleCore(), logp.OnChip, 8, 1); err == nil {
		t.Error("on-chip ping-pong on single-core nodes accepted")
	}
}

func TestDeriveTable2RecoversInjectedParameters(t *testing.T) {
	mach := machine.XT4()
	d, err := DeriveTable2(mach)
	if err != nil {
		t.Fatal(err)
	}
	ref := mach.Params
	check := func(name string, got, want float64) {
		if want == 0 {
			if math.Abs(got) > 1e-9 {
				t.Errorf("%s = %v, want 0", name, got)
			}
			return
		}
		if math.Abs(got-want)/want > 1e-6 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("G", d.G, ref.G)
	check("L", d.L, ref.L)
	check("o", d.O, ref.O)
	check("Gcopy", d.Gcopy, ref.Gcopy)
	check("Gdma", d.Gdma, ref.Gdma)
	check("ocopy", d.Ocopy, ref.Ocopy)
	check("o on-chip", d.Ochip, ref.Ochip)
}

func TestDerivedParamsRoundTrip(t *testing.T) {
	mach := machine.XT4()
	d, err := DeriveTable2(mach)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Params("derived XT4")
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// A model built from derived parameters predicts the same comm times.
	for _, bytes := range []int{100, 5000} {
		if math.Abs(p.TotalCommOffNode(bytes)-mach.Params.TotalCommOffNode(bytes)) > 1e-6 {
			t.Errorf("round-trip mismatch at %d bytes", bytes)
		}
	}
}

func TestFitErrorsWithoutBothSegments(t *testing.T) {
	small := []Sample{{64, 1}, {128, 2}}
	if _, err := FitOffNode(small); err == nil {
		t.Error("fit without large samples accepted")
	}
	if _, err := FitOnChip(small); err == nil {
		t.Error("on-chip fit without large samples accepted")
	}
}

func TestSweepAndCompareCurves(t *testing.T) {
	mach := machine.XT4()
	sizes := []int{64, 512, 2048, 8192}
	meas, err := Sweep(mach, logp.OffNode, sizes, 2)
	if err != nil {
		t.Fatal(err)
	}
	model := ModelCurve(mach.Params, logp.OffNode, sizes)
	sum, err := CompareCurves(model, meas)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MaxAbs > 1e-9 {
		t.Errorf("model and uncontended simulation differ: %v", sum)
	}
	if _, err := CompareCurves(model[:2], meas); err == nil {
		t.Error("mismatched lengths accepted")
	}
	bad := ModelCurve(mach.Params, logp.OffNode, []int{65, 512, 2048, 8192})
	if _, err := CompareCurves(bad, meas); err == nil {
		t.Error("mismatched sizes accepted")
	}
}

func TestDefaultSizesSpanThreshold(t *testing.T) {
	sizes := DefaultSizes()
	var below, above bool
	for _, s := range sizes {
		if s <= logp.EagerThreshold {
			below = true
		} else {
			above = true
		}
	}
	if !below || !above {
		t.Error("default sizes must span the protocol threshold")
	}
}
