// Package fitting reproduces the paper's derivation of the Cray XT4 LogGP
// parameters (Section 3, Table 2, Figure 3): it runs ping-pong
// microbenchmarks on the simulated platform, fits the per-byte transmission
// costs from the slopes of the half-round-trip curves, and solves the
// Table 1 equations simultaneously for the overhead and latency parameters.
//
// Applied to the simulator, the pipeline recovers the injected Table 2
// constants, validating both the microbenchmark methodology and the
// protocol implementation.
package fitting

import (
	"fmt"

	"repro/internal/logp"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// Sample is one ping-pong measurement: message size and half round-trip
// time in µs.
type Sample struct {
	Bytes int
	Time  float64
}

// PingPong runs a two-rank ping-pong of the given message size for rounds
// round trips on the machine and returns the half round-trip time. The two
// ranks are placed on different nodes for path == logp.OffNode and on the
// same node for path == logp.OnChip (paper Figures 3(a) and 3(b)).
func PingPong(mach machine.Machine, path logp.Path, bytes, rounds int) (float64, error) {
	if rounds <= 0 || bytes <= 0 {
		return 0, fmt.Errorf("fitting: invalid ping-pong configuration bytes=%d rounds=%d", bytes, rounds)
	}
	var place simnet.Placement
	if path == logp.OnChip {
		if mach.CoresPerNode < 2 {
			return 0, fmt.Errorf("fitting: on-chip ping-pong needs ≥2 cores per node on %s", mach.Name)
		}
		place = simnet.LinearPlacement(mach)
	} else {
		place = simnet.SpreadPlacement()
	}
	topo := simnet.NewTopology(mach.Params, 2, place)

	ops0 := make([]simmpi.Op, 0, 2*rounds)
	ops1 := make([]simmpi.Op, 0, 2*rounds)
	for i := 0; i < rounds; i++ {
		ops0 = append(ops0, simmpi.Send(1, bytes), simmpi.Recv(1))
		ops1 = append(ops1, simmpi.Recv(0), simmpi.Send(0, bytes))
	}
	sim := simmpi.New(topo)
	sim.SetProgram(0, simmpi.Ops(ops0...))
	sim.SetProgram(1, simmpi.Ops(ops1...))
	res, err := sim.Run()
	if err != nil {
		return 0, err
	}
	return res.Time / float64(2*rounds), nil
}

// Sweep measures ping-pong times over the given message sizes.
func Sweep(mach machine.Machine, path logp.Path, sizes []int, rounds int) ([]Sample, error) {
	out := make([]Sample, 0, len(sizes))
	for _, sz := range sizes {
		t, err := PingPong(mach, path, sz, rounds)
		if err != nil {
			return nil, err
		}
		out = append(out, Sample{Bytes: sz, Time: t})
	}
	return out, nil
}

// DefaultSizes returns the message-size sweep of paper Figure 3:
// sizes from 64 bytes to 12 KB spanning the 1024-byte protocol switch.
func DefaultSizes() []int {
	return []int{
		64, 128, 256, 512, 768, 1024,
		1025, 1536, 2048, 3072, 4096, 6144, 8192, 10240, 12288,
	}
}

// Derived holds platform parameters recovered from ping-pong measurements,
// mirroring paper Table 2.
type Derived struct {
	G, L, O            float64 // off-node
	Gcopy, Gdma        float64 // on-chip per-byte costs
	Ocopy, Odma, Ochip float64 // on-chip overheads; Ochip = Ocopy + Odma
}

// FitOffNode derives G, o and L from off-node ping-pong samples using the
// paper's method: G is the slope of the sub-1KB segment (equal to the
// above-1KB slope), then equations (1) and (2) are solved simultaneously at
// one representative size on each side of the handshake threshold.
func FitOffNode(samples []Sample) (Derived, error) {
	small, large := split(samples)
	if len(small) < 2 || len(large) < 1 {
		return Derived{}, fmt.Errorf("fitting: need samples on both sides of the %d-byte threshold", logp.EagerThreshold)
	}
	_, g := linfit(small)

	// Equation (1) at size s1: T1 = 2o + L + s1·G  ⇒  A ≡ 2o + L.
	// Equation (2) at size s2 (with oh ≈ 0, h = 2L):
	//   T2 = 3o + 3L + s2·G  ⇒  B ≡ 3o + 3L.
	s1 := small[len(small)-1]
	s2 := large[len(large)-1]
	A := s1.Time - float64(s1.Bytes)*g
	B := s2.Time - float64(s2.Bytes)*g
	o := A - B/3
	l := 2*B/3 - A

	return Derived{G: g, O: o, L: l}, nil
}

// FitOnChip derives Gcopy, Gdma, ocopy and odma from on-chip ping-pong
// samples: the two slopes come from the two segments, then equations (5)
// and (6) are solved simultaneously (paper Section 3.2).
func FitOnChip(samples []Sample) (Derived, error) {
	small, large := split(samples)
	if len(small) < 2 || len(large) < 2 {
		return Derived{}, fmt.Errorf("fitting: need ≥2 samples on both sides of the %d-byte threshold", logp.EagerThreshold)
	}
	_, gcopy := linfit(small)
	_, gdma := linfit(large)

	// Equation (5): T5 = 2·ocopy + s·Gcopy.
	s5 := small[len(small)-1]
	ocopy := (s5.Time - float64(s5.Bytes)*gcopy) / 2

	// Equation (6): T6 = (ocopy + odma) + s·Gdma + ocopy.
	s6 := large[len(large)-1]
	odma := s6.Time - float64(s6.Bytes)*gdma - 2*ocopy

	return Derived{
		Gcopy: gcopy,
		Gdma:  gdma,
		Ocopy: ocopy,
		Odma:  odma,
		Ochip: ocopy + odma,
	}, nil
}

// DeriveTable2 runs the complete Table 2 derivation on a machine: off-node
// and on-chip sweeps followed by both fits.
func DeriveTable2(mach machine.Machine) (Derived, error) {
	off, err := Sweep(mach, logp.OffNode, DefaultSizes(), 4)
	if err != nil {
		return Derived{}, err
	}
	on, err := Sweep(mach, logp.OnChip, DefaultSizes(), 4)
	if err != nil {
		return Derived{}, err
	}
	dOff, err := FitOffNode(off)
	if err != nil {
		return Derived{}, err
	}
	dOn, err := FitOnChip(on)
	if err != nil {
		return Derived{}, err
	}
	dOff.Gcopy, dOff.Gdma = dOn.Gcopy, dOn.Gdma
	dOff.Ocopy, dOff.Odma, dOff.Ochip = dOn.Ocopy, dOn.Odma, dOn.Ochip
	return dOff, nil
}

// Params converts derived values into a logp.Params set usable by the
// models.
func (d Derived) Params(name string) logp.Params {
	return logp.Params{
		Name:  name,
		G:     d.G,
		L:     d.L,
		O:     d.O,
		Gcopy: d.Gcopy,
		Gdma:  d.Gdma,
		Ochip: d.Ochip,
		Ocopy: d.Ocopy,
	}
}

// ModelCurve returns the Table 1 model predictions at the sample sizes, for
// overlaying model and "measurement" as in Figure 3.
func ModelCurve(p logp.Params, path logp.Path, sizes []int) []Sample {
	out := make([]Sample, 0, len(sizes))
	for _, sz := range sizes {
		out = append(out, Sample{Bytes: sz, Time: p.TotalComm(path, sz)})
	}
	return out
}

// CompareCurves summarises the relative error between two sample sets at
// identical sizes.
func CompareCurves(model, measured []Sample) (stats.ErrorSummary, error) {
	if len(model) != len(measured) {
		return stats.ErrorSummary{}, fmt.Errorf("fitting: mismatched curve lengths %d vs %d", len(model), len(measured))
	}
	pred := make([]float64, len(model))
	act := make([]float64, len(model))
	for i := range model {
		if model[i].Bytes != measured[i].Bytes {
			return stats.ErrorSummary{}, fmt.Errorf("fitting: mismatched sizes at index %d", i)
		}
		pred[i] = model[i].Time
		act[i] = measured[i].Time
	}
	return stats.Summarize(pred, act), nil
}

func split(samples []Sample) (small, large []Sample) {
	for _, s := range samples {
		if s.Bytes <= logp.EagerThreshold {
			small = append(small, s)
		} else {
			large = append(large, s)
		}
	}
	return small, large
}

func linfit(samples []Sample) (a, b float64) {
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = float64(s.Bytes)
		ys[i] = s.Time
	}
	return stats.LinearFit(xs, ys)
}
