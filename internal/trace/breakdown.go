package trace

import (
	"fmt"
	"io"
)

// WriteBreakdown renders the paper Section 5.4 / Figure 11 style activity
// breakdown as an aligned text table: one row per rank with its compute,
// send, receive and collective time plus the communication share of its
// lifetime, followed by the aggregate summary and the most comm-bound
// ranks. Output is a pure function of the profiles (fixed-precision
// formatting, no wall-clock state), so it is golden-testable.
func WriteBreakdown(w io.Writer, profiles []RankProfile, top int) {
	fmt.Fprintf(w, "%5s %12s %12s %12s %12s %7s\n",
		"rank", "compute_us", "send_us", "recv_us", "coll_us", "comm%")
	for _, p := range profiles {
		fmt.Fprintf(w, "%5d %12.1f %12.1f %12.1f %12.1f %7.1f\n",
			p.Rank, p.Compute, p.Send, p.Recv, p.Coll, 100*p.CommShare())
	}
	s := Summarize(profiles)
	fmt.Fprintf(w, "ranks=%d makespan=%.1fµs compute=%.1fµs comm=%.1fµs mean_comm=%.1f%%\n",
		s.Ranks, s.MakeSpan, s.TotalCompute, s.TotalComm, 100*s.MeanCommShare)
	fmt.Fprintf(w, "critical rank %d (last to finish), most comm-bound rank %d\n",
		s.CriticalRank, s.BoundRank)
	if top > 0 {
		fmt.Fprint(w, "top comm-bound:")
		for _, p := range TopCommBound(profiles, top) {
			fmt.Fprintf(w, " %d(%.1f%%)", p.Rank, 100*p.CommShare())
		}
		fmt.Fprintln(w)
	}
}
