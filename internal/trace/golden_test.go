package trace

// Golden lock-down of the text renderers: the Gantt chart and the activity
// breakdown for a small LU run are pinned byte-for-byte, so any drift in
// span recording, profile accounting or the fixed-precision formatting
// shows up as a diff against testdata/lu_breakdown_golden.txt.
//
// To bless an intentional change:
//
//	go test ./internal/trace -run TestBreakdownGolden -update

import (
	"bytes"
	"flag"
	"os"
	"testing"

	"repro/internal/apps"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runLUTraced runs one LU iteration on a 16³ grid over 4×4 ranks with a
// recorder attached.
func runLUTraced(t *testing.T) (*Recorder, int) {
	t.Helper()
	g := grid.Cube(16)
	bm := apps.LU(g)
	dec := grid.MustDecompose(g, 4, 4)
	mach := machine.XT4()
	sched, err := bm.Schedule(dec, 1)
	if err != nil {
		t.Fatal(err)
	}
	topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	rec := NewRecorder()
	sim, err := simmpi.NewWithOptions(topo, simmpi.Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	for r, p := range sched.Programs() {
		sim.SetProgram(r, p)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return rec, dec.P()
}

func TestBreakdownGolden(t *testing.T) {
	const path = "testdata/lu_breakdown_golden.txt"
	rec, ranks := runLUTraced(t)
	var buf bytes.Buffer
	rec.Gantt(&buf, ranks, 72)
	buf.WriteByte('\n')
	WriteBreakdown(&buf, rec.Profile(ranks), 3)
	got := buf.Bytes()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to record)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("rendered output drifted from golden; run with -update and explain the drift\ngot:\n%s\nwant:\n%s", got, want)
	}
}
