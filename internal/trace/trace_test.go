package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
)

func TestRecorderCollectsSpans(t *testing.T) {
	r := NewRecorder()
	r.Span(0, simmpi.OpCompute, -1, 0, 0, 5)
	r.Span(0, simmpi.OpSend, 1, 128, 5, 9)
	r.Span(1, simmpi.OpRecv, 0, 128, 0, 9)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Spans()[1].Duration() != 4 {
		t.Errorf("duration = %v", r.Spans()[1].Duration())
	}
	ps := r.Profile(2)
	if ps[0].Compute != 5 || ps[0].Send != 4 || ps[0].Finish != 9 {
		t.Errorf("profile[0] = %+v", ps[0])
	}
	if ps[1].Recv != 9 || ps[1].Comm() != 9 {
		t.Errorf("profile[1] = %+v", ps[1])
	}
	if share := ps[1].CommShare(); share != 1 {
		t.Errorf("comm share = %v", share)
	}
}

func TestSummaryAndTopCommBound(t *testing.T) {
	ps := []RankProfile{
		{Rank: 0, Compute: 9, Send: 1, Finish: 10},
		{Rank: 1, Compute: 2, Recv: 10, Finish: 12},
		{Rank: 2, Compute: 5, Coll: 5, Finish: 10},
	}
	s := Summarize(ps)
	if s.Ranks != 3 || s.MakeSpan != 12 || s.CriticalRank != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.BoundRank != 1 {
		t.Errorf("bound rank = %d", s.BoundRank)
	}
	if math.Abs(s.TotalComm-16) > 1e-12 || math.Abs(s.TotalCompute-16) > 1e-12 {
		t.Errorf("totals = %v/%v", s.TotalCompute, s.TotalComm)
	}
	top := TopCommBound(ps, 2)
	if len(top) != 2 || top[0].Rank != 1 {
		t.Errorf("top = %+v", top)
	}
	if got := TopCommBound(ps, 10); len(got) != 3 {
		t.Errorf("over-sized k returned %d", len(got))
	}
}

// runTraced runs a small Sweep3D iteration with a recorder attached.
func runTraced(t *testing.T) (*Recorder, simmpi.Result, int) {
	t.Helper()
	g := grid.Cube(16)
	bm := apps.Sweep3D(g, 2)
	dec := grid.MustDecompose(g, 4, 4)
	mach := machine.XT4()
	sched, err := bm.Schedule(dec, 1)
	if err != nil {
		t.Fatal(err)
	}
	topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	rec := NewRecorder()
	sim, err := simmpi.NewWithOptions(topo, simmpi.Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	for r, p := range sched.Programs() {
		sim.SetProgram(r, p)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rec, res, dec.P()
}

func TestTracedSimulationConsistency(t *testing.T) {
	rec, res, ranks := runTraced(t)
	ps := rec.Profile(ranks)
	for r := 0; r < ranks; r++ {
		// Traced compute equals the simulator's own accounting.
		if math.Abs(ps[r].Compute-res.ComputeTime[r]) > 1e-9 {
			t.Errorf("rank %d: traced compute %v vs accounted %v",
				r, ps[r].Compute, res.ComputeTime[r])
		}
		// Spans tile the rank's lifetime: compute + comm = finish.
		if math.Abs(ps[r].Idle()) > 1e-6*(1+ps[r].Finish) {
			t.Errorf("rank %d: idle gap %v", r, ps[r].Idle())
		}
		if math.Abs(ps[r].Finish-res.RankFinish[r]) > 1e-9 {
			t.Errorf("rank %d: finish %v vs %v", r, ps[r].Finish, res.RankFinish[r])
		}
	}
	sum := Summarize(ps)
	if math.Abs(sum.MakeSpan-res.Time) > 1e-9 {
		t.Errorf("makespan %v vs %v", sum.MakeSpan, res.Time)
	}
	// The sweep origin corner ranks wait the least; interior ranks have
	// non-trivial comm share.
	if sum.MeanCommShare <= 0 || sum.MeanCommShare >= 1 {
		t.Errorf("mean comm share = %v", sum.MeanCommShare)
	}
}

func TestSpansNonOverlappingPerRank(t *testing.T) {
	rec, _, ranks := runTraced(t)
	last := make([]float64, ranks)
	for _, s := range rec.Spans() {
		if s.Start < last[s.Rank]-1e-9 {
			t.Fatalf("rank %d: span starts at %v before previous end %v", s.Rank, s.Start, last[s.Rank])
		}
		if s.End < s.Start {
			t.Fatalf("negative span %+v", s)
		}
		last[s.Rank] = s.End
	}
}

func TestGanttRendering(t *testing.T) {
	rec, _, ranks := runTraced(t)
	var buf bytes.Buffer
	rec.Gantt(&buf, ranks, 60)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != ranks+1 {
		t.Fatalf("gantt lines = %d, want %d+axis", len(lines), ranks)
	}
	if !strings.ContainsAny(out, "csra") {
		t.Error("gantt contains no activity glyphs")
	}
	// Empty recorder renders a placeholder.
	var empty bytes.Buffer
	NewRecorder().Gantt(&empty, 2, 10)
	if !strings.Contains(empty.String(), "no spans") {
		t.Errorf("empty gantt = %q", empty.String())
	}
}
