// Package trace records per-rank activity spans from the discrete-event
// simulator and turns them into the bottleneck analyses of paper Section
// 5.4: computation/communication/idle breakdowns per rank, aggregate
// pipeline statistics, identification of the critical (busiest and most
// comm-bound) ranks, and a plain-text Gantt rendering for inspection.
//
// The model predicts these breakdowns (Figure 11); the trace measures them
// from the simulated execution, so model abstraction error is visible at
// per-rank granularity.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/simmpi"
)

// Span is one recorded activity interval of a rank.
type Span struct {
	Rank       int
	Op         simmpi.OpKind
	Peer       int // -1 for compute and all-reduce
	Bytes      int
	Start, End float64
}

// Duration returns the span length in µs.
func (s Span) Duration() float64 { return s.End - s.Start }

// Recorder implements simmpi.Tracer by accumulating spans.
type Recorder struct {
	spans []Span
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Span implements simmpi.Tracer.
func (r *Recorder) Span(rank int, op simmpi.OpKind, peer, bytes int, start, end float64) {
	r.spans = append(r.spans, Span{Rank: rank, Op: op, Peer: peer, Bytes: bytes, Start: start, End: end})
}

// Spans returns all recorded spans in recording order.
func (r *Recorder) Spans() []Span { return r.spans }

// Len returns the number of recorded spans.
func (r *Recorder) Len() int { return len(r.spans) }

// RankProfile is the activity breakdown of one rank over a run.
type RankProfile struct {
	Rank    int
	Compute float64 // time in Compute spans
	Send    float64 // time blocked in sends
	Recv    float64 // time blocked in receives (includes pipeline waiting)
	Coll    float64 // time in collectives
	Finish  float64 // time of the rank's last span end
}

// Comm returns the total communication time (send + recv + collectives).
func (p RankProfile) Comm() float64 { return p.Send + p.Recv + p.Coll }

// Idle returns Finish − Compute − Comm: time not covered by any span
// (zero in the current runtime, where ranks are always in exactly one
// span until their program ends).
func (p RankProfile) Idle() float64 { return p.Finish - p.Compute - p.Comm() }

// CommShare returns the communication fraction of the rank's lifetime.
func (p RankProfile) CommShare() float64 {
	if p.Finish == 0 {
		return 0
	}
	return p.Comm() / p.Finish
}

// Profile aggregates a recording into per-rank profiles, indexed by rank.
func (r *Recorder) Profile(ranks int) []RankProfile {
	out := make([]RankProfile, ranks)
	for i := range out {
		out[i].Rank = i
	}
	for _, s := range r.spans {
		if s.Rank < 0 || s.Rank >= ranks {
			continue
		}
		p := &out[s.Rank]
		d := s.Duration()
		switch s.Op {
		case simmpi.OpCompute:
			p.Compute += d
		case simmpi.OpSend:
			p.Send += d
		case simmpi.OpRecv:
			p.Recv += d
		case simmpi.OpAllReduce:
			p.Coll += d
		}
		if s.End > p.Finish {
			p.Finish = s.End
		}
	}
	return out
}

// Summary is the aggregate of all rank profiles.
type Summary struct {
	Ranks        int
	TotalCompute float64
	TotalComm    float64
	MakeSpan     float64
	// MeanCommShare is the average per-rank communication fraction.
	MeanCommShare float64
	// CriticalRank is the rank with the largest finish time; BoundRank is
	// the rank with the largest communication share.
	CriticalRank, BoundRank int
}

// Summarize aggregates per-rank profiles.
func Summarize(profiles []RankProfile) Summary {
	var s Summary
	s.Ranks = len(profiles)
	var shareSum float64
	var maxShare float64 = -1
	for _, p := range profiles {
		s.TotalCompute += p.Compute
		s.TotalComm += p.Comm()
		if p.Finish > s.MakeSpan {
			s.MakeSpan = p.Finish
			s.CriticalRank = p.Rank
		}
		share := p.CommShare()
		shareSum += share
		if share > maxShare {
			maxShare = share
			s.BoundRank = p.Rank
		}
	}
	if s.Ranks > 0 {
		s.MeanCommShare = shareSum / float64(s.Ranks)
	}
	return s
}

// TopCommBound returns the k ranks with the highest communication share,
// most-bound first.
func TopCommBound(profiles []RankProfile, k int) []RankProfile {
	sorted := make([]RankProfile, len(profiles))
	copy(sorted, profiles)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].CommShare() > sorted[j].CommShare()
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// Gantt renders a plain-text activity chart: one row per rank, buckets
// labelled by the dominant activity in that time slice (c = compute,
// s = send, r = recv, a = all-reduce, · = idle/none).
func (r *Recorder) Gantt(w io.Writer, ranks, width int) {
	if width <= 0 {
		width = 80
	}
	var end float64
	for _, s := range r.spans {
		if s.End > end {
			end = s.End
		}
	}
	if end == 0 {
		fmt.Fprintln(w, "(no spans)")
		return
	}
	bucket := end / float64(width)
	// For each rank and bucket, pick the op covering the most time.
	type cell [4]float64 // compute, send, recv, coll
	cells := make([]cell, ranks*width)
	for _, s := range r.spans {
		if s.Rank < 0 || s.Rank >= ranks {
			continue
		}
		b0 := int(s.Start / bucket)
		b1 := int(s.End / bucket)
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			lo := float64(b) * bucket
			hi := lo + bucket
			overlap := minF(hi, s.End) - maxF(lo, s.Start)
			if overlap <= 0 {
				continue
			}
			idx := opIndex(s.Op)
			if idx >= 0 {
				cells[s.Rank*width+b][idx] += overlap
			}
		}
	}
	glyphs := [4]byte{'c', 's', 'r', 'a'}
	var sb strings.Builder
	for rank := 0; rank < ranks; rank++ {
		sb.Reset()
		fmt.Fprintf(&sb, "%4d |", rank)
		for b := 0; b < width; b++ {
			c := cells[rank*width+b]
			best, bestV := -1, 0.0
			for i, v := range c {
				if v > bestV {
					best, bestV = i, v
				}
			}
			if best < 0 {
				sb.WriteByte('.')
			} else {
				sb.WriteByte(glyphs[best])
			}
		}
		fmt.Fprintln(w, sb.String())
	}
	fmt.Fprintf(w, "      0%*s%.1fµs\n", width-6, "", end)
}

func opIndex(op simmpi.OpKind) int {
	switch op {
	case simmpi.OpCompute:
		return 0
	case simmpi.OpSend:
		return 1
	case simmpi.OpRecv:
		return 2
	case simmpi.OpAllReduce:
		return 3
	}
	return -1
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
