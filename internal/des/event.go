package des

import (
	"math"
	"unsafe"
)

// Kind identifies the dispatch target of a typed event. Kind 0 is reserved
// for closure events scheduled through At and Schedule; packages built on
// the engine define their own kinds starting at 1 and receive them through
// the Handler installed with SetHandler.
type Kind uint16

// kindClosure marks events scheduled via the closure-compatible API; their
// Arg0 indexes the engine's closure registry and the Handler is not
// consulted.
const kindClosure Kind = 0

// Event is a typed event record as delivered to a Handler. Scheduling one
// performs no heap allocation (beyond amortised growth of the engine's
// backing arrays) and no interface boxing.
//
// Time and Seq order execution: events fire in (Time, Seq) order, Seq being
// the global scheduling sequence number, which makes same-time events fire
// in the order they were scheduled and simulations bit-for-bit
// reproducible.
//
// Kind, Arg0 and Arg1 are opaque to the engine: the simulation built on
// top encodes its state-machine transition in Kind and small operands
// (a rank index, a pooled-object index) in the args.
type Event struct {
	Time float64
	Seq  uint64
	Kind Kind
	Arg0 int32
	Arg1 int32
}

// Handler dispatches typed events. Exactly one handler serves an engine;
// it switches on ev.Kind. It is never called for closure events.
type Handler func(ev Event)

// The in-heap representation is a 16-byte key pair; the event's
// {kind, arg0, arg1} payload lives in a side pool addressed by the slot
// index packed into the low bits of the order word. Keeping the heap
// records this small makes every sift move a single 16-byte copy and every
// comparison two uint64 compares.
//
// tbits is math.Float64bits of the (non-negative) timestamp; for t ≥ 0 the
// IEEE-754 bit pattern is monotone in t, so ordering by tbits as a uint64
// equals ordering by time while avoiding float-compare NaN handling in the
// innermost loop. order is seq<<slotBits | slot: seq is unique per event,
// so ordering by the packed word equals ordering by seq alone, and the
// slot rides along for free.
type heapEvent struct {
	tbits uint64
	order uint64
}

const (
	slotBits = 24
	slotMask = 1<<slotBits - 1
	// maxSeq bounds the scheduling sequence number so seq<<slotBits cannot
	// overflow: about 1.1e12 events, far beyond any simulation here.
	maxSeq = 1<<(64-slotBits) - 1
)

func (ev heapEvent) time() float64 { return math.Float64frombits(ev.tbits) }

// payload is the per-pending-event typed record in the engine's side pool.
type payload struct {
	kind       Kind
	arg0, arg1 int32
}

// eventHeap is a 4-ary min-heap of heapEvent values ordered by
// (tbits, order). Compared with container/heap it avoids the interface
// boxing of every push/pop and, being 4-ary, halves the tree depth so
// sift-down touches fewer cache lines per operation. Sifting moves a hole
// rather than swapping, one record copy per level instead of three.
//
// The logical element k lives at buf[base+k], with base chosen at
// allocation time so that every sibling group {4k+1 … 4k+4} starts on a
// 64-byte boundary: a sift-down then reads exactly one cache line per
// level instead of straddling two.
type eventHeap struct {
	buf  []heapEvent
	base int // 0..3 padding slots before the root
	n    int // logical size
}

// alignBase returns the root offset that puts sibling groups on cache-line
// boundaries: (addr + 16·(base+1)) ≡ 0 (mod 64) makes logical index 1 — and
// hence every group start 4k+1 — line-aligned.
func alignBase(buf []heapEvent) int {
	addr := uintptr(unsafe.Pointer(unsafe.SliceData(buf)))
	for b := 0; b < 4; b++ {
		if (addr+16*uintptr(b+1))%64 == 0 {
			return b
		}
	}
	return 0 // unreachable: addr is 16-byte aligned
}

func (h *eventHeap) len() int { return h.n }

// clear empties the heap, keeping the backing array and its alignment.
func (h *eventHeap) clear() { h.n = 0 }

// grow reallocates with doubled capacity and a fresh alignment base.
func (h *eventHeap) grow() {
	capNew := 2 * (len(h.buf) + 4)
	buf := make([]heapEvent, capNew)
	base := alignBase(buf)
	copy(buf[base:], h.buf[h.base:h.base+h.n])
	h.buf = buf
	h.base = base
}

// push inserts ev, restoring the heap property by sifting a hole up.
func (h *eventHeap) push(ev heapEvent) {
	if h.base+h.n == len(h.buf) {
		h.grow()
	}
	s := h.buf[h.base:]
	i := h.n
	h.n++
	for i > 0 {
		p := (i - 1) / 4
		if !(ev.tbits < s[p].tbits || (ev.tbits == s[p].tbits && ev.order < s[p].order)) {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = ev
}

// pop removes and returns the minimum event. It must not be called on an
// empty heap.
func (h *eventHeap) pop() heapEvent {
	s := h.buf[h.base:]
	n := h.n - 1
	h.n = n
	min := s[0]
	last := s[n]
	if n == 0 {
		return min
	}
	i := 0
	for {
		c := 4*i + 1
		if c+3 < n {
			// Full sibling group: branch-free tree minimum. The compares
			// on near-random keys mispredict badly as branches; SETcc and
			// mask merges keep the pipeline full.
			g := s[c : c+4 : c+4]
			ta, oa, ia := minPair(g[0].tbits, g[0].order, c, g[1].tbits, g[1].order, c+1)
			tb, ob, ib := minPair(g[2].tbits, g[2].order, c+2, g[3].tbits, g[3].order, c+3)
			bt, bo, best := minPair(ta, oa, ia, tb, ob, ib)
			if !(bt < last.tbits || (bt == last.tbits && bo < last.order)) {
				break
			}
			s[i] = s[best]
			i = best
			continue
		}
		if c >= n {
			break
		}
		// Trailing partial group.
		best := c
		bt, bo := s[c].tbits, s[c].order
		for j := c + 1; j < n; j++ {
			if s[j].tbits < bt || (s[j].tbits == bt && s[j].order < bo) {
				best, bt, bo = j, s[j].tbits, s[j].order
			}
		}
		if !(bt < last.tbits || (bt == last.tbits && bo < last.order)) {
			break
		}
		s[i] = s[best]
		i = best
	}
	s[i] = last
	return min
}

// minPair returns the smaller of two (tbits, order, index) keys without
// branches: the comparison builds an all-ones/all-zero mask via SETcc and
// the result is merged with XOR-AND.
func minPair(t0, o0 uint64, i0 int, t1, o1 uint64, i1 int) (uint64, uint64, int) {
	var lt, eq, lo uint64
	if t1 < t0 {
		lt = 1
	}
	if t1 == t0 {
		eq = 1
	}
	if o1 < o0 {
		lo = 1
	}
	m := -(lt | (eq & lo)) // all ones iff (t1,o1) < (t0,o0)
	return t0 ^ ((t0 ^ t1) & m), o0 ^ ((o0 ^ o1) & m), i0 ^ ((i0 ^ i1) & int(m))
}

// top returns the minimum event without removing it.
func (h *eventHeap) top() heapEvent { return h.buf[h.base] }

// heapEvent3 is the in-heap record of a canonically ordered event
// (Engine.AtPriCtx): a 24-byte key triple ordered lexicographically by
// (tbits, ctx, order). tbits and order are as in heapEvent, except that the
// high bits of order hold the caller's content-derived priority instead of
// a sequence number. ctx is the bit pattern of the scheduling context's
// virtual time — the timestamp of the event whose handler scheduled this
// one. Sequence numbers refine context-time order (an engine executes
// events in time order, so a scheduling call from an earlier context always
// draws the smaller sequence number); making the context time an explicit
// key therefore never changes a serial run's order, but unlike a sequence
// number it is a value a barrier coordinator can carry across shards.
type heapEvent3 struct {
	tbits uint64
	ctx   uint64
	order uint64
}

func (ev heapEvent3) time() float64 { return math.Float64frombits(ev.tbits) }

func ev3Less(a, b heapEvent3) bool {
	if a.tbits != b.tbits {
		return a.tbits < b.tbits
	}
	if a.ctx != b.ctx {
		return a.ctx < b.ctx
	}
	return a.order < b.order
}

// eventHeap3 is a plain 4-ary min-heap of heapEvent3 records. It serves the
// canonical-order mode only — parallel shard engines, whose per-event cost
// is dominated by cross-shard bookkeeping — so it skips the cache-line
// alignment and branch-free sift tuning of eventHeap.
type eventHeap3 struct {
	buf []heapEvent3
}

func (h *eventHeap3) len() int { return len(h.buf) }

func (h *eventHeap3) clear() { h.buf = h.buf[:0] }

func (h *eventHeap3) push(ev heapEvent3) {
	h.buf = append(h.buf, ev)
	i := len(h.buf) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !ev3Less(ev, h.buf[p]) {
			break
		}
		h.buf[i] = h.buf[p]
		i = p
	}
	h.buf[i] = ev
}

func (h *eventHeap3) pop() heapEvent3 {
	s := h.buf
	n := len(s) - 1
	min := s[0]
	last := s[n]
	h.buf = s[:n]
	if n == 0 {
		return min
	}
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if ev3Less(s[j], s[best]) {
				best = j
			}
		}
		if !ev3Less(s[best], last) {
			break
		}
		s[i] = s[best]
		i = best
	}
	s[i] = last
	return min
}

// top returns the minimum event without removing it.
func (h *eventHeap3) top() heapEvent3 { return h.buf[0] }
