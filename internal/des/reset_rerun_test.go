package des

import (
	"reflect"
	"testing"
)

// The shard scheduler leans on bounded runs (RunBefore/RunUntil) with the
// engine reused across simulations. This pins the contract that a Reset
// after a *bounded* run — i.e. with events still pending, closures still
// registered and payload slots still occupied — yields an engine whose next
// run is bit-identical to a fresh engine's.

// traceRun schedules a fixed workload (typed + closure events, same-time
// ties, nested scheduling) and runs it to completion, returning the
// execution trace and final state.
func traceRun(e *Engine, trace *[]Event) (end float64, ran uint64) {
	e.SetHandler(func(ev Event) {
		*trace = append(*trace, ev)
		if ev.Kind == 2 && ev.Arg0 < 3 {
			e.ScheduleKind(0.5, 2, ev.Arg0+1, ev.Arg1)
		}
	})
	e.AtKind(1, 2, 0, 7)
	e.AtKind(1, 3, 0, 0) // same-time tie: must fire after the kind-2 event
	e.At(2, func() { *trace = append(*trace, Event{Time: e.Now(), Kind: 99}) })
	e.AtKind(4, 4, 5, 5)
	return e.Run(), e.EventsRun()
}

func TestResetAfterBoundedRunUntilIsBitIdentical(t *testing.T) {
	// Fresh engine, full run: the reference trace.
	var fresh Engine
	var want []Event
	wantEnd, wantRan := traceRun(&fresh, &want)

	// Second engine: run a *different* workload partway with RunUntil,
	// leaving pending typed events, pending closures and a mid-run clock.
	var e Engine
	e.SetHandler(func(Event) {})
	e.AtKind(1, 2, 0, 0)
	e.AtKind(5, 2, 1, 1) // never reached before the bound
	e.At(6, func() {})   // abandoned closure: Reset must release it
	e.RunUntil(3)
	if e.Now() != 3 || e.Pending() != 2 {
		t.Fatalf("bounded run state: now=%v pending=%d, want 3, 2", e.Now(), e.Pending())
	}

	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.EventsRun() != 0 {
		t.Fatalf("reset engine not pristine: now=%v pending=%d ran=%d", e.Now(), e.Pending(), e.EventsRun())
	}

	var got []Event
	gotEnd, gotRan := traceRun(&e, &got)
	if gotEnd != wantEnd || gotRan != wantRan {
		t.Fatalf("re-run end=%v ran=%d, fresh end=%v ran=%d", gotEnd, gotRan, wantEnd, wantRan)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("re-run trace diverged from fresh engine:\n got %v\nwant %v", got, want)
	}
}

// TestResetAfterRunBeforeIsBitIdentical is the same guarantee for the
// strict-bound variant the shard scheduler uses.
func TestResetAfterRunBeforeIsBitIdentical(t *testing.T) {
	var fresh Engine
	var want []Event
	wantEnd, wantRan := traceRun(&fresh, &want)

	var e Engine
	e.SetHandler(func(Event) {})
	for i := int32(0); i < 8; i++ {
		e.AtKind(float64(i), 2, i, 0)
	}
	e.RunBefore(4.5)
	if e.EventsRun() != 5 {
		t.Fatalf("RunBefore executed %d events, want 5", e.EventsRun())
	}
	e.Reset()

	var got []Event
	gotEnd, gotRan := traceRun(&e, &got)
	if gotEnd != wantEnd || gotRan != wantRan || !reflect.DeepEqual(got, want) {
		t.Fatalf("re-run after RunBefore+Reset diverged (end=%v ran=%d)", gotEnd, gotRan)
	}
}
