package des

import (
	"math"
	"testing"
)

// collect installs a recording handler and returns the log slice pointer.
func collect(e *Engine) *[]Event {
	var log []Event
	e.SetHandler(func(ev Event) { log = append(log, ev) })
	return &log
}

func TestCanonicalOrderByTimeCtxPri(t *testing.T) {
	var e Engine
	log := collect(&e)
	// Scheduled deliberately out of canonical order: the engine must fire
	// by (time, ctx, pri), never by scheduling order.
	e.AtPriCtx(2, 1, 5, 1, 0, 0) // third: latest time
	e.AtPriCtx(1, 1, 9, 1, 1, 0) // second: same (t, ctx), larger pri
	e.AtPriCtx(1, 1, 2, 1, 2, 0) // first
	e.Run()
	if len(*log) != 3 {
		t.Fatalf("ran %d events", len(*log))
	}
	want := []int32{2, 1, 0}
	for i, ev := range *log {
		if ev.Arg0 != want[i] {
			t.Fatalf("order %v, want args %v", *log, want)
		}
	}
}

func TestCanonicalCtxBreaksTies(t *testing.T) {
	var e Engine
	log := collect(&e)
	// Same time, pri order opposing ctx order: ctx must dominate.
	e.AtPriCtx(5, 3, 1, 1, 0, 0) // later context, smaller pri
	e.AtPriCtx(5, 2, 9, 1, 1, 0) // earlier context wins despite larger pri
	e.Run()
	if (*log)[0].Arg0 != 1 || (*log)[1].Arg0 != 0 {
		t.Fatalf("ctx did not dominate pri: %v", *log)
	}
}

func TestAtPriUsesCurrentTimeAsContext(t *testing.T) {
	var e Engine
	var ctxs []float64
	e.SetHandler(func(ev Event) {
		ctxs = append(ctxs, e.CurCtx())
		if ev.Arg0 == 0 {
			// Scheduled from now=1: the child must carry ctx 1 and lose
			// the same-time tie against a pri-0 rival from context 2.
			e.AtPri(4, 7, 1, 10, 0)
		}
		if ev.Arg0 == 1 {
			e.AtPri(4, 0, 1, 11, 0)
		}
	})
	e.AtPriCtx(1, 0, 0, 1, 0, 0)
	e.AtPriCtx(2, 0, 1, 1, 1, 0)
	e.Run()
	// Execution: arg0@1 (ctx 0), arg1@2 (ctx 0), arg10@4 (ctx 1), arg11@4 (ctx 2).
	want := []float64{0, 0, 1, 2}
	if len(ctxs) != len(want) {
		t.Fatalf("ran %d events", len(ctxs))
	}
	for i, c := range ctxs {
		if c != want[i] {
			t.Fatalf("CurCtx sequence %v, want %v", ctxs, want)
		}
	}
}

// TestCanonicalHeapStress drives eventHeap3 through a large interleaved
// push/pop sequence with clustered keys and verifies pops come out in
// exact (time, ctx, pri) order.
func TestCanonicalHeapStress(t *testing.T) {
	var h eventHeap3
	rng := uint64(1)
	next := func(n uint64) uint64 { // xorshift, deterministic
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	var live int
	popSorted := func(prev *heapEvent3, hasPrev *bool) {
		ev := h.pop()
		live--
		if *hasPrev && ev3Less(ev, *prev) {
			t.Fatalf("pop out of order: %+v after %+v", ev, *prev)
		}
		*prev, *hasPrev = ev, true
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 3000; i++ {
			tt := float64(next(16)) // clustered: many exact ties
			ctx := float64(next(4))
			if ctx > tt {
				ctx = tt
			}
			h.push(heapEvent3{
				tbits: math.Float64bits(tt),
				ctx:   math.Float64bits(ctx),
				order: next(8)<<slotBits | uint64(i),
			})
			live++
		}
		var prev heapEvent3
		hasPrev := false
		drain := live
		if round < 3 {
			drain = live / 2 // leave half in place across rounds
		}
		for i := 0; i < drain; i++ {
			popSorted(&prev, &hasPrev)
		}
	}
	if h.len() != 0 {
		t.Fatalf("%d events left after drain", h.len())
	}
	h.push(heapEvent3{tbits: 1, ctx: 1, order: 1})
	h.clear()
	if h.len() != 0 {
		t.Fatal("clear left events behind")
	}
}

func TestCanonicalMixedWithSequencePanics(t *testing.T) {
	var e Engine
	collect(&e)
	e.AtPri(1, 0, 1, 0, 0)
	e.AtKind(1, 1, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("mixed canonical and sequence-ordered events did not panic")
		}
	}()
	e.Run()
}

func TestAtPriCtxRejectsBadArguments(t *testing.T) {
	cases := []struct {
		name string
		call func(e *Engine)
	}{
		{"past time", func(e *Engine) { e.AtPriCtx(0.5, 0, 0, 1, 0, 0) }},
		{"ctx after t", func(e *Engine) { e.AtPriCtx(2, 3, 0, 1, 0, 0) }},
		{"negative ctx", func(e *Engine) { e.AtPriCtx(2, -1, 0, 1, 0, 0) }},
		{"NaN ctx", func(e *Engine) { e.AtPriCtx(2, math.NaN(), 0, 1, 0, 0) }},
		{"reserved kind", func(e *Engine) { e.AtPriCtx(2, 0, 0, 0, 0, 0) }},
		{"oversized pri", func(e *Engine) { e.AtPriCtx(2, 0, maxPri+1, 1, 0, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e Engine
			collect(&e)
			e.AtPriCtx(1, 0, 0, 1, 0, 0)
			e.Run() // now = 1
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted", tc.name)
				}
			}()
			tc.call(&e)
		})
	}
}

func TestCanonicalRunBoundsAndPending(t *testing.T) {
	var e Engine
	log := collect(&e)
	e.AtPri(1, 0, 1, 0, 0)
	e.AtPri(2, 0, 1, 1, 0)
	e.AtPri(3, 0, 1, 2, 0)
	if n := e.Pending(); n != 3 {
		t.Fatalf("Pending = %d, want 3", n)
	}
	if tt, ok := e.NextEventTime(); !ok || tt != 1 {
		t.Fatalf("NextEventTime = %v, %v", tt, ok)
	}
	e.RunBefore(2) // strictly-before: runs only t=1
	if len(*log) != 1 {
		t.Fatalf("RunBefore(2) ran %d events", len(*log))
	}
	e.RunUntil(2) // inclusive: runs t=2
	if len(*log) != 2 || e.Now() != 2 {
		t.Fatalf("RunUntil(2): %d events, now=%v", len(*log), e.Now())
	}
	e.Run()
	if len(*log) != 3 || e.Pending() != 0 {
		t.Fatalf("drain: %d events, %d pending", len(*log), e.Pending())
	}
}

func TestResetClearsCanonicalState(t *testing.T) {
	var e Engine
	collect(&e)
	e.AtPriCtx(1, 0, 0, 1, 0, 0)
	e.AtPriCtx(5, 2, 0, 1, 1, 0)
	e.RunUntil(1)
	e.Reset()
	if e.Pending() != 0 || e.Now() != 0 || e.CurCtx() != 0 {
		t.Fatalf("Reset left pending=%d now=%v ctx=%v", e.Pending(), e.Now(), e.CurCtx())
	}
	// The reset engine must accept either ordering mode afresh.
	log := collect(&e)
	e.AtKind(1, 1, 7, 0)
	e.Run()
	if len(*log) != 1 || (*log)[0].Arg0 != 7 {
		t.Fatalf("reset engine run: %v", *log)
	}
}
