package des

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var e Engine
	var order []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.Schedule(d, func() { order = append(order, d) })
	}
	end := e.Run()
	if end != 5 {
		t.Errorf("final time = %v", end)
	}
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events out of order: %v", order)
	}
	if e.EventsRun() != 5 {
		t.Errorf("EventsRun = %d", e.EventsRun())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var hits []float64
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.Schedule(2, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Errorf("hits = %v", hits)
	}
}

func TestSchedulePanicsOnNegativeDelay(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestAtPanicsOnPast(t *testing.T) {
	var e Engine
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.At(1, func() {})
}

func TestRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(10, func() { fired++ })
	e.RunUntil(5)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if e.Now() != 5 {
		t.Errorf("Now = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Run()
	if fired != 2 || e.Now() != 10 {
		t.Errorf("after Run: fired=%d now=%v", fired, e.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty engine returned true")
	}
}

func TestResourceFCFS(t *testing.T) {
	var r Resource
	// Idle resource: no wait.
	if w := r.Acquire(0, 5); w != 0 {
		t.Errorf("first acquire wait = %v", w)
	}
	// Request at t=2 while busy until 5: waits 3.
	if w := r.Acquire(2, 5); w != 3 {
		t.Errorf("second acquire wait = %v, want 3", w)
	}
	// Now busy until 10; request at 12: no wait.
	if w := r.Acquire(12, 1); w != 0 {
		t.Errorf("third acquire wait = %v", w)
	}
	req, q, busy, waited := r.Stats()
	if req != 3 || q != 1 || busy != 11 || waited != 3 {
		t.Errorf("Stats = %d %d %v %v", req, q, busy, waited)
	}
	if r.FreeAt() != 13 {
		t.Errorf("FreeAt = %v", r.FreeAt())
	}
}

func TestResourcePanicsOnInvalid(t *testing.T) {
	var r Resource
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.Acquire(1, -2)
}

func TestResourceConservationProperty(t *testing.T) {
	// For any sequence of time-ordered acquisitions, total busy time equals
	// the sum of durations and waits never decrease service order.
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, rr *rand.Rand) {
			n := rr.Intn(20) + 1
			ts := make([]float64, n)
			ds := make([]float64, n)
			now := 0.0
			for i := range ts {
				now += rr.Float64() * 3
				ts[i] = now
				ds[i] = rr.Float64() * 4
			}
			vals[0] = reflect.ValueOf(ts)
			vals[1] = reflect.ValueOf(ds)
		},
	}
	prop := func(ts, ds []float64) bool {
		var r Resource
		var sum float64
		lastStart := -1.0
		for i := range ts {
			w := r.Acquire(ts[i], ds[i])
			start := ts[i] + w
			if start < lastStart {
				return false // service must be FCFS
			}
			lastStart = start
			sum += ds[i]
		}
		_, _, busy, _ := r.Stats()
		return busy == sum
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		var e Engine
		var log []float64
		rng := rand.New(rand.NewSource(7))
		var rec func(depth int)
		rec = func(depth int) {
			log = append(log, e.Now())
			if depth < 3 {
				for i := 0; i < 2; i++ {
					e.Schedule(rng.Float64(), func() { rec(depth + 1) })
				}
			}
		}
		e.Schedule(0, func() { rec(0) })
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
