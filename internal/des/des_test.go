package des

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var e Engine
	var order []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.Schedule(d, func() { order = append(order, d) })
	}
	end := e.Run()
	if end != 5 {
		t.Errorf("final time = %v", end)
	}
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events out of order: %v", order)
	}
	if e.EventsRun() != 5 {
		t.Errorf("EventsRun = %d", e.EventsRun())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var hits []float64
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.Schedule(2, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Errorf("hits = %v", hits)
	}
}

func TestSchedulePanicsOnNegativeDelay(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestAtPanicsOnPast(t *testing.T) {
	var e Engine
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.At(1, func() {})
}

func TestRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(10, func() { fired++ })
	e.RunUntil(5)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if e.Now() != 5 {
		t.Errorf("Now = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Run()
	if fired != 2 || e.Now() != 10 {
		t.Errorf("after Run: fired=%d now=%v", fired, e.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty engine returned true")
	}
}

func TestResourceFCFS(t *testing.T) {
	var r Resource
	// Idle resource: no wait.
	if w := r.Acquire(0, 5); w != 0 {
		t.Errorf("first acquire wait = %v", w)
	}
	// Request at t=2 while busy until 5: waits 3.
	if w := r.Acquire(2, 5); w != 3 {
		t.Errorf("second acquire wait = %v, want 3", w)
	}
	// Now busy until 10; request at 12: no wait.
	if w := r.Acquire(12, 1); w != 0 {
		t.Errorf("third acquire wait = %v", w)
	}
	req, q, busy, waited := r.Stats()
	if req != 3 || q != 1 || busy != 11 || waited != 3 {
		t.Errorf("Stats = %d %d %v %v", req, q, busy, waited)
	}
	if r.FreeAt() != 13 {
		t.Errorf("FreeAt = %v", r.FreeAt())
	}
}

func TestResourcePanicsOnInvalid(t *testing.T) {
	var r Resource
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.Acquire(1, -2)
}

func TestResourceConservationProperty(t *testing.T) {
	// For any sequence of time-ordered acquisitions, total busy time equals
	// the sum of durations and waits never decrease service order.
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, rr *rand.Rand) {
			n := rr.Intn(20) + 1
			ts := make([]float64, n)
			ds := make([]float64, n)
			now := 0.0
			for i := range ts {
				now += rr.Float64() * 3
				ts[i] = now
				ds[i] = rr.Float64() * 4
			}
			vals[0] = reflect.ValueOf(ts)
			vals[1] = reflect.ValueOf(ds)
		},
	}
	prop := func(ts, ds []float64) bool {
		var r Resource
		var sum float64
		lastStart := -1.0
		for i := range ts {
			w := r.Acquire(ts[i], ds[i])
			start := ts[i] + w
			if start < lastStart {
				return false // service must be FCFS
			}
			lastStart = start
			sum += ds[i]
		}
		_, _, busy, _ := r.Stats()
		return busy == sum
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		var e Engine
		var log []float64
		rng := rand.New(rand.NewSource(7))
		var rec func(depth int)
		rec = func(depth int) {
			log = append(log, e.Now())
			if depth < 3 {
				for i := 0; i < 2; i++ {
					e.Schedule(rng.Float64(), func() { rec(depth + 1) })
				}
			}
		}
		e.Schedule(0, func() { rec(0) })
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTypedEventsDispatch(t *testing.T) {
	var e Engine
	type fired struct {
		kind Kind
		arg0 int32
		arg1 int32
		at   float64
	}
	var got []fired
	e.SetHandler(func(ev Event) {
		got = append(got, fired{ev.Kind, ev.Arg0, ev.Arg1, e.Now()})
	})
	e.AtKind(2, 7, 10, 20)
	e.ScheduleKind(1, 3, -1, 0)
	e.Run()
	want := []fired{{3, -1, 0, 1}, {7, 10, 20, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dispatch = %v, want %v", got, want)
	}
}

func TestTypedAndClosureEventsShareOrdering(t *testing.T) {
	var e Engine
	var order []string
	e.SetHandler(func(ev Event) { order = append(order, "typed") })
	// Same timestamp: scheduling order must decide, regardless of style.
	e.At(1, func() { order = append(order, "closure") })
	e.AtKind(1, 1, 0, 0)
	e.At(1, func() { order = append(order, "closure") })
	e.Run()
	want := []string{"closure", "typed", "closure"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestTypedEventSeqMonotonic(t *testing.T) {
	var e Engine
	var seqs []uint64
	e.SetHandler(func(ev Event) {
		seqs = append(seqs, ev.Seq)
		if len(seqs) < 5 {
			e.ScheduleKind(1, 1, 0, 0)
		}
	})
	e.AtKind(0, 1, 0, 0)
	e.Run()
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("seq not monotonic: %v", seqs)
		}
	}
}

func TestAtKindPanicsOnReservedKind(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Error("expected panic for kind 0")
		}
	}()
	e.AtKind(1, 0, 0, 0)
}

func TestAtKindPanicsOnPast(t *testing.T) {
	var e Engine
	e.SetHandler(func(Event) {})
	e.AtKind(5, 1, 0, 0)
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.AtKind(1, 1, 0, 0)
}

func TestTypedEventWithoutHandlerPanics(t *testing.T) {
	var e Engine
	e.AtKind(1, 1, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic without handler")
		}
	}()
	e.Run()
}

// TestHeapStressOrdering drives the heap through thousands of random
// push/pop interleavings and checks strict (time, seq) pop order.
func TestHeapStressOrdering(t *testing.T) {
	var e Engine
	rng := rand.New(rand.NewSource(42))
	var lastTime float64
	var lastSeq uint64
	violations := 0
	e.SetHandler(func(ev Event) {
		if ev.Time < lastTime || (ev.Time == lastTime && ev.Seq <= lastSeq) {
			violations++
		}
		lastTime, lastSeq = ev.Time, ev.Seq
		// Keep the heap churning with bursts of future events.
		if e.EventsRun() < 5000 {
			for i := 0; i < rng.Intn(4); i++ {
				e.ScheduleKind(rng.Float64()*3, 1, 0, 0)
			}
		}
	})
	for i := 0; i < 100; i++ {
		e.ScheduleKind(rng.Float64(), 1, 0, 0)
	}
	e.Run()
	if violations != 0 {
		t.Errorf("%d ordering violations", violations)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after Run", e.Pending())
	}
}

func TestRunUntilWithTypedEvents(t *testing.T) {
	var e Engine
	fired := 0
	e.SetHandler(func(Event) { fired++ })
	e.AtKind(1, 1, 0, 0)
	e.AtKind(10, 1, 0, 0)
	e.RunUntil(5)
	if fired != 1 || e.Now() != 5 || e.Pending() != 1 {
		t.Errorf("fired=%d now=%v pending=%d", fired, e.Now(), e.Pending())
	}
	e.Run()
	if fired != 2 || e.Now() != 10 {
		t.Errorf("after Run: fired=%d now=%v", fired, e.Now())
	}
}

func TestEngineReset(t *testing.T) {
	var e Engine
	var order []int32
	e.SetHandler(func(ev Event) { order = append(order, ev.Arg0) })
	e.AtKind(2, 1, 0, 0)
	e.AtKind(1, 1, 1, 0)
	e.Schedule(3, func() { order = append(order, 99) })
	e.Run()

	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.EventsRun() != 0 {
		t.Fatalf("reset engine not pristine: now=%v pending=%d ran=%d",
			e.Now(), e.Pending(), e.EventsRun())
	}
	// A reset engine replays the same schedule identically, handler intact.
	order = nil
	e.AtKind(2, 1, 0, 0)
	e.AtKind(1, 1, 1, 0)
	e.Schedule(3, func() { order = append(order, 99) })
	end := e.Run()
	if end != 3 || len(order) != 3 || order[0] != 1 || order[1] != 0 || order[2] != 99 {
		t.Errorf("replay after reset: end=%v order=%v", end, order)
	}
}

func TestEngineResetDropsAbandonedEvents(t *testing.T) {
	var e Engine
	e.SetHandler(func(Event) {})
	e.AtKind(1, 1, 0, 0)
	e.At(5, func() { t.Error("abandoned closure fired") })
	e.RunUntil(2) // leaves the closure pending
	e.Reset()
	if e.Run() != 0 {
		t.Error("reset engine ran abandoned events")
	}
}
