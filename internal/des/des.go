// Package des provides a minimal deterministic discrete-event simulation
// engine: a virtual clock, a priority queue of timestamped events, and a
// first-come-first-served resource used to model shared hardware such as a
// node's memory bus (paper Section 4.3).
//
// # Event model
//
// The hot path is allocation-free: events are typed value records
// ({Time, Seq, Kind, Arg0, Arg1}, see Event) stored directly in a concrete
// 4-ary min-heap — no closures, no container/heap interface boxing — and
// dispatched through a single Handler installed with SetHandler. A
// simulation encodes each state-machine transition as a Kind and small
// integer operands (a rank index, a pooled-object index) in the args.
//
// A thin closure-compatible wrapper (Schedule, At) remains for callers that
// prefer func() events; both styles share one clock and one ordering.
//
// Events scheduled for the same virtual time fire in the order they were
// scheduled, which makes simulations bit-for-bit reproducible.
package des

import (
	"fmt"
	"math"
)

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     float64
	curCtx  float64 // scheduling-context time of the executing canonical event
	seq     uint64
	ran     uint64
	handler Handler
	events  eventHeap
	events3 eventHeap3 // canonically ordered events (AtPri / AtPriCtx)
	pay     []payload  // pending-event payloads, indexed by heap order slot
	payFree []int32
	fns     []func() // closure registry, indexed by closure payloads' arg0
	fnFree  []int32
}

// AllocSlot pops an index off a free list (resetting that record) or
// appends a fresh one. It is the one free-list allocator behind every
// index-addressed pool in the engine and the simulations built on it.
func AllocSlot[T any](items *[]T, free *[]int32, reset T) int32 {
	if n := len(*free); n > 0 {
		i := (*free)[n-1]
		*free = (*free)[:n-1]
		(*items)[i] = reset
		return i
	}
	*items = append(*items, reset)
	return int32(len(*items) - 1)
}

// pushEvent allocates a payload slot and pushes the 16-byte heap record.
func (e *Engine) pushEvent(t float64, k Kind, arg0, arg1 int32) {
	slot := AllocSlot(&e.pay, &e.payFree, payload{kind: k, arg0: arg0, arg1: arg1})
	if slot > slotMask {
		panic("des: too many pending events")
	}
	e.seq++
	if e.seq > maxSeq {
		panic("des: event sequence number overflow")
	}
	t += 0.0 // normalise -0 so the bit-pattern ordering matches float order
	e.events.push(heapEvent{tbits: math.Float64bits(t), order: e.seq<<slotBits | uint64(slot)})
}

// Reset returns the engine to its initial state — clock at zero, no
// pending events, fresh sequence numbering — while retaining the installed
// handler and the capacity of the event heap and payload pools. A reset
// engine behaves bit-identically to a newly constructed one, so a long-lived
// engine can serve back-to-back simulations without reallocating.
func (e *Engine) Reset() {
	e.now, e.curCtx, e.seq, e.ran = 0, 0, 0, 0
	e.events.clear()
	e.events3.clear()
	e.pay, e.payFree = e.pay[:0], e.payFree[:0]
	for i := range e.fns {
		e.fns[i] = nil // release closures of any abandoned pending events
	}
	e.fns, e.fnFree = e.fns[:0], e.fnFree[:0]
}

// Now returns the current virtual time in microseconds.
func (e *Engine) Now() float64 { return e.now }

// EventsRun returns the number of events executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending returns the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return e.events.len() + e.events3.len() }

// SetHandler installs the dispatcher for typed events. It must be set
// before the first typed event fires; closure events do not need it.
func (e *Engine) SetHandler(h Handler) { e.handler = h }

// Schedule runs fn after the given non-negative delay of virtual time.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("des: invalid delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t, which must not be in the past.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling into the past (t=%v, now=%v)", t, e.now))
	}
	e.pushEvent(t, kindClosure, AllocSlot(&e.fns, &e.fnFree, fn), 0)
}

// ScheduleKind schedules a typed event after the given non-negative delay.
func (e *Engine) ScheduleKind(delay float64, k Kind, arg0, arg1 int32) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("des: invalid delay %v", delay))
	}
	e.AtKind(e.now+delay, k, arg0, arg1)
}

// AtKind schedules a typed event at absolute virtual time t, which must not
// be in the past. The kind must be non-zero (zero is reserved for closure
// events); it is delivered to the Handler with the given args.
func (e *Engine) AtKind(t float64, k Kind, arg0, arg1 int32) {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling into the past (t=%v, now=%v)", t, e.now))
	}
	if k == kindClosure {
		panic("des: kind 0 is reserved for closure events")
	}
	e.pushEvent(t, k, arg0, arg1)
}

// maxPri bounds the explicit same-time priority of AtPriCtx so
// pri<<slotBits cannot collide with the slot index bits.
const maxPri = 1<<(64-slotBits) - 1

// AtPriCtx schedules a typed event under the canonical order: events fire
// in (time, ctx, pri) order instead of (time, sequence) order. ctx is the
// virtual time of the scheduling context — the timestamp of the event whose
// handler is scheduling this one — and pri is a content-derived priority of
// at most 40 bits (maxPri) breaking the remaining ties.
//
// The canonical order exists for the conservative parallel scheduler
// (Group). Sequence numbers are a global scheduling-order counter that a
// barrier-injected cross-shard event cannot reproduce; (ctx, pri) carries
// the same information piecewise: sequence order always refines
// context-time order (an engine executes events in time order, so earlier
// contexts schedule first), and a priority derived purely from event
// content is identical however the event reached the engine. A simulation
// whose same-context same-time ties are broken consistently by pri
// therefore fires events in exactly the same order on one engine or many.
//
// Canonical and sequence-ordered events must not be mixed in one run: an
// engine with pending events from both APIs panics on Step.
func (e *Engine) AtPriCtx(t, ctx float64, pri uint64, k Kind, arg0, arg1 int32) {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling into the past (t=%v, now=%v)", t, e.now))
	}
	if ctx < 0 || ctx > t || math.IsNaN(ctx) {
		panic(fmt.Sprintf("des: scheduling context %v outside [0, %v]", ctx, t))
	}
	if k == kindClosure {
		panic("des: kind 0 is reserved for closure events")
	}
	if pri > maxPri {
		panic(fmt.Sprintf("des: event priority %#x exceeds %d bits", pri, 64-slotBits))
	}
	slot := AllocSlot(&e.pay, &e.payFree, payload{kind: k, arg0: arg0, arg1: arg1})
	if slot > slotMask {
		panic("des: too many pending events")
	}
	t += 0.0   // normalise -0 so the bit-pattern ordering matches float order
	ctx += 0.0 // likewise
	e.events3.push(heapEvent3{
		tbits: math.Float64bits(t),
		ctx:   math.Float64bits(ctx),
		order: pri<<slotBits | uint64(slot),
	})
}

// AtPri is AtPriCtx with the current event as the scheduling context — the
// form used for all inline scheduling; only barrier-injected events need an
// explicit ctx.
func (e *Engine) AtPri(t float64, pri uint64, k Kind, arg0, arg1 int32) {
	e.AtPriCtx(t, e.now, pri, k, arg0, arg1)
}

// CurCtx returns the scheduling-context time of the canonical event being
// executed — the ctx it was scheduled with. Handlers that defer part of an
// event's effect to a later replay (the parallel link replay) use it to
// reconstruct the event's position in the canonical order.
func (e *Engine) CurCtx() float64 { return e.curCtx }

// Step executes the next event, if any, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.events3.len() > 0 {
		return e.stepCanonical()
	}
	if e.events.len() == 0 {
		return false
	}
	ev := e.events.pop()
	slot := int32(ev.order & slotMask)
	p := e.pay[slot]
	e.payFree = append(e.payFree, slot)
	e.now = ev.time()
	e.ran++
	if p.kind == kindClosure {
		fn := e.fns[p.arg0]
		e.fns[p.arg0] = nil
		e.fnFree = append(e.fnFree, p.arg0)
		fn()
		return true
	}
	if e.handler == nil {
		panic(fmt.Sprintf("des: typed event kind %d with no handler installed", p.kind))
	}
	e.handler(Event{Time: e.now, Seq: ev.order >> slotBits, Kind: p.kind, Arg0: p.arg0, Arg1: p.arg1})
	return true
}

// stepCanonical executes the next canonically ordered event (AtPriCtx).
func (e *Engine) stepCanonical() bool {
	if e.events.len() > 0 {
		panic("des: canonical (AtPriCtx) and sequence-ordered (AtKind/At) events pending in one engine")
	}
	ev := e.events3.pop()
	slot := int32(ev.order & slotMask)
	p := e.pay[slot]
	e.payFree = append(e.payFree, slot)
	e.now = ev.time()
	e.curCtx = math.Float64frombits(ev.ctx)
	e.ran++
	if e.handler == nil {
		panic(fmt.Sprintf("des: typed event kind %d with no handler installed", p.kind))
	}
	e.handler(Event{Time: e.now, Seq: ev.order >> slotBits, Kind: p.kind, Arg0: p.arg0, Arg1: p.arg1})
	return true
}

// Run executes events until none remain and returns the final virtual time.
func (e *Engine) Run() float64 {
	for e.Step() {
	}
	return e.now
}

// topTime returns the earliest pending timestamp across both orderings.
func (e *Engine) topTime() (t float64, ok bool) {
	if e.events3.len() > 0 {
		return e.events3.top().time(), true
	}
	if e.events.len() > 0 {
		return e.events.top().time(), true
	}
	return 0, false
}

// RunUntil executes events with timestamps ≤ t, then advances the clock to
// t if it has not already passed it.
func (e *Engine) RunUntil(t float64) {
	for {
		next, ok := e.topTime()
		if !ok || next > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunBefore executes events with timestamps strictly less than t and leaves
// the clock at the last executed event. Unlike RunUntil it never advances
// the clock artificially, so events delivered later for times in [now, t)
// remain schedulable — the property the sharded scheduler (Group) relies on
// when it injects cross-shard events at window barriers.
func (e *Engine) RunBefore(t float64) {
	for {
		next, ok := e.topTime()
		if !ok || next >= t {
			break
		}
		e.Step()
	}
}

// NextEventTime returns the timestamp of the earliest pending event, or
// ok == false when no events are pending.
func (e *Engine) NextEventTime() (t float64, ok bool) {
	return e.topTime()
}

// Resource models a single FCFS server (e.g. a node's shared memory bus).
// Requests occupy the resource for a fixed duration in arrival order; a
// request arriving while the resource is busy is queued and experiences
// waiting time. Resource tracks aggregate utilisation statistics so that
// experiments can report contention.
type Resource struct {
	freeAt   float64
	busyTime float64
	waits    float64
	requests uint64
	queued   uint64
}

// Acquire reserves the resource for duration dur starting no earlier than
// now. It returns the waiting time the request experienced before service
// began (zero when the resource was idle).
func (r *Resource) Acquire(now, dur float64) (wait float64) {
	if dur < 0 || now < 0 {
		panic(fmt.Sprintf("des: invalid resource acquisition now=%v dur=%v", now, dur))
	}
	start := now
	if r.freeAt > start {
		start = r.freeAt
	}
	wait = start - now
	r.freeAt = start + dur
	r.busyTime += dur
	r.waits += wait
	r.requests++
	if wait > 0 {
		r.queued++
	}
	return wait
}

// FreeAt returns the virtual time at which the resource next becomes idle.
func (r *Resource) FreeAt() float64 { return r.freeAt }

// Stats returns aggregate counters: total requests, requests that queued,
// total busy time and total waiting time.
func (r *Resource) Stats() (requests, queued uint64, busy, waited float64) {
	return r.requests, r.queued, r.busyTime, r.waits
}
