// Package des provides a minimal deterministic discrete-event simulation
// engine: a virtual clock, a priority queue of timestamped events, and a
// first-come-first-served resource used to model shared hardware such as a
// node's memory bus (paper Section 4.3).
//
// Events scheduled for the same virtual time fire in the order they were
// scheduled, which makes simulations bit-for-bit reproducible.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	ran    uint64
}

// Now returns the current virtual time in microseconds.
func (e *Engine) Now() float64 { return e.now }

// EventsRun returns the number of events executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending returns the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after the given non-negative delay of virtual time.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("des: invalid delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t, which must not be in the past.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling into the past (t=%v, now=%v)", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{time: t, seq: e.seq, fn: fn})
}

// Step executes the next event, if any, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.time
	e.ran++
	ev.fn()
	return true
}

// Run executes events until none remain and returns the final virtual time.
func (e *Engine) Run() float64 {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps ≤ t, then advances the clock to
// t if it has not already passed it.
func (e *Engine) RunUntil(t float64) {
	for len(e.events) > 0 && e.events[0].time <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

type event struct {
	time float64
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Resource models a single FCFS server (e.g. a node's shared memory bus).
// Requests occupy the resource for a fixed duration in arrival order; a
// request arriving while the resource is busy is queued and experiences
// waiting time. Resource tracks aggregate utilisation statistics so that
// experiments can report contention.
type Resource struct {
	freeAt   float64
	busyTime float64
	waits    float64
	requests uint64
	queued   uint64
}

// Acquire reserves the resource for duration dur starting no earlier than
// now. It returns the waiting time the request experienced before service
// began (zero when the resource was idle).
func (r *Resource) Acquire(now, dur float64) (wait float64) {
	if dur < 0 || now < 0 {
		panic(fmt.Sprintf("des: invalid resource acquisition now=%v dur=%v", now, dur))
	}
	start := now
	if r.freeAt > start {
		start = r.freeAt
	}
	wait = start - now
	r.freeAt = start + dur
	r.busyTime += dur
	r.waits += wait
	r.requests++
	if wait > 0 {
		r.queued++
	}
	return wait
}

// FreeAt returns the virtual time at which the resource next becomes idle.
func (r *Resource) FreeAt() float64 { return r.freeAt }

// Stats returns aggregate counters: total requests, requests that queued,
// total busy time and total waiting time.
func (r *Resource) Stats() (requests, queued uint64, busy, waited float64) {
	return r.requests, r.queued, r.busyTime, r.waits
}
