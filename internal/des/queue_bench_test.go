package des

// The priority-queue shootout: the classic hold model (steady-state pop/
// push at a random time increment) over the engine's 4-ary heap, the
// calendar queue and the ladder queue, at queue sizes bracketing the
// huge-run regime of the parallel simulator (a 64K-rank wavefront keeps
// ~100K events pending per shard). Run with:
//
//	go test -run '^$' -bench BenchmarkQueueHold ./internal/des/
//
// Results feed the README's "Priority-queue shootout" table; the engine
// keeps whichever wins (the heap — see queue.go).

import (
	"math/rand"
	"testing"
)

func benchHold(b *testing.B, q evQueue, size int, incr func(*rand.Rand) float64) {
	rng := rand.New(rand.NewSource(1))
	q.clear()
	for i := 0; i < size; i++ {
		q.push(mkEvent(rng.Float64()*float64(size)*0.01, uint64(i)))
	}
	seq := uint64(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := q.pop()
		q.push(mkEvent(ev.time()+incr(rng), seq))
		seq++
	}
}

func BenchmarkQueueHold(b *testing.B) {
	dists := []struct {
		name string
		incr func(*rand.Rand) float64
	}{
		// Exponential inter-event gaps: the M/M/1-ish default of the
		// hold-model literature.
		{"exp", func(r *rand.Rand) float64 { return r.ExpFloat64() }},
		// Bimodal: mostly short hops with occasional far-future events,
		// the shape wavefront protocols produce (o/L hops vs DMA+bus).
		{"bimodal", func(r *rand.Rand) float64 {
			if r.Intn(10) == 0 {
				return 50 + 50*r.Float64()
			}
			return 0.1 * r.Float64()
		}},
	}
	sizes := []int{1 << 10, 1 << 14, 1 << 17, 1 << 20}
	for _, d := range dists {
		for _, size := range sizes {
			for name, q := range queueImpls() {
				q := q
				b.Run(d.name+"/n="+itoa(size)+"/"+name, func(b *testing.B) {
					benchHold(b, q, size, d.incr)
				})
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
