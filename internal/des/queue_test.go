package des

import (
	"math"
	"math/rand"
	"testing"
)

// queueImpls enumerates the shootout contestants plus the engine's heap.
func queueImpls() map[string]evQueue {
	return map[string]evQueue{
		"heap":     &eventHeap{},
		"calendar": newCalQueue(),
		"ladder":   newLadQueue(),
	}
}

func mkEvent(t float64, seq uint64) heapEvent {
	return heapEvent{tbits: math.Float64bits(t), order: seq<<slotBits | (seq & slotMask)}
}

// TestQueuesMatchHeapOrder drives every implementation through the same
// randomized push/pop interleavings — clustered times, exact duplicates,
// bursts — and demands the exact (time, order) sequence the heap produces.
func TestQueuesMatchHeapOrder(t *testing.T) {
	for name, q := range queueImpls() {
		if name == "heap" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			ref := &eventHeap{}
			rng := rand.New(rand.NewSource(11))
			seq := uint64(0)
			push := func(tm float64) {
				ev := mkEvent(tm, seq)
				seq++
				ref.push(ev)
				q.push(ev)
			}
			popBoth := func() {
				if q.len() != ref.len() {
					t.Fatalf("len %d, heap has %d", q.len(), ref.len())
				}
				want := ref.pop()
				if got := q.top(); got != want {
					t.Fatalf("top = (%v,%d), want (%v,%d)", got.time(), got.order, want.time(), want.order)
				}
				if got := q.pop(); got != want {
					t.Fatalf("pop = (%v,%d), want (%v,%d)", got.time(), got.order, want.time(), want.order)
				}
			}
			now := 0.0
			for round := 0; round < 5000; round++ {
				switch rng.Intn(5) {
				case 0, 1: // advance-style push: near future
					push(now + rng.Float64()*3)
				case 2: // far-future burst
					for i := 0; i < rng.Intn(8); i++ {
						push(now + 50 + rng.Float64()*1000)
					}
				case 3: // exact-duplicate timestamps exercise the seq tiebreak
					tm := now + rng.Float64()
					push(tm)
					push(tm)
				case 4:
					if ref.len() > 0 {
						top := ref.top().time()
						popBoth()
						now = top
					}
				}
			}
			for ref.len() > 0 {
				popBoth()
			}
			// Reuse after clear must behave like a fresh queue.
			q.clear()
			ref.clear()
			now = 0
			for i := 0; i < 500; i++ {
				push(now + rng.Float64()*10)
			}
			for ref.len() > 0 {
				popBoth()
			}
		})
	}
}

// TestQueueHoldModel runs the classic hold model (pop one, push one at a
// random increment) at steady-state sizes large enough to trigger calendar
// resizes and ladder spawns.
func TestQueueHoldModel(t *testing.T) {
	for name, q := range queueImpls() {
		if name == "heap" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			ref := &eventHeap{}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 3000; i++ {
				ev := mkEvent(rng.Float64()*100, uint64(i))
				ref.push(ev)
				q.push(ev)
			}
			seq := uint64(3000)
			for i := 0; i < 20000; i++ {
				want := ref.pop()
				got := q.pop()
				if got != want {
					t.Fatalf("hold step %d: pop (%v,%d), want (%v,%d)", i, got.time(), got.order, want.time(), want.order)
				}
				ev := mkEvent(want.time()+rng.ExpFloat64(), seq)
				seq++
				ref.push(ev)
				q.push(ev)
			}
		})
	}
}
