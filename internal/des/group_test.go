package des

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestRunBeforeStopsStrictlyBeforeBound(t *testing.T) {
	var e Engine
	var hits []float64
	for _, d := range []float64{1, 2, 3, 4} {
		d := d
		e.Schedule(d, func() { hits = append(hits, d) })
	}
	e.RunBefore(3)
	if !reflect.DeepEqual(hits, []float64{1, 2}) {
		t.Fatalf("RunBefore(3) executed %v, want [1 2]", hits)
	}
	if e.Now() != 2 {
		t.Fatalf("clock advanced to %v, want 2 (last executed event)", e.Now())
	}
	// An event delivered late for a time inside the already-swept window
	// must still be schedulable: RunBefore left the clock at 2.
	e.Schedule(0.5, func() { hits = append(hits, 2.5) })
	e.RunBefore(3)
	if !reflect.DeepEqual(hits, []float64{1, 2, 2.5}) {
		t.Fatalf("late event not executed: %v", hits)
	}
}

func TestNextEventTime(t *testing.T) {
	var e Engine
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("empty engine reports a pending event")
	}
	e.Schedule(7, func() {})
	e.Schedule(3, func() {})
	if tm, ok := e.NextEventTime(); !ok || tm != 3 {
		t.Fatalf("NextEventTime = %v, %v; want 3, true", tm, ok)
	}
	e.Run()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("drained engine reports a pending event")
	}
}

// TestGroupWindowIsolation checks the core conservative-PDES invariant the
// Group provides: shards only observe each other's effects at barriers, and
// every event executes at the same virtual time it would serially.
func TestGroupWindowIsolation(t *testing.T) {
	const shards = 4
	engines := make([]*Engine, shards)
	var executed [shards][]float64
	for i := range engines {
		engines[i] = &Engine{}
		i := i
		eng := engines[i]
		var schedule func(d float64)
		schedule = func(d float64) {
			eng.Schedule(d, func() {
				executed[i] = append(executed[i], eng.Now())
				if eng.Now() < 10 {
					schedule(1) // chain: events at 1, 2, ..., 10
				}
			})
		}
		schedule(1)
	}
	g := NewGroup(engines, 0.5)
	barriers := 0
	g.Run(func() { barriers++ })
	for i := range executed {
		want := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
		if !reflect.DeepEqual(executed[i], want) {
			t.Fatalf("shard %d executed %v, want %v", i, executed[i], want)
		}
	}
	if g.Windows() == 0 || barriers != int(g.Windows())+1 {
		t.Fatalf("windows=%d barriers=%d, want barriers = windows+1", g.Windows(), barriers)
	}
}

// TestGroupBarrierDelivery checks that a barrier callback can inject events
// into any shard and the run continues until quiescence.
func TestGroupBarrierDelivery(t *testing.T) {
	engines := []*Engine{{}, {}}
	var got []float64
	engines[0].Schedule(1, func() {})
	rounds := 0
	g := NewGroup(engines, 1)
	g.Run(func() {
		if rounds < 3 {
			// Cross-shard delivery: schedule into shard 1 from the barrier.
			tm := float64(10 + rounds)
			engines[1].At(tm, func() { got = append(got, tm) })
		}
		rounds++
	})
	if !reflect.DeepEqual(got, []float64{10, 11, 12}) {
		t.Fatalf("barrier-delivered events: %v", got)
	}
}

// TestGroupStallAccounting: a shard with no events in a window is a stall.
func TestGroupStallAccounting(t *testing.T) {
	engines := []*Engine{{}, {}}
	engines[0].Schedule(1, func() {})
	engines[0].Schedule(2, func() {})
	// Shard 1 is empty throughout: every window stalls it.
	g := NewGroup(engines, 0.5)
	g.Run(func() {})
	if g.Stalls() != g.Windows() {
		t.Fatalf("stalls=%d windows=%d; empty shard should stall every window", g.Stalls(), g.Windows())
	}
}

// TestGroupSingleShard: the K=1 path still drains barrier deliveries.
func TestGroupSingleShard(t *testing.T) {
	engines := []*Engine{{}}
	var n atomic.Int64
	engines[0].Schedule(1, func() { n.Add(1) })
	injected := false
	g := NewGroup(engines, 2)
	g.Run(func() {
		if !injected {
			injected = true
			engines[0].At(5, func() { n.Add(1) })
		}
	})
	if n.Load() != 2 {
		t.Fatalf("executed %d events, want 2", n.Load())
	}
}

func TestNewGroupRejectsBadLookahead(t *testing.T) {
	for _, la := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("lookahead %v accepted", la)
				}
			}()
			NewGroup([]*Engine{{}}, la)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty engine list accepted")
			}
		}()
		NewGroup(nil, 1)
	}()
}

// TestGroupMatchesSerialExecution runs the same randomized workload through
// one engine and through a sharded group (with all cross-"rank" effects
// confined to shards), asserting identical execution traces per shard.
func TestGroupMatchesSerialExecution(t *testing.T) {
	const shards = 3
	type hit struct {
		shard int
		tm    float64
	}
	run := func(k int) []hit {
		var trace []hit
		engines := make([]*Engine, k)
		for i := range engines {
			engines[i] = &Engine{}
		}
		// Same event set regardless of k: event j belongs to logical shard
		// j%shards, hosted on engine (j%shards)%k.
		rng := rand.New(rand.NewSource(42))
		for j := 0; j < 200; j++ {
			sh := j % shards
			tm := rng.Float64() * 50
			eng := engines[sh%k]
			eng.At(tm, func() { trace = append(trace, hit{sh, tm}) })
		}
		if k == 1 {
			engines[0].Run()
			return trace
		}
		// Serialise trace appends per barrier epoch: within a window each
		// engine appends to its own slice, merged at barriers in shard order.
		per := make([][]hit, k)
		engines2 := make([]*Engine, k)
		for i := range engines2 {
			engines2[i] = &Engine{}
		}
		rng = rand.New(rand.NewSource(42))
		for j := 0; j < 200; j++ {
			sh := j % shards
			tm := rng.Float64() * 50
			i := sh % k
			eng := engines2[i]
			eng.At(tm, func() { per[i] = append(per[i], hit{sh, tm}) })
		}
		g := NewGroup(engines2, 0.1+rng.Float64())
		g.Run(func() {})
		var merged []hit
		for i := range per {
			merged = append(merged, per[i]...)
		}
		return merged
	}
	serial := run(1)
	parallel := run(shards)
	// Same multiset of (shard, time) hits; per-shard subsequences in time order.
	if len(serial) != len(parallel) {
		t.Fatalf("serial ran %d events, parallel %d", len(serial), len(parallel))
	}
	perShard := map[int][]float64{}
	for _, h := range parallel {
		perShard[h.shard] = append(perShard[h.shard], h.tm)
	}
	for sh, times := range perShard {
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				t.Fatalf("shard %d executed out of order: %v", sh, times)
			}
		}
	}
}
