package des

// Conservative parallel discrete-event scheduling (classic CMB-style
// windowing). A Group advances K independent Engines — the shards —
// concurrently inside a global virtual-time window [T, T+lookahead). The
// lookahead is the simulation's minimum cross-shard latency: no event
// executed inside the window can schedule an event into another shard
// earlier than the window's end, so the shards cannot causally interact
// within a window and are free to run in parallel.
//
// Cross-shard effects are not applied by the shards themselves. Each shard
// records them during the window (in simulation-owned buffers) and the
// barrier callback — which runs single-threaded between windows, with every
// shard goroutine parked — merges and applies them in a deterministic
// order. Determinism therefore does not depend on goroutine scheduling:
// shard-local event order is the engine's (time, seq) order, and boundary
// effects are ordered by the barrier's merge, making the whole parallel
// run bit-identical for any shard count (including 1).
//
// The Group owns only the windowing machinery: worker goroutines, the
// window barrier, and progress/stall statistics. What a "boundary effect"
// is — messages, resource reservations, collective completions — belongs to
// the simulation built on top (internal/simmpi).

import (
	"fmt"
	"math"
)

// Group runs a set of shard engines through lookahead windows.
type Group struct {
	engines   []*Engine
	lookahead float64

	// Per-window scratch, reused across windows.
	windowEnd float64
	ran       []uint64 // per-shard EventsRun at window start, for stall stats

	windows uint64 // windows executed
	stalls  uint64 // (shard, window) pairs where the shard ran no events

	obs WindowObserver
}

// WindowObserver receives one observation per (shard, window) pair after
// the window closes: the window's number (starting at 1) and bounds, the
// events the shard executed inside it, and the shard's event-heap depth at
// the closing barrier. The Group invokes it single-threaded, with every
// shard goroutine parked, so implementations need no synchronisation.
type WindowObserver func(window uint64, shard int, start, end float64, events uint64, pending int)

// NewGroup prepares a windowed run over the given shard engines. The
// lookahead must be positive: it is the minimum virtual-time distance any
// cross-shard interaction travels, and with a zero lookahead windows cannot
// make progress (callers should fall back to serial execution instead).
func NewGroup(engines []*Engine, lookahead float64) *Group {
	if len(engines) == 0 {
		panic("des: group needs at least one engine")
	}
	if lookahead <= 0 || math.IsNaN(lookahead) || math.IsInf(lookahead, 0) {
		panic(fmt.Sprintf("des: invalid lookahead %v", lookahead))
	}
	return &Group{
		engines:   engines,
		lookahead: lookahead,
		ran:       make([]uint64, len(engines)),
	}
}

// Lookahead returns the group's window length.
func (g *Group) Lookahead() float64 { return g.lookahead }

// Windows returns the number of windows executed so far.
func (g *Group) Windows() uint64 { return g.windows }

// Stalls returns the number of (shard, window) pairs in which the shard
// executed no events — the barrier-stall count that diagnoses load
// imbalance across shards.
func (g *Group) Stalls() uint64 { return g.stalls }

// SetObserver installs a per-window observer; pass nil to disable. The
// nil path costs one branch per (shard, window), nothing per event.
func (g *Group) SetObserver(fn WindowObserver) { g.obs = fn }

// Run drives the shards to quiescence. Each iteration first invokes the
// barrier callback — single-threaded, with all shard goroutines parked —
// which applies buffered cross-shard effects by scheduling events into any
// of the group's engines. It then opens the next window at the earliest
// pending event across all shards and lets every shard execute its events
// with timestamps inside [T, T+lookahead) concurrently. The run ends when
// the barrier schedules nothing and no engine has pending events.
//
// The callback must not touch shard state outside a barrier, and shards
// must not touch each other's state inside a window; the Group supplies
// the happens-before edges (worker channel synchronisation) that make the
// alternation race-free.
func (g *Group) Run(barrier func()) {
	if len(g.engines) == 1 {
		// One shard cannot interact across a boundary mid-window, but the
		// barrier must still drain buffered effects (e.g. link-routed
		// deliveries) between windows, so the loop structure is identical.
		for {
			barrier()
			next, ok := g.engines[0].NextEventTime()
			if !ok {
				return
			}
			g.windows++
			before := g.engines[0].EventsRun()
			g.engines[0].RunBefore(next + g.lookahead)
			if g.obs != nil {
				g.obs(g.windows, 0, next, next+g.lookahead,
					g.engines[0].EventsRun()-before, g.engines[0].Pending())
			}
		}
	}

	// Persistent workers: one goroutine per shard, window bounds broadcast
	// through per-worker channels. The channel round-trip is the only
	// synchronisation; ~1µs per window, amortised over the window's events.
	start := make([]chan float64, len(g.engines))
	done := make(chan struct{}, len(g.engines))
	for i := range g.engines {
		start[i] = make(chan float64, 1)
		go func(eng *Engine, start <-chan float64) {
			for end := range start {
				eng.RunBefore(end)
				done <- struct{}{}
			}
		}(g.engines[i], start[i])
	}
	defer func() {
		for i := range start {
			close(start[i])
		}
	}()

	for {
		barrier()
		earliest := math.Inf(1)
		any := false
		for _, eng := range g.engines {
			if t, ok := eng.NextEventTime(); ok && t < earliest {
				earliest, any = t, true
			}
		}
		if !any {
			return
		}
		g.windowEnd = earliest + g.lookahead
		g.windows++
		for i, eng := range g.engines {
			g.ran[i] = eng.EventsRun()
			start[i] <- g.windowEnd
		}
		for range g.engines {
			<-done
		}
		for i, eng := range g.engines {
			ran := eng.EventsRun() - g.ran[i]
			if ran == 0 {
				g.stalls++
			}
			if g.obs != nil {
				g.obs(g.windows, i, earliest, g.windowEnd, ran, eng.Pending())
			}
		}
	}
}
