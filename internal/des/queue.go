package des

// Alternative pending-event queues for the priority-queue shootout
// (queue_bench_test.go). Conservative parallel runs in the huge-run regime
// put hundreds of thousands of pending events in every shard's queue, where
// the O(log n) sift of a binary/4-ary heap is the textbook loser to the
// amortised-O(1) calendar queue (Brown 1988) and ladder queue (Tang 2005).
// Both are implemented here behind the same method set as eventHeap
// (evQueue) and raced under the hold model at queue sizes from 1K to 1M.
//
// Outcome (see README "Priority-queue shootout"): the cache-aligned 4-ary
// heap wins every hold-model size from 16K pending events up — the regime
// sharded huge runs actually live in (calendar edges it out only at 1K). The
// shootout's event keys are 16 bytes and the heap's sift touches one cache
// line per level, so even at one million pending events a pop is ~5 line
// reads, while both multi-list queues pay per-event slice bookkeeping,
// bucket scans and occasional O(n) reorganisations — and, being
// multi-array structures, they would also force an interface indirection
// into Engine.Step. The Engine therefore keeps the concrete eventHeap; the
// alternatives stay as the measured baseline that justifies it.

import (
	"math"
	"sort"
)

// evQueue is the operation set a pending-event queue must provide. The
// Engine deliberately holds a concrete eventHeap rather than this
// interface — devirtualising push/pop is worth ~10% on the event rate —
// so the interface exists for the shootout and for tests that race the
// implementations against each other.
type evQueue interface {
	push(ev heapEvent)
	pop() heapEvent
	top() heapEvent
	len() int
	clear()
}

var (
	_ evQueue = (*eventHeap)(nil)
	_ evQueue = (*calQueue)(nil)
	_ evQueue = (*ladQueue)(nil)
)

func evLess(a, b heapEvent) bool {
	return a.tbits < b.tbits || (a.tbits == b.tbits && a.order < b.order)
}

// --- calendar queue (Brown 1988) ---

// calQueue is a classic calendar queue: a power-of-two array of day
// buckets of fixed width, the year being nb·width. Each bucket keeps its
// events sorted descending so the minimum is at the tail; dequeue scans
// days from the current one, falling back to a direct full search after a
// fruitless year. The queue resizes (and re-estimates the bucket width
// from the observed event spacing) when the population doubles or
// quarters.
type calQueue struct {
	buckets [][]heapEvent
	mask    int
	width   float64
	curVB   int64 // current virtual bucket (t / width)
	n       int
	up, dn  int // resize thresholds
}

func newCalQueue() *calQueue {
	q := &calQueue{}
	q.rebuild(4, 1)
	return q
}

func (q *calQueue) len() int { return q.n }

func (q *calQueue) clear() {
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.n = 0
	q.curVB = 0
}

func (q *calQueue) rebuild(nb int, width float64) {
	old := q.buckets
	q.buckets = make([][]heapEvent, nb)
	q.mask = nb - 1
	q.width = width
	q.up = 2 * nb
	q.dn = nb/2 - 2
	q.n = 0
	q.curVB = math.MaxInt64
	for _, b := range old {
		for _, ev := range b {
			q.push(ev)
		}
	}
	if q.n == 0 {
		q.curVB = 0
	}
}

// resize re-estimates the bucket width as 3× the mean gap between the
// first few pending events (Brown's sampling rule, simplified) and
// redistributes into nb buckets.
func (q *calQueue) resize(nb int) {
	var sample []heapEvent
	for _, b := range q.buckets {
		sample = append(sample, b...)
		if len(sample) >= 32 {
			break
		}
	}
	sort.Slice(sample, func(i, j int) bool { return evLess(sample[i], sample[j]) })
	width := 1.0
	if len(sample) >= 2 {
		span := sample[len(sample)-1].time() - sample[0].time()
		if gap := span / float64(len(sample)-1); gap > 0 {
			width = 3 * gap
		}
	}
	q.rebuild(nb, width)
}

func (q *calQueue) push(ev heapEvent) {
	vb := int64(ev.time() / q.width)
	i := int(vb) & q.mask
	b := q.buckets[i]
	j := len(b)
	b = append(b, ev)
	// Descending insertion: the bucket minimum stays at the tail.
	for j > 0 && evLess(b[j-1], ev) {
		b[j] = b[j-1]
		j--
	}
	b[j] = ev
	q.buckets[i] = b
	q.n++
	if vb < q.curVB {
		q.curVB = vb
	}
	if q.n > q.up {
		q.resize(2 * (q.mask + 1))
	}
}

// locate advances the day scan to the bucket holding the minimum event and
// returns its index. The caller must ensure the queue is non-empty.
func (q *calQueue) locate() int {
	for scanned := 0; scanned <= q.mask; scanned++ {
		i := int(q.curVB) & q.mask
		if b := q.buckets[i]; len(b) > 0 {
			if b[len(b)-1].time() < float64(q.curVB+1)*q.width {
				return i
			}
		}
		q.curVB++
	}
	// A whole year without a hit: search all buckets directly and jump the
	// calendar to the winner's day.
	best, found := -1, heapEvent{}
	for i, b := range q.buckets {
		if len(b) == 0 {
			continue
		}
		if tail := b[len(b)-1]; best < 0 || evLess(tail, found) {
			best, found = i, tail
		}
	}
	q.curVB = int64(found.time() / q.width)
	return best
}

func (q *calQueue) top() heapEvent {
	i := q.locate()
	b := q.buckets[i]
	return b[len(b)-1]
}

func (q *calQueue) pop() heapEvent {
	i := q.locate()
	b := q.buckets[i]
	ev := b[len(b)-1]
	q.buckets[i] = b[:len(b)-1]
	q.n--
	if q.n < q.dn {
		q.resize((q.mask + 1) / 2)
	}
	return ev
}

// --- ladder queue (Tang, Goh & Thng 2005) ---

const (
	ladThreshold = 64 // max events a bucket may spill into bottom unsorted
	ladMaxRungs  = 8
)

// ladQueue is a simplified ladder queue: far-future events pool unsorted in
// top; when top must be drained it is scattered into a rung of buckets, and
// a bucket is either sorted into bottom (small) or scattered into a finer
// rung (large). Near-future events live pre-sorted in bottom (descending,
// minimum at the tail), so steady-state dequeue is O(1) and sorting cost is
// amortised over bucket spills.
type ladQueue struct {
	far            []heapEvent
	farMin, farMax float64
	farStart       float64 // events at or above this go to far
	rungs          []ladRung
	bottom         []heapEvent // sorted descending
	n              int
}

type ladRung struct {
	start, width float64
	cur          int // buckets below cur are drained
	count        int
	buckets      [][]heapEvent
}

func newLadQueue() *ladQueue { return &ladQueue{} }

func (q *ladQueue) len() int { return q.n }

func (q *ladQueue) clear() { *q = ladQueue{} }

func (q *ladQueue) push(ev heapEvent) {
	q.n++
	t := ev.time()
	if len(q.far) == 0 && len(q.rungs) == 0 && len(q.bottom) == 0 {
		q.farStart = 0
	}
	if t >= q.farStart {
		if len(q.far) == 0 || t < q.farMin {
			q.farMin = t
		}
		if len(q.far) == 0 || t > q.farMax {
			q.farMax = t
		}
		q.far = append(q.far, ev)
		return
	}
	for ri := range q.rungs {
		r := &q.rungs[ri]
		if t >= r.start+float64(r.cur)*r.width {
			i := int((t - r.start) / r.width)
			if i >= len(r.buckets) {
				i = len(r.buckets) - 1
			}
			if i < r.cur {
				i = r.cur
			}
			r.buckets[i] = append(r.buckets[i], ev)
			r.count++
			return
		}
	}
	// Sorted descending insert into bottom.
	b := q.bottom
	j := len(b)
	b = append(b, ev)
	for j > 0 && evLess(b[j-1], ev) {
		b[j] = b[j-1]
		j--
	}
	b[j] = ev
	q.bottom = b
}

// spawn scatters evs into a new rung covering [lo, hi] with one bucket per
// event, appended below the existing rungs.
func (q *ladQueue) spawn(evs []heapEvent, lo, hi float64) {
	nb := len(evs)
	width := (hi - lo) / float64(nb)
	r := ladRung{start: lo, width: width, buckets: make([][]heapEvent, nb)}
	if width <= 0 {
		// Degenerate span (equal timestamps): a single bucket; the sort
		// into bottom handles ordering.
		r.width = 1
		r.buckets = make([][]heapEvent, 1)
	}
	for _, ev := range evs {
		i := int((ev.time() - r.start) / r.width)
		if i >= len(r.buckets) {
			i = len(r.buckets) - 1
		}
		r.buckets[i] = append(r.buckets[i], ev)
	}
	r.count = len(evs)
	q.rungs = append(q.rungs, r)
}

// refill moves the earliest pending bucket into bottom, draining rungs and
// top as needed. Caller guarantees the queue is non-empty.
func (q *ladQueue) refill() {
	for {
		// Deepest rung holds the earliest events.
		for len(q.rungs) > 0 {
			r := &q.rungs[len(q.rungs)-1]
			if r.count == 0 {
				q.rungs = q.rungs[:len(q.rungs)-1]
				continue
			}
			for len(r.buckets[r.cur]) == 0 {
				r.cur++
			}
			evs := r.buckets[r.cur]
			r.buckets[r.cur] = nil
			r.count -= len(evs)
			r.cur++
			if len(evs) > ladThreshold && len(q.rungs) < ladMaxRungs && r.width > 0 {
				lo := r.start + float64(r.cur-1)*r.width
				q.spawn(evs, lo, lo+r.width)
				continue
			}
			q.bottom = append(q.bottom, evs...)
			sort.Slice(q.bottom, func(i, j int) bool { return evLess(q.bottom[j], q.bottom[i]) })
			return
		}
		// No rungs left: scatter top into a fresh rung 0.
		evs := q.far
		q.far = nil
		q.farStart = q.farMax
		q.spawn(evs, q.farMin, q.farMax)
	}
}

func (q *ladQueue) peek() *heapEvent {
	if len(q.bottom) == 0 {
		q.refill()
	}
	return &q.bottom[len(q.bottom)-1]
}

func (q *ladQueue) top() heapEvent { return *q.peek() }

func (q *ladQueue) pop() heapEvent {
	ev := *q.peek()
	q.bottom = q.bottom[:len(q.bottom)-1]
	q.n--
	return ev
}
