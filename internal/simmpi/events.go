package simmpi

// This file is the simulator's event-kind state machine. Each stage of a
// message's lifetime that the seed implementation expressed as a nested
// closure is one typed event kind here; Event.Arg0 carries the rank index
// (evResume, evComm) or the message pool index (all others). Every kind
// fires at exactly the virtual time its closure predecessor did and events
// are scheduled in the same relative order, so the engine's (time, seq)
// tiebreak — and therefore every simulation result — is bit-identical to
// the closure implementation (see golden_test.go).

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/logp"
)

// Event kinds. Kind 0 is reserved by the des engine for closure events.
const (
	// evResume unblocks rank Arg0, whose local clock was set when the
	// event was scheduled, and advances its program.
	evResume des.Kind = iota + 1
	// evComm starts rank Arg0's pending communication op at its local time.
	evComm
	// evDeliver marks message Arg0's data available at the receiver at the
	// event time (eager arrival or DMA completion).
	evDeliver
	// evEagerInject is the off-node eager injection point: the sender-side
	// bus is acquired and the wire flight to the receiver begins.
	evEagerInject
	// evEagerArrive is the off-node eager arrival: the receiver-side bus
	// is acquired and the message becomes ready.
	evEagerArrive
	// evChipDMA starts an on-chip large-message DMA through the node's
	// shared bus.
	evChipDMA
	// evRTS is the rendezvous request-to-send arriving at the receiver.
	evRTS
	// evCTS is the rendezvous clear-to-send arriving back at the sender.
	evCTS
	// evRdvInject is the rendezvous data injection after the handshake.
	evRdvInject
	// evRdvArrive is the rendezvous data arrival at the receiver.
	evRdvArrive
)

// handle dispatches every typed event of the simulation.
func (s *Sim) handle(ev des.Event) {
	switch ev.Kind {
	case evResume:
		s.advance(&s.ranks[ev.Arg0])

	case evComm:
		r := &s.ranks[ev.Arg0]
		s.execComm(r, r.pending)

	case evDeliver:
		s.deliver(ev.Arg0, s.eng.Now())

	case evEagerInject:
		// Table 1(a) eq (1) continued: sender-side bus, then wire flight.
		// With an interconnect attached the flight additionally routes over
		// contended links (zero extra on the flat wire — bit-identical).
		m := &s.msgs[ev.Arg0]
		p := &s.par
		inject := s.eng.Now()
		wait := s.topo.AcquireBus(int(m.src), inject, int(m.bytes))
		start := inject + wait
		start += s.topo.AcquireLinks(int(m.src), int(m.dst), start, int(m.bytes))
		arrive := start + float64(m.bytes)*p.G + p.L
		s.eng.AtKind(arrive, evEagerArrive, ev.Arg0, 0)

	case evEagerArrive:
		m := &s.msgs[ev.Arg0]
		arrive := s.eng.Now()
		w2 := s.topo.AcquireBus(int(m.dst), arrive, int(m.bytes))
		s.deliver(ev.Arg0, arrive+w2)

	case evChipDMA:
		// Table 1(b) eq (6) continued: DMA via the shared bus.
		m := &s.msgs[ev.Arg0]
		start := s.eng.Now()
		wait := s.topo.AcquireBus(int(m.src), start, int(m.bytes))
		s.resumeAt(&s.ranks[m.src], start+wait)
		ready := start + wait + float64(m.bytes)*s.par.Gdma
		s.eng.AtKind(ready, evDeliver, ev.Arg0, 0)

	case evRTS:
		s.msgs[ev.Arg0].rtsArrived = true
		s.maybeHandshake(ev.Arg0)

	case evCTS:
		p := &s.par
		inject := s.eng.Now() + p.H + p.O
		s.eng.AtKind(inject, evRdvInject, ev.Arg0, 0)

	case evRdvInject:
		m := &s.msgs[ev.Arg0]
		p := &s.par
		inject := s.eng.Now()
		wait := s.topo.AcquireBus(int(m.src), inject, int(m.bytes))
		s.resumeAt(&s.ranks[m.src], inject+wait)
		start := inject + wait
		start += s.topo.AcquireLinks(int(m.src), int(m.dst), start, int(m.bytes))
		arrive := start + float64(m.bytes)*p.G + p.L
		s.eng.AtKind(arrive, evRdvArrive, ev.Arg0, 0)

	case evRdvArrive:
		m := &s.msgs[ev.Arg0]
		arrive := s.eng.Now()
		w2 := s.topo.AcquireBus(int(m.dst), arrive, int(m.bytes))
		ready := arrive + w2
		m.ready = true
		m.readyAt = ready
		req := m.recv
		s.resumeAt(&s.ranks[s.reqs[req].rank], ready+s.par.O)
		s.unlink(&s.channels[m.ch], ev.Arg0)
		s.freeReq(req)
		s.freeMsg(ev.Arg0)

	default:
		panic(fmt.Sprintf("simmpi: unknown event kind %d", ev.Kind))
	}
}

func (s *Sim) execSend(r *rankState, peer, bytes int) {
	if peer == int(r.id) || peer < 0 || peer >= len(s.ranks) {
		panic(fmt.Sprintf("simmpi: rank %d sends to invalid peer %d", r.id, peer))
	}
	s.sends++
	s.bytes += uint64(bytes)
	ts := r.t
	p := &s.par
	path := s.topo.Path(int(r.id), peer)
	ci := s.chanIndex(r.id, int32(peer))
	mi := s.allocMsg()
	m := &s.msgs[mi]
	m.src, m.dst, m.bytes, m.ch = r.id, int32(peer), int32(bytes), ci
	ch := &s.channels[ci]
	ch.msgs.pushBack(mi)
	// Match a posted receive, if one is waiting.
	if ch.recvs.n > 0 {
		m.recv = ch.recvs.popFront()
	}

	switch {
	case path == logp.OnChip && bytes <= logp.EagerThreshold:
		// Table 1(b) eq (5): ocopy + size×Gcopy + ocopy.
		s.resumeAt(r, ts+p.Ocopy)
		ready := ts + p.Ocopy + float64(bytes)*p.Gcopy
		s.eng.AtKind(ready, evDeliver, mi, 0)

	case path == logp.OnChip:
		// Table 1(b) eq (6): o + size×Gdma + ocopy, DMA via the shared bus.
		s.eng.AtKind(ts+p.Ochip, evChipDMA, mi, 0)

	case bytes <= logp.EagerThreshold:
		// Table 1(a) eq (1): o + size×G + L + o; eager, sender buffers.
		s.resumeAt(r, ts+p.O)
		s.eng.AtKind(ts+p.O, evEagerInject, mi, 0)

	default:
		// Table 1(a) eq (2): rendezvous. The sender stays blocked until the
		// clear-to-send arrives and the data is injected.
		m.rendezvous = true
		s.eng.AtKind(ts+p.O+p.L, evRTS, mi, 0)
	}
}

// maybeHandshake fires the rendezvous clear-to-send once both the RTS has
// arrived at the receiver and a matching receive has been posted. It is
// called at the virtual time of the later of those two events.
func (s *Sim) maybeHandshake(mi int32) {
	m := &s.msgs[mi]
	if m.ctsIssued || !m.rtsArrived || m.recv == none {
		return
	}
	m.ctsIssued = true
	p := &s.par
	th := s.eng.Now() // max(recv post, RTS arrival)
	s.eng.AtKind(th+p.H+p.L, evCTS, mi, 0)
}

// deliver marks an eager or on-chip message's data available at the
// receiver and completes a matched waiting receive.
func (s *Sim) deliver(mi int32, ready float64) {
	m := &s.msgs[mi]
	m.ready = true
	m.readyAt = ready
	if m.recv != none {
		s.completeRecv(mi)
	}
}

// completeRecv finishes a matched, ready, non-rendezvous receive and
// returns the message and its request to their pools.
func (s *Sim) completeRecv(mi int32) {
	m := &s.msgs[mi]
	ri := m.recv
	req := &s.reqs[ri]
	start := m.readyAt
	if req.postAt > start {
		start = req.postAt
	}
	s.resumeAt(&s.ranks[req.rank], start+s.recvOverhead(m))
	s.unlink(&s.channels[m.ch], mi)
	s.freeReq(ri)
	s.freeMsg(mi)
}

// recvOverhead returns the receiver-side trailing processing time: o for
// off-node messages (Table 1(a) eqs (3), (4b)), ocopy for on-chip messages
// (Table 1(b) eqs (7), (8b)).
func (s *Sim) recvOverhead(m *message) float64 {
	if s.topo.Path(int(m.src), int(m.dst)) == logp.OnChip {
		return s.par.Ocopy
	}
	return s.par.O
}

func (s *Sim) execRecv(r *rankState, peer int) {
	if peer == int(r.id) || peer < 0 || peer >= len(s.ranks) {
		panic(fmt.Sprintf("simmpi: rank %d receives from invalid peer %d", r.id, peer))
	}
	s.recvs++
	ci := s.chanIndex(int32(peer), r.id)
	ri := s.allocReq()
	s.reqs[ri] = recvReq{rank: r.id, postAt: r.t}
	ch := &s.channels[ci]
	// Match the first message not already claimed by an earlier receive
	// (MPI non-overtaking ordering between a pair of ranks).
	mi := none
	for k := int32(0); k < ch.msgs.n; k++ {
		if idx := ch.msgs.at(k); s.msgs[idx].recv == none {
			mi = idx
			break
		}
	}
	if mi == none {
		ch.recvs.pushBack(ri)
		return
	}
	m := &s.msgs[mi]
	m.recv = ri
	switch {
	case m.rendezvous:
		s.maybeHandshake(mi)
	case m.ready:
		s.completeRecv(mi)
	}
	// Otherwise the message is still in flight; deliver() completes it.
}
