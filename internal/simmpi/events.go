package simmpi

// This file is the simulator's event-kind state machine. Each stage of a
// message's lifetime that the seed implementation expressed as a nested
// closure is one typed event kind here; Event.Arg0 carries the rank index
// (evResume, evComm) or the message pool index (all others).
//
// Same-time event ordering comes in two modes, selected per run (shard.canon):
//
//   - Legacy (default serial run): events sharing a timestamp fire in
//     scheduling order, the engine's (time, seq) tiebreak. Every kind fires
//     at exactly the virtual time its closure predecessor did and events are
//     scheduled in the same relative order, so serial results are
//     bit-identical to the closure implementation (see golden_test.go).
//   - Canonical (any run requested with SetShards(k > 1), including its
//     single-shard serial core): same-time events fire in content order
//     (evPri below). Scheduling order is a global property a sharded run
//     cannot reproduce — a barrier-injected cross-shard event has no way to
//     recover the sequence number the serial engine would have given it —
//     so parallel mode derives the tie order from the event itself, making
//     it identical for every shard count.
//
// In a parallel run (shard.xpart != nil) three hooks divert a message whose
// stage belongs to another shard, or whose link reservation touches the
// shared interconnect, into the shard's boundary buffers instead of
// scheduling locally; the barrier coordinator (parallel.go) replays them in
// a deterministic merged order. A default serial run never takes any hook,
// so its instruction stream — and its results — are unchanged.

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/logp"
	"repro/internal/obs"
)

// Event kinds. Kind 0 is reserved by the des engine for closure events.
const (
	// evResume unblocks rank Arg0, whose local clock was set when the
	// event was scheduled, and advances its program.
	evResume des.Kind = iota + 1
	// evComm starts rank Arg0's pending communication op at its local time.
	evComm
	// evDeliver marks message Arg0's data available at the receiver at the
	// event time (eager arrival or DMA completion).
	evDeliver
	// evEagerInject is the off-node eager injection point: the sender-side
	// bus is acquired and the wire flight to the receiver begins.
	evEagerInject
	// evEagerArrive is the off-node eager arrival: the receiver-side bus
	// is acquired and the message becomes ready.
	evEagerArrive
	// evChipDMA starts an on-chip large-message DMA through the node's
	// shared bus.
	evChipDMA
	// evRTS is the rendezvous request-to-send arriving at the receiver.
	evRTS
	// evCTS is the rendezvous clear-to-send arriving back at the sender.
	evCTS
	// evRdvInject is the rendezvous data injection after the handshake.
	evRdvInject
	// evRdvArrive is the rendezvous data arrival at the receiver.
	evRdvArrive
)

// evPri is the canonical same-time priority of an event — kind-major, then
// the acting rank, then the peer rank. It depends only on event content,
// never on scheduling order, so the sharded scheduler's single-shard core
// and its barrier-injected cross-shard events (which would otherwise pick
// up arbitrary sequence numbers) fire same-time events in exactly the same
// order for every shard count. Ranks are truncated to 18 bits: beyond 256K
// ranks same-time events of distinct rank pairs could tie, which weakens
// the cross-shard bit-identity guarantee but never the run's determinism.
func evPri(kind des.Kind, owner, peer int32) uint64 {
	const rankPriMask = 1<<18 - 1
	return uint64(kind)<<36 |
		uint64(uint32(owner)&rankPriMask)<<18 |
		uint64(uint32(peer)&rankPriMask)
}

// at schedules a typed event under the run's same-time order — canonical
// content order (evPri) in parallel mode, legacy scheduling order otherwise.
// owner is the rank whose state (bus, channel, progress) the event acts on;
// peer the rank on the other end of the interaction, or the owner itself
// for purely local events.
func (sh *shard) at(t float64, kind des.Kind, owner, peer, arg0 int32) {
	if sh.canon {
		sh.eng.AtPri(t, evPri(kind, owner, peer), kind, arg0, 0)
		return
	}
	sh.eng.AtKind(t, kind, arg0, 0)
}

// atCtx schedules a typed event under the canonical order with an explicit
// scheduling context — the virtual time at which the serial engine would
// have scheduled it. Only the barrier coordinator needs it (parallel.go):
// events it injects were emitted inside another shard's window, so the
// injecting engine's own clock is not the scheduling context.
func (sh *shard) atCtx(t, ctx float64, kind des.Kind, owner, peer, arg0 int32) {
	sh.eng.AtPriCtx(t, ctx, evPri(kind, owner, peer), kind, arg0, 0)
}

// handle dispatches every typed event of the simulation.
func (sh *shard) handle(ev des.Event) {
	switch ev.Kind {
	case evResume:
		sh.advance(&sh.ranks[ev.Arg0])

	case evComm:
		r := &sh.ranks[ev.Arg0]
		sh.execComm(r, r.pending)

	case evDeliver:
		sh.deliver(ev.Arg0, sh.eng.Now())

	case evEagerInject:
		// Table 1(a) eq (1) continued: sender-side bus, then wire flight.
		// With an interconnect attached the flight additionally routes over
		// contended links (zero extra on the flat wire — bit-identical).
		m := &sh.msgs[ev.Arg0]
		p := &sh.par
		inject := sh.eng.Now()
		wait := sh.topo.AcquireBus(int(m.src), inject, int(m.bytes))
		start := inject + wait
		if sh.deferLinks() {
			sh.pushLinkOp(inject, start, ev.Arg0, false)
			return
		}
		start += sh.topo.AcquireLinks(int(m.src), int(m.dst), start, int(m.bytes))
		arrive := start + float64(m.bytes)*p.G + p.L
		if m.cross {
			sh.emitArrive(xkEagerArrive, arrive, ev.Arg0)
			return
		}
		sh.at(arrive, evEagerArrive, m.dst, m.src, ev.Arg0)

	case evEagerArrive:
		m := &sh.msgs[ev.Arg0]
		arrive := sh.eng.Now()
		w2 := sh.topo.AcquireBus(int(m.dst), arrive, int(m.bytes))
		sh.deliver(ev.Arg0, arrive+w2)

	case evChipDMA:
		// Table 1(b) eq (6) continued: DMA via the shared bus.
		m := &sh.msgs[ev.Arg0]
		start := sh.eng.Now()
		wait := sh.topo.AcquireBus(int(m.src), start, int(m.bytes))
		sh.resumeAt(&sh.ranks[m.src], start+wait)
		ready := start + wait + float64(m.bytes)*sh.par.Gdma
		sh.at(ready, evDeliver, m.dst, m.src, ev.Arg0)

	case evRTS:
		sh.msgs[ev.Arg0].rtsArrived = true
		sh.maybeHandshake(ev.Arg0)

	case evCTS:
		m := &sh.msgs[ev.Arg0]
		p := &sh.par
		inject := sh.eng.Now() + p.H + p.O
		sh.at(inject, evRdvInject, m.src, m.dst, ev.Arg0)

	case evRdvInject:
		m := &sh.msgs[ev.Arg0]
		p := &sh.par
		inject := sh.eng.Now()
		wait := sh.topo.AcquireBus(int(m.src), inject, int(m.bytes))
		sh.resumeAt(&sh.ranks[m.src], inject+wait)
		start := inject + wait
		if sh.deferLinks() {
			sh.pushLinkOp(inject, start, ev.Arg0, true)
			return
		}
		start += sh.topo.AcquireLinks(int(m.src), int(m.dst), start, int(m.bytes))
		arrive := start + float64(m.bytes)*p.G + p.L
		if m.cross {
			sh.emitArrive(xkRdvArrive, arrive, ev.Arg0)
			return
		}
		sh.at(arrive, evRdvArrive, m.dst, m.src, ev.Arg0)

	case evRdvArrive:
		m := &sh.msgs[ev.Arg0]
		arrive := sh.eng.Now()
		w2 := sh.topo.AcquireBus(int(m.dst), arrive, int(m.bytes))
		ready := arrive + w2
		m.ready = true
		m.readyAt = ready
		req := m.recv
		resume := ready + sh.par.O
		sh.resumeAt(&sh.ranks[sh.reqs[req].rank], resume)
		if sh.hists != nil {
			sh.hists.RecvWait.Observe(resume - sh.reqs[req].postAt)
			sh.hists.MsgLatency.Observe(ready - m.sendAt)
		}
		if sh.obsMsg {
			sh.obsMsgs = append(sh.obsMsgs, obs.MsgEvent{
				Send: m.sendAt, Ready: ready, Src: m.src, Dst: m.dst, Bytes: m.bytes, Rdv: true,
			})
		}
		sh.unlink(&sh.channels[m.ch], ev.Arg0)
		sh.freeReq(req)
		sh.freeMsg(ev.Arg0)

	default:
		panic(fmt.Sprintf("simmpi: unknown event kind %d", ev.Kind))
	}
}

func (sh *shard) execSend(r *rankState, peer, bytes int) {
	if peer == int(r.id) || peer < 0 || peer >= len(sh.ranks) {
		panic(fmt.Sprintf("simmpi: rank %d sends to invalid peer %d", r.id, peer))
	}
	if sh.xpart != nil && sh.xpart[peer] != sh.id {
		sh.execSendCross(r, peer, bytes)
		return
	}
	sh.sends++
	sh.bytes += uint64(bytes)
	ts := r.t
	p := &sh.par
	path := sh.topo.Path(int(r.id), peer)
	ci := sh.chanIndex(r.id, int32(peer))
	mi := sh.allocMsg()
	m := &sh.msgs[mi]
	m.src, m.dst, m.bytes, m.ch = r.id, int32(peer), int32(bytes), ci
	m.sendAt = ts
	ch := &sh.channels[ci]
	ch.msgs.pushBack(mi)
	// Match a posted receive, if one is waiting.
	if ch.recvs.n > 0 {
		m.recv = ch.recvs.popFront()
	}

	switch {
	case path == logp.OnChip && bytes <= logp.EagerThreshold:
		// Table 1(b) eq (5): ocopy + size×Gcopy + ocopy.
		sh.resumeAt(r, ts+p.Ocopy)
		ready := ts + p.Ocopy + float64(bytes)*p.Gcopy
		sh.at(ready, evDeliver, m.dst, m.src, mi)

	case path == logp.OnChip:
		// Table 1(b) eq (6): o + size×Gdma + ocopy, DMA via the shared bus.
		sh.at(ts+p.Ochip, evChipDMA, m.src, m.dst, mi)

	case bytes <= logp.EagerThreshold:
		// Table 1(a) eq (1): o + size×G + L + o; eager, sender buffers.
		sh.resumeAt(r, ts+p.O)
		sh.at(ts+p.O, evEagerInject, m.src, m.dst, mi)

	default:
		// Table 1(a) eq (2): rendezvous. The sender stays blocked until the
		// clear-to-send arrives and the data is injected.
		m.rendezvous = true
		sh.at(ts+p.O+p.L, evRTS, m.dst, m.src, mi)
	}
}

// maybeHandshake fires the rendezvous clear-to-send once both the RTS has
// arrived at the receiver and a matching receive has been posted. It is
// called at the virtual time of the later of those two events.
func (sh *shard) maybeHandshake(mi int32) {
	m := &sh.msgs[mi]
	if m.ctsIssued || !m.rtsArrived || m.recv == none {
		return
	}
	m.ctsIssued = true
	p := &sh.par
	th := sh.eng.Now() // max(recv post, RTS arrival)
	if m.cross {
		// Receiver-side proxy of a cross-shard rendezvous: the CTS executes
		// on the sender's shard. Routed through the barrier (parallel.go).
		sh.emitCTS(th+p.H+p.L, mi)
		return
	}
	sh.at(th+p.H+p.L, evCTS, m.src, m.dst, mi)
}

// deliver marks an eager or on-chip message's data available at the
// receiver and completes a matched waiting receive.
func (sh *shard) deliver(mi int32, ready float64) {
	m := &sh.msgs[mi]
	m.ready = true
	m.readyAt = ready
	if m.recv != none {
		sh.completeRecv(mi)
	}
}

// completeRecv finishes a matched, ready, non-rendezvous receive and
// returns the message and its request to their pools.
func (sh *shard) completeRecv(mi int32) {
	m := &sh.msgs[mi]
	ri := m.recv
	req := &sh.reqs[ri]
	start := m.readyAt
	if req.postAt > start {
		start = req.postAt
	}
	resume := start + sh.recvOverhead(m)
	sh.resumeAt(&sh.ranks[req.rank], resume)
	if sh.hists != nil {
		sh.hists.RecvWait.Observe(resume - req.postAt)
		sh.hists.MsgLatency.Observe(m.readyAt - m.sendAt)
	}
	if sh.obsMsg {
		sh.obsMsgs = append(sh.obsMsgs, obs.MsgEvent{
			Send: m.sendAt, Ready: m.readyAt, Src: m.src, Dst: m.dst, Bytes: m.bytes,
		})
	}
	sh.unlink(&sh.channels[m.ch], mi)
	sh.freeReq(ri)
	sh.freeMsg(mi)
}

// recvOverhead returns the receiver-side trailing processing time: o for
// off-node messages (Table 1(a) eqs (3), (4b)), ocopy for on-chip messages
// (Table 1(b) eqs (7), (8b)).
func (sh *shard) recvOverhead(m *message) float64 {
	if sh.topo.Path(int(m.src), int(m.dst)) == logp.OnChip {
		return sh.par.Ocopy
	}
	return sh.par.O
}

func (sh *shard) execRecv(r *rankState, peer int) {
	if peer == int(r.id) || peer < 0 || peer >= len(sh.ranks) {
		panic(fmt.Sprintf("simmpi: rank %d receives from invalid peer %d", r.id, peer))
	}
	sh.recvs++
	var ci int32
	if sh.xpart != nil && sh.xpart[peer] != sh.id {
		// Cross-shard sender: its messages are proxied into this shard's
		// channel table at window barriers (parallel.go), addressed through
		// the receiver's in-table rather than the sender's out-table.
		ci = sh.chanIndexIn(int32(peer), r.id)
	} else {
		ci = sh.chanIndex(int32(peer), r.id)
	}
	ri := sh.allocReq()
	sh.reqs[ri] = recvReq{rank: r.id, postAt: r.t}
	ch := &sh.channels[ci]
	// Match the first message not already claimed by an earlier receive
	// (MPI non-overtaking ordering between a pair of ranks).
	mi := none
	for k := int32(0); k < ch.msgs.n; k++ {
		if idx := ch.msgs.at(k); sh.msgs[idx].recv == none {
			mi = idx
			break
		}
	}
	if mi == none {
		ch.recvs.pushBack(ri)
		return
	}
	m := &sh.msgs[mi]
	m.recv = ri
	switch {
	case m.rendezvous:
		sh.maybeHandshake(mi)
	case m.ready:
		sh.completeRecv(mi)
	}
	// Otherwise the message is still in flight; deliver() completes it.
}
