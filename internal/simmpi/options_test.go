package simmpi

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/simnet"
)

type nopTracer struct{}

func (nopTracer) Span(rank int, op OpKind, peer, bytes int, start, end float64) {}

func optTopo(ranks int) *simnet.Topology {
	m := machine.XT4()
	return simnet.NewTopology(m.Params, ranks, simnet.LinearPlacement(m))
}

// TestOptionsRejectTracerWithShards is the consolidation contract: the
// invalid tracer+shards combination fails at configuration time, at both
// construction and Reset, instead of silently degrading at Run.
func TestOptionsRejectTracerWithShards(t *testing.T) {
	bad := Options{Tracer: nopTracer{}, Shards: 4}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "serial") {
		t.Fatalf("Validate() = %v, want tracer/shards conflict", err)
	}
	if _, err := NewWithOptions(optTopo(4), bad); err == nil {
		t.Error("NewWithOptions accepted a tracer with 4 shards")
	}
	sim := New(optTopo(4))
	if err := sim.ResetWithOptions(optTopo(4), bad); err == nil {
		t.Error("ResetWithOptions accepted a tracer with 4 shards")
	}
	if err := (Options{Shards: -1}).Validate(); err == nil {
		t.Error("negative shard count accepted")
	}
	// Each half of the conflict is fine on its own, as is a shard-safe
	// recorder next to shards.
	for _, ok := range []Options{
		{Tracer: nopTracer{}},
		{Tracer: nopTracer{}, Shards: 1},
		{Shards: 8},
		{Obs: &obs.Recorder{Hist: true}, Shards: 8},
	} {
		if err := ok.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", ok, err)
		}
	}
}

// TestOptionsMatchSetters pins the wrapper equivalence: a Sim configured
// through Options carries exactly the state the deprecated setter trio
// would have installed, and ResetWithOptions replaces the whole set.
func TestOptionsMatchSetters(t *testing.T) {
	rec := &obs.Recorder{Hist: true}
	sim, err := NewWithOptions(optTopo(4), Options{Obs: rec, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	old := New(optTopo(4))
	old.SetObs(rec)
	old.SetShards(4)
	if sim.obs != old.obs || sim.nshards != old.nshards || sim.Shards() != 4 {
		t.Errorf("options state (obs=%p shards=%d) != setter state (obs=%p shards=%d)",
			sim.obs, sim.nshards, old.obs, old.nshards)
	}
	// ResetWithOptions applies the full set: the zero Options returns the
	// Sim to a serial, un-instrumented run (legacy Reset would have kept
	// the shard count).
	if err := sim.ResetWithOptions(optTopo(4), Options{}); err != nil {
		t.Fatal(err)
	}
	if sim.obs != nil || sim.tracer != nil || sim.Shards() != 1 {
		t.Errorf("after ResetWithOptions(zero): obs=%p tracer=%v shards=%d, want clean serial",
			sim.obs, sim.tracer, sim.Shards())
	}
}
