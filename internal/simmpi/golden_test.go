package simmpi_test

// Golden-equivalence tests: the typed-event, pooled, ring-buffered
// simulator must produce bit-identical results to the original
// closure-based implementation. The constants below were recorded by
// running the seed implementation (commit e3c8b9b, container/heap closure
// events) on LU, Sweep3D and Chimaera over a 96³ grid at 256 ranks on the
// XT4 machine model; floats are hex literals so the comparison is exact to
// the last bit. Any change to event timing, scheduling order or the
// (time, seq) tiebreak shows up here as a hard failure.

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
)

type goldenResult struct {
	time        float64
	sends       uint64
	recvs       uint64
	bytesSent   uint64
	events      uint64
	busWait     float64
	busBusy     float64
	busRequests uint64
	busQueued   uint64
}

func runGolden(t *testing.T, bm apps.Benchmark) simmpi.Result {
	t.Helper()
	g := grid.Cube(96)
	dec := grid.MustDecompose(g, 16, 16)
	mach := machine.XT4()
	sched, err := bm.Schedule(dec, 1)
	if err != nil {
		t.Fatal(err)
	}
	topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	sim := simmpi.New(topo)
	for r, p := range sched.Programs() {
		sim.SetProgram(r, p)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkGolden(t *testing.T, res simmpi.Result, want goldenResult) {
	t.Helper()
	if res.Time != want.time {
		t.Errorf("Time = %x, want %x", res.Time, want.time)
	}
	if res.Sends != want.sends {
		t.Errorf("Sends = %d, want %d", res.Sends, want.sends)
	}
	if res.Recvs != want.recvs {
		t.Errorf("Recvs = %d, want %d", res.Recvs, want.recvs)
	}
	if res.BytesSent != want.bytesSent {
		t.Errorf("BytesSent = %d, want %d", res.BytesSent, want.bytesSent)
	}
	if res.Events != want.events {
		t.Errorf("Events = %d, want %d", res.Events, want.events)
	}
	if res.BusWait != want.busWait {
		t.Errorf("BusWait = %x, want %x", res.BusWait, want.busWait)
	}
	if res.BusBusy != want.busBusy {
		t.Errorf("BusBusy = %x, want %x", res.BusBusy, want.busBusy)
	}
	if res.BusRequests != want.busRequests {
		t.Errorf("BusRequests = %d, want %d", res.BusRequests, want.busRequests)
	}
	if res.BusQueued != want.busQueued {
		t.Errorf("BusQueued = %d, want %d", res.BusQueued, want.busQueued)
	}
}

func TestGoldenLU(t *testing.T) {
	checkGolden(t, runGolden(t, apps.LU(grid.Cube(96))), goldenResult{
		time:        0x1.78c5a4ebdd2ebp+13, // 12056.705527999866 µs
		sends:       114240,
		recvs:       114240,
		bytesSent:   44236800,
		events:      524417,
		busWait:     0x1.6bf91a57411e4p+20,
		busBusy:     0x1.2e5c02f2f9846p+18,
		busRequests: 167552,
		busQueued:   32323,
	})
}

func TestGoldenSweep3D(t *testing.T) {
	checkGolden(t, runGolden(t, apps.Sweep3D(grid.Cube(96), 2)), goldenResult{
		time:        0x1.ef532e2b8c5d7p+14, // 31700.795087998584 µs
		sends:       184320,
		recvs:       184320,
		bytesSent:   106168320,
		events:      786943,
		busWait:     0x1.7fc9dd462ec73p+16,
		busBusy:     0x1.eb6db940fed65p+18,
		busRequests: 270336,
		busQueued:   88180,
	})
}

func TestGoldenChimaera(t *testing.T) {
	checkGolden(t, runGolden(t, apps.Chimaera(grid.Cube(96), 1)), goldenResult{
		time:        0x1.9ea68f2becda1p+15, // 53075.2796319977 µs
		sends:       368640,
		recvs:       368640,
		bytesSent:   176947200,
		events:      1573117,
		busWait:     0x1.52587dc728fap+17,
		busBusy:     0x1.e99a95421bf21p+19,
		busRequests: 540672,
		busQueued:   174002,
	})
}

// TestGoldenRepeatable runs the same configuration twice and demands
// byte-identical results — the same-seed reproducibility the engine's
// (time, seq) ordering guarantees.
func TestGoldenRepeatable(t *testing.T) {
	a := runGolden(t, apps.Sweep3D(grid.Cube(96), 2))
	b := runGolden(t, apps.Sweep3D(grid.Cube(96), 2))
	if a.Time != b.Time || a.Events != b.Events || a.BusWait != b.BusWait {
		t.Errorf("re-run diverged: %v vs %v", a, b)
	}
	for i := range a.RankFinish {
		if a.RankFinish[i] != b.RankFinish[i] {
			t.Fatalf("rank %d finish diverged: %x vs %x", i, a.RankFinish[i], b.RankFinish[i])
		}
	}
}

// TestAllocsPerEvent enforces the allocation budget of the hot path:
// below 0.5 heap allocations per executed event, setup included. The seed
// implementation sat at ~3.5 allocs/event; the pooled typed-event engine
// runs at ~0.01.
func TestAllocsPerEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	g := grid.Cube(64)
	bm := apps.Sweep3D(g, 2)
	mach := machine.XT4()
	dec := grid.MustDecompose(g, 16, 16)
	var events uint64
	run := func() {
		sched, err := bm.Schedule(dec, 1)
		if err != nil {
			t.Fatal(err)
		}
		topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
		sim := simmpi.New(topo)
		for r, p := range sched.Programs() {
			sim.SetProgram(r, p)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		events = res.Events
	}
	allocs := testing.AllocsPerRun(2, run)
	perEvent := allocs / float64(events)
	t.Logf("%.0f allocs / %d events = %.4f allocs/event", allocs, events, perEvent)
	if perEvent >= 0.5 {
		t.Errorf("allocation budget blown: %.4f allocs/event, want < 0.5", perEvent)
	}
}
