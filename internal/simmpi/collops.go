package simmpi

// This file expands collective operations into their point-to-point
// constituents. A collective op (OpBcast, OpBarrier, or OpAllReduce with a
// non-auto algorithm) is not executed as a closed form: when a rank's
// program reaches it, advance() materialises the rank's share of the
// algorithm — a short sequence of Send/Recv ops — into the rank's pooled
// coll buffer and runs them through the ordinary message machinery. Every
// constituent therefore pays LogGP costs, queues on node buses and routes
// over interconnect links exactly like application traffic, so collective
// completion times feel topology and contention.
//
// The expansions are pure functions of (op, rank, ranks): deterministic,
// allocation-free once the per-rank buffer has grown to steady state, and
// deadlock-free under blocking MPI semantics — pairwise exchanges order
// send/recv by rank parity or pair position so that every rendezvous
// handshake can complete (see the per-algorithm comments).

import "fmt"

// CollAlg selects the algorithm used to execute a collective operation.
// For all-reduce ops the algorithm is carried in Op.Peer (unused by
// all-reduces); broadcasts are always binomial and barriers always
// dissemination. CollAlgOf recovers the algorithm from any op.
type CollAlg uint8

// Collective algorithms.
const (
	// AlgAuto is the zero value: OpAllReduce falls back to the closed-form
	// recursive-doubling exchange of paper equation (9) (execAllReduce),
	// preserving the pre-collectives behaviour bit for bit. OpBcast and
	// OpBarrier treat AlgAuto as their only algorithm (binomial,
	// dissemination).
	AlgAuto CollAlg = iota
	// AlgBinomial is the binomial-tree broadcast: ceil(log2 P) rounds, the
	// set of ranks holding the data doubling each round.
	AlgBinomial
	// AlgRing is the ring all-reduce (reduce-scatter + all-gather):
	// 2(P−1) rounds of neighbour exchanges of size ceil(bytes/P).
	AlgRing
	// AlgRecDouble is the recursive-doubling all-reduce: log2 P rounds of
	// full-size pairwise exchanges, with a pre/post fold for non-power-of-two
	// rank counts.
	AlgRecDouble
	// AlgDissemination is the dissemination barrier: ceil(log2 P) rounds in
	// which rank r signals rank (r + 2^k) mod P with an eager flag message.
	AlgDissemination
)

// barrierBytes is the payload of one dissemination-barrier flag message:
// a single double, well under the eager threshold so barrier rounds never
// handshake.
const barrierBytes = 8

// Bcast returns a binomial-tree broadcast of bytes from the root rank.
func Bcast(root, bytes int) Op {
	return Op{Kind: OpBcast, Peer: int32(root), Bytes: int32(bytes)}
}

// Barrier returns a dissemination barrier over all ranks.
func Barrier() Op {
	return Op{Kind: OpBarrier, Bytes: barrierBytes}
}

// AllReduceAlg returns an all-reduce executed by the given simulated
// algorithm (AlgRing or AlgRecDouble). AlgAuto selects the closed-form
// exchange of AllReduce. The algorithm rides in Peer, which all-reduce
// ops do not otherwise use.
func AllReduceAlg(bytes int, alg CollAlg) Op {
	return Op{Kind: OpAllReduce, Peer: int32(alg), Bytes: int32(bytes)}
}

// CollAlgOf returns the collective algorithm an op executes: the encoded
// algorithm for all-reduces, the fixed algorithm for broadcasts and
// barriers, and AlgAuto for non-collective ops.
func CollAlgOf(op Op) CollAlg {
	switch op.Kind {
	case OpAllReduce:
		return CollAlg(op.Peer)
	case OpBcast:
		return AlgBinomial
	case OpBarrier:
		return AlgDissemination
	}
	return AlgAuto
}

// FloorPow2 returns the largest power of two not exceeding n (n ≥ 1): the
// recursive-doubling core size p2. The expansion, the analytic cost model
// and the analytic message count (internal/coll) must all derive p2 the
// same way, so they share this one helper.
func FloorPow2(n int) int {
	p2 := 1
	for p2*2 <= n {
		p2 *= 2
	}
	return p2
}

// ValidAllReduceAlg reports whether an all-reduce may use the algorithm:
// the closed-form exchange (AlgAuto) or a simulated algorithm with an
// expansion (AlgRing, AlgRecDouble). Every layer that accepts an all-reduce
// algorithm — config convergence specs, wavefront schedules, coll
// collectives — consults this one predicate.
func ValidAllReduceAlg(a CollAlg) bool {
	switch a {
	case AlgAuto, AlgRing, AlgRecDouble:
		return true
	}
	return false
}

// expandsToP2P reports whether advance() must expand the op into
// point-to-point constituents rather than execute it directly.
func expandsToP2P(op Op) bool {
	switch op.Kind {
	case OpBcast, OpBarrier:
		return true
	case OpAllReduce:
		return op.Peer != int32(AlgAuto)
	}
	return false
}

// AppendCollective appends rank's point-to-point share of the collective op
// to dst and returns the extended slice. It panics on ops that are not
// expandable collectives or carry an algorithm foreign to their kind. The
// expansion for one rank count is mutually consistent across ranks: every
// appended Send has exactly one matching Recv on the peer, in an order that
// cannot deadlock under blocking rendezvous semantics.
func AppendCollective(dst []Op, op Op, rank, ranks int) []Op {
	switch op.Kind {
	case OpBcast:
		return appendBcast(dst, rank, ranks, int(op.Peer), int(op.Bytes))
	case OpBarrier:
		return appendBarrier(dst, rank, ranks)
	case OpAllReduce:
		switch CollAlgOf(op) {
		case AlgRing:
			return appendRingAllReduce(dst, rank, ranks, int(op.Bytes))
		case AlgRecDouble:
			return appendRecDoubleAllReduce(dst, rank, ranks, int(op.Bytes))
		}
		panic(fmt.Sprintf("simmpi: all-reduce cannot expand algorithm %d", op.Peer))
	}
	panic(fmt.Sprintf("simmpi: op kind %d is not a collective", op.Kind))
}

// appendBcast emits the binomial tree rooted at root: in round k the ranks
// with relative index < 2^k forward to relative index + 2^k. Each non-root
// rank receives from its parent in the round where its relative index's
// high bit is set, then forwards to its children in later rounds — a pure
// tree, so no exchange can deadlock.
func appendBcast(dst []Op, rank, ranks, root, bytes int) []Op {
	if root < 0 || root >= ranks {
		panic(fmt.Sprintf("simmpi: bcast root %d outside %d ranks", root, ranks))
	}
	vr := rank - root
	if vr < 0 {
		vr += ranks
	}
	for k := 1; k < ranks; k <<= 1 {
		switch {
		case vr >= k && vr < 2*k:
			dst = append(dst, Recv((vr-k+root)%ranks))
		case vr < k && vr+k < ranks:
			dst = append(dst, Send((vr+k+root)%ranks, bytes))
		}
	}
	return dst
}

// appendRingAllReduce emits the ring all-reduce: a reduce-scatter pass then
// an all-gather pass, 2(P−1) rounds in total, each round sending one
// ceil(bytes/P) chunk to rank+1 and receiving one from rank−1. Even ranks
// send before receiving and odd ranks receive before sending, so every
// dependency cycle around the ring contains a receive-first rank and the
// rendezvous handshakes of large chunks resolve.
func appendRingAllReduce(dst []Op, rank, ranks, bytes int) []Op {
	if ranks < 2 {
		return dst
	}
	chunk := (bytes + ranks - 1) / ranks
	next := (rank + 1) % ranks
	prev := (rank + ranks - 1) % ranks
	for round := 0; round < 2*(ranks-1); round++ {
		if rank%2 == 0 {
			dst = append(dst, Send(next, chunk), Recv(prev))
		} else {
			dst = append(dst, Recv(prev), Send(next, chunk))
		}
	}
	return dst
}

// appendRecDoubleAllReduce emits the recursive-doubling all-reduce over the
// largest power-of-two core p2 ≤ P: ranks ≥ p2 first fold their data into
// rank − p2, the core runs log2(p2) pairwise full-size exchanges (the lower
// rank of each pair sends first, the higher receives first), and the folded
// ranks receive the result back.
func appendRecDoubleAllReduce(dst []Op, rank, ranks, bytes int) []Op {
	if ranks < 2 {
		return dst
	}
	p2 := FloorPow2(ranks)
	if rank >= p2 {
		// Folded rank: contribute, then wait for the reduced result.
		return append(dst, Send(rank-p2, bytes), Recv(rank-p2))
	}
	if partner := rank + p2; partner < ranks {
		dst = append(dst, Recv(partner))
	}
	for d := 1; d < p2; d <<= 1 {
		peer := rank ^ d
		if rank < peer {
			dst = append(dst, Send(peer, bytes), Recv(peer))
		} else {
			dst = append(dst, Recv(peer), Send(peer, bytes))
		}
	}
	if partner := rank + p2; partner < ranks {
		dst = append(dst, Send(partner, bytes))
	}
	return dst
}

// appendBarrier emits the dissemination barrier: in round k rank r sends an
// eager flag to (r + 2^k) mod P and waits for the flag from (r − 2^k) mod P.
// Flags are far below the eager threshold, so sends complete locally and
// the cyclic round pattern cannot deadlock.
func appendBarrier(dst []Op, rank, ranks int) []Op {
	for k := 1; k < ranks; k <<= 1 {
		to := (rank + k) % ranks
		from := (rank - k + ranks) % ranks
		dst = append(dst, Send(to, barrierBytes), Recv(from))
	}
	return dst
}
