package simmpi

import (
	"math"
	"strings"
	"testing"

	"repro/internal/logp"
	"repro/internal/machine"
	"repro/internal/simnet"
)

func offNodePair() *simnet.Topology {
	return simnet.NewTopology(logp.XT4(), 2, simnet.SpreadPlacement())
}

func onChipPair() *simnet.Topology {
	return simnet.NewTopology(logp.XT4(), 2, simnet.LinearPlacement(machine.XT4()))
}

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// runPair runs a single send on rank 0 and a single receive on rank 1 with
// the receive pre-posted, returning rank finish times.
func runPair(t *testing.T, topo *simnet.Topology, bytes int) Result {
	t.Helper()
	s := New(topo)
	s.SetProgram(0, Ops(Send(1, bytes)))
	s.SetProgram(1, Ops(Recv(0)))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEagerOffNodeMatchesEquation1(t *testing.T) {
	p := logp.XT4()
	for _, bytes := range []int{1, 64, 1024} {
		res := runPair(t, offNodePair(), bytes)
		// Receiver finishes at TotalComm = o + size×G + L + o (eq 1).
		if want := p.TotalCommOffNode(bytes); !almostEq(res.RankFinish[1], want) {
			t.Errorf("bytes=%d: recv finish = %v, want %v", bytes, res.RankFinish[1], want)
		}
		// Eager sender unblocks after o.
		if !almostEq(res.RankFinish[0], p.O) {
			t.Errorf("bytes=%d: send finish = %v, want o = %v", bytes, res.RankFinish[0], p.O)
		}
	}
}

func TestRendezvousOffNodeMatchesEquation2(t *testing.T) {
	p := logp.XT4()
	for _, bytes := range []int{1025, 4096, 12288} {
		res := runPair(t, offNodePair(), bytes)
		// Pre-posted receive: TotalComm = o + h + o + size×G + L + o (eq 2).
		if want := p.TotalCommOffNode(bytes); !almostEq(res.RankFinish[1], want) {
			t.Errorf("bytes=%d: recv finish = %v, want %v", bytes, res.RankFinish[1], want)
		}
		// Sender blocks for ≈ o + h + o (handshake + injection).
		if want := p.O + p.Handshake() + p.O; !almostEq(res.RankFinish[0], want) {
			t.Errorf("bytes=%d: send finish = %v, want %v", bytes, res.RankFinish[0], want)
		}
	}
}

func TestEagerOnChipMatchesEquation5(t *testing.T) {
	p := logp.XT4()
	for _, bytes := range []int{16, 1000} {
		res := runPair(t, onChipPair(), bytes)
		if want := p.TotalCommOnChip(bytes); !almostEq(res.RankFinish[1], want) {
			t.Errorf("bytes=%d: recv finish = %v, want eq(5) %v", bytes, res.RankFinish[1], want)
		}
		if !almostEq(res.RankFinish[0], p.Ocopy) {
			t.Errorf("bytes=%d: send finish = %v, want ocopy", bytes, res.RankFinish[0])
		}
	}
}

func TestLargeOnChipMatchesEquation6(t *testing.T) {
	p := logp.XT4()
	for _, bytes := range []int{2048, 8192} {
		res := runPair(t, onChipPair(), bytes)
		if want := p.TotalCommOnChip(bytes); !almostEq(res.RankFinish[1], want) {
			t.Errorf("bytes=%d: recv finish = %v, want eq(6) %v", bytes, res.RankFinish[1], want)
		}
		if !almostEq(res.RankFinish[0], p.Ochip) {
			t.Errorf("bytes=%d: send finish = %v, want o = ocopy+odma", bytes, res.RankFinish[0])
		}
	}
}

func TestLateRecvDelaysCompletion(t *testing.T) {
	p := logp.XT4()
	topo := offNodePair()
	s := New(topo)
	s.SetProgram(0, Ops(Send(1, 512)))
	const busy = 1000.0
	s.SetProgram(1, Ops(Compute(busy), Recv(0)))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Message arrived long before the receive was posted: completion is
	// post time + o.
	if want := busy + p.O; !almostEq(res.RankFinish[1], want) {
		t.Errorf("late recv finish = %v, want %v", res.RankFinish[1], want)
	}
}

func TestLateRecvRendezvousHoldsSender(t *testing.T) {
	p := logp.XT4()
	topo := offNodePair()
	s := New(topo)
	s.SetProgram(0, Ops(Send(1, 4096)))
	const busy = 1000.0
	s.SetProgram(1, Ops(Compute(busy), Recv(0)))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The rendezvous sender cannot inject until the receive is posted.
	if res.RankFinish[0] < busy {
		t.Errorf("rendezvous sender finished at %v before recv posted at %v", res.RankFinish[0], busy)
	}
	// Receiver: CTS at busy, then L + o + size×G + L + o (eq 4b).
	want := busy + p.L + p.O + 4096*p.G + p.L + p.O
	if !almostEq(res.RankFinish[1], want) {
		t.Errorf("recv finish = %v, want %v", res.RankFinish[1], want)
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	// Two sends with different sizes must match receives in order.
	topo := offNodePair()
	s := New(topo)
	s.SetProgram(0, Ops(Send(1, 100), Send(1, 200)))
	s.SetProgram(1, Ops(Recv(0), Recv(0)))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sends != 2 || res.Recvs != 2 || res.BytesSent != 300 {
		t.Errorf("traffic counters = %+v", res)
	}
}

func TestManyRoundTripsAccumulate(t *testing.T) {
	p := logp.XT4()
	topo := offNodePair()
	s := New(topo)
	const rounds = 10
	var o0, o1 []Op
	for i := 0; i < rounds; i++ {
		o0 = append(o0, Send(1, 512), Recv(1))
		o1 = append(o1, Recv(0), Send(0, 512))
	}
	s.SetProgram(0, Ops(o0...))
	s.SetProgram(1, Ops(o1...))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * rounds * p.TotalCommOffNode(512)
	if !almostEq(res.Time, want) {
		t.Errorf("round trips = %v, want %v", res.Time, want)
	}
}

func TestDeadlockDetected(t *testing.T) {
	topo := offNodePair()
	s := New(topo)
	s.SetProgram(0, Ops(Recv(1)))
	s.SetProgram(1, Ops(Recv(0)))
	_, err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestRendezvousMutualSendDeadlocks(t *testing.T) {
	// The classic MPI head-to-head bug: two blocking rendezvous sends, each
	// waiting for the peer to post a receive that is queued behind the
	// send. Eager messages slip through (see the next test); above the
	// threshold this deadlocks, and the simulator must report it.
	topo := offNodePair()
	s := New(topo)
	s.SetProgram(0, Ops(Send(1, 4096), Recv(1)))
	s.SetProgram(1, Ops(Send(0, 4096), Recv(0)))
	_, err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected rendezvous deadlock, got %v", err)
	}
}

func TestEagerSendsDoNotDeadlock(t *testing.T) {
	topo := offNodePair()
	s := New(topo)
	s.SetProgram(0, Ops(Send(1, 64), Recv(1)))
	s.SetProgram(1, Ops(Send(0, 64), Recv(0)))
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeAccounting(t *testing.T) {
	topo := offNodePair()
	s := New(topo)
	s.SetProgram(0, Ops(Compute(5), Compute(7)))
	s.SetProgram(1, Ops(Compute(1)))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ComputeTime[0] != 12 || res.ComputeTime[1] != 1 {
		t.Errorf("compute = %v", res.ComputeTime)
	}
	if res.MaxComputeTime() != 12 {
		t.Errorf("MaxComputeTime = %v", res.MaxComputeTime())
	}
	if res.Time != 12 {
		t.Errorf("Time = %v", res.Time)
	}
}

func TestEmptyProgramsFinishAtZero(t *testing.T) {
	topo := offNodePair()
	s := New(topo)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != 0 {
		t.Errorf("Time = %v", res.Time)
	}
}

func TestAllReduceSingleCorePerNodeMatchesEquation9(t *testing.T) {
	// With one core per node and a power-of-two rank count, recursive
	// doubling costs exactly log2(P) × TotalComm, which is equation (9)
	// with C = 1.
	p := logp.XT4()
	for _, P := range []int{2, 4, 8, 16, 64} {
		topo := simnet.NewTopology(p, P, simnet.SpreadPlacement())
		s := New(topo)
		for r := 0; r < P; r++ {
			s.SetProgram(r, Ops(AllReduce(8)))
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		want := p.AllReduce(P, 1, 8)
		if !almostEq(res.Time, want) {
			t.Errorf("P=%d: allreduce = %v, want %v", P, res.Time, want)
		}
	}
}

func TestAllReduceNonPowerOfTwo(t *testing.T) {
	p := logp.XT4()
	topo := simnet.NewTopology(p, 6, simnet.SpreadPlacement())
	s := New(topo)
	for r := 0; r < 6; r++ {
		s.SetProgram(r, Ops(AllReduce(8)))
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Fold + 2 rounds + unfold: between 3 and 4 exchanges on the critical path.
	lo := 3 * p.TotalCommOffNode(8)
	hi := 4.5 * p.TotalCommOffNode(8)
	if res.Time < lo || res.Time > hi {
		t.Errorf("allreduce(6) = %v, want in [%v, %v]", res.Time, lo, hi)
	}
}

func TestAllReduceMismatchedSizesPanics(t *testing.T) {
	topo := offNodePair()
	s := New(topo)
	s.SetProgram(0, Ops(AllReduce(8)))
	s.SetProgram(1, Ops(AllReduce(16)))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched all-reduce sizes")
		}
	}()
	_, _ = s.Run()
}

func TestSendToSelfPanics(t *testing.T) {
	topo := offNodePair()
	s := New(topo)
	s.SetProgram(0, Ops(Send(0, 8)))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	_, _ = s.Run()
}

func TestBusContentionEmergesOffNode(t *testing.T) {
	// Two cores of one node send large messages off-node simultaneously:
	// the second DMA queues behind the first on the shared bus, so the
	// later receiver finishes strictly later than the Table 1 time.
	p := logp.XT4()
	mach := machine.XT4()
	topo := simnet.NewTopology(p, 4, simnet.LinearPlacement(mach)) // (0,1) node A, (2,3) node B
	s := New(topo)
	s.SetProgram(0, Ops(Send(2, 8192)))
	s.SetProgram(1, Ops(Send(3, 8192)))
	s.SetProgram(2, Ops(Recv(0)))
	s.SetProgram(3, Ops(Recv(1)))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	nominal := p.TotalCommOffNode(8192)
	slower := math.Max(res.RankFinish[2], res.RankFinish[3])
	if slower <= nominal {
		t.Errorf("no contention visible: %v <= %v", slower, nominal)
	}
	if res.BusQueued == 0 || res.BusWait <= 0 {
		t.Errorf("bus stats show no queueing: %+v", res)
	}
	// The paper's interference bound: at most I extra per DMA.
	maxExtra := 2 * topo.BusOccupancy(8192)
	if slower > nominal+maxExtra+1e-9 {
		t.Errorf("contention %v exceeds bound %v", slower-nominal, nominal+maxExtra)
	}
}

func TestFuncProgram(t *testing.T) {
	topo := offNodePair()
	s := New(topo)
	n := 0
	s.SetProgram(0, FuncProgram(func() (Op, bool) {
		if n >= 3 {
			return Op{}, false
		}
		n++
		return Compute(2), true
	}))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.RankFinish[0] != 6 {
		t.Errorf("finish = %v", res.RankFinish[0])
	}
}

func TestDeterministicReplay(t *testing.T) {
	build := func() *Sim {
		topo := simnet.NewTopology(logp.XT4(), 4, simnet.LinearPlacement(machine.XT4()))
		s := New(topo)
		s.SetProgram(0, Ops(Send(2, 4096), Recv(3), AllReduce(8)))
		s.SetProgram(1, Ops(Send(3, 100), Recv(2), AllReduce(8)))
		s.SetProgram(2, Ops(Recv(0), Send(1, 2000), AllReduce(8)))
		s.SetProgram(3, Ops(Recv(1), Send(0, 50), AllReduce(8)))
		return s
	}
	r1, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Time != r2.Time || r1.Events != r2.Events {
		t.Errorf("non-deterministic: %v/%d vs %v/%d", r1.Time, r1.Events, r2.Time, r2.Events)
	}
}
