package simmpi

import "repro/internal/des"

// This file holds the allocation-free bookkeeping of the simulator's hot
// path: free-list pools of message and receive-request records addressed
// by index, per-rank flat channel tables, and ring-buffer channel queues.
//
// Messages and receive requests are referenced everywhere by int32 pool
// index (and carried through the event heap in Event.Arg0), never by
// pointer, so scheduling and matching perform zero heap allocations once
// the pools and rings reach steady-state size. Pools are per-shard: a
// parallel run's shards never share a pool, and a message crossing shards
// exists as two records — the sender-shard original and a receiver-shard
// proxy — tied together by their proxy fields (parallel.go).

// none marks an empty index reference (no matched receive, no message).
const none int32 = -1

// message is a pooled in-flight message record.
type message struct {
	readyAt    float64 // valid once ready
	sendAt     float64 // sender's op start; set unconditionally (no branch)
	src, dst   int32
	bytes      int32
	ch         int32 // owning channel index (satellite: unlink takes no map lookup)
	recv       int32 // matched recvReq pool index, or none
	proxy      int32 // cross-shard: the peer shard's record for this message
	rendezvous bool
	ready      bool // data fully available at the receiver
	rtsArrived bool // rendezvous: request-to-send reached the receiver
	ctsIssued  bool // rendezvous: clear-to-send was generated
	cross      bool // message crosses a shard boundary (parallel runs only)
}

// recvReq is a pooled posted-receive record. Completion always navigates
// message→request (message.recv), never the reverse, so the request does
// not point back at its message.
type recvReq struct {
	postAt float64
	rank   int32 // receiving rank
}

func (sh *shard) allocMsg() int32 {
	return des.AllocSlot(&sh.msgs, &sh.msgFree, message{recv: none, proxy: none})
}

func (sh *shard) freeMsg(i int32) { sh.msgFree = append(sh.msgFree, i) }

func (sh *shard) allocReq() int32 {
	return des.AllocSlot(&sh.reqs, &sh.reqFree, recvReq{})
}

func (sh *shard) freeReq(i int32) { sh.reqFree = append(sh.reqFree, i) }

// port is one entry of a rank's flat channel table: the peer rank and the
// index of the channel in the owning shard's channel slice.
type port struct {
	peer int32
	ch   int32
}

// chanIndex returns the channel carrying src→dst traffic, creating it on
// first use. Wavefront ranks talk to at most four neighbours, so the
// per-rank table is a handful of entries and a linear scan beats any map:
// no hashing, no per-lookup allocation, one cache line.
func (sh *shard) chanIndex(src, dst int32) int32 {
	out := sh.ranks[src].out
	for i := range out {
		if out[i].peer == dst {
			return out[i].ch
		}
	}
	ci := sh.claimChannel()
	sh.ranks[src].out = append(out, port{peer: dst, ch: ci})
	return ci
}

// chanIndexIn is chanIndex for a cross-shard (src, dst) pair, resolved and
// created in the *receiver's* shard: the sender's out-table belongs to the
// sender's shard and its indices address that shard's channel slice, so
// cross traffic is keyed off a separate per-receiver in-table instead. Only
// the receiving shard (during windows) and the barrier coordinator (between
// windows) touch it.
func (sh *shard) chanIndexIn(src, dst int32) int32 {
	in := sh.ranks[dst].in
	for i := range in {
		if in[i].peer == src {
			return in[i].ch
		}
	}
	ci := sh.claimChannel()
	sh.ranks[dst].in = append(in, port{peer: src, ch: ci})
	return ci
}

// claimChannel returns a fresh channel slot, re-claiming one left behind by
// Sim.Reset (keeping its ring buffers) when possible.
func (sh *shard) claimChannel() int32 {
	ci := int32(len(sh.channels))
	if int(ci) < cap(sh.channels) {
		sh.channels = sh.channels[:ci+1]
		sh.channels[ci].msgs.clear()
		sh.channels[ci].recvs.clear()
	} else {
		sh.channels = append(sh.channels, channel{})
	}
	return ci
}

// channel is the per-(src, dst) pair of FIFO queues: unmatched or
// in-flight messages in sent order, and posted unmatched receives in post
// order.
type channel struct {
	msgs  ring // message pool indices
	recvs ring // recvReq pool indices
}

// unlink removes a completed message from its channel's queue. Because a
// rank's receives are blocking, matches claim messages in FIFO order and
// at most one claimed message is in flight per channel, so the completed
// message is the queue head and removal is O(1); the ordered-remove
// fallback is defensive only.
func (sh *shard) unlink(ch *channel, mi int32) {
	if ch.msgs.n > 0 && ch.msgs.at(0) == mi {
		ch.msgs.popFront()
		return
	}
	ch.msgs.remove(mi)
}

// ring is a growable circular FIFO of pool indices. The backing array's
// length is always a power of two so position wrap-around is a mask.
type ring struct {
	buf  []int32
	head int32
	n    int32
}

// clear empties the ring, keeping its backing array.
func (q *ring) clear() { q.head, q.n = 0, 0 }

// at returns the k-th element from the front, 0 ≤ k < n.
func (q *ring) at(k int32) int32 {
	return q.buf[int(q.head+k)&(len(q.buf)-1)]
}

func (q *ring) set(k, v int32) {
	q.buf[int(q.head+k)&(len(q.buf)-1)] = v
}

func (q *ring) pushBack(v int32) {
	if int(q.n) == len(q.buf) {
		q.grow()
	}
	q.buf[int(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

func (q *ring) popFront() int32 {
	v := q.buf[q.head]
	q.head = int32(int(q.head+1) & (len(q.buf) - 1))
	q.n--
	return v
}

// remove deletes the first occurrence of v, preserving FIFO order.
func (q *ring) remove(v int32) {
	for k := int32(0); k < q.n; k++ {
		if q.at(k) != v {
			continue
		}
		for j := k; j+1 < q.n; j++ {
			q.set(j, q.at(j+1))
		}
		q.n--
		return
	}
}

func (q *ring) grow() {
	capNew := len(q.buf) * 2
	if capNew == 0 {
		capNew = 4
	}
	buf := make([]int32, capNew)
	for k := int32(0); k < q.n; k++ {
		buf[k] = q.at(k)
	}
	q.buf = buf
	q.head = 0
}
