package simmpi

import "repro/internal/des"

// This file holds the allocation-free bookkeeping of the simulator's hot
// path: free-list pools of message and receive-request records addressed
// by index, per-rank flat channel tables, and ring-buffer channel queues.
//
// Messages and receive requests are referenced everywhere by int32 pool
// index (and carried through the event heap in Event.Arg0), never by
// pointer, so scheduling and matching perform zero heap allocations once
// the pools and rings reach steady-state size.

// none marks an empty index reference (no matched receive, no message).
const none int32 = -1

// message is a pooled in-flight message record.
type message struct {
	readyAt    float64 // valid once ready
	src, dst   int32
	bytes      int32
	ch         int32 // owning channel index (satellite: unlink takes no map lookup)
	recv       int32 // matched recvReq pool index, or none
	rendezvous bool
	ready      bool // data fully available at the receiver
	rtsArrived bool // rendezvous: request-to-send reached the receiver
	ctsIssued  bool // rendezvous: clear-to-send was generated
}

// recvReq is a pooled posted-receive record. Completion always navigates
// message→request (message.recv), never the reverse, so the request does
// not point back at its message.
type recvReq struct {
	postAt float64
	rank   int32 // receiving rank
}

func (s *Sim) allocMsg() int32 {
	return des.AllocSlot(&s.msgs, &s.msgFree, message{recv: none})
}

func (s *Sim) freeMsg(i int32) { s.msgFree = append(s.msgFree, i) }

func (s *Sim) allocReq() int32 {
	return des.AllocSlot(&s.reqs, &s.reqFree, recvReq{})
}

func (s *Sim) freeReq(i int32) { s.reqFree = append(s.reqFree, i) }

// port is one entry of a rank's flat channel table: the destination peer
// and the index of the (src, dst) channel in Sim.channels.
type port struct {
	peer int32
	ch   int32
}

// chanIndex returns the channel carrying src→dst traffic, creating it on
// first use. Wavefront ranks talk to at most four neighbours, so the
// per-rank table is a handful of entries and a linear scan beats any map:
// no hashing, no per-lookup allocation, one cache line.
func (s *Sim) chanIndex(src, dst int32) int32 {
	out := s.ranks[src].out
	for i := range out {
		if out[i].peer == dst {
			return out[i].ch
		}
	}
	ci := int32(len(s.channels))
	if int(ci) < cap(s.channels) {
		// Re-claim a slot left by Sim.Reset, keeping its ring buffers.
		s.channels = s.channels[:ci+1]
		s.channels[ci].msgs.clear()
		s.channels[ci].recvs.clear()
	} else {
		s.channels = append(s.channels, channel{})
	}
	s.ranks[src].out = append(out, port{peer: dst, ch: ci})
	return ci
}

// channel is the per-(src, dst) pair of FIFO queues: unmatched or
// in-flight messages in sent order, and posted unmatched receives in post
// order.
type channel struct {
	msgs  ring // message pool indices
	recvs ring // recvReq pool indices
}

// unlink removes a completed message from its channel's queue. Because a
// rank's receives are blocking, matches claim messages in FIFO order and
// at most one claimed message is in flight per channel, so the completed
// message is the queue head and removal is O(1); the ordered-remove
// fallback is defensive only.
func (s *Sim) unlink(ch *channel, mi int32) {
	if ch.msgs.n > 0 && ch.msgs.at(0) == mi {
		ch.msgs.popFront()
		return
	}
	ch.msgs.remove(mi)
}

// ring is a growable circular FIFO of pool indices. The backing array's
// length is always a power of two so position wrap-around is a mask.
type ring struct {
	buf  []int32
	head int32
	n    int32
}

// clear empties the ring, keeping its backing array.
func (q *ring) clear() { q.head, q.n = 0, 0 }

// at returns the k-th element from the front, 0 ≤ k < n.
func (q *ring) at(k int32) int32 {
	return q.buf[int(q.head+k)&(len(q.buf)-1)]
}

func (q *ring) set(k, v int32) {
	q.buf[int(q.head+k)&(len(q.buf)-1)] = v
}

func (q *ring) pushBack(v int32) {
	if int(q.n) == len(q.buf) {
		q.grow()
	}
	q.buf[int(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

func (q *ring) popFront() int32 {
	v := q.buf[q.head]
	q.head = int32(int(q.head+1) & (len(q.buf) - 1))
	q.n--
	return v
}

// remove deletes the first occurrence of v, preserving FIFO order.
func (q *ring) remove(v int32) {
	for k := int32(0); k < q.n; k++ {
		if q.at(k) != v {
			continue
		}
		for j := k; j+1 < q.n; j++ {
			q.set(j, q.at(j+1))
		}
		q.n--
		return
	}
}

func (q *ring) grow() {
	capNew := len(q.buf) * 2
	if capNew == 0 {
		capNew = 4
	}
	buf := make([]int32, capNew)
	for k := int32(0); k < q.n; k++ {
		buf[k] = q.at(k)
	}
	q.buf = buf
	q.head = 0
}
