package simmpi

// Conservative parallel execution (classic CMB-style windowing, des.Group).
//
// SetShards(K) partitions the ranks into K shards along node boundaries, so
// every shared bus — and all on-chip traffic — stays inside one shard. Each
// shard owns a full event engine plus the message pools and channel tables
// of its ranks, and advances concurrently inside the global lookahead
// window [T, T+L): every cross-node event chain in the LogGP protocol
// carries at least one +L wire-latency term (simnet.Topology.Lookahead),
// and queueing only adds delay, so nothing a shard executes inside a window
// can affect another shard before the window ends.
//
// Cross-shard interactions never touch the peer shard directly. They are
// recorded in per-shard boundary buffers and applied by the barrier
// coordinator, which runs single-threaded between windows:
//
//   - xkMsg: a send whose receiver lives elsewhere. The coordinator creates
//     a proxy message in the receiver's shard — entering the channel FIFO in
//     send-time order, exactly where the serial run would have enqueued it —
//     and, for rendezvous, schedules the RTS. The sender-side original and
//     the proxy point at each other through message.proxy.
//   - xkCTS: the receiver's clear-to-send, scheduled back into the sender's
//     shard.
//   - xkEagerArrive / xkRdvArrive: the data arrival, scheduled into the
//     receiver's shard against the proxy; the sender-side record is freed.
//   - linkOp: with an interconnect attached, every AcquireLinks call (cross-
//     or intra-shard) is deferred and replayed serially in merged event
//     order, because links are shared machine-wide resources.
//   - arEntry: closed-form all-reduce entries; the coordinator folds them
//     and resumes every rank once a generation is complete.
//
// Determinism: records are applied in (time, rank, shard, emission) order,
// and every parallel run — including its single-shard serial core — uses
// the canonical content-derived same-time event order (events.go evPri)
// instead of the engine's scheduling-order tiebreak. Scheduling order is a
// global counter a sharded run cannot reconstruct: a barrier-injected event
// has no way to recover the sequence number the serial engine would have
// interleaved it with. Content order needs no such counter, so the result
// is bit-identical for every shard count k ≥ 2 (the property tests pin
// 2, 4 and 8 against each other and against the serial run). A default
// serial run keeps the legacy scheduling-order ties and stays bit-identical
// to the seed implementation (golden_test.go); the two orders coincide
// whenever same-time events touch disjoint state — every configuration in
// the test suite — and can differ microscopically in bus-contention stats
// on tie-heavy workloads.

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/logp"
)

// Boundary-record kinds (crossRec.kind).
const (
	xkMsg uint8 = iota + 1
	xkCTS
	xkEagerArrive
	xkRdvArrive
)

// crossRec is one buffered cross-shard effect. t is both the apply time and
// the merge-order key; rank/shard/idx complete the deterministic tiebreak.
// pt is the emitting event's virtual time — the scheduling context the
// serial engine would have given the event this record turns into.
type crossRec struct {
	t     float64
	pt    float64
	kind  uint8
	shard int32 // emitting shard
	idx   int32 // emission order within the shard's window
	rank  int32 // serial same-time tiebreak: the rank driving the chain
	src   int32
	dst   int32
	bytes int32
	smsg  int32 // sender-shard message pool index
	rdv   bool  // xkMsg: rendezvous protocol
}

// linkOp is a deferred interconnect reservation: the injection event ran
// (bus acquired, sender resumed) but the shared links are only walked at
// the barrier, in merged event order — (t, ctx, pri), the canonical order
// the injection events themselves fire in.
type linkOp struct {
	t     float64 // injection event's virtual time (merge order)
	ctx   float64 // injection event's scheduling context (engine CurCtx)
	pri   uint64  // canonical same-time priority of the injection (evPri)
	start float64 // bus-granted injection start
	shard int32
	idx   int32
	mi    int32 // sender-shard message
	rdv   bool
}

// arEntry is one rank entering a closed-form all-reduce generation. pt is
// the entering event's virtual time; the serial engine schedules every
// resume of a generation from the context of its last entry, so the
// completion context is the maximum pt over the generation's entries.
type arEntry struct {
	t     float64
	pt    float64
	gen   int32
	rank  int32
	bytes int32
}

// parRun is the coordinator state of one parallel run, reused across runs.
type parRun struct {
	k         int
	rankShard []int32
	engines   []*des.Engine

	// Barrier scratch, reused across windows.
	msgs   []crossRec
	others []crossRec
	links  []linkOp

	windows uint64
	stalls  uint64
}

// SetShards requests conservative parallel execution over k shards.
// k ≤ 1 (the default) runs serially. The effective shard count is capped by
// the node count — shards are node-aligned so shared buses never straddle a
// boundary — and the run silently falls back to serial when the topology
// offers no lookahead (L == 0), when a tracer is installed, or when the
// rank placement cannot guarantee window-safe all-reduce completions (see
// allReduceWindowSafe). Runs requested with k > 1 use the canonical
// same-time event order (events.go) even when they fall back to one shard,
// so results are bit-identical for every requested count k > 1.
// The setting survives Reset.
//
// Deprecated: pass Options{Shards: k} to NewWithOptions or
// ResetWithOptions instead, which rejects the tracer+shards conflict at
// configuration time rather than degrading silently at Run.
func (s *Sim) SetShards(k int) {
	if k < 1 {
		k = 1
	}
	s.nshards = k
}

// Shards returns the requested shard count (not the effective one).
func (s *Sim) Shards() int {
	if s.nshards < 1 {
		return 1
	}
	return s.nshards
}

// ParallelStats reports the effective shard count of the last Run and the
// window/stall counters of its barrier scheduler; shards == 1 with zero
// counters for a serial run.
func (s *Sim) ParallelStats() (shards int, windows, stalls uint64) {
	if s.prun == nil || s.prun.k <= 1 {
		return 1, 0, 0
	}
	return s.prun.k, s.prun.windows, s.prun.stalls
}

// effectiveShards resolves the shard count a Run will actually use.
func (s *Sim) effectiveShards() int {
	k := s.nshards
	if k <= 1 || s.tracer != nil || len(s.ranks) < 2 {
		return 1
	}
	if s.topo.Lookahead() <= 0 {
		return 1
	}
	nodes := s.nodeCount()
	if k > nodes {
		k = nodes
	}
	if k <= 1 || !s.allReduceWindowSafe() {
		return 1
	}
	return k
}

// nodeCount returns the number of node ids in use (placements produce
// contiguous ids starting at zero).
func (s *Sim) nodeCount() int {
	nodes := 0
	for r := range s.ranks {
		if n := s.topo.NodeOf(r) + 1; n > nodes {
			nodes = n
		}
	}
	return nodes
}

// allReduceWindowSafe reports whether every rank's closed-form all-reduce
// completion is guaranteed to land at least one lookahead L after the last
// entry, which the barrier coordinator needs to inject the resume events
// without rewinding any shard. The recursive-doubling schedule of
// allReduceTimes guarantees it when each core rank's final round (distance
// p2/2) and each folded rank's fold exchange are off-node: those exchanges
// cost ≥ L and dominate every completion time. Placements that violate it
// (e.g. a machine whose node holds half the power-of-two core) simply run
// serially.
func (s *Sim) allReduceWindowSafe() bool {
	n := len(s.ranks)
	p2 := FloorPow2(n)
	if p2 < 2 {
		return false
	}
	for r := 0; r < p2; r++ {
		if s.topo.SameNode(r, r^(p2/2)) {
			return false
		}
	}
	for r := p2; r < n; r++ {
		if s.topo.SameNode(r, r-p2) {
			return false
		}
	}
	return true
}

// partition assigns every rank to a shard: node ids are striped round-robin
// (node mod k), so each shard owns whole nodes and every bus group stays
// shard-local. Striping, not contiguous blocks: wavefront codes concentrate
// activity in a moving band of consecutive ranks, and with L-sized windows a
// contiguous partition leaves most shards idle in most windows while the
// band crawls through one block. Interleaving spreads any contiguous active
// band across all k shards. Results do not depend on the partition — the
// canonical event order and the barrier merge order are partition-
// independent — so this is purely a load-balance choice.
func (s *Sim) partition(p *parRun, k int) {
	if cap(p.rankShard) < len(s.ranks) {
		p.rankShard = make([]int32, len(s.ranks))
	}
	p.rankShard = p.rankShard[:len(s.ranks)]
	for r := range s.ranks {
		p.rankShard[r] = int32(s.topo.NodeOf(r) % k)
	}
}

// runParallel is the parallel counterpart of the serial branch in Run.
func (s *Sim) runParallel(k int) (Result, error) {
	if s.prun == nil {
		s.prun = &parRun{}
	}
	p := s.prun
	p.k = k
	p.windows, p.stalls = 0, 0
	s.partition(p, k)
	for len(s.shards) < k {
		s.shards = append(s.shards, s.newShard(int32(len(s.shards))))
	}
	xlinks := s.topo.Interconnect() != nil
	for i := 0; i < k; i++ {
		sh := s.shards[i]
		sh.bind()
		sh.xpart = p.rankShard
		sh.xlinks = xlinks
	}
	for i := range s.ranks {
		s.shards[p.rankShard[i]].running++
	}
	// The init loop visits ranks in rank order, like the serial path: each
	// shard's t=0 event sequence is the rank-order subsequence the serial
	// engine would have produced.
	for i := range s.ranks {
		s.shards[p.rankShard[i]].advance(&s.ranks[i])
	}

	p.engines = p.engines[:0]
	for i := 0; i < k; i++ {
		p.engines = append(p.engines, &s.shards[i].eng)
	}
	g := des.NewGroup(p.engines, s.topo.Lookahead())
	if o := s.obs; o != nil && (o.Windows || o.Hist) {
		g.SetObserver(func(window uint64, shard int, start, end float64, events uint64, pending int) {
			o.Window(window, int32(shard), start, end, events, pending)
		})
	}
	g.Run(func() { s.barrier(p) })
	p.windows, p.stalls = g.Windows(), g.Stalls()

	var end float64
	for i := 0; i < k; i++ {
		if t := s.shards[i].eng.Now(); t > end {
			end = t
		}
	}
	return s.assemble(end)
}

// --- boundary-record emission (shard side, inside windows) ---

// execSendCross is execSend for a receiver owned by another shard. Shards
// are node-aligned, so the pair is off-node by construction and only the
// eager and rendezvous LogGP paths of Table 1(a) apply.
func (sh *shard) execSendCross(r *rankState, peer, bytes int) {
	sh.sends++
	sh.bytes += uint64(bytes)
	ts := r.t
	p := &sh.par
	mi := sh.allocMsg()
	m := &sh.msgs[mi]
	m.src, m.dst, m.bytes, m.ch = r.id, int32(peer), int32(bytes), none
	m.sendAt = ts
	m.cross = true
	rdv := bytes > logp.EagerThreshold
	sh.xrecs = append(sh.xrecs, crossRec{
		t: ts, pt: sh.eng.Now(), kind: xkMsg, shard: sh.id, idx: sh.emit, rank: r.id,
		src: r.id, dst: int32(peer), bytes: int32(bytes), smsg: mi, rdv: rdv,
	})
	sh.emit++
	if rdv {
		// Table 1(a) eq (2): the sender blocks until the CTS round-trip;
		// the receiver-side RTS is scheduled by the coordinator.
		m.rendezvous = true
		return
	}
	// Table 1(a) eq (1): eager, sender buffers and continues after o.
	sh.resumeAt(r, ts+p.O)
	sh.at(ts+p.O, evEagerInject, m.src, m.dst, mi)
}

// deferLinks reports whether link reservations must be replayed at the
// barrier (parallel run with an interconnect attached).
func (sh *shard) deferLinks() bool { return sh.xlinks }

// pushLinkOp defers an injection's interconnect walk to the barrier. The
// recorded priority is the injection event's own canonical priority, so
// the barrier's replay acquires links in exactly the order the serial
// engine fires the injection events.
func (sh *shard) pushLinkOp(t, start float64, mi int32, rdv bool) {
	m := &sh.msgs[mi]
	kind := evEagerInject
	if rdv {
		kind = evRdvInject
	}
	sh.linkOps = append(sh.linkOps, linkOp{
		t: t, ctx: sh.eng.CurCtx(), pri: evPri(kind, m.src, m.dst), start: start,
		shard: sh.id, idx: sh.emit, mi: mi, rdv: rdv,
	})
	sh.emit++
}

// emitArrive buffers a cross-shard data arrival (flat-wire path; with an
// interconnect the arrival comes out of the link replay instead).
func (sh *shard) emitArrive(kind uint8, t float64, mi int32) {
	m := &sh.msgs[mi]
	sh.xrecs = append(sh.xrecs, crossRec{
		t: t, pt: sh.eng.Now(), kind: kind, shard: sh.id, idx: sh.emit, rank: m.src,
		src: m.src, dst: m.dst, smsg: mi,
	})
	sh.emit++
}

// emitCTS buffers the clear-to-send of a cross-shard rendezvous, emitted by
// the receiver's shard against the sender-shard message (m.proxy).
func (sh *shard) emitCTS(t float64, mi int32) {
	m := &sh.msgs[mi]
	sh.xrecs = append(sh.xrecs, crossRec{
		t: t, pt: sh.eng.Now(), kind: xkCTS, shard: sh.id, idx: sh.emit, rank: m.dst,
		src: m.src, dst: m.dst, smsg: m.proxy,
	})
	sh.emit++
}

// --- barrier coordination (single-threaded, between windows) ---

func recLess(a, b *crossRec) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	if a.shard != b.shard {
		return a.shard < b.shard
	}
	return a.idx < b.idx
}

// barrier drains every shard's boundary buffers and applies them in the
// deterministic merged order: channel insertions first (they wire up the
// proxies everything else resolves through), then link replays, then the
// remaining scheduled events, then all-reduce completions — matching the
// serial engine's scheduling order for each record class.
func (s *Sim) barrier(p *parRun) {
	p.msgs, p.others, p.links = p.msgs[:0], p.others[:0], p.links[:0]
	anyAR := false
	for _, sh := range s.shards[:p.k] {
		for i := range sh.xrecs {
			if sh.xrecs[i].kind == xkMsg {
				p.msgs = append(p.msgs, sh.xrecs[i])
			} else {
				p.others = append(p.others, sh.xrecs[i])
			}
		}
		sh.xrecs = sh.xrecs[:0]
		p.links = append(p.links, sh.linkOps...)
		sh.linkOps = sh.linkOps[:0]
		if len(sh.arEnter) > 0 {
			anyAR = true
		}
		sh.emit = 0
	}
	sort.Slice(p.msgs, func(i, j int) bool { return recLess(&p.msgs[i], &p.msgs[j]) })
	for i := range p.msgs {
		s.applyMsg(p, &p.msgs[i])
	}
	sort.Slice(p.links, func(i, j int) bool {
		a, b := &p.links[i], &p.links[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.ctx != b.ctx {
			return a.ctx < b.ctx
		}
		if a.pri != b.pri {
			return a.pri < b.pri
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.idx < b.idx
	})
	for i := range p.links {
		s.applyLink(p, &p.links[i])
	}
	sort.Slice(p.others, func(i, j int) bool { return recLess(&p.others[i], &p.others[j]) })
	for i := range p.others {
		s.applyRec(p, &p.others[i])
	}
	if anyAR {
		s.applyAllReduce(p)
	}
}

// applyMsg materialises a cross-shard send in the receiver's shard: proxy
// message, channel FIFO entry (in send-time order), receive matching, and —
// for rendezvous — the RTS event, all exactly as the serial execSend would
// have done at the send time.
func (s *Sim) applyMsg(p *parRun, rec *crossRec) {
	ssh := s.shards[rec.shard]
	dsh := s.shards[p.rankShard[rec.dst]]
	ci := dsh.chanIndexIn(rec.src, rec.dst)
	mi := dsh.allocMsg()
	m := &dsh.msgs[mi]
	m.src, m.dst, m.bytes, m.ch = rec.src, rec.dst, rec.bytes, ci
	m.sendAt = rec.t
	m.cross = true
	m.proxy = rec.smsg
	ssh.msgs[rec.smsg].proxy = mi
	ch := &dsh.channels[ci]
	ch.msgs.pushBack(mi)
	if ch.recvs.n > 0 {
		m.recv = ch.recvs.popFront()
	}
	if rec.rdv {
		m.rendezvous = true
		pp := &dsh.par
		dsh.atCtx(rec.t+pp.O+pp.L, rec.pt, evRTS, m.dst, m.src, mi)
	}
}

// applyLink replays a deferred interconnect reservation in merged event
// order and schedules the resulting data arrival.
func (s *Sim) applyLink(p *parRun, op *linkOp) {
	ssh := s.shards[op.shard]
	m := &ssh.msgs[op.mi]
	start := op.start
	start += s.topo.AcquireLinks(int(m.src), int(m.dst), start, int(m.bytes))
	pp := &ssh.par
	arrive := start + float64(m.bytes)*pp.G + pp.L
	kind := evEagerArrive
	if op.rdv {
		kind = evRdvArrive
	}
	if m.cross {
		dsh := s.shards[p.rankShard[m.dst]]
		dsh.atCtx(arrive, op.t, kind, m.dst, m.src, m.proxy)
		ssh.freeMsg(op.mi)
		return
	}
	ssh.atCtx(arrive, op.t, kind, m.dst, m.src, op.mi)
}

// applyRec schedules a buffered cross-shard event (CTS or data arrival).
func (s *Sim) applyRec(p *parRun, rec *crossRec) {
	switch rec.kind {
	case xkCTS:
		ssh := s.shards[p.rankShard[rec.src]]
		ssh.atCtx(rec.t, rec.pt, evCTS, rec.src, rec.dst, rec.smsg)
	case xkEagerArrive, xkRdvArrive:
		ssh := s.shards[rec.shard]
		proxy := ssh.msgs[rec.smsg].proxy
		dsh := s.shards[p.rankShard[rec.dst]]
		kind := evEagerArrive
		if rec.kind == xkRdvArrive {
			kind = evRdvArrive
		}
		dsh.atCtx(rec.t, rec.pt, kind, rec.dst, rec.src, proxy)
		ssh.freeMsg(rec.smsg)
	default:
		panic(fmt.Sprintf("simmpi: unknown boundary record kind %d", rec.kind))
	}
}

// applyAllReduce folds the entry records into their generations and, when a
// generation is complete, computes the closed-form completion times and
// resumes every rank in rank order — the order the serial path uses. Every
// rank is blocked in the all-reduce at that point and completions land at
// least one lookahead past the final entry (allReduceWindowSafe), so the
// injected resumes never precede a shard's clock.
func (s *Sim) applyAllReduce(p *parRun) {
	maxGen := -1
	for _, sh := range s.shards[:p.k] {
		for _, e := range sh.arEnter {
			for len(s.arGens) <= int(e.gen) {
				s.arGens = append(s.arGens, arGen{})
			}
			g := &s.arGens[e.gen]
			if g.times == nil {
				g.bytes = int(e.bytes)
				g.times = make([]float64, len(s.ranks))
			}
			if g.bytes != int(e.bytes) {
				panic(fmt.Sprintf("simmpi: mismatched all-reduce sizes %d vs %d", g.bytes, e.bytes))
			}
			g.times[e.rank] = e.t
			g.entered++
			if e.pt > g.pt {
				g.pt = e.pt
			}
			if int(e.gen) > maxGen {
				maxGen = int(e.gen)
			}
		}
		sh.arEnter = sh.arEnter[:0]
	}
	for gi := 0; gi <= maxGen; gi++ {
		g := &s.arGens[gi]
		if g.times == nil || g.entered < len(s.ranks) {
			continue
		}
		times := g.times
		g.times = nil
		done := s.allReduceTimes(times, g.bytes)
		for i := range s.ranks {
			s.shards[p.rankShard[i]].resumeAtCtx(&s.ranks[i], done[i], g.pt)
		}
	}
}
