package simmpi_test

// Interconnect parity tests: attaching a link fabric must be invisible
// whenever no message crosses nodes (1-node machines), must be exactly
// repeatable run to run, and must leave the flat-wire path bit-identical
// when the spec is bus-only (the golden tests pin the latter against the
// seed implementation).

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// runWithInterconnect simulates one Sweep3D iteration on the machine with
// the given interconnect spec attached.
func runWithInterconnect(t *testing.T, g grid.Grid, n, m int, mach machine.Machine, spec topo.Spec) simmpi.Result {
	t.Helper()
	dec := grid.MustDecompose(g, n, m)
	sched, err := apps.Sweep3D(g, 2).Schedule(dec, 1)
	if err != nil {
		t.Fatal(err)
	}
	tp := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	if err := tp.AttachInterconnect(spec); err != nil {
		t.Fatal(err)
	}
	sim := simmpi.New(tp)
	for r, p := range sched.Programs() {
		sim.SetProgram(r, p)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Results are compared with reset_test.go's sameResult: bit-for-bit over
// time, traffic, bus statistics and every per-rank finish time.

// TestOneNodeDegradesToBusOnly: with every rank on a single node there is
// no off-node traffic, so a torus or fat-tree fabric must be bit-invisible:
// identical times, identical bus statistics, zero link activity.
func TestOneNodeDegradesToBusOnly(t *testing.T) {
	g := grid.Cube(16)
	mach, err := machine.XT4MultiCore(16) // 4×4 rectangle hosts all 16 ranks
	if err != nil {
		t.Fatal(err)
	}
	base := runWithInterconnect(t, g, 4, 4, mach, topo.Spec{})
	for _, spec := range []topo.Spec{
		{Kind: topo.Torus2D},
		{Kind: topo.Torus3D},
		{Kind: topo.FatTree},
	} {
		res := runWithInterconnect(t, g, 4, 4, mach, spec)
		sameResult(t, spec.String(), base, res)
		if res.LinkRequests != 0 || res.LinkWait != 0 || res.LinkBusy != 0 {
			t.Errorf("%s: 1-node run touched links: %d requests", spec, res.LinkRequests)
		}
	}
}

// TestInterconnectRepeatable: a torus-connected multi-node run is exactly
// repeatable — link queueing is deterministic like every other resource.
func TestInterconnectRepeatable(t *testing.T) {
	g := grid.Cube(24)
	mach := machine.XT4()
	spec := topo.Spec{Kind: topo.Torus2D}
	a := runWithInterconnect(t, g, 6, 6, mach, spec)
	b := runWithInterconnect(t, g, 6, 6, mach, spec)
	sameResult(t, "repeat", a, b)
	if a.LinkRequests == 0 {
		t.Fatal("multi-node torus run never touched a link")
	}
}

// TestInterconnectChangesMultiNodeTiming: across nodes the fabric is not a
// no-op — per-hop latency and link queueing must show up for multi-hop
// traffic, and link byte conservation must hold at the Result level.
func TestInterconnectChangesMultiNodeTiming(t *testing.T) {
	g := grid.Cube(24)
	mach := machine.XT4()
	bus := runWithInterconnect(t, g, 6, 6, mach, topo.Spec{})
	// An expensive fabric (big per-hop latency) must slow the wavefront.
	slow := runWithInterconnect(t, g, 6, 6, mach, topo.Spec{Kind: topo.Torus2D, HopL: 50})
	if slow.Time <= bus.Time {
		t.Errorf("hopL=50 torus time %v not above flat-wire %v", slow.Time, bus.Time)
	}
	if slow.LinkBusy <= 0 {
		t.Error("torus run accumulated no link busy time")
	}
}

// TestResetClearsInterconnect: a reused topology+sim pair reproduces the
// first run bit-for-bit after Reset, link statistics included.
func TestResetClearsInterconnect(t *testing.T) {
	g := grid.Cube(24)
	mach := machine.XT4()
	dec := grid.MustDecompose(g, 6, 6)
	tp := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	if err := tp.AttachInterconnect(topo.Spec{Kind: topo.FatTree}); err != nil {
		t.Fatal(err)
	}
	run := func(sim *simmpi.Sim) simmpi.Result {
		sched, err := apps.Sweep3D(g, 2).Schedule(dec, 1)
		if err != nil {
			t.Fatal(err)
		}
		for r, p := range sched.Programs() {
			sim.SetProgram(r, p)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sim := simmpi.New(tp)
	first := run(sim)
	tp.Reset()
	sim.Reset(tp)
	second := run(sim)
	sameResult(t, "reset", first, second)
	if first.LinkWait != second.LinkWait || first.LinkRequests != second.LinkRequests {
		t.Errorf("link stats drift across reset: %v/%d vs %v/%d",
			first.LinkWait, first.LinkRequests, second.LinkWait, second.LinkRequests)
	}
}
