package simmpi_test

// Tests of the Sim.Reset reuse API: a reset simulator must behave
// bit-identically to a freshly constructed one (the campaign engine depends
// on this for worker-count-independent results), and back-to-back runs of
// the same configuration must be near-allocation-free so sweeps amortise
// the pools of PR 1 across runs, not just within one.

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
)

// freshRun simulates one iteration of bm at p ranks on a new Sim.
func freshRun(t *testing.T, bm apps.Benchmark, p int) simmpi.Result {
	t.Helper()
	dec, err := grid.SquareDecomposition(bm.App.Grid, p)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := bm.Schedule(dec, 1)
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.XT4()
	topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	sim := simmpi.New(topo)
	for r, pr := range sched.Programs() {
		sim.SetProgram(r, pr)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// resetRun simulates bm at p ranks on sim after a Reset.
func resetRun(t *testing.T, sim *simmpi.Sim, bm apps.Benchmark, p int) simmpi.Result {
	t.Helper()
	dec, err := grid.SquareDecomposition(bm.App.Grid, p)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := bm.Schedule(dec, 1)
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.XT4()
	topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	sim.Reset(topo)
	for r, pr := range sched.Programs() {
		sim.SetProgram(r, pr)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameResult(t *testing.T, name string, a, b simmpi.Result) {
	t.Helper()
	if a.Time != b.Time || a.Events != b.Events || a.Sends != b.Sends ||
		a.Recvs != b.Recvs || a.BytesSent != b.BytesSent ||
		a.BusWait != b.BusWait || a.BusBusy != b.BusBusy ||
		a.BusRequests != b.BusRequests || a.BusQueued != b.BusQueued {
		t.Errorf("%s: reset run diverged from fresh run:\n fresh %+v\n reset %+v", name, a, b)
	}
	for i := range a.RankFinish {
		if a.RankFinish[i] != b.RankFinish[i] {
			t.Fatalf("%s: rank %d finish diverged: %x vs %x", name, i, a.RankFinish[i], b.RankFinish[i])
		}
	}
}

// TestResetBitIdentical reuses one Sim across the three paper benchmarks at
// varying rank counts — shrinking and growing the rank array, re-shaping the
// channel tables — and demands each run match a fresh simulator to the last
// bit.
func TestResetBitIdentical(t *testing.T) {
	g := grid.Cube(24)
	cases := []struct {
		name string
		bm   apps.Benchmark
		p    int
	}{
		{"sweep3d-16", apps.Sweep3D(g, 2), 16},
		{"lu-64", apps.LU(g), 64},
		{"chimaera-4", apps.Chimaera(g, 1), 4},
		{"sweep3d-36", apps.Sweep3D(g, 2), 36},
	}
	mach := machine.XT4()
	seed := simnet.NewTopology(mach.Params, 4, simnet.SpreadPlacement())
	sim := simmpi.New(seed)
	for r := 0; r < 4; r++ {
		sim.SetProgram(r, simmpi.Ops(simmpi.AllReduce(8)))
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		sameResult(t, tc.name, freshRun(t, tc.bm, tc.p), resetRun(t, sim, tc.bm, tc.p))
	}
}

// collectiveProgs builds per-rank programs running a mix of every expanded
// collective with interleaved compute.
func collectiveProgs(ranks int) []*simmpi.SliceProgram {
	progs := make([]*simmpi.SliceProgram, ranks)
	for r := 0; r < ranks; r++ {
		progs[r] = simmpi.Ops(
			simmpi.Compute(float64(r)*0.25),
			simmpi.Bcast(0, 4096),
			simmpi.AllReduceAlg(8192, simmpi.AlgRing),
			simmpi.Compute(1.0),
			simmpi.AllReduceAlg(64, simmpi.AlgRecDouble),
			simmpi.Barrier(),
		)
	}
	return progs
}

// collectiveRun simulates the collective mix at the given rank count on sim
// (nil: a fresh simulator).
func collectiveRun(t *testing.T, sim *simmpi.Sim, ranks int) simmpi.Result {
	t.Helper()
	mach := machine.XT4()
	topo := simnet.NewTopology(mach.Params, ranks, simnet.LinearPlacement(mach))
	if sim == nil {
		sim = simmpi.New(topo)
	} else {
		sim.Reset(topo)
	}
	for r, p := range collectiveProgs(ranks) {
		sim.SetProgram(r, p)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestResetCollectiveBitIdentical reuses one Sim across collective-heavy
// programs at shrinking and growing rank counts — exercising the pooled
// per-rank expansion buffers — and demands bit-identity with fresh runs.
func TestResetCollectiveBitIdentical(t *testing.T) {
	sim := simmpi.New(simnet.NewTopology(machine.XT4().Params, 4, simnet.SpreadPlacement()))
	for r := 0; r < 4; r++ {
		sim.SetProgram(r, simmpi.Ops(simmpi.Barrier()))
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{16, 7, 32, 16} {
		name := fmt.Sprintf("collectives-%d", ranks)
		sameResult(t, name, collectiveRun(t, nil, ranks), collectiveRun(t, sim, ranks))
	}
}

// TestResetCollectiveAllocsNearZero extends the reuse contract to
// collectives: once a Sim has expanded a collective program, re-running it
// after Reset must stay within the same ≤8 allocs budget as point-to-point
// traffic — the expansion buffers, pools and rings must all be reused.
func TestResetCollectiveAllocsNearZero(t *testing.T) {
	const ranks = 16
	mach := machine.XT4()
	topo := simnet.NewTopology(mach.Params, ranks, simnet.LinearPlacement(mach))
	progs := collectiveProgs(ranks)
	sim := simmpi.New(topo)
	run := func() {
		topo.Reset()
		sim.Reset(topo)
		for r, p := range progs {
			p.Rewind()
			sim.SetProgram(r, p)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run() // first run grows the pools and expansion buffers
	allocs := testing.AllocsPerRun(10, run)
	t.Logf("%.1f allocs per collective re-run", allocs)
	if allocs > 8 {
		t.Errorf("collective reset run allocates too much: %.1f allocs/run, want ≤ 8", allocs)
	}
}

// TestResetAllocsNearZero is the reuse contract: once a Sim has run a
// configuration, re-running it after Reset must allocate near zero — a
// couple of Result slices, nothing proportional to events or messages.
func TestResetAllocsNearZero(t *testing.T) {
	const ranks = 16
	const rounds = 50
	mach := machine.XT4()
	topo := simnet.NewTopology(mach.Params, ranks, simnet.LinearPlacement(mach))
	// A neighbour ring of eager and rendezvous traffic with interleaved
	// compute, exercising pools, rings and the bus without all-reduce
	// generations (which allocate by design, once per generation).
	progs := make([]*simmpi.SliceProgram, ranks)
	for r := 0; r < ranks; r++ {
		next := (r + 1) % ranks
		prev := (r + ranks - 1) % ranks
		var ops []simmpi.Op
		for i := 0; i < rounds; i++ {
			ops = append(ops,
				simmpi.Compute(1.5),
				simmpi.Send(next, 512),
				simmpi.Recv(prev),
				simmpi.Send(next, 4096),
				simmpi.Recv(prev),
			)
		}
		progs[r] = simmpi.Ops(ops...)
	}
	sim := simmpi.New(topo)
	var events uint64
	run := func() {
		topo.Reset()
		sim.Reset(topo)
		for r, p := range progs {
			p.Rewind()
			sim.SetProgram(r, p)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		events = res.Events
	}
	run() // first run grows the pools
	allocs := testing.AllocsPerRun(10, run)
	t.Logf("%.1f allocs per re-run over %d events", allocs, events)
	// Result carries two fresh per-rank slices; everything else must reuse.
	if allocs > 8 {
		t.Errorf("reset run allocates too much: %.1f allocs/run, want ≤ 8", allocs)
	}
}
