package simmpi

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// Options bundles every per-run configuration knob of a Sim — the span
// tracer, the flight recorder and the conservative-parallel shard count —
// so a simulation is configured in one place, at construction or Reset,
// instead of through a sequence of setters whose invalid combinations
// could only surface at Run time.
//
// The zero Options is the default serial, un-instrumented simulation.
type Options struct {
	// Tracer receives per-rank activity spans (internal/trace). A traced
	// simulation executes serially: span callbacks are not synchronised
	// across shard goroutines, so Tracer and Shards > 1 conflict.
	Tracer Tracer
	// Obs attaches a flight recorder (internal/obs). Unlike Tracer, a
	// recorder is shard-safe: sharded runs record per-rank spans from the
	// owning shards and merge histogram scratch single-threaded, so the
	// recording is deterministic for every shard count.
	Obs *obs.Recorder
	// Shards requests conservative parallel execution over that many
	// shards; 0 or 1 is the serial engine. Every sharded count (≥ 2)
	// yields bit-identical results (see parallel.go).
	Shards int
}

// Validate rejects option combinations that cannot execute as requested.
// It is the single checkpoint the construction and Reset paths share, so
// a conflict fails loudly up front instead of degrading silently at Run.
func (o Options) Validate() error {
	if o.Shards < 0 {
		return fmt.Errorf("simmpi: negative shard count %d", o.Shards)
	}
	if o.Tracer != nil && o.Shards > 1 {
		return fmt.Errorf("simmpi: a span tracer forces serial execution — drop the tracer or use Shards ≤ 1 (use a shard-safe obs.Recorder for parallel runs)")
	}
	return nil
}

// apply installs the validated options on the Sim.
func (s *Sim) apply(o Options) error {
	if err := o.Validate(); err != nil {
		return err
	}
	s.tracer = o.Tracer
	s.obs = o.Obs
	k := o.Shards
	if k < 1 {
		k = 1
	}
	s.nshards = k
	return nil
}

// NewWithOptions creates a simulation over the given topology with the
// options applied atomically; invalid combinations are rejected here
// rather than at Run. Programs are assigned with SetProgram.
func NewWithOptions(topo *simnet.Topology, o Options) (*Sim, error) {
	s := New(topo)
	if err := s.apply(o); err != nil {
		return nil, err
	}
	return s, nil
}

// ResetWithOptions rebinds the Sim to a (possibly different) topology for
// another run — retaining every internal pool exactly like Reset — and
// applies the full option set in the same step. Unlike the legacy
// setter-based flow (Reset clears the tracer and recorder but keeps the
// shard count), the Sim's configuration afterwards is exactly o: what you
// pass is what runs.
func (s *Sim) ResetWithOptions(topo *simnet.Topology, o Options) error {
	if err := o.Validate(); err != nil {
		return err
	}
	s.Reset(topo)
	return s.apply(o)
}
