package simmpi_test

// Structural tests of the collective expansions: for every algorithm and
// rank count, the per-rank op lists must form a consistent message-passing
// schedule — each Send has exactly one matching Recv on its peer — and the
// expansion must reject non-collectives and foreign algorithms.

import (
	"testing"

	"repro/internal/logp"
	"repro/internal/simmpi"
	"repro/internal/simnet"
)

// expandAll returns every rank's expansion of op.
func expandAll(op simmpi.Op, ranks int) [][]simmpi.Op {
	out := make([][]simmpi.Op, ranks)
	for r := 0; r < ranks; r++ {
		out[r] = simmpi.AppendCollective(nil, op, r, ranks)
	}
	return out
}

// TestExpansionSendRecvMatching checks pairwise message conservation: for
// every ordered rank pair, the number of sends a→b equals the number of
// receives b posts from a, and every op addresses a valid foreign peer.
func TestExpansionSendRecvMatching(t *testing.T) {
	ops := []simmpi.Op{
		simmpi.Bcast(0, 1000),
		simmpi.Bcast(3, 2000),
		simmpi.AllReduceAlg(8, simmpi.AlgRing),
		simmpi.AllReduceAlg(100000, simmpi.AlgRing),
		simmpi.AllReduceAlg(8, simmpi.AlgRecDouble),
		simmpi.AllReduceAlg(100000, simmpi.AlgRecDouble),
		simmpi.Barrier(),
	}
	for _, op := range ops {
		for _, ranks := range []int{1, 2, 3, 4, 5, 8, 13, 16, 33} {
			if op.Kind == simmpi.OpBcast && int(op.Peer) >= ranks {
				continue
			}
			progs := expandAll(op, ranks)
			sends := map[[2]int]int{}
			recvs := map[[2]int]int{}
			for r, prog := range progs {
				for _, o := range prog {
					peer := int(o.Peer)
					if peer == r || peer < 0 || peer >= ranks {
						t.Fatalf("op %+v at P=%d: rank %d addresses invalid peer %d", op, ranks, r, peer)
					}
					switch o.Kind {
					case simmpi.OpSend:
						if o.Bytes <= 0 {
							t.Fatalf("op %+v at P=%d: rank %d sends %d bytes", op, ranks, r, o.Bytes)
						}
						sends[[2]int{r, peer}]++
					case simmpi.OpRecv:
						recvs[[2]int{peer, r}]++
					default:
						t.Fatalf("op %+v at P=%d: expansion yields non-p2p kind %d", op, ranks, o.Kind)
					}
				}
			}
			if len(sends) != len(recvs) {
				t.Fatalf("op %+v at P=%d: %d send channels vs %d recv channels", op, ranks, len(sends), len(recvs))
			}
			for ch, n := range sends {
				if recvs[ch] != n {
					t.Fatalf("op %+v at P=%d: channel %v has %d sends but %d recvs", op, ranks, ch, n, recvs[ch])
				}
			}
			if ranks == 1 {
				for r, prog := range progs {
					if len(prog) != 0 {
						t.Fatalf("op %+v: single-rank expansion of rank %d is non-empty", op, r)
					}
				}
			}
		}
	}
}

// TestExpansionPanics locks the misuse contract.
func TestExpansionPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("non-collective", func() {
		simmpi.AppendCollective(nil, simmpi.Compute(1), 0, 4)
	})
	mustPanic("send op", func() {
		simmpi.AppendCollective(nil, simmpi.Send(1, 8), 0, 4)
	})
	mustPanic("auto all-reduce", func() {
		simmpi.AppendCollective(nil, simmpi.AllReduce(8), 0, 4)
	})
	mustPanic("all-reduce with binomial", func() {
		simmpi.AppendCollective(nil, simmpi.AllReduceAlg(8, simmpi.AlgBinomial), 0, 4)
	})
	mustPanic("all-reduce with dissemination", func() {
		simmpi.AppendCollective(nil, simmpi.AllReduceAlg(8, simmpi.AlgDissemination), 0, 4)
	})
	mustPanic("bcast root out of range", func() {
		simmpi.AppendCollective(nil, simmpi.Bcast(4, 8), 0, 4)
	})
}

// TestCollectiveMidProgram runs collectives interleaved with point-to-point
// traffic on the same channels: the non-overtaking FIFO matching must pair
// application messages with application receives and constituent messages
// with constituent receives, in program order.
func TestCollectiveMidProgram(t *testing.T) {
	const ranks = 4
	topo := simnet.NewTopology(logp.XT4(), ranks, simnet.SpreadPlacement())
	sim := simmpi.New(topo)
	for r := 0; r < ranks; r++ {
		next := (r + 1) % ranks
		prev := (r + ranks - 1) % ranks
		sim.SetProgram(r, simmpi.Ops(
			simmpi.Send(next, 512),                    // application eager traffic on ring channels
			simmpi.AllReduceAlg(4096, simmpi.AlgRing), // collective reusing those channels
			simmpi.Recv(prev),                         // application receive posted after the collective
			simmpi.Barrier(),
		))
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 4 app messages + ring 2·P·(P−1) + barrier P·ceil(log2 P).
	want := uint64(4 + 2*ranks*(ranks-1) + ranks*2)
	if res.Sends != want {
		t.Errorf("total sends %d, want %d", res.Sends, want)
	}
}
