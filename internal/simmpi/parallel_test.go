package simmpi_test

// Serial/parallel equivalence: the conservative sharded scheduler must be
// bit-identical to the serial engine for every shard count — same Time,
// same per-rank finish times, same traffic and contention statistics. The
// property is exercised over the paper benchmarks (eager + on-chip paths,
// all-reduce convergence), a rendezvous-heavy synthetic exchange, and a
// torus interconnect (deferred link replay), plus deadlock reporting and
// Reset-reuse of a sharded simulator.

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/topo"
)

var shardCounts = []int{1, 2, 4, 8}

func sameFull(t *testing.T, name string, a, b simmpi.Result) {
	t.Helper()
	sameResult(t, name, a, b)
	for i := range a.ComputeTime {
		if a.ComputeTime[i] != b.ComputeTime[i] {
			t.Fatalf("%s: rank %d compute time diverged: %x vs %x", name, i, a.ComputeTime[i], b.ComputeTime[i])
		}
	}
	if a.LinkRequests != b.LinkRequests || a.LinkQueued != b.LinkQueued ||
		a.LinkBusy != b.LinkBusy || a.LinkWait != b.LinkWait {
		t.Errorf("%s: link stats diverged:\n a %+v\n b %+v", name, a, b)
	}
}

// runBench simulates one iteration of a benchmark over a fresh topology
// with the given shard count, reporting the effective shard count used.
func runBench(t *testing.T, bm apps.Benchmark, g grid.Grid, n, m int, mach machine.Machine, spec topo.Spec, shards int) (simmpi.Result, int) {
	t.Helper()
	dec := grid.MustDecompose(g, n, m)
	sched, err := bm.Schedule(dec, 1)
	if err != nil {
		t.Fatal(err)
	}
	tp := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	if err := tp.AttachInterconnect(spec); err != nil {
		t.Fatal(err)
	}
	sim := simmpi.New(tp)
	sim.SetShards(shards)
	for r, p := range sched.Programs() {
		sim.SetProgram(r, p)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	k, _, _ := sim.ParallelStats()
	return res, k
}

// TestParallelMatchesSerialBenchmarks: the paper benchmarks — eager,
// on-chip and all-reduce traffic over a 2-cores-per-node machine — are
// bit-identical at every shard count.
func TestParallelMatchesSerialBenchmarks(t *testing.T) {
	g := grid.Cube(32)
	for _, tc := range []struct {
		name string
		bm   apps.Benchmark
	}{
		{"sweep3d", apps.Sweep3D(g, 2)},
		{"lu", apps.LU(g)},
	} {
		base, _ := runBench(t, tc.bm, g, 8, 8, machine.XT4(), topo.Spec{}, 1)
		for _, k := range shardCounts[1:] {
			res, eff := runBench(t, tc.bm, g, 8, 8, machine.XT4(), topo.Spec{}, k)
			if eff != k {
				t.Fatalf("%s: requested %d shards, ran with %d", tc.name, k, eff)
			}
			sameFull(t, tc.name, base, res)
		}
	}
}

// TestParallelMatchesSerialTorus exercises the deferred link replay: every
// interconnect reservation crosses the barrier and must reproduce the
// serial acquisition order exactly, wait times included.
func TestParallelMatchesSerialTorus(t *testing.T) {
	g := grid.Cube(32)
	spec := topo.Spec{Kind: topo.Torus2D}
	base, _ := runBench(t, apps.Sweep3D(g, 2), g, 8, 8, machine.XT4(), spec, 1)
	if base.LinkRequests == 0 {
		t.Fatal("torus run never touched a link")
	}
	for _, k := range shardCounts[1:] {
		res, eff := runBench(t, apps.Sweep3D(g, 2), g, 8, 8, machine.XT4(), spec, k)
		if eff != k {
			t.Fatalf("requested %d shards, ran with %d", k, eff)
		}
		sameFull(t, "torus", base, res)
	}
}

// rendezvousPrograms builds a phased neighbour exchange over n ranks mixing
// rendezvous-sized and eager messages with skewed compute and a closing
// all-reduce — every cross-shard protocol path in one program.
func rendezvousPrograms(sim *simmpi.Sim, n int) {
	for r := 0; r < n; r++ {
		right, left := (r+1)%n, (r+n-1)%n
		var ops []simmpi.Op
		ops = append(ops, simmpi.Compute(float64(r%7)*0.9))
		if r%2 == 0 {
			ops = append(ops,
				simmpi.Send(right, 5000), simmpi.Recv(left),
				simmpi.Recv(right), simmpi.Send(left, 200),
			)
		} else {
			ops = append(ops,
				simmpi.Recv(left), simmpi.Send(right, 5000),
				simmpi.Send(left, 200), simmpi.Recv(right),
			)
		}
		ops = append(ops, simmpi.AllReduce(16), simmpi.Compute(1.5))
		if r%2 == 0 {
			ops = append(ops, simmpi.Send(right, 3000), simmpi.Recv(left))
		} else {
			ops = append(ops, simmpi.Recv(left), simmpi.Send(right, 3000))
		}
		sim.SetProgram(r, simmpi.Ops(ops...))
	}
}

func runRendezvous(t *testing.T, shards int) (simmpi.Result, int) {
	t.Helper()
	const n = 32
	mach, err := machine.XT4MultiCore(4)
	if err != nil {
		t.Fatal(err)
	}
	tp := simnet.NewTopology(mach.Params, n, simnet.LinearPlacement(mach))
	sim := simmpi.New(tp)
	sim.SetShards(shards)
	rendezvousPrograms(sim, n)
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	k, windows, _ := sim.ParallelStats()
	if k > 1 && windows == 0 {
		t.Fatalf("parallel run with %d shards executed no windows", k)
	}
	return res, k
}

// TestParallelMatchesSerialRendezvous pins the cross-shard rendezvous
// protocol: RTS, CTS and data arrival each cross the boundary separately.
func TestParallelMatchesSerialRendezvous(t *testing.T) {
	base, _ := runRendezvous(t, 1)
	if base.Sends == 0 {
		t.Fatal("exchange sent nothing")
	}
	for _, k := range shardCounts[1:] {
		res, eff := runRendezvous(t, k)
		if eff != k {
			t.Fatalf("requested %d shards, ran with %d", k, eff)
		}
		sameFull(t, "rendezvous", base, res)
	}
}

// TestParallelDeadlockReported: a rank blocking forever is reported with
// the same diagnostic serially and in parallel.
func TestParallelDeadlockReported(t *testing.T) {
	run := func(shards int) error {
		mach, err := machine.XT4MultiCore(4)
		if err != nil {
			t.Fatal(err)
		}
		tp := simnet.NewTopology(mach.Params, 8, simnet.LinearPlacement(mach))
		sim := simmpi.New(tp)
		sim.SetShards(shards)
		// Rank 7 waits for a message rank 0 never sends; cross-shard at k=2.
		sim.SetProgram(7, simmpi.Ops(simmpi.Recv(0)))
		sim.SetProgram(0, simmpi.Ops(simmpi.Send(1, 64)))
		sim.SetProgram(1, simmpi.Ops(simmpi.Recv(0)))
		_, err = sim.Run()
		return err
	}
	serr, perr := run(1), run(2)
	if serr == nil || perr == nil {
		t.Fatalf("deadlock not reported: serial=%v parallel=%v", serr, perr)
	}
	if serr.Error() != perr.Error() {
		t.Errorf("deadlock diagnostics differ:\n serial   %v\n parallel %v", serr, perr)
	}
	if !strings.Contains(perr.Error(), "7") {
		t.Errorf("blocked rank not named: %v", perr)
	}
}

// TestParallelResetReuse: a sharded Sim reused through Reset (the campaign
// engine's pattern) stays bit-identical to fresh serial runs, and the
// shard-count knob survives the reset.
func TestParallelResetReuse(t *testing.T) {
	g := grid.Cube(32)
	base, _ := runBench(t, apps.Sweep3D(g, 2), g, 8, 8, machine.XT4(), topo.Spec{}, 1)

	mach := machine.XT4()
	dec := grid.MustDecompose(g, 8, 8)
	mk := func() *simnet.Topology {
		return simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	}
	sim := simmpi.New(mk())
	sim.SetShards(4)
	for run := 0; run < 3; run++ {
		if run > 0 {
			sim.Reset(mk())
		}
		sched, err := apps.Sweep3D(g, 2).Schedule(dec, 1)
		if err != nil {
			t.Fatal(err)
		}
		for r, p := range sched.Programs() {
			sim.SetProgram(r, p)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if k, _, _ := sim.ParallelStats(); k != 4 {
			t.Fatalf("run %d: shard knob lost across Reset: ran with %d shards", run, k)
		}
		sameFull(t, "reuse", base, res)
	}
}

// TestTracerForcesSerial: span tracing is not synchronised across shards,
// so a traced run must fall back to serial execution (and still trace).
func TestTracerForcesSerial(t *testing.T) {
	const n = 8
	mach, err := machine.XT4MultiCore(4)
	if err != nil {
		t.Fatal(err)
	}
	tp := simnet.NewTopology(mach.Params, n, simnet.LinearPlacement(mach))
	sim := simmpi.New(tp)
	sim.SetShards(2)
	spans := 0
	sim.SetTracer(countTracer{&spans})
	for r := 0; r < n; r++ {
		right, left := (r+1)%n, (r+n-1)%n
		if r%2 == 0 {
			sim.SetProgram(r, simmpi.Ops(simmpi.Send(right, 64), simmpi.Recv(left)))
		} else {
			sim.SetProgram(r, simmpi.Ops(simmpi.Recv(left), simmpi.Send(right, 64)))
		}
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if k, _, _ := sim.ParallelStats(); k != 1 {
		t.Fatalf("traced run used %d shards", k)
	}
	if spans == 0 {
		t.Fatal("tracer saw no spans")
	}
}

type countTracer struct{ n *int }

func (c countTracer) Span(rank int, op simmpi.OpKind, peer, bytes int, start, end float64) {
	*c.n++
}
