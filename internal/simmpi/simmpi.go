// Package simmpi is a deterministic discrete-event simulator of an
// MPI-style message-passing runtime on a multi-core parallel machine.
//
// Each rank executes a program of operations (Compute, Send, Recv,
// AllReduce) with blocking MPI semantics. Message timing follows the LogGP
// sub-models of paper Table 1: the eager protocol for messages of at most
// 1024 bytes and the rendezvous (handshake) protocol above that threshold
// (Section 3.1), with the on-chip copy/DMA paths of Section 3.2 when sender
// and receiver share a node. Every off-node or on-chip DMA passes through
// the owning node's shared bus (a FCFS resource, paper Section 4.3), so
// multi-core message contention emerges from queueing rather than being a
// closed-form term. When the topology carries an inter-node interconnect
// (internal/topo), off-node data segments additionally route across
// contended torus or fat-tree links; small rendezvous control messages
// (RTS/CTS) and the closed-form all-reduce stay on the latency-dominated
// flat-wire model.
//
// The hot path is allocation-free: message lifetimes are an explicit
// state machine of typed des events (events.go), message and receive
// records live in index-addressed pools, and channels are flat per-rank
// neighbour tables with ring-buffer queues (pool.go). Event ordering is
// bit-identical to the original closure-based implementation
// (golden_test.go).
//
// # Parallel execution
//
// All of that state lives in per-shard structs (type shard): a serial run
// is exactly one shard executing its engine to completion, and SetShards
// partitions the ranks — node-aligned, so buses stay shard-local — across
// K shards advanced concurrently inside conservative lookahead windows
// (des.Group, parallel.go). Cross-shard messages become boundary records
// merged deterministically at window barriers, so the parallel result is
// bit-identical to the serial one for any shard count.
//
// The simulator serves as the reproduction's "measured" substrate: the
// plug-and-play analytic model of internal/core is validated against it the
// way the paper validates against the Cray XT4.
package simmpi

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/logp"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// OpKind identifies a program operation.
type OpKind uint8

// Program operations.
const (
	OpCompute   OpKind = iota // local computation for Dur microseconds
	OpSend                    // blocking MPI send of Bytes to Peer
	OpRecv                    // blocking MPI receive from Peer
	OpAllReduce               // MPI all-reduce of Bytes over all ranks
	OpBcast                   // MPI broadcast of Bytes from root Peer
	OpBarrier                 // MPI barrier over all ranks
)

// Op is a single program operation. The zero Op is a zero-length compute.
//
// The struct deliberately stays at four fields: the compiler only
// SSA-decomposes small structs, and a fifth field pushes every Op copy in
// the simulator's hot loop through memory (measured ≈8% event-rate loss).
// Collective algorithm selection therefore rides in Peer, which all-reduce
// ops do not otherwise use (see CollAlgOf in collops.go).
type Op struct {
	Kind  OpKind
	Peer  int32   // send/recv peer rank; broadcast root; all-reduce CollAlg
	Bytes int32   // message size in bytes
	Dur   float64 // compute duration in microseconds
}

// Compute returns a computation op of the given duration in microseconds.
func Compute(dur float64) Op { return Op{Kind: OpCompute, Dur: dur} }

// Send returns a blocking send op.
func Send(peer, bytes int) Op {
	return Op{Kind: OpSend, Peer: int32(peer), Bytes: int32(bytes)}
}

// Recv returns a blocking receive op.
func Recv(peer int) Op { return Op{Kind: OpRecv, Peer: int32(peer)} }

// AllReduce returns an all-reduce op over all ranks.
func AllReduce(bytes int) Op { return Op{Kind: OpAllReduce, Bytes: int32(bytes)} }

// Program supplies a rank's operations one at a time, which lets wavefront
// programs with millions of operations be generated lazily.
type Program interface {
	// Next returns the next operation, or ok == false at program end.
	Next() (op Op, ok bool)
}

// SliceProgram is a Program backed by a slice of operations.
type SliceProgram struct {
	ops []Op
	pos int
}

// Ops builds a SliceProgram from a fixed operation list.
func Ops(ops ...Op) *SliceProgram { return &SliceProgram{ops: ops} }

// Next implements Program.
func (p *SliceProgram) Next() (Op, bool) {
	if p.pos >= len(p.ops) {
		return Op{}, false
	}
	op := p.ops[p.pos]
	p.pos++
	return op, true
}

// Rewind returns the program to its first operation so it can be replayed
// by a reused simulator (see Sim.Reset).
func (p *SliceProgram) Rewind() { p.pos = 0 }

// FuncProgram adapts a generator function to the Program interface.
type FuncProgram func() (Op, bool)

// Next implements Program.
func (f FuncProgram) Next() (Op, bool) { return f() }

// Result summarises a completed simulation.
type Result struct {
	// Time is the virtual time at which the last rank finished, in µs.
	Time float64
	// RankFinish holds each rank's finish time in µs.
	RankFinish []float64
	// ComputeTime holds each rank's total Compute-op time in µs; the
	// difference between finish and compute time is time spent in
	// communication and pipeline waiting (paper Figure 11's breakdown).
	ComputeTime []float64
	// Sends, Recvs and BytesSent count message traffic.
	Sends, Recvs uint64
	BytesSent    uint64
	// Events is the number of discrete events executed.
	Events uint64
	// BusRequests/BusQueued/BusBusy/BusWait aggregate shared-bus contention.
	BusRequests, BusQueued uint64
	BusBusy, BusWait       float64
	// LinkRequests/LinkQueued/LinkBusy/LinkWait aggregate interconnect link
	// contention (internal/topo); all zero on the flat-wire network.
	LinkRequests, LinkQueued uint64
	LinkBusy, LinkWait       float64
	// Hists carries the run's duration histograms when a flight recorder
	// with Hist enabled was attached (Sim.SetObs); nil otherwise. The
	// pointer aliases the recorder's accumulator, which keeps accumulating
	// if the recorder is reused without a Reset.
	Hists *obs.SimHists
}

// MaxComputeTime returns the largest per-rank compute time.
func (r Result) MaxComputeTime() float64 {
	var m float64
	for _, c := range r.ComputeTime {
		if c > m {
			m = c
		}
	}
	return m
}

// Tracer receives the per-rank activity spans of a simulation: each
// communication operation's blocking interval and each compute interval.
// Spans are reported in completion order per rank. Implementations must
// not call back into the Sim.
type Tracer interface {
	// Span reports that rank spent [start, end] in the given operation.
	// For sends and receives, peer and bytes describe the message; for
	// compute and all-reduce spans peer is -1.
	Span(rank int, op OpKind, peer, bytes int, start, end float64)
}

// Sim is a configured simulation instance. A Sim may be run once; call
// Reset to rebind it to a (possibly different) topology and run it again
// reusing the event heap, message pools and channel tables of the previous
// run.
type Sim struct {
	topo   *simnet.Topology
	ranks  []rankState
	tracer Tracer
	obs    *obs.Recorder
	arGens []arGen

	// shards hold all hot-path state (engines, pools, channel tables,
	// counters). A serial run is shards[0] executing alone; SetShards
	// grows the slice and partitions the ranks (parallel.go). Shards are
	// pointers so the engine handlers installed at construction stay valid
	// as the slice grows.
	shards  []*shard
	nshards int // requested shard count (effective count resolved in Run)
	prun    *parRun
}

type rankState struct {
	id      int32
	prog    Program
	t       float64 // local time of last completed operation
	compute float64
	arGen   int
	done    bool

	pending Op // comm op waiting for its evComm event

	out []port // flat channel table: peers this rank sends to
	in  []port // parallel only: channels of cross-shard senders into this rank

	// Collective sub-schedule in progress: the point-to-point constituent
	// ops of an expanded collective (collops.go) and the next one to run.
	// The buffer is pooled — expansion reuses it across collectives and
	// across Reset, so steady-state collective execution is allocation-free.
	coll   []Op
	collIx int32

	// Tracing state: the communication op in progress and its start time.
	inComm  bool
	curOp   Op
	opStart float64
}

type arGen struct {
	bytes   int
	entered int
	times   []float64
	pt      float64 // parallel only: completion context, max entry pt
}

// shard owns the event engine and every piece of message-machinery state
// for a partition of the ranks. In a serial run there is exactly one shard
// holding everything; in a parallel run each shard's state is touched only
// by its own goroutine inside a window (and by the single-threaded barrier
// coordinator between windows), so no locks appear on the hot path.
type shard struct {
	sim *Sim
	id  int32
	eng des.Engine

	topo   *simnet.Topology
	par    logp.Params // snapshot of topo.Params (frozen per Topology contract); hot handlers avoid re-copying the struct
	tracer Tracer
	ranks  []rankState // shared header of Sim.ranks; shards touch only their own partition

	// Flight-recorder snapshot (Sim.SetObs): the recorder plus cached
	// feature booleans so hot-path guards are single loads, and the shard's
	// private histogram scratch and message log — merged into the recorder
	// single-threaded at assemble, so sharded recording needs no locks.
	obs         *obs.Recorder
	obsSpans    bool
	obsMsg      bool
	obsOps      bool
	hists       *obs.SimHists // points at histScratch when enabled, else nil
	histScratch obs.SimHists
	obsMsgs     []obs.MsgEvent

	// xpart maps rank → owning shard; nil in a serial run, which is the
	// hot path's "is this send cross-shard?" test. xlinks defers shared
	// interconnect reservations to the barrier (parallel + interconnect).
	xpart  []int32
	xlinks bool

	// canon selects the content-derived canonical same-time event order
	// (events.go evPri) instead of the legacy scheduling-order tiebreak.
	// Set for any run requested with SetShards(k > 1) — including ones
	// that fall back to a single shard — never for a default serial run,
	// whose event order stays bit-identical to the original closure
	// implementation (golden_test.go).
	canon bool

	// Pooled hot-path state (pool.go).
	channels []channel
	msgs     []message
	msgFree  []int32
	reqs     []recvReq
	reqFree  []int32

	running int
	sends   uint64
	recvs   uint64
	bytes   uint64

	// Parallel-run boundary buffers (parallel.go): cross-shard message
	// records, deferred link reservations and closed-form all-reduce
	// entries emitted during a window, drained by the barrier coordinator.
	xrecs   []crossRec
	linkOps []linkOp
	arEnter []arEntry
	emit    int32 // per-window emission counter ordering boundary records
}

// New creates a simulation over the given topology. Programs are assigned
// with SetProgram; ranks without a program terminate immediately.
func New(topo *simnet.Topology) *Sim {
	s := &Sim{
		topo:  topo,
		ranks: make([]rankState, topo.Ranks()),
	}
	for i := range s.ranks {
		s.ranks[i].id = int32(i)
	}
	s.shards = []*shard{s.newShard(0)}
	return s
}

// newShard constructs shard i with its handler installed and its snapshot
// fields bound to the Sim's current topology.
func (s *Sim) newShard(i int32) *shard {
	sh := &shard{sim: s, id: i}
	sh.bind()
	sh.eng.SetHandler(sh.handle)
	return sh
}

// bind refreshes a shard's per-run snapshot fields (topology, parameters,
// rank table header, tracer). Called at construction and on every Reset —
// Sim.ranks may have been reallocated for a larger rank count.
func (sh *shard) bind() {
	s := sh.sim
	sh.topo = s.topo
	sh.par = s.topo.Params
	sh.ranks = s.ranks
	sh.tracer = s.tracer
	sh.obs = s.obs
	sh.obsSpans = s.obs != nil && s.obs.Spans
	sh.obsMsg = s.obs != nil && s.obs.Messages
	sh.obsOps = s.obs != nil && s.obs.Ops
	sh.hists = nil
	if s.obs != nil && s.obs.Hist {
		sh.histScratch.Reset()
		sh.hists = &sh.histScratch
	}
	sh.xpart = nil
	sh.xlinks = false
	sh.canon = s.nshards > 1
}

// clear returns a shard's pools and counters to the pristine state while
// keeping every backing array (see Sim.Reset).
func (sh *shard) clear() {
	sh.eng.Reset()
	sh.channels = sh.channels[:0]
	sh.msgs, sh.msgFree = sh.msgs[:0], sh.msgFree[:0]
	sh.reqs, sh.reqFree = sh.reqs[:0], sh.reqFree[:0]
	sh.running, sh.sends, sh.recvs, sh.bytes = 0, 0, 0, 0
	sh.obsMsgs = sh.obsMsgs[:0]
	sh.xrecs = sh.xrecs[:0]
	sh.linkOps = sh.linkOps[:0]
	sh.arEnter = sh.arEnter[:0]
	sh.emit = 0
}

// Reset prepares the Sim for another run over the given topology,
// retaining the capacity of every internal pool — the event heap, the
// message and receive-request free lists, the channel rings and the
// per-rank tables — so that back-to-back simulations of similar size
// perform near-zero heap allocations after the first. All programs, the
// tracer and the flight recorder are cleared; a reset Sim behaves bit-identically to a freshly
// constructed one. The topology must itself be fresh or Reset (its buses
// start a new virtual time axis). The shard-count knob (SetShards)
// survives the reset, as does the capacity of every shard built for
// earlier parallel runs.
func (s *Sim) Reset(topo *simnet.Topology) {
	s.topo = topo
	n := topo.Ranks()
	if n <= cap(s.ranks) {
		s.ranks = s.ranks[:n]
	} else {
		old := s.ranks
		s.ranks = make([]rankState, n)
		copy(s.ranks, old) // carry over the allocated out tables
	}
	for i := range s.ranks {
		out := s.ranks[i].out
		in := s.ranks[i].in
		coll := s.ranks[i].coll
		s.ranks[i] = rankState{id: int32(i), out: out[:0], in: in[:0], coll: coll[:0]}
	}
	// Truncating (not clearing) keeps backing arrays; chanIndex re-claims
	// channel slots ring buffers included, and AllocSlot repopulates the
	// pools in the same order a fresh Sim would.
	s.arGens = s.arGens[:0]
	s.tracer = nil
	s.obs = nil
	for _, sh := range s.shards {
		sh.clear()
		sh.bind()
	}
}

// SetProgram assigns rank r's program.
func (s *Sim) SetProgram(r int, p Program) { s.ranks[r].prog = p }

// SetTracer installs a span tracer; pass nil to disable. A Sim with a
// tracer always executes serially: span callbacks are not synchronised
// across shard goroutines.
//
// Deprecated: pass Options{Tracer: t} to NewWithOptions or
// ResetWithOptions instead, which rejects the tracer+shards conflict at
// configuration time rather than degrading silently at Run.
func (s *Sim) SetTracer(t Tracer) { s.tracer = t }

// SetObs attaches a flight recorder (internal/obs); pass nil to disable.
// Unlike SetTracer, an attached recorder does not force serial execution:
// sharded runs record per-rank spans from the owning shards, accumulate
// histograms in per-shard scratch merged at the end, and record link and
// window events only from single-threaded barrier code, so the recording
// is deterministic for every shard count. Set the recorder's feature flags
// before Run; Reset detaches it.
//
// Deprecated: pass Options{Obs: r} to NewWithOptions or ResetWithOptions
// instead.
func (s *Sim) SetObs(r *obs.Recorder) { s.obs = r }

// Run executes the simulation to completion. It returns an error if any
// rank blocks forever (deadlock) — e.g. a receive with no matching send.
func (s *Sim) Run() (Result, error) {
	if o := s.obs; o != nil {
		o.PrepareRanks(len(s.ranks))
		if o.Links || o.Hist {
			s.topo.SetLinkTracer(o.Link)
			defer s.topo.SetLinkTracer(nil)
		}
	}
	if k := s.effectiveShards(); k > 1 {
		return s.runParallel(k)
	}
	sh := s.shards[0]
	sh.bind()
	sh.running = len(s.ranks)
	for i := range s.ranks {
		sh.advance(&s.ranks[i])
	}
	end := sh.eng.Run()
	return s.assemble(end)
}

// assemble folds the final engine clock and the per-shard counters into a
// Result and performs the deadlock check. The serial and parallel paths
// share it: every field is a sum or max over shards, so the fold is
// independent of how many shards the run used.
func (s *Sim) assemble(end float64) (Result, error) {
	// Pure-compute programs advance rank-local clocks without scheduling
	// events, so the finish time is the later of the engine clock and the
	// last rank-local completion.
	for i := range s.ranks {
		if s.ranks[i].done && s.ranks[i].t > end {
			end = s.ranks[i].t
		}
	}

	res := Result{
		Time:        end,
		RankFinish:  make([]float64, len(s.ranks)),
		ComputeTime: make([]float64, len(s.ranks)),
	}
	stuck := 0
	for _, sh := range s.shards {
		res.Sends += sh.sends
		res.Recvs += sh.recvs
		res.BytesSent += sh.bytes
		res.Events += sh.eng.EventsRun()
		stuck += sh.running
	}
	res.BusRequests, res.BusQueued, res.BusBusy, res.BusWait = s.topo.BusStats()
	res.LinkRequests, res.LinkQueued, res.LinkBusy, res.LinkWait = s.topo.LinkStats()

	if o := s.obs; o != nil {
		for _, sh := range s.shards {
			if len(sh.obsMsgs) > 0 {
				o.AddMessages(sh.obsMsgs)
			}
			if sh.hists != nil {
				o.MergeHists(sh.hists)
			}
		}
		if o.Hist {
			res.Hists = o.Hists()
		}
	}

	var blocked []int
	for i := range s.ranks {
		r := &s.ranks[i]
		if !r.done {
			blocked = append(blocked, int(r.id))
			continue
		}
		res.RankFinish[r.id] = r.t
		res.ComputeTime[r.id] = r.compute
	}
	_ = stuck
	if len(blocked) > 0 {
		sort.Ints(blocked)
		if len(blocked) > 8 {
			return res, fmt.Errorf("simmpi: deadlock, %d ranks blocked (first: %v)", len(blocked), blocked[:8])
		}
		return res, fmt.Errorf("simmpi: deadlock, ranks blocked: %v", blocked)
	}
	return res, nil
}

// advance executes r's program from the current virtual time until the rank
// blocks on a communication operation or finishes. Precondition: the
// engine's clock does not exceed r.t.
func (sh *shard) advance(r *rankState) {
	if r.inComm {
		r.inComm = false
		if sh.tracer != nil {
			peer := int(r.curOp.Peer)
			if r.curOp.Kind == OpAllReduce {
				peer = -1
			}
			sh.tracer.Span(int(r.id), r.curOp.Kind, peer, int(r.curOp.Bytes), r.opStart, r.t)
		}
		if sh.obsSpans {
			peer := r.curOp.Peer
			if r.curOp.Kind == OpAllReduce {
				peer = -1
			}
			sh.obs.RankSpan(r.id, uint8(r.curOp.Kind), peer, r.curOp.Bytes, r.opStart, r.t)
		}
	}
	for {
		var op Op
		if r.collIx < int32(len(r.coll)) {
			// Drain the constituent ops of the collective in progress.
			op = r.coll[r.collIx]
			r.collIx++
		} else {
			if r.prog == nil {
				sh.finish(r)
				return
			}
			var ok bool
			op, ok = r.prog.Next()
			if !ok {
				sh.finish(r)
				return
			}
			// Record the op pre-expansion: collective constituents are
			// re-derived deterministically on replay, so the trace stays
			// proportional to the program, not to P × collective size.
			if sh.obsOps {
				sh.obs.RankOp(r.id, uint8(op.Kind), op.Peer, op.Bytes, op.Dur)
			}
			if expandsToP2P(op) {
				r.coll = AppendCollective(r.coll[:0], op, int(r.id), len(sh.ranks))
				r.collIx = 0
				continue
			}
		}
		switch op.Kind {
		case OpCompute:
			if sh.tracer != nil && op.Dur > 0 {
				sh.tracer.Span(int(r.id), OpCompute, -1, 0, r.t, r.t+op.Dur)
			}
			if sh.obsSpans && op.Dur > 0 {
				sh.obs.RankSpan(r.id, uint8(OpCompute), -1, 0, r.t, r.t+op.Dur)
			}
			r.compute += op.Dur
			r.t += op.Dur
		case OpSend, OpRecv, OpAllReduce:
			if r.t > sh.eng.Now() {
				r.pending = op
				sh.at(r.t, evComm, r.id, r.id, r.id)
			} else {
				sh.execComm(r, op)
			}
			return
		default:
			panic(fmt.Sprintf("simmpi: unknown op kind %d", op.Kind))
		}
	}
}

func (sh *shard) finish(r *rankState) {
	r.done = true
	sh.running--
}

// resumeAt unblocks r at virtual time t ≥ now.
func (sh *shard) resumeAt(r *rankState, t float64) {
	r.t = t
	sh.at(t, evResume, r.id, r.id, r.id)
}

// resumeAtCtx is resumeAt with an explicit scheduling context, for resumes
// injected by the barrier coordinator (parallel.go).
func (sh *shard) resumeAtCtx(r *rankState, t, ctx float64) {
	r.t = t
	sh.atCtx(t, ctx, evResume, r.id, r.id, r.id)
}

// execComm performs a communication op at engine time == r.t.
func (sh *shard) execComm(r *rankState, op Op) {
	r.inComm = true
	r.curOp = op
	r.opStart = r.t
	switch op.Kind {
	case OpSend:
		sh.execSend(r, int(op.Peer), int(op.Bytes))
	case OpRecv:
		sh.execRecv(r, int(op.Peer))
	case OpAllReduce:
		sh.execAllReduce(r, int(op.Bytes))
	}
}

func (sh *shard) execAllReduce(r *rankState, bytes int) {
	if sh.xpart != nil {
		// Parallel run: the closed-form all-reduce is a global operation —
		// record the entry and let the barrier coordinator complete the
		// generation once every rank has entered (parallel.go).
		sh.arEnter = append(sh.arEnter, arEntry{t: r.t, pt: sh.eng.Now(), gen: int32(r.arGen), rank: r.id, bytes: int32(bytes)})
		r.arGen++
		return
	}
	s := sh.sim
	key := r.arGen
	for len(s.arGens) <= key {
		s.arGens = append(s.arGens, arGen{})
	}
	gen := &s.arGens[key]
	if gen.times == nil {
		gen.bytes = bytes
		gen.times = make([]float64, len(s.ranks))
	}
	if gen.bytes != bytes {
		panic(fmt.Sprintf("simmpi: mismatched all-reduce sizes %d vs %d", gen.bytes, bytes))
	}
	gen.times[r.id] = r.t
	gen.entered++
	r.arGen++
	if gen.entered < len(s.ranks) {
		return
	}
	times := gen.times
	gen.times = nil // release; the generation is complete
	done := s.allReduceTimes(times, bytes)
	for i := range sh.ranks {
		sh.resumeAt(&sh.ranks[i], done[i])
	}
}

// allReduceTimes computes per-rank completion times of a recursive-doubling
// all-reduce with a pre/post fold for non-power-of-two rank counts, charging
// each exchange the LogGP TotalComm of its path. Within each round, the
// off-node exchanges of cores sharing a node serialise through the node's
// single NIC — the behaviour the paper's closed form (equation (9)) models
// with its ×C factor. The emergent time is compared against equation (9)
// in the experiments. It reads only immutable topology state, so the
// parallel path's barrier coordinator can call it as safely as a shard.
func (s *Sim) allReduceTimes(entry []float64, bytes int) []float64 {
	p := s.topo.Params
	n := len(entry)
	t := make([]float64, n)
	copy(t, entry)
	cost := func(a, b int) float64 { return p.TotalComm(s.topo.Path(a, b), bytes) }
	// serial returns the per-node NIC serialisation factor applied to an
	// off-node exchange in a round where every core participates: the k-th
	// core of a node starts its exchange after its node-mates finish.
	nicDelay := func(r, peer int) float64 {
		if s.topo.SameNode(r, peer) {
			return 0
		}
		// Count lower-indexed ranks on the same node exchanging off-node
		// this round; they occupy the NIC first.
		var before float64
		for q := r - 1; q >= 0; q-- {
			if !s.topo.SameNode(q, r) {
				break
			}
			before++
		}
		return before * cost(r, peer)
	}

	p2 := FloorPow2(n)
	// Fold extra ranks into the power-of-two core.
	for r := p2; r < n; r++ {
		peer := r - p2
		c := max(t[r], t[peer]) + cost(r, peer)
		t[peer] = c
	}
	// Recursive doubling among the core.
	next := make([]float64, n)
	for d := 1; d < p2; d <<= 1 {
		copy(next, t)
		for r := 0; r < p2; r++ {
			peer := r ^ d
			next[r] = max(t[r], t[peer]) + cost(r, peer) + nicDelay(r, peer)
		}
		t, next = next, t
	}
	// Broadcast the result back to the folded ranks.
	for r := p2; r < n; r++ {
		peer := r - p2
		t[r] = t[peer] + cost(peer, r)
	}
	return t
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
