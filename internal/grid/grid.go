// Package grid provides the 3-D data grid and 2-D processor decomposition
// used by pipelined wavefront computations.
//
// A wavefront computation operates on a three dimensional discretized grid
// of Nx × Ny × Nz data cells. The grid is partitioned and mapped onto a
// two-dimensional m × n array of processors so that each processor owns a
// stack of data cells of size Nx/n × Ny/m × Nz (paper Figure 1(a)). A
// processor is indexed (i, j) where i ∈ [1, n] is the column and j ∈ [1, m]
// is the row, matching the paper's notation.
package grid

import (
	"fmt"
	"math"
)

// Grid describes a 3-D discretized data grid.
type Grid struct {
	Nx, Ny, Nz int
}

// NewGrid returns a grid with the given dimensions. It panics if any
// dimension is non-positive; grids are validated at construction so that
// downstream model code can assume well-formed inputs.
func NewGrid(nx, ny, nz int) Grid {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%dx%d", nx, ny, nz))
	}
	return Grid{Nx: nx, Ny: ny, Nz: nz}
}

// Cells returns the total number of data cells Nx × Ny × Nz.
func (g Grid) Cells() int64 {
	return int64(g.Nx) * int64(g.Ny) * int64(g.Nz)
}

// Cube returns the cubic grid with edge length e (e.g. Cube(240) is the
// Chimaera 240³ benchmark problem).
func Cube(e int) Grid { return NewGrid(e, e, e) }

// String implements fmt.Stringer.
func (g Grid) String() string { return fmt.Sprintf("%dx%dx%d", g.Nx, g.Ny, g.Nz) }

// Decomposition is a 2-D partition of a Grid over an n × m processor array.
// n is the number of processor columns (x direction) and m the number of
// rows (y direction). The total processor count is P = n × m.
type Decomposition struct {
	Grid Grid
	N    int // processor columns (paper's n)
	M    int // processor rows (paper's m)
}

// NewDecomposition maps g onto an n-column × m-row processor array.
func NewDecomposition(g Grid, n, m int) (Decomposition, error) {
	if n <= 0 || m <= 0 {
		return Decomposition{}, fmt.Errorf("grid: invalid processor array %dx%d", n, m)
	}
	return Decomposition{Grid: g, N: n, M: m}, nil
}

// MustDecompose is NewDecomposition but panics on error; it is intended for
// tests and experiment drivers with known-good inputs.
func MustDecompose(g Grid, n, m int) Decomposition {
	d, err := NewDecomposition(g, n, m)
	if err != nil {
		panic(err)
	}
	return d
}

// SquareDecomposition maps g onto the most-square n × m array with
// n × m = p, preferring n ≥ m. It returns an error if p has no
// factorization with aspect ratio at most 2:1 other than trivial ones and
// p is prime and > 3 (a degenerate 1 × p pipeline is almost never what a
// wavefront user wants; callers that do want it can use NewDecomposition).
func SquareDecomposition(g Grid, p int) (Decomposition, error) {
	if p <= 0 {
		return Decomposition{}, fmt.Errorf("grid: invalid processor count %d", p)
	}
	bestN, bestM := p, 1
	for m := 1; m*m <= p; m++ {
		if p%m == 0 {
			bestM = m
			bestN = p / m
		}
	}
	return NewDecomposition(g, bestN, bestM)
}

// P returns the total number of processors n × m.
func (d Decomposition) P() int { return d.N * d.M }

// CellsPerRankX returns Nx/n, the x-extent of each processor's stack. The
// paper assumes even divisibility; when the division is uneven we round up
// (the critical-path processor owns the larger share).
func (d Decomposition) CellsPerRankX() int { return ceilDiv(d.Grid.Nx, d.N) }

// CellsPerRankY returns Ny/m, the y-extent of each processor's stack.
func (d Decomposition) CellsPerRankY() int { return ceilDiv(d.Grid.Ny, d.M) }

// CellsPerTile returns the number of cells in one tile of height h:
// h × Nx/n × Ny/m.
func (d Decomposition) CellsPerTile(h int) float64 {
	return float64(h) * float64(d.CellsPerRankX()) * float64(d.CellsPerRankY())
}

// TilesPerStack returns Nz/Htile, the number of tiles each processor
// processes during one sweep.
func (d Decomposition) TilesPerStack(htile int) int {
	if htile <= 0 {
		panic("grid: non-positive tile height")
	}
	return ceilDiv(d.Grid.Nz, htile)
}

// Coord is a processor coordinate in the paper's (i, j) 1-based indexing:
// I is the column in [1, n], J is the row in [1, m].
type Coord struct {
	I, J int
}

// Rank converts a coordinate to a 0-based linear rank in row-major order.
func (d Decomposition) Rank(c Coord) int {
	return (c.J-1)*d.N + (c.I - 1)
}

// CoordOf converts a 0-based linear rank back to a coordinate.
func (d Decomposition) CoordOf(rank int) Coord {
	return Coord{I: rank%d.N + 1, J: rank/d.N + 1}
}

// Contains reports whether c is inside the processor array.
func (d Decomposition) Contains(c Coord) bool {
	return c.I >= 1 && c.I <= d.N && c.J >= 1 && c.J <= d.M
}

// Corner identifies one of the four corners of the 2-D processor array; a
// sweep originates at a corner (paper Figure 2).
type Corner int

// The four sweep origins. Directions are named after the corner coordinate
// in the (i, j) grid: NW is (1,1), NE is (n,1), SW is (1,m), SE is (n,m).
const (
	NW Corner = iota // origin (1,1): sweep travels +i, +j
	NE               // origin (n,1): sweep travels -i, +j
	SW               // origin (1,m): sweep travels +i, -j
	SE               // origin (n,m): sweep travels -i, -j
)

var cornerNames = [...]string{"NW", "NE", "SW", "SE"}

// String implements fmt.Stringer.
func (c Corner) String() string {
	if c < 0 || int(c) >= len(cornerNames) {
		return fmt.Sprintf("Corner(%d)", int(c))
	}
	return cornerNames[c]
}

// Origin returns the coordinate of the corner processor where a sweep from
// corner c begins.
func (d Decomposition) Origin(c Corner) Coord {
	switch c {
	case NW:
		return Coord{1, 1}
	case NE:
		return Coord{d.N, 1}
	case SW:
		return Coord{1, d.M}
	case SE:
		return Coord{d.N, d.M}
	}
	panic(fmt.Sprintf("grid: invalid corner %d", int(c)))
}

// Opposite returns the corner diagonally opposite c; a sweep originating at
// c fully completes when the processor at Opposite(c) finishes its stack.
func (c Corner) Opposite() Corner {
	switch c {
	case NW:
		return SE
	case NE:
		return SW
	case SW:
		return NE
	case SE:
		return NW
	}
	panic(fmt.Sprintf("grid: invalid corner %d", int(c)))
}

// DiagonalNeighbor returns, for a sweep originating at c, the "second corner
// processor on the main diagonal of the wavefronts" (paper Section 4.1):
// the corner adjacent to the origin in the column direction. For the NW
// origin this is (1, m) per equation (r3a).
func (c Corner) DiagonalNeighbor() Corner {
	switch c {
	case NW:
		return SW
	case NE:
		return SE
	case SW:
		return NW
	case SE:
		return NE
	}
	panic(fmt.Sprintf("grid: invalid corner %d", int(c)))
}

// Step returns the unit step (di, dj) a sweep from corner c takes across the
// processor array.
func (c Corner) Step() (di, dj int) {
	switch c {
	case NW:
		return 1, 1
	case NE:
		return -1, 1
	case SW:
		return 1, -1
	case SE:
		return -1, -1
	}
	panic(fmt.Sprintf("grid: invalid corner %d", int(c)))
}

// Upstream returns the coordinates of the up-to-two processors that send
// boundary data to p during a sweep from corner c, in (west-like, north-like)
// order relative to the sweep direction. Coordinates outside the array are
// omitted.
func (d Decomposition) Upstream(c Corner, p Coord) []Coord {
	di, dj := c.Step()
	var out []Coord
	if w := (Coord{p.I - di, p.J}); d.Contains(w) {
		out = append(out, w)
	}
	if n := (Coord{p.I, p.J - dj}); d.Contains(n) {
		out = append(out, n)
	}
	return out
}

// Downstream returns the coordinates of the up-to-two processors that p
// sends boundary data to during a sweep from corner c, in (east-like,
// south-like) order.
func (d Decomposition) Downstream(c Corner, p Coord) []Coord {
	di, dj := c.Step()
	var out []Coord
	if e := (Coord{p.I + di, p.J}); d.Contains(e) {
		out = append(out, e)
	}
	if s := (Coord{p.I, p.J + dj}); d.Contains(s) {
		out = append(out, s)
	}
	return out
}

// WavefrontIndex returns the 0-based diagonal index of processor p for a
// sweep from corner c: processors with equal index compute the same tile
// position at the same time in an ideal pipeline.
func (d Decomposition) WavefrontIndex(c Corner, p Coord) int {
	o := d.Origin(c)
	return abs(p.I-o.I) + abs(p.J-o.J)
}

// Diagonals returns the number of distinct wavefront diagonals, n + m - 1.
func (d Decomposition) Diagonals() int { return d.N + d.M - 1 }

// PipelineDepth returns the number of pipeline stages a full sweep takes:
// the number of diagonals plus the tiles per stack minus one.
func (d Decomposition) PipelineDepth(htile int) int {
	return d.Diagonals() + d.TilesPerStack(htile) - 1
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// NearlySquare reports whether the decomposition aspect ratio is within
// [1/2, 2]; the paper's production configurations are all nearly square.
func (d Decomposition) NearlySquare() bool {
	r := float64(d.N) / float64(d.M)
	return r >= 0.5 && r <= 2.0
}

// BalanceError returns the relative load imbalance caused by uneven
// division of Nx by n or Ny by m: 0 means perfectly balanced.
func (d Decomposition) BalanceError() float64 {
	ex := float64(d.CellsPerRankX()*d.N-d.Grid.Nx) / float64(d.Grid.Nx)
	ey := float64(d.CellsPerRankY()*d.M-d.Grid.Ny) / float64(d.Grid.Ny)
	return math.Max(ex, ey)
}
