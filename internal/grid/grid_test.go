package grid

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewGridPanicsOnInvalid(t *testing.T) {
	for _, dims := range [][3]int{{0, 1, 1}, {1, -1, 1}, {1, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGrid(%v) did not panic", dims)
				}
			}()
			NewGrid(dims[0], dims[1], dims[2])
		}()
	}
}

func TestGridCells(t *testing.T) {
	g := NewGrid(240, 240, 240)
	if got, want := g.Cells(), int64(240*240*240); got != want {
		t.Errorf("Cells() = %d, want %d", got, want)
	}
	if Cube(240) != g {
		t.Errorf("Cube(240) = %v, want %v", Cube(240), g)
	}
}

func TestGridString(t *testing.T) {
	if got := NewGrid(4, 5, 6).String(); got != "4x5x6" {
		t.Errorf("String() = %q", got)
	}
}

func TestNewDecompositionErrors(t *testing.T) {
	g := Cube(8)
	if _, err := NewDecomposition(g, 0, 2); err == nil {
		t.Error("expected error for zero columns")
	}
	if _, err := NewDecomposition(g, 2, -1); err == nil {
		t.Error("expected error for negative rows")
	}
}

func TestSquareDecomposition(t *testing.T) {
	g := Cube(64)
	for _, tc := range []struct {
		p, n, m int
	}{
		{1, 1, 1},
		{4, 2, 2},
		{8, 4, 2},
		{64, 8, 8},
		{128, 16, 8},
		{8192, 128, 64},
		{131072, 512, 256},
	} {
		d, err := SquareDecomposition(g, tc.p)
		if err != nil {
			t.Fatalf("SquareDecomposition(%d): %v", tc.p, err)
		}
		if d.N != tc.n || d.M != tc.m {
			t.Errorf("SquareDecomposition(%d) = %dx%d, want %dx%d", tc.p, d.N, d.M, tc.n, tc.m)
		}
		if d.P() != tc.p {
			t.Errorf("P() = %d, want %d", d.P(), tc.p)
		}
	}
	if _, err := SquareDecomposition(g, 0); err == nil {
		t.Error("expected error for p=0")
	}
}

func TestCellsPerRank(t *testing.T) {
	d := MustDecompose(NewGrid(100, 90, 50), 8, 3)
	if got := d.CellsPerRankX(); got != 13 { // ceil(100/8)
		t.Errorf("CellsPerRankX = %d, want 13", got)
	}
	if got := d.CellsPerRankY(); got != 30 {
		t.Errorf("CellsPerRankY = %d, want 30", got)
	}
	if got := d.CellsPerTile(2); got != 2*13*30 {
		t.Errorf("CellsPerTile(2) = %v, want %v", got, 2*13*30)
	}
	if got := d.TilesPerStack(4); got != 13 { // ceil(50/4)
		t.Errorf("TilesPerStack(4) = %d, want 13", got)
	}
}

func TestTilesPerStackPanicsOnZeroHeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustDecompose(Cube(8), 2, 2).TilesPerStack(0)
}

func TestRankCoordRoundTrip(t *testing.T) {
	d := MustDecompose(Cube(32), 7, 5)
	seen := map[int]bool{}
	for j := 1; j <= d.M; j++ {
		for i := 1; i <= d.N; i++ {
			c := Coord{I: i, J: j}
			r := d.Rank(c)
			if r < 0 || r >= d.P() {
				t.Fatalf("Rank(%v) = %d out of range", c, r)
			}
			if seen[r] {
				t.Fatalf("Rank(%v) = %d duplicates another coordinate", c, r)
			}
			seen[r] = true
			if got := d.CoordOf(r); got != c {
				t.Fatalf("CoordOf(Rank(%v)) = %v", c, got)
			}
		}
	}
}

func TestRankCoordRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Intn(20) + 1)
			vals[1] = reflect.ValueOf(r.Intn(20) + 1)
			vals[2] = reflect.ValueOf(r.Intn(400))
		},
	}
	prop := func(n, m, rank int) bool {
		d := MustDecompose(Cube(8), n, m)
		rank %= d.P()
		return d.Rank(d.CoordOf(rank)) == rank
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestCornerOriginAndOpposite(t *testing.T) {
	d := MustDecompose(Cube(16), 4, 3)
	cases := []struct {
		c        Corner
		origin   Coord
		opposite Corner
		diagNb   Corner
	}{
		{NW, Coord{1, 1}, SE, SW},
		{NE, Coord{4, 1}, SW, SE},
		{SW, Coord{1, 3}, NE, NW},
		{SE, Coord{4, 3}, NW, NE},
	}
	for _, tc := range cases {
		if got := d.Origin(tc.c); got != tc.origin {
			t.Errorf("Origin(%v) = %v, want %v", tc.c, got, tc.origin)
		}
		if got := tc.c.Opposite(); got != tc.opposite {
			t.Errorf("Opposite(%v) = %v, want %v", tc.c, got, tc.opposite)
		}
		if got := tc.c.DiagonalNeighbor(); got != tc.diagNb {
			t.Errorf("DiagonalNeighbor(%v) = %v, want %v", tc.c, got, tc.diagNb)
		}
	}
}

func TestOppositeIsInvolution(t *testing.T) {
	for _, c := range []Corner{NW, NE, SW, SE} {
		if c.Opposite().Opposite() != c {
			t.Errorf("Opposite is not an involution for %v", c)
		}
	}
}

func TestUpstreamDownstream(t *testing.T) {
	d := MustDecompose(Cube(16), 3, 3)
	// Origin has no upstream, two downstream.
	if got := d.Upstream(NW, Coord{1, 1}); len(got) != 0 {
		t.Errorf("Upstream at origin = %v, want empty", got)
	}
	if got := d.Downstream(NW, Coord{1, 1}); len(got) != 2 {
		t.Errorf("Downstream at origin = %v, want 2", got)
	}
	// Terminal corner has two upstream, no downstream.
	if got := d.Upstream(NW, Coord{3, 3}); len(got) != 2 {
		t.Errorf("Upstream at terminal = %v, want 2", got)
	}
	if got := d.Downstream(NW, Coord{3, 3}); len(got) != 0 {
		t.Errorf("Downstream at terminal = %v, want none", got)
	}
	// Interior has both.
	up := d.Upstream(SE, Coord{2, 2})
	if len(up) != 2 || up[0] != (Coord{3, 2}) || up[1] != (Coord{2, 3}) {
		t.Errorf("Upstream(SE, 2,2) = %v", up)
	}
}

func TestUpstreamDownstreamSymmetry(t *testing.T) {
	// q is downstream of p iff p is upstream of q, for every corner.
	d := MustDecompose(Cube(8), 4, 5)
	for _, c := range []Corner{NW, NE, SW, SE} {
		for r := 0; r < d.P(); r++ {
			p := d.CoordOf(r)
			for _, q := range d.Downstream(c, p) {
				found := false
				for _, b := range d.Upstream(c, q) {
					if b == p {
						found = true
					}
				}
				if !found {
					t.Fatalf("corner %v: %v downstream of %v but not symmetric", c, q, p)
				}
			}
		}
	}
}

func TestWavefrontIndex(t *testing.T) {
	d := MustDecompose(Cube(16), 4, 3)
	if got := d.WavefrontIndex(NW, Coord{1, 1}); got != 0 {
		t.Errorf("index at origin = %d", got)
	}
	if got := d.WavefrontIndex(NW, Coord{4, 3}); got != 5 {
		t.Errorf("index at terminal = %d, want 5", got)
	}
	if got := d.WavefrontIndex(SE, Coord{4, 3}); got != 0 {
		t.Errorf("SE origin index = %d", got)
	}
	if got := d.Diagonals(); got != 6 {
		t.Errorf("Diagonals = %d, want 6", got)
	}
}

func TestWavefrontIndexIncreasesDownstream(t *testing.T) {
	d := MustDecompose(Cube(8), 5, 4)
	for _, c := range []Corner{NW, NE, SW, SE} {
		for r := 0; r < d.P(); r++ {
			p := d.CoordOf(r)
			for _, q := range d.Downstream(c, p) {
				if d.WavefrontIndex(c, q) != d.WavefrontIndex(c, p)+1 {
					t.Fatalf("corner %v: index not incremented from %v to %v", c, p, q)
				}
			}
		}
	}
}

func TestPipelineDepth(t *testing.T) {
	d := MustDecompose(NewGrid(32, 32, 40), 4, 4)
	if got := d.PipelineDepth(4); got != (4+4-1)+(10-1) {
		t.Errorf("PipelineDepth = %d", got)
	}
}

func TestNearlySquareAndBalance(t *testing.T) {
	if !MustDecompose(Cube(64), 8, 8).NearlySquare() {
		t.Error("8x8 should be nearly square")
	}
	if MustDecompose(Cube(64), 64, 1).NearlySquare() {
		t.Error("64x1 should not be nearly square")
	}
	if got := MustDecompose(Cube(64), 8, 8).BalanceError(); got != 0 {
		t.Errorf("BalanceError = %v for even division", got)
	}
	if got := MustDecompose(NewGrid(10, 10, 10), 3, 3).BalanceError(); got <= 0 {
		t.Errorf("BalanceError = %v for uneven division, want > 0", got)
	}
}

func TestContains(t *testing.T) {
	d := MustDecompose(Cube(8), 3, 2)
	for _, tc := range []struct {
		c  Coord
		in bool
	}{
		{Coord{1, 1}, true}, {Coord{3, 2}, true},
		{Coord{0, 1}, false}, {Coord{4, 1}, false}, {Coord{1, 3}, false}, {Coord{2, 0}, false},
	} {
		if got := d.Contains(tc.c); got != tc.in {
			t.Errorf("Contains(%v) = %v", tc.c, got)
		}
	}
}

func TestCornerStringAndStep(t *testing.T) {
	names := map[Corner]string{NW: "NW", NE: "NE", SW: "SW", SE: "SE"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("String(%d) = %q", int(c), c.String())
		}
	}
	di, dj := SE.Step()
	if di != -1 || dj != -1 {
		t.Errorf("SE.Step() = %d,%d", di, dj)
	}
	di, dj = NW.Step()
	if di != 1 || dj != 1 {
		t.Errorf("NW.Step() = %d,%d", di, dj)
	}
}
