// Package core implements the paper's primary contribution: the
// plug-and-play re-usable LogGP performance model for MPI-based pipelined
// wavefront computations (paper Section 4, Tables 5 and 6).
//
// A wavefront application is specified by a small set of input parameters
// (Table 3): the problem grid, the per-cell computation times Wg and
// Wg,pre, the tile height Htile, the sweep-structure parameters nsweeps,
// nfull and ndiag, the boundary message sizes, and the inter-iteration
// operation Tnonwavefront. Given those inputs plus a machine description,
// Evaluate predicts the execution time of the application on any number of
// processors — including multi-core nodes with shared-bus contention — via
// equations (r1a)–(r5) and the Table 6 extensions.
//
// All model times are in microseconds.
package core

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/logp"
	"repro/internal/machine"
)

// Env carries the evaluation context into application callbacks such as
// NonWavefront.
type Env struct {
	Machine machine.Machine
	Dec     grid.Decomposition
	Htile   int
}

// P returns the total processor (core) count of the evaluation.
func (e Env) P() int { return e.Dec.P() }

// App is the plug-and-play model's application parameter set (paper
// Table 3). The sweep-structure parameters may be given directly
// (NSweeps/NFull/NDiag) or derived from a sweep corner sequence with
// FromCorners.
type App struct {
	Name string

	// Grid is the problem size Nx × Ny × Nz.
	Grid grid.Grid

	// WgPre is the computation time per grid point performed before the
	// boundary receives (zero for codes without pre-calculation), and Wg
	// the computation time per grid point for all angles after the
	// receives, both in µs.
	WgPre, Wg float64

	// Htile is the tile height in cells. For Sweep3D this is the effective
	// height mk × mmi/mmo (Section 4.1).
	Htile int

	// NSweeps, NFull and NDiag are the sweep-structure parameters: the
	// number of sweeps per iteration, the number that must fully complete
	// before the next sweep (or iteration end), and the number that must
	// complete at the second corner processor on the wavefront diagonal.
	NSweeps, NFull, NDiag int

	// EWBytes and NSBytes return the east-west and north-south boundary
	// message sizes in bytes for a given decomposition and tile height.
	EWBytes func(dec grid.Decomposition, htile int) int
	NSBytes func(dec grid.Decomposition, htile int) int

	// NonWavefront returns Tnonwavefront, the per-iteration time of the
	// operations between iterations (all-reduce, stencil, ...), in µs.
	// A nil NonWavefront contributes zero.
	NonWavefront func(e Env) float64

	// Iterations is the number of wavefront iterations per time step.
	Iterations int
}

// Validate reports parameter errors.
func (a App) Validate() error {
	switch {
	case a.Grid.Nx <= 0 || a.Grid.Ny <= 0 || a.Grid.Nz <= 0:
		return fmt.Errorf("core: app %q has invalid grid %v", a.Name, a.Grid)
	case a.Wg < 0 || a.WgPre < 0:
		return fmt.Errorf("core: app %q has negative per-cell work", a.Name)
	case a.Htile <= 0:
		return fmt.Errorf("core: app %q has invalid Htile %d", a.Name, a.Htile)
	case a.NSweeps <= 0:
		return fmt.Errorf("core: app %q has invalid nsweeps %d", a.Name, a.NSweeps)
	case a.NFull < 0 || a.NDiag < 0 || a.NFull+a.NDiag > 2*a.NSweeps:
		return fmt.Errorf("core: app %q has inconsistent nfull=%d ndiag=%d", a.Name, a.NFull, a.NDiag)
	case a.EWBytes == nil || a.NSBytes == nil:
		return fmt.Errorf("core: app %q is missing message size functions", a.Name)
	case a.Iterations <= 0:
		return fmt.Errorf("core: app %q has invalid iteration count %d", a.Name, a.Iterations)
	}
	return nil
}

// WithHtile returns a copy of the app with a different tile height
// (Section 5.1's application-design parameter).
func (a App) WithHtile(h int) App {
	a.Htile = h
	return a
}

// WithSweepStructure returns a copy of the app with a different sweep
// precedence structure (Section 5.5's sweep re-design evaluation).
func (a App) WithSweepStructure(nsweeps, nfull, ndiag int) App {
	a.NSweeps, a.NFull, a.NDiag = nsweeps, nfull, ndiag
	return a
}

// FromCorners fills the sweep-structure parameters from a sweep origin
// corner sequence, using the transition classification that the simulator's
// emergent behaviour follows (see internal/wavefront).
func (a App) FromCorners(corners []grid.Corner) App {
	a.NSweeps = len(corners)
	a.NFull, a.NDiag = 0, 0
	for k := 0; k+1 < len(corners); k++ {
		switch {
		case corners[k+1] == corners[k]:
		case corners[k+1] == corners[k].Opposite():
			a.NFull++
		default:
			a.NDiag++
		}
	}
	a.NFull++ // final sweep completes fully before the iteration ends
	return a
}

// Options control model variants for ablation studies.
type Options struct {
	// SyncTerms adds the handshake back-propagation synchronization terms
	// of the previous SP/2 model ((m−1)L on the diagonal fill and
	// (m−1)L + (n−2)L on the full fill; paper Section 4.2 notes these are
	// negligible on the XT4 and omits them).
	SyncTerms bool
	// NoContention disables the Table 6 shared-bus contention terms.
	NoContention bool
	// ForceOffNode evaluates all communication with the off-node model
	// even on multi-core nodes (the Section 4.2 one-core-per-node model).
	ForceOffNode bool
}

// Report is the model's output for one configuration.
type Report struct {
	App     string
	Machine string
	P       int // total cores
	N, M    int // processor array shape

	// Per-iteration components, µs.
	W, WPre            float64 // per-tile work (r1b, r1a)
	TDiagFill          float64 // equation (r3a)
	TFullFill          float64 // equation (r3b)
	TStack             float64 // equation (r4)
	TNonWavefront      float64
	TimePerIteration   float64 // equation (r5)
	FillTimePerIter    float64 // ndiag·Tdiagfill + nfull·Tfullfill
	ComputePerIter     float64 // computation component of the critical path
	CommPerIter        float64 // communication component (TimePerIteration − ComputePerIter)
	MsgBytesEW, MsgNSz int

	// Totals over all iterations, µs.
	Total float64
}

// TotalSeconds returns the total runtime in seconds.
func (r Report) TotalSeconds() float64 { return r.Total / 1e6 }

// TotalDays returns the total runtime in days.
func (r Report) TotalDays() float64 { return r.Total / 1e6 / 86400 }

// Scale multiplies the total runtime (e.g. by time steps × energy groups)
// and returns the scaled report.
func (r Report) Scale(factor float64) Report {
	r.Total *= factor
	return r
}

// Model couples an application with a machine for evaluation.
type Model struct {
	App     App
	Machine machine.Machine
	Opts    Options
}

// New returns a model of app on mach with default options.
func New(app App, mach machine.Machine) *Model {
	return &Model{App: app, Machine: mach}
}

// Evaluate predicts the application's runtime on an n × m processor array.
func (mo *Model) Evaluate(dec grid.Decomposition) (Report, error) {
	if err := mo.App.Validate(); err != nil {
		return Report{}, err
	}
	if err := mo.Machine.Validate(); err != nil {
		return Report{}, err
	}
	if dec.Grid != mo.App.Grid {
		return Report{}, fmt.Errorf("core: decomposition grid %v does not match app grid %v",
			dec.Grid, mo.App.Grid)
	}
	full := mo.evaluate(dec, mo.Machine.Params, mo.Opts)

	// The computation component of the critical path is the model with all
	// communication costs zeroed; the communication component is the rest
	// (paper Figure 11's breakdown).
	comp := mo.evaluate(dec, logp.Params{Name: "zero-comm"}, Options{NoContention: true})
	full.ComputePerIter = comp.TimePerIteration
	full.CommPerIter = full.TimePerIteration - comp.TimePerIteration
	return full, nil
}

// EvaluateP predicts runtime on p cores using the most-square decomposition.
func (mo *Model) EvaluateP(p int) (Report, error) {
	dec, err := grid.SquareDecomposition(mo.App.Grid, p)
	if err != nil {
		return Report{}, err
	}
	return mo.Evaluate(dec)
}

// edge identifies one of the four per-tile communication operations of the
// steady-state pipeline (equation r4).
type edge int

const (
	edgeRecvW edge = iota
	edgeRecvN
	edgeSendE
	edgeSendS
)

func (mo *Model) evaluate(dec grid.Decomposition, prm logp.Params, opts Options) Report {
	app := mo.App
	mach := mo.Machine
	n, m := dec.N, dec.M

	w := app.Wg * dec.CellsPerTile(app.Htile)       // (r1b)
	wpre := app.WgPre * dec.CellsPerTile(app.Htile) // (r1a)
	sEW := app.EWBytes(dec, app.Htile)
	sNS := app.NSBytes(dec, app.Htile)

	// pathE reports whether the east-going message into column i (from
	// i−1) is on-chip; pathS likewise for the south-going message into
	// row j. Placement follows Table 6: each node's cores form a Cx × Cy
	// rectangle of the logical grid.
	onChipE := func(i int) bool {
		if opts.ForceOffNode || mach.Cx == 1 {
			return false
		}
		return (i-1)%mach.Cx != 0 // i and i−1 in the same Cx block
	}
	onChipS := func(j int) bool {
		if opts.ForceOffNode || mach.Cy == 1 {
			return false
		}
		return (j-1)%mach.Cy != 0
	}
	path := func(onChip bool) logp.Path {
		if onChip {
			return logp.OnChip
		}
		return logp.OffNode
	}

	// StartP recurrence (r2a, r2b) over the canonical sweep from (1,1).
	// Row-major dynamic program; only the previous row is retained.
	prev := make([]float64, n+1) // StartP(·, j−1)
	cur := make([]float64, n+1)
	var tDiag, tFull float64
	for j := 1; j <= m; j++ {
		for i := 1; i <= n; i++ {
			if i == 1 && j == 1 {
				cur[i] = wpre // (r2a)
				continue
			}
			// First term of (r2b): the west message arrives last. The
			// north message preceded it but is received after it (blocking
			// receives in west-then-north order), so its Receive cost is
			// exposed — only where a north neighbour exists.
			west := math.Inf(-1)
			if i > 1 {
				t := cur[i-1] + w + prm.TotalComm(path(onChipE(i)), sEW)
				if j > 1 {
					t += prm.Receive(path(onChipS(j)), sNS)
				}
				west = t
			}
			// Second term of (r2b): the north message arrives last;
			// processor (i,j−1) sent east before sending south, exposing
			// its SendE cost — only where an east neighbour exists.
			north := math.Inf(-1)
			if j > 1 {
				t := prev[i] + w + prm.TotalComm(path(onChipS(j)), sNS)
				if i < n {
					t += prm.Send(path(onChipE(i+1)), sEW)
				}
				north = t
			}
			cur[i] = math.Max(west, north)
		}
		if j == m {
			tDiag = cur[1] // StartP(1,m), equation (r3a)
			tFull = cur[n] // StartP(n,m), equation (r3b)
		}
		prev, cur = cur, prev
	}
	if m == 1 {
		// Degenerate single-row array: the "diagonal corner" is the origin.
		tDiag = wpre
	}

	if opts.SyncTerms {
		// Handshake back-propagation terms of the previous SP/2 model
		// (Table 4 equations s3, s4).
		tDiag += float64(m-1) * prm.L
		tFull += float64(m-1)*prm.L + float64(n-2)*prm.L
	}

	// Steady-state stack processing (r4): all communication off-node, plus
	// Table 6 contention. The east-west (north-south) operations exist
	// only when the processor array has more than one column (row); with
	// both dimensions > 1 every processor is charged all four operations
	// because the blocking sends and receives rate-match the pipeline
	// (paper Section 4.2).
	tiles := float64(dec.TilesPerStack(app.Htile))
	perTile := w + wpre
	if n > 1 {
		perTile += prm.ReceiveOffNode(sEW) + prm.SendOffNode(sEW)
	}
	if m > 1 {
		perTile += prm.ReceiveOffNode(sNS) + prm.SendOffNode(sNS)
	}
	if !opts.NoContention && n > 1 && m > 1 {
		perTile += mo.contention(prm, mach, sEW, sNS)
	}
	tStack := perTile*tiles - wpre

	var tNon float64
	if app.NonWavefront != nil {
		tNon = app.NonWavefront(Env{Machine: mach, Dec: dec, Htile: app.Htile})
	}

	perIter := float64(app.NDiag)*tDiag + float64(app.NFull)*tFull +
		float64(app.NSweeps)*tStack + tNon // (r5)

	return Report{
		App:              app.Name,
		Machine:          mach.Name,
		P:                dec.P(),
		N:                n,
		M:                m,
		W:                w,
		WPre:             wpre,
		TDiagFill:        tDiag,
		TFullFill:        tFull,
		TStack:           tStack,
		TNonWavefront:    tNon,
		TimePerIteration: perIter,
		FillTimePerIter:  float64(app.NDiag)*tDiag + float64(app.NFull)*tFull,
		MsgBytesEW:       sEW,
		MsgNSz:           sNS,
		Total:            perIter * float64(app.Iterations),
	}
}

// contention returns the total Table 6 interference added to the four
// per-tile communication operations: I = odma + size × Gdma per
// interfering DMA on the shared bus.
//
//	1 core per bus:   none
//	2 cores per bus:  I on ReceiveN and SendS (or the EW pair for a 2×1
//	                  core rectangle)
//	c ≥ 4 cores:      (c/4) × I on each Send and Receive
func (mo *Model) contention(prm logp.Params, mach machine.Machine, sEW, sNS int) float64 {
	c := mach.CoresPerBus()
	iOf := func(size int) float64 { return prm.Odma() + float64(size)*prm.Gdma }
	switch {
	case c <= 1:
		return 0
	case c == 2:
		if mach.Cx == 2 {
			return 2 * iOf(sEW)
		}
		return 2 * iOf(sNS)
	default:
		mult := float64(c) / 4
		return mult * 2 * (iOf(sEW) + iOf(sNS))
	}
}

// AllReduceNonWavefront returns a NonWavefront callback performing count
// 8-byte all-reduces (Sweep3D: 2, Chimaera: 1; paper Table 3).
func AllReduceNonWavefront(count int) func(Env) float64 {
	return func(e Env) float64 {
		return float64(count) * e.Machine.Params.AllReduceDouble(e.P(), e.Machine.CoresPerNode)
	}
}

// StencilNonWavefront returns a NonWavefront callback modelling LU's
// four-point stencil between iterations: each rank exchanges one boundary
// message with up to four neighbours and computes wgStencil per local cell.
// The model is a sum of simple terms with the same level of abstraction as
// the all-reduce model (paper Section 4.1).
func StencilNonWavefront(wgStencil float64, bytesPerCell int) func(Env) float64 {
	return func(e Env) float64 {
		prm := e.Machine.Params
		ew := bytesPerCell * e.Dec.CellsPerRankY() * e.Dec.Grid.Nz
		ns := bytesPerCell * e.Dec.CellsPerRankX() * e.Dec.Grid.Nz
		comm := 2*prm.TotalCommOffNode(ew) + 2*prm.TotalCommOffNode(ns)
		comp := wgStencil * float64(e.Dec.CellsPerRankX()) * float64(e.Dec.CellsPerRankY()) * float64(e.Dec.Grid.Nz)
		return comm + comp
	}
}
