package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/logp"
	"repro/internal/machine"
	"repro/internal/wavefront"
)

// testApp returns a transport-like app with simple parameters.
func testApp(g grid.Grid, htile int) App {
	return App{
		Name:  "test",
		Grid:  g,
		Wg:    0.7,
		WgPre: 0,
		Htile: htile,
		EWBytes: func(dec grid.Decomposition, h int) int {
			return 8 * h * 6 * dec.CellsPerRankY()
		},
		NSBytes: func(dec grid.Decomposition, h int) int {
			return 8 * h * 6 * dec.CellsPerRankX()
		},
		NonWavefront: AllReduceNonWavefront(2),
		Iterations:   1,
	}.FromCorners(wavefront.Sweep3DCorners())
}

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestValidate(t *testing.T) {
	app := testApp(grid.Cube(32), 2)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := app
	bad.Grid = grid.Grid{}
	if bad.Validate() == nil {
		t.Error("invalid grid accepted")
	}
	bad = app
	bad.Htile = 0
	if bad.Validate() == nil {
		t.Error("zero Htile accepted")
	}
	bad = app
	bad.NSweeps = 0
	if bad.Validate() == nil {
		t.Error("zero sweeps accepted")
	}
	bad = app
	bad.EWBytes = nil
	if bad.Validate() == nil {
		t.Error("missing message size function accepted")
	}
	bad = app
	bad.Wg = -1
	if bad.Validate() == nil {
		t.Error("negative Wg accepted")
	}
	bad = app
	bad.Iterations = 0
	if bad.Validate() == nil {
		t.Error("zero iterations accepted")
	}
	bad = app
	bad.NFull = -1
	if bad.Validate() == nil {
		t.Error("negative nfull accepted")
	}
}

func TestFromCornersMatchesWavefrontClassify(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := r.Intn(10) + 1
			cs := make([]grid.Corner, n)
			for i := range cs {
				cs[i] = grid.Corner(r.Intn(4))
			}
			vals[0] = reflect.ValueOf(cs)
		},
	}
	prop := func(cs []grid.Corner) bool {
		app := testApp(grid.Cube(16), 2).FromCorners(cs)
		ns, nf, nd := wavefront.Classify(cs)
		return app.NSweeps == ns && app.NFull == nf && app.NDiag == nd
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestSingleProcessorIsPureComputePlusNonWavefront(t *testing.T) {
	g := grid.NewGrid(16, 16, 8)
	app := testApp(g, 2)
	mach := machine.XT4SingleCore()
	rep, err := New(app, mach).Evaluate(grid.MustDecompose(g, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// One rank: no fills beyond Wpre, Tstack = W × tiles.
	w := app.Wg * 2 * 16 * 16
	wantStack := w * 4 // Nz/Htile = 4 tiles
	if !almostEq(rep.TStack, wantStack) {
		t.Errorf("TStack = %v, want %v", rep.TStack, wantStack)
	}
	want := float64(app.NSweeps)*wantStack + rep.TNonWavefront
	if !almostEq(rep.TimePerIteration, want) {
		t.Errorf("TimePerIteration = %v, want %v", rep.TimePerIteration, want)
	}
}

func TestRecurrenceHandComputed2x2(t *testing.T) {
	// Hand-evaluate equations (r2a)–(r3b) on a 2×2 array with one core per
	// node.
	g := grid.NewGrid(8, 8, 4)
	app := testApp(g, 2)
	mach := machine.XT4SingleCore()
	p := mach.Params
	dec := grid.MustDecompose(g, 2, 2)
	rep, err := New(app, mach).Evaluate(dec)
	if err != nil {
		t.Fatal(err)
	}
	w := app.Wg * 2 * 4 * 4 // Wg × Htile × Nx/n × Ny/m
	sEW := 8 * 2 * 6 * 4
	sNS := 8 * 2 * 6 * 4
	s11 := 0.0
	s21 := s11 + w + p.TotalCommOffNode(sEW)                      // j=1 row: no ReceiveN
	s12 := s11 + w + p.TotalCommOffNode(sNS) + p.SendOffNode(sEW) // i=1: SendE of (1,1) exposed? i<n so yes
	s22 := math.Max(s21+w+p.TotalCommOffNode(sNS),                // north last: (2,1) has no east neighbour
		s12+w+p.TotalCommOffNode(sEW)+p.ReceiveOffNode(sNS)) // west last
	if !almostEq(rep.TDiagFill, s12) {
		t.Errorf("TDiagFill = %v, want StartP(1,2) = %v", rep.TDiagFill, s12)
	}
	if !almostEq(rep.TFullFill, s22) {
		t.Errorf("TFullFill = %v, want StartP(2,2) = %v", rep.TFullFill, s22)
	}
}

func TestTStackFormula(t *testing.T) {
	// Equation (r4): (ReceiveW + ReceiveN + W + SendE + SendS + Wpre)
	// × Nz/Htile − Wpre, with off-node costs.
	g := grid.NewGrid(16, 16, 12)
	app := testApp(g, 3)
	app.WgPre = 0.2
	mach := machine.XT4SingleCore()
	p := mach.Params
	dec := grid.MustDecompose(g, 4, 4)
	rep, err := New(app, mach).Evaluate(dec)
	if err != nil {
		t.Fatal(err)
	}
	w := app.Wg * 3 * 4 * 4
	wpre := app.WgPre * 3 * 4 * 4
	sEW := 8 * 3 * 6 * 4
	sNS := 8 * 3 * 6 * 4
	perTile := p.ReceiveOffNode(sEW) + p.ReceiveOffNode(sNS) + w +
		p.SendOffNode(sEW) + p.SendOffNode(sNS) + wpre
	want := perTile*4 - wpre // 12/3 = 4 tiles
	if !almostEq(rep.TStack, want) {
		t.Errorf("TStack = %v, want %v", rep.TStack, want)
	}
}

func TestEquationR5Composition(t *testing.T) {
	g := grid.NewGrid(16, 16, 8)
	app := testApp(g, 2)
	mach := machine.XT4SingleCore()
	rep, err := New(app, mach).Evaluate(grid.MustDecompose(g, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(app.NDiag)*rep.TDiagFill + float64(app.NFull)*rep.TFullFill +
		float64(app.NSweeps)*rep.TStack + rep.TNonWavefront
	if !almostEq(rep.TimePerIteration, want) {
		t.Errorf("r5 composition broken: %v vs %v", rep.TimePerIteration, want)
	}
	if !almostEq(rep.Total, rep.TimePerIteration*float64(app.Iterations)) {
		t.Errorf("Total = %v", rep.Total)
	}
	if !almostEq(rep.FillTimePerIter, float64(app.NDiag)*rep.TDiagFill+float64(app.NFull)*rep.TFullFill) {
		t.Errorf("FillTimePerIter = %v", rep.FillTimePerIter)
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	g := grid.NewGrid(32, 32, 16)
	app := testApp(g, 2)
	for _, mach := range []machine.Machine{machine.XT4SingleCore(), machine.XT4()} {
		rep, err := New(app, mach).EvaluateP(16)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(rep.ComputePerIter+rep.CommPerIter, rep.TimePerIteration) {
			t.Errorf("%s: breakdown %v + %v != %v", mach.Name,
				rep.ComputePerIter, rep.CommPerIter, rep.TimePerIteration)
		}
		if rep.CommPerIter <= 0 || rep.ComputePerIter <= 0 {
			t.Errorf("%s: non-positive components %v/%v", mach.Name, rep.ComputePerIter, rep.CommPerIter)
		}
	}
}

func TestCommShareGrowsWithP(t *testing.T) {
	g := grid.Cube(64)
	app := testApp(g, 2)
	mach := machine.XT4()
	prev := -1.0
	for _, p := range []int{16, 64, 256, 1024} {
		rep, err := New(app, mach).EvaluateP(p)
		if err != nil {
			t.Fatal(err)
		}
		share := rep.CommPerIter / rep.TimePerIteration
		if share <= prev {
			t.Errorf("comm share not increasing at P=%d: %v <= %v", p, share, prev)
		}
		prev = share
	}
}

func TestFillGrowsWithHtileAndCommShrinks(t *testing.T) {
	// Section 5.1: larger Htile → longer pipeline fill but lower per-cell
	// communication cost.
	g := grid.Cube(64)
	mach := machine.XT4()
	rep1, err := New(testApp(g, 1), mach).EvaluateP(64)
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := New(testApp(g, 4), mach).EvaluateP(64)
	if err != nil {
		t.Fatal(err)
	}
	if rep4.TFullFill <= rep1.TFullFill {
		t.Errorf("fill did not grow with Htile: %v vs %v", rep4.TFullFill, rep1.TFullFill)
	}
	if rep4.CommPerIter >= rep1.CommPerIter {
		t.Errorf("comm did not shrink with Htile: %v vs %v", rep4.CommPerIter, rep1.CommPerIter)
	}
}

func TestMoreProcessorsReduceIterationTime(t *testing.T) {
	g := grid.Cube(96)
	app := testApp(g, 2)
	mach := machine.XT4()
	prev := math.Inf(1)
	for _, p := range []int{16, 64, 256, 1024} {
		rep, err := New(app, mach).EvaluateP(p)
		if err != nil {
			t.Fatal(err)
		}
		if rep.TimePerIteration >= prev {
			t.Errorf("no speedup at P=%d: %v >= %v", p, rep.TimePerIteration, prev)
		}
		prev = rep.TimePerIteration
	}
}

func TestMulticoreContentionOrdering(t *testing.T) {
	// With the same total core count, more cores per shared bus must not
	// run faster (Table 6 contention, Section 5.3).
	g := grid.Cube(64)
	app := testApp(g, 2)
	const p = 256
	var prev float64
	for i, cores := range []int{1, 2, 4, 8, 16} {
		mach, err := machine.XT4MultiCore(cores)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := New(app, mach).EvaluateP(p)
		if err != nil {
			t.Fatal(err)
		}
		stack := rep.TStack
		if i > 0 && stack < prev-1e-9 {
			t.Errorf("Tstack decreased going to %d cores/bus: %v < %v", cores, stack, prev)
		}
		prev = stack
	}
}

func TestBusGroupsRecoverQuadCoreStack(t *testing.T) {
	// A 16-core node with four 4-core bus groups has the same Tstack
	// contention as a quad-core node (Section 5.3).
	g := grid.Cube(64)
	app := testApp(g, 2)
	quad, err := machine.XT4MultiCore(4)
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := machine.XT4MultiCoreGrouped(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	repQuad, err := New(app, quad).EvaluateP(256)
	if err != nil {
		t.Fatal(err)
	}
	repGrp, err := New(app, grouped).EvaluateP(256)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(repQuad.TStack, repGrp.TStack) {
		t.Errorf("Tstack: quad %v vs grouped-16 %v", repQuad.TStack, repGrp.TStack)
	}
}

func TestOnChipCommReducesFill(t *testing.T) {
	// Dual-core nodes make half the north-south messages on-chip, which
	// must not increase the fill time relative to all-off-node.
	g := grid.Cube(64)
	app := testApp(g, 2)
	m := New(app, machine.XT4())
	dec := grid.MustDecompose(g, 8, 8)
	full, err := m.Evaluate(dec)
	if err != nil {
		t.Fatal(err)
	}
	m.Opts.ForceOffNode = true
	off, err := m.Evaluate(dec)
	if err != nil {
		t.Fatal(err)
	}
	if full.TFullFill > off.TFullFill+1e-9 {
		t.Errorf("on-chip fill %v exceeds off-node fill %v", full.TFullFill, off.TFullFill)
	}
}

func TestSyncTermsOption(t *testing.T) {
	g := grid.Cube(64)
	app := testApp(g, 2)
	m := New(app, machine.SP2())
	dec := grid.MustDecompose(g, 8, 8)
	plain, err := m.Evaluate(dec)
	if err != nil {
		t.Fatal(err)
	}
	m.Opts.SyncTerms = true
	sync, err := m.Evaluate(dec)
	if err != nil {
		t.Fatal(err)
	}
	wantDiag := plain.TDiagFill + 7*machine.SP2().Params.L
	if !almostEq(sync.TDiagFill, wantDiag) {
		t.Errorf("sync TDiagFill = %v, want %v", sync.TDiagFill, wantDiag)
	}
	wantFull := plain.TFullFill + (7+6)*machine.SP2().Params.L
	if !almostEq(sync.TFullFill, wantFull) {
		t.Errorf("sync TFullFill = %v, want %v", sync.TFullFill, wantFull)
	}
}

func TestNoContentionOption(t *testing.T) {
	g := grid.Cube(64)
	app := testApp(g, 2)
	m := New(app, machine.XT4())
	dec := grid.MustDecompose(g, 8, 8)
	with, err := m.Evaluate(dec)
	if err != nil {
		t.Fatal(err)
	}
	m.Opts.NoContention = true
	without, err := m.Evaluate(dec)
	if err != nil {
		t.Fatal(err)
	}
	if without.TStack >= with.TStack {
		t.Errorf("contention-free stack %v not smaller than %v", without.TStack, with.TStack)
	}
}

func TestEvaluateErrors(t *testing.T) {
	g := grid.Cube(32)
	app := testApp(g, 2)
	m := New(app, machine.XT4())
	if _, err := m.Evaluate(grid.MustDecompose(grid.Cube(16), 2, 2)); err == nil {
		t.Error("mismatched grid accepted")
	}
	bad := app
	bad.Htile = -1
	if _, err := New(bad, machine.XT4()).EvaluateP(4); err == nil {
		t.Error("invalid app accepted")
	}
	badMach := machine.XT4()
	badMach.Cx = 5
	if _, err := New(app, badMach).EvaluateP(4); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestWithHelpers(t *testing.T) {
	app := testApp(grid.Cube(32), 2)
	if got := app.WithHtile(5).Htile; got != 5 {
		t.Errorf("WithHtile = %d", got)
	}
	re := app.WithSweepStructure(240, 2, 2)
	if re.NSweeps != 240 || re.NFull != 2 || re.NDiag != 2 {
		t.Errorf("WithSweepStructure = %+v", re)
	}
	if app.NSweeps != 8 {
		t.Error("WithSweepStructure mutated the receiver")
	}
}

func TestReportUnits(t *testing.T) {
	r := Report{Total: 2 * 86400 * 1e6}
	if !almostEq(r.TotalDays(), 2) {
		t.Errorf("TotalDays = %v", r.TotalDays())
	}
	if !almostEq(r.TotalSeconds(), 2*86400) {
		t.Errorf("TotalSeconds = %v", r.TotalSeconds())
	}
	if !almostEq(r.Scale(3).Total, 6*86400*1e6) {
		t.Errorf("Scale broken")
	}
}

func TestStencilNonWavefront(t *testing.T) {
	g := grid.Cube(32)
	fn := StencilNonWavefront(0.1, 40)
	env := Env{Machine: machine.XT4SingleCore(), Dec: grid.MustDecompose(g, 4, 4), Htile: 1}
	got := fn(env)
	p := env.Machine.Params
	ew := 40 * 8 * 32
	comp := 0.1 * 8 * 8 * 32
	want := 4*p.TotalCommOffNode(ew) + comp
	if !almostEq(got, want) {
		t.Errorf("stencil = %v, want %v", got, want)
	}
}

func TestAllReduceNonWavefront(t *testing.T) {
	g := grid.Cube(32)
	env := Env{Machine: machine.XT4(), Dec: grid.MustDecompose(g, 8, 8), Htile: 1}
	got := AllReduceNonWavefront(2)(env)
	want := 2 * machine.XT4().Params.AllReduceDouble(64, 2)
	if !almostEq(got, want) {
		t.Errorf("allreduce non-wavefront = %v, want %v", got, want)
	}
	if env.P() != 64 {
		t.Errorf("Env.P = %d", env.P())
	}
}

func TestDegenerateShapes(t *testing.T) {
	g := grid.NewGrid(64, 4, 16)
	app := testApp(g, 2)
	app.Grid = g
	// 1×P and P×1 pipelines must evaluate without panicking.
	for _, shape := range [][2]int{{8, 1}, {1, 4}, {64, 1}} {
		dec := grid.MustDecompose(g, shape[0], shape[1])
		rep, err := New(app, machine.XT4SingleCore()).Evaluate(dec)
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		if rep.TimePerIteration <= 0 || math.IsNaN(rep.TimePerIteration) {
			t.Errorf("shape %v: time %v", shape, rep.TimePerIteration)
		}
		if rep.TFullFill < rep.TDiagFill-1e9 {
			t.Errorf("shape %v: full fill %v < diag fill %v", shape, rep.TFullFill, rep.TDiagFill)
		}
	}
}

func TestFullFillAtLeastDiagFill(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Intn(12) + 1)
			vals[1] = reflect.ValueOf(r.Intn(12) + 1)
			vals[2] = reflect.ValueOf(r.Intn(3) + 1)
		},
	}
	prop := func(n, m, htile int) bool {
		g := grid.Cube(48)
		app := testApp(g, htile)
		rep, err := New(app, machine.XT4()).Evaluate(grid.MustDecompose(g, n, m))
		if err != nil {
			return false
		}
		return rep.TFullFill >= rep.TDiagFill-1e-9 && rep.TDiagFill >= 0
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestZeroCommParamsGivePureComputeModel(t *testing.T) {
	g := grid.NewGrid(16, 16, 8)
	app := testApp(g, 2)
	mach := machine.XT4SingleCore()
	mach.Params = logp.Params{Name: "zero"}
	rep, err := New(app, mach).Evaluate(grid.MustDecompose(g, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	w := app.Wg * 2 * 4 * 4
	// Fill to (n,m): 6 hops × w; stack: 4 tiles × w.
	if !almostEq(rep.TFullFill, 6*w) {
		t.Errorf("zero-comm TFullFill = %v, want %v", rep.TFullFill, 6*w)
	}
	if !almostEq(rep.TStack, 4*w) {
		t.Errorf("zero-comm TStack = %v, want %v", rep.TStack, 4*w)
	}
	if rep.CommPerIter != 0 {
		t.Errorf("zero-comm CommPerIter = %v", rep.CommPerIter)
	}
}
