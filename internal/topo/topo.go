// Package topo models the inter-node interconnect of a parallel machine as
// explicit link-level resources. The paper's plug-and-play model (Sections
// 3–4) treats the off-node network as uncontended LogGP — a message pays
// o + size×G + L regardless of where the endpoints sit. This package
// replaces that "flat wire" with a routed fabric: a 2D/3D torus with
// dimension-order routing or a two-level k-ary fat-tree with up-down
// routing, where every link is a FCFS resource (des.Resource) occupied for
// size×Glink per message.
//
// The timing model is cut-through: the serialisation time size×G of the
// LogGP equation is paid once (it covers the bottleneck link), each hop
// beyond the first adds a router pass-through latency HopL, and queueing
// delay emerges from per-link FCFS occupancy. Unlike the node bus — whose
// acquisitions always happen at the current event time — a message
// reserves its whole path at injection, walking the links at the (possibly
// future) virtual times its head would reach them. Reservations are
// therefore ordered by injection-event order, not by per-link arrival
// time: a circuit-reservation approximation that stays deterministic and
// allocation-free without per-hop events, at the cost of occasionally
// charging a later injection for a reservation made slightly ahead of
// time. A single-hop uncontended message costs exactly what the flat-wire
// model charges, so a bus-only configuration (Kind == Bus, or all ranks on
// one node) is bit-identical to the pre-interconnect simulator.
//
// Acquire is allocation-free in steady state: routes are materialised into
// a scratch buffer owned by the Interconnect (same index-addressed style as
// internal/simmpi's pools), and link lookup is pure arithmetic.
package topo

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/des"
)

// Kind selects the interconnect family.
type Kind uint8

// Interconnect kinds. The zero value Bus means "no modelled fabric": the
// flat-wire LogGP assumption of the paper, with only node buses contended.
const (
	Bus Kind = iota
	Torus2D
	Torus3D
	FatTree
)

// kindNames maps kinds to their JSON/CLI names.
var kindNames = map[Kind]string{
	Bus:     "bus",
	Torus2D: "torus2d",
	Torus3D: "torus3d",
	FatTree: "fattree",
}

// ParseKind resolves a kind name ("bus", "torus2d", "torus3d", "fattree").
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return Bus, fmt.Errorf("topo: unknown interconnect kind %q (want bus, torus2d, torus3d or fattree)", s)
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if name, ok := kindNames[k]; ok {
		return name
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) {
	name, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("topo: cannot encode kind %d", uint8(k))
	}
	return json.Marshal(name)
}

// UnmarshalJSON decodes a kind name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("topo: interconnect kind must be a string: %w", err)
	}
	kind, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = kind
	return nil
}

// Spec describes an interconnect declaratively; it is embedded in machine
// descriptions and JSON campaign specs. The zero Spec is the bus-only
// flat-wire network.
type Spec struct {
	Kind Kind `json:"kind"`

	// Dims are the torus dimensions ([X, Y] or [X, Y, Z]). When omitted the
	// fabric is auto-sized to the most-cubic shape covering the node count.
	Dims []int `json:"dims,omitempty"`

	// LeafRadix is the number of nodes per leaf switch of a fat-tree
	// (default 4); Spine is the number of spine switches (default LeafRadix,
	// i.e. full bisection).
	LeafRadix int `json:"leaf_radix,omitempty"`
	Spine     int `json:"spine,omitempty"`

	// LinkG is the per-byte link occupancy in µs/byte; zero means the
	// machine's off-node G. HopL is the router pass-through latency in µs
	// charged per hop beyond the first; zero means DefaultHopL.
	LinkG float64 `json:"link_g,omitempty"`
	HopL  float64 `json:"hop_l,omitempty"`
}

// DefaultHopL is the per-hop router latency assumed when a spec does not
// set one: 0.05 µs, the order of a SeaStar-era router pass-through.
const DefaultHopL = 0.05

// Validate checks the spec's static shape (instantiation against a concrete
// node count performs the capacity checks).
func (s Spec) Validate() error {
	switch s.Kind {
	case Bus:
		if len(s.Dims) > 0 || s.LeafRadix != 0 || s.Spine != 0 || s.LinkG != 0 || s.HopL != 0 {
			return fmt.Errorf("topo: bus interconnect takes no parameters")
		}
		return nil
	case Torus2D, Torus3D:
		want := 2
		if s.Kind == Torus3D {
			want = 3
		}
		if len(s.Dims) != 0 && len(s.Dims) != want {
			return fmt.Errorf("topo: %s needs %d dims, got %v", s.Kind, want, s.Dims)
		}
		for _, d := range s.Dims {
			if d < 1 {
				return fmt.Errorf("topo: %s has non-positive dimension in %v", s.Kind, s.Dims)
			}
		}
		if s.LeafRadix != 0 || s.Spine != 0 {
			return fmt.Errorf("topo: %s does not take fat-tree parameters", s.Kind)
		}
	case FatTree:
		if len(s.Dims) != 0 {
			return fmt.Errorf("topo: fattree does not take torus dims")
		}
		if s.LeafRadix < 0 || s.Spine < 0 {
			return fmt.Errorf("topo: fattree leaf_radix/spine must be non-negative")
		}
	default:
		return fmt.Errorf("topo: unknown interconnect kind %d", uint8(s.Kind))
	}
	if s.LinkG < 0 || math.IsNaN(s.LinkG) || math.IsInf(s.LinkG, 0) {
		return fmt.Errorf("topo: link_g %v out of range", s.LinkG)
	}
	if s.HopL < 0 || math.IsNaN(s.HopL) || math.IsInf(s.HopL, 0) {
		return fmt.Errorf("topo: hop_l %v out of range", s.HopL)
	}
	return nil
}

// String renders the spec compactly for machine labels and tables, e.g.
// "torus2d[6x6]", "fattree[leaf4,spine4]" or "torus3d" when auto-sized.
func (s Spec) String() string {
	switch s.Kind {
	case Torus2D, Torus3D:
		if len(s.Dims) == 0 {
			return s.Kind.String()
		}
		out := s.Kind.String() + "["
		for i, d := range s.Dims {
			if i > 0 {
				out += "x"
			}
			out += fmt.Sprintf("%d", d)
		}
		return out + "]"
	case FatTree:
		if s.LeafRadix == 0 && s.Spine == 0 {
			return "fattree"
		}
		leaf, spine := s.LeafRadix, s.Spine
		if leaf == 0 {
			leaf = 4
		}
		if spine == 0 {
			spine = leaf
		}
		return fmt.Sprintf("fattree[leaf%d,spine%d]", leaf, spine)
	default:
		return s.Kind.String()
	}
}

// Interconnect is an instantiated link fabric for a concrete node count.
// A nil *Interconnect is the bus-only network: every method degrades to the
// flat-wire behaviour (Acquire returns 0, stats are zero).
type Interconnect struct {
	spec  Spec
	kind  Kind
	nodes int // nodes addressed by callers (≤ fabric capacity)

	// Torus geometry.
	ndims int
	dims  [3]int

	// Fat-tree geometry.
	leafRadix int
	spine     int
	leaves    int

	linkG float64 // per-byte link occupancy, µs/byte
	hopL  float64 // per-hop router latency beyond the first, µs

	links   []des.Resource
	scratch []int32 // route buffer reused across Acquire calls
	ltrace  LinkTracer
}

// LinkTracer receives one callback per link reservation: the link index,
// the service start (after queueing), the queueing delay and the occupancy,
// all in µs. Callers must guarantee single-threaded Acquire invocation
// while a tracer is installed — the simulator does, because link replay on
// sharded runs happens at the single-threaded window barrier.
type LinkTracer func(link int32, start, wait, dur float64)

// New instantiates a spec for the given node count, resolving the timing
// defaults from the platform's off-node per-byte cost g. It returns
// (nil, nil) for the bus-only kind.
func New(spec Spec, nodes int, g float64) (*Interconnect, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind == Bus {
		return nil, nil
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("topo: invalid node count %d", nodes)
	}
	ic := &Interconnect{spec: spec, kind: spec.Kind, nodes: nodes}
	ic.linkG = spec.LinkG
	if ic.linkG == 0 {
		ic.linkG = g
	}
	ic.hopL = spec.HopL
	if ic.hopL == 0 {
		ic.hopL = DefaultHopL
	}

	switch spec.Kind {
	case Torus2D, Torus3D:
		ic.ndims = 2
		if spec.Kind == Torus3D {
			ic.ndims = 3
		}
		dims, err := torusDims(spec.Dims, ic.ndims, nodes)
		if err != nil {
			return nil, err
		}
		ic.dims = dims
		fabric := dims[0] * dims[1] * dims[2]
		ic.links = make([]des.Resource, fabric*ic.ndims*2)
	case FatTree:
		ic.leafRadix = spec.LeafRadix
		if ic.leafRadix == 0 {
			ic.leafRadix = 4
		}
		ic.spine = spec.Spine
		if ic.spine == 0 {
			ic.spine = ic.leafRadix
		}
		ic.leaves = (nodes + ic.leafRadix - 1) / ic.leafRadix
		fabricNodes := ic.leaves * ic.leafRadix
		// 2 node↔leaf links per node plus 2 leaf↔spine links per pair.
		ic.links = make([]des.Resource, 2*fabricNodes+2*ic.leaves*ic.spine)
	}
	return ic, nil
}

// torusDims resolves explicit or auto-sized torus dimensions covering the
// node count. Auto-sizing picks the most-cubic shape with product ≥ nodes.
func torusDims(explicit []int, ndims, nodes int) ([3]int, error) {
	dims := [3]int{1, 1, 1}
	if len(explicit) > 0 {
		prod := 1
		for i, d := range explicit {
			dims[i] = d
			prod *= d
		}
		if prod < nodes {
			return dims, fmt.Errorf("topo: torus %v has %d nodes, need %d", explicit, prod, nodes)
		}
		return dims, nil
	}
	switch ndims {
	case 2:
		x := int(math.Ceil(math.Sqrt(float64(nodes))))
		dims[0] = x
		dims[1] = ceilDiv(nodes, x)
	case 3:
		x := int(math.Ceil(math.Cbrt(float64(nodes))))
		dims[0] = x
		rem := ceilDiv(nodes, x)
		y := int(math.Ceil(math.Sqrt(float64(rem))))
		dims[1] = y
		dims[2] = ceilDiv(rem, y)
	}
	return dims, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Spec returns the spec the fabric was instantiated from.
func (ic *Interconnect) Spec() Spec {
	if ic == nil {
		return Spec{}
	}
	return ic.spec
}

// Nodes returns the node count the fabric serves.
func (ic *Interconnect) Nodes() int {
	if ic == nil {
		return 0
	}
	return ic.nodes
}

// LinkCount returns the number of directed links in the fabric.
func (ic *Interconnect) LinkCount() int {
	if ic == nil {
		return 0
	}
	return len(ic.links)
}

// HopL returns the resolved per-hop router latency in µs.
func (ic *Interconnect) HopL() float64 {
	if ic == nil {
		return 0
	}
	return ic.hopL
}

// LinkG returns the resolved per-byte link occupancy in µs/byte.
func (ic *Interconnect) LinkG() float64 {
	if ic == nil {
		return 0
	}
	return ic.linkG
}

// Describe renders the instantiated geometry, e.g. "torus2d 6x6 (144 links)".
func (ic *Interconnect) Describe() string {
	if ic == nil {
		return "bus (flat wire, no links)"
	}
	switch ic.kind {
	case Torus2D:
		return fmt.Sprintf("torus2d %dx%d (%d links)", ic.dims[0], ic.dims[1], len(ic.links))
	case Torus3D:
		return fmt.Sprintf("torus3d %dx%dx%d (%d links)", ic.dims[0], ic.dims[1], ic.dims[2], len(ic.links))
	case FatTree:
		return fmt.Sprintf("fattree %d leaves × radix %d, %d spines (%d links)",
			ic.leaves, ic.leafRadix, ic.spine, len(ic.links))
	}
	return ic.kind.String()
}

// Reset returns every link to the idle, zero-statistics state for a fresh
// simulation on a new virtual time axis.
func (ic *Interconnect) Reset() {
	if ic == nil {
		return
	}
	for i := range ic.links {
		ic.links[i] = des.Resource{}
	}
}

// Acquire routes one message of the given size from srcNode to dstNode at
// virtual time now, reserving every link on the path FCFS, and returns the
// extra delay relative to the flat-wire model: accumulated link queueing
// plus the per-hop latency of hops beyond the first. Same-node traffic and
// a nil fabric cost zero.
func (ic *Interconnect) Acquire(srcNode, dstNode int, now float64, size int) float64 {
	if ic == nil || srcNode == dstNode {
		return 0
	}
	ic.scratch = ic.AppendRoute(ic.scratch[:0], srcNode, dstNode)
	occ := float64(size) * ic.linkG
	t := now
	for i, l := range ic.scratch {
		if i > 0 {
			t += ic.hopL
		}
		wait := ic.links[l].Acquire(t, occ)
		if ic.ltrace != nil {
			ic.ltrace(l, t+wait, wait, occ)
		}
		t += wait
	}
	return t - now
}

// SetLinkTracer installs a per-reservation tracer; pass nil to disable.
// A nil fabric ignores the call.
func (ic *Interconnect) SetLinkTracer(fn LinkTracer) {
	if ic == nil {
		return
	}
	ic.ltrace = fn
}

// AppendRoute appends the directed link indices of the route from srcNode
// to dstNode and returns the extended slice. Torus routes are
// dimension-order minimal; fat-tree routes are up-down with the spine
// chosen by destination (all traffic to one node shares a spine, the
// deterministic analogue of destination-rooted routing).
func (ic *Interconnect) AppendRoute(route []int32, srcNode, dstNode int) []int32 {
	if ic == nil || srcNode == dstNode {
		return route
	}
	if srcNode < 0 || srcNode >= ic.nodes || dstNode < 0 || dstNode >= ic.nodes {
		panic(fmt.Sprintf("topo: route %d→%d outside %d nodes", srcNode, dstNode, ic.nodes))
	}
	switch ic.kind {
	case Torus2D, Torus3D:
		return ic.appendTorusRoute(route, srcNode, dstNode)
	case FatTree:
		return ic.appendFatTreeRoute(route, srcNode, dstNode)
	}
	return route
}

// --- Torus ---

// torusCoord splits a node index into per-dimension coordinates.
func (ic *Interconnect) torusCoord(n int) [3]int {
	return [3]int{
		n % ic.dims[0],
		(n / ic.dims[0]) % ic.dims[1],
		n / (ic.dims[0] * ic.dims[1]),
	}
}

// torusNode joins coordinates back into a node index.
func (ic *Interconnect) torusNode(c [3]int) int {
	return (c[2]*ic.dims[1]+c[1])*ic.dims[0] + c[0]
}

// torusLink returns the directed link leaving the node in the given
// dimension and direction (dir 0 = +, 1 = −).
func (ic *Interconnect) torusLink(node, dim, dir int) int32 {
	return int32((node*ic.ndims+dim)*2 + dir)
}

// appendTorusRoute walks dimension-order: each dimension is corrected fully
// via its minimal wrap direction before the next (ties break positive), so
// every route is minimal and deadlock-free under the usual DOR argument.
func (ic *Interconnect) appendTorusRoute(route []int32, src, dst int) []int32 {
	cur := ic.torusCoord(src)
	want := ic.torusCoord(dst)
	for dim := 0; dim < ic.ndims; dim++ {
		size := ic.dims[dim]
		fwd := ((want[dim]-cur[dim])%size + size) % size
		steps, dir, delta := fwd, 0, 1
		if back := size - fwd; back < fwd {
			steps, dir, delta = back, 1, size-1
		}
		for s := 0; s < steps; s++ {
			route = append(route, ic.torusLink(ic.torusNode(cur), dim, dir))
			cur[dim] = (cur[dim] + delta) % size
		}
	}
	return route
}

// --- Fat-tree ---

// Fat-tree link layout: for each fabric node i, link 2i is the node→leaf
// uplink and 2i+1 the leaf→node downlink; after the node block, each
// (leaf, spine) pair owns an uplink and a downlink.
func (ic *Interconnect) nodeUp(n int) int32   { return int32(2 * n) }
func (ic *Interconnect) nodeDown(n int) int32 { return int32(2*n + 1) }
func (ic *Interconnect) leafSpine(leaf, spine, dir int) int32 {
	fabricNodes := ic.leaves * ic.leafRadix
	return int32(2*fabricNodes + (leaf*ic.spine+spine)*2 + dir)
}

// appendFatTreeRoute is up-down: node→leaf, then (for inter-leaf traffic)
// leaf→spine→leaf with the spine selected by the destination node, then
// leaf→node.
func (ic *Interconnect) appendFatTreeRoute(route []int32, src, dst int) []int32 {
	srcLeaf, dstLeaf := src/ic.leafRadix, dst/ic.leafRadix
	route = append(route, ic.nodeUp(src))
	if srcLeaf != dstLeaf {
		s := dst % ic.spine
		route = append(route, ic.leafSpine(srcLeaf, s, 0), ic.leafSpine(dstLeaf, s, 1))
	}
	return append(route, ic.nodeDown(dst))
}

// --- Reporting ---

// LinkName renders a link index for reports: torus "n14.+x" / "n3.-z",
// fat-tree "h5.up" / "l2-s1.down".
func (ic *Interconnect) LinkName(i int) string {
	if ic == nil || i < 0 || i >= len(ic.links) {
		return fmt.Sprintf("link%d", i)
	}
	switch ic.kind {
	case Torus2D, Torus3D:
		node := i / (ic.ndims * 2)
		dim := (i / 2) % ic.ndims
		sign := "+"
		if i%2 == 1 {
			sign = "-"
		}
		return fmt.Sprintf("n%d.%s%c", node, sign, "xyz"[dim])
	case FatTree:
		fabricNodes := ic.leaves * ic.leafRadix
		if i < 2*fabricNodes {
			dir := "up"
			if i%2 == 1 {
				dir = "down"
			}
			return fmt.Sprintf("h%d.%s", i/2, dir)
		}
		j := i - 2*fabricNodes
		dir := "up"
		if j%2 == 1 {
			dir = "down"
		}
		pair := j / 2
		return fmt.Sprintf("l%d-s%d.%s", pair/ic.spine, pair%ic.spine, dir)
	}
	return fmt.Sprintf("link%d", i)
}

// LinkStats returns one link's aggregate counters.
func (ic *Interconnect) LinkStats(i int) (requests, queued uint64, busy, waited float64) {
	if ic == nil {
		return 0, 0, 0, 0
	}
	return ic.links[i].Stats()
}

// MaxLinkBusy returns the largest per-link busy time; divided by the
// simulated makespan it is the utilisation of the hottest link.
func (ic *Interconnect) MaxLinkBusy() float64 {
	if ic == nil {
		return 0
	}
	var m float64
	for i := range ic.links {
		if _, _, b, _ := ic.links[i].Stats(); b > m {
			m = b
		}
	}
	return m
}

// Stats aggregates contention counters over every link.
func (ic *Interconnect) Stats() (requests, queued uint64, busy, waited float64) {
	if ic == nil {
		return 0, 0, 0, 0
	}
	for i := range ic.links {
		rq, q, b, w := ic.links[i].Stats()
		requests += rq
		queued += q
		busy += b
		waited += w
	}
	return requests, queued, busy, waited
}
