package topo

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// minTorusDist is the reference minimal hop count between two coordinates
// on one ring dimension.
func minTorusDist(a, b, size int) int {
	d := ((b-a)%size + size) % size
	if size-d < d {
		return size - d
	}
	return d
}

// decodeTorusLink inverts torusLink for traversal checks.
func decodeTorusLink(ic *Interconnect, l int32) (node, dim, dir int) {
	node = int(l) / (ic.ndims * 2)
	dim = (int(l) / 2) % ic.ndims
	dir = int(l) % 2
	return
}

// TestTorusRoutesMinimal checks every pair of nodes on a 4x3 torus and a
// 3x3x2 torus: the dimension-order route has exactly the minimal hop count,
// starts at the source, steps over adjacent links only, and ends at the
// destination.
func TestTorusRoutesMinimal(t *testing.T) {
	cases := []struct {
		kind Kind
		dims []int
	}{
		{Torus2D, []int{4, 3}},
		{Torus3D, []int{3, 3, 2}},
	}
	for _, tc := range cases {
		nodes := 1
		for _, d := range tc.dims {
			nodes *= d
		}
		ic, err := New(Spec{Kind: tc.kind, Dims: tc.dims}, nodes, 0.0004)
		if err != nil {
			t.Fatal(err)
		}
		for src := 0; src < nodes; src++ {
			for dst := 0; dst < nodes; dst++ {
				route := ic.AppendRoute(nil, src, dst)
				want := 0
				cs, cd := ic.torusCoord(src), ic.torusCoord(dst)
				for dim := 0; dim < ic.ndims; dim++ {
					want += minTorusDist(cs[dim], cd[dim], ic.dims[dim])
				}
				if len(route) != want {
					t.Fatalf("%v route %d→%d has %d hops, want minimal %d", tc.kind, src, dst, len(route), want)
				}
				// Walk the route: each link must leave the current node and
				// arrive at the destination after the last hop.
				cur := cs
				for _, l := range route {
					node, dim, dir := decodeTorusLink(ic, l)
					if node != ic.torusNode(cur) {
						t.Fatalf("%v route %d→%d: link %d leaves node %d, cursor at %d",
							tc.kind, src, dst, l, node, ic.torusNode(cur))
					}
					step := 1
					if dir == 1 {
						step = ic.dims[dim] - 1
					}
					cur[dim] = (cur[dim] + step) % ic.dims[dim]
				}
				if ic.torusNode(cur) != dst {
					t.Fatalf("%v route %d→%d ends at node %d", tc.kind, src, dst, ic.torusNode(cur))
				}
			}
		}
	}
}

// TestTorusTieBreak: with an even ring, the half-way distance routes in the
// positive direction deterministically.
func TestTorusTieBreak(t *testing.T) {
	ic, err := New(Spec{Kind: Torus2D, Dims: []int{4, 1}}, 4, 0.0004)
	if err != nil {
		t.Fatal(err)
	}
	route := ic.AppendRoute(nil, 0, 2) // distance 2 both ways
	if len(route) != 2 {
		t.Fatalf("tie route has %d hops, want 2", len(route))
	}
	for _, l := range route {
		if _, _, dir := decodeTorusLink(ic, l); dir != 0 {
			t.Fatalf("tie route used negative direction (link %d)", l)
		}
	}
}

// TestFatTreeUpDown: routes are a strict up-phase followed by a down-phase
// (never down then up), 2 links within a leaf and 4 across leaves, and all
// traffic to one destination shares a spine.
func TestFatTreeUpDown(t *testing.T) {
	const nodes = 16
	ic, err := New(Spec{Kind: FatTree, LeafRadix: 4, Spine: 4}, nodes, 0.0004)
	if err != nil {
		t.Fatal(err)
	}
	fabricNodes := ic.leaves * ic.leafRadix
	isUp := func(l int32) bool {
		if int(l) < 2*fabricNodes {
			return l%2 == 0
		}
		return (l-int32(2*fabricNodes))%2 == 0
	}
	spineOf := map[int]int{} // dst → spine switch observed
	spineNum := func(l int32) int {
		return (int(l) - 2*fabricNodes) / 2 % ic.spine
	}
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			if src == dst {
				continue
			}
			route := ic.AppendRoute(nil, src, dst)
			wantLen := 4
			if src/ic.leafRadix == dst/ic.leafRadix {
				wantLen = 2
			}
			if len(route) != wantLen {
				t.Fatalf("route %d→%d has %d links, want %d", src, dst, len(route), wantLen)
			}
			downSeen := false
			for _, l := range route {
				if isUp(l) {
					if downSeen {
						t.Fatalf("route %d→%d goes up after down: %v", src, dst, route)
					}
				} else {
					downSeen = true
				}
			}
			if route[len(route)-1] != ic.nodeDown(dst) {
				t.Fatalf("route %d→%d does not end at dst downlink", src, dst)
			}
			if wantLen == 4 {
				up, down := spineNum(route[1]), spineNum(route[2])
				if up != down {
					t.Fatalf("route %d→%d changes spine mid-flight (%d→%d)", src, dst, up, down)
				}
				if prev, ok := spineOf[dst]; ok && prev != up {
					t.Fatalf("destination %d reached via two spines (%d, %d)", dst, prev, up)
				}
				spineOf[dst] = up
			}
		}
	}
}

// TestLinkOccupancyConservesBytes: after routing a batch of messages, the
// total busy time over all links equals hops × size × LinkG exactly. LinkG
// is picked so size×LinkG is a power of two, making repeated float addition
// exact and the conservation check bit-precise.
func TestLinkOccupancyConservesBytes(t *testing.T) {
	const size = 1024
	const linkG = 1.0 / 2048 // size×linkG = 0.5 exactly
	for _, spec := range []Spec{
		{Kind: Torus2D, Dims: []int{4, 4}, LinkG: linkG},
		{Kind: Torus3D, Dims: []int{2, 2, 2}, LinkG: linkG},
		{Kind: FatTree, LeafRadix: 2, Spine: 2, LinkG: linkG},
	} {
		nodes := 8
		if spec.Kind == Torus2D {
			nodes = 16
		}
		ic, err := New(spec, nodes, 0.0004)
		if err != nil {
			t.Fatal(err)
		}
		totalHops := 0
		now := 0.0
		for src := 0; src < nodes; src++ {
			for dst := 0; dst < nodes; dst++ {
				if src == dst {
					continue
				}
				totalHops += len(ic.AppendRoute(nil, src, dst))
				ic.Acquire(src, dst, now, size)
				now += 1
			}
		}
		requests, _, busy, _ := ic.Stats()
		if requests != uint64(totalHops) {
			t.Errorf("%s: %d link acquisitions, want %d (one per hop)", spec, requests, totalHops)
		}
		if want := float64(totalHops) * 0.5; busy != want {
			t.Errorf("%s: total link busy %v, want exactly %v — bytes not conserved", spec, busy, want)
		}
	}
}

// TestAcquireUncontendedSingleHopIsFree: a 1-hop route with idle links and
// no queueing adds zero delay — the flat-wire equivalence that keeps
// bus-only behaviour reachable as a special case.
func TestAcquireUncontendedSingleHopIsFree(t *testing.T) {
	ic, err := New(Spec{Kind: Torus2D, Dims: []int{4, 4}}, 16, 0.0004)
	if err != nil {
		t.Fatal(err)
	}
	if d := ic.Acquire(0, 1, 10, 4096); d != 0 {
		t.Errorf("uncontended single hop cost %v, want 0", d)
	}
	// Same message again while the link is still busy must queue.
	if d := ic.Acquire(0, 1, 10, 4096); d <= 0 {
		t.Errorf("second message on a busy link cost %v, want queueing > 0", d)
	}
	// Same-node traffic never touches the fabric.
	if d := ic.Acquire(3, 3, 0, 1<<20); d != 0 {
		t.Errorf("same-node acquire cost %v, want 0", d)
	}
}

// TestHopLatency: each hop beyond the first adds exactly HopL on an idle
// fabric.
func TestHopLatency(t *testing.T) {
	ic, err := New(Spec{Kind: Torus2D, Dims: []int{5, 1}, HopL: 0.25}, 5, 0.0004)
	if err != nil {
		t.Fatal(err)
	}
	if d := ic.Acquire(0, 2, 0, 8); d != 0.25 {
		t.Errorf("2-hop acquire cost %v, want 0.25 (one extra hop)", d)
	}
}

// TestResetClearsLinks: Reset zeroes link occupancy and statistics.
func TestResetClearsLinks(t *testing.T) {
	ic, err := New(Spec{Kind: FatTree}, 8, 0.0004)
	if err != nil {
		t.Fatal(err)
	}
	ic.Acquire(0, 7, 0, 1<<16)
	if rq, _, _, _ := ic.Stats(); rq == 0 {
		t.Fatal("no link acquisitions recorded")
	}
	ic.Reset()
	rq, q, busy, waited := ic.Stats()
	if rq != 0 || q != 0 || busy != 0 || waited != 0 {
		t.Errorf("stats after reset: %d %d %v %v", rq, q, busy, waited)
	}
}

// TestNilInterconnect: the nil fabric (bus-only) degrades every method.
func TestNilInterconnect(t *testing.T) {
	var ic *Interconnect
	if d := ic.Acquire(0, 5, 0, 1024); d != 0 {
		t.Errorf("nil Acquire = %v", d)
	}
	if n := ic.LinkCount(); n != 0 {
		t.Errorf("nil LinkCount = %d", n)
	}
	if r := ic.AppendRoute(nil, 0, 5); r != nil {
		t.Errorf("nil AppendRoute = %v", r)
	}
	ic.Reset() // must not panic
	if rq, _, _, _ := ic.Stats(); rq != 0 {
		t.Error("nil Stats non-zero")
	}
}

// TestAutoDims: auto-sized tori cover the node count with near-cubic shapes.
func TestAutoDims(t *testing.T) {
	ic, err := New(Spec{Kind: Torus2D}, 12, 0.0004)
	if err != nil {
		t.Fatal(err)
	}
	if ic.dims[0]*ic.dims[1] < 12 {
		t.Errorf("2D auto dims %v cover %d nodes, need 12", ic.dims, ic.dims[0]*ic.dims[1])
	}
	ic, err = New(Spec{Kind: Torus3D}, 30, 0.0004)
	if err != nil {
		t.Fatal(err)
	}
	if ic.dims[0]*ic.dims[1]*ic.dims[2] < 30 {
		t.Errorf("3D auto dims %v do not cover 30 nodes", ic.dims)
	}
}

// TestNewErrors: undersized explicit dims and bad specs fail.
func TestNewErrors(t *testing.T) {
	if _, err := New(Spec{Kind: Torus2D, Dims: []int{2, 2}}, 16, 0.0004); err == nil {
		t.Error("2x2 torus accepted for 16 nodes")
	}
	if _, err := New(Spec{Kind: Torus2D}, 0, 0.0004); err == nil {
		t.Error("zero node count accepted")
	}
	bad := []Spec{
		{Kind: Torus2D, Dims: []int{4}},
		{Kind: Torus3D, Dims: []int{4, 4}},
		{Kind: Torus2D, Dims: []int{4, 0}},
		{Kind: Torus2D, LeafRadix: 4},
		{Kind: FatTree, Dims: []int{4, 4}},
		{Kind: Bus, Dims: []int{2, 2}},
		{Kind: FatTree, LinkG: -1},
		{Kind: Kind(99)},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
}

// TestBusIsNil: the bus spec instantiates to the nil fabric.
func TestBusIsNil(t *testing.T) {
	ic, err := New(Spec{}, 64, 0.0004)
	if err != nil || ic != nil {
		t.Errorf("bus spec: ic=%v err=%v", ic, err)
	}
}

// TestSpecJSON: kinds round-trip as names and unknown names fail strictly.
func TestSpecJSON(t *testing.T) {
	in := Spec{Kind: FatTree, LeafRadix: 8, Spine: 4, HopL: 0.1}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"fattree"`) {
		t.Errorf("encoded spec: %s", data)
	}
	var out Spec
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round-trip %+v != %+v", out, in)
	}
	var bad Spec
	if err := json.Unmarshal([]byte(`{"kind": "hypercube"}`), &bad); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := json.Unmarshal([]byte(`{"kind": 3}`), &bad); err == nil {
		t.Error("numeric kind accepted")
	}
}

// TestLinkNames: names are unique and decodable per fabric.
func TestLinkNames(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: Torus3D, Dims: []int{2, 2, 2}},
		{Kind: FatTree, LeafRadix: 2, Spine: 3},
	} {
		ic, err := New(spec, 8, 0.0004)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for i := 0; i < ic.LinkCount(); i++ {
			name := ic.LinkName(i)
			if seen[name] {
				t.Errorf("%s: duplicate link name %q", spec, name)
			}
			seen[name] = true
		}
	}
}
