// Application and platform design experiments of paper Section 5:
// Htile tuning (Figure 5), platform sizing (Figure 6), partition-size
// throughput and the R/X, R²/X metrics (Figures 7–9), cores-per-node
// design (Figure 10), bottleneck breakdown (Figure 11), and the pipelined
// energy-group sweep re-design (Figure 12). Also the Table 4 baseline
// model comparison and the Figure 2 sweep-structure summary.
package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/wavefront"
)

func init() {
	Register("fig5", func(quick bool) (Table, error) { return Fig5() })
	Register("fig6", func(quick bool) (Table, error) { return Fig6(quick) })
	Register("fig7", func(quick bool) (Table, error) { return Fig7() })
	Register("fig8", func(quick bool) (Table, error) { return Fig8() })
	Register("fig9", func(quick bool) (Table, error) { return Fig9() })
	Register("fig10", func(quick bool) (Table, error) { return Fig10() })
	Register("fig11", func(quick bool) (Table, error) { return Fig11() })
	Register("fig12", func(quick bool) (Table, error) { return Fig12() })
	Register("table4", func(quick bool) (Table, error) { return Table4() })
	Register("sweeps", func(quick bool) (Table, error) { return SweepStructures() })
}

// Production workload definitions (paper Section 5).
var (
	// Sweep3DBillion is the 10⁹-cell LANL problem.
	Sweep3DBillion = grid.NewGrid(1000, 1000, 1000)
	// Sweep3D20M is the 20-million-cell LANL problem.
	Sweep3D20M = grid.NewGrid(272, 272, 272)
	// Chimaera240 is AWE's largest cubic benchmark problem.
	Chimaera240 = grid.Cube(240)
)

// TimeSteps and energy-group scaling for production projections.
const (
	ProductionTimeSteps = 1e4
	EnergyGroups        = apps.Sweep3DEnergyGrps
)

// perStepMicros returns the execution time of one time step in µs for the
// benchmark on p cores of the machine (iterations per step × per-iteration
// time), optionally scaled by energy groups.
func perStepMicros(bm apps.Benchmark, mach machine.Machine, p int, groups float64) (float64, error) {
	model := core.New(bm.App, mach)
	rep, err := model.EvaluateP(p)
	if err != nil {
		return 0, err
	}
	return rep.Total * groups, nil
}

// Fig5 sweeps the tile height Htile for Chimaera 240³ and Sweep3D 20M on
// 4K and 16K processors (execution time per time step, seconds).
func Fig5() (Table, error) {
	mach := machine.XT4()
	t := Table{
		ID:    "fig5",
		Title: "Execution time vs Htile (Figure 5; per time step, seconds)",
		Columns: []string{"Htile", "Chimaera240 P=4K", "Chimaera240 P=16K",
			"Sweep3D20M P=4K", "Sweep3D20M P=16K"},
	}
	type curve struct {
		bm func(h int) apps.Benchmark
		p  int
	}
	curves := []curve{
		{func(h int) apps.Benchmark { return apps.Chimaera(Chimaera240, h) }, 4096},
		{func(h int) apps.Benchmark { return apps.Chimaera(Chimaera240, h) }, 16384},
		{func(h int) apps.Benchmark { return apps.Sweep3D(Sweep3D20M, h).WithIterations(480) }, 4096},
		{func(h int) apps.Benchmark { return apps.Sweep3D(Sweep3D20M, h).WithIterations(480) }, 16384},
	}
	best := make([]int, len(curves))
	bestT := make([]float64, len(curves))
	for i := range bestT {
		bestT[i] = -1
	}
	for h := 1; h <= 10; h++ {
		row := []string{fmt.Sprintf("%d", h)}
		for ci, c := range curves {
			us, err := perStepMicros(c.bm(h), mach, c.p, 1)
			if err != nil {
				return Table{}, err
			}
			if bestT[ci] < 0 || us < bestT[ci] {
				bestT[ci], best[ci] = us, h
			}
			row = append(row, f(us/1e6))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"minima at Htile = %d, %d, %d, %d (paper: 2–5 on the XT4, vs 5–10 on the higher-latency SP/2)",
		best[0], best[1], best[2], best[3]))
	return t, nil
}

// Fig6Point is one point of the platform sizing curve.
type Fig6Point struct {
	P             int
	PredictedDays float64
	MeasuredDays  float64 // <0 when not simulated
}

// Fig6Data computes the Sweep3D 10⁹ scaling curve (10⁴ time steps, 30
// energy groups, Htile = 2), with simulator "measurements" at the
// processor counts in simPs.
func Fig6Data(ps, simPs []int) ([]Fig6Point, error) {
	mach := machine.XT4()
	bm := apps.Sweep3D(Sweep3DBillion, 2)
	simSet := map[int]bool{}
	for _, p := range simPs {
		simSet[p] = true
	}
	out := make([]Fig6Point, 0, len(ps))
	for _, p := range ps {
		us, err := perStepMicros(bm, mach, p, EnergyGroups)
		if err != nil {
			return nil, err
		}
		pt := Fig6Point{P: p, PredictedDays: us * ProductionTimeSteps / 1e6 / 86400, MeasuredDays: -1}
		if simSet[p] {
			dec, err := grid.SquareDecomposition(bm.App.Grid, p)
			if err != nil {
				return nil, err
			}
			res, err := SimulateBenchmark(bm, mach, dec, 1)
			if err != nil {
				return nil, err
			}
			perStep := res.Time * float64(bm.App.Iterations) * EnergyGroups
			pt.MeasuredDays = perStep * ProductionTimeSteps / 1e6 / 86400
		}
		out = append(out, pt)
	}
	return out, nil
}

// Fig6 renders the execution-time-vs-system-size study.
func Fig6(quick bool) (Table, error) {
	ps := []int{1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072}
	simPs := []int{1024}
	if quick {
		simPs = nil
	}
	pts, err := Fig6Data(ps, simPs)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "fig6",
		Title:   "Sweep3D 10⁹ cells, 10⁴ time steps, 30 energy groups, Htile=2 (Figure 6)",
		Columns: []string{"P", "predicted(days)", "simulated(days)"},
	}
	for _, p := range pts {
		meas := "-"
		if p.MeasuredDays >= 0 {
			meas = f(p.MeasuredDays)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", p.P), f(p.PredictedDays), meas})
	}
	t.Notes = append(t.Notes, "one simulated iteration scaled to the full production run (paper scales measured iterations the same way)")
	return t, nil
}

// sweep3DBillionEval returns an Evaluator for the per-10⁴-step runtime of
// the Sweep3D 10⁹ problem.
func sweep3DBillionEval(mach machine.Machine) metrics.Evaluator {
	bm := apps.Sweep3D(Sweep3DBillion, 2)
	return func(p int) (float64, error) {
		us, err := perStepMicros(bm, mach, p, EnergyGroups)
		if err != nil {
			return 0, err
		}
		return us * ProductionTimeSteps, nil
	}
}

// Fig7 tabulates time steps solved per month per problem when partitioning
// the available processors among 1–8 (Sweep3D) or 1–16 (Chimaera) parallel
// simulations.
func Fig7() (Table, error) {
	mach := machine.XT4()
	t := Table{
		ID:      "fig7",
		Title:   "Throughput vs partition size (Figure 7; time steps/problem/month)",
		Columns: []string{"problem", "Pavail", "jobs=1", "jobs=2", "jobs=4", "jobs=8", "jobs=16"},
	}
	addRows := func(name string, pavails, jobs []int, perStep func(p int) (float64, error)) error {
		for _, pav := range pavails {
			row := []string{name, fmt.Sprintf("%d", pav)}
			for _, j := range jobs {
				us, err := perStep(pav / j)
				if err != nil {
					return err
				}
				row = append(row, f(metrics.TimeStepsPerMonth(us)))
			}
			for len(row) < len(t.Columns) {
				row = append(row, "-")
			}
			t.Rows = append(t.Rows, row)
		}
		return nil
	}
	s3d := apps.Sweep3D(Sweep3DBillion, 2)
	if err := addRows("Sweep3D 1e9", []int{32768, 65536, 131072}, []int{1, 2, 4, 8},
		func(p int) (float64, error) { return perStepMicros(s3d, mach, p, EnergyGroups) }); err != nil {
		return Table{}, err
	}
	chi := apps.Chimaera(Chimaera240, 2)
	if err := addRows("Chimaera 240³", []int{16384, 32768}, []int{1, 2, 4, 8, 16},
		func(p int) (float64, error) { return perStepMicros(chi, mach, p, 1) }); err != nil {
		return Table{}, err
	}
	return t, nil
}

// Fig8 plots R/X and R²/X against partition size for the Sweep3D 10⁹
// problem on 128K cores.
func Fig8() (Table, error) {
	eval := sweep3DBillionEval(machine.XT4())
	points, err := metrics.Partitions(131072, []int{32, 16, 8, 4, 2, 1}, eval)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "fig8",
		Title:   "Optimizing partition size, Sweep3D 10⁹ on 128K cores (Figure 8)",
		Columns: []string{"partition P", "jobs", "R(days)", "R/X (norm)", "R²/X (norm)"},
	}
	minRX, minR2X := points[0].RoverX, points[0].R2overX
	for _, p := range points[1:] {
		if p.RoverX < minRX {
			minRX = p.RoverX
		}
		if p.R2overX < minR2X {
			minR2X = p.R2overX
		}
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Partition), fmt.Sprintf("%d", p.Jobs),
			f(p.R / 1e6 / 86400), f(p.RoverX / minRX), f(p.R2overX / minR2X),
		})
	}
	rx, _ := metrics.Optimal(points, metrics.MinRoverX)
	r2x, _ := metrics.Optimal(points, metrics.MinR2overX)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"min R/X at partition %d (paper: 16K); min R²/X at partition %d (paper: 64K)",
		rx.Partition, r2x.Partition))
	return t, nil
}

// Fig9 reports the optimal number of parallel simulations on each platform
// size under both criteria.
func Fig9() (Table, error) {
	eval := sweep3DBillionEval(machine.XT4())
	t := Table{
		ID:      "fig9",
		Title:   "Optimized number of parallel simulations, Sweep3D 10⁹ (Figure 9)",
		Columns: []string{"Pavail", "jobs @ min R/X", "jobs @ min R²/X"},
	}
	for _, pav := range []int{16384, 32768, 65536, 131072} {
		a, err := metrics.OptimalJobs(pav, 4096, metrics.MinRoverX, eval)
		if err != nil {
			return Table{}, err
		}
		b, err := metrics.OptimalJobs(pav, 4096, metrics.MinR2overX, eval)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pav), fmt.Sprintf("%d", a.Jobs), fmt.Sprintf("%d", b.Jobs),
		})
	}
	return t, nil
}

// Fig10 evaluates the multi-core node design space: execution time of the
// Sweep3D 10⁹ production run versus node count for 1–16 cores per node,
// plus the 16-core node with four independent bus groups (Section 5.3).
func Fig10() (Table, error) {
	bm := apps.Sweep3D(Sweep3DBillion, 2)
	t := Table{
		ID:      "fig10",
		Title:   "Execution time on multi-core nodes, Sweep3D 10⁹, 10⁴ steps (Figure 10; days)",
		Columns: []string{"nodes", "1 core", "2 cores", "4 cores", "8 cores", "16 cores", "16 cores/4 buses"},
	}
	for _, nodes := range []int{8192, 16384, 32768, 65536, 131072} {
		row := []string{fmt.Sprintf("%d", nodes)}
		for _, cores := range []int{1, 2, 4, 8, 16} {
			mach, err := machine.XT4MultiCore(cores)
			if err != nil {
				return Table{}, err
			}
			us, err := perStepMicros(bm, mach, nodes*cores, EnergyGroups)
			if err != nil {
				return Table{}, err
			}
			row = append(row, f(us*ProductionTimeSteps/1e6/86400))
		}
		mach, err := machine.XT4MultiCoreGrouped(16, 4)
		if err != nil {
			return Table{}, err
		}
		us, err := perStepMicros(bm, mach, nodes*16, EnergyGroups)
		if err != nil {
			return Table{}, err
		}
		row = append(row, f(us*ProductionTimeSteps/1e6/86400))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"beyond 4 cores on one shared bus, contention erodes the benefit (paper Section 5.3); 4-core bus groups recover it")
	return t, nil
}

// Fig11Point is one cost-breakdown point.
type Fig11Point struct {
	P                             int
	TotalDays, CompDays, CommDays float64
}

// Fig11Data computes the Chimaera cost breakdown across processor counts.
func Fig11Data(ps []int) ([]Fig11Point, error) {
	mach := machine.XT4()
	bm := apps.Chimaera(Chimaera240, 2)
	out := make([]Fig11Point, 0, len(ps))
	for _, p := range ps {
		model := core.New(bm.App, mach)
		rep, err := model.EvaluateP(p)
		if err != nil {
			return nil, err
		}
		scale := ProductionTimeSteps / 1e6 / 86400
		out = append(out, Fig11Point{
			P:         p,
			TotalDays: rep.Total * scale,
			CompDays:  rep.ComputePerIter * float64(bm.App.Iterations) * scale,
			CommDays:  rep.CommPerIter * float64(bm.App.Iterations) * scale,
		})
	}
	return out, nil
}

// Fig11 renders the computation/communication breakdown.
func Fig11() (Table, error) {
	pts, err := Fig11Data([]int{1024, 4096, 8192, 16384, 32768})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "fig11",
		Title:   "Cost breakdown, Chimaera 240³, 10⁴ time steps (Figure 11; days)",
		Columns: []string{"P", "total", "computation", "communication", "comm share"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.P), f(p.TotalDays), f(p.CompDays), f(p.CommDays),
			fmt.Sprintf("%.1f%%", p.CommDays/p.TotalDays*100),
		})
	}
	t.Notes = append(t.Notes,
		"the crossover where communication dominates marks the point of strongly diminishing returns (Section 5.4)")
	return t, nil
}

// Fig12 evaluates the pipelined energy-group sweep re-design on a fixed
// per-processor problem of 4×4×1000 cells with 30 energy groups: the
// sequential design solves each group to convergence separately (30 × the
// per-iteration fills), while the pipelined design performs all 240 sweeps
// per iteration with nfull = 2 and ndiag = 2 (Section 5.5).
func Fig12() (Table, error) {
	mach := machine.XT4()
	t := Table{
		ID:      "fig12",
		Title:   "Pipeline fill re-design, Sweep3D 4×4×1000 cells/processor, 30 groups, 10⁴ steps (Figure 12; days)",
		Columns: []string{"P", "sequential total", "pipelined total", "sequential fill time", "fill share"},
	}
	for _, p := range []int{1024, 4096, 16384, 65536} {
		n, m := squareFactors(p)
		g := grid.NewGrid(4*n, 4*m, 1000)
		seqBM := apps.Sweep3D(g, 2)
		pipBM := seqBM
		pipBM.App = pipBM.App.WithSweepStructure(8*EnergyGroups, 2, 2)
		decP := grid.MustDecompose(g, n, m)

		seqRep, err := core.New(seqBM.App, mach).Evaluate(decP)
		if err != nil {
			return Table{}, err
		}
		pipRep, err := core.New(pipBM.App, mach).Evaluate(decP)
		if err != nil {
			return Table{}, err
		}
		scale := ProductionTimeSteps / 1e6 / 86400
		seqTotal := seqRep.Total * EnergyGroups * scale
		pipTotal := pipRep.Total * scale
		seqFill := seqRep.FillTimePerIter * float64(seqBM.App.Iterations) * EnergyGroups * scale
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p), f(seqTotal), f(pipTotal), f(seqFill),
			fmt.Sprintf("%.1f%%", seqFill/seqTotal*100),
		})
	}
	t.Notes = append(t.Notes,
		"pipelining the energy groups eliminates nearly all fill overhead if convergence needs no extra iterations (Section 5.5)")
	return t, nil
}

func squareFactors(p int) (n, m int) {
	m = 1
	for c := 1; c*c <= p; c++ {
		if p%c == 0 {
			m = c
		}
	}
	return p / m, m
}

// Table4 compares the previous Sweep3D-specific LogGP model (Table 4) with
// the plug-and-play model on identical configurations, on both the SP/2
// parameters it was built for and the XT4.
func Table4() (Table, error) {
	t := Table{
		ID:      "table4",
		Title:   "Baseline PPoPP'99 Sweep3D model (Table 4) vs plug-and-play model (per iteration, ms)",
		Columns: []string{"platform", "P", "baseline(ms)", "plug-and-play(ms)", "rel.diff", "sync terms(ms)"},
	}
	g := grid.Cube(96)
	for _, tc := range []struct {
		mach machine.Machine
		sync bool
	}{
		{machine.SP2(), true},
		{machine.XT4SingleCore(), false},
	} {
		for _, p := range []int{16, 64, 256} {
			dec, err := grid.SquareDecomposition(g, p)
			if err != nil {
				return Table{}, err
			}
			// Compare both models without synchronization terms — the
			// re-usable model omits them by design (Section 4.2) — and
			// report the baseline's per-block sync contribution separately.
			cfg := baseline.Sweep3DConfig{
				Grid: g, N: dec.N, M: dec.M,
				WgAngle: apps.GrindTime,
				MK:      4, MMI: 3, MMO: 6,
				Params: tc.mach.Params,
			}
			base, err := baseline.Evaluate(cfg)
			if err != nil {
				return Table{}, err
			}
			withSync := cfg
			withSync.SyncTerms = tc.sync
			baseSync, err := baseline.Evaluate(withSync)
			if err != nil {
				return Table{}, err
			}
			bm := apps.Sweep3D(g, cfg.MK*cfg.MMI/cfg.MMO).WithIterations(1)
			rep, err := core.New(bm.App, tc.mach).Evaluate(dec)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				tc.mach.Params.Name, fmt.Sprintf("%d", p),
				f(base.Total / 1e3), f(rep.TimePerIteration / 1e3),
				pct(stats.SignedRelErr(rep.TimePerIteration, base.Total)),
				f((baseSync.Total - base.Total) / 1e3),
			})
		}
	}
	t.Notes = append(t.Notes,
		"synchronization terms are significant on the SP/2 but negligible on the XT4 (paper Sections 2.3, 4.2)")
	return t, nil
}

// SweepStructures summarises the Figure 2 sweep corner sequences and the
// derived Table 3 structure parameters.
func SweepStructures() (Table, error) {
	t := Table{
		ID:      "sweeps",
		Title:   "Sweep structures and derived parameters (Figure 2, Table 3)",
		Columns: []string{"app", "corners", "nsweeps", "nfull", "ndiag"},
	}
	for _, tc := range []struct {
		name    string
		corners []grid.Corner
	}{
		{"LU", wavefront.LUCorners()},
		{"Sweep3D", wavefront.Sweep3DCorners()},
		{"Chimaera", wavefront.ChimaeraCorners()},
	} {
		ns, nf, nd := wavefront.Classify(tc.corners)
		seq := ""
		for i, c := range tc.corners {
			if i > 0 {
				seq += ","
			}
			seq += c.String()
		}
		t.Rows = append(t.Rows, []string{tc.name, seq,
			fmt.Sprintf("%d", ns), fmt.Sprintf("%d", nf), fmt.Sprintf("%d", nd)})
	}
	t.Notes = append(t.Notes, "Table 3 expects LU: 2/2/0, Sweep3D: 8/2/2, Chimaera: 8/4/2")
	return t, nil
}
