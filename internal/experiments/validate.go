// Validation experiments: the plug-and-play model against the
// discrete-event simulator for LU, Sweep3D and Chimaera, mirroring the
// paper's validation against the Cray XT4 (Section 4: <5% error for LU and
// <10% for the particle transport benchmarks in high-performance
// configurations).
package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/stats"
)

func init() {
	Register("validate", func(quick bool) (Table, error) { return Validate(quick) })
}

// ValidationPoint is one model-vs-simulator comparison.
type ValidationPoint struct {
	App       string
	P         int
	Model     float64 // µs
	Simulated float64 // µs
	RelErr    float64 // signed, (model − sim)/sim
}

// SimulateBenchmark runs iters iterations of the benchmark on the
// discrete-event simulator and returns the virtual execution time in µs.
func SimulateBenchmark(bm apps.Benchmark, mach machine.Machine, dec grid.Decomposition, iters int) (simmpi.Result, error) {
	sched, err := bm.WithIterations(iters).Schedule(dec, iters)
	if err != nil {
		return simmpi.Result{}, err
	}
	topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	sim := simmpi.New(topo)
	for r, p := range sched.Programs() {
		sim.SetProgram(r, p)
	}
	return sim.Run()
}

// CompareOne evaluates model and simulator for iters iterations of a
// benchmark at one processor count.
func CompareOne(bm apps.Benchmark, mach machine.Machine, p, iters int) (ValidationPoint, error) {
	dec, err := grid.SquareDecomposition(bm.App.Grid, p)
	if err != nil {
		return ValidationPoint{}, err
	}
	model := core.New(bm.WithIterations(iters).App, mach)
	rep, err := model.Evaluate(dec)
	if err != nil {
		return ValidationPoint{}, err
	}
	res, err := SimulateBenchmark(bm, mach, dec, iters)
	if err != nil {
		return ValidationPoint{}, err
	}
	return ValidationPoint{
		App:       bm.App.Name,
		P:         p,
		Model:     rep.Total,
		Simulated: res.Time,
		RelErr:    stats.SignedRelErr(rep.Total, res.Time),
	}, nil
}

// ValidationConfig controls the validation sweep.
type ValidationConfig struct {
	Machine machine.Machine
	Ps      []int
	Grid    grid.Grid
	Iters   int
}

// DefaultValidationConfig returns a configuration sized for tests (quick)
// or for the full benchmark harness.
func DefaultValidationConfig(quick bool) ValidationConfig {
	if quick {
		return ValidationConfig{
			Machine: machine.XT4(),
			Ps:      []int{16, 64},
			Grid:    grid.Cube(48),
			Iters:   2,
		}
	}
	return ValidationConfig{
		Machine: machine.XT4(),
		Ps:      []int{64, 256, 1024},
		Grid:    grid.Cube(96),
		Iters:   2,
	}
}

// ValidationBenchmarks returns the three paper benchmarks configured on a
// common validation grid.
func ValidationBenchmarks(g grid.Grid) []apps.Benchmark {
	return []apps.Benchmark{
		apps.LU(g),
		apps.Sweep3D(g, 2),
		apps.Chimaera(g, 1),
	}
}

// ValidateData runs the full model-vs-simulator sweep.
func ValidateData(cfg ValidationConfig) ([]ValidationPoint, error) {
	var out []ValidationPoint
	for _, bm := range ValidationBenchmarks(cfg.Grid) {
		for _, p := range cfg.Ps {
			pt, err := CompareOne(bm, cfg.Machine, p, cfg.Iters)
			if err != nil {
				return nil, fmt.Errorf("%s P=%d: %w", bm.App.Name, p, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// Validate renders the validation table.
func Validate(quick bool) (Table, error) {
	cfg := DefaultValidationConfig(quick)
	pts, err := ValidateData(cfg)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID: "validate",
		Title: fmt.Sprintf("Plug-and-play model vs discrete-event simulator (%s, grid %v, %d iterations)",
			cfg.Machine.Name, cfg.Grid, cfg.Iters),
		Columns: []string{"app", "P", "model(µs)", "simulated(µs)", "rel.err"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			p.App, fmt.Sprintf("%d", p.P), f(p.Model), f(p.Simulated), pct(p.RelErr),
		})
	}
	t.Notes = append(t.Notes,
		"paper reports <5% (LU) and <10% (transport) for configurations where computation dominates; larger errors when per-node problem size is small")
	return t, nil
}
