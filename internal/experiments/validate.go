// Validation experiments: the plug-and-play model against the
// discrete-event simulator for LU, Sweep3D and Chimaera, mirroring the
// paper's validation against the Cray XT4 (Section 4: <5% error for LU and
// <10% for the particle transport benchmarks in high-performance
// configurations).
package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/campaign"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/stats"
)

func init() {
	Register("validate", func(quick bool) (Table, error) { return Validate(quick) })
}

// ValidationPoint is one model-vs-simulator comparison.
type ValidationPoint struct {
	App       string
	P         int
	Model     float64 // µs
	Simulated float64 // µs
	RelErr    float64 // signed, (model − sim)/sim
}

// SimulateBenchmark runs iters iterations of the benchmark on the
// discrete-event simulator and returns the virtual execution time in µs.
// The machine's interconnect spec, if any, is honoured: off-node traffic
// then routes over contended torus or fat-tree links.
func SimulateBenchmark(bm apps.Benchmark, mach machine.Machine, dec grid.Decomposition, iters int) (simmpi.Result, error) {
	sched, err := bm.WithIterations(iters).Schedule(dec, iters)
	if err != nil {
		return simmpi.Result{}, err
	}
	topo, err := simnet.NewMachineTopology(mach, dec)
	if err != nil {
		return simmpi.Result{}, err
	}
	sim := simmpi.New(topo)
	for r, p := range sched.Programs() {
		sim.SetProgram(r, p)
	}
	return sim.Run()
}

// CompareOne evaluates model and simulator for iters iterations of a
// benchmark at one processor count.
func CompareOne(bm apps.Benchmark, mach machine.Machine, p, iters int) (ValidationPoint, error) {
	dec, err := grid.SquareDecomposition(bm.App.Grid, p)
	if err != nil {
		return ValidationPoint{}, err
	}
	model := core.New(bm.WithIterations(iters).App, mach)
	rep, err := model.Evaluate(dec)
	if err != nil {
		return ValidationPoint{}, err
	}
	res, err := SimulateBenchmark(bm, mach, dec, iters)
	if err != nil {
		return ValidationPoint{}, err
	}
	return ValidationPoint{
		App:       bm.App.Name,
		P:         p,
		Model:     rep.Total,
		Simulated: res.Time,
		RelErr:    stats.SignedRelErr(rep.Total, res.Time),
	}, nil
}

// ValidationConfig controls the validation sweep.
type ValidationConfig struct {
	Machine machine.Machine
	Ps      []int
	Grid    grid.Grid
	Iters   int
}

// DefaultValidationConfig returns a configuration sized for tests (quick)
// or for the full benchmark harness.
func DefaultValidationConfig(quick bool) ValidationConfig {
	if quick {
		return ValidationConfig{
			Machine: machine.XT4(),
			Ps:      []int{16, 64},
			Grid:    grid.Cube(48),
			Iters:   2,
		}
	}
	return ValidationConfig{
		Machine: machine.XT4(),
		Ps:      []int{64, 256, 1024},
		Grid:    grid.Cube(96),
		Iters:   2,
	}
}

// ValidationBenchmarks returns the three paper benchmarks configured on a
// common validation grid.
func ValidationBenchmarks(g grid.Grid) []apps.Benchmark {
	return []apps.Benchmark{
		apps.LU(g),
		apps.Sweep3D(g, 2),
		apps.Chimaera(g, 1),
	}
}

// ValidationSpec expresses the validation sweep as a declarative campaign:
// the three Table 3 benchmarks on the validation grid, the validation
// machine, and every processor count — the paper table as "just another
// campaign". The machine's LogGP parameters and node shape carry over; the
// core rectangle is re-derived from the core count (all validation machines
// use the paper's standard rectangles).
func ValidationSpec(cfg ValidationConfig) campaign.Spec {
	g := config.GridSpec{Nx: cfg.Grid.Nx, Ny: cfg.Grid.Ny, Nz: cfg.Grid.Nz}
	prm := cfg.Machine.Params
	return campaign.Spec{
		Name:       "validate",
		Iterations: cfg.Iters,
		Apps: []campaign.AppDim{
			{Preset: "lu", Grid: &g},
			{Preset: "sweep3d", Grid: &g, Htile: 2},
			{Preset: "chimaera", Grid: &g, Htile: 1},
		},
		Machines: []campaign.MachineDim{{
			MachineSpec: config.MachineSpec{
				Params:       &prm,
				CoresPerNode: cfg.Machine.CoresPerNode,
				BusGroups:    cfg.Machine.BusGroups,
			},
			Label: cfg.Machine.Name,
		}},
		Ranks: cfg.Ps,
	}
}

// ValidateData runs the full model-vs-simulator sweep through the campaign
// engine: the spec above expands to apps × processor counts in the same
// order the hand-written loop used, and the worker pool executes the runs
// in parallel with bit-identical results.
func ValidateData(cfg ValidationConfig) ([]ValidationPoint, error) {
	// The campaign machine spec derives the core rectangle from the core
	// count; refuse configs it cannot represent rather than silently
	// simulating a different placement.
	if cx, cy, err := machine.CoreRectangle(cfg.Machine.CoresPerNode); err != nil ||
		cx != cfg.Machine.Cx || cy != cfg.Machine.Cy {
		return nil, fmt.Errorf(
			"experiments: machine %q uses a non-standard %dx%d core rectangle (campaign specs derive %dx%d from %d cores); use CompareOne directly",
			cfg.Machine.Name, cfg.Machine.Cx, cfg.Machine.Cy, cx, cy, cfg.Machine.CoresPerNode)
	}
	results, err := campaign.Engine{}.ExecuteSpec(ValidationSpec(cfg))
	if err != nil {
		return nil, err
	}
	out := make([]ValidationPoint, len(results))
	for i, r := range results {
		out[i] = ValidationPoint{
			App:       r.App,
			P:         r.P,
			Model:     r.ModelMicros,
			Simulated: r.SimMicros,
			RelErr:    r.RelErr,
		}
	}
	return out, nil
}

// Validate renders the validation table.
func Validate(quick bool) (Table, error) {
	cfg := DefaultValidationConfig(quick)
	pts, err := ValidateData(cfg)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID: "validate",
		Title: fmt.Sprintf("Plug-and-play model vs discrete-event simulator (%s, grid %v, %d iterations)",
			cfg.Machine.Name, cfg.Grid, cfg.Iters),
		Columns: []string{"app", "P", "model(µs)", "simulated(µs)", "rel.err"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			p.App, fmt.Sprintf("%d", p.P), f(p.Model), f(p.Simulated), pct(p.RelErr),
		})
	}
	t.Notes = append(t.Notes,
		"paper reports <5% (LU) and <10% (transport) for configurations where computation dominates; larger errors when per-node problem size is small")
	return t, nil
}
