// Communication experiments: Table 2 (XT4 LogGP parameter derivation),
// Figure 3 (measured vs modeled MPI end-to-end times, off-node and
// on-chip), and the all-reduce model validation (equation (9)).
package experiments

import (
	"fmt"

	"repro/internal/fitting"
	"repro/internal/logp"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/stats"
)

func init() {
	Register("table2", func(quick bool) (Table, error) { return Table2() })
	Register("fig3a", func(quick bool) (Table, error) { return Fig3(logp.OffNode) })
	Register("fig3b", func(quick bool) (Table, error) { return Fig3(logp.OnChip) })
	Register("allreduce", func(quick bool) (Table, error) { return AllReduceValidation(quick) })
}

// Table2 reruns the paper's parameter derivation on the simulated platform
// and compares the recovered values against the injected Table 2 constants.
func Table2() (Table, error) {
	mach := machine.XT4()
	d, err := fitting.DeriveTable2(mach)
	if err != nil {
		return Table{}, err
	}
	ref := mach.Params
	t := Table{
		ID:      "table2",
		Title:   "XT4 communication parameters derived from simulated ping-pong (paper Table 2)",
		Columns: []string{"parameter", "derived", "paper", "rel.err"},
	}
	add := func(name string, got, want float64) {
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%.6g", got), fmt.Sprintf("%.6g", want),
			pct(stats.SignedRelErr(got, want))})
	}
	add("G (µs/byte)", d.G, ref.G)
	add("L (µs)", d.L, ref.L)
	add("o (µs)", d.O, ref.O)
	add("Gcopy (µs/byte)", d.Gcopy, ref.Gcopy)
	add("Gdma (µs/byte)", d.Gdma, ref.Gdma)
	add("ocopy (µs)", d.Ocopy, ref.Ocopy)
	add("o on-chip (µs)", d.Ochip, ref.Ochip)
	t.Notes = append(t.Notes,
		"derived by fitting slopes and solving Table 1 equations simultaneously, as in Section 3")
	return t, nil
}

// Fig3Point is one point of the Figure 3 curves.
type Fig3Point struct {
	Bytes     int
	Simulated float64 // "measured" half round-trip, µs
	Model     float64 // Table 1 prediction, µs
}

// Fig3Data returns the measured-vs-model curve for one communication path.
func Fig3Data(path logp.Path) ([]Fig3Point, stats.ErrorSummary, error) {
	mach := machine.XT4()
	sizes := fitting.DefaultSizes()
	meas, err := fitting.Sweep(mach, path, sizes, 4)
	if err != nil {
		return nil, stats.ErrorSummary{}, err
	}
	model := fitting.ModelCurve(mach.Params, path, sizes)
	pts := make([]Fig3Point, len(sizes))
	pred := make([]float64, len(sizes))
	act := make([]float64, len(sizes))
	for i := range sizes {
		pts[i] = Fig3Point{Bytes: sizes[i], Simulated: meas[i].Time, Model: model[i].Time}
		pred[i], act[i] = model[i].Time, meas[i].Time
	}
	return pts, stats.Summarize(pred, act), nil
}

// Fig3 renders the Figure 3(a) (off-node) or 3(b) (on-chip) comparison.
func Fig3(path logp.Path) (Table, error) {
	pts, sum, err := Fig3Data(path)
	if err != nil {
		return Table{}, err
	}
	id, fig := "fig3a", "3(a) inter-node"
	if path == logp.OnChip {
		id, fig = "fig3b", "3(b) intra-node"
	}
	t := Table{
		ID:      id,
		Title:   fmt.Sprintf("MPI end-to-end communication time, Figure %s", fig),
		Columns: []string{"bytes", "simulated(µs)", "model(µs)", "rel.err"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Bytes), f(p.Simulated), f(p.Model),
			pct(stats.SignedRelErr(p.Model, p.Simulated)),
		})
	}
	t.Notes = append(t.Notes, "model vs simulated ping-pong: "+sum.String())
	return t, nil
}

// AllReducePoint compares equation (9) with the simulated recursive-
// doubling all-reduce at one processor count.
type AllReducePoint struct {
	P, C      int
	Simulated float64
	Model     float64
}

// AllReduceData validates the all-reduce model over a sweep of processor
// counts on dual-core nodes (the paper reports <2% error up to 1024 nodes).
func AllReduceData(ps []int) ([]AllReducePoint, error) {
	mach := machine.XT4()
	out := make([]AllReducePoint, 0, len(ps))
	for _, p := range ps {
		topo := simnet.NewTopology(mach.Params, p, simnet.LinearPlacement(mach))
		sim := simmpi.New(topo)
		for r := 0; r < p; r++ {
			sim.SetProgram(r, simmpi.Ops(simmpi.AllReduce(8)))
		}
		res, err := sim.Run()
		if err != nil {
			return nil, err
		}
		out = append(out, AllReducePoint{
			P:         p,
			C:         mach.CoresPerNode,
			Simulated: res.Time,
			Model:     mach.Params.AllReduceDouble(p, mach.CoresPerNode),
		})
	}
	return out, nil
}

// AllReduceValidation renders the all-reduce comparison table.
func AllReduceValidation(quick bool) (Table, error) {
	ps := []int{4, 16, 64, 256, 1024, 2048}
	if quick {
		ps = []int{4, 16, 64, 256}
	}
	pts, err := AllReduceData(ps)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "allreduce",
		Title:   "MPI all-reduce: equation (9) vs simulated recursive doubling",
		Columns: []string{"P", "cores/node", "simulated(µs)", "model(µs)", "rel.err"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.P), fmt.Sprintf("%d", p.C),
			f(p.Simulated), f(p.Model), pct(stats.SignedRelErr(p.Model, p.Simulated)),
		})
	}
	t.Notes = append(t.Notes,
		"equation (9) charges C× the per-stage cost for NIC sharing; recursive doubling overlaps more, so the closed form is an upper bound")
	return t, nil
}
