// Topology experiment: the paper's Table 6 quantifies the abstraction
// error of modelling node-internal contention with a closed form; this
// driver asks the same question about the off-node network. The analytic
// model assumes an uncontended flat wire (o + size×G + L per message,
// Section 3.1) — here it is held fixed while the simulator routes every
// off-node DMA over explicit torus or fat-tree links (internal/topo), so
// the error column isolates what the flat-wire abstraction hides.
package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/topo"
)

func init() {
	Register("topology", func(quick bool) (Table, error) { return Topology(quick) })
}

// TopologyPoint compares the flat-wire model against the simulator on one
// interconnect at one rank count.
type TopologyPoint struct {
	Spec      topo.Spec
	P         int
	Model     float64 // µs, uncontended LogGP prediction
	Simulated float64 // µs, with routed link contention
	LinkWait  float64 // total link queueing delay, µs
	LinkHops  uint64  // link acquisitions (hops crossed by all messages)
	MaxUtil   float64 // hottest link's busy/makespan ratio (0 on the flat wire)
}

// TopologyData sweeps interconnect specs × rank counts for one benchmark.
func TopologyData(bm apps.Benchmark, cores int, specs []topo.Spec, ranks []int) ([]TopologyPoint, error) {
	bm = bm.WithIterations(1) // model and simulator compare one iteration
	base, err := machine.XT4MultiCore(cores)
	if err != nil {
		return nil, err
	}
	var out []TopologyPoint
	for _, spec := range specs {
		mach := base.WithInterconnect(spec)
		for _, p := range ranks {
			dec, err := grid.SquareDecomposition(bm.App.Grid, p)
			if err != nil {
				return nil, err
			}
			rep, err := core.New(bm.App, mach).Evaluate(dec)
			if err != nil {
				return nil, err
			}
			// Built inline (not via SimulateBenchmark) to keep the topology
			// handle: the hottest link's utilisation needs per-link stats.
			sched, err := bm.Schedule(dec, 1)
			if err != nil {
				return nil, err
			}
			t, err := simnet.NewMachineTopology(mach, dec)
			if err != nil {
				return nil, err
			}
			sim := simmpi.New(t)
			for r, prog := range sched.Programs() {
				sim.SetProgram(r, prog)
			}
			res, err := sim.Run()
			if err != nil {
				return nil, err
			}
			pt := TopologyPoint{
				Spec:      spec,
				P:         p,
				Model:     rep.Total,
				Simulated: res.Time,
				LinkWait:  res.LinkWait,
				LinkHops:  res.LinkRequests,
			}
			if ic := t.Interconnect(); ic != nil && res.Time > 0 {
				pt.MaxUtil = ic.MaxLinkBusy() / res.Time
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// Topology renders the off-node abstraction-error study.
func Topology(quick bool) (Table, error) {
	g := grid.Cube(24)
	ranks := []int{16, 64}
	if !quick {
		g = grid.Cube(32)
		ranks = []int{16, 64, 256}
	}
	bm := apps.Sweep3D(g, 2)
	specs := []topo.Spec{
		{}, // flat wire
		{Kind: topo.Torus2D},
		{Kind: topo.Torus3D},
		{Kind: topo.FatTree},
	}
	pts, err := TopologyData(bm, 2, specs, ranks)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "topology",
		Title:   fmt.Sprintf("Off-node abstraction error: flat-wire model vs routed interconnects (Sweep3D %v, 2 cores/node)", g),
		Columns: []string{"topology", "P", "model(µs)", "simulated(µs)", "model err", "link hops", "link delay(µs)", "max link util"},
	}
	for _, pt := range pts {
		name := pt.Spec.String()
		maxUtil := "-"
		if pt.Spec.Kind == topo.Bus {
			name = "flat wire"
		} else {
			maxUtil = fmt.Sprintf("%.2f%%", 100*pt.MaxUtil)
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", pt.P),
			f(pt.Model), f(pt.Simulated),
			pct(stats.SignedRelErr(pt.Model, pt.Simulated)),
			fmt.Sprintf("%d", pt.LinkHops), f(pt.LinkWait), maxUtil,
		})
	}
	t.Notes = append(t.Notes,
		"the model column is identical across topologies by construction (uncontended LogGP); the simulated column moves with per-link queueing and per-hop latency",
		"wavefront traffic is nearest-neighbour, so the flat-wire abstraction holds well until rank counts push many messages through the same links")
	return t, nil
}
