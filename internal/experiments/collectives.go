// Collectives experiment: the abstraction-error question of paper Table 6
// asked of collective algorithms. Each simulated algorithm — binomial-tree
// broadcast, ring and recursive-doubling all-reduce, dissemination barrier
// — executes its point-to-point constituents on the discrete-event
// simulator (buses and, when configured, interconnect links contended),
// while the closed-form LogGP model of internal/coll prices the same
// algorithm analytically. The error column isolates what the closed form's
// uncontended-round assumption hides.
package experiments

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/stats"
)

func init() {
	Register("collectives", func(quick bool) (Table, error) { return Collectives(quick) })
}

// CollectivePoint compares one collective algorithm's closed form against
// its simulation at one rank count.
type CollectivePoint struct {
	Collective coll.Collective
	P          int
	Model      float64 // µs, closed-form LogGP cost
	Simulated  float64 // µs, discrete-event completion time
	Messages   uint64  // point-to-point constituents injected
	BusWait    float64 // total bus queueing of the constituents, µs
}

// CollectivesData sweeps collectives × rank counts on one machine with a
// reused simulator.
func CollectivesData(m machine.Machine, cs []coll.Collective, ranks []int) ([]CollectivePoint, error) {
	var r coll.Runner
	var out []CollectivePoint
	for _, c := range cs {
		for _, p := range ranks {
			res, err := r.Run(m, p, c)
			if err != nil {
				return nil, err
			}
			out = append(out, CollectivePoint{
				Collective: c,
				P:          p,
				Model:      c.Model(m, p),
				Simulated:  res.Time,
				Messages:   res.Sends,
				BusWait:    res.BusWait,
			})
		}
	}
	return out, nil
}

// Collectives renders the collective abstraction-error study.
func Collectives(quick bool) (Table, error) {
	ranks := []int{8, 16}
	if !quick {
		ranks = []int{16, 64, 256}
	}
	m := machine.XT4()
	cs := []coll.Collective{
		{Kind: coll.Bcast, Alg: simmpi.AlgBinomial, Bytes: 65536},
		{Kind: coll.Allreduce, Alg: simmpi.AlgRing, Bytes: 65536},
		{Kind: coll.Allreduce, Alg: simmpi.AlgRecDouble, Bytes: 65536},
		{Kind: coll.Allreduce, Alg: simmpi.AlgRing, Bytes: 8},
		{Kind: coll.Allreduce, Alg: simmpi.AlgRecDouble, Bytes: 8},
		{Kind: coll.Barrier},
	}
	pts, err := CollectivesData(m, cs, ranks)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "collectives",
		Title:   fmt.Sprintf("Collective algorithms: closed-form LogGP vs simulated p2p constituents (%s)", m.Name),
		Columns: []string{"collective", "P", "model(µs)", "simulated(µs)", "model err", "messages", "bus wait(µs)"},
	}
	for _, pt := range pts {
		t.Rows = append(t.Rows, []string{
			pt.Collective.String(),
			fmt.Sprintf("%d", pt.P),
			f(pt.Model), f(pt.Simulated),
			pct(stats.SignedRelErr(pt.Model, pt.Simulated)),
			fmt.Sprintf("%d", pt.Messages), f(pt.BusWait),
		})
	}
	t.Notes = append(t.Notes,
		"the closed form prices rounds as uncontended LogGP exchanges plus a shared-bus interference term; skew between ranks and queueing beyond one round are what the error column measures",
		"ring pays 2(P−1) rounds of bytes/P chunks, recursive doubling log2(P) rounds of full payloads: small payloads favour recursive doubling, large ones the ring (cmd/collplan locates the crossover)")
	return t, nil
}
