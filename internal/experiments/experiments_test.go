package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/logp"
)

func TestRegistryHasAllPaperArtefacts(t *testing.T) {
	want := []string{
		"table2", "fig3a", "fig3b", "allreduce", "validate",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"table4", "sweeps", "topology", "collectives",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", true); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "bbbb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"hello"},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "bbbb", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestTable2Experiment(t *testing.T) {
	tab, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	// Every derived parameter within 0.5% of the injected value.
	for _, row := range tab.Rows {
		if !strings.Contains(row[3], "0.00%") {
			t.Errorf("parameter %s off: %v", row[0], row[3])
		}
	}
}

func TestFig3Experiments(t *testing.T) {
	for _, path := range []logp.Path{logp.OffNode, logp.OnChip} {
		pts, sum, err := Fig3Data(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) == 0 {
			t.Fatal("no points")
		}
		// Uncontended simulation follows Table 1 exactly.
		if sum.MaxAbs > 1e-9 {
			t.Errorf("%v: model/sim mismatch %v", path, sum)
		}
		// Times increase with size within each protocol segment and jump
		// at the threshold.
		for i := 1; i < len(pts); i++ {
			if pts[i].Simulated < pts[i-1].Simulated-1e-9 &&
				pts[i-1].Bytes != 1024 {
				t.Errorf("%v: non-monotone at %d bytes", path, pts[i].Bytes)
			}
		}
	}
}

func TestAllReduceExperiment(t *testing.T) {
	pts, err := AllReduceData([]int{4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Simulated <= 0 || p.Model <= 0 {
			t.Errorf("P=%d: non-positive times %+v", p.P, p)
		}
		// Equation (9) is an upper bound (serialised NIC sharing); the
		// simulated recursive doubling must not exceed ~1.1× of it and
		// should be at least the C=1 lower bound.
		if p.Simulated > p.Model*1.1 {
			t.Errorf("P=%d: simulated %v far above model %v", p.P, p.Simulated, p.Model)
		}
	}
}

func TestValidationWithinPaperBounds(t *testing.T) {
	cfg := DefaultValidationConfig(true)
	pts, err := ValidateData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 { // 3 apps × 2 processor counts
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		bound := 0.12
		if p.App == "LU" {
			bound = 0.08
		}
		if p.RelErr < -bound || p.RelErr > bound {
			t.Errorf("%s P=%d: model error %.2f%% outside ±%.0f%%",
				p.App, p.P, p.RelErr*100, bound*100)
		}
	}
}

func TestQuickDriversRun(t *testing.T) {
	// Every registered driver must succeed in quick mode; the heavier ones
	// are exercised individually elsewhere.
	if testing.Short() {
		t.Skip("runs every driver")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, true)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Error("no rows")
			}
			if tab.ID != id {
				t.Errorf("table id %q", tab.ID)
			}
		})
	}
}

func TestFig6DataShape(t *testing.T) {
	pts, err := Fig6Data([]int{1024, 4096, 16384}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Diminishing but monotone improvement.
	for i := 1; i < len(pts); i++ {
		if pts[i].PredictedDays >= pts[i-1].PredictedDays {
			t.Errorf("no improvement at P=%d", pts[i].P)
		}
	}
	speedup := pts[0].PredictedDays / pts[2].PredictedDays
	if speedup < 4 || speedup > 16 {
		t.Errorf("16× processors gave %vx speedup", speedup)
	}
}

func TestFig11CommunicationEventuallyDominates(t *testing.T) {
	pts, err := Fig11Data([]int{1024, 32768})
	if err != nil {
		t.Fatal(err)
	}
	small, large := pts[0], pts[1]
	if small.CommDays/small.TotalDays >= 0.5 {
		t.Errorf("communication already dominates at P=1024 (%.1f%%)",
			small.CommDays/small.TotalDays*100)
	}
	if large.CommDays/large.TotalDays <= 0.5 {
		t.Errorf("communication does not dominate at P=32768 (%.1f%%)",
			large.CommDays/large.TotalDays*100)
	}
}

// TestValidateCampaignParity pins the campaign-engine port of the
// validation driver to the direct CompareOne path: same apps, same order,
// bit-identical model and simulator numbers.
func TestValidateCampaignParity(t *testing.T) {
	cfg := DefaultValidationConfig(true)
	got, err := ValidateData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, bm := range ValidationBenchmarks(cfg.Grid) {
		for _, p := range cfg.Ps {
			want, err := CompareOne(bm, cfg.Machine, p, cfg.Iters)
			if err != nil {
				t.Fatal(err)
			}
			if i >= len(got) {
				t.Fatalf("campaign produced %d points, want more", len(got))
			}
			g := got[i]
			if g.App != want.App || g.P != want.P ||
				g.Model != want.Model || g.Simulated != want.Simulated {
				t.Errorf("point %d: campaign %+v != direct %+v", i, g, want)
			}
			i++
		}
	}
	if i != len(got) {
		t.Errorf("campaign produced %d extra points", len(got)-i)
	}
}
