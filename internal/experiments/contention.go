// Contention experiment: the paper claims a "more precise model of
// message contention in the multicore nodes than previous work" (Table 6:
// a fixed interference term I = odma + size×Gdma per interfering DMA).
// In the simulator, contention is emergent — DMAs queue FCFS on each
// node's shared bus — so this driver quantifies how well the closed form
// tracks the emergent queueing across core counts.
package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/stats"
)

func init() {
	Register("contention", func(quick bool) (Table, error) { return Contention(quick) })
}

// ContentionPoint compares model and simulator for one cores-per-node
// configuration.
type ContentionPoint struct {
	Cores        int
	ModelTotal   float64 // µs, with Table 6 terms
	NoContention float64 // µs, contention terms disabled
	Simulated    float64 // µs, emergent queueing
	BusWait      float64 // total simulated bus queueing delay, µs
	BusQueued    uint64  // number of delayed DMAs
}

// ContentionData sweeps cores per node at a fixed total core count.
func ContentionData(g grid.Grid, p int, coreCounts []int, iters int) ([]ContentionPoint, error) {
	out := make([]ContentionPoint, 0, len(coreCounts))
	bm := apps.Sweep3D(g, 2).WithIterations(iters)
	for _, cores := range coreCounts {
		mach, err := machine.XT4MultiCore(cores)
		if err != nil {
			return nil, err
		}
		dec, err := grid.SquareDecomposition(g, p)
		if err != nil {
			return nil, err
		}
		model := core.New(bm.App, mach)
		with, err := model.Evaluate(dec)
		if err != nil {
			return nil, err
		}
		model.Opts.NoContention = true
		without, err := model.Evaluate(dec)
		if err != nil {
			return nil, err
		}
		res, err := SimulateBenchmark(bm, mach, dec, iters)
		if err != nil {
			return nil, err
		}
		out = append(out, ContentionPoint{
			Cores:        cores,
			ModelTotal:   with.Total,
			NoContention: without.Total,
			Simulated:    res.Time,
			BusWait:      res.BusWait,
			BusQueued:    res.BusQueued,
		})
	}
	return out, nil
}

// Contention renders the emergent-vs-closed-form comparison.
func Contention(quick bool) (Table, error) {
	g := grid.Cube(48)
	p := 64
	iters := 1
	if !quick {
		g = grid.Cube(64)
		p = 256
	}
	pts, err := ContentionData(g, p, []int{1, 2, 4, 8}, iters)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID: "contention",
		Title: fmt.Sprintf("Shared-bus contention: Table 6 closed form vs emergent queueing (Sweep3D %v, P=%d)",
			g, p),
		Columns: []string{"cores/node", "model(µs)", "model no-cont(µs)", "simulated(µs)", "model err", "bus waits", "bus delay(µs)"},
	}
	for _, pt := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pt.Cores),
			f(pt.ModelTotal), f(pt.NoContention), f(pt.Simulated),
			pct(stats.SignedRelErr(pt.ModelTotal, pt.Simulated)),
			fmt.Sprintf("%d", pt.BusQueued), f(pt.BusWait),
		})
	}
	t.Notes = append(t.Notes,
		"the closed form charges every tile the worst-case interference; emergent queueing overlaps some of it, so the model errs high as cores/bus grow")
	return t, nil
}
