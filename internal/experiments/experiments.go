// Package experiments contains one driver per table and figure of the
// paper's evaluation (Sections 3 and 5). Each driver returns both typed
// results for tests/benchmarks and a formatted Table whose rows mirror the
// series the paper plots. The cmd/wavebench tool runs drivers by id.
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table in aligned plain text.
func (t Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Driver runs one experiment with default parameters. Drivers that support
// a fast mode receive quick == true when invoked from tests.
type Driver func(quick bool) (Table, error)

var registry = map[string]Driver{}
var registryOrder []string

// Register adds a driver under an experiment id (e.g. "fig5"). It panics
// on duplicates; registration happens in package init functions.
func Register(id string, d Driver) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate driver " + id)
	}
	registry[id] = d
	registryOrder = append(registryOrder, id)
}

// Run executes the driver registered under id.
func Run(id string, quick bool) (Table, error) {
	d, ok := registry[id]
	if !ok {
		return Table{}, fmt.Errorf("experiments: unknown experiment %q (available: %s)",
			id, strings.Join(IDs(), ", "))
	}
	return d(quick)
}

// IDs returns the registered experiment ids in registration order.
func IDs() []string {
	out := make([]string, len(registryOrder))
	copy(out, registryOrder)
	return out
}

// All runs every registered experiment.
func All(quick bool) ([]Table, error) {
	ids := IDs()
	sort.Strings(ids)
	tables := make([]Table, 0, len(ids))
	for _, id := range registryOrder {
		t, err := Run(id, quick)
		if err != nil {
			return tables, fmt.Errorf("experiment %s: %w", id, err)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.4g", v) }

// pct formats a ratio as a percentage.
func pct(v float64) string { return fmt.Sprintf("%+.2f%%", v*100) }
