package experiments

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wavefront"
)

// simulateCorners runs one iteration of a Sweep3D-like workload with an
// arbitrary sweep corner sequence and returns the simulated time.
func simulateCorners(t *testing.T, g grid.Grid, dec grid.Decomposition,
	mach machine.Machine, corners []grid.Corner) float64 {
	t.Helper()
	bm := apps.Sweep3D(g, 2)
	sched, err := bm.Schedule(dec, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched.Corners = corners
	topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	sim := simmpi.New(topo)
	for r := 0; r < dec.P(); r++ {
		sim.SetProgram(r, sched.Program(r))
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Time
}

// TestFig12EmergentValidation validates the Section 5.5 energy-group
// re-design end to end: the model's projection for the pipelined 8×G-sweep
// structure (nfull=2, ndiag=2, derived automatically from the corner
// sequence) must match the simulator's emergent behaviour.
func TestFig12EmergentValidation(t *testing.T) {
	const groups = 3
	g := grid.Cube(48)
	dec := grid.MustDecompose(g, 6, 6)
	mach := machine.XT4()
	base := apps.Sweep3D(g, 2).WithIterations(1)

	for _, tc := range []struct {
		name    string
		corners []grid.Corner
	}{
		{"sequential-groups", wavefront.SequentialGroupCorners(wavefront.Sweep3DCorners(), groups)},
		{"pipelined-groups", wavefront.PipelinedGroupCorners(wavefront.Sweep3DCorners(), groups)},
	} {
		app := base.App.FromCorners(tc.corners)
		rep, err := core.New(app, mach).Evaluate(dec)
		if err != nil {
			t.Fatal(err)
		}
		sim := simulateCorners(t, g, dec, mach, tc.corners)
		if re := stats.RelErr(rep.Total, sim); re > 0.12 {
			t.Errorf("%s: model %v vs sim %v (%.1f%%)", tc.name, rep.Total, sim, re*100)
		}
	}

	// The pipelined structure must save fill time in both model and sim.
	seqApp := base.App.FromCorners(wavefront.SequentialGroupCorners(wavefront.Sweep3DCorners(), groups))
	pipApp := base.App.FromCorners(wavefront.PipelinedGroupCorners(wavefront.Sweep3DCorners(), groups))
	if pipApp.NFull != 2 || pipApp.NDiag != 2 {
		t.Errorf("pipelined structure = nfull=%d ndiag=%d, want 2/2", pipApp.NFull, pipApp.NDiag)
	}
	if seqApp.NFull != 2*groups || seqApp.NDiag != 2*groups {
		t.Errorf("sequential structure = nfull=%d ndiag=%d", seqApp.NFull, seqApp.NDiag)
	}
	seqSim := simulateCorners(t, g, dec, mach, wavefront.SequentialGroupCorners(wavefront.Sweep3DCorners(), groups))
	pipSim := simulateCorners(t, g, dec, mach, wavefront.PipelinedGroupCorners(wavefront.Sweep3DCorners(), groups))
	if pipSim >= seqSim {
		t.Errorf("pipelined sim %v not faster than sequential %v", pipSim, seqSim)
	}
}

// TestMulticoreModelTracksSimulator exercises the Table 6 extensions: for
// 1, 2 and 4 cores per node, model error against the simulator stays
// within the paper's bounds on a compute-dominated configuration.
func TestMulticoreModelTracksSimulator(t *testing.T) {
	g := grid.Cube(64)
	for _, cores := range []int{1, 2, 4} {
		mach, err := machine.XT4MultiCore(cores)
		if err != nil {
			t.Fatal(err)
		}
		bm := apps.Sweep3D(g, 2)
		pt, err := CompareOne(bm, mach, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pt.RelErr) > 0.12 {
			t.Errorf("%d cores/node: model error %.2f%%", cores, pt.RelErr*100)
		}
	}
}

// TestTraceCommShareTracksModelBreakdown compares the model's Figure 11
// computation/communication split against the traced per-rank profile of
// the simulated execution.
func TestTraceCommShareTracksModelBreakdown(t *testing.T) {
	g := grid.Cube(48)
	bm := apps.Chimaera(g, 2).WithIterations(1)
	mach := machine.XT4()
	dec := grid.MustDecompose(g, 8, 8)
	rep, err := core.New(bm.App, mach).Evaluate(dec)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := bm.Schedule(dec, 1)
	if err != nil {
		t.Fatal(err)
	}
	topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	rec := trace.NewRecorder()
	sim, err := simmpi.NewWithOptions(topo, simmpi.Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	for r, p := range sched.Programs() {
		sim.SetProgram(r, p)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	sum := trace.Summarize(rec.Profile(dec.P()))
	modelShare := rep.CommPerIter / rep.TimePerIteration
	// The traced mean comm share includes pipeline-fill waiting unevenly
	// across ranks; require agreement within a factor of 2.5 and the same
	// qualitative regime (both minority shares at this size).
	if sum.MeanCommShare <= 0 || sum.MeanCommShare > 0.5 {
		t.Errorf("traced comm share = %v", sum.MeanCommShare)
	}
	ratio := sum.MeanCommShare / modelShare
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("traced share %v vs model share %v (ratio %v)", sum.MeanCommShare, modelShare, ratio)
	}
}

// TestHtileModelMinimumAgreesWithSimulator verifies the Figure 5 use case
// end to end on a small configuration: the Htile minimising the model also
// (nearly) minimises the simulated time.
func TestHtileModelMinimumAgreesWithSimulator(t *testing.T) {
	g := grid.NewGrid(32, 32, 48)
	dec := grid.MustDecompose(g, 8, 8)
	mach := machine.XT4()
	hs := []int{1, 2, 4, 8, 16}
	bestModel, bestSim := -1, -1
	var bmT, bsT float64
	simTimes := map[int]float64{}
	for _, h := range hs {
		bm := apps.Sweep3D(g, h).WithIterations(1)
		rep, err := core.New(bm.App, mach).Evaluate(dec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SimulateBenchmark(bm, mach, dec, 1)
		if err != nil {
			t.Fatal(err)
		}
		simTimes[h] = res.Time
		if bestModel < 0 || rep.Total < bmT {
			bestModel, bmT = h, rep.Total
		}
		if bestSim < 0 || res.Time < bsT {
			bestSim, bsT = h, res.Time
		}
	}
	// The model's chosen Htile must be within 5% of the simulator's true
	// optimum (the paper uses the model exactly this way).
	if loss := simTimes[bestModel]/bsT - 1; loss > 0.05 {
		t.Errorf("model picked Htile=%d (sim %.0f), true optimum Htile=%d (sim %.0f): %.1f%% loss",
			bestModel, simTimes[bestModel], bestSim, bsT, loss*100)
	}
}
