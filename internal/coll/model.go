package coll

// Closed-form LogGP cost models of the simulated collective algorithms, in
// the style of the paper's all-reduce model (equation (9)): a collective is
// priced as a sum of rounds, each round one LogGP end-to-end message time
// (Table 1), with two machine-awareness refinements mirroring the
// simulator's structure under linear rank placement:
//
//   - a round whose exchange distance is below the cores-per-node count C
//     stays on-chip and uses the Table 1(b) path;
//   - an off-node round in which every core of a node injects at once pays
//     the node's shared bus: (cores-per-bus − 1) extra interference terms
//     I = odma + size×Gdma (the paper's Table 6 per-interference cost).
//
// What the closed forms deliberately omit — link-level queueing on torus or
// fat-tree fabrics, per-hop router latency, the skew between ranks entering
// a round — is exactly the abstraction error the experiments measure.

import (
	"math"

	"repro/internal/logp"
	"repro/internal/machine"
	"repro/internal/simmpi"
)

// rounds returns ceil(log2 P), the round count of the logarithmic
// algorithms (binomial tree, recursive doubling core, dissemination).
func rounds(P int) int {
	if P <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(P))))
}

// roundCost prices one round of distance-d exchanges of the given size:
// the LogGP end-to-end time of the path, plus the shared-bus interference
// of the node's other cores for off-node rounds.
func roundCost(m machine.Machine, d, size int) float64 {
	p := m.Params
	if d < m.CoresPerNode {
		return p.TotalCommOnChip(size)
	}
	cb := m.CoresPerBus()
	return p.TotalCommOffNode(size) + float64(cb-1)*busInterference(p, size)
}

// busInterference is the paper's per-interference term I = odma + size×Gdma
// (Table 6): the bus occupancy one DMA adds to a node-mate's transfer.
func busInterference(p logp.Params, size int) float64 {
	return p.Odma() + float64(size)*p.Gdma
}

// ModelBcast prices the binomial-tree broadcast: ceil(log2 P) rounds, round
// k exchanging at distance 2^k. The tree is bus-uncontended in the model —
// at most one subtree sender per node matters on the critical path.
func ModelBcast(m machine.Machine, P, bytes int) float64 {
	var t float64
	for k := 1; k < P; k <<= 1 {
		if k < m.CoresPerNode {
			t += m.Params.TotalCommOnChip(bytes)
		} else {
			t += m.Params.TotalCommOffNode(bytes)
		}
	}
	return t
}

// ModelBarrier prices the dissemination barrier: ceil(log2 P) rounds of
// 8-byte eager flags at distance 2^k.
func ModelBarrier(m machine.Machine, P int) float64 {
	var t float64
	for k := 1; k < P; k <<= 1 {
		t += roundCost(m, k, 8)
	}
	return t
}

// ModelAllReduceRing prices the ring all-reduce: 2(P−1) lock-step rounds of
// ceil(bytes/P) chunks between ring neighbours. Each round completes when
// its slowest exchange does, and once the ring spans more than one node
// that is an off-node boundary hop.
func ModelAllReduceRing(m machine.Machine, P, bytes int) float64 {
	if P < 2 {
		return 0
	}
	chunk := (bytes + P - 1) / P
	steps := float64(2 * (P - 1))
	if P <= m.CoresPerNode {
		return steps * m.Params.TotalCommOnChip(chunk)
	}
	// Off-node boundary rounds: only the two boundary cores of a node hold
	// the ring's inter-node hops, so no full-node bus convoy forms.
	return steps * m.Params.TotalCommOffNode(chunk)
}

// ModelAllReduceRecDouble prices the recursive-doubling all-reduce:
// log2(p2) full-size pairwise rounds at distances 1, 2, 4, … over the
// largest power-of-two core p2 ≤ P, plus a fold round in and out for the
// P − p2 leftover ranks.
func ModelAllReduceRecDouble(m machine.Machine, P, bytes int) float64 {
	if P < 2 {
		return 0
	}
	p2 := simmpi.FloorPow2(P)
	var t float64
	for d := 1; d < p2; d <<= 1 {
		t += roundCost(m, d, bytes)
	}
	if P > p2 {
		t += 2 * roundCost(m, p2, bytes)
	}
	return t
}

// Model dispatches to the collective's closed form.
func (c Collective) Model(m machine.Machine, ranks int) float64 {
	switch c.Kind {
	case Bcast:
		return ModelBcast(m, ranks, c.Bytes)
	case Barrier:
		return ModelBarrier(m, ranks)
	default:
		switch c.effAlg() {
		case simmpi.AlgRing:
			return ModelAllReduceRing(m, ranks, c.Bytes)
		case simmpi.AlgRecDouble:
			return ModelAllReduceRecDouble(m, ranks, c.Bytes)
		default:
			// The closed-form exchange of paper equation (9).
			return m.Params.AllReduce(ranks, m.CoresPerNode, c.Bytes)
		}
	}
}

// Messages returns the algorithm's total point-to-point message count over
// the given rank count and the payload size of each message. Every message
// of one collective instance has the same size, so total traffic is
// count × each.
func (c Collective) Messages(ranks int) (count uint64, each int) {
	P := ranks
	if P <= 1 {
		return 0, 0
	}
	switch c.Kind {
	case Bcast:
		return uint64(P - 1), c.Bytes
	case Barrier:
		return uint64(P) * uint64(rounds(P)), 8
	default:
		switch c.effAlg() {
		case simmpi.AlgRing:
			chunk := (c.Bytes + P - 1) / P
			return uint64(2*P) * uint64(P-1), chunk
		case simmpi.AlgRecDouble:
			p2 := simmpi.FloorPow2(P)
			return uint64(p2)*uint64(rounds(p2)) + 2*uint64(P-p2), c.Bytes
		default:
			return 0, 0 // closed-form exchange sends no simulator messages
		}
	}
}

// TotalBytes returns the algorithm's total injected traffic in bytes:
// message count × per-message payload.
func (c Collective) TotalBytes(ranks int) uint64 {
	count, each := c.Messages(ranks)
	return count * uint64(each)
}
