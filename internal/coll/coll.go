// Package coll models MPI collective operations two ways and measures the
// gap between them. The simulated side executes real collective algorithms
// — binomial-tree broadcast, ring and recursive-doubling all-reduce,
// dissemination barrier — as point-to-point message schedules on the
// discrete-event simulator (internal/simmpi), where every constituent
// message pays LogGP costs, queues on node buses and routes over
// interconnect links (internal/simnet, internal/topo). The analytic side
// provides a closed-form LogGP cost per algorithm in the style of the
// paper's all-reduce model (equation (9)), so the abstraction error of the
// closed form is measurable per collective, per topology and per message
// size (cmd/collplan, the "collectives" experiment driver).
//
// The algorithm schedules themselves live in internal/simmpi (collops.go)
// so the simulator can expand collective ops in its allocation-free hot
// path; this package names them, prices them analytically, and drives
// them standalone.
package coll

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/simmpi"
	"repro/internal/simnet"
)

// Kind identifies a collective operation.
type Kind uint8

// Collective operation kinds.
const (
	Bcast Kind = iota
	Allreduce
	Barrier
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Bcast:
		return "bcast"
	case Allreduce:
		return "allreduce"
	case Barrier:
		return "barrier"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// algNames maps algorithms to their JSON/CLI names.
var algNames = map[simmpi.CollAlg]string{
	simmpi.AlgAuto:          "auto",
	simmpi.AlgBinomial:      "binomial",
	simmpi.AlgRing:          "ring",
	simmpi.AlgRecDouble:     "recdouble",
	simmpi.AlgDissemination: "dissemination",
}

// AlgName renders a collective algorithm's canonical name.
func AlgName(a simmpi.CollAlg) string {
	if name, ok := algNames[a]; ok {
		return name
	}
	return fmt.Sprintf("CollAlg(%d)", uint8(a))
}

// ParseAlg resolves an algorithm name: "auto", "binomial", "ring",
// "recdouble" or "dissemination" (case-insensitive).
func ParseAlg(s string) (simmpi.CollAlg, error) {
	want := strings.ToLower(strings.TrimSpace(s))
	for a, name := range algNames {
		if name == want {
			return a, nil
		}
	}
	return simmpi.AlgAuto, fmt.Errorf(
		"coll: unknown collective algorithm %q (want auto, binomial, ring, recdouble or dissemination)", s)
}

// Collective describes one collective operation instance.
type Collective struct {
	Kind  Kind
	Alg   simmpi.CollAlg
	Root  int // broadcast root rank
	Bytes int // payload size; fixed at 8 for barriers
}

// String renders the collective compactly, e.g. "allreduce/ring/4096B".
func (c Collective) String() string {
	switch c.Kind {
	case Barrier:
		return "barrier/" + AlgName(c.effAlg())
	default:
		return fmt.Sprintf("%s/%s/%dB", c.Kind, AlgName(c.effAlg()), c.Bytes)
	}
}

// effAlg resolves AlgAuto to the kind's canonical algorithm.
func (c Collective) effAlg() simmpi.CollAlg {
	if c.Alg != simmpi.AlgAuto {
		return c.Alg
	}
	switch c.Kind {
	case Bcast:
		return simmpi.AlgBinomial
	case Barrier:
		return simmpi.AlgDissemination
	}
	return simmpi.AlgAuto
}

// Validate reports configuration errors for an instance over the given
// number of ranks.
func (c Collective) Validate(ranks int) error {
	if ranks <= 0 {
		return fmt.Errorf("coll: invalid rank count %d", ranks)
	}
	switch c.Kind {
	case Bcast:
		if c.effAlg() != simmpi.AlgBinomial {
			return fmt.Errorf("coll: bcast cannot use algorithm %s", AlgName(c.Alg))
		}
		if c.Root < 0 || c.Root >= ranks {
			return fmt.Errorf("coll: bcast root %d outside %d ranks", c.Root, ranks)
		}
		if c.Bytes <= 0 {
			return fmt.Errorf("coll: bcast of %d bytes", c.Bytes)
		}
	case Allreduce:
		if !simmpi.ValidAllReduceAlg(c.effAlg()) {
			return fmt.Errorf("coll: all-reduce cannot use algorithm %s", AlgName(c.Alg))
		}
		if c.Bytes <= 0 {
			return fmt.Errorf("coll: all-reduce of %d bytes", c.Bytes)
		}
		if c.Root != 0 {
			return fmt.Errorf("coll: all-reduce takes no root")
		}
	case Barrier:
		if c.effAlg() != simmpi.AlgDissemination {
			return fmt.Errorf("coll: barrier cannot use algorithm %s", AlgName(c.Alg))
		}
		if c.Root != 0 {
			return fmt.Errorf("coll: barrier takes no root")
		}
	default:
		return fmt.Errorf("coll: unknown collective kind %d", uint8(c.Kind))
	}
	return nil
}

// Op returns the simulator operation executing this collective.
func (c Collective) Op() simmpi.Op {
	switch c.Kind {
	case Bcast:
		return simmpi.Bcast(c.Root, c.Bytes)
	case Barrier:
		return simmpi.Barrier()
	default:
		return simmpi.AllReduceAlg(c.Bytes, c.Alg)
	}
}

// Runner executes standalone collectives on a reusable simulator, so scans
// over many sizes and algorithms amortise the simulator's pools the same
// way campaign workers do.
type Runner struct {
	sim *simmpi.Sim
	// Obs, if non-nil, is attached to every Run as the simulator's
	// observability recorder. Call its Reset between runs if per-run
	// streams are wanted; histograms otherwise accumulate across runs.
	Obs *obs.Recorder
}

// Run simulates one instance of the collective over the given number of
// ranks packed linearly onto the machine's nodes (LinearPlacement), every
// rank entering the collective at virtual time zero. The machine's
// interconnect spec, if any, is honoured: off-node constituents route over
// contended links.
func (r *Runner) Run(m machine.Machine, ranks int, c Collective) (simmpi.Result, error) {
	if err := c.Validate(ranks); err != nil {
		return simmpi.Result{}, err
	}
	t := simnet.NewTopology(m.Params, ranks, simnet.LinearPlacement(m))
	if err := t.AttachInterconnect(m.Interconnect); err != nil {
		return simmpi.Result{}, err
	}
	opt := simmpi.Options{Obs: r.Obs}
	if r.sim == nil {
		sim, err := simmpi.NewWithOptions(t, opt)
		if err != nil {
			return simmpi.Result{}, err
		}
		r.sim = sim
	} else if err := r.sim.ResetWithOptions(t, opt); err != nil {
		return simmpi.Result{}, err
	}
	op := c.Op()
	for rank := 0; rank < ranks; rank++ {
		r.sim.SetProgram(rank, simmpi.Ops(op))
	}
	return r.sim.Run()
}

// Simulate runs one collective on a fresh simulator; see Runner.Run.
func Simulate(m machine.Machine, ranks int, c Collective) (simmpi.Result, error) {
	var r Runner
	return r.Run(m, ranks, c)
}

// CrossPoint is one message size of a ring vs recursive-doubling
// all-reduce comparison.
type CrossPoint struct {
	Bytes     int
	Ring      float64 // simulated completion time, µs
	RecDouble float64 // simulated completion time, µs
}

// CrossoverScan simulates both all-reduce algorithms at every message size
// on one machine and rank count. Sizes are simulated in the given order on
// one reused simulator.
func CrossoverScan(m machine.Machine, ranks int, sizes []int) ([]CrossPoint, error) {
	var r Runner
	out := make([]CrossPoint, 0, len(sizes))
	for _, size := range sizes {
		ring, err := r.Run(m, ranks, Collective{Kind: Allreduce, Alg: simmpi.AlgRing, Bytes: size})
		if err != nil {
			return nil, err
		}
		rd, err := r.Run(m, ranks, Collective{Kind: Allreduce, Alg: simmpi.AlgRecDouble, Bytes: size})
		if err != nil {
			return nil, err
		}
		out = append(out, CrossPoint{Bytes: size, Ring: ring.Time, RecDouble: rd.Time})
	}
	return out, nil
}

// Crossover returns the smallest scanned size at which the ring algorithm
// is at least as fast as recursive doubling, or -1 if recursive doubling
// wins everywhere. Ring trades more rounds for per-round chunks P times
// smaller, so it overtakes as the per-byte term starts to dominate.
func Crossover(pts []CrossPoint) int {
	for _, pt := range pts {
		if pt.Ring <= pt.RecDouble {
			return pt.Bytes
		}
	}
	return -1
}
