package coll_test

// Golden lock-down of the collective algorithms: completion times (as exact
// IEEE-754 hex floats), event counts and traffic totals for every algorithm
// on bus-only, 2D-torus and fat-tree machines across rank counts. Any
// change to event ordering, LogGP arithmetic, routing or the expansion
// schedules shows up as a byte diff against testdata/collectives_golden.txt.
//
// To bless an intentional change:
//
//	go test ./internal/coll -run TestCollectivesGolden -update
//
// and explain the drift in the commit message.

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/coll"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/topo"
)

var update = flag.Bool("update", false, "rewrite golden files")

func goldenReport(t *testing.T) string {
	t.Helper()
	machines := []struct {
		label string
		m     machine.Machine
	}{
		{"xt4-dual/bus", machine.XT4()},
		{"xt4-dual/torus2d", machine.XT4().WithInterconnect(topo.Spec{Kind: topo.Torus2D})},
		{"xt4-dual/fattree", machine.XT4().WithInterconnect(topo.Spec{Kind: topo.FatTree})},
	}
	collectives := []coll.Collective{
		{Kind: coll.Bcast, Alg: simmpi.AlgBinomial, Bytes: 512},
		{Kind: coll.Bcast, Alg: simmpi.AlgBinomial, Bytes: 65536},
		{Kind: coll.Allreduce, Alg: simmpi.AlgRing, Bytes: 8},
		{Kind: coll.Allreduce, Alg: simmpi.AlgRing, Bytes: 65536},
		{Kind: coll.Allreduce, Alg: simmpi.AlgRecDouble, Bytes: 8},
		{Kind: coll.Allreduce, Alg: simmpi.AlgRecDouble, Bytes: 65536},
		{Kind: coll.Barrier},
	}
	var b strings.Builder
	var r coll.Runner
	for _, mc := range machines {
		for _, c := range collectives {
			for _, ranks := range []int{8, 24, 64} {
				res, err := r.Run(mc.m, ranks, c)
				if err != nil {
					t.Fatalf("%s %s P=%d: %v", mc.label, c, ranks, err)
				}
				fmt.Fprintf(&b, "%s %s P=%d time=%x events=%d msgs=%d bytes=%d linkhops=%d\n",
					mc.label, c, ranks, res.Time, res.Events, res.Sends, res.BytesSent, res.LinkRequests)
			}
		}
	}
	return b.String()
}

// TestCollectivesGolden pins the full report byte-for-byte.
func TestCollectivesGolden(t *testing.T) {
	const path = "testdata/collectives_golden.txt"
	got := goldenReport(t)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to record)", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := range wantLines {
		if i >= len(gotLines) {
			t.Fatalf("report truncated at line %d of %d", i, len(wantLines))
		}
		if gotLines[i] != wantLines[i] {
			t.Fatalf("line %d drifted:\n got: %s\nwant: %s", i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("report grew from %d to %d lines", len(wantLines), len(gotLines))
}
