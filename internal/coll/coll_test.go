package coll_test

import (
	"math/rand"
	"testing"

	"repro/internal/coll"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/topo"
)

// allAlgorithms enumerates every simulated (kind, algorithm) pair at one
// payload size.
func allAlgorithms(bytes int) []coll.Collective {
	return []coll.Collective{
		{Kind: coll.Bcast, Alg: simmpi.AlgBinomial, Bytes: bytes},
		{Kind: coll.Allreduce, Alg: simmpi.AlgRing, Bytes: bytes},
		{Kind: coll.Allreduce, Alg: simmpi.AlgRecDouble, Bytes: bytes},
		{Kind: coll.Barrier, Alg: simmpi.AlgDissemination},
	}
}

// TestCollectivesComplete runs every algorithm over awkward rank counts —
// powers of two, odd counts, primes, one — on single- and dual-core
// machines and checks for deadlock, which the blocking rendezvous protocol
// would turn into a simulator error. Sizes straddle the eager threshold so
// both protocols are exercised.
func TestCollectivesComplete(t *testing.T) {
	machines := []machine.Machine{machine.XT4SingleCore(), machine.XT4()}
	for _, m := range machines {
		for _, ranks := range []int{1, 2, 3, 5, 7, 8, 12, 16, 17, 31, 64} {
			for _, bytes := range []int{8, 1024, 1025, 65536} {
				for _, c := range allAlgorithms(bytes) {
					res, err := coll.Simulate(m, ranks, c)
					if err != nil {
						t.Fatalf("%s over %d ranks on %s: %v", c, ranks, m.Name, err)
					}
					if ranks > 1 && res.Time <= 0 {
						t.Errorf("%s over %d ranks on %s: non-positive completion time %v",
							c, ranks, m.Name, res.Time)
					}
				}
			}
		}
	}
}

// TestByteConservation is the traffic property: for every algorithm the
// simulator's injected message count and byte total must equal the
// analytic count × size exactly, over randomized rank counts and payloads.
// The rand seed is fixed so failures reproduce.
func TestByteConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	m := machine.XT4()
	for trial := 0; trial < 40; trial++ {
		ranks := 2 + rng.Intn(63)
		bytes := 1 + rng.Intn(1<<uint(3+rng.Intn(15)))
		cs := allAlgorithms(bytes)
		cs = append(cs, coll.Collective{Kind: coll.Bcast, Alg: simmpi.AlgBinomial,
			Bytes: bytes, Root: rng.Intn(ranks)})
		for _, c := range cs {
			res, err := coll.Simulate(m, ranks, c)
			if err != nil {
				t.Fatalf("%s over %d ranks: %v", c, ranks, err)
			}
			wantMsgs, each := c.Messages(ranks)
			if res.Sends != wantMsgs || res.Recvs != wantMsgs {
				t.Errorf("%s over %d ranks: %d sends / %d recvs, want %d",
					c, ranks, res.Sends, res.Recvs, wantMsgs)
			}
			if want := c.TotalBytes(ranks); res.BytesSent != want {
				t.Errorf("%s over %d ranks: %d bytes injected, want %d (= %d × %d)",
					c, ranks, res.BytesSent, want, wantMsgs, each)
			}
		}
	}
}

// TestRunnerReuseBitIdentical verifies the Runner's reused simulator: a
// scan of algorithms and rank counts must reproduce fresh-simulator results
// to the last bit, in any interleaving order.
func TestRunnerReuseBitIdentical(t *testing.T) {
	m := machine.XT4()
	cases := []struct {
		ranks int
		c     coll.Collective
	}{
		{16, coll.Collective{Kind: coll.Allreduce, Alg: simmpi.AlgRing, Bytes: 4096}},
		{7, coll.Collective{Kind: coll.Bcast, Alg: simmpi.AlgBinomial, Bytes: 100}},
		{32, coll.Collective{Kind: coll.Allreduce, Alg: simmpi.AlgRecDouble, Bytes: 8}},
		{9, coll.Collective{Kind: coll.Barrier}},
		{16, coll.Collective{Kind: coll.Allreduce, Alg: simmpi.AlgRing, Bytes: 4096}},
	}
	var r coll.Runner
	for i, tc := range cases {
		fresh, err := coll.Simulate(m, tc.ranks, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		reused, err := r.Run(m, tc.ranks, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Time != reused.Time || fresh.Events != reused.Events ||
			fresh.Sends != reused.Sends || fresh.BytesSent != reused.BytesSent {
			t.Errorf("case %d (%s): reused runner diverged: fresh %+v reused %+v",
				i, tc.c, fresh, reused)
		}
	}
}

// TestModelSanity checks the closed forms against structural truths: zero
// cost at one rank, monotone in message size, and within a loose band of
// the simulator on the uncontended bus-only machine where the closed form's
// assumptions are closest to the simulated behaviour.
func TestModelSanity(t *testing.T) {
	m := machine.XT4()
	for _, c := range allAlgorithms(8192) {
		if got := c.Model(m, 1); got != 0 {
			t.Errorf("%s: model cost %v at one rank, want 0", c, got)
		}
	}
	for _, ranks := range []int{8, 32} {
		prev := 0.0
		for _, bytes := range []int{8, 512, 8192, 131072} {
			c := coll.Collective{Kind: coll.Allreduce, Alg: simmpi.AlgRing, Bytes: bytes}
			got := c.Model(m, ranks)
			if got < prev {
				t.Errorf("ring model not monotone in size at P=%d: %v after %v", ranks, got, prev)
			}
			prev = got
		}
	}
	for _, c := range allAlgorithms(2048) {
		ranks := 16
		res, err := coll.Simulate(machine.XT4SingleCore(), ranks, c)
		if err != nil {
			t.Fatal(err)
		}
		model := c.Model(machine.XT4SingleCore(), ranks)
		if model <= 0 || res.Time <= 0 {
			t.Fatalf("%s: non-positive times model=%v sim=%v", c, model, res.Time)
		}
		ratio := model / res.Time
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("%s at P=%d: model %v µs vs simulated %v µs (ratio %.2f) — closed form drifted wildly",
				c, ranks, model, res.Time, ratio)
		}
	}
}

// TestCrossoverScan checks the ring vs recursive-doubling comparison: at
// tiny payloads recursive doubling's fewer rounds win, and the scan's
// crossover point is consistent with its own points.
func TestCrossoverScan(t *testing.T) {
	m := machine.XT4()
	sizes := []int{8, 256, 4096, 65536, 1048576}
	pts, err := coll.CrossoverScan(m, 32, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(sizes) {
		t.Fatalf("scan returned %d points, want %d", len(pts), len(sizes))
	}
	if pts[0].RecDouble >= pts[0].Ring {
		t.Errorf("at 8 bytes recursive doubling (%v µs) should beat ring (%v µs)",
			pts[0].RecDouble, pts[0].Ring)
	}
	cross := coll.Crossover(pts)
	for _, pt := range pts {
		if cross == -1 {
			if pt.Ring <= pt.RecDouble {
				t.Errorf("crossover reported none, but ring wins at %d bytes", pt.Bytes)
			}
		} else if pt.Bytes < cross && pt.Ring <= pt.RecDouble {
			t.Errorf("ring already wins at %d bytes, before reported crossover %d", pt.Bytes, cross)
		}
	}
}

// TestInterconnectSlowsCollectives checks that routing constituents over a
// link fabric is visible: on a torus the completion time of a large
// all-reduce is at least the flat-wire time, and link counters are
// populated.
func TestInterconnectSlowsCollectives(t *testing.T) {
	flat := machine.XT4()
	torus := flat.WithInterconnect(topo.Spec{Kind: topo.Torus2D})
	c := coll.Collective{Kind: coll.Allreduce, Alg: simmpi.AlgRing, Bytes: 1 << 20}
	base, err := coll.Simulate(flat, 64, c)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := coll.Simulate(torus, 64, c)
	if err != nil {
		t.Fatal(err)
	}
	if routed.LinkRequests == 0 {
		t.Fatal("torus run acquired no links")
	}
	if routed.Time < base.Time {
		t.Errorf("torus run (%v µs) faster than flat wire (%v µs)", routed.Time, base.Time)
	}
}

// TestStringRendering pins the labels used in JSONL rows and reports.
func TestStringRendering(t *testing.T) {
	cases := []struct {
		c    coll.Collective
		want string
	}{
		{coll.Collective{Kind: coll.Bcast, Bytes: 512}, "bcast/binomial/512B"},
		{coll.Collective{Kind: coll.Allreduce, Alg: simmpi.AlgRing, Bytes: 8}, "allreduce/ring/8B"},
		{coll.Collective{Kind: coll.Allreduce, Alg: simmpi.AlgRecDouble, Bytes: 64}, "allreduce/recdouble/64B"},
		{coll.Collective{Kind: coll.Allreduce, Bytes: 8}, "allreduce/auto/8B"},
		{coll.Collective{Kind: coll.Barrier}, "barrier/dissemination"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	if got := coll.Kind(9).String(); got != "Kind(9)" {
		t.Errorf("unknown kind renders %q", got)
	}
	if got := coll.AlgName(simmpi.CollAlg(200)); got != "CollAlg(200)" {
		t.Errorf("unknown algorithm renders %q", got)
	}
}

// TestModelAutoMatchesEquation9 checks that the auto all-reduce's closed
// form is the paper's equation (9), and that the degenerate sizes price as
// documented.
func TestModelAutoMatchesEquation9(t *testing.T) {
	m := machine.XT4()
	c := coll.Collective{Kind: coll.Allreduce, Bytes: 8}
	if got, want := c.Model(m, 64), m.Params.AllReduce(64, m.CoresPerNode, 8); got != want {
		t.Errorf("auto all-reduce model %v, want equation (9) value %v", got, want)
	}
	if count, _ := c.Messages(64); count != 0 {
		t.Errorf("closed-form all-reduce reports %d simulator messages, want 0", count)
	}
	ring := coll.Collective{Kind: coll.Allreduce, Alg: simmpi.AlgRing, Bytes: 8}
	if got := coll.ModelAllReduceRing(m, 2, 8); got <= 0 {
		t.Errorf("two-rank ring model %v, want positive", got)
	}
	// Inside one node every ring round is the on-chip path.
	if got, want := ring.Model(m, 2), 2*m.Params.TotalCommOnChip(4); got != want {
		t.Errorf("intra-node ring model %v, want %v", got, want)
	}
}

// TestCrossoverNone covers the no-crossover outcome: at tiny scans
// recursive doubling wins everywhere.
func TestCrossoverNone(t *testing.T) {
	pts, err := coll.CrossoverScan(machine.XT4(), 16, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if cross := coll.Crossover(pts); cross != -1 {
		t.Errorf("crossover at %d bytes on a latency-dominated scan, want none", cross)
	}
}

// TestRunRejectsInvalid covers the driver's validation path.
func TestRunRejectsInvalid(t *testing.T) {
	if _, err := coll.Simulate(machine.XT4(), 0, coll.Collective{Kind: coll.Barrier}); err == nil {
		t.Error("zero ranks accepted")
	}
	bad := machine.XT4().WithInterconnect(topo.Spec{Kind: topo.Torus2D, Dims: []int{1, 1}})
	if _, err := coll.Simulate(bad, 64, coll.Collective{Kind: coll.Barrier}); err == nil {
		t.Error("undersized torus accepted")
	}
}

// TestParseAlg round-trips every algorithm name and rejects junk.
func TestParseAlg(t *testing.T) {
	for _, a := range []simmpi.CollAlg{simmpi.AlgAuto, simmpi.AlgBinomial,
		simmpi.AlgRing, simmpi.AlgRecDouble, simmpi.AlgDissemination} {
		got, err := coll.ParseAlg(coll.AlgName(a))
		if err != nil || got != a {
			t.Errorf("round-trip of %s: got %v, err %v", coll.AlgName(a), got, err)
		}
	}
	if _, err := coll.ParseAlg("quantum"); err == nil {
		t.Error("ParseAlg accepted junk")
	}
}

// TestValidate rejects malformed collectives.
func TestValidate(t *testing.T) {
	bad := []struct {
		ranks int
		c     coll.Collective
	}{
		{0, coll.Collective{Kind: coll.Barrier}},
		{8, coll.Collective{Kind: coll.Bcast, Bytes: 0}},
		{8, coll.Collective{Kind: coll.Bcast, Bytes: 8, Root: 8}},
		{8, coll.Collective{Kind: coll.Bcast, Bytes: 8, Root: -1}},
		{8, coll.Collective{Kind: coll.Bcast, Alg: simmpi.AlgRing, Bytes: 8}},
		{8, coll.Collective{Kind: coll.Allreduce, Alg: simmpi.AlgBinomial, Bytes: 8}},
		{8, coll.Collective{Kind: coll.Allreduce, Bytes: -4}},
		{8, coll.Collective{Kind: coll.Allreduce, Bytes: 8, Root: 3}},
		{8, coll.Collective{Kind: coll.Barrier, Alg: simmpi.AlgRing}},
		{8, coll.Collective{Kind: coll.Kind(9)}},
	}
	for i, tc := range bad {
		if err := tc.c.Validate(tc.ranks); err == nil {
			t.Errorf("case %d (%v over %d ranks): invalid collective accepted", i, tc.c, tc.ranks)
		}
	}
	ok := coll.Collective{Kind: coll.Allreduce, Alg: simmpi.AlgRing, Bytes: 8}
	if err := ok.Validate(8); err != nil {
		t.Errorf("valid collective rejected: %v", err)
	}
}
