// Package hypothesis turns campaigns into validated findings: controlled
// A/B experiments over the campaign engine with machine-checked deltas,
// multi-seed effect sizes, standing invariant checks, and auto-generated
// confirm/refute reports.
//
// The discipline (borrowed from the inference-sim hypothesis workflow) is:
//
//  1. Pose a behavioral hypothesis about the simulator or the analytic
//     model ("ring overtakes recursive doubling at large payloads").
//  2. Design a controlled experiment: a baseline campaign spec and a
//     treatment spec differing in exactly one dimension. The framework
//     machine-checks the single-delta property by expanding both arms and
//     diffing their runs' content-key components (campaign.KeyComponents)
//     pair by pair — a two-dimension experiment is rejected, because its
//     effect could not be attributed.
//  3. Run both arms across ≥ 3 workload seeds. Every arm executes twice,
//     at different worker and shard counts, and the harness requires the
//     JSONL bytes to match — every hypothesis run doubles as a determinism
//     sweep.
//  4. Compute per-seed paired effect sizes on a declared metric and render
//     a verdict — Confirmed, Refuted or Inconclusive — against a declared
//     success criterion. A hypothesis is Confirmed only when every seed
//     agrees on the direction and the median effect clears the declared
//     threshold; it is Refuted only when every seed agrees on the
//     opposite direction just as strongly.
//  5. Run standing invariants (byte/event conservation, runtime
//     monotonicity, model-error sanity) over every arm's results, so each
//     experiment is also a property sweep over the simulator.
//
// Reports (JSON + Markdown, schema-versioned) contain only deterministic
// fields, so regenerating them with any worker or shard count reproduces
// the committed artifacts byte for byte.
package hypothesis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/campaign"
)

// Verdict values a report can carry.
const (
	Confirmed    = "confirmed"
	Refuted      = "refuted"
	Inconclusive = "inconclusive"
)

// Direction values an experiment can predict for its metric.
const (
	Increase = "increase"
	Decrease = "decrease"
)

// Experiment is one controlled A/B question: a baseline campaign, a
// treatment campaign differing in exactly one content-key component, the
// metric the effect is measured on, and the success criterion the verdict
// is rendered against.
type Experiment struct {
	// ID is the experiment's stable identifier and report filename stem,
	// e.g. "ring-vs-recdouble-256k".
	ID string
	// Title is the one-line human name.
	Title string
	// Family classifies the hypothesis (crossover, accuracy-regime,
	// robustness, monotonicity, ...), following the inference-sim
	// taxonomy.
	Family string
	// Hypothesis is the prose prediction being tested.
	Hypothesis string

	// Metric names the campaign.RunResult field the effect is measured
	// on; see MetricValue for the accepted names.
	Metric string
	// Direction is the predicted sign of the treatment effect on Metric:
	// Increase or Decrease.
	Direction string
	// MinEffect is the minimum |median relative change| across seeds for
	// a Confirmed (or symmetric Refuted) verdict; anything smaller is
	// Inconclusive.
	MinEffect float64

	// Seeds are the workload seeds both arms run under (≥ 3). The
	// harness substitutes each seed into every workload-bearing app of
	// both arms, so a seed never differs between paired runs.
	Seeds []uint64

	// Baseline and Treatment are the two arms. They must expand to run
	// lists of equal length whose pairs differ in exactly one content-key
	// component — the declared delta.
	Baseline  campaign.Spec
	Treatment campaign.Spec

	// Invariants are the standing checks run over every arm; nil means
	// DefaultInvariants().
	Invariants []Invariant
}

// Delta describes the single dimension the two arms differ in, as
// rendered by campaign.KeyComponents.
type Delta struct {
	// Component is the differing content-key component name ("machine",
	// "collective", "workload", ...).
	Component string `json:"component"`
	// Baseline and Treatment are the component's rendered values in each
	// arm (from the first run pair).
	Baseline  string `json:"baseline"`
	Treatment string `json:"treatment"`
}

// Validate checks the experiment's declaration — everything that can be
// checked without expanding the arms. Expansion-level properties (the
// single-delta check) are verified by CheckDelta / Run.
func (e Experiment) Validate() error {
	if e.ID == "" {
		return fmt.Errorf("hypothesis: experiment needs an id")
	}
	if strings.ContainsAny(e.ID, " /\\") {
		return fmt.Errorf("hypothesis: id %q must be a filename stem (no spaces or slashes)", e.ID)
	}
	if e.Title == "" || e.Hypothesis == "" {
		return fmt.Errorf("hypothesis: %s needs a title and a hypothesis statement", e.ID)
	}
	if _, err := metricExtractor(e.Metric); err != nil {
		return fmt.Errorf("hypothesis: %s: %w", e.ID, err)
	}
	if e.Direction != Increase && e.Direction != Decrease {
		return fmt.Errorf("hypothesis: %s direction %q (want %q or %q)", e.ID, e.Direction, Increase, Decrease)
	}
	if e.MinEffect < 0 {
		return fmt.Errorf("hypothesis: %s has negative min effect %v", e.ID, e.MinEffect)
	}
	if len(e.Seeds) < 3 {
		return fmt.Errorf("hypothesis: %s has %d seeds — controlled experiments need at least 3", e.ID, len(e.Seeds))
	}
	seen := map[uint64]bool{}
	for _, s := range e.Seeds {
		if seen[s] {
			return fmt.Errorf("hypothesis: %s lists seed %d twice", e.ID, s)
		}
		seen[s] = true
	}
	if !hasWorkload(e.Baseline) && !hasWorkload(e.Treatment) {
		return fmt.Errorf("hypothesis: %s has no workload-bearing app in either arm — the seeds would be inert", e.ID)
	}
	if err := e.Baseline.Validate(); err != nil {
		return fmt.Errorf("hypothesis: %s baseline: %w", e.ID, err)
	}
	if err := e.Treatment.Validate(); err != nil {
		return fmt.Errorf("hypothesis: %s treatment: %w", e.ID, err)
	}
	return nil
}

// hasWorkload reports whether any app dimension of the spec carries a
// workload the seed substitution can act on.
func hasWorkload(s campaign.Spec) bool {
	for _, a := range s.Apps {
		if a.Workload != nil {
			return true
		}
		if a.Spec != nil && a.Spec.Workload != nil {
			return true
		}
	}
	return false
}

// withSeed returns a copy of the spec with every workload's seed replaced,
// leaving the original untouched. Both arms pass through this with the
// same seed, so the seed can never be the inter-arm delta.
func withSeed(s campaign.Spec, seed uint64) campaign.Spec {
	apps := make([]campaign.AppDim, len(s.Apps))
	copy(apps, s.Apps)
	for i := range apps {
		if apps[i].Workload != nil {
			wl := *apps[i].Workload
			wl.Seed = seed
			apps[i].Workload = &wl
		}
		if apps[i].Spec != nil && apps[i].Spec.Workload != nil {
			sp := *apps[i].Spec
			wl := *sp.Workload
			wl.Seed = seed
			sp.Workload = &wl
			apps[i].Spec = &sp
		}
	}
	s.Apps = apps
	s.Name = fmt.Sprintf("%s/seed%d", s.Name, seed)
	return s
}

// CheckDelta expands both arms at the given seed and machine-checks the
// single-delta property: equal run counts, and every paired run differing
// in exactly one content-key component — the same component for all pairs.
// It returns the delta, or an error naming the offending pair and
// components (a two-dimension experiment is an error, as is a
// zero-dimension one: identical arms measure nothing).
func (e Experiment) CheckDelta(seed uint64, mode campaign.KeyMode) (Delta, error) {
	base, err := withSeed(e.Baseline, seed).Expand()
	if err != nil {
		return Delta{}, fmt.Errorf("hypothesis: %s baseline: %w", e.ID, err)
	}
	treat, err := withSeed(e.Treatment, seed).Expand()
	if err != nil {
		return Delta{}, fmt.Errorf("hypothesis: %s treatment: %w", e.ID, err)
	}
	if len(base) != len(treat) {
		return Delta{}, fmt.Errorf("hypothesis: %s arms expand to %d vs %d runs — arms must pair up run for run",
			e.ID, len(base), len(treat))
	}
	if len(base) == 0 {
		return Delta{}, fmt.Errorf("hypothesis: %s arms are empty", e.ID)
	}
	var delta Delta
	for i := range base {
		bc := base[i].KeyComponents(mode)
		tc := treat[i].KeyComponents(mode)
		diff, err := campaign.DiffKeyComponents(bc, tc)
		if err != nil {
			return Delta{}, fmt.Errorf("hypothesis: %s pair %d: %w", e.ID, i, err)
		}
		switch {
		case len(diff) == 0:
			return Delta{}, fmt.Errorf(
				"hypothesis: %s pair %d (%s) is identical in both arms — no dimension differs, nothing to attribute",
				e.ID, i, base[i].Key())
		case len(diff) > 1:
			return Delta{}, fmt.Errorf(
				"hypothesis: %s pair %d (%s) differs in %d dimensions (%s) — a controlled experiment changes exactly one",
				e.ID, i, base[i].Key(), len(diff), strings.Join(diff, ", "))
		}
		if i == 0 {
			delta = Delta{
				Component: diff[0],
				Baseline:  componentValue(bc, diff[0]),
				Treatment: componentValue(tc, diff[0]),
			}
		} else if diff[0] != delta.Component {
			return Delta{}, fmt.Errorf(
				"hypothesis: %s pairs disagree on the delta: pair 0 differs in %q, pair %d in %q",
				e.ID, delta.Component, i, diff[0])
		}
	}
	return delta, nil
}

// componentValue finds the named component's rendered value.
func componentValue(comps []campaign.KeyComponent, name string) string {
	for _, c := range comps {
		if c.Name == name {
			return c.Value
		}
	}
	return ""
}

// metricExtractor resolves a metric name to its RunResult accessor.
func metricExtractor(name string) (func(*campaign.RunResult) float64, error) {
	switch strings.ToLower(name) {
	case "sim_us":
		return func(r *campaign.RunResult) float64 { return r.SimMicros }, nil
	case "model_us":
		return func(r *campaign.RunResult) float64 { return r.ModelMicros }, nil
	case "abs_err":
		return func(r *campaign.RunResult) float64 { return r.AbsErr }, nil
	case "rel_err":
		return func(r *campaign.RunResult) float64 { return r.RelErr }, nil
	case "bus_wait_us":
		return func(r *campaign.RunResult) float64 { return r.BusWait }, nil
	case "link_wait_us":
		return func(r *campaign.RunResult) float64 { return r.LinkWait }, nil
	case "max_link_util":
		return func(r *campaign.RunResult) float64 { return r.MaxLinkUtil }, nil
	case "events":
		return func(r *campaign.RunResult) float64 { return float64(r.Events) }, nil
	case "messages":
		return func(r *campaign.RunResult) float64 { return float64(r.Messages) }, nil
	case "bytes_sent":
		return func(r *campaign.RunResult) float64 { return float64(r.BytesSent) }, nil
	}
	return nil, fmt.Errorf("unknown metric %q (want %s)", name, strings.Join(MetricNames(), ", "))
}

// MetricNames lists the metric names experiments may declare.
func MetricNames() []string {
	names := []string{"sim_us", "model_us", "abs_err", "rel_err", "bus_wait_us",
		"link_wait_us", "max_link_util", "events", "messages", "bytes_sent"}
	sort.Strings(names)
	return names
}

// MetricValue extracts the named metric from a run result; it errors only
// on an unknown name (every known metric is defined on every row — absent
// omitempty fields read as zero).
func MetricValue(name string, r campaign.RunResult) (float64, error) {
	get, err := metricExtractor(name)
	if err != nil {
		return 0, err
	}
	return get(&r), nil
}
