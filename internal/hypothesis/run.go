package hypothesis

import (
	"bytes"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/stats"
)

// Config holds the execution knobs of a hypothesis run. Reports are
// byte-identical for every valid configuration: the harness clamps shard
// counts into the canonical (≥ 2) family, where the simulator's event
// order — and therefore every output byte — is independent of both the
// worker pool and the shard count.
type Config struct {
	// Workers is the primary execution's worker-pool size; non-positive
	// means GOMAXPROCS.
	Workers int
	// Shards is the primary execution's simulator shard count; anything
	// below 2 is clamped to 2, keeping every run in the canonical
	// event-order family.
	Shards int
}

// normalize resolves the two execution profiles: the primary one from the
// config, and a deliberately different secondary one (different workers
// AND different shards, both canonical) whose byte-identical output is the
// determinism invariant's evidence.
func (c Config) normalize() (primary, alt campaign.Config) {
	shards := c.Shards
	if shards < 2 {
		shards = 2
	}
	primary = campaign.Config{Workers: c.Workers, Shards: shards}
	altWorkers := 1
	if c.Workers == 1 {
		altWorkers = 3
	}
	alt = campaign.Config{Workers: altWorkers, Shards: shards + 1}
	return primary, alt
}

// Run executes the experiment end to end: machine-checks the single-delta
// property at every seed, runs both arms under every seed twice (at
// different worker and shard counts), evaluates the invariants over every
// arm, computes per-seed and aggregate effect sizes on the declared
// metric, and renders the verdict into a Report.
//
// Run returns an error only for malformed experiments or failed runs;
// invariant violations and refuted hypotheses are findings, recorded in
// the report, not errors.
func Run(e Experiment, cfg Config) (*Report, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	primary, alt := cfg.normalize()
	metric, err := metricExtractor(e.Metric)
	if err != nil {
		return nil, fmt.Errorf("hypothesis: %s: %w", e.ID, err)
	}
	invariants := e.Invariants
	if invariants == nil {
		invariants = DefaultInvariants()
	}

	rep := &Report{
		Schema:     SchemaVersion,
		ID:         e.ID,
		Title:      e.Title,
		Family:     e.Family,
		Hypothesis: e.Hypothesis,
		Metric:     e.Metric,
		Direction:  e.Direction,
		MinEffect:  e.MinEffect,
		Seeds:      append([]uint64(nil), e.Seeds...),
	}

	// The sharded engine always executes in canonical event order, so the
	// components are diffed under the same mode bits the runs are keyed by.
	mode := campaign.KeyMode{Canon: true}

	violations := map[string][]string{}
	var perSeed []float64
	for _, seed := range e.Seeds {
		delta, err := e.CheckDelta(seed, mode)
		if err != nil {
			return nil, err
		}
		if rep.Delta == (Delta{}) {
			rep.Delta = delta
		} else if rep.Delta.Component != delta.Component {
			return nil, fmt.Errorf("hypothesis: %s: delta component %q at seed %d disagrees with %q — the seed leaked into the delta",
				e.ID, delta.Component, seed, rep.Delta.Component)
		}

		base, err := executeArm("baseline", seed, withSeed(e.Baseline, seed), primary, alt)
		if err != nil {
			return nil, fmt.Errorf("hypothesis: %s: %w", e.ID, err)
		}
		treat, err := executeArm("treatment", seed, withSeed(e.Treatment, seed), primary, alt)
		if err != nil {
			return nil, fmt.Errorf("hypothesis: %s: %w", e.ID, err)
		}

		for _, arm := range []Arm{base, treat} {
			rep.Arms = append(rep.Arms, summarizeArm(arm))
			for _, inv := range invariants {
				violations[inv.Name()] = append(violations[inv.Name()], inv.Check(arm)...)
			}
		}

		bvals := make([]float64, len(base.Rows))
		tvals := make([]float64, len(treat.Rows))
		for i := range base.Rows {
			bvals[i] = metric(&base.Rows[i])
			tvals[i] = metric(&treat.Rows[i])
		}
		changes := stats.PairedRelChange(bvals, tvals)
		if changes == nil {
			return nil, fmt.Errorf("hypothesis: %s seed %d: arms produced %d vs %d rows", e.ID, seed, len(bvals), len(tvals))
		}
		eff := stats.Mean(changes)
		perSeed = append(perSeed, eff)
		rep.PerSeed = append(rep.PerSeed, SeedEffect{
			Seed:          seed,
			BaselineMean:  stats.Mean(bvals),
			TreatmentMean: stats.Mean(tvals),
			Effect:        eff,
		})
	}

	for _, inv := range invariants {
		rep.Invariants = append(rep.Invariants, InvariantResult{
			Name:       inv.Name(),
			Status:     statusOf(violations[inv.Name()]),
			Violations: violations[inv.Name()],
		})
	}

	rep.Effect = stats.EffectOf(perSeed)
	rep.Verdict = verdict(rep.Effect, e.Direction, e.MinEffect)
	return rep, nil
}

// executeArm runs one seed-substituted arm under both execution profiles
// and packages everything the invariants and the report need.
func executeArm(name string, seed uint64, spec campaign.Spec, primary, alt campaign.Config) (Arm, error) {
	rows, jsonl, err := executeOnce(spec, primary)
	if err != nil {
		return Arm{}, fmt.Errorf("%s arm, seed %d: %w", name, seed, err)
	}
	altRows, altJSONL, err := executeOnce(spec, alt)
	if err != nil {
		return Arm{}, fmt.Errorf("%s arm, seed %d (re-execution): %w", name, seed, err)
	}
	return Arm{
		Name: name, Seed: seed, Spec: spec,
		Rows: rows, JSONL: jsonl,
		AltRows: altRows, AltJSONL: altJSONL,
	}, nil
}

// executeOnce runs the spec under one execution profile and serializes the
// results the same way the campaign CLI does.
func executeOnce(spec campaign.Spec, cfg campaign.Config) ([]campaign.RunResult, []byte, error) {
	eng, err := campaign.NewEngine(cfg)
	if err != nil {
		return nil, nil, err
	}
	rows, err := eng.ExecuteSpec(spec)
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := campaign.WriteJSONL(&buf, rows); err != nil {
		return nil, nil, err
	}
	return rows, buf.Bytes(), nil
}

// statusOf folds a violation list into a report status.
func statusOf(violations []string) string {
	if len(violations) == 0 {
		return "pass"
	}
	return "violated"
}

// verdict renders the three-way decision. Confirmed requires every seed to
// move in the predicted direction and the median effect to clear the
// declared threshold; Refuted is the symmetric condition on the opposite
// direction; anything weaker or mixed is Inconclusive.
func verdict(e stats.Effect, direction string, minEffect float64) string {
	sign := 1.0
	if direction == Decrease {
		sign = -1.0
	}
	abs := e.Median
	if abs < 0 {
		abs = -abs
	}
	switch {
	case e.Consistent(sign) && abs >= minEffect:
		return Confirmed
	case e.Consistent(-sign) && abs >= minEffect:
		return Refuted
	default:
		return Inconclusive
	}
}
