package hypothesis

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/metrics"
)

// saneRow builds a RunResult that satisfies every invariant.
func saneRow(mutate func(*campaign.RunResult)) campaign.RunResult {
	r := campaign.RunResult{
		Schema: 1, App: "LU", Grid: "24x24x24", Machine: "xt4", P: 16,
		ModelMicros: 100, SimMicros: 104,
		RelErr: -0.0384615384615385, AbsErr: 0.0384615384615385,
		Band:   metrics.ErrorBand(0.0384615384615385),
		Events: 50, Messages: 20, BytesSent: 4096,
	}
	if mutate != nil {
		mutate(&r)
	}
	return r
}

// armOf wraps rows into an Arm whose two executions agree.
func armOf(rows ...campaign.RunResult) Arm {
	jsonl := []byte("rows")
	return Arm{Name: "baseline", Seed: 42, Rows: rows, JSONL: jsonl, AltRows: rows, AltJSONL: jsonl}
}

func TestDeterminismInvariant(t *testing.T) {
	ok := armOf(saneRow(nil))
	if v := (Determinism{}).Check(ok); len(v) != 0 {
		t.Errorf("identical executions flagged: %v", v)
	}
	bad := ok
	bad.AltJSONL = []byte("other")
	bad.AltRows = []campaign.RunResult{saneRow(func(r *campaign.RunResult) { r.SimMicros = 999 })}
	v := (Determinism{}).Check(bad)
	if len(v) != 1 || !strings.Contains(v[0], "diverge") {
		t.Errorf("divergent executions not flagged: %v", v)
	}
}

func TestByteConservationInvariant(t *testing.T) {
	inv := ByteConservation{}
	if v := inv.Check(armOf(saneRow(nil))); len(v) != 0 {
		t.Errorf("sane row flagged: %v", v)
	}
	cases := []struct {
		name   string
		mutate func(*campaign.RunResult)
		want   string
	}{
		{"silent multi-rank run", func(r *campaign.RunResult) { r.BytesSent = 0; r.Messages = 0 }, "must communicate"},
		{"chatty single-rank run", func(r *campaign.RunResult) { r.P = 1 }, "single-rank"},
		{"bytes without messages", func(r *campaign.RunResult) { r.Messages = 0 }, "zero together"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := inv.Check(armOf(saneRow(tc.mutate)))
			if len(v) == 0 || !strings.Contains(strings.Join(v, "\n"), tc.want) {
				t.Errorf("violations = %v, want one mentioning %q", v, tc.want)
			}
		})
	}
	// Cross-execution drift in the byte counter.
	a := armOf(saneRow(nil))
	a.AltRows = []campaign.RunResult{saneRow(func(r *campaign.RunResult) { r.BytesSent = 1 })}
	if v := inv.Check(a); len(v) == 0 || !strings.Contains(v[0], "not conserved") {
		t.Errorf("cross-execution byte drift not flagged: %v", v)
	}
}

func TestEventConservationInvariant(t *testing.T) {
	inv := EventConservation{}
	if v := inv.Check(armOf(saneRow(nil))); len(v) != 0 {
		t.Errorf("sane row flagged: %v", v)
	}
	if v := inv.Check(armOf(saneRow(func(r *campaign.RunResult) { r.Events = 0 }))); len(v) == 0 {
		t.Error("zero-event run not flagged")
	}
	if v := inv.Check(armOf(saneRow(func(r *campaign.RunResult) { r.Events = 5 }))); len(v) == 0 {
		t.Error("events < messages not flagged")
	}
	a := armOf(saneRow(nil))
	a.AltRows = []campaign.RunResult{saneRow(func(r *campaign.RunResult) { r.Events = 51 })}
	if v := inv.Check(a); len(v) == 0 {
		t.Error("cross-execution event drift not flagged")
	}
}

func TestMonotoneInPInvariant(t *testing.T) {
	inv := MonotoneInP{}
	p16 := saneRow(nil)
	p64 := saneRow(func(r *campaign.RunResult) { r.P = 64; r.SimMicros = 40 })
	if v := inv.Check(armOf(p16, p64)); len(v) != 0 {
		t.Errorf("proper scaling flagged: %v", v)
	}
	slow64 := saneRow(func(r *campaign.RunResult) { r.P = 64; r.SimMicros = 200 })
	v := inv.Check(armOf(p16, slow64))
	if len(v) != 1 || !strings.Contains(v[0], "grows with ranks") {
		t.Errorf("inverted scaling not flagged: %v", v)
	}
	// Rows in different groups (different machines) never compare.
	other := saneRow(func(r *campaign.RunResult) { r.P = 64; r.SimMicros = 200; r.Machine = "other" })
	if v := inv.Check(armOf(p16, other)); len(v) != 0 {
		t.Errorf("cross-group comparison: %v", v)
	}
}

func TestMonotoneInOverrideInvariant(t *testing.T) {
	inv := MonotoneInOverride{Slowing: []string{"fast-net", "baseline", "slow-net"}}
	fast := saneRow(func(r *campaign.RunResult) { r.Override = "fast-net"; r.SimMicros = 80 })
	base := saneRow(func(r *campaign.RunResult) { r.Override = "baseline" })
	slow := saneRow(func(r *campaign.RunResult) { r.Override = "slow-net"; r.SimMicros = 300 })
	if v := inv.Check(armOf(fast, base, slow)); len(v) != 0 {
		t.Errorf("proper slowdown flagged: %v", v)
	}
	tooFast := saneRow(func(r *campaign.RunResult) { r.Override = "slow-net"; r.SimMicros = 50 })
	v := inv.Check(armOf(fast, base, tooFast))
	if len(v) == 0 || !strings.Contains(v[0], "slower network is faster") {
		t.Errorf("inverted override ordering not flagged: %v", v)
	}
	// Overrides outside the declared order are ignored, not compared.
	odd := saneRow(func(r *campaign.RunResult) { r.Override = "half-overhead"; r.SimMicros = 1 })
	if v := inv.Check(armOf(base, odd)); len(v) != 0 {
		t.Errorf("undeclared override compared: %v", v)
	}
}

func TestErrorBandSanityInvariant(t *testing.T) {
	inv := ErrorBandSanity{}
	if v := inv.Check(armOf(saneRow(nil))); len(v) != 0 {
		t.Errorf("sane row flagged: %v", v)
	}
	cases := []struct {
		name   string
		mutate func(*campaign.RunResult)
		want   string
	}{
		{"zero sim time", func(r *campaign.RunResult) { r.SimMicros = 0 }, "non-positive times"},
		{"abs/rel mismatch", func(r *campaign.RunResult) { r.AbsErr = 0.5 }, "not |rel_err|"},
		{"wrong band", func(r *campaign.RunResult) { r.Band = ">=20%" }, "inconsistent"},
		{"insane error", func(r *campaign.RunResult) {
			r.RelErr = 15
			r.AbsErr = 15
			r.Band = metrics.ErrorBand(15)
		}, "sanity ceiling"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := inv.Check(armOf(saneRow(tc.mutate)))
			if len(v) == 0 || !strings.Contains(strings.Join(v, "\n"), tc.want) {
				t.Errorf("violations = %v, want one mentioning %q", v, tc.want)
			}
		})
	}
}

// TestDefaultInvariantsNames: the default suite is the documented sextet,
// each with a distinct name.
func TestDefaultInvariantsNames(t *testing.T) {
	names := map[string]bool{}
	for _, inv := range DefaultInvariants() {
		if inv.Name() == "" || names[inv.Name()] {
			t.Errorf("bad or duplicate invariant name %q", inv.Name())
		}
		names[inv.Name()] = true
	}
	for _, want := range []string{"cross-worker-determinism", "byte-conservation", "event-conservation",
		"runtime-monotone-in-p", "runtime-monotone-in-link-bw", "model-error-band-sanity"} {
		if !names[want] {
			t.Errorf("default suite missing %q", want)
		}
	}
}
