package hypothesis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// SchemaVersion is the version of the hypothesis report JSON schema,
// carried by every report as "schema_version". The compatibility rule
// follows campaign.SchemaVersion: within a version, fields are only ever
// added.
const SchemaVersion = 1

// Report is the complete record of one executed experiment. Every field
// is deterministic — no wall-clock times, no host names — so regenerating
// a report with any worker or shard count reproduces the committed file
// byte for byte.
type Report struct {
	Schema     int    `json:"schema_version"`
	ID         string `json:"id"`
	Title      string `json:"title"`
	Family     string `json:"family,omitempty"`
	Hypothesis string `json:"hypothesis"`

	Metric    string  `json:"metric"`
	Direction string  `json:"direction"`
	MinEffect float64 `json:"min_effect"`

	// Delta is the machine-verified single dimension the arms differ in.
	Delta Delta    `json:"delta"`
	Seeds []uint64 `json:"seeds"`

	// Arms summarises every executed arm (two per seed), including the
	// SHA-256 of its JSONL output — the fingerprint a reader can compare
	// against a fresh execution.
	Arms []ArmSummary `json:"arms"`

	// PerSeed holds one paired effect size per seed; Effect summarises
	// them and Verdict is the decision rendered from that summary.
	PerSeed []SeedEffect `json:"per_seed"`
	Effect  stats.Effect `json:"effect"`
	Verdict string       `json:"verdict"`

	// Invariants records every standing check's outcome over all arms.
	Invariants []InvariantResult `json:"invariants"`
}

// ArmSummary fingerprints one executed arm at one seed.
type ArmSummary struct {
	Arm    string `json:"arm"`
	Seed   uint64 `json:"seed"`
	Runs   int    `json:"runs"`
	SHA256 string `json:"sha256"`
}

// SeedEffect is the paired effect at one seed: the metric's mean over each
// arm's runs and the mean pairwise relative change.
type SeedEffect struct {
	Seed          uint64  `json:"seed"`
	BaselineMean  float64 `json:"baseline_mean"`
	TreatmentMean float64 `json:"treatment_mean"`
	Effect        float64 `json:"effect"`
}

// InvariantResult is one standing check's outcome across every arm.
type InvariantResult struct {
	Name       string   `json:"name"`
	Status     string   `json:"status"` // "pass" or "violated"
	Violations []string `json:"violations,omitempty"`
}

// summarizeArm fingerprints an executed arm for the report.
func summarizeArm(a Arm) ArmSummary {
	sum := sha256.Sum256(a.JSONL)
	return ArmSummary{Arm: a.Name, Seed: a.Seed, Runs: len(a.Rows), SHA256: hex.EncodeToString(sum[:])}
}

// InvariantsPass reports whether every standing check passed on every arm.
func (r *Report) InvariantsPass() bool {
	for _, inv := range r.Invariants {
		if inv.Status != "pass" {
			return false
		}
	}
	return true
}

// WriteJSON writes the report as indented JSON with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// pct renders an effect size as a signed percentage.
func pct(x float64) string { return fmt.Sprintf("%+.2f%%", x*100) }

// WriteMarkdown writes the report as a human-readable Markdown document.
// Like the JSON form it contains only deterministic content.
func (r *Report) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n", r.Title)
	fmt.Fprintf(&b, "**Verdict: %s**\n\n", r.Verdict)
	fmt.Fprintf(&b, "- ID: `%s`\n", r.ID)
	if r.Family != "" {
		fmt.Fprintf(&b, "- Family: %s\n", r.Family)
	}
	fmt.Fprintf(&b, "- Hypothesis: %s\n", r.Hypothesis)
	fmt.Fprintf(&b, "- Delta: `%s` — baseline `%s` → treatment `%s`\n",
		r.Delta.Component, truncate(r.Delta.Baseline, 80), truncate(r.Delta.Treatment, 80))
	fmt.Fprintf(&b, "- Metric: `%s`, predicted to %s by ≥ %s\n",
		r.Metric, r.Direction, pct(r.MinEffect))
	fmt.Fprintf(&b, "- Seeds: %s\n\n", joinSeeds(r.Seeds))

	b.WriteString("## Effect\n\n")
	fmt.Fprintf(&b, "Median %s across %d seeds (min %s, max %s).\n\n",
		pct(r.Effect.Median), r.Effect.N, pct(r.Effect.Min), pct(r.Effect.Max))
	b.WriteString("| seed | baseline mean | treatment mean | effect |\n")
	b.WriteString("|---:|---:|---:|---:|\n")
	for _, s := range r.PerSeed {
		fmt.Fprintf(&b, "| %d | %.4g | %.4g | %s |\n", s.Seed, s.BaselineMean, s.TreatmentMean, pct(s.Effect))
	}
	b.WriteString("\n")

	b.WriteString("## Invariants\n\n")
	b.WriteString("| invariant | status |\n")
	b.WriteString("|---|---|\n")
	for _, inv := range r.Invariants {
		fmt.Fprintf(&b, "| %s | %s |\n", inv.Name, inv.Status)
	}
	b.WriteString("\n")
	for _, inv := range r.Invariants {
		if len(inv.Violations) == 0 {
			continue
		}
		fmt.Fprintf(&b, "### %s violations\n\n", inv.Name)
		for _, v := range inv.Violations {
			fmt.Fprintf(&b, "- %s\n", v)
		}
		b.WriteString("\n")
	}

	b.WriteString("## Arms\n\n")
	b.WriteString("| arm | seed | runs | jsonl sha256 |\n")
	b.WriteString("|---|---:|---:|---|\n")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "| %s | %d | %d | `%s` |\n", a.Arm, a.Seed, a.Runs, a.SHA256[:16])
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteIndex writes the suite-level Markdown index over a set of reports,
// in the order given.
func WriteIndex(w io.Writer, reports []*Report) error {
	var b strings.Builder
	b.WriteString("# Hypotheses\n\n")
	b.WriteString("Controlled experiments over the campaign engine: each report pairs a\n")
	b.WriteString("baseline campaign with a treatment differing in exactly one\n")
	b.WriteString("machine-checked dimension, runs both arms across multiple workload\n")
	b.WriteString("seeds (twice each, at different worker and shard counts), checks the\n")
	b.WriteString("standing invariants, and renders a confirm/refute verdict.\n")
	b.WriteString("Regenerate with `go run ./cmd/hypoth -all -out hypotheses` — the\n")
	b.WriteString("files are byte-identical for any `-workers`/`-shards` setting.\n\n")
	b.WriteString("| id | title | delta | metric | verdict | median effect | invariants |\n")
	b.WriteString("|---|---|---|---|---|---:|---|\n")
	for _, r := range reports {
		inv := "pass"
		if !r.InvariantsPass() {
			inv = "violated"
		}
		fmt.Fprintf(&b, "| [`%s`](%s.md) | %s | %s | `%s` | %s | %s | %s |\n",
			r.ID, r.ID, r.Title, r.Delta.Component, r.Metric, r.Verdict, pct(r.Effect.Median), inv)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// truncate shortens long component values for the Markdown rendering.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// joinSeeds renders a seed list.
func joinSeeds(seeds []uint64) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = fmt.Sprint(s)
	}
	return strings.Join(parts, ", ")
}
