package hypothesis

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"repro/internal/campaign"
	"repro/internal/metrics"
)

// Arm is one executed experiment arm at one seed, as handed to invariants:
// the spec, the result rows, and the bytes of two independent executions
// at different worker and shard counts. Invariants read it; they never
// re-execute anything.
type Arm struct {
	// Name is "baseline" or "treatment"; Seed is the workload seed.
	Name string
	Seed uint64
	// Spec is the seed-substituted campaign spec this arm executed.
	Spec campaign.Spec
	// Rows are the primary execution's results, in index order.
	Rows []campaign.RunResult
	// JSONL is the primary execution's serialized output.
	JSONL []byte
	// AltRows and AltJSONL come from the re-execution at different worker
	// and shard counts; byte-equality against JSONL is the determinism
	// invariant.
	AltRows  []campaign.RunResult
	AltJSONL []byte
}

// label renders the arm's coordinates for violation messages.
func (a Arm) label() string { return fmt.Sprintf("%s arm, seed %d", a.Name, a.Seed) }

// Invariant is a standing property checked over every executed arm. A
// check returns violation descriptions (empty means the arm satisfies the
// property), so every hypothesis run doubles as a property sweep over the
// simulator — the bug-hunting net the ROADMAP asks for.
type Invariant interface {
	Name() string
	Check(arm Arm) []string
}

// DefaultInvariants returns the standing suite every experiment runs
// unless it declares its own: cross-execution determinism, byte and event
// conservation, runtime monotonicity in rank count and in link bandwidth
// (via the conventional fast-net/baseline/slow-net override ordering), and
// model-error sanity.
func DefaultInvariants() []Invariant {
	return []Invariant{
		Determinism{},
		ByteConservation{},
		EventConservation{},
		MonotoneInP{},
		MonotoneInOverride{Slowing: []string{"fast-net", "baseline", "slow-net"}},
		ErrorBandSanity{},
	}
}

// Determinism requires the two executions of an arm — run at different
// worker and shard counts — to produce byte-identical JSONL. This is the
// campaign layer's core guarantee, re-verified on every hypothesis run.
type Determinism struct{}

// Name implements Invariant.
func (Determinism) Name() string { return "cross-worker-determinism" }

// Check implements Invariant.
func (Determinism) Check(arm Arm) []string {
	if bytes.Equal(arm.JSONL, arm.AltJSONL) {
		return nil
	}
	n := len(arm.Rows)
	for i := range arm.Rows {
		if i < len(arm.AltRows) && arm.Rows[i] != arm.AltRows[i] {
			n = i
			break
		}
	}
	return []string{fmt.Sprintf("%s: executions at different worker/shard counts diverge (first differing row index %d)",
		arm.label(), n)}
}

// ByteConservation checks traffic accounting: every multi-rank run moves a
// positive number of bytes over a positive number of messages, single-rank
// runs move none, and the byte counters agree between the arm's two
// executions row for row.
type ByteConservation struct{}

// Name implements Invariant.
func (ByteConservation) Name() string { return "byte-conservation" }

// Check implements Invariant.
func (ByteConservation) Check(arm Arm) []string {
	var v []string
	for i, r := range arm.Rows {
		if r.P > 1 && (r.BytesSent == 0 || r.Messages == 0) {
			v = append(v, fmt.Sprintf("%s run %d (%s, P=%d): %d bytes over %d messages — a multi-rank wavefront must communicate",
				arm.label(), r.Index, r.App, r.P, r.BytesSent, r.Messages))
		}
		if r.P == 1 && r.BytesSent != 0 {
			v = append(v, fmt.Sprintf("%s run %d: single-rank run reports %d bytes sent", arm.label(), r.Index, r.BytesSent))
		}
		if (r.BytesSent == 0) != (r.Messages == 0) {
			v = append(v, fmt.Sprintf("%s run %d: %d bytes over %d messages — bytes and messages must be zero together",
				arm.label(), r.Index, r.BytesSent, r.Messages))
		}
		if i < len(arm.AltRows) && r.BytesSent != arm.AltRows[i].BytesSent {
			v = append(v, fmt.Sprintf("%s run %d: bytes_sent %d vs %d across executions — traffic is not conserved under re-execution",
				arm.label(), r.Index, r.BytesSent, arm.AltRows[i].BytesSent))
		}
	}
	return v
}

// EventConservation checks event accounting: every run processes at least
// one event, at least one per message, and the counters agree between the
// arm's two executions row for row.
type EventConservation struct{}

// Name implements Invariant.
func (EventConservation) Name() string { return "event-conservation" }

// Check implements Invariant.
func (EventConservation) Check(arm Arm) []string {
	var v []string
	for i, r := range arm.Rows {
		if r.Events == 0 {
			v = append(v, fmt.Sprintf("%s run %d: zero events", arm.label(), r.Index))
		}
		if r.Events < r.Messages {
			v = append(v, fmt.Sprintf("%s run %d: %d events < %d messages — every message costs at least one event",
				arm.label(), r.Index, r.Events, r.Messages))
		}
		if i < len(arm.AltRows) && (r.Events != arm.AltRows[i].Events || r.Messages != arm.AltRows[i].Messages) {
			v = append(v, fmt.Sprintf("%s run %d: events/messages %d/%d vs %d/%d across executions",
				arm.label(), r.Index, r.Events, r.Messages, arm.AltRows[i].Events, arm.AltRows[i].Messages))
		}
	}
	return v
}

// groupKey renders the coordinates of a row with one dimension masked out,
// so rows can be grouped by "everything else".
func groupKey(r campaign.RunResult, maskP, maskOverride bool) string {
	p, ov := fmt.Sprint(r.P), r.Override
	if maskP {
		p = "*"
	}
	if maskOverride {
		ov = "*"
	}
	return fmt.Sprintf("%s|%s|%d|%s|%s|%s|%s|%s", r.App, r.Grid, r.Htile, r.Machine, ov, r.Collective, r.Workload, p)
}

// MonotoneInP requires simulated runtime to be non-increasing in rank
// count within every group of rows that agree on everything else: at a
// fixed problem size, more processors must never slow the simulated
// application down. (Real codes can invert past the scaling knee; when a
// sweep reaches that regime the violation is the finding, documented in
// the report.)
type MonotoneInP struct{}

// Name implements Invariant.
func (MonotoneInP) Name() string { return "runtime-monotone-in-p" }

// Check implements Invariant.
func (MonotoneInP) Check(arm Arm) []string {
	groups := map[string][]campaign.RunResult{}
	var order []string
	for _, r := range arm.Rows {
		k := groupKey(r, true, false)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	var v []string
	for _, k := range order {
		rows := groups[k]
		if len(rows) < 2 {
			continue
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].P < rows[j].P })
		for i := 1; i < len(rows); i++ {
			if rows[i].SimMicros > rows[i-1].SimMicros {
				v = append(v, fmt.Sprintf("%s: %s/%s on %s: runtime grows with ranks — %.1fµs at P=%d vs %.1fµs at P=%d",
					arm.label(), rows[i].App, rows[i].Grid, rows[i].Machine,
					rows[i].SimMicros, rows[i].P, rows[i-1].SimMicros, rows[i-1].P))
			}
		}
	}
	return v
}

// MonotoneInOverride requires simulated runtime to be non-decreasing along
// a declared slowing order of LogGP override names (conventionally
// fast-net → baseline → slow-net): degrading link bandwidth and latency
// must never speed the simulation up. Groups that carry fewer than two of
// the ordered overrides pass vacuously.
type MonotoneInOverride struct {
	// Slowing lists override names from fastest network to slowest.
	Slowing []string
}

// Name implements Invariant.
func (MonotoneInOverride) Name() string { return "runtime-monotone-in-link-bw" }

// Check implements Invariant.
func (m MonotoneInOverride) Check(arm Arm) []string {
	rank := map[string]int{}
	for i, name := range m.Slowing {
		rank[name] = i
	}
	groups := map[string][]campaign.RunResult{}
	var order []string
	for _, r := range arm.Rows {
		if _, ok := rank[r.Override]; !ok {
			continue
		}
		k := groupKey(r, false, true)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	var v []string
	for _, k := range order {
		rows := groups[k]
		if len(rows) < 2 {
			continue
		}
		sort.Slice(rows, func(i, j int) bool { return rank[rows[i].Override] < rank[rows[j].Override] })
		for i := 1; i < len(rows); i++ {
			if rows[i].SimMicros < rows[i-1].SimMicros {
				v = append(v, fmt.Sprintf("%s: %s/%s P=%d: slower network is faster — %.1fµs under %q vs %.1fµs under %q",
					arm.label(), rows[i].App, rows[i].Grid, rows[i].P,
					rows[i].SimMicros, rows[i].Override, rows[i-1].SimMicros, rows[i-1].Override))
			}
		}
	}
	return v
}

// ErrorBandSanity checks the model-vs-simulator bookkeeping of every row:
// positive times, abs_err consistent with rel_err, the accuracy band
// consistent with abs_err, and the error itself inside a sanity ceiling
// (1000% — beyond that the comparison is measuring a bug, not a model).
type ErrorBandSanity struct{}

// Name implements Invariant.
func (ErrorBandSanity) Name() string { return "model-error-band-sanity" }

// errCeiling is the |rel err| beyond which a row is insane.
const errCeiling = 10.0

// Check implements Invariant.
func (ErrorBandSanity) Check(arm Arm) []string {
	var v []string
	for _, r := range arm.Rows {
		if !(r.SimMicros > 0) || !(r.ModelMicros > 0) {
			v = append(v, fmt.Sprintf("%s run %d: non-positive times (model %vµs, sim %vµs)",
				arm.label(), r.Index, r.ModelMicros, r.SimMicros))
			continue
		}
		if r.AbsErr != math.Abs(r.RelErr) {
			v = append(v, fmt.Sprintf("%s run %d: abs_err %v is not |rel_err| (%v)", arm.label(), r.Index, r.AbsErr, r.RelErr))
		}
		if r.Band != metrics.ErrorBand(r.AbsErr) {
			v = append(v, fmt.Sprintf("%s run %d: band %q inconsistent with abs_err %v", arm.label(), r.Index, r.Band, r.AbsErr))
		}
		if r.AbsErr >= errCeiling || math.IsNaN(r.AbsErr) {
			v = append(v, fmt.Sprintf("%s run %d: |rel err| %v beyond the %.0f%% sanity ceiling",
				arm.label(), r.Index, r.AbsErr, errCeiling*100))
		}
	}
	return v
}
