package hypothesis

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/campaign"
)

// TestRunEndToEnd executes the small rank-count experiment and checks the
// whole report surface: verdict, delta, per-seed effects, arm
// fingerprints and passing invariants.
func TestRunEndToEnd(t *testing.T) {
	e := smallExperiment()
	rep, err := Run(e, Config{Workers: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", rep.Schema, SchemaVersion)
	}
	if rep.Delta.Component != "placement" {
		t.Errorf("delta = %q, want placement", rep.Delta.Component)
	}
	if len(rep.PerSeed) != len(e.Seeds) {
		t.Fatalf("%d per-seed effects for %d seeds", len(rep.PerSeed), len(e.Seeds))
	}
	if len(rep.Arms) != 2*len(e.Seeds) {
		t.Errorf("%d arm summaries, want %d", len(rep.Arms), 2*len(e.Seeds))
	}
	for _, a := range rep.Arms {
		if a.Runs != 1 || len(a.SHA256) != 64 {
			t.Errorf("arm %s/%d: runs=%d sha=%q", a.Arm, a.Seed, a.Runs, a.SHA256)
		}
	}
	// 4 → 9 ranks on a fixed grid must speed LU up at every seed.
	for _, s := range rep.PerSeed {
		if s.Effect >= 0 {
			t.Errorf("seed %d effect %v — more ranks did not reduce sim_us", s.Seed, s.Effect)
		}
	}
	if rep.Verdict != Confirmed {
		t.Errorf("verdict = %q, want %q (effect %+v)", rep.Verdict, Confirmed, rep.Effect)
	}
	if !rep.InvariantsPass() {
		t.Errorf("invariants violated: %+v", rep.Invariants)
	}
	if len(rep.Invariants) != len(DefaultInvariants()) {
		t.Errorf("%d invariant results, want %d", len(rep.Invariants), len(DefaultInvariants()))
	}
}

// TestRunReportDeterminism: the same experiment under different worker and
// shard configurations yields byte-identical JSON and Markdown reports —
// the property CI gates on.
func TestRunReportDeterminism(t *testing.T) {
	e := smallExperiment()
	configs := []Config{
		{Workers: 1, Shards: 0}, // shards clamp to 2
		{Workers: 4, Shards: 3},
		{Workers: 2, Shards: 5},
	}
	var wantJSON, wantMD []byte
	for i, cfg := range configs {
		rep, err := Run(e, cfg)
		if err != nil {
			t.Fatalf("Run(%+v): %v", cfg, err)
		}
		var j, m bytes.Buffer
		if err := rep.WriteJSON(&j); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if err := rep.WriteMarkdown(&m); err != nil {
			t.Fatalf("WriteMarkdown: %v", err)
		}
		if i == 0 {
			wantJSON, wantMD = j.Bytes(), m.Bytes()
			continue
		}
		if !bytes.Equal(j.Bytes(), wantJSON) {
			t.Errorf("JSON report differs between %+v and %+v", configs[0], cfg)
		}
		if !bytes.Equal(m.Bytes(), wantMD) {
			t.Errorf("Markdown report differs between %+v and %+v", configs[0], cfg)
		}
	}
	// The JSON must round-trip and carry the schema marker jq gates on.
	var decoded map[string]any
	if err := json.Unmarshal(wantJSON, &decoded); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if v, ok := decoded["schema_version"].(float64); !ok || int(v) != SchemaVersion {
		t.Errorf("schema_version = %v", decoded["schema_version"])
	}
}

// TestRunRejectsInvalidExperiment: Run revalidates rather than trusting
// callers.
func TestRunRejectsInvalidExperiment(t *testing.T) {
	e := smallExperiment()
	e.Seeds = []uint64{1}
	if _, err := Run(e, Config{}); err == nil {
		t.Error("Run accepted a 1-seed experiment")
	}
}

// TestConfigNormalize: every configuration resolves to two canonical
// (shards ≥ 2) execution profiles that differ in both workers and shards.
func TestConfigNormalize(t *testing.T) {
	for _, cfg := range []Config{{}, {Workers: 1, Shards: 1}, {Workers: 8, Shards: 4}} {
		p, a := cfg.normalize()
		if p.Shards < 2 || a.Shards < 2 {
			t.Errorf("%+v: shards %d/%d below the canonical family", cfg, p.Shards, a.Shards)
		}
		if p.Shards == a.Shards {
			t.Errorf("%+v: executions share shard count %d", cfg, p.Shards)
		}
		if p.Workers == a.Workers {
			t.Errorf("%+v: executions share worker count %d", cfg, p.Workers)
		}
	}
}

// TestBuiltinSuiteWellFormed: every builtin experiment validates, carries
// a machine-checkable single delta at every declared seed, and has a
// unique ID resolvable through BuiltinByID.
func TestBuiltinSuiteWellFormed(t *testing.T) {
	suite := Builtin()
	if len(suite) < 5 {
		t.Fatalf("builtin suite has %d experiments, want ≥ 5", len(suite))
	}
	seen := map[string]bool{}
	for _, e := range suite {
		if seen[e.ID] {
			t.Errorf("duplicate builtin ID %q", e.ID)
		}
		seen[e.ID] = true
		if err := e.Validate(); err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		for _, seed := range e.Seeds {
			if _, err := e.CheckDelta(seed, campaign.KeyMode{Canon: true}); err != nil {
				t.Errorf("%s seed %d: %v", e.ID, seed, err)
			}
		}
		got, ok := BuiltinByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("BuiltinByID(%q) = %v, %v", e.ID, got.ID, ok)
		}
	}
	if _, ok := BuiltinByID("no-such-experiment"); ok {
		t.Error("BuiltinByID resolved an unknown ID")
	}
}
