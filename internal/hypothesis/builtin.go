package hypothesis

import (
	"repro/internal/campaign"
	"repro/internal/config"
	"repro/internal/topo"
	"repro/internal/workload"
)

// defaultSeeds are the workload seeds every builtin experiment runs under.
var defaultSeeds = []uint64{42, 123, 456}

// mildLognormal is the workload every builtin arm carries: enough per-tile
// spread that the seeds produce genuinely different executions, small
// enough that it does not drown the effect under test. The seed here is a
// placeholder — the harness substitutes each experiment seed into both
// arms.
func mildLognormal() *config.WorkloadSpec {
	return &config.WorkloadSpec{Dist: workload.DistLognormal, Sigma: 0.1, Seed: 1}
}

// dualXT4 is the workhorse machine of the builtin suite.
func dualXT4(ic *topo.Spec) campaign.MachineDim {
	return campaign.MachineDim{MachineSpec: config.MachineSpec{
		Preset: "xt4", CoresPerNode: 2, Interconnect: ic,
	}}
}

// collectiveArm builds a one-app LU spec whose convergence collective is
// the experiment's variable.
func collectiveArm(name, alg string, bytes, ranks int) campaign.Spec {
	g := config.GridSpec{Nx: 24, Ny: 24, Nz: 24}
	return campaign.Spec{
		Name:       name,
		Iterations: 1,
		Apps: []campaign.AppDim{{
			Preset: "lu", Grid: &g,
			Convergence: &config.ConvergenceSpec{Bytes: bytes, Alg: alg},
			Workload:    mildLognormal(),
		}},
		Machines: []campaign.MachineDim{dualXT4(&topo.Spec{Kind: topo.Torus2D})},
		Ranks:    []int{ranks},
	}
}

// ringVsRecdoubleLarge is the paper's collective crossover at a large
// payload: at 1 MiB and 64 ranks the ring's pipelined chunks beat
// recursive doubling's log₂P full-payload rounds. (At 256 KiB recursive
// doubling still wins on this fabric — the crossover sits between the
// two, which is why the small-payload twin below predicts the opposite
// sign.)
func ringVsRecdoubleLarge() Experiment {
	return Experiment{
		ID:     "ring-overtakes-recdouble-1m",
		Title:  "Ring all-reduce overtakes recursive doubling at 1 MiB",
		Family: "crossover",
		Hypothesis: "At a 1 MiB convergence payload on 64 torus-connected ranks, switching the " +
			"all-reduce from recursive doubling to ring decreases simulated runtime: the ring's " +
			"2(P−1) pipelined chunk transfers beat recursive doubling's log2(P) full-payload rounds " +
			"once the payload dwarfs per-message overhead.",
		Metric:    "sim_us",
		Direction: Decrease,
		MinEffect: 0.10,
		Seeds:     defaultSeeds,
		Baseline:  collectiveArm("recdouble-1m", "recdouble", 1048576, 64),
		Treatment: collectiveArm("ring-1m", "ring", 1048576, 64),
	}
}

// ringVsRecdoubleSmall is the other side of the same crossover: at a tiny
// payload the ring's extra rounds are pure overhead.
func ringVsRecdoubleSmall() Experiment {
	return Experiment{
		ID:     "ring-loses-at-8-bytes",
		Title:  "Ring all-reduce loses to recursive doubling at 8 bytes",
		Family: "crossover",
		Hypothesis: "At an 8-byte convergence payload on 64 torus-connected ranks, switching the " +
			"all-reduce from recursive doubling to ring increases simulated runtime: with nothing to " +
			"pipeline, the ring pays 2(P−1) latencies against recursive doubling's log2(P).",
		Metric:    "sim_us",
		Direction: Increase,
		MinEffect: 0.01,
		Seeds:     defaultSeeds,
		Baseline:  collectiveArm("recdouble-8b", "recdouble", 8, 64),
		Treatment: collectiveArm("ring-8b", "ring", 8, 64),
	}
}

// coresArm builds a sweep3d spec over several rank counts on bus-only
// nodes with the given core count per shared bus.
func coresArm(name string, cores int) campaign.Spec {
	g := config.GridSpec{Nx: 24, Ny: 24, Nz: 24}
	return campaign.Spec{
		Name:       name,
		Iterations: 1,
		Apps: []campaign.AppDim{{
			Preset: "sweep3d", Grid: &g, Workload: mildLognormal(),
		}},
		Machines: []campaign.MachineDim{{MachineSpec: config.MachineSpec{
			Preset: "xt4", CoresPerNode: cores,
		}}},
		Ranks: []int{16, 36, 64},
	}
}

// busContentionDrift is the paper's multicore question as an
// abstraction-error experiment: packing more cores onto one shared bus
// adds queueing the uncontended LogGP model cannot see, so the model
// should drift away from the simulator as the bus gets busier. (A 2D
// torus, by contrast, barely moves the error at these sizes — its hop
// costs are priced by the model, and per-link queueing stays small —
// which is why the node bus, not the fabric, carries this hypothesis.)
func busContentionDrift() Experiment {
	return Experiment{
		ID:     "bus-sharing-widens-model-error",
		Title:  "On-node bus sharing widens the model error",
		Family: "accuracy-regime",
		Hypothesis: "Quadrupling the cores per shared node bus from 2 to 8 increases the model's " +
			"absolute relative error on Sweep3D: every core's boundary exchange queues on one bus, " +
			"and the analytic model prices each transfer at the uncontended rate.",
		Metric:    "abs_err",
		Direction: Increase,
		MinEffect: 0.5,
		Seeds:     defaultSeeds,
		Baseline:  coresArm("sweep3d-2core", 2),
		Treatment: coresArm("sweep3d-8core", 8),
	}
}

// sigmaArm builds an LU spec with a lognormal per-tile workload of the
// given spread, swept over the fast-net/baseline/slow-net overrides so the
// link-bandwidth monotonicity invariant has material to chew on.
func sigmaArm(name string, sigma float64) campaign.Spec {
	g := config.GridSpec{Nx: 24, Ny: 24, Nz: 24}
	return campaign.Spec{
		Name:       name,
		Iterations: 1,
		Apps: []campaign.AppDim{{
			Preset: "lu", Grid: &g,
			Workload: &config.WorkloadSpec{Dist: workload.DistLognormal, Sigma: sigma, Seed: 1},
		}},
		Machines: []campaign.MachineDim{dualXT4(nil)},
		Ranks:    []int{16, 36},
		LogGP: []campaign.ParamOverride{
			{Name: "fast-net", Scale: map[string]float64{"L": 0.5, "G": 0.5}},
			{Name: "baseline"},
			{Name: "slow-net", Scale: map[string]float64{"L": 4, "G": 2}},
		},
	}
}

// imbalanceDrift is the workloads-campaign finding as a controlled
// experiment. The metric is the signed relative error, not its absolute
// value: at mild spread the uniform-compute model sits ~9% above the
// simulator, and widening the spread inflates the simulated critical path
// the model cannot see, dragging the signed error down through zero into
// underprediction. |rel err| is non-monotone across that zero crossing
// (it first shrinks, then grows), so the directional claim lives on the
// signed error.
func imbalanceDrift() Experiment {
	return Experiment{
		ID:     "imbalance-drags-model-optimistic",
		Title:  "Load imbalance drags the model toward underprediction",
		Family: "accuracy-regime",
		Hypothesis: "Raising the lognormal per-tile compute spread from σ=0.1 to σ=0.6 decreases the " +
			"model's signed relative error on LU: the analytic model keeps the paper's " +
			"uniform-compute assumption, while the simulator serialises wavefronts behind the " +
			"slowest tile, so the model slides from overprediction toward underprediction.",
		Metric:    "rel_err",
		Direction: Decrease,
		MinEffect: 0.5,
		Seeds:     defaultSeeds,
		Baseline:  sigmaArm("lu-sigma01", 0.1),
		Treatment: sigmaArm("lu-sigma06", 0.6),
	}
}

// rankArm builds a sweep3d spec at one rank count on the bus-only machine.
func rankArm(name string, ranks int) campaign.Spec {
	g := config.GridSpec{Nx: 24, Ny: 24, Nz: 24}
	return campaign.Spec{
		Name:       name,
		Iterations: 1,
		Apps: []campaign.AppDim{{
			Preset: "sweep3d", Grid: &g, Workload: mildLognormal(),
		}},
		Machines: []campaign.MachineDim{dualXT4(nil)},
		Ranks:    []int{ranks},
	}
}

// strongScaling is the sanity-anchor hypothesis: at a fixed problem size,
// quadrupling the rank count must cut simulated runtime.
func strongScaling() Experiment {
	return Experiment{
		ID:     "strong-scaling-16-to-64",
		Title:  "Strong scaling: 64 ranks beat 16 on a fixed grid",
		Family: "monotonicity",
		Hypothesis: "Raising the rank count from 16 to 64 at a fixed 24³ grid decreases simulated " +
			"runtime: the per-rank compute shrinks 4×, and at this problem size the extra " +
			"communication cannot eat the whole gain.",
		Metric:    "sim_us",
		Direction: Decrease,
		MinEffect: 0.10,
		Seeds:     defaultSeeds,
		Baseline:  rankArm("sweep3d-p16", 16),
		Treatment: rankArm("sweep3d-p64", 64),
	}
}

// overrideArm builds an LU spec under a single LogGP override.
func overrideArm(name string, ov campaign.ParamOverride) campaign.Spec {
	g := config.GridSpec{Nx: 24, Ny: 24, Nz: 24}
	return campaign.Spec{
		Name:       name,
		Iterations: 1,
		Apps: []campaign.AppDim{{
			Preset: "lu", Grid: &g, Workload: mildLognormal(),
		}},
		Machines: []campaign.MachineDim{dualXT4(nil)},
		Ranks:    []int{36},
		LogGP:    []campaign.ParamOverride{ov},
	}
}

// slowNetwork is the machine-perturbation hypothesis: an
// order-of-magnitude network degradation must cost simulated time. (The
// scale factors are deliberately brutal — at 24³ on 36 ranks LU is
// compute-bound enough that a mere 4×/2× degradation costs only ~0.5%.)
func slowNetwork() Experiment {
	return Experiment{
		ID:     "slow-network-costs-time",
		Title:  "A 16× latency / 8× gap network slows LU down",
		Family: "robustness",
		Hypothesis: "Scaling the machine's LogGP latency by 16 and gap by 8 increases simulated " +
			"runtime on 36-rank LU: wavefront pipelining hides some latency, but not an " +
			"order-of-magnitude degradation.",
		Metric:    "sim_us",
		Direction: Increase,
		MinEffect: 0.01,
		Seeds:     defaultSeeds,
		Baseline:  overrideArm("lu-baseline-net", campaign.ParamOverride{Name: "baseline"}),
		Treatment: overrideArm("lu-slow-net",
			campaign.ParamOverride{Name: "slow-net", Scale: map[string]float64{"L": 16, "G": 8}}),
	}
}

// Builtin returns the builtin experiment suite, in report order.
func Builtin() []Experiment {
	return []Experiment{
		ringVsRecdoubleLarge(),
		ringVsRecdoubleSmall(),
		busContentionDrift(),
		imbalanceDrift(),
		strongScaling(),
		slowNetwork(),
	}
}

// BuiltinByID resolves a builtin experiment by its ID; ok is false for
// unknown IDs.
func BuiltinByID(id string) (Experiment, bool) {
	for _, e := range Builtin() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
