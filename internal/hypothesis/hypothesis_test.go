package hypothesis

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/workload"
)

// smallArm builds a tiny one-run LU arm the cheap tests perturb.
func smallArm(mutate func(*campaign.Spec)) campaign.Spec {
	g := config.GridSpec{Nx: 12, Ny: 12, Nz: 12}
	s := campaign.Spec{
		Name:       "arm",
		Iterations: 1,
		Apps: []campaign.AppDim{{
			Preset: "lu", Grid: &g,
			Workload: &config.WorkloadSpec{Dist: workload.DistLognormal, Sigma: 0.1, Seed: 1},
		}},
		Machines: []campaign.MachineDim{{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 2}}},
		Ranks:    []int{4},
	}
	if mutate != nil {
		mutate(&s)
	}
	return s
}

// smallExperiment is a valid single-delta experiment (rank count 4 vs 9).
func smallExperiment() Experiment {
	return Experiment{
		ID:         "test-ranks",
		Title:      "test",
		Hypothesis: "more ranks run faster",
		Metric:     "sim_us",
		Direction:  Decrease,
		MinEffect:  0.01,
		Seeds:      []uint64{1, 2, 3},
		Baseline:   smallArm(nil),
		Treatment:  smallArm(func(s *campaign.Spec) { s.Ranks = []int{9} }),
	}
}

func TestValidate(t *testing.T) {
	if err := smallExperiment().Validate(); err != nil {
		t.Fatalf("valid experiment rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Experiment)
		want   string
	}{
		{"empty id", func(e *Experiment) { e.ID = "" }, "needs an id"},
		{"id with slash", func(e *Experiment) { e.ID = "a/b" }, "filename stem"},
		{"no title", func(e *Experiment) { e.Title = "" }, "title"},
		{"bad metric", func(e *Experiment) { e.Metric = "wall_clock" }, "unknown metric"},
		{"bad direction", func(e *Experiment) { e.Direction = "sideways" }, "direction"},
		{"negative min effect", func(e *Experiment) { e.MinEffect = -1 }, "negative min effect"},
		{"two seeds", func(e *Experiment) { e.Seeds = []uint64{1, 2} }, "at least 3"},
		{"duplicate seeds", func(e *Experiment) { e.Seeds = []uint64{1, 2, 2} }, "twice"},
		{"no workload", func(e *Experiment) {
			e.Baseline.Apps[0].Workload = nil
			e.Treatment.Apps = []campaign.AppDim{{Preset: "lu", Grid: e.Treatment.Apps[0].Grid}}
		}, "inert"},
		{"invalid arm", func(e *Experiment) { e.Baseline.Ranks = nil }, "baseline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := smallExperiment()
			// Deep-copy the mutable slices the mutations touch.
			e.Baseline.Apps = append([]campaign.AppDim(nil), e.Baseline.Apps...)
			e.Treatment.Apps = append([]campaign.AppDim(nil), e.Treatment.Apps...)
			tc.mutate(&e)
			err := e.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestCheckDeltaSingle: a valid experiment reports its one differing
// component with both rendered values.
func TestCheckDeltaSingle(t *testing.T) {
	d, err := smallExperiment().CheckDelta(7, campaign.KeyMode{Canon: true})
	if err != nil {
		t.Fatalf("CheckDelta: %v", err)
	}
	if d.Component != "placement" {
		t.Errorf("delta component = %q, want placement", d.Component)
	}
	if d.Baseline == d.Treatment || d.Baseline == "" || d.Treatment == "" {
		t.Errorf("delta values %q vs %q must be distinct and non-empty", d.Baseline, d.Treatment)
	}
}

// TestCheckDeltaRejectsTwoDimensions: the acceptance-criterion case — an
// experiment whose arms differ in two dimensions (rank count AND
// interconnect) is rejected with both components named.
func TestCheckDeltaRejectsTwoDimensions(t *testing.T) {
	e := smallExperiment()
	e.Treatment = smallArm(func(s *campaign.Spec) {
		s.Ranks = []int{9}
		s.Machines[0].Interconnect = &topo.Spec{Kind: topo.Torus2D}
	})
	_, err := e.CheckDelta(7, campaign.KeyMode{Canon: true})
	if err == nil {
		t.Fatal("two-dimension experiment passed the single-delta check")
	}
	for _, want := range []string{"2 dimensions", "interconnect", "placement", "exactly one"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestCheckDeltaRejectsIdenticalArms: a zero-dimension experiment measures
// nothing; a seed-only "delta" collapses to this, because the harness
// substitutes the same seed into both arms.
func TestCheckDeltaRejectsIdenticalArms(t *testing.T) {
	e := smallExperiment()
	e.Treatment = smallArm(func(s *campaign.Spec) { s.Apps[0].Workload.Seed = 99 })
	_, err := e.CheckDelta(7, campaign.KeyMode{Canon: true})
	if err == nil || !strings.Contains(err.Error(), "identical in both arms") {
		t.Fatalf("identical arms not rejected: %v", err)
	}
}

// TestCheckDeltaRejectsMismatchedExpansion: arms of different run counts
// cannot pair up.
func TestCheckDeltaRejectsMismatchedExpansion(t *testing.T) {
	e := smallExperiment()
	e.Treatment = smallArm(func(s *campaign.Spec) { s.Ranks = []int{9, 16} })
	_, err := e.CheckDelta(7, campaign.KeyMode{Canon: true})
	if err == nil || !strings.Contains(err.Error(), "pair up") {
		t.Fatalf("mismatched expansion not rejected: %v", err)
	}
}

// TestWithSeed: the substitution reaches both workload carriers, renames
// the spec, and leaves the original untouched.
func TestWithSeed(t *testing.T) {
	orig := smallArm(nil)
	seeded := withSeed(orig, 77)
	if got := seeded.Apps[0].Workload.Seed; got != 77 {
		t.Errorf("seeded workload seed = %d, want 77", got)
	}
	if got := orig.Apps[0].Workload.Seed; got != 1 {
		t.Errorf("withSeed mutated the original spec (seed %d)", got)
	}
	if !strings.HasSuffix(seeded.Name, "/seed77") {
		t.Errorf("seeded name %q lacks the seed suffix", seeded.Name)
	}
}

func TestMetricNamesResolve(t *testing.T) {
	r := campaign.RunResult{SimMicros: 3, ModelMicros: 2, Events: 5}
	for _, name := range MetricNames() {
		if _, err := MetricValue(name, r); err != nil {
			t.Errorf("MetricValue(%q): %v", name, err)
		}
	}
	if v, err := MetricValue("sim_us", r); err != nil || v != 3 {
		t.Errorf("MetricValue(sim_us) = %v, %v", v, err)
	}
	if _, err := MetricValue("nope", r); err == nil {
		t.Error("unknown metric did not error")
	}
}

func TestVerdict(t *testing.T) {
	eff := func(min, med, max float64) stats.Effect { return stats.Effect{N: 3, Min: min, Median: med, Max: max} }
	cases := []struct {
		name      string
		e         stats.Effect
		direction string
		min       float64
		want      string
	}{
		{"confirmed increase", eff(0.05, 0.10, 0.20), Increase, 0.01, Confirmed},
		{"confirmed decrease", eff(-0.20, -0.10, -0.05), Decrease, 0.01, Confirmed},
		{"refuted (wrong direction)", eff(0.05, 0.10, 0.20), Decrease, 0.01, Refuted},
		{"inconclusive mixed signs", eff(-0.05, 0.10, 0.20), Increase, 0.01, Inconclusive},
		{"inconclusive below threshold", eff(0.001, 0.002, 0.003), Increase, 0.01, Inconclusive},
		{"inconclusive empty", stats.Effect{}, Increase, 0.01, Inconclusive},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := verdict(tc.e, tc.direction, tc.min); got != tc.want {
				t.Errorf("verdict = %q, want %q", got, tc.want)
			}
		})
	}
}
