package prof

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

// TestRemovedTraceAliasPointsToExectrace: the -trace alias is gone, and
// anyone still typing it gets an unknown-flag error whose usage text leads
// with the rename pointer.
func TestRemovedTraceAliasPointsToExectrace(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	Register(fs)

	if fs.Lookup("trace") != nil {
		t.Fatal("-trace is still registered")
	}
	if err := fs.Parse([]string{"-trace=out.trace"}); err == nil {
		t.Fatal("parsing -trace succeeded, want unknown-flag error")
	}
	out := buf.String()
	if !strings.Contains(out, "renamed -exectrace") {
		t.Errorf("usage output lacks the rename pointer:\n%s", out)
	}
	if !strings.Contains(out, "-exectrace") || !strings.Contains(out, "-cpuprofile") {
		t.Errorf("usage output lacks the flag listing:\n%s", out)
	}
}

// TestRegisterFlags: the three profiling flags parse into their fields.
func TestRegisterFlags(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	fs.SetOutput(&bytes.Buffer{})
	f := Register(fs)
	if err := fs.Parse([]string{"-cpuprofile=c.pb", "-memprofile=m.pb", "-exectrace=t.out"}); err != nil {
		t.Fatal(err)
	}
	if f.CPU != "c.pb" || f.Mem != "m.pb" || f.Trace != "t.out" {
		t.Errorf("parsed %+v", *f)
	}
}
