// Package prof wires the conventional -cpuprofile/-memprofile/-exectrace
// triple into the simulator's command-line tools. Long sweeps and
// huge-rank parallel runs are exactly the workloads worth profiling, and
// every tool spelling the same three flags the same way keeps
// `go tool pprof`/`go tool trace` workflows uniform across the repo.
//
// The runtime execution-trace flag is -exectrace. The old -trace spelling
// was removed after a deprecation period — the plain name is reserved for
// the simulator's own trace outputs (-chrome-trace timelines) — and the
// flag set's usage text points anyone still typing it at the new name.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the three profiling destinations; empty strings disable the
// corresponding collector.
type Flags struct {
	CPU   string
	Mem   string
	Trace string
}

// Register declares -cpuprofile, -memprofile and -exectrace on the given
// flag set (use flag.CommandLine for a command's top level) and returns
// the struct the parsed values land in.
//
// The removed -trace alias gets a breadcrumb: the flag set's usage text —
// which flag.Parse prints on any unknown flag, -trace included — leads
// with a pointer to -exectrace.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&f.Trace, "exectrace", "", "write a runtime execution trace to this file")
	prev := fs.Usage
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "note: the -trace flag was renamed -exectrace")
		if prev != nil {
			prev()
		} else {
			fs.PrintDefaults()
		}
	}
	return f
}

// Start begins the requested collectors and returns a stop function that
// flushes them; the caller must run it before exiting (a plain defer is
// fine when the command exits by returning from main). The heap profile is
// written at stop time, after a GC, so it reflects live retained memory.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if f.CPU != "" {
		cpuFile, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	if f.Trace != "" {
		traceFile, err = os.Create(f.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		cleanup()
		if f.Mem == "" {
			return nil
		}
		mf, err := os.Create(f.Mem)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		defer mf.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		return nil
	}, nil
}
