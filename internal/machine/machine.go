// Package machine describes parallel platforms: node counts, cores per
// node, the Cx × Cy rectangle that a node's cores occupy in the logical
// processor grid (paper Section 4.3), and the node-internal interconnect
// (shared bus vs. partitioned bus groups, paper Section 5.3).
package machine

import (
	"fmt"

	"repro/internal/logp"
	"repro/internal/topo"
)

// Machine is a parallel platform configuration.
type Machine struct {
	Name string
	// Params is the LogGP parameter set governing communication costs.
	Params logp.Params
	// CoresPerNode is the number of cores on each node (C in the paper's
	// all-reduce model, equation (9)).
	CoresPerNode int
	// Cx, Cy give the rectangle of the logical processor grid mapped onto
	// one node's cores; Cx × Cy must equal CoresPerNode (Table 6).
	Cx, Cy int
	// BusGroups is the number of independent shared-bus/NIC groups within a
	// node. The XT4 has one shared bus per node. Paper Section 5.3 evaluates
	// a 16-core node "provisioned with a separate shared bus, shared memory,
	// and NIC for each group of 4 cores", i.e. BusGroups = 4.
	BusGroups int
	// Interconnect describes the inter-node fabric. The zero value is the
	// paper's flat-wire assumption (uncontended LogGP between nodes); torus
	// and fat-tree specs route off-node traffic over explicit contended
	// links (internal/topo).
	Interconnect topo.Spec
}

// WithInterconnect returns a copy of the machine using the given inter-node
// fabric.
func (m Machine) WithInterconnect(spec topo.Spec) Machine {
	m.Interconnect = spec
	return m
}

// XT4 returns the dual-core Cray XT4 configuration used throughout the
// paper's validation: 2 cores per node arranged 1×2 in the processor grid,
// one shared bus.
func XT4() Machine {
	return Machine{
		Name:         "Cray XT4 (dual-core)",
		Params:       logp.XT4(),
		CoresPerNode: 2,
		Cx:           1,
		Cy:           2,
		BusGroups:    1,
	}
}

// XT4SingleCore returns the XT4 configured to run one core per node
// (Section 4.2's baseline case; all communication is off-node).
func XT4SingleCore() Machine {
	return Machine{
		Name:         "Cray XT4 (single-core mode)",
		Params:       logp.XT4(),
		CoresPerNode: 1,
		Cx:           1,
		Cy:           1,
		BusGroups:    1,
	}
}

// SP2 returns the IBM SP/2 configuration referenced for contrast in
// Sections 3.1 and 5.1 (single-core nodes, high L and o).
func SP2() Machine {
	return Machine{
		Name:         "IBM SP/2",
		Params:       logp.SP2(),
		CoresPerNode: 1,
		Cx:           1,
		Cy:           1,
		BusGroups:    1,
	}
}

// XT4MultiCore returns a hypothetical XT4-like machine with the given number
// of cores per node sharing one bus, using the core rectangles of paper
// Table 6 and Section 5.3: 1×1, 1×2, 2×2, 2×4, 4×4.
func XT4MultiCore(cores int) (Machine, error) {
	cx, cy, err := CoreRectangle(cores)
	if err != nil {
		return Machine{}, err
	}
	return Machine{
		Name:         fmt.Sprintf("XT4-like (%d cores/node)", cores),
		Params:       logp.XT4(),
		CoresPerNode: cores,
		Cx:           cx,
		Cy:           cy,
		BusGroups:    1,
	}, nil
}

// XT4MultiCoreGrouped is XT4MultiCore with the node's cores split into the
// given number of independent bus/NIC groups (Section 5.3's alternative
// 16-core node design with a bus per 4-core group).
func XT4MultiCoreGrouped(cores, groups int) (Machine, error) {
	m, err := XT4MultiCore(cores)
	if err != nil {
		return Machine{}, err
	}
	if groups <= 0 || cores%groups != 0 {
		return Machine{}, fmt.Errorf("machine: %d cores cannot form %d bus groups", cores, groups)
	}
	m.BusGroups = groups
	m.Name = fmt.Sprintf("XT4-like (%d cores/node, %d bus groups)", cores, groups)
	return m, nil
}

// CoreRectangle returns the paper's Cx × Cy arrangement for a node with the
// given number of cores: the most-square rectangle with Cy ≥ Cx, matching
// Table 6 (1×2, 2×2, 2×4) and Section 5.3 (4×4 for 16 cores).
func CoreRectangle(cores int) (cx, cy int, err error) {
	if cores <= 0 {
		return 0, 0, fmt.Errorf("machine: invalid core count %d", cores)
	}
	cx = 1
	for c := 1; c*c <= cores; c++ {
		if cores%c == 0 {
			cx = c
		}
	}
	return cx, cores / cx, nil
}

// Validate reports an error for inconsistent configurations.
func (m Machine) Validate() error {
	if err := m.Params.Validate(); err != nil {
		return err
	}
	if m.CoresPerNode <= 0 {
		return fmt.Errorf("machine %q: invalid cores per node %d", m.Name, m.CoresPerNode)
	}
	if m.Cx*m.Cy != m.CoresPerNode {
		return fmt.Errorf("machine %q: core rectangle %dx%d does not cover %d cores",
			m.Name, m.Cx, m.Cy, m.CoresPerNode)
	}
	if m.BusGroups <= 0 || m.CoresPerNode%m.BusGroups != 0 {
		return fmt.Errorf("machine %q: %d cores cannot form %d bus groups",
			m.Name, m.CoresPerNode, m.BusGroups)
	}
	if err := m.Interconnect.Validate(); err != nil {
		return fmt.Errorf("machine %q: %w", m.Name, err)
	}
	return nil
}

// CoresPerBus returns the number of cores sharing each bus/NIC group.
func (m Machine) CoresPerBus() int { return m.CoresPerNode / m.BusGroups }

// Nodes returns the number of nodes needed to host p cores (rounded up).
func (m Machine) Nodes(p int) int {
	return (p + m.CoresPerNode - 1) / m.CoresPerNode
}

// ContentionFactor returns the multiplier on the per-message interference
// term I = odma + size×Gdma applied to Send and Receive operations in model
// equation (r4), per paper Table 6 generalised as described in DESIGN.md:
//
//	1 core/bus:  0   (no sharing)
//	2 cores/bus: 0.5 (I added to two of the four operations)
//	4 cores/bus: 1
//	8 cores/bus: 2
//	16 cores/bus: 4  (factor = cores/4 for ≥ 4 cores per bus)
func (m Machine) ContentionFactor() float64 {
	c := m.CoresPerBus()
	switch {
	case c <= 1:
		return 0
	case c == 2:
		return 0.5
	default:
		return float64(c) / 4
	}
}

// String implements fmt.Stringer.
func (m Machine) String() string {
	s := fmt.Sprintf("%s [%d cores/node as %dx%d, %d bus group(s), %s]",
		m.Name, m.CoresPerNode, m.Cx, m.Cy, m.BusGroups, m.Params.Name)
	if m.Interconnect.Kind != topo.Bus {
		s += " via " + m.Interconnect.String()
	}
	return s
}
