package machine

import (
	"strings"
	"testing"

	"repro/internal/topo"
)

func TestStandardMachinesValidate(t *testing.T) {
	for _, m := range []Machine{XT4(), XT4SingleCore(), SP2()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestXT4Shape(t *testing.T) {
	m := XT4()
	if m.CoresPerNode != 2 || m.Cx != 1 || m.Cy != 2 || m.BusGroups != 1 {
		t.Errorf("XT4 = %+v", m)
	}
}

func TestCoreRectangle(t *testing.T) {
	// Table 6 / Section 5.3 arrangements.
	for _, tc := range []struct{ cores, cx, cy int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {8, 2, 4}, {16, 4, 4}, {6, 2, 3}, {12, 3, 4},
	} {
		cx, cy, err := CoreRectangle(tc.cores)
		if err != nil {
			t.Fatalf("CoreRectangle(%d): %v", tc.cores, err)
		}
		if cx != tc.cx || cy != tc.cy {
			t.Errorf("CoreRectangle(%d) = %dx%d, want %dx%d", tc.cores, cx, cy, tc.cx, tc.cy)
		}
	}
	if _, _, err := CoreRectangle(0); err == nil {
		t.Error("CoreRectangle(0) accepted")
	}
}

func TestXT4MultiCore(t *testing.T) {
	for _, cores := range []int{1, 2, 4, 8, 16} {
		m, err := XT4MultiCore(cores)
		if err != nil {
			t.Fatalf("XT4MultiCore(%d): %v", cores, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("XT4MultiCore(%d): %v", cores, err)
		}
		if m.Cx*m.Cy != cores {
			t.Errorf("rectangle %dx%d does not cover %d cores", m.Cx, m.Cy, cores)
		}
	}
	if _, err := XT4MultiCore(-2); err == nil {
		t.Error("negative cores accepted")
	}
}

func TestXT4MultiCoreGrouped(t *testing.T) {
	m, err := XT4MultiCoreGrouped(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.BusGroups != 4 || m.CoresPerBus() != 4 {
		t.Errorf("grouped machine = %+v", m)
	}
	if _, err := XT4MultiCoreGrouped(16, 3); err == nil {
		t.Error("16 cores in 3 groups accepted")
	}
	if _, err := XT4MultiCoreGrouped(16, 0); err == nil {
		t.Error("zero groups accepted")
	}
}

func TestValidateRejectsInconsistent(t *testing.T) {
	m := XT4()
	m.Cx = 2 // 2×2 ≠ 2 cores
	if err := m.Validate(); err == nil {
		t.Error("bad rectangle accepted")
	}
	m = XT4()
	m.CoresPerNode = 0
	if err := m.Validate(); err == nil {
		t.Error("zero cores accepted")
	}
	m = XT4()
	m.BusGroups = 3
	if err := m.Validate(); err == nil {
		t.Error("2 cores in 3 bus groups accepted")
	}
	m = XT4()
	m.Params.L = -5
	if err := m.Validate(); err == nil {
		t.Error("invalid params accepted")
	}
	m = XT4().WithInterconnect(topo.Spec{Kind: topo.Torus2D, Dims: []int{4}})
	if err := m.Validate(); err == nil {
		t.Error("malformed interconnect accepted")
	}
	m = XT4().WithInterconnect(topo.Spec{Kind: topo.FatTree, LeafRadix: 8})
	if err := m.Validate(); err != nil {
		t.Errorf("fat-tree interconnect rejected: %v", err)
	}
	if !strings.Contains(m.String(), "fattree") {
		t.Errorf("String() = %q misses the fabric", m)
	}
}

func TestContentionFactor(t *testing.T) {
	// Paper Table 6: 1×2 → I on two of four ops (factor 0.5 on all four),
	// 2×2 → I each (1), 2×4 → 2I each (2); generalised 4×4 → 4I (4).
	for _, tc := range []struct {
		cores, groups int
		want          float64
	}{
		{1, 1, 0}, {2, 1, 0.5}, {4, 1, 1}, {8, 1, 2}, {16, 1, 4},
		{16, 4, 1},  // four cores per bus → 2×2 behaviour
		{16, 2, 2},  // eight per bus
		{16, 16, 0}, // one per bus
	} {
		m, err := XT4MultiCoreGrouped(tc.cores, tc.groups)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.ContentionFactor(); got != tc.want {
			t.Errorf("ContentionFactor(%d cores, %d groups) = %v, want %v",
				tc.cores, tc.groups, got, tc.want)
		}
	}
}

func TestNodes(t *testing.T) {
	m := XT4()
	if got := m.Nodes(8192); got != 4096 {
		t.Errorf("Nodes(8192) = %d", got)
	}
	if got := m.Nodes(3); got != 2 {
		t.Errorf("Nodes(3) = %d, want 2 (rounded up)", got)
	}
}

func TestString(t *testing.T) {
	s := XT4().String()
	for _, want := range []string{"XT4", "1x2", "2 cores"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
