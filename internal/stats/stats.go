// Package stats provides the small statistical utilities used by the
// parameter-fitting and validation machinery: least-squares linear fits,
// relative-error summaries and simple aggregates.
package stats

import (
	"fmt"
	"math"
)

// LinearFit returns the least-squares line y = a + b·x through the points.
// It panics if fewer than two points are given or all x are identical.
func LinearFit(xs, ys []float64) (a, b float64) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: mismatched lengths %d vs %d", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		panic("stats: need at least two points for a linear fit")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: degenerate x values in linear fit")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b
}

// RelErr returns |predicted − actual| / |actual|; it returns the absolute
// error if actual is zero.
func RelErr(predicted, actual float64) float64 {
	if actual == 0 {
		return math.Abs(predicted)
	}
	return math.Abs(predicted-actual) / math.Abs(actual)
}

// SignedRelErr returns (predicted − actual)/actual, positive when the
// prediction is high.
func SignedRelErr(predicted, actual float64) float64 {
	if actual == 0 {
		return predicted
	}
	return (predicted - actual) / actual
}

// Mean returns the arithmetic mean; zero for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum; negative infinity for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum; positive infinity for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// ErrorSummary aggregates relative errors between prediction/measurement
// pairs.
type ErrorSummary struct {
	N         int
	MeanAbs   float64 // mean |relative error|
	MaxAbs    float64 // max |relative error|
	MeanSgn   float64 // mean signed relative error (bias)
	WorstPred float64 // prediction at the worst point
	WorstAct  float64 // measurement at the worst point
}

// Summarize computes an ErrorSummary over paired predictions and
// measurements.
func Summarize(predicted, actual []float64) ErrorSummary {
	if len(predicted) != len(actual) {
		panic(fmt.Sprintf("stats: mismatched lengths %d vs %d", len(predicted), len(actual)))
	}
	var s ErrorSummary
	s.N = len(predicted)
	for i := range predicted {
		re := RelErr(predicted[i], actual[i])
		s.MeanAbs += re
		s.MeanSgn += SignedRelErr(predicted[i], actual[i])
		if re > s.MaxAbs {
			s.MaxAbs = re
			s.WorstPred = predicted[i]
			s.WorstAct = actual[i]
		}
	}
	if s.N > 0 {
		s.MeanAbs /= float64(s.N)
		s.MeanSgn /= float64(s.N)
	}
	return s
}

// String implements fmt.Stringer.
func (s ErrorSummary) String() string {
	return fmt.Sprintf("n=%d mean|err|=%.2f%% max|err|=%.2f%% bias=%+.2f%%",
		s.N, s.MeanAbs*100, s.MaxAbs*100, s.MeanSgn*100)
}
