// Package stats provides the small statistical utilities used by the
// parameter-fitting, validation and campaign machinery: least-squares
// linear fits, relative-error summaries, simple aggregates, a streaming
// single-pass aggregator and percentile estimation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// LinearFit returns the least-squares line y = a + b·x through the points.
// It panics if fewer than two points are given or all x are identical.
func LinearFit(xs, ys []float64) (a, b float64) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: mismatched lengths %d vs %d", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		panic("stats: need at least two points for a linear fit")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("stats: degenerate x values in linear fit")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b
}

// RelErr returns |predicted − actual| / |actual|; it returns the absolute
// error if actual is zero.
func RelErr(predicted, actual float64) float64 {
	if actual == 0 {
		return math.Abs(predicted)
	}
	return math.Abs(predicted-actual) / math.Abs(actual)
}

// SignedRelErr returns (predicted − actual)/actual, positive when the
// prediction is high.
func SignedRelErr(predicted, actual float64) float64 {
	if actual == 0 {
		return predicted
	}
	return (predicted - actual) / actual
}

// Mean returns the arithmetic mean; zero for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum; negative infinity for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum; positive infinity for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Stream is a single-pass streaming aggregator: count, sum, extrema and
// Welford-updated mean/variance. The zero value is an empty stream. It is
// the building block of campaign per-dimension summaries, where thousands
// of run results are folded without retaining them.
type Stream struct {
	n        int
	mean, m2 float64
	sum      float64
	min, max float64
}

// Add folds one observation into the stream.
func (s *Stream) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	s.sum += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() int { return s.n }

// Sum returns the running sum; zero for an empty stream.
func (s *Stream) Sum() float64 { return s.sum }

// Mean returns the running mean; zero for an empty stream.
func (s *Stream) Mean() float64 { return s.mean }

// Min returns the smallest observation; zero for an empty stream.
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation; zero for an empty stream.
func (s *Stream) Max() float64 { return s.max }

// Var returns the population variance; zero with fewer than two
// observations.
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Stream) Std() float64 { return math.Sqrt(s.Var()) }

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs by linear
// interpolation between order statistics; xs is not modified. The edge
// cases are defined, not panics: an empty xs yields 0 (the convention of
// Stream's empty-stream accessors), and a p that is NaN or outside [0, 1]
// yields NaN — an impossible quantile a report renders as "NaN" instead of
// crashing the sweep that computed thousands of valid rows.
func Percentile(xs []float64, p float64) float64 {
	return Percentiles(xs, p)[0]
}

// Percentiles returns the quantiles of xs at each p in ps, sharing one sort
// of a copy of xs across all of them. Edge cases follow Percentile: an
// empty xs yields all zeros, an invalid p yields NaN for that entry only.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, p := range ps {
		if p < 0 || p > 1 || math.IsNaN(p) {
			out[i] = math.NaN()
			continue
		}
		pos := p * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		out[i] = sorted[lo] + frac*(sorted[hi]-sorted[lo])
	}
	return out
}

// RelChange returns the relative change (treat − base)/base of a paired
// observation — the effect-size primitive of the hypothesis harness:
// positive when the treatment arm's value is larger. When base is zero the
// change is reported as treat itself (the SignedRelErr convention), so a
// zero baseline is defined, not a panic or an infinity.
func RelChange(base, treat float64) float64 {
	if base == 0 {
		return treat
	}
	return (treat - base) / base
}

// PairedRelChange returns the element-wise relative changes between paired
// baseline and treatment observations. Edge cases are defined, not panics
// (the Percentiles discipline): mismatched lengths yield nil — an
// impossible pairing a caller detects with one nil check instead of
// crashing the sweep that produced the slices — and two empty slices yield
// an empty, non-nil slice.
func PairedRelChange(base, treat []float64) []float64 {
	if len(base) != len(treat) {
		return nil
	}
	out := make([]float64, len(base))
	for i := range base {
		out[i] = RelChange(base[i], treat[i])
	}
	return out
}

// Effect summarises a set of per-seed effect sizes by its extremes and
// median — the three numbers a confirm/refute verdict is rendered from:
// the sign of every seed (Min and Max straddle zero iff the seeds
// disagree) and the magnitude of the typical one (Median).
type Effect struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Max    float64 `json:"max"`
}

// EffectOf folds per-seed effect sizes into an Effect. An empty slice
// yields the zero Effect (the empty-stream convention of Stream and
// Percentiles).
func EffectOf(effects []float64) Effect {
	if len(effects) == 0 {
		return Effect{}
	}
	q := Percentiles(effects, 0, 0.5, 1)
	return Effect{N: len(effects), Min: q[0], Median: q[1], Max: q[2]}
}

// Consistent reports whether every summarised effect has the same sign as
// sign (+1 or −1): the all-seeds-agree condition of a Confirmed or Refuted
// verdict. A zero effect at any seed, or an empty Effect, is never
// consistent — "no measurable change" must not confirm a directional claim.
func (e Effect) Consistent(sign float64) bool {
	if e.N == 0 {
		return false
	}
	return e.Min*sign > 0 && e.Max*sign > 0
}

// ErrorSummary aggregates relative errors between prediction/measurement
// pairs.
type ErrorSummary struct {
	N         int
	MeanAbs   float64 // mean |relative error|
	MaxAbs    float64 // max |relative error|
	MeanSgn   float64 // mean signed relative error (bias)
	WorstPred float64 // prediction at the worst point
	WorstAct  float64 // measurement at the worst point
}

// Summarize computes an ErrorSummary over paired predictions and
// measurements.
func Summarize(predicted, actual []float64) ErrorSummary {
	if len(predicted) != len(actual) {
		panic(fmt.Sprintf("stats: mismatched lengths %d vs %d", len(predicted), len(actual)))
	}
	var s ErrorSummary
	s.N = len(predicted)
	for i := range predicted {
		re := RelErr(predicted[i], actual[i])
		s.MeanAbs += re
		s.MeanSgn += SignedRelErr(predicted[i], actual[i])
		if re > s.MaxAbs {
			s.MaxAbs = re
			s.WorstPred = predicted[i]
			s.WorstAct = actual[i]
		}
	}
	if s.N > 0 {
		s.MeanAbs /= float64(s.N)
		s.MeanSgn /= float64(s.N)
	}
	return s
}

// String implements fmt.Stringer.
func (s ErrorSummary) String() string {
	return fmt.Sprintf("n=%d mean|err|=%.2f%% max|err|=%.2f%% bias=%+.2f%%",
		s.N, s.MeanAbs*100, s.MaxAbs*100, s.MeanSgn*100)
}
