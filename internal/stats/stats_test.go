package stats

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5 + 0.75*x
	}
	a, b := LinearFit(xs, ys)
	if math.Abs(a-2.5) > 1e-12 || math.Abs(b-0.75) > 1e-12 {
		t.Errorf("fit = %v + %v·x", a, b)
	}
}

func TestLinearFitRecoversRandomLines(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Float64()*20 - 10)
			vals[1] = reflect.ValueOf(r.Float64()*20 - 10)
			vals[2] = reflect.ValueOf(r.Intn(20) + 2)
		},
	}
	prop := func(a, b float64, n int) bool {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i + 1)
			ys[i] = a + b*xs[i]
		}
		ga, gb := LinearFit(xs, ys)
		return math.Abs(ga-a) < 1e-6 && math.Abs(gb-b) < 1e-6
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestLinearFitPanics(t *testing.T) {
	for _, tc := range []struct{ xs, ys []float64 }{
		{[]float64{1}, []float64{1}},
		{[]float64{1, 2}, []float64{1}},
		{[]float64{3, 3}, []float64{1, 2}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %v", tc.xs)
				}
			}()
			LinearFit(tc.xs, tc.ys)
		}()
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %v", got)
	}
	if got := RelErr(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %v", got)
	}
	if got := RelErr(5, 0); got != 5 {
		t.Errorf("RelErr with zero actual = %v", got)
	}
	if got := SignedRelErr(90, 100); math.Abs(got+0.1) > 1e-12 {
		t.Errorf("SignedRelErr = %v", got)
	}
	if got := SignedRelErr(3, 0); got != 3 {
		t.Errorf("SignedRelErr with zero actual = %v", got)
	}
}

func TestAggregates(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Max(xs) != 3 || Min(xs) != 1 {
		t.Errorf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Error("empty Max/Min should be ∓Inf")
	}
}

func TestSummarize(t *testing.T) {
	pred := []float64{110, 95}
	act := []float64{100, 100}
	s := Summarize(pred, act)
	if s.N != 2 {
		t.Errorf("N = %d", s.N)
	}
	if math.Abs(s.MeanAbs-0.075) > 1e-12 {
		t.Errorf("MeanAbs = %v", s.MeanAbs)
	}
	if math.Abs(s.MaxAbs-0.1) > 1e-12 || s.WorstPred != 110 || s.WorstAct != 100 {
		t.Errorf("worst = %v %v %v", s.MaxAbs, s.WorstPred, s.WorstAct)
	}
	if math.Abs(s.MeanSgn-0.025) > 1e-12 {
		t.Errorf("bias = %v", s.MeanSgn)
	}
	if !strings.Contains(s.String(), "max|err|") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Summarize([]float64{1}, []float64{1, 2})
}

func TestStream(t *testing.T) {
	var s Stream
	xs := []float64{4, 1, 9, 2, 2}
	for _, x := range xs {
		s.Add(x)
	}
	if s.N() != 5 || s.Sum() != 18 || s.Min() != 1 || s.Max() != 9 {
		t.Errorf("aggregates wrong: n=%d sum=%v min=%v max=%v", s.N(), s.Sum(), s.Min(), s.Max())
	}
	if math.Abs(s.Mean()-3.6) > 1e-12 {
		t.Errorf("mean = %v, want 3.6", s.Mean())
	}
	// Population variance of {4,1,9,2,2} is 8.24.
	if math.Abs(s.Var()-8.24) > 1e-9 {
		t.Errorf("var = %v, want 8.24", s.Var())
	}
	var empty Stream
	if empty.N() != 0 || empty.Mean() != 0 || empty.Var() != 0 {
		t.Error("zero-value stream not empty")
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	got := Percentiles(xs, 0, 0.25, 0.5, 0.9, 1)
	want := []float64{1, 2, 3, 4.6, 5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("p=%v: got %v, want %v", []float64{0, 0.25, 0.5, 0.9, 1}[i], got[i], want[i])
		}
	}
	if xs[0] != 5 {
		t.Error("input slice was mutated")
	}
	if Percentile([]float64{7}, 0.5) != 7 {
		t.Error("single-element percentile")
	}
	// Defined edge behavior: empty input yields zeros, invalid p yields
	// NaN for that entry only — neither panics.
	if got := Percentiles(nil, 0, 0.5, 1); got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Errorf("empty input: got %v, want zeros", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	mixed := Percentiles(xs, -0.1, 0.5, 1.5, math.NaN())
	if !math.IsNaN(mixed[0]) || !math.IsNaN(mixed[2]) || !math.IsNaN(mixed[3]) {
		t.Errorf("invalid p entries = %v, want NaN", mixed)
	}
	if mixed[1] != 3 {
		t.Errorf("valid p alongside invalid ones = %v, want 3", mixed[1])
	}
}

func TestRelChange(t *testing.T) {
	cases := []struct{ base, treat, want float64 }{
		{100, 110, 0.10},
		{100, 90, -0.10},
		{100, 100, 0},
		{0, 7, 7}, // zero baseline: the SignedRelErr convention
		{0, 0, 0},
		{-10, -5, -0.5}, // change relative to a negative baseline
	}
	for _, c := range cases {
		if got := RelChange(c.base, c.treat); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelChange(%v, %v) = %v, want %v", c.base, c.treat, got, c.want)
		}
	}
}

func TestPairedRelChange(t *testing.T) {
	got := PairedRelChange([]float64{100, 200, 0}, []float64{110, 100, 3})
	want := []float64{0.1, -0.5, 3}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Defined edge behavior, no panics: mismatched lengths yield nil,
	// empty inputs yield an empty non-nil slice.
	if PairedRelChange([]float64{1}, []float64{1, 2}) != nil {
		t.Error("mismatched lengths should yield nil")
	}
	if got := PairedRelChange(nil, nil); got == nil || len(got) != 0 {
		t.Errorf("empty inputs = %v, want empty non-nil slice", got)
	}
	// NaN observations pass through rather than crash.
	if out := PairedRelChange([]float64{1}, []float64{math.NaN()}); !math.IsNaN(out[0]) {
		t.Errorf("NaN treat = %v, want NaN", out[0])
	}
}

func TestEffectOf(t *testing.T) {
	e := EffectOf([]float64{0.3, 0.1, 0.2})
	if e.N != 3 || e.Min != 0.1 || e.Median != 0.2 || e.Max != 0.3 {
		t.Errorf("EffectOf = %+v", e)
	}
	if one := EffectOf([]float64{-0.4}); one.N != 1 || one.Min != -0.4 || one.Median != -0.4 || one.Max != -0.4 {
		t.Errorf("single-seed effect = %+v", one)
	}
	if empty := EffectOf(nil); empty != (Effect{}) {
		t.Errorf("EffectOf(nil) = %+v, want zero", empty)
	}
}

func TestEffectConsistent(t *testing.T) {
	inc := EffectOf([]float64{0.1, 0.2, 0.3})
	dec := EffectOf([]float64{-0.1, -0.2, -0.3})
	mixed := EffectOf([]float64{-0.1, 0.2, 0.3})
	withZero := EffectOf([]float64{0, 0.2, 0.3})
	if !inc.Consistent(1) || inc.Consistent(-1) {
		t.Error("all-positive effect should be consistent with +1 only")
	}
	if !dec.Consistent(-1) || dec.Consistent(1) {
		t.Error("all-negative effect should be consistent with -1 only")
	}
	if mixed.Consistent(1) || mixed.Consistent(-1) {
		t.Error("mixed-sign effect should never be consistent")
	}
	if withZero.Consistent(1) {
		t.Error("a zero effect at any seed must not confirm a direction")
	}
	if (Effect{}).Consistent(1) {
		t.Error("empty effect must not be consistent")
	}
	nan := EffectOf([]float64{math.NaN(), 0.1, 0.2})
	if nan.Consistent(1) {
		t.Error("NaN effect must not be consistent")
	}
}
