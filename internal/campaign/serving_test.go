package campaign

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/config"
)

// marshalRows renders results exactly as the JSONL output would.
func marshalRows(t *testing.T, results []RunResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// randomizedSpec builds a deterministic pseudo-random sweep: presets,
// grids, tile heights, machines and LogGP perturbations drawn from pools
// sized so the expansion comfortably exceeds n runs with no duplicate
// content keys inside one expansion.
func randomizedSpec(rng *rand.Rand) Spec {
	presets := []string{"lu", "sweep3d", "chimaera"}
	cubes := []int{12, 16, 24}
	// Draw three distinct (preset, grid, htile) combinations — a spec
	// listing the same app twice is rejected at validation.
	var combos []AppDim
	for _, p := range presets {
		for _, c := range cubes {
			for h := 1; h <= 3; h++ {
				combos = append(combos, AppDim{
					Preset: p,
					Grid:   &config.GridSpec{Nx: c, Ny: c, Nz: c},
					Htile:  h,
				})
			}
		}
	}
	rng.Shuffle(len(combos), func(i, j int) { combos[i], combos[j] = combos[j], combos[i] })
	apps := combos[:3]
	overrides := []ParamOverride{{Name: "baseline"}}
	for i := 0; i < 3; i++ {
		overrides = append(overrides, ParamOverride{
			Name: fmt.Sprintf("ov%d", i),
			Scale: map[string]float64{
				"L": 0.5 + rng.Float64()*3.5,
				"G": 0.5 + rng.Float64()*1.5,
			},
		})
	}
	return Spec{
		Name:       "randomized",
		Iterations: 1,
		Apps:       apps,
		Machines: []MachineDim{
			{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 1}},
			{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 2}},
		},
		Ranks: []int{4, 16},
		LogGP: overrides,
	}
}

// TestCacheHitsByteIdentical is the serving layer's core property: across
// 40 randomized runs, a warm-cache pass produces byte-identical JSONL to
// the cold pass that filled the cache, and every warm run is served from
// the store.
func TestCacheHitsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	spec := randomizedSpec(rng)
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) < 40 {
		t.Fatalf("randomized spec expanded to %d runs, want ≥ 40", len(runs))
	}
	runs = runs[:40]

	store := NewMemoryStore(0)
	cold, err := NewEngine(Config{Workers: 4, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := cold.Execute(runs)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewEngine(Config{Workers: 4, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := warm.Execute(runs)
	if err != nil {
		t.Fatal(err)
	}

	coldRows, warmRows := marshalRows(t, coldRes), marshalRows(t, warmRes)
	if !bytes.Equal(coldRows, warmRows) {
		t.Error("warm-cache JSONL differs from cold run")
	}
	if st := warm.Stats(); st.CacheHits != len(runs) || st.Simulated != 0 {
		t.Errorf("warm pass: %d cache hits, %d simulated; want %d hits, 0 simulated",
			st.CacheHits, st.Simulated, len(runs))
	}
	if st := cold.Stats(); st.Simulated != len(runs) {
		t.Errorf("cold pass simulated %d of %d", st.Simulated, len(runs))
	}
}

// TestContentKeyProperties pins what is — and is not — part of a run's
// identity.
func TestContentKeyProperties(t *testing.T) {
	runs, err := Example().Expand()
	if err != nil {
		t.Fatal(err)
	}
	r := runs[0]
	k1, scratch := r.ContentKey(KeyMode{}, nil)
	k2, scratch := r.ContentKey(KeyMode{}, scratch)
	if k1 != k2 {
		t.Error("ContentKey is not deterministic")
	}
	if kh, _ := r.ContentKey(KeyMode{Hist: true}, scratch); kh == k1 {
		t.Error("Hist mode must change the key (histograms change row bytes)")
	}
	if kc, _ := r.ContentKey(KeyMode{Canon: true}, scratch); kc == k1 {
		t.Error("canonical event order must change the key")
	}
	// A different run from the same sweep must not collide.
	if ko, _ := runs[1].ContentKey(KeyMode{}, nil); ko == k1 {
		t.Errorf("runs %s and %s share a content key", r.Key(), runs[1].Key())
	}
	// Display coordinates stay out of the key: the same physics under a
	// different index/campaign label is the same content.
	relabeled := r
	relabeled.Index = 99
	relabeled.Campaign = "other"
	relabeled.Machine = "renamed machine"
	relabeled.Override = "renamed override"
	if kr, _ := relabeled.ContentKey(KeyMode{}, nil); kr != k1 {
		t.Error("relabeling a run changed its content key")
	}
}

// TestMissPathAllocFree pins the acceptance criterion that a cache lookup
// adds no allocations on the miss path: neither the store probe nor a
// scratch-reusing key computation allocates in steady state.
func TestMissPathAllocFree(t *testing.T) {
	store := NewMemoryStore(16)
	runs, err := Example().Expand()
	if err != nil {
		t.Fatal(err)
	}
	r := runs[0]
	_, scratch := r.ContentKey(KeyMode{}, nil) // grow the scratch once
	var key RunKey
	if n := testing.AllocsPerRun(100, func() {
		key, scratch = r.ContentKey(KeyMode{}, scratch)
		store.Get(key)
	}); n != 0 {
		t.Errorf("miss path allocates %.1f objects per lookup, want 0", n)
	}
}

func TestMemoryStoreLRU(t *testing.T) {
	store := NewMemoryStore(2)
	k := func(i byte) RunKey { var k RunKey; k[0] = i; return k }
	store.Put(k(1), RunResult{Index: 1})
	store.Put(k(2), RunResult{Index: 2})
	store.Get(k(1)) // 1 is now most recent
	store.Put(k(3), RunResult{Index: 3})
	if _, ok := store.Get(k(2)); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if _, ok := store.Get(k(1)); !ok {
		t.Error("recently-used entry was evicted")
	}
	if _, ok := store.Get(k(3)); !ok {
		t.Error("newest entry missing")
	}
	st := store.Stats()
	if st.Entries != 2 || st.Puts != 3 {
		t.Errorf("stats = %+v, want 2 entries, 3 puts", st)
	}
}

// TestDiskStoreReload round-trips results through the JSONL file,
// including survival of a torn tail from a killed writer.
func TestDiskStoreReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "cache.jsonl")
	store, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	var k RunKey
	k[0] = 7
	want := RunResult{Schema: SchemaVersion, Index: 3, App: "LU", SimMicros: 12.5}
	store.Put(k, want)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a mid-write kill: append a truncated record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"schema_version":1,"key":"dead`)
	f.Close()

	reopened, err := OpenDiskStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got, ok := reopened.Get(k)
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	if got.Index != want.Index || got.App != want.App || got.SimMicros != want.SimMicros {
		t.Errorf("reloaded %+v, want %+v", got, want)
	}
	if st := reopened.Stats(); st.Entries != 1 {
		t.Errorf("reopened store has %d entries, want 1 (torn tail must be skipped)", st.Entries)
	}
}

func TestRanges(t *testing.T) {
	for _, tc := range []struct{ n, k, parts int }{
		{24, 4, 4}, {24, 1, 1}, {10, 3, 3}, {3, 8, 3}, {0, 4, 0}, {5, 0, 1},
	} {
		rs := Ranges(tc.n, tc.k)
		if len(rs) != tc.parts {
			t.Errorf("Ranges(%d,%d) has %d parts, want %d", tc.n, tc.k, len(rs), tc.parts)
			continue
		}
		next, minLen, maxLen := 0, tc.n, 0
		for _, r := range rs {
			if r.Lo != next {
				t.Errorf("Ranges(%d,%d): gap before %+v", tc.n, tc.k, r)
			}
			next = r.Hi
			if r.Len() < minLen {
				minLen = r.Len()
			}
			if r.Len() > maxLen {
				maxLen = r.Len()
			}
		}
		if len(rs) > 0 && next != tc.n {
			t.Errorf("Ranges(%d,%d) covers [0,%d), want [0,%d)", tc.n, tc.k, next, tc.n)
		}
		if len(rs) > 0 && maxLen-minLen > 1 {
			t.Errorf("Ranges(%d,%d) sizes spread %d..%d, want balanced", tc.n, tc.k, minLen, maxLen)
		}
	}
}

// TestMergeByteIdenticalAcrossPartitionings is the acceptance matrix: the
// merged JSONL is byte-identical across {1,4} ranges × {1,8} workers ×
// {cold, warm} cache.
func TestMergeByteIdenticalAcrossPartitionings(t *testing.T) {
	spec := Example()
	ref, err := NewEngine(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.ExecuteSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalRows(t, refRes)
	total := len(refRes)

	warmStore := NewMemoryStore(0)
	for _, parts := range []int{1, 4} {
		for _, workers := range []int{1, 8} {
			for _, cache := range []string{"cold", "warm"} {
				name := fmt.Sprintf("ranges=%d/workers=%d/%s", parts, workers, cache)
				ckpt := t.TempDir()
				var store ResultStore
				if cache == "warm" {
					store = warmStore
				}
				for part := 0; part < parts; part++ {
					eng, err := NewEngine(Config{
						Workers: workers, RangePart: part, RangeParts: parts,
						CheckpointDir: ckpt, Store: store,
					})
					if err != nil {
						t.Fatal(err)
					}
					if _, err := eng.ExecuteSpec(spec); err != nil {
						t.Fatalf("%s part %d: %v", name, part, err)
					}
				}
				var merged bytes.Buffer
				if err := MergeCheckpoints(ckpt, total, &merged); err != nil {
					t.Fatalf("%s: merge: %v", name, err)
				}
				if !bytes.Equal(merged.Bytes(), want) {
					t.Errorf("%s: merged JSONL differs from single-process run", name)
				}
			}
		}
	}
}

// TestResumeSkipsCompleted kills-and-resumes in-process: a partial range
// leaves checkpoints behind, and a full re-run with the same directory
// recovers exactly those runs without re-simulating them.
func TestResumeSkipsCompleted(t *testing.T) {
	spec := Example()
	ckpt := t.TempDir()
	first, err := NewEngine(Config{Workers: 2, RangePart: 0, RangeParts: 2, CheckpointDir: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	partial, err := first.ExecuteSpec(spec)
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := NewEngine(Config{Workers: 2, CheckpointDir: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	full, err := resumed.ExecuteSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := resumed.Stats()
	if st.CheckpointHits != len(partial) {
		t.Errorf("resume recovered %d runs from checkpoints, want %d", st.CheckpointHits, len(partial))
	}
	if st.Simulated != len(full)-len(partial) {
		t.Errorf("resume simulated %d runs, want %d", st.Simulated, len(full)-len(partial))
	}

	// And the resumed output is byte-identical to a clean run.
	clean, err := NewEngine(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := clean.ExecuteSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalRows(t, full), marshalRows(t, cleanRes)) {
		t.Error("resumed JSONL differs from clean run")
	}
}

// TestStaleCheckpointKeyMismatch: checkpoints recorded for one spec must
// not be served for an edited spec whose runs landed on the same indices.
func TestStaleCheckpointKeyMismatch(t *testing.T) {
	ckpt := t.TempDir()
	specA := Example()
	engA, err := NewEngine(Config{Workers: 4, CheckpointDir: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engA.ExecuteSpec(specA); err != nil {
		t.Fatal(err)
	}

	specB := Example()
	specB.Iterations = 2 // same shape, different physics
	engB, err := NewEngine(Config{Workers: 4, CheckpointDir: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := engB.ExecuteSpec(specB)
	if err != nil {
		t.Fatal(err)
	}
	if st := engB.Stats(); st.CheckpointHits != 0 || st.Simulated != len(resB) {
		t.Errorf("stale checkpoints served: %d hits, %d simulated", st.CheckpointHits, st.Simulated)
	}
}

func TestExecuteSpecErrorPaths(t *testing.T) {
	spec := Example()

	t.Run("unwritable output", func(t *testing.T) {
		blocker := filepath.Join(t.TempDir(), "file")
		if err := os.WriteFile(blocker, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(Config{Workers: 1, Output: filepath.Join(blocker, "out.jsonl")})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.ExecuteSpec(spec); err == nil {
			t.Error("unwritable output path did not fail")
		}
	})

	t.Run("invalid filter", func(t *testing.T) {
		if _, err := NewEngine(Config{Filter: "no-equals-sign"}); err == nil {
			t.Error("NewEngine accepted an unparseable filter")
		}
		// Filters can also arrive via the legacy literal path + ExecuteSpec:
		// validation re-runs there.
		eng := Engine{cfg: &Config{Filter: "bogus-key=x"}}
		if _, err := eng.ExecuteSpec(spec); err == nil {
			t.Error("ExecuteSpec accepted an unknown filter key")
		}
	})

	t.Run("zero-run expansion", func(t *testing.T) {
		eng, err := NewEngine(Config{Filter: "app=no-such-app"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.ExecuteSpec(spec); err == nil {
			t.Error("empty filtered expansion did not fail")
		}
	})

	t.Run("invalid range", func(t *testing.T) {
		if _, err := NewEngine(Config{RangePart: 4, RangeParts: 4}); err == nil {
			t.Error("NewEngine accepted range part ≥ parts")
		}
		if _, err := NewEngine(Config{RangeParts: -1}); err == nil {
			t.Error("NewEngine accepted negative range parts")
		}
	})

	t.Run("unsupported version", func(t *testing.T) {
		if _, err := NewEngine(Config{Version: 99}); err == nil {
			t.Error("NewEngine accepted an unknown config version")
		}
	})
}

// TestSchemaVersionInRows: every JSONL row leads with schema_version 1.
func TestSchemaVersionInRows(t *testing.T) {
	eng := Engine{Workers: 4}
	res, err := eng.ExecuteSpec(Example())
	if err != nil {
		t.Fatal(err)
	}
	rows := marshalRows(t, res)
	for i, line := range bytes.Split(bytes.TrimSpace(rows), []byte("\n")) {
		if !bytes.HasPrefix(line, []byte(`{"schema_version":1,`)) {
			t.Fatalf("row %d does not lead with schema_version 1: %.60s", i, line)
		}
	}
}
