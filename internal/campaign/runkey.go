package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
)

// RunKey is the content address of one campaign run: the SHA-256 of a
// canonical serialization of everything that determines the run's result —
// the application (including a custom spec's full JSON), problem grid, tile
// height, per-run boundary message sizes, convergence collective, iteration
// count, the attached workload spec (every distribution, noise and block
// knob), the machine's LogGP parameters after overrides, node shape and
// interconnect, the rank count and decomposition, and the two execution-
// mode bits that change output bytes (histogram collection and the
// canonical-vs-legacy event order).
//
// Two runs with the same RunKey produce byte-identical JSONL payloads, so
// a ResultStore can serve one's cached result for the other. Display-only
// strings — machine labels, override names, LogGP parameter-set names —
// deliberately stay out of the key: relabeling a machine must not evict
// its results.
type RunKey [sha256.Size]byte

// String renders the key as lower-case hex, the spelling used in
// checkpoint files, cache files and HTTP responses.
func (k RunKey) String() string { return hex.EncodeToString(k[:]) }

// ParseRunKey decodes the hex spelling produced by String.
func ParseRunKey(s string) (RunKey, error) {
	var k RunKey
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("campaign: %q is not a run key", s)
	}
	copy(k[:], b)
	return k, nil
}

// KeyMode carries the execution-mode bits that are part of a run's content
// identity because they change the emitted bytes: whether duration
// histograms are collected into the row, and whether the simulator uses
// the canonical sharded event order (any Shards ≥ 2 — all bit-identical to
// each other) or the legacy serial order (which may differ microscopically
// on tie-heavy configurations; see internal/simmpi/parallel.go). The shard
// count itself is a pure throughput knob and is deliberately excluded.
type KeyMode struct {
	Hist  bool
	Canon bool
}

// ContentKey computes the run's content address. The scratch buffer is
// reused and returned grown, so a caller hashing many runs performs no
// steady-state allocations; pass nil to let the first call allocate it.
func (r Run) ContentKey(mode KeyMode, scratch []byte) (RunKey, []byte) {
	b := scratch[:0]
	f := func(v float64) {
		// Hex float formatting is exact: distinct float64 values never
		// collide, equal values always match.
		b = strconv.AppendFloat(b, v, 'x', -1, 64)
		b = append(b, '|')
	}
	i := func(v int) {
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, '|')
	}
	s := func(v string) {
		// Length-prefixed so field boundaries cannot be forged by content.
		b = strconv.AppendInt(b, int64(len(v)), 10)
		b = append(b, ':')
		b = append(b, v...)
		b = append(b, '|')
	}

	b = append(b, "runkey/v1|"...)
	// Application: name + provenance (preset name, or the custom spec's
	// canonical JSON — which pins every behavior a preset name would).
	s(r.bm.App.Name)
	s(r.appSrc)
	i(r.bm.App.Grid.Nx)
	i(r.bm.App.Grid.Ny)
	i(r.bm.App.Grid.Nz)
	i(r.bm.App.Htile)
	f(r.bm.App.WgPre)
	f(r.bm.App.Wg)
	i(r.bm.App.NSweeps)
	i(r.bm.App.NFull)
	i(r.bm.App.NDiag)
	i(len(r.bm.Corners))
	for _, c := range r.bm.Corners {
		i(int(c))
	}
	// Boundary message sizes evaluated at this run's decomposition: the
	// exact values the schedule will use, capturing the app's sizing
	// functions without hashing code.
	if r.bm.App.EWBytes != nil {
		i(r.bm.App.EWBytes(r.dec, r.bm.App.Htile))
	} else {
		i(-1)
	}
	if r.bm.App.NSBytes != nil {
		i(r.bm.App.NSBytes(r.dec, r.bm.App.Htile))
	} else {
		i(-1)
	}
	i(r.bm.ConvBytes)
	i(int(r.bm.ConvAlg))
	i(r.Iterations)

	// Workload: every knob of the per-tile compute perturbation. The block
	// is appended only when a workload is attached, so the keys of all
	// workload-less runs are unchanged from pre-workload releases and their
	// cached results stay valid.
	if wl := r.bm.Workload; wl != nil {
		b = append(b, "workload|"...)
		s(wl.Dist)
		b = strconv.AppendUint(b, wl.Seed, 10)
		b = append(b, '|')
		f(wl.Sigma)
		f(wl.HotFrac)
		f(wl.HotMul)
		if n := wl.Noise; n != nil {
			b = append(b, "noise|"...)
			f(n.Rate)
			f(n.AmpUS)
		}
		i(len(wl.Blocks))
		for _, blk := range wl.Blocks {
			f(blk.X0)
			f(blk.Y0)
			f(blk.X1)
			f(blk.Y1)
			f(blk.Mul)
		}
	}

	// Machine: physical parameters only (names excluded — see type doc).
	p := r.mach.Params
	f(p.G)
	f(p.L)
	f(p.O)
	f(p.H)
	f(p.Gcopy)
	f(p.Gdma)
	f(p.Ochip)
	f(p.Ocopy)
	i(r.mach.CoresPerNode)
	i(r.mach.Cx)
	i(r.mach.Cy)
	i(r.mach.BusGroups)
	ic := r.mach.Interconnect
	i(int(ic.Kind))
	i(len(ic.Dims))
	for _, d := range ic.Dims {
		i(d)
	}
	i(ic.LeafRadix)
	i(ic.Spine)
	f(ic.LinkG)
	f(ic.HopL)

	// Placement: rank count and decomposition shape.
	i(r.P)
	i(r.dec.N)
	i(r.dec.M)

	// Execution-mode bits that change output bytes.
	if mode.Hist {
		b = append(b, "hist|"...)
	}
	if mode.Canon {
		b = append(b, "canon|"...)
	}
	return sha256.Sum256(b), b
}
