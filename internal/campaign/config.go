package campaign

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// SchemaVersion is the version of every JSON artifact the campaign layer
// emits: JSONL result rows, checkpoint and cache records, and campaignd
// HTTP responses, all of which carry it as a "schema_version" field.
// Compatibility rule: within one version, fields are only ever added, and
// existing fields keep their names, types and semantics; readers must
// ignore fields they do not know. Any change that renames, removes or
// reinterprets a field bumps the version, and writers never emit more than
// one version.
const SchemaVersion = 1

// Config is the complete, versioned configuration of a campaign Engine.
// It consolidates the knobs the engine accreted over time (worker pool,
// shard override, histograms, flight recorder, progress hook) with the
// serving-layer features (result cache, run-range partitioning,
// checkpointing, output path), so the CLI and the campaignd server are
// thin frontends over one validated struct. Build one with NewConfig and
// functional options, or as a literal, then hand it to NewEngine — the
// single place configurations are validated.
type Config struct {
	// Version is the config schema version; 0 means SchemaVersion.
	Version int

	// Workers is the worker-pool size; non-positive means GOMAXPROCS.
	Workers int
	// Shards, if positive, overrides the spec's simulator shard count for
	// every run. Every sharded count (≥ 2) yields bit-identical results.
	Shards int
	// Hist collects per-run duration histograms into RunResult.Hists.
	Hist bool

	// Obs, if non-nil, is attached as the flight recorder of the single
	// run whose expansion Index equals ObsRun. That run always executes
	// in the simulator — caches and checkpoints are bypassed for it — so
	// its artifacts are produced even on a fully warm cache.
	Obs    *obs.Recorder
	ObsRun int

	// Progress, if non-nil, is called after each run completes with the
	// completed and total counts. Calls are serialised.
	Progress func(done, total int)
	// OnResult, if non-nil, is called with each finished result in
	// completion order (not index order). Calls are serialised.
	OnResult func(RunResult)

	// Filter restricts ExecuteSpec's expansion, using the same
	// "app=LU,p=64|256" syntax as the CLI -filter flag (see ParseFilter).
	Filter string

	// RangePart/RangeParts select one deterministic slice of the filtered
	// run list for this process: ExecuteSpec executes Ranges(n,
	// RangeParts)[RangePart]. Zero RangeParts (or 1) means the whole list.
	RangePart  int
	RangeParts int

	// Store, if non-nil, memoizes results by content address (RunKey):
	// runs whose key hits the store are served from it instead of the
	// simulator, byte-identical to a cold run.
	Store ResultStore

	// CheckpointDir, if non-empty, makes ExecuteSpec append each finished
	// row to a per-range checkpoint file in this directory and, on start,
	// skip runs already checkpointed with a matching content key. A killed
	// campaign re-run with the same spec and directory resumes where it
	// died; MergeCheckpoints reassembles the full output.
	CheckpointDir string

	// Output, if non-empty, is the JSONL path ExecuteSpec writes. The file
	// is created before any run executes, so an unwritable path fails
	// fast. On a run failure the completed prefix is still written.
	Output string
}

// Option mutates a Config under construction; see NewConfig.
type Option func(*Config) error

// WithWorkers sets the worker-pool size (non-positive means GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *Config) error { c.Workers = n; return nil }
}

// WithShards sets the per-run simulator shard override.
func WithShards(k int) Option {
	return func(c *Config) error { c.Shards = k; return nil }
}

// WithHist enables per-run duration histograms.
func WithHist(on bool) Option {
	return func(c *Config) error { c.Hist = on; return nil }
}

// WithObs flight-records the run whose expansion Index is obsRun.
func WithObs(rec *obs.Recorder, obsRun int) Option {
	return func(c *Config) error { c.Obs = rec; c.ObsRun = obsRun; return nil }
}

// WithProgress installs the progress hook.
func WithProgress(fn func(done, total int)) Option {
	return func(c *Config) error { c.Progress = fn; return nil }
}

// WithOnResult installs the per-result hook.
func WithOnResult(fn func(RunResult)) Option {
	return func(c *Config) error { c.OnResult = fn; return nil }
}

// WithFilter restricts ExecuteSpec with a CLI-syntax filter expression.
func WithFilter(expr string) Option {
	return func(c *Config) error { c.Filter = expr; return nil }
}

// WithRange makes ExecuteSpec execute slice part of parts (0 ≤ part <
// parts) of the filtered run list.
func WithRange(part, parts int) Option {
	return func(c *Config) error { c.RangePart = part; c.RangeParts = parts; return nil }
}

// WithStore memoizes results in the given content-addressed store.
func WithStore(s ResultStore) Option {
	return func(c *Config) error { c.Store = s; return nil }
}

// WithCheckpointDir enables checkpoint/resume in the given directory.
func WithCheckpointDir(dir string) Option {
	return func(c *Config) error { c.CheckpointDir = dir; return nil }
}

// WithOutput sets the JSONL output path ExecuteSpec writes.
func WithOutput(path string) Option {
	return func(c *Config) error { c.Output = path; return nil }
}

// NewConfig builds a validated Config from functional options.
func NewConfig(opts ...Option) (Config, error) {
	cfg := Config{Version: SchemaVersion}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return Config{}, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate checks the config's invariants: a known version, a parseable
// filter, a coherent range selection and a non-negative shard override.
func (c Config) Validate() error {
	if c.Version != 0 && c.Version != SchemaVersion {
		return fmt.Errorf("campaign: config version %d not supported (want %d)", c.Version, SchemaVersion)
	}
	if c.Shards < 0 {
		return fmt.Errorf("campaign: negative shard override %d", c.Shards)
	}
	if c.RangeParts < 0 {
		return fmt.Errorf("campaign: negative range parts %d", c.RangeParts)
	}
	if c.RangeParts > 0 && (c.RangePart < 0 || c.RangePart >= c.RangeParts) {
		return fmt.Errorf("campaign: range part %d outside [0, %d)", c.RangePart, c.RangeParts)
	}
	if c.Filter != "" {
		if _, err := ParseFilter(c.Filter); err != nil {
			return err
		}
	}
	return nil
}

// recorderFor resolves the flight recorder for a run, or nil.
func (c Config) recorderFor(index int) *obs.Recorder {
	if c.Obs != nil && index == c.ObsRun {
		if c.Hist {
			c.Obs.Hist = true
		}
		return c.Obs
	}
	if c.Hist {
		return &obs.Recorder{Hist: true}
	}
	return nil
}

// ExecStats count what the engine did across its Execute/ExecuteSpec
// calls: how many runs it was asked for, and how each was satisfied. Runs
// = Simulated + CacheHits + CheckpointHits for campaigns that completed
// without error.
type ExecStats struct {
	Schema int `json:"schema_version"`
	// Runs is the number of runs dispatched.
	Runs int `json:"runs"`
	// Simulated is the number actually executed in the simulator.
	Simulated int `json:"simulated"`
	// CacheHits is the number served from the result store.
	CacheHits int `json:"cache_hits"`
	// CheckpointHits is the number recovered from checkpoint files.
	CheckpointHits int `json:"checkpoint_hits"`
}

// execCounters is the engine's shared mutable stats box. Engine methods
// use value receivers, so the counters live behind a pointer.
type execCounters struct {
	mu sync.Mutex
	s  ExecStats
}

func (c *execCounters) add(delta ExecStats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.s.Runs += delta.Runs
	c.s.Simulated += delta.Simulated
	c.s.CacheHits += delta.CacheHits
	c.s.CheckpointHits += delta.CheckpointHits
	c.mu.Unlock()
}

func (c *execCounters) snapshot() ExecStats {
	if c == nil {
		return ExecStats{Schema: SchemaVersion}
	}
	c.mu.Lock()
	s := c.s
	c.mu.Unlock()
	s.Schema = SchemaVersion
	return s
}

// NewEngine validates cfg and returns an engine configured by it. This is
// the single validation point for campaign configurations — the CLI and
// the campaignd server both construct engines here.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Version == 0 {
		cfg.Version = SchemaVersion
	}
	return &Engine{
		Workers:  cfg.Workers,
		Shards:   cfg.Shards,
		Progress: cfg.Progress,
		Hist:     cfg.Hist,
		Obs:      cfg.Obs,
		ObsRun:   cfg.ObsRun,

		cfg:   &cfg,
		stats: &execCounters{},
	}, nil
}
