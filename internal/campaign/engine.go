package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// RunResult is the record a campaign emits for one run: the run's
// coordinates, the analytic model's prediction, the simulator's result and
// the error metrics between them, plus traffic and contention counters.
//
// Every exported JSON field is a deterministic function of the run — wall
// time is kept out of the JSONL encoding so output is byte-identical
// regardless of worker count or host speed.
type RunResult struct {
	Index      int    `json:"index"`
	Campaign   string `json:"campaign"`
	App        string `json:"app"`
	Grid       string `json:"grid"`
	Htile      int    `json:"htile"`
	Machine    string `json:"machine"`
	Override   string `json:"override"`
	P          int    `json:"p"`
	Iterations int    `json:"iterations"`

	// Topology names the inter-node fabric for non-flat-wire machines.
	// It is omitted (with the link counters below) on bus-only runs so
	// their JSONL rows stay byte-identical to the pre-interconnect output.
	Topology string `json:"topology,omitempty"`

	// Collective names the per-iteration convergence collective, e.g.
	// "allreduce/ring/8B". It is omitted for runs without one so their
	// rows stay byte-identical to pre-collectives output.
	Collective string `json:"collective,omitempty"`

	ModelMicros float64 `json:"model_us"`
	SimMicros   float64 `json:"sim_us"`
	RelErr      float64 `json:"rel_err"` // signed, (model − sim)/sim
	AbsErr      float64 `json:"abs_err"` // |rel_err|
	Band        string  `json:"band"`    // paper accuracy band (metrics.ErrorBand)
	RunsPerMon  float64 `json:"runs_per_month"`

	Events    uint64  `json:"events"`
	Messages  uint64  `json:"messages"`
	BytesSent uint64  `json:"bytes_sent"`
	BusWait   float64 `json:"bus_wait_us"`

	// Interconnect link contention (zero and omitted for bus-only runs).
	LinkWait    float64 `json:"link_wait_us,omitempty"`
	LinkQueued  uint64  `json:"link_queued,omitempty"`
	MaxLinkUtil float64 `json:"max_link_util,omitempty"`

	// Hists carries the run's duration-histogram percentiles when the
	// engine collects them (Engine.Hist); omitted otherwise so rows of
	// histogram-less campaigns stay byte-identical to earlier output.
	// Only shard-invariant histograms appear here — the shard count is not
	// part of a run's identity, so rows must not depend on it.
	Hists *RunHists `json:"hists,omitempty"`

	Error string `json:"error,omitempty"`

	// WallSeconds is the host wall time the run took. It is reported in
	// summaries but deliberately excluded from JSONL (see type doc).
	WallSeconds float64 `json:"-"`
}

// HistSummary is the JSONL rendering of one duration histogram: the
// observation count and the bucket-quantised percentiles in µs. All values
// derive from integer bucket counts, so they are byte-identical for every
// worker and shard count.
type HistSummary struct {
	N   uint64  `json:"n"`
	P50 float64 `json:"p50_us"`
	P90 float64 `json:"p90_us"`
	P99 float64 `json:"p99_us"`
}

// RunHists bundles a run's histogram summaries. LinkDelay is omitted on
// flat-wire runs (no interconnect, no link events).
type RunHists struct {
	RecvWait   HistSummary  `json:"recv_wait"`
	MsgLatency HistSummary  `json:"msg_latency"`
	LinkDelay  *HistSummary `json:"link_delay,omitempty"`
}

func summarizeHist(h *obs.Hist) HistSummary {
	return HistSummary{N: h.N(), P50: h.Quantile(0.5), P90: h.Quantile(0.9), P99: h.Quantile(0.99)}
}

// Engine executes campaign runs on a pool of workers, each owning one
// reusable simulator.
type Engine struct {
	// Workers is the pool size; non-positive means GOMAXPROCS.
	Workers int
	// Shards, if positive, overrides the spec's simulator shard count for
	// every run (simmpi.Sim.SetShards). Every sharded count (≥ 2) yields
	// bit-identical results — the override only trades worker-level for
	// shard-level parallelism.
	Shards int
	// Progress, if non-nil, is called after each run completes with the
	// completed and total counts. Calls are serialised.
	Progress func(done, total int)
	// Hist collects per-run duration histograms into RunResult.Hists.
	// Each run gets its own recorder, so output stays byte-identical for
	// any worker count.
	Hist bool
	// Obs, if non-nil, is attached as the flight recorder of the single
	// run whose Index equals ObsRun — deterministic regardless of which
	// worker executes that run. Configure the recorder's feature flags
	// before Execute; read its streams after.
	Obs    *obs.Recorder
	ObsRun int
}

// recorderFor resolves the flight recorder for a run, or nil.
func (e Engine) recorderFor(index int) *obs.Recorder {
	if e.Obs != nil && index == e.ObsRun {
		if e.Hist {
			e.Obs.Hist = true
		}
		return e.Obs
	}
	if e.Hist {
		return &obs.Recorder{Hist: true}
	}
	return nil
}

// workers resolves the effective pool size for n runs.
func (e Engine) workers(n int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Execute runs every run and returns results indexed like the input. The
// result slice is complete even on error; the returned error is the
// lowest-indexed run failure. Output is independent of Workers.
func (e Engine) Execute(runs []Run) ([]RunResult, error) {
	results := make([]RunResult, len(runs))
	if len(runs) == 0 {
		return results, nil
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for w := e.workers(len(runs)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sim *simmpi.Sim // lazily built, then reused via Reset
			for i := range jobs {
				results[i] = executeRun(runs[i], e, &sim)
				if e.Progress != nil {
					mu.Lock()
					done++
					e.Progress(done, len(runs))
					mu.Unlock()
				}
			}
		}()
	}
	for i := range runs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i := range results {
		if results[i].Error != "" {
			return results, fmt.Errorf("campaign: run %s: %s", runs[i].Key(), results[i].Error)
		}
	}
	return results, nil
}

// ExecuteSpec expands the spec and executes it in one call.
func (e Engine) ExecuteSpec(s Spec) ([]RunResult, error) {
	runs, err := s.Expand()
	if err != nil {
		return nil, err
	}
	return e.Execute(runs)
}

// executeRun evaluates the analytic model and the simulator for one run.
// e supplies the shard override and observability options. simp points at
// the worker's simulator slot: nil on the worker's first run, Reset and
// reused afterwards.
func executeRun(r Run, e Engine, simp **simmpi.Sim) RunResult {
	start := time.Now()
	out := RunResult{
		Index:      r.Index,
		Campaign:   r.Campaign,
		App:        r.App,
		Grid:       r.Grid,
		Htile:      r.Htile,
		Machine:    r.Machine,
		Override:   r.Override,
		P:          r.P,
		Iterations: r.Iterations,
		Collective: r.Collective,
	}
	fail := func(err error) RunResult {
		out.Error = err.Error()
		out.WallSeconds = time.Since(start).Seconds()
		return out
	}

	bm := r.bm.WithIterations(r.Iterations)
	rep, err := core.New(bm.App, r.mach).Evaluate(r.dec)
	if err != nil {
		return fail(err)
	}
	sched, err := bm.Schedule(r.dec, r.Iterations)
	if err != nil {
		return fail(err)
	}
	topo, err := simnet.NewMachineTopology(r.mach, r.dec)
	if err != nil {
		return fail(err)
	}
	if *simp == nil {
		*simp = simmpi.New(topo)
	} else {
		(*simp).Reset(topo)
	}
	sim := *simp
	shards := e.Shards
	if shards <= 0 {
		shards = r.shards
	}
	sim.SetShards(shards)
	rec := e.recorderFor(r.Index)
	if rec != nil {
		sim.SetObs(rec)
	}
	for rank, prog := range sched.Programs() {
		sim.SetProgram(rank, prog)
	}
	res, err := sim.Run()
	if err != nil {
		return fail(err)
	}

	out.ModelMicros = rep.Total
	out.SimMicros = res.Time
	out.RelErr = stats.SignedRelErr(rep.Total, res.Time)
	out.AbsErr = stats.RelErr(rep.Total, res.Time)
	out.Band = metrics.ErrorBand(out.AbsErr)
	out.RunsPerMon = metrics.TimeStepsPerMonth(res.Time)
	out.Events = res.Events
	out.Messages = res.Sends
	out.BytesSent = res.BytesSent
	out.BusWait = res.BusWait
	if ic := topo.Interconnect(); ic != nil {
		out.Topology = ic.Spec().String()
		out.LinkWait = res.LinkWait
		out.LinkQueued = res.LinkQueued
		if res.Time > 0 {
			out.MaxLinkUtil = ic.MaxLinkBusy() / res.Time
		}
	}
	if e.Hist && res.Hists != nil {
		rh := &RunHists{
			RecvWait:   summarizeHist(&res.Hists.RecvWait),
			MsgLatency: summarizeHist(&res.Hists.MsgLatency),
		}
		if res.Hists.LinkDelay.N() > 0 {
			ld := summarizeHist(&res.Hists.LinkDelay)
			rh.LinkDelay = &ld
		}
		out.Hists = rh
	}
	out.WallSeconds = time.Since(start).Seconds()
	return out
}
