package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// RunResult is the record a campaign emits for one run: the schema version,
// the run's coordinates, the analytic model's prediction, the simulator's
// result and the error metrics between them, plus traffic and contention
// counters.
//
// Every exported JSON field is a deterministic function of the run — wall
// time is kept out of the JSONL encoding so output is byte-identical
// regardless of worker count, cache state or host speed.
type RunResult struct {
	// Schema is the row's schema version (see SchemaVersion).
	Schema     int    `json:"schema_version"`
	Index      int    `json:"index"`
	Campaign   string `json:"campaign"`
	App        string `json:"app"`
	Grid       string `json:"grid"`
	Htile      int    `json:"htile"`
	Machine    string `json:"machine"`
	Override   string `json:"override"`
	P          int    `json:"p"`
	Iterations int    `json:"iterations"`

	// Topology names the inter-node fabric for non-flat-wire machines.
	// It is omitted (with the link counters below) on bus-only runs so
	// their JSONL rows stay byte-identical to the pre-interconnect output.
	Topology string `json:"topology,omitempty"`

	// Collective names the per-iteration convergence collective, e.g.
	// "allreduce/ring/8B". It is omitted for runs without one so their
	// rows stay byte-identical to pre-collectives output.
	Collective string `json:"collective,omitempty"`

	// Workload names the app's per-tile workload spec, e.g.
	// "lognormal(σ=0.4,seed=7)+noise(0.5×25µs)". It is omitted for the
	// implicit uniform workload so workload-less rows stay byte-identical
	// to pre-workload output.
	Workload string `json:"workload,omitempty"`

	ModelMicros float64 `json:"model_us"`
	SimMicros   float64 `json:"sim_us"`
	RelErr      float64 `json:"rel_err"` // signed, (model − sim)/sim
	AbsErr      float64 `json:"abs_err"` // |rel_err|
	Band        string  `json:"band"`    // paper accuracy band (metrics.ErrorBand)
	RunsPerMon  float64 `json:"runs_per_month"`

	Events    uint64  `json:"events"`
	Messages  uint64  `json:"messages"`
	BytesSent uint64  `json:"bytes_sent"`
	BusWait   float64 `json:"bus_wait_us"`

	// Interconnect link contention (zero and omitted for bus-only runs).
	LinkWait    float64 `json:"link_wait_us,omitempty"`
	LinkQueued  uint64  `json:"link_queued,omitempty"`
	MaxLinkUtil float64 `json:"max_link_util,omitempty"`

	// Hists carries the run's duration-histogram percentiles when the
	// engine collects them (Config.Hist); omitted otherwise so rows of
	// histogram-less campaigns stay byte-identical to earlier output.
	// Only shard-invariant histograms appear here — the shard count is not
	// part of a run's identity, so rows must not depend on it.
	Hists *RunHists `json:"hists,omitempty"`

	Error string `json:"error,omitempty"`

	// WallSeconds is the host wall time the run took (zero when the run
	// was served from a cache or checkpoint). It is reported in summaries
	// but deliberately excluded from JSONL (see type doc).
	WallSeconds float64 `json:"-"`
}

// rehydrate overwrites the result's identity fields from the run it is
// being served for. Cached results are shared between runs whose content
// key matches even when their sweep coordinates differ (a relabeled
// machine, a different expansion index), so the physics comes from the
// cache and the coordinates always come from the run at hand — making a
// warm-cache row byte-identical to a cold one.
func (res *RunResult) rehydrate(r Run) {
	res.Schema = SchemaVersion
	res.Index = r.Index
	res.Campaign = r.Campaign
	res.App = r.App
	res.Grid = r.Grid
	res.Htile = r.Htile
	res.Machine = r.Machine
	res.Override = r.Override
	res.P = r.P
	res.Iterations = r.Iterations
	res.Collective = r.Collective
	res.Workload = r.Workload
	res.WallSeconds = 0
}

// HistSummary is the JSONL rendering of one duration histogram: the
// observation count and the bucket-quantised percentiles in µs. All values
// derive from integer bucket counts, so they are byte-identical for every
// worker and shard count.
type HistSummary struct {
	N   uint64  `json:"n"`
	P50 float64 `json:"p50_us"`
	P90 float64 `json:"p90_us"`
	P99 float64 `json:"p99_us"`
}

// RunHists bundles a run's histogram summaries. LinkDelay is omitted on
// flat-wire runs (no interconnect, no link events).
type RunHists struct {
	RecvWait   HistSummary  `json:"recv_wait"`
	MsgLatency HistSummary  `json:"msg_latency"`
	LinkDelay  *HistSummary `json:"link_delay,omitempty"`
}

func summarizeHist(h *obs.Hist) HistSummary {
	return HistSummary{N: h.N(), P50: h.Quantile(0.5), P90: h.Quantile(0.9), P99: h.Quantile(0.99)}
}

// Engine executes campaign runs on a pool of workers, each owning one
// reusable simulator.
//
// Construct with NewEngine(Config) to get the full serving surface —
// result cache, checkpoint/resume, range partitioning, filters, output
// writing and Stats(). The zero-value literal form (Engine{Workers: 8})
// remains valid for plain in-memory execution; its exported fields mirror
// the corresponding Config knobs.
type Engine struct {
	// Workers is the pool size; non-positive means GOMAXPROCS.
	Workers int
	// Shards, if positive, overrides the spec's simulator shard count for
	// every run. Every sharded count (≥ 2) yields bit-identical results —
	// the override only trades worker-level for shard-level parallelism.
	Shards int
	// Progress, if non-nil, is called after each run completes with the
	// completed and total counts. Calls are serialised.
	Progress func(done, total int)
	// Hist collects per-run duration histograms into RunResult.Hists.
	// Each run gets its own recorder, so output stays byte-identical for
	// any worker count.
	Hist bool
	// Obs, if non-nil, is attached as the flight recorder of the single
	// run whose Index equals ObsRun — deterministic regardless of which
	// worker executes that run. Configure the recorder's feature flags
	// before Execute; read its streams after.
	Obs    *obs.Recorder
	ObsRun int

	// cfg carries the serving-layer configuration when the engine was
	// built by NewEngine; nil for literal-constructed engines.
	cfg *Config
	// stats is the shared counter box (methods use value receivers).
	stats *execCounters
}

// config resolves the effective configuration: the validated Config for
// NewEngine-built engines, or a Config mirroring the legacy exported
// fields otherwise.
func (e Engine) config() Config {
	if e.cfg != nil {
		return *e.cfg
	}
	return Config{
		Version:  SchemaVersion,
		Workers:  e.Workers,
		Shards:   e.Shards,
		Progress: e.Progress,
		Hist:     e.Hist,
		Obs:      e.Obs,
		ObsRun:   e.ObsRun,
	}
}

// Stats reports what the engine did across its Execute/ExecuteSpec calls.
// Only engines built by NewEngine accumulate stats; literal-constructed
// engines report zeros.
func (e Engine) Stats() ExecStats { return e.stats.snapshot() }

// workers resolves the effective pool size for n runs.
func (c Config) workers(n int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Execute runs every run and returns results indexed like the input. The
// result slice is complete even on error; the returned error is the
// lowest-indexed run failure. Output is independent of Workers and of the
// cache state: a run served from the configured ResultStore is
// byte-identical to a simulated one.
//
// When checkpointing is configured, runs[i] is checkpointed under global
// position i; use ExecuteSpec for range-partitioned campaigns, which
// offsets positions so every range of one campaign shares a coherent
// position space.
func (e Engine) Execute(runs []Run) ([]RunResult, error) {
	return e.executeAt(runs, 0)
}

// executeAt is Execute with an explicit global position offset: runs[i]
// has position pos0+i in the campaign's output, the space checkpoint
// records are keyed by.
func (e Engine) executeAt(runs []Run, pos0 int) ([]RunResult, error) {
	cfg := e.config()
	results := make([]RunResult, len(runs))
	if len(runs) == 0 {
		return results, nil
	}

	// Checkpoint recovery: load once, then skip any run whose position is
	// already recorded with a matching content key (a stale directory from
	// an edited spec fails the key match and re-executes).
	var recovered map[int]CheckpointEntry
	var ckpt *checkpointWriter
	if cfg.CheckpointDir != "" {
		var err error
		recovered, err = LoadCheckpoints(cfg.CheckpointDir)
		if err != nil {
			return results, err
		}
		ckpt, err = newCheckpointWriter(cfg.CheckpointDir, Range{Lo: pos0, Hi: pos0 + len(runs)})
		if err != nil {
			return results, err
		}
		defer ckpt.close()
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var tally ExecStats
	done := 0
	ckptErr := make([]error, cfg.workers(len(runs)))
	finish := func(i int, simulated, cacheHit, ckptHit bool) {
		mu.Lock()
		done++
		tally.Runs++
		if simulated {
			tally.Simulated++
		}
		if cacheHit {
			tally.CacheHits++
		}
		if ckptHit {
			tally.CheckpointHits++
		}
		if cfg.OnResult != nil {
			cfg.OnResult(results[i])
		}
		if cfg.Progress != nil {
			cfg.Progress(done, len(runs))
		}
		mu.Unlock()
	}
	for w := 0; w < cfg.workers(len(runs)); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sim *simmpi.Sim // lazily built, then reused via Reset
			var scratch []byte  // content-key buffer, reused across runs
			for i := range jobs {
				r := runs[i]
				pos := pos0 + i

				// The flight-recorded run always simulates: its purpose is
				// the recorder's streams, which caches cannot serve.
				bypass := cfg.Obs != nil && r.Index == cfg.ObsRun

				var key RunKey
				needKey := ckpt != nil || (cfg.Store != nil && !bypass)
				if needKey {
					shards := cfg.Shards
					if shards <= 0 {
						shards = r.shards
					}
					key, scratch = r.ContentKey(KeyMode{Hist: cfg.Hist, Canon: shards > 1}, scratch)
				}

				if !bypass {
					if ent, ok := recovered[pos]; ok && ent.Key == key {
						var res RunResult
						if err := json.Unmarshal(ent.Row, &res); err == nil {
							res.rehydrate(r)
							results[i] = res
							finish(i, false, false, true)
							continue
						}
					}
					if cfg.Store != nil {
						if res, ok := cfg.Store.Get(key); ok {
							res.rehydrate(r)
							results[i] = res
							if ckpt != nil {
								if row, err := json.Marshal(&res); err == nil {
									if err := ckpt.append(pos, key, row); err != nil {
										ckptErr[w] = err
									}
								}
							}
							finish(i, false, true, false)
							continue
						}
					}
				}

				res := executeRun(r, cfg, &sim)
				results[i] = res
				if res.Error == "" {
					if cfg.Store != nil && !bypass {
						cfg.Store.Put(key, res)
					}
					if ckpt != nil {
						if row, err := json.Marshal(&res); err == nil {
							if err := ckpt.append(pos, key, row); err != nil {
								ckptErr[w] = err
							}
						}
					}
				}
				finish(i, true, false, false)
			}
		}(w)
	}
	for i := range runs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	e.stats.add(tally)
	for i := range results {
		if results[i].Error != "" {
			return results, fmt.Errorf("campaign: run %s: %s", runs[i].Key(), results[i].Error)
		}
	}
	for _, err := range ckptErr {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// ExecuteSpec expands the spec and executes it under the engine's full
// configuration: the Filter restricts the expansion, RangePart/RangeParts
// select this process's slice of it (checkpoint positions stay global, so
// every range of a campaign shares one coherent space), and Output — if
// set — is created before anything executes and receives the results as
// JSONL (the completed prefix is written even when a run fails).
//
// The returned results cover only this process's range. An expansion left
// empty by the filter is an error — a silently empty campaign is always a
// typo in the filter or the spec.
func (e Engine) ExecuteSpec(s Spec) ([]RunResult, error) {
	cfg := e.config()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	runs, err := s.Expand()
	if err != nil {
		return nil, err
	}
	if cfg.Filter != "" {
		f, err := ParseFilter(cfg.Filter)
		if err != nil {
			return nil, err
		}
		runs = f.Apply(runs)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("campaign: %q has no runs after filtering", s.Name)
	}
	pos0 := 0
	if cfg.RangeParts > 1 {
		parts := Ranges(len(runs), cfg.RangeParts)
		if cfg.RangePart >= len(parts) {
			// More parts than runs: trailing parts are legitimately empty.
			return []RunResult{}, nil
		}
		rg := parts[cfg.RangePart]
		runs = runs[rg.Lo:rg.Hi]
		pos0 = rg.Lo
	}

	// Open the output before executing: an unwritable path must fail here,
	// not after minutes of sweeping. Parent directories are created.
	var outFile *os.File
	if cfg.Output != "" {
		if err := obs.EnsureParent(cfg.Output); err != nil {
			return nil, fmt.Errorf("campaign: creating output directory: %w", err)
		}
		f, err := os.Create(cfg.Output)
		if err != nil {
			return nil, fmt.Errorf("campaign: opening output: %w", err)
		}
		outFile = f
	}

	results, execErr := e.executeAt(runs, pos0)
	if outFile != nil {
		if err := WriteJSONL(outFile, results); err != nil {
			outFile.Close()
			if execErr == nil {
				execErr = err
			}
			return results, execErr
		}
		if err := outFile.Close(); err != nil && execErr == nil {
			execErr = err
		}
	}
	return results, execErr
}

// executeRun evaluates the analytic model and the simulator for one run.
// cfg supplies the shard override and observability options. simp points
// at the worker's simulator slot: nil on the worker's first run, Reset and
// reused afterwards.
func executeRun(r Run, cfg Config, simp **simmpi.Sim) RunResult {
	start := time.Now()
	out := RunResult{
		Schema:     SchemaVersion,
		Index:      r.Index,
		Campaign:   r.Campaign,
		App:        r.App,
		Grid:       r.Grid,
		Htile:      r.Htile,
		Machine:    r.Machine,
		Override:   r.Override,
		P:          r.P,
		Iterations: r.Iterations,
		Collective: r.Collective,
		Workload:   r.Workload,
	}
	fail := func(err error) RunResult {
		out.Error = err.Error()
		out.WallSeconds = time.Since(start).Seconds()
		return out
	}

	bm := r.bm.WithIterations(r.Iterations)
	rep, err := core.New(bm.App, r.mach).Evaluate(r.dec)
	if err != nil {
		return fail(err)
	}
	sched, err := bm.Schedule(r.dec, r.Iterations)
	if err != nil {
		return fail(err)
	}
	topo, err := simnet.NewMachineTopology(r.mach, r.dec)
	if err != nil {
		return fail(err)
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = r.shards
	}
	opt := simmpi.Options{Shards: shards, Obs: cfg.recorderFor(r.Index)}
	if *simp == nil {
		s, err := simmpi.NewWithOptions(topo, opt)
		if err != nil {
			return fail(err)
		}
		*simp = s
	} else if err := (*simp).ResetWithOptions(topo, opt); err != nil {
		return fail(err)
	}
	sim := *simp
	for rank, prog := range sched.Programs() {
		sim.SetProgram(rank, prog)
	}
	res, err := sim.Run()
	if err != nil {
		return fail(err)
	}

	out.ModelMicros = rep.Total
	out.SimMicros = res.Time
	out.RelErr = stats.SignedRelErr(rep.Total, res.Time)
	out.AbsErr = stats.RelErr(rep.Total, res.Time)
	out.Band = metrics.ErrorBand(out.AbsErr)
	out.RunsPerMon = metrics.TimeStepsPerMonth(res.Time)
	out.Events = res.Events
	out.Messages = res.Sends
	out.BytesSent = res.BytesSent
	out.BusWait = res.BusWait
	if ic := topo.Interconnect(); ic != nil {
		out.Topology = ic.Spec().String()
		out.LinkWait = res.LinkWait
		out.LinkQueued = res.LinkQueued
		if res.Time > 0 {
			out.MaxLinkUtil = ic.MaxLinkBusy() / res.Time
		}
	}
	if cfg.Hist && res.Hists != nil {
		rh := &RunHists{
			RecvWait:   summarizeHist(&res.Hists.RecvWait),
			MsgLatency: summarizeHist(&res.Hists.MsgLatency),
		}
		if res.Hists.LinkDelay.N() > 0 {
			ld := summarizeHist(&res.Hists.LinkDelay)
			rh.LinkDelay = &ld
		}
		out.Hists = rh
	}
	out.WallSeconds = time.Since(start).Seconds()
	return out
}
