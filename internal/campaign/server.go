package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
)

// Server serves campaign execution over HTTP/JSON: clients POST specs,
// poll status, and fetch JSONL results, while every campaign shares the
// server's content-addressed ResultStore — so overlapping sweeps from
// different clients hit each other's cached runs. cmd/campaignd wraps this
// in a binary; the type lives here so tests drive it with httptest.
//
// Endpoints (all responses carry "schema_version"):
//
//	POST /v1/campaigns           submit a spec (strict JSON), 202 + id
//	GET  /v1/campaigns           list campaigns
//	GET  /v1/campaigns/{id}      status: state, done/total, exec stats
//	GET  /v1/campaigns/{id}/results   JSONL rows in index order (when done)
//	GET  /v1/cache/stats         shared store hit/miss counters
//	GET  /healthz                liveness probe
type Server struct {
	cfg Config

	mu        sync.Mutex
	seq       int
	order     []string
	campaigns map[string]*servedCampaign
}

// servedCampaign is one submitted campaign's mutable state.
type servedCampaign struct {
	mu      sync.Mutex
	id      string
	name    string
	total   int
	done    int
	state   string // "running", "done", "failed"
	errMsg  string
	results []RunResult // completion order; sorted by index when served
	stats   ExecStats
}

// NewServer validates the base configuration and returns a server.
// cfg supplies the per-campaign execution knobs (Workers, Shards, Hist)
// and the shared Store (an in-memory LRU is installed when nil). The
// per-process knobs that don't survive multiplexing — Output, Obs,
// Progress, OnResult, Filter, ranges, checkpoints — must be unset: each
// campaign gets its own engine and the server owns those hooks.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Output != "" || cfg.CheckpointDir != "" || cfg.Obs != nil ||
		cfg.Progress != nil || cfg.OnResult != nil || cfg.Filter != "" || cfg.RangeParts != 0 {
		return nil, fmt.Errorf("campaign: server config must leave per-process knobs (output, checkpoints, obs, hooks, filter, ranges) unset")
	}
	if cfg.Store == nil {
		cfg.Store = NewMemoryStore(0)
	}
	return &Server{cfg: cfg, campaigns: make(map[string]*servedCampaign)}, nil
}

// Store exposes the shared result store (for stats and tests).
func (s *Server) Store() ResultStore { return s.cfg.Store }

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/cache/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.cfg.Store.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return mux
}

// errorBody is the JSON error envelope every non-2xx response uses.
type errorBody struct {
	Schema int    `json:"schema_version"`
	Error  string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Schema: SchemaVersion, Error: err.Error()})
}

// submitResponse acknowledges an accepted campaign.
type submitResponse struct {
	Schema     int    `json:"schema_version"`
	ID         string `json:"id"`
	Name       string `json:"name"`
	Runs       int    `json:"runs"`
	State      string `json:"state"`
	StatusURL  string `json:"status_url"`
	ResultsURL string `json:"results_url"`
}

// statusResponse reports one campaign's progress.
type statusResponse struct {
	Schema int       `json:"schema_version"`
	ID     string    `json:"id"`
	Name   string    `json:"name"`
	State  string    `json:"state"`
	Done   int       `json:"done"`
	Total  int       `json:"total"`
	Error  string    `json:"error,omitempty"`
	Stats  ExecStats `json:"stats"`
}

func (c *servedCampaign) status() statusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	return statusResponse{
		Schema: SchemaVersion,
		ID:     c.id, Name: c.name, State: c.state,
		Done: c.done, Total: c.total, Error: c.errMsg,
		Stats: c.stats,
	}
}

// handleSubmit accepts a campaign spec, expands it synchronously (so a bad
// spec is a 400 with the expansion error, not a failed campaign), then
// executes it in the background.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign: reading body: %w", err))
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	runs, err := spec.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	s.mu.Lock()
	s.seq++
	c := &servedCampaign{
		id:    fmt.Sprintf("c%d", s.seq),
		name:  spec.Name,
		total: len(runs),
		state: "running",
	}
	s.campaigns[c.id] = c
	s.order = append(s.order, c.id)
	s.mu.Unlock()

	cfg := s.cfg
	cfg.Progress = nil
	cfg.OnResult = func(res RunResult) {
		c.mu.Lock()
		c.done++
		c.results = append(c.results, res)
		c.mu.Unlock()
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		// Base config was validated in NewServer; this is unreachable
		// short of a data race, but fail the campaign rather than panic.
		c.mu.Lock()
		c.state, c.errMsg = "failed", err.Error()
		c.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	go func() {
		_, execErr := eng.Execute(runs)
		c.mu.Lock()
		c.stats = eng.Stats()
		if execErr != nil {
			c.state, c.errMsg = "failed", execErr.Error()
		} else {
			c.state = "done"
		}
		c.mu.Unlock()
	}()

	writeJSON(w, http.StatusAccepted, submitResponse{
		Schema: SchemaVersion,
		ID:     c.id, Name: c.name, Runs: c.total, State: "running",
		StatusURL:  "/v1/campaigns/" + c.id,
		ResultsURL: "/v1/campaigns/" + c.id + "/results",
	})
}

// listResponse enumerates campaigns in submission order.
type listResponse struct {
	Schema    int              `json:"schema_version"`
	Campaigns []statusResponse `json:"campaigns"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := listResponse{Schema: SchemaVersion, Campaigns: []statusResponse{}}
	for _, id := range ids {
		s.mu.Lock()
		c := s.campaigns[id]
		s.mu.Unlock()
		out.Campaigns = append(out.Campaigns, c.status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(r *http.Request) (*servedCampaign, error) {
	id := r.PathValue("id")
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		return nil, fmt.Errorf("campaign: no campaign %q", id)
	}
	return c, nil
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, err := s.lookup(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, c.status())
}

// handleResults serves the finished campaign as JSONL in index order —
// byte-identical to the file a single-process CLI run of the same spec
// writes. A campaign still running is a 409: partial output would violate
// that identity.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	c, err := s.lookup(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	c.mu.Lock()
	state := c.state
	results := append([]RunResult(nil), c.results...)
	c.mu.Unlock()
	if state != "done" {
		writeError(w, http.StatusConflict, fmt.Errorf("campaign: %s is %s; results are served when done", c.id, state))
		return
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })
	w.Header().Set("Content-Type", "application/jsonl")
	if err := WriteJSONL(w, results); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}
