package campaign

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// TestWorkloadsBuiltin pins the load-imbalance sweep's contract: at least
// 500 runs, every one with a distinct coordinate key AND a distinct
// content key — a workload must never be able to serve another workload's
// cached result.
func TestWorkloadsBuiltin(t *testing.T) {
	s, ok := Builtin("workloads")
	if !ok {
		t.Fatal("builtin \"workloads\" missing")
	}
	runs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) < 500 {
		t.Fatalf("workloads has %d runs, want ≥ 500", len(runs))
	}
	seenKey := make(map[string]int, len(runs))
	seenContent := make(map[RunKey]string, len(runs))
	var scratch []byte
	withWorkload := 0
	for _, r := range runs {
		if prev, dup := seenKey[r.Key()]; dup {
			t.Fatalf("runs %d and %d share key %s", prev, r.Index, r.Key())
		}
		seenKey[r.Key()] = r.Index
		var k RunKey
		k, scratch = r.ContentKey(KeyMode{}, scratch)
		if prev, dup := seenContent[k]; dup {
			t.Fatalf("runs %q and %q share a content key", prev, r.Key())
		}
		seenContent[k] = r.Key()
		if r.Workload != "" {
			withWorkload++
		}
	}
	// 14 of 15 variants carry a workload.
	if want := len(runs) * 14 / 15; withWorkload != want {
		t.Errorf("%d runs carry a workload, want %d", withWorkload, want)
	}
}

const workloadSpecJSON = `{
  "name": "wl-mini",
  "iterations": 1,
  "apps": [
    {"preset": "sweep3d", "grid": {"nx": 12, "ny": 12, "nz": 12},
     "workload": {"dist": "lognormal", "sigma": 0.4, "seed": 7,
                  "noise": {"rate": 0.5, "amp_us": 25}}},
    {"preset": "sweep3d", "grid": {"nx": 12, "ny": 12, "nz": 12},
     "workload": {"dist": "hotspot", "hot_frac": 0.25, "hot_mul": 3, "seed": 1}}
  ],
  "machines": [{"preset": "xt4", "cores_per_node": 2}],
  "ranks": [4, 16]
}`

// TestWorkloadDeterministicAcrossWorkers extends the byte-identical-JSONL
// contract to workload-perturbed campaigns: the workload is a pure hash of
// run coordinates, so worker scheduling cannot leak into the sampled
// imbalance.
func TestWorkloadDeterministicAcrossWorkers(t *testing.T) {
	s, err := ParseSpec([]byte(workloadSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	encode := func(workers int) []byte {
		res, err := Engine{Workers: workers}.Execute(runs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	if !strings.Contains(string(serial), `"workload":"lognormal(σ=0.4,seed=7)+noise(0.5×25µs)"`) {
		t.Error("JSONL rows do not carry the workload label")
	}
	if par := encode(8); !bytes.Equal(serial, par) {
		t.Error("workers=8 produced different JSONL bytes than workers=1")
	}
}

// TestWorkloadDeterministicAcrossShards: a workload-perturbed campaign
// emits byte-identical JSONL for every sharded simulator count (the same
// contract TestDeterministicAcrossShardCounts pins for unperturbed runs).
func TestWorkloadDeterministicAcrossShards(t *testing.T) {
	s, err := ParseSpec([]byte(workloadSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	encode := func(shards int) []byte {
		sh := s
		sh.Shards = shards
		runs, err := sh.Expand()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Engine{Workers: 2}.Execute(runs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := encode(2)
	if got := encode(4); !bytes.Equal(base, got) {
		t.Error("shards=4 produced different JSONL bytes than shards=2")
	}
}

// TestUniformWorkloadMatchesNone: attaching the identity workload (uniform,
// σ = 0) must not move a single bit of physics — the simulated time of the
// workload-carrying run equals the bare run's exactly.
func TestUniformWorkloadMatchesNone(t *testing.T) {
	s, err := ParseSpec([]byte(`{
	  "name": "wl-identity",
	  "apps": [
	    {"preset": "sweep3d", "grid": {"nx": 12, "ny": 12, "nz": 12}},
	    {"preset": "sweep3d", "grid": {"nx": 12, "ny": 12, "nz": 12},
	     "workload": {"dist": "uniform", "seed": 5}}
	  ],
	  "machines": [{"preset": "xt4", "cores_per_node": 2}],
	  "ranks": [16]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Engine{Workers: 1}.ExecuteSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	bare, uniform := res[0], res[1]
	if bare.Workload != "" || uniform.Workload != "uniform" {
		t.Fatalf("workload labels = %q, %q; want \"\", \"uniform\"", bare.Workload, uniform.Workload)
	}
	if math.Float64bits(bare.SimMicros) != math.Float64bits(uniform.SimMicros) {
		t.Errorf("identity workload changed simulated time: %v != %v", uniform.SimMicros, bare.SimMicros)
	}
	if bare.Events != uniform.Events || bare.Messages != uniform.Messages {
		t.Error("identity workload changed event or message counts")
	}
}

func TestWorkloadConflicts(t *testing.T) {
	custom := &config.AppSpec{
		Name: "x",
		Grid: config.GridSpec{Nx: 8, Ny: 8, Nz: 8}, Wg: 0.5, Htile: 1,
		Corners: []string{"NW"}, Angles: 6, Iterations: 1,
		Workload: &config.WorkloadSpec{Dist: workload.DistNormal, Sigma: 0.2},
	}
	d := AppDim{
		Spec:     custom,
		Workload: &config.WorkloadSpec{Dist: workload.DistNormal, Sigma: 0.4},
	}
	if _, err := d.resolve(); err == nil {
		t.Error("double workload spec accepted")
	}

	bad := AppDim{
		Preset: "sweep3d",
		Grid:   &config.GridSpec{Nx: 8, Ny: 8, Nz: 8},
		Workload: &config.WorkloadSpec{
			Dist: "zipf",
		},
	}
	if _, err := bad.resolve(); err == nil {
		t.Error("unknown workload distribution accepted")
	}
}

// TestWorkloadFilter: the workload label is a filterable dimension, so CI
// can select e.g. only the lognormal slice of the workloads builtin.
func TestWorkloadFilter(t *testing.T) {
	s, err := ParseSpec([]byte(workloadSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseFilter("workload=lognormal")
	if err != nil {
		t.Fatal(err)
	}
	kept := f.Apply(runs)
	if len(kept) != 2 {
		t.Fatalf("filter kept %d runs, want 2", len(kept))
	}
	for _, r := range kept {
		if !strings.Contains(r.Workload, "lognormal") {
			t.Errorf("filter kept run %s", r.Key())
		}
	}
}
