package campaign

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/topo"
	"repro/internal/workload"
)

// componentSpec returns the base spec the mutation catalog perturbs: one
// app, one machine, one rank count.
func componentSpec() Spec {
	g := config.GridSpec{Nx: 16, Ny: 16, Nz: 16}
	return Spec{
		Name:     "components",
		Apps:     []AppDim{{Preset: "lu", Grid: &g}},
		Machines: []MachineDim{{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 2}}},
		Ranks:    []int{16},
	}
}

// firstRun expands the (possibly mutated) spec to its single run.
func firstRun(t *testing.T, mutate func(*Spec)) Run {
	t.Helper()
	s := componentSpec()
	if mutate != nil {
		mutate(&s)
	}
	runs, err := s.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	return runs[0]
}

// TestKeyComponentsMatchContentKey pins KeyComponents against ContentKey:
// for a catalog of single-dimension spec mutations, the content hash
// changes exactly when some component value changes, and the changed
// components are the expected ones. A field added to ContentKey but not to
// KeyComponents (or vice versa) breaks the equivalence here.
func TestKeyComponentsMatchContentKey(t *testing.T) {
	mode := KeyMode{}
	base := firstRun(t, nil)
	baseKey, _ := base.ContentKey(mode, nil)
	baseComps := base.KeyComponents(mode)

	if got := len(baseComps); got != len(ComponentNames()) {
		t.Fatalf("KeyComponents emits %d components, ComponentNames lists %d", got, len(ComponentNames()))
	}
	for i, name := range ComponentNames() {
		if baseComps[i].Name != name {
			t.Errorf("component %d is %q, want %q", i, baseComps[i].Name, name)
		}
	}

	cases := []struct {
		name   string
		mutate func(*Spec)
		want   []string // expected differing components
	}{
		{"identical spec", func(s *Spec) {}, nil},
		{"relabel machine (display only)", func(s *Spec) {
			s.Machines[0].Label = "renamed"
		}, nil},
		{"preset", func(s *Spec) {
			s.Apps[0].Preset = "sweep3d"
		}, []string{"app", "placement"}},
		{"grid", func(s *Spec) {
			s.Apps[0].Grid = &config.GridSpec{Nx: 20, Ny: 20, Nz: 20}
		}, []string{"app", "placement"}},
		// LU's boundary sizing ignores htile, so only the app component
		// moves; a transport code's htile also scales its boundary bytes
		// and would move "placement" too.
		{"htile", func(s *Spec) {
			s.Apps[0].Htile = 4
		}, []string{"app"}},
		{"iterations", func(s *Spec) {
			s.Iterations = 3
		}, []string{"app"}},
		{"convergence", func(s *Spec) {
			s.Apps[0].Convergence = &config.ConvergenceSpec{Bytes: 8, Alg: "ring"}
		}, []string{"collective"}},
		{"convergence alg", func(s *Spec) {
			s.Apps[0].Convergence = &config.ConvergenceSpec{Bytes: 8, Alg: "recdouble"}
		}, []string{"collective"}},
		{"workload sigma", func(s *Spec) {
			s.Apps[0].Workload = &config.WorkloadSpec{Dist: workload.DistLognormal, Sigma: 0.3, Seed: 1}
		}, []string{"workload"}},
		{"workload seed", func(s *Spec) {
			s.Apps[0].Workload = &config.WorkloadSpec{Dist: workload.DistLognormal, Sigma: 0.3, Seed: 2}
		}, []string{"workload"}},
		{"workload noise", func(s *Spec) {
			s.Apps[0].Workload = &config.WorkloadSpec{Noise: &workload.NoiseSpec{Rate: 1, AmpUS: 10}}
		}, []string{"workload"}},
		{"loggp override", func(s *Spec) {
			s.LogGP = []ParamOverride{{Name: "slow", Scale: map[string]float64{"L": 4}}}
		}, []string{"machine"}},
		{"cores per node", func(s *Spec) {
			s.Machines[0].CoresPerNode = 4
		}, []string{"node"}},
		{"bus groups", func(s *Spec) {
			s.Machines[0].BusGroups = 2
		}, []string{"node"}},
		{"interconnect", func(s *Spec) {
			s.Machines[0].Interconnect = &topo.Spec{Kind: topo.Torus2D}
		}, []string{"interconnect"}},
		{"ranks", func(s *Spec) {
			s.Ranks = []int{36}
		}, []string{"placement"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := firstRun(t, tc.mutate)
			key, _ := r.ContentKey(mode, nil)
			diff, err := DiffKeyComponents(baseComps, r.KeyComponents(mode))
			if err != nil {
				t.Fatalf("DiffKeyComponents: %v", err)
			}
			if fmt.Sprint(diff) != fmt.Sprint(tc.want) {
				t.Errorf("differing components = %v, want %v", diff, tc.want)
			}
			if (key != baseKey) != (len(diff) > 0) {
				t.Errorf("ContentKey changed=%v but components changed=%v — the two views drifted apart",
					key != baseKey, len(diff) > 0)
			}
		})
	}
}

// TestKeyComponentsModeBits: the execution-mode bits are their own
// component, and they change the content key exactly like any dimension.
func TestKeyComponentsModeBits(t *testing.T) {
	r := firstRun(t, nil)
	plain := r.KeyComponents(KeyMode{})
	hist := r.KeyComponents(KeyMode{Hist: true})
	canon := r.KeyComponents(KeyMode{Canon: true})
	for _, alt := range [][]KeyComponent{hist, canon} {
		diff, err := DiffKeyComponents(plain, alt)
		if err != nil {
			t.Fatalf("DiffKeyComponents: %v", err)
		}
		if fmt.Sprint(diff) != fmt.Sprint([]string{"mode"}) {
			t.Errorf("mode-bit diff = %v, want [mode]", diff)
		}
	}
	k1, _ := r.ContentKey(KeyMode{}, nil)
	k2, _ := r.ContentKey(KeyMode{Hist: true}, nil)
	if k1 == k2 {
		t.Error("Hist mode bit did not change the content key")
	}
}

// TestDiffKeyComponentsShapeErrors: malformed pairings error instead of
// mis-diffing.
func TestDiffKeyComponentsShapeErrors(t *testing.T) {
	a := []KeyComponent{{Name: "app", Value: "x"}}
	if _, err := DiffKeyComponents(a, nil); err == nil {
		t.Error("length mismatch should error")
	}
	b := []KeyComponent{{Name: "machine", Value: "x"}}
	if _, err := DiffKeyComponents(a, b); err == nil {
		t.Error("name mismatch should error")
	}
}
