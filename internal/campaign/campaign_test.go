package campaign

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/logp"
)

// specJSON is a small, fully explicit spec exercising every dimension.
const specJSON = `{
  "name": "unit",
  "iterations": 1,
  "apps": [
    {"preset": "sweep3d", "grid": {"nx": 12, "ny": 12, "nz": 12}},
    {"preset": "lu", "grid": {"nx": 12, "ny": 12, "nz": 12}}
  ],
  "machines": [
    {"preset": "xt4", "cores_per_node": 2},
    {"preset": "xt4", "cores_per_node": 1, "label": "xt4 single"}
  ],
  "ranks": [4, 9],
  "loggp": [
    {"name": "baseline"},
    {"name": "slow", "scale": {"L": 2}}
  ]
}`

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2*2*2*2 {
		t.Fatalf("expanded %d runs, want 16", len(runs))
	}
	// Deterministic order: app-major, then machine, then override, then rank.
	if runs[0].App != "Sweep3D" || runs[0].P != 4 || runs[0].Override != "baseline" ||
		runs[0].Machine != "Cray XT4 (2 cores/node)" {
		t.Errorf("first run %+v", runs[0])
	}
	if runs[1].P != 9 || runs[2].Override != "slow" || runs[8].App != "LU" {
		t.Errorf("order wrong: %v %v %v", runs[1].Key(), runs[2].Key(), runs[8].Key())
	}
	for i, r := range runs {
		if r.Index != i {
			t.Fatalf("run %d has index %d", i, r.Index)
		}
	}
}

// TestSpecErrors is the table-driven parsing contract: unknown fields,
// empty sweep dimensions and invalid combinations all fail with actionable
// messages.
func TestSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{
			"unknown top-level field",
			`{"name": "x", "bogus": 1, "apps": [], "machines": [], "ranks": []}`,
			"bogus",
		},
		{
			"unknown app field",
			`{"name": "x", "apps": [{"preset": "lu", "grib": {}}], "machines": [{"preset": "xt4"}], "ranks": [4]}`,
			"grib",
		},
		{
			"missing name",
			`{"apps": [{"preset": "lu", "grid": {"nx":8,"ny":8,"nz":8}}], "machines": [{"preset": "xt4"}], "ranks": [4]}`,
			"needs a name",
		},
		{
			"no apps",
			`{"name": "x", "apps": [], "machines": [{"preset": "xt4"}], "ranks": [4]}`,
			"no apps",
		},
		{
			"no machines",
			`{"name": "x", "apps": [{"preset": "lu", "grid": {"nx":8,"ny":8,"nz":8}}], "machines": [], "ranks": [4]}`,
			"no machines",
		},
		{
			"no ranks",
			`{"name": "x", "apps": [{"preset": "lu", "grid": {"nx":8,"ny":8,"nz":8}}], "machines": [{"preset": "xt4"}], "ranks": []}`,
			"no rank counts",
		},
		{
			"non-positive rank",
			`{"name": "x", "apps": [{"preset": "lu", "grid": {"nx":8,"ny":8,"nz":8}}], "machines": [{"preset": "xt4"}], "ranks": [4, 0]}`,
			"must be positive",
		},
		{
			"unknown preset",
			`{"name": "x", "apps": [{"preset": "hydra", "grid": {"nx":8,"ny":8,"nz":8}}], "machines": [{"preset": "xt4"}], "ranks": [4]}`,
			"unknown app preset",
		},
		{
			"preset without grid",
			`{"name": "x", "apps": [{"preset": "lu"}], "machines": [{"preset": "xt4"}], "ranks": [4]}`,
			"needs a grid",
		},
		{
			"unknown machine preset",
			`{"name": "x", "apps": [{"preset": "lu", "grid": {"nx":8,"ny":8,"nz":8}}], "machines": [{"preset": "cm5"}], "ranks": [4]}`,
			"unknown machine preset",
		},
		{
			"unknown loggp key",
			`{"name": "x", "apps": [{"preset": "lu", "grid": {"nx":8,"ny":8,"nz":8}}], "machines": [{"preset": "xt4"}], "ranks": [4], "loggp": [{"name": "bad", "scale": {"latency": 2}}]}`,
			"unknown parameter",
		},
		{
			"override needs a name",
			`{"name": "x", "apps": [{"preset": "lu", "grid": {"nx":8,"ny":8,"nz":8}}], "machines": [{"preset": "xt4"}], "ranks": [4], "loggp": [{"scale": {"L": 2}}]}`,
			"needs a name",
		},
		{
			"negative override result",
			`{"name": "x", "apps": [{"preset": "lu", "grid": {"nx":8,"ny":8,"nz":8}}], "machines": [{"preset": "xt4"}], "ranks": [4], "loggp": [{"name": "neg", "set": {"L": -1}}]}`,
			"invalid parameters",
		},
		{
			"duplicate override",
			`{"name": "x", "apps": [{"preset": "lu", "grid": {"nx":8,"ny":8,"nz":8}}], "machines": [{"preset": "xt4"}], "ranks": [4], "loggp": [{"name": "a"}, {"name": "a"}]}`,
			"twice",
		},
		{
			"duplicate machine label",
			`{"name": "x", "apps": [{"preset": "lu", "grid": {"nx":8,"ny":8,"nz":8}}], "machines": [{"preset": "xt4"}, {"preset": "xt4"}], "ranks": [4]}`,
			"distinct label",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.json))
			if err == nil {
				t.Fatalf("spec accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestExpandRejectsOversizedDecomposition: more processor columns than grid
// cells is an invalid rank/grid combination and must fail at expansion with
// the offending run named.
func TestExpandRejectsOversizedDecomposition(t *testing.T) {
	s, err := ParseSpec([]byte(`{
	  "name": "big",
	  "apps": [{"preset": "lu", "grid": {"nx": 8, "ny": 8, "nz": 8}}],
	  "machines": [{"preset": "xt4"}],
	  "ranks": [256]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Expand()
	if err == nil {
		t.Fatal("256 ranks on an 8x8x8 grid accepted")
	}
	for _, want := range []string{"LU", "P=256", "exceeds"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestDeterministicAcrossWorkerCounts is the campaign determinism
// contract: identical JSONL bytes for any worker count.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	s, err := ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	encode := func(workers int) []byte {
		res, err := Engine{Workers: workers}.Execute(runs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	if n := bytes.Count(serial, []byte("\n")); n != len(runs) {
		t.Fatalf("JSONL has %d rows, want %d", n, len(runs))
	}
	for _, workers := range []int{2, 8} {
		if par := encode(workers); !bytes.Equal(serial, par) {
			t.Errorf("workers=%d produced different JSONL bytes than workers=1", workers)
		}
	}
}

// TestDeterministicAcrossShardCounts extends the determinism contract to
// the simulator's conservative-parallel mode: a sharded campaign emits
// byte-identical JSONL for every shard count, whether sharded by the spec
// or by the engine override. The default serial engine is deliberately not
// the reference here: it keeps the legacy scheduling-order tiebreak, whose
// bus-contention statistics can differ microscopically from the canonical
// shard-count-independent order on tie-heavy configurations (this spec's
// single-core LU runs are one; see internal/simmpi/parallel.go). Serial
// equivalence on the paper's benchmark configurations is asserted in
// internal/simmpi/parallel_test.go.
func TestDeterministicAcrossShardCounts(t *testing.T) {
	s, err := ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	encode := func(s Spec, engineShards int) []byte {
		runs, err := s.Expand()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Engine{Workers: 2, Shards: engineShards}.Execute(runs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	withShards := func(k int) Spec {
		sh := s
		sh.Shards = k
		return sh
	}
	base := encode(withShards(2), 0)
	if n := bytes.Count(base, []byte("\n")); n != 16 {
		t.Fatalf("JSONL has %d rows, want 16", n)
	}
	for _, k := range []int{4, 8} {
		if got := encode(withShards(k), 0); !bytes.Equal(base, got) {
			t.Errorf("spec shards=%d produced different JSONL bytes than shards=2", k)
		}
	}
	if got := encode(s, 2); !bytes.Equal(base, got) {
		t.Error("engine shards=2 produced different JSONL bytes than spec shards=2")
	}
}

func TestSummarize(t *testing.T) {
	s, err := ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Engine{Workers: 4}.ExecuteSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize(res)
	// 2 apps + 2 machines + 2 rank groups + 2 overrides.
	if len(sums) != 8 {
		t.Fatalf("got %d summaries, want 8", len(sums))
	}
	byDim := map[string][]GroupSummary{}
	for _, g := range sums {
		byDim[g.Dimension] = append(byDim[g.Dimension], g)
		if g.Runs != 8 {
			t.Errorf("%s=%s groups %d runs, want 8", g.Dimension, g.Value, g.Runs)
		}
		if g.SimP50 <= 0 || g.SimMax < g.SimP90 || g.SimP90 < g.SimP50 {
			t.Errorf("%s=%s percentiles out of order: %v %v %v",
				g.Dimension, g.Value, g.SimP50, g.SimP90, g.SimMax)
		}
		total := 0
		for _, n := range g.Bands {
			total += n
		}
		if total != 8 {
			t.Errorf("%s=%s bands cover %d runs", g.Dimension, g.Value, total)
		}
	}
	if byDim["app"][0].Value != "Sweep3D" || byDim["ranks"][0].Value != "P=4" {
		t.Errorf("group order not first-appearance: %+v", byDim)
	}
	var buf bytes.Buffer
	RenderSummary(&buf, s.Name, res, sums)
	if !strings.Contains(buf.String(), "campaign unit: 16 runs") {
		t.Errorf("summary render:\n%s", buf.String())
	}
}

func TestFilter(t *testing.T) {
	s, err := ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseFilter("app=LU, p=4|9, override=baseline")
	if err != nil {
		t.Fatal(err)
	}
	got := f.Apply(runs)
	if len(got) != 4 { // 1 app × 2 machines × 1 override × 2 ranks
		t.Fatalf("filter kept %d runs, want 4", len(got))
	}
	for i, r := range got {
		if r.App != "LU" || r.Override != "baseline" {
			t.Errorf("kept %s", r.Key())
		}
		if r.Index != i {
			t.Errorf("run %d reindexed to %d", i, r.Index)
		}
	}
	if _, err := ParseFilter("planet=mars"); err == nil {
		t.Error("unknown filter key accepted")
	}
	if _, err := ParseFilter("p=two"); err == nil {
		t.Error("non-numeric rank filter accepted")
	}
}

func TestBuiltins(t *testing.T) {
	for _, name := range BuiltinNames() {
		s, ok := Builtin(name)
		if !ok {
			t.Fatalf("builtin %q missing", name)
		}
		runs, err := s.Expand()
		if err != nil {
			t.Fatalf("builtin %q: %v", name, err)
		}
		if name == "example" && len(runs) != 24 {
			t.Errorf("example has %d runs, want 24", len(runs))
		}
		if name == "flagship" && len(runs) < 300 {
			t.Errorf("flagship has %d runs, want ≥ 300", len(runs))
		}
		if name == "topologies" && len(runs) != 24 {
			t.Errorf("topologies has %d runs, want 24", len(runs))
		}
		if name == "collectives" {
			if len(runs) != 45 {
				t.Errorf("collectives has %d runs, want 45", len(runs))
			}
			for _, r := range runs {
				if r.Collective == "" {
					t.Errorf("collectives run %s carries no collective", r.Key())
				}
			}
		}
	}
	if _, ok := Builtin("nope"); ok {
		t.Error("unknown builtin resolved")
	}
}

// TestHtileSweep: tile height is a legitimate sweep dimension (paper
// Figure 5) — two entries differing only in htile are distinct apps and
// their runs are distinguishable in output.
func TestHtileSweep(t *testing.T) {
	s, err := ParseSpec([]byte(`{
	  "name": "htile",
	  "apps": [
	    {"preset": "sweep3d", "grid": {"nx": 12, "ny": 12, "nz": 12}, "htile": 1},
	    {"preset": "sweep3d", "grid": {"nx": 12, "ny": 12, "nz": 12}, "htile": 4}
	  ],
	  "machines": [{"preset": "xt4", "cores_per_node": 2}],
	  "ranks": [4]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Engine{Workers: 2}.ExecuteSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Htile != 1 || res[1].Htile != 4 {
		t.Fatalf("htile runs: %+v", res)
	}
	if res[0].SimMicros == res[1].SimMicros {
		t.Error("different tile heights simulated identically")
	}
}

// TestConvergenceSweep: the collective algorithm is a legitimate sweep
// dimension — entries differing only in convergence algorithm are distinct
// apps, their rows carry the collective label, and the simulated algorithms
// produce different times.
func TestConvergenceSweep(t *testing.T) {
	s, err := ParseSpec([]byte(`{
	  "name": "conv",
	  "apps": [
	    {"preset": "lu", "grid": {"nx": 12, "ny": 12, "nz": 12}},
	    {"preset": "lu", "grid": {"nx": 12, "ny": 12, "nz": 12},
	     "convergence": {"bytes": 65536, "alg": "ring"}},
	    {"preset": "lu", "grid": {"nx": 12, "ny": 12, "nz": 12},
	     "convergence": {"bytes": 65536, "alg": "recdouble"}}
	  ],
	  "machines": [{"preset": "xt4", "cores_per_node": 2}],
	  "ranks": [9]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Engine{Workers: 2}.ExecuteSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d runs, want 3", len(res))
	}
	if res[0].Collective != "" ||
		res[1].Collective != "allreduce/ring/65536B" ||
		res[2].Collective != "allreduce/recdouble/65536B" {
		t.Fatalf("collective labels: %q, %q, %q", res[0].Collective, res[1].Collective, res[2].Collective)
	}
	if res[1].SimMicros == res[2].SimMicros {
		t.Error("ring and recursive-doubling convergence simulated identically")
	}
	if res[1].SimMicros <= res[0].SimMicros {
		t.Error("a 64KB per-iteration all-reduce cost nothing")
	}
}

// TestConvergenceConflicts rejects ambiguous convergence placement and
// unknown algorithms.
func TestConvergenceConflicts(t *testing.T) {
	if _, err := ParseSpec([]byte(`{
	  "name": "bad", "ranks": [4],
	  "machines": [{"preset": "xt4", "cores_per_node": 1}],
	  "apps": [{"convergence": {"bytes": 8, "alg": "quantum"},
	    "preset": "lu", "grid": {"nx": 12, "ny": 12, "nz": 12}}]
	}`)); err == nil {
		t.Error("unknown convergence algorithm accepted")
	}
	if _, err := ParseSpec([]byte(`{
	  "name": "bad", "ranks": [4],
	  "machines": [{"preset": "xt4", "cores_per_node": 1}],
	  "apps": [{"convergence": {"bytes": 0}, "preset": "lu",
	    "grid": {"nx": 12, "ny": 12, "nz": 12}}]
	}`)); err == nil {
		t.Error("non-positive convergence size accepted")
	}
	d := AppDim{
		Spec: &config.AppSpec{
			Name: "x",
			Grid: config.GridSpec{Nx: 8, Ny: 8, Nz: 8}, Wg: 0.5, Htile: 1,
			Corners: []string{"NW"}, Angles: 6, Iterations: 1,
			Convergence: &config.ConvergenceSpec{Bytes: 8},
		},
		Convergence: &config.ConvergenceSpec{Bytes: 16},
	}
	if _, err := d.resolve(); err == nil {
		t.Error("double convergence spec accepted")
	}
}

func TestFilterRejectsTrailingGarbage(t *testing.T) {
	if _, err := ParseFilter("p=64x128"); err == nil {
		t.Error("rank filter with trailing garbage accepted")
	}
}

func TestOverrideRejectsHAlias(t *testing.T) {
	// Only the Table 2 name "oh" is accepted — an "h" alias would let one
	// override map target the handshake field through two keys, with the
	// winner decided by map iteration order.
	ov := ParamOverride{Name: "x", Set: map[string]float64{"h": 1}}
	if _, err := ov.Apply(logp.XT4()); err == nil {
		t.Error(`"h" accepted as a parameter key`)
	}
	ov = ParamOverride{Name: "x", Set: map[string]float64{"oh": 1}}
	prm, err := ov.Apply(logp.XT4())
	if err != nil || prm.H != 1 {
		t.Errorf(`"oh" override: H=%v err=%v`, prm.H, err)
	}
}
