package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/obs"
)

// ResultStore memoizes run results by content address, so overlapping or
// repeated sweeps hit a cache instead of the simulator. Implementations
// must be safe for concurrent use by campaign workers, and Get must not
// allocate on the miss path — a million-run sweep probes the store once
// per run, and the common case on a fresh campaign is a miss.
//
// Stored results hold only content-determined fields; the engine
// rehydrates per-sweep coordinates (index, campaign and override names,
// machine labels) from the run being served, so a hit is byte-identical
// to a cold simulation of the same run.
type ResultStore interface {
	// Get returns the memoized result for a key, if present.
	Get(key RunKey) (RunResult, bool)
	// Put memoizes a result. Implementations may evict older entries.
	Put(key RunKey, res RunResult)
	// Stats reports the store's counters since construction.
	Stats() CacheStats
}

// CacheStats are a store's hit/miss counters, rendered into campaign
// summaries and the campaignd /v1/cache/stats response.
type CacheStats struct {
	Schema  int    `json:"schema_version"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Puts    uint64 `json:"puts"`
	Entries int    `json:"entries"`
}

// MemoryStore is an in-memory LRU ResultStore. The zero value is not
// usable; construct with NewMemoryStore.
type MemoryStore struct {
	mu       sync.Mutex
	capacity int
	entries  map[RunKey]*lruEntry
	// head is the most recently used entry, tail the eviction candidate.
	head, tail *lruEntry

	hits, misses, puts uint64
}

type lruEntry struct {
	key        RunKey
	res        RunResult
	prev, next *lruEntry
}

// DefaultMemoryEntries bounds a NewMemoryStore(0). A RunResult is a few
// hundred bytes, so the default holds a flagship-scale sweep many times
// over in tens of MB.
const DefaultMemoryEntries = 1 << 16

// NewMemoryStore returns an LRU store holding at most capacity results
// (DefaultMemoryEntries if capacity <= 0).
func NewMemoryStore(capacity int) *MemoryStore {
	if capacity <= 0 {
		capacity = DefaultMemoryEntries
	}
	return &MemoryStore{
		capacity: capacity,
		entries:  make(map[RunKey]*lruEntry),
	}
}

// unlink removes e from the recency list.
func (m *MemoryStore) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (m *MemoryStore) pushFront(e *lruEntry) {
	e.next = m.head
	if m.head != nil {
		m.head.prev = e
	}
	m.head = e
	if m.tail == nil {
		m.tail = e
	}
}

// Get implements ResultStore. The miss path performs one map probe on a
// comparable array key: no allocations (pinned by a test).
func (m *MemoryStore) Get(key RunKey) (RunResult, bool) {
	m.mu.Lock()
	e, ok := m.entries[key]
	if !ok {
		m.misses++
		m.mu.Unlock()
		return RunResult{}, false
	}
	m.hits++
	m.unlink(e)
	m.pushFront(e)
	res := e.res
	m.mu.Unlock()
	return res, true
}

// Put implements ResultStore, evicting the least recently used entry when
// the store is full.
func (m *MemoryStore) Put(key RunKey, res RunResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.puts++
	if e, ok := m.entries[key]; ok {
		e.res = res
		m.unlink(e)
		m.pushFront(e)
		return
	}
	if len(m.entries) >= m.capacity {
		evict := m.tail
		m.unlink(evict)
		delete(m.entries, evict.key)
	}
	e := &lruEntry{key: key, res: res}
	m.entries[key] = e
	m.pushFront(e)
}

// Stats implements ResultStore.
func (m *MemoryStore) Stats() CacheStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return CacheStats{
		Schema: SchemaVersion,
		Hits:   m.hits, Misses: m.misses, Puts: m.puts,
		Entries: len(m.entries),
	}
}

// cacheRecord is one line of a DiskStore file.
type cacheRecord struct {
	Schema int             `json:"schema_version"`
	Key    string          `json:"key"`
	Row    json.RawMessage `json:"row"`
}

// DiskStore is a ResultStore backed by an append-only JSONL file: one
// {"schema_version", "key", "row"} object per memoized result, fully
// indexed in memory at open. Puts append and flush immediately, so a
// killed process loses at most the line being written — and the loader
// tolerates that torn tail. The file is shared-nothing: one process owns
// it at a time.
type DiskStore struct {
	mu   sync.Mutex
	path string
	f    *os.File
	m    map[RunKey]RunResult

	hits, misses, puts uint64
}

// OpenDiskStore opens (creating if needed, parents included) a disk-backed
// store and loads its index.
func OpenDiskStore(path string) (*DiskStore, error) {
	if err := obs.EnsureParent(path); err != nil {
		return nil, fmt.Errorf("campaign: cache %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: cache: %w", err)
	}
	d := &DiskStore{path: path, f: f, m: make(map[RunKey]RunResult)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec cacheRecord
		if json.Unmarshal(line, &rec) != nil || rec.Schema != SchemaVersion {
			// A torn tail from a killed writer, or a future schema: skip —
			// the worst case is re-simulating a run.
			continue
		}
		key, err := ParseRunKey(rec.Key)
		if err != nil {
			continue
		}
		var res RunResult
		if json.Unmarshal(rec.Row, &res) != nil {
			continue
		}
		d.m[key] = res
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: cache %s: %w", path, err)
	}
	return d, nil
}

// Get implements ResultStore.
func (d *DiskStore) Get(key RunKey) (RunResult, bool) {
	d.mu.Lock()
	res, ok := d.m[key]
	if ok {
		d.hits++
	} else {
		d.misses++
	}
	d.mu.Unlock()
	return res, ok
}

// Put implements ResultStore, appending the record before indexing it so
// the in-memory view never claims more than the file holds.
func (d *DiskStore) Put(key RunKey, res RunResult) {
	row, err := json.Marshal(&res)
	if err != nil {
		return
	}
	rec, err := json.Marshal(cacheRecord{Schema: SchemaVersion, Key: key.String(), Row: row})
	if err != nil {
		return
	}
	rec = append(rec, '\n')
	d.mu.Lock()
	defer d.mu.Unlock()
	d.puts++
	if _, err := d.f.Write(rec); err != nil {
		return // cache is best-effort: a full disk degrades to misses
	}
	d.m[key] = res
}

// Stats implements ResultStore.
func (d *DiskStore) Stats() CacheStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return CacheStats{
		Schema: SchemaVersion,
		Hits:   d.hits, Misses: d.misses, Puts: d.puts,
		Entries: len(d.m),
	}
}

// Close flushes and closes the backing file. The store must not be used
// afterwards.
func (d *DiskStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

// TieredStore layers a small fast store (typically a MemoryStore) over a
// larger persistent one (typically a DiskStore): gets probe fast first and
// promote slow hits, puts write through to both. Its stats count the
// tiered view — a hit in either layer is one hit.
type TieredStore struct {
	fast, slow ResultStore
	mu         sync.Mutex
	hits       uint64
	misses     uint64
	puts       uint64
}

// NewTieredStore layers fast over slow.
func NewTieredStore(fast, slow ResultStore) *TieredStore {
	return &TieredStore{fast: fast, slow: slow}
}

// Get implements ResultStore.
func (t *TieredStore) Get(key RunKey) (RunResult, bool) {
	res, ok := t.fast.Get(key)
	if !ok {
		res, ok = t.slow.Get(key)
		if ok {
			t.fast.Put(key, res)
		}
	}
	t.mu.Lock()
	if ok {
		t.hits++
	} else {
		t.misses++
	}
	t.mu.Unlock()
	return res, ok
}

// Put implements ResultStore.
func (t *TieredStore) Put(key RunKey, res RunResult) {
	t.mu.Lock()
	t.puts++
	t.mu.Unlock()
	t.fast.Put(key, res)
	t.slow.Put(key, res)
}

// Stats implements ResultStore. Entries reports the persistent layer's
// count — the fast layer is a subset view.
func (t *TieredStore) Stats() CacheStats {
	t.mu.Lock()
	hits, misses, puts := t.hits, t.misses, t.puts
	t.mu.Unlock()
	return CacheStats{
		Schema: SchemaVersion,
		Hits:   hits, Misses: misses, Puts: puts,
		Entries: t.slow.Stats().Entries,
	}
}
