// Package campaign is the scenario-sweep subsystem: it takes a declarative
// specification of a cartesian sweep — applications × machines × rank
// counts × LogGP parameter overrides — expands it into a deterministic run
// list, and executes the runs concurrently on a worker pool in which each
// worker owns one reusable simulator (simmpi.Sim.Reset), so the
// allocation-free core is amortised across thousands of runs.
//
// This is the paper's plug-and-play workflow at fleet scale: instead of one
// hand-written driver per "what if" question (Sections 5.1–5.5 each ask a
// few), a campaign asks hundreds at once — every run records the analytic
// model's prediction, the discrete-event simulator's result, their relative
// error, and traffic/contention counters. Results stream out as JSONL and
// fold into per-dimension summaries with percentiles.
//
// Results are independent of the worker count: runs are indexed at
// expansion, workers write into disjoint slots, and the simulator is
// bit-for-bit deterministic, so the same spec always produces byte-identical
// JSONL whether executed with one worker or sixty-four.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/coll"
	"repro/internal/config"
	"repro/internal/grid"
	"repro/internal/logp"
	"repro/internal/machine"
	"repro/internal/topo"
)

// Spec is the JSON-loadable description of a campaign: every combination of
// one entry per dimension becomes one run. The zero or omitted LogGP
// dimension means "baseline parameters only".
type Spec struct {
	Name string `json:"name"`
	// Iterations is the wavefront iteration count of every run (default 1).
	Iterations int `json:"iterations,omitempty"`
	// Shards is the conservative-parallel shard count each simulator uses
	// (simmpi.Sim.SetShards). Results are bit-identical for every sharded
	// count (k ≥ 2), making this a pure throughput knob for huge-rank
	// campaigns; 0 or 1 keeps the serial engine, whose legacy same-time
	// tie order can differ microscopically in bus-contention statistics
	// from the canonical sharded order on tie-heavy configurations (see
	// internal/simmpi/parallel.go).
	Shards int `json:"shards,omitempty"`

	Apps     []AppDim        `json:"apps"`
	Machines []MachineDim    `json:"machines"`
	Ranks    []int           `json:"ranks"`
	LogGP    []ParamOverride `json:"loggp,omitempty"`
}

// AppDim is one value of the application dimension: either a named preset
// of the paper's Table 3 benchmarks on a given grid, or a full plug-and-play
// application spec (config.AppSpec).
type AppDim struct {
	// Preset selects a built-in benchmark: "lu", "sweep3d" or "chimaera".
	Preset string `json:"preset,omitempty"`
	// Grid is the problem size for a preset.
	Grid *config.GridSpec `json:"grid,omitempty"`
	// Htile overrides the preset's tile height (default: lu 1, sweep3d 2,
	// chimaera 1).
	Htile int `json:"htile,omitempty"`
	// Spec is a full custom application instead of a preset.
	Spec *config.AppSpec `json:"spec,omitempty"`
	// Convergence adds a per-iteration convergence all-reduce executed by a
	// simulated collective algorithm (internal/coll). Sweeping the same
	// preset with different algorithms is a legitimate app dimension: the
	// algorithm is part of the run's identity.
	Convergence *config.ConvergenceSpec `json:"convergence,omitempty"`
	// Workload attaches a seeded per-tile compute workload
	// (internal/workload) to the app: a load-imbalance distribution,
	// OS-noise injection and/or multi-block regions. Sweeping the same
	// preset under different workloads is a legitimate app dimension —
	// the workload perturbs the simulator while the analytic model keeps
	// its uniform-compute assumption, so the model-vs-simulator error
	// under imbalance is the measured quantity.
	Workload *config.WorkloadSpec `json:"workload,omitempty"`
}

// MachineDim is one value of the machine dimension; it is a
// config.MachineSpec plus an optional display label for summaries and
// filters.
type MachineDim struct {
	config.MachineSpec
	Label string `json:"label,omitempty"`
}

// ParamOverride is one value of the LogGP dimension: a named perturbation
// of the machine's communication parameters, applied as multiplicative
// scales and/or absolute overrides. Keys follow the paper's Table 2 names:
// G, L, o, oh, Gcopy, Gdma, ochip, ocopy (case-insensitive).
type ParamOverride struct {
	Name  string             `json:"name"`
	Scale map[string]float64 `json:"scale,omitempty"`
	Set   map[string]float64 `json:"set,omitempty"`
}

// paramField maps a Table 2 parameter name to its field.
func paramField(p *logp.Params, key string) (*float64, bool) {
	switch strings.ToLower(key) {
	case "g":
		return &p.G, true
	case "l":
		return &p.L, true
	case "o":
		return &p.O, true
	case "oh":
		// No "h" alias: two keys resolving to one field would make the
		// winner depend on map iteration order, breaking determinism.
		return &p.H, true
	case "gcopy":
		return &p.Gcopy, true
	case "gdma":
		return &p.Gdma, true
	case "ochip":
		return &p.Ochip, true
	case "ocopy":
		return &p.Ocopy, true
	}
	return nil, false
}

// paramKeys returns the Table 2 key set for error messages, in a fixed
// order.
func paramKeys() string { return "G, L, o, oh, Gcopy, Gdma, ochip, ocopy" }

// Apply perturbs prm, scales first, then absolute sets. Map iteration order
// does not matter: each key touches a distinct field exactly once.
func (o ParamOverride) Apply(prm logp.Params) (logp.Params, error) {
	for key, factor := range o.Scale {
		f, ok := paramField(&prm, key)
		if !ok {
			return prm, fmt.Errorf("campaign: override %q scales unknown parameter %q (want one of %s)",
				o.Name, key, paramKeys())
		}
		*f *= factor
	}
	for key, val := range o.Set {
		f, ok := paramField(&prm, key)
		if !ok {
			return prm, fmt.Errorf("campaign: override %q sets unknown parameter %q (want one of %s)",
				o.Name, key, paramKeys())
		}
		*f = val
	}
	if len(o.Scale) > 0 || len(o.Set) > 0 {
		prm.Name = prm.Name + "+" + o.Name
	}
	if err := prm.Validate(); err != nil {
		return prm, fmt.Errorf("campaign: override %q produces invalid parameters: %w", o.Name, err)
	}
	return prm, nil
}

// ParseSpec decodes and validates a campaign spec from JSON bytes. Unknown
// fields are rejected.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := config.DecodeStrict(data, &s); err != nil {
		return Spec{}, fmt.Errorf("campaign: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads and decodes a campaign spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: %w", err)
	}
	return ParseSpec(data)
}

// resolveApp materialises one application dimension value.
func (d AppDim) resolve() (apps.Benchmark, error) {
	var zero apps.Benchmark
	bm, err := d.resolveBase()
	if err != nil {
		return zero, err
	}
	if d.Convergence != nil {
		if d.Spec != nil && d.Spec.Convergence != nil {
			return zero, fmt.Errorf("campaign: custom app %q carries its own convergence spec — drop the outer one", d.Spec.Name)
		}
		bm, err = d.Convergence.Apply(bm)
		if err != nil {
			return zero, fmt.Errorf("campaign: %w", err)
		}
	}
	if d.Workload != nil {
		if d.Spec != nil && d.Spec.Workload != nil {
			return zero, fmt.Errorf("campaign: custom app %q carries its own workload spec — drop the outer one", d.Spec.Name)
		}
		if err := d.Workload.Validate(); err != nil {
			return zero, fmt.Errorf("campaign: %w", err)
		}
		bm = bm.WithWorkload(*d.Workload)
	}
	return bm, nil
}

// resolveBase materialises the preset or custom spec of an app dimension.
func (d AppDim) resolveBase() (apps.Benchmark, error) {
	var zero apps.Benchmark
	switch {
	case d.Preset != "" && d.Spec != nil:
		return zero, fmt.Errorf("campaign: app sets both preset %q and a custom spec — use one", d.Preset)
	case d.Preset != "":
		if d.Grid == nil {
			return zero, fmt.Errorf("campaign: app preset %q needs a grid", d.Preset)
		}
		if d.Grid.Nx <= 0 || d.Grid.Ny <= 0 || d.Grid.Nz <= 0 {
			return zero, fmt.Errorf("campaign: app preset %q has invalid grid %dx%dx%d",
				d.Preset, d.Grid.Nx, d.Grid.Ny, d.Grid.Nz)
		}
		g := grid.NewGrid(d.Grid.Nx, d.Grid.Ny, d.Grid.Nz)
		bm, err := apps.Preset(d.Preset, g, d.Htile)
		if err != nil {
			return zero, fmt.Errorf("campaign: %w", err)
		}
		return bm, nil
	case d.Spec != nil:
		if d.Grid != nil || d.Htile != 0 {
			return zero, fmt.Errorf("campaign: custom app %q carries its own grid and htile — drop the outer ones", d.Spec.Name)
		}
		bm, err := d.Spec.Benchmark()
		if err != nil {
			return zero, fmt.Errorf("campaign: %w", err)
		}
		return bm, nil
	default:
		return zero, fmt.Errorf("campaign: app needs a preset or a custom spec")
	}
}

// sourceKey renders the app dimension's provenance for content addressing:
// the preset name for built-in benchmarks, or the canonical JSON encoding
// of a custom spec (deterministic — struct fields in declaration order,
// map keys sorted). Two textually different specs that happen to describe
// the same physics hash apart, which costs a cache miss but never risks a
// wrong hit.
func (d AppDim) sourceKey() string {
	if d.Spec != nil {
		b, err := json.Marshal(d.Spec)
		if err != nil {
			// AppSpec round-trips through DecodeStrict before reaching
			// here, so a marshal failure is unreachable; fail closed with
			// an unshareable key rather than panic.
			return "custom:unencodable:" + d.Spec.Name
		}
		return "custom:" + string(b)
	}
	return "preset:" + strings.ToLower(d.Preset)
}

// collectiveLabel renders a benchmark's convergence collective for run
// identity keys and JSONL rows; empty when none is configured.
func collectiveLabel(bm apps.Benchmark) string {
	if bm.ConvBytes <= 0 {
		return ""
	}
	return coll.Collective{Kind: coll.Allreduce, Alg: bm.ConvAlg, Bytes: bm.ConvBytes}.String()
}

// workloadLabel renders a benchmark's per-tile workload spec for run
// identity keys and JSONL rows; empty for the implicit uniform workload.
func workloadLabel(bm apps.Benchmark) string {
	if bm.Workload == nil {
		return ""
	}
	return bm.Workload.String()
}

// resolveMachine materialises one machine dimension value and its label.
func (d MachineDim) resolve() (machine.Machine, string, error) {
	m, err := d.MachineSpec.Machine()
	if err != nil {
		return machine.Machine{}, "", fmt.Errorf("campaign: %w", err)
	}
	label := d.Label
	if label == "" {
		label = m.Name
		if m.BusGroups > 1 {
			label = fmt.Sprintf("%s, %d buses", label, m.BusGroups)
		}
		if m.Interconnect.Kind != topo.Bus {
			label = fmt.Sprintf("%s, %s", label, m.Interconnect)
		}
	}
	return m, label, nil
}

// Validate checks the spec's shape: every dimension non-empty and every
// value well-formed. Cross-dimension constraints (a rank count that does
// not decompose over an app's grid) surface in Expand with per-run context.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("campaign: spec needs a name")
	}
	if s.Iterations < 0 {
		return fmt.Errorf("campaign: spec %q has negative iterations %d", s.Name, s.Iterations)
	}
	if s.Shards < 0 {
		return fmt.Errorf("campaign: spec %q has negative shards %d", s.Name, s.Shards)
	}
	if len(s.Apps) == 0 {
		return fmt.Errorf("campaign: spec %q has no apps — add at least one entry to \"apps\"", s.Name)
	}
	if len(s.Machines) == 0 {
		return fmt.Errorf("campaign: spec %q has no machines — add at least one entry to \"machines\"", s.Name)
	}
	if len(s.Ranks) == 0 {
		return fmt.Errorf("campaign: spec %q has no rank counts — add at least one entry to \"ranks\"", s.Name)
	}
	for i, p := range s.Ranks {
		if p <= 0 {
			return fmt.Errorf("campaign: spec %q rank count #%d is %d — rank counts must be positive", s.Name, i, p)
		}
	}
	seenApp := map[string]bool{}
	for i, a := range s.Apps {
		bm, err := a.resolve()
		if err != nil {
			return fmt.Errorf("%w (apps[%d])", err, i)
		}
		// Htile, the convergence collective and the workload are part of
		// the identity: sweeping tile heights (paper Figure 5), collective
		// algorithms or workload perturbations of one benchmark are
		// legitimate app dimensions.
		key := fmt.Sprintf("%s/%s/h%d/%s/%s", bm.App.Name, bm.App.Grid, bm.App.Htile,
			collectiveLabel(bm), workloadLabel(bm))
		if seenApp[key] {
			return fmt.Errorf("campaign: spec %q lists app %s twice", s.Name, key)
		}
		seenApp[key] = true
	}
	seenMach := map[string]bool{}
	for i, m := range s.Machines {
		_, label, err := m.resolve()
		if err != nil {
			return fmt.Errorf("%w (machines[%d])", err, i)
		}
		if seenMach[label] {
			return fmt.Errorf("campaign: spec %q lists machine %q twice — give one a distinct label", s.Name, label)
		}
		seenMach[label] = true
	}
	seenOv := map[string]bool{}
	for i, o := range s.overrides() {
		if o.Name == "" {
			return fmt.Errorf("campaign: spec %q loggp override #%d needs a name", s.Name, i)
		}
		if seenOv[o.Name] {
			return fmt.Errorf("campaign: spec %q lists loggp override %q twice", s.Name, o.Name)
		}
		seenOv[o.Name] = true
		if _, err := o.Apply(logp.XT4()); err != nil {
			return err
		}
	}
	return nil
}

// overrides returns the LogGP dimension, defaulting to a single identity
// override named "baseline".
func (s Spec) overrides() []ParamOverride {
	if len(s.LogGP) == 0 {
		return []ParamOverride{{Name: "baseline"}}
	}
	return s.LogGP
}

// Run is one fully materialised simulation+model evaluation of a campaign.
type Run struct {
	Index      int
	Campaign   string
	App        string
	Grid       string
	Htile      int
	Machine    string
	Override   string
	P          int
	Iterations int
	// Collective names the per-iteration convergence collective, e.g.
	// "allreduce/ring/8B"; empty when the run has none.
	Collective string
	// Workload names the app's per-tile workload spec, e.g.
	// "lognormal(σ=0.4,seed=7)"; empty for the implicit uniform workload.
	Workload string

	bm   apps.Benchmark
	mach machine.Machine
	dec  grid.Decomposition
	// appSrc is the app's provenance for content addressing (runkey.go):
	// the preset name, or the canonical JSON of a custom spec — the part
	// of the app's behavior a hash of numeric fields cannot see.
	appSrc string
	// shards is the simulator's conservative-parallel shard count. It is
	// a throughput knob, not part of the run's identity — every sharded
	// count produces bit-identical results — so it never appears in keys
	// or JSONL rows.
	shards int
}

// Key renders the run's coordinates for listings and error messages.
func (r Run) Key() string {
	app := fmt.Sprintf("%s/%s/h%d", r.App, r.Grid, r.Htile)
	if r.Collective != "" {
		app += "+" + r.Collective
	}
	if r.Workload != "" {
		app += "+" + r.Workload
	}
	return fmt.Sprintf("%s × %s × %s × P=%d", app, r.Machine, r.Override, r.P)
}

// Expand validates the spec and produces its deterministic run list in
// app-major, then machine, then override, then rank order. Every
// combination is checked here — an invalid rank/grid pairing fails fast
// with the offending coordinates, before anything executes.
func (s Spec) Expand() ([]Run, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	iters := s.Iterations
	if iters == 0 {
		iters = 1
	}
	var runs []Run
	for _, ad := range s.Apps {
		bm, err := ad.resolve()
		if err != nil {
			return nil, err
		}
		appSrc := ad.sourceKey()
		for _, md := range s.Machines {
			baseMach, label, err := md.resolve()
			if err != nil {
				return nil, err
			}
			for _, ov := range s.overrides() {
				prm, err := ov.Apply(baseMach.Params)
				if err != nil {
					return nil, err
				}
				mach := baseMach
				mach.Params = prm
				for _, p := range s.Ranks {
					run := Run{
						Index:      len(runs),
						Campaign:   s.Name,
						App:        bm.App.Name,
						Grid:       bm.App.Grid.String(),
						Htile:      bm.App.Htile,
						Machine:    label,
						Override:   ov.Name,
						P:          p,
						Iterations: iters,
						Collective: collectiveLabel(bm),
						Workload:   workloadLabel(bm),
						bm:         bm,
						mach:       mach,
						appSrc:     appSrc,
						shards:     s.Shards,
					}
					dec, err := grid.SquareDecomposition(bm.App.Grid, p)
					if err != nil {
						return nil, fmt.Errorf("campaign: run %s: %w", run.Key(), err)
					}
					if dec.N > bm.App.Grid.Nx || dec.M > bm.App.Grid.Ny {
						return nil, fmt.Errorf(
							"campaign: run %s: %dx%d processor array exceeds the %s grid — reduce ranks or enlarge the grid",
							run.Key(), dec.N, dec.M, run.Grid)
					}
					if _, err := bm.WithIterations(iters).Schedule(dec, iters); err != nil {
						return nil, fmt.Errorf("campaign: run %s: %w", run.Key(), err)
					}
					run.dec = dec
					runs = append(runs, run)
				}
			}
		}
	}
	return runs, nil
}

// Filter restricts a run list by dimension values. The zero Filter matches
// everything.
type Filter struct {
	Apps, Machines, Overrides, Grids, Workloads []string
	Ps                                          []int
}

// ParseFilter parses a comma-separated list of key=value constraints, e.g.
// "app=LU|Sweep3D,p=64,override=baseline". Keys: app, machine, grid,
// override, workload, p. Alternatives within a key are separated by "|";
// distinct keys must all match.
func ParseFilter(expr string) (Filter, error) {
	var f Filter
	if strings.TrimSpace(expr) == "" {
		return f, nil
	}
	for _, clause := range strings.Split(expr, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok || val == "" {
			return f, fmt.Errorf("campaign: filter clause %q is not key=value", clause)
		}
		vals := strings.Split(val, "|")
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "app":
			f.Apps = append(f.Apps, vals...)
		case "machine":
			f.Machines = append(f.Machines, vals...)
		case "grid":
			f.Grids = append(f.Grids, vals...)
		case "override":
			f.Overrides = append(f.Overrides, vals...)
		case "workload":
			f.Workloads = append(f.Workloads, vals...)
		case "p", "ranks":
			for _, v := range vals {
				p, err := strconv.Atoi(strings.TrimSpace(v))
				if err != nil {
					return f, fmt.Errorf("campaign: filter rank %q is not a number", v)
				}
				f.Ps = append(f.Ps, p)
			}
		default:
			return f, fmt.Errorf("campaign: unknown filter key %q (want app, machine, grid, override, workload or p)", key)
		}
	}
	return f, nil
}

func matchAny(vals []string, v string) bool {
	if len(vals) == 0 {
		return true
	}
	for _, want := range vals {
		if strings.EqualFold(strings.TrimSpace(want), v) ||
			strings.Contains(strings.ToLower(v), strings.ToLower(strings.TrimSpace(want))) {
			return true
		}
	}
	return false
}

// Match reports whether the run satisfies every filter constraint.
// String constraints match case-insensitively, exact or substring.
func (f Filter) Match(r Run) bool {
	if !matchAny(f.Apps, r.App) || !matchAny(f.Machines, r.Machine) ||
		!matchAny(f.Grids, r.Grid) || !matchAny(f.Overrides, r.Override) ||
		!matchAny(f.Workloads, r.Workload) {
		return false
	}
	if len(f.Ps) > 0 {
		ok := false
		for _, p := range f.Ps {
			if p == r.P {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Apply returns the runs matching the filter, reindexed contiguously so a
// filtered campaign still writes dense, deterministic output.
func (f Filter) Apply(runs []Run) []Run {
	out := make([]Run, 0, len(runs))
	for _, r := range runs {
		if f.Match(r) {
			r.Index = len(out)
			out = append(out, r)
		}
	}
	return out
}
