package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Range is a half-open [Lo, Hi) slice of a campaign's expanded run indices.
// Campaigns shard across processes by range: each worker process executes
// one range and checkpoints into a shared directory, and MergeCheckpoints
// reassembles the full JSONL. Because rows are checkpointed verbatim and
// merged in global index order, the merged file is byte-identical no matter
// how the index space was partitioned.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len is the number of runs in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Ranges partitions [0, n) into k contiguous ranges whose sizes differ by
// at most one (the first n%k ranges get the extra run). k is clamped to
// [1, n] for n > 0; Ranges(0, k) is empty.
func Ranges(n, k int) []Range {
	if n <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([]Range, 0, k)
	base, extra := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, Range{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// checkpointRecord is one line of a per-range checkpoint file: the run's
// global index, its content key (so resume can detect a spec edit under a
// stale checkpoint directory), and the finished row exactly as it would be
// written to the campaign JSONL.
type checkpointRecord struct {
	Schema int             `json:"schema_version"`
	Index  int             `json:"index"`
	Key    string          `json:"key"`
	Row    json.RawMessage `json:"row"`
}

// CheckpointPath names the checkpoint file for a range inside dir. The
// range is part of the name so differently-partitioned reruns never clobber
// each other's files.
func CheckpointPath(dir string, r Range) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%d-%d.jsonl", r.Lo, r.Hi))
}

// checkpointWriter appends finished rows to a range's checkpoint file,
// flushing every record so a killed process loses at most the line being
// written.
type checkpointWriter struct {
	mu sync.Mutex
	f  *os.File
}

// newCheckpointWriter opens (creating parents as needed) the checkpoint
// file for r in append mode, so resuming extends the earlier attempt's
// records rather than discarding them.
func newCheckpointWriter(dir string, r Range) (*checkpointWriter, error) {
	path := CheckpointPath(dir, r)
	if err := obs.EnsureParent(path); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	return &checkpointWriter{f: f}, nil
}

// append records one finished run. row must be the exact JSONL row bytes
// (no trailing newline).
func (w *checkpointWriter) append(index int, key RunKey, row []byte) error {
	rec, err := json.Marshal(checkpointRecord{
		Schema: SchemaVersion, Index: index, Key: key.String(), Row: row,
	})
	if err != nil {
		return err
	}
	rec = append(rec, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	return nil
}

func (w *checkpointWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// CheckpointEntry is one recovered run: its content key and verbatim row.
type CheckpointEntry struct {
	Key RunKey
	Row json.RawMessage
}

// LoadCheckpoints reads every ckpt-*.jsonl file in dir and returns the
// recovered rows by global run index. Later records win for a duplicated
// index (a run completed twice across attempts produces identical bytes
// anyway). A truncated final line — the SIGKILL case — is skipped, as are
// records from other schema versions. A missing directory is an empty
// recovery, not an error, so cold starts and resumes share one code path.
func LoadCheckpoints(dir string) (map[int]CheckpointEntry, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	sort.Strings(matches)
	out := make(map[int]CheckpointEntry)
	for _, path := range matches {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("campaign: checkpoint: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec checkpointRecord
			if json.Unmarshal(line, &rec) != nil || rec.Schema != SchemaVersion {
				continue
			}
			key, err := ParseRunKey(rec.Key)
			if err != nil {
				continue
			}
			out[rec.Index] = CheckpointEntry{
				Key: key,
				Row: json.RawMessage(append([]byte(nil), rec.Row...)),
			}
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
		}
	}
	return out, nil
}

// MergeCheckpoints reassembles a complete campaign JSONL from the
// checkpoint files in dir, verifying that every index in [0, total) was
// recovered. Rows are emitted verbatim in global index order, so the output
// is byte-identical to a single-process run of the same spec regardless of
// how ranges and workers were assigned.
func MergeCheckpoints(dir string, total int, w io.Writer) error {
	got, err := LoadCheckpoints(dir)
	if err != nil {
		return err
	}
	var missing []int
	for i := 0; i < total; i++ {
		if _, ok := got[i]; !ok {
			missing = append(missing, i)
			if len(missing) >= 8 {
				break
			}
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("campaign: merge: %d/%d runs checkpointed; first missing indices %v (rerun the incomplete ranges before merging)",
			len(got), total, missing)
	}
	bw := bufio.NewWriter(w)
	for i := 0; i < total; i++ {
		bw.Write(got[i].Row)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
