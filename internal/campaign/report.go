package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// WriteJSONL writes one JSON object per run in index order. The encoding
// contains only deterministic fields, so the bytes are identical for any
// worker count (see the determinism tests).
func WriteJSONL(w io.Writer, results []RunResult) error {
	bw := bufio.NewWriter(w)
	for i := range results {
		b, err := json.Marshal(&results[i])
		if err != nil {
			return fmt.Errorf("campaign: encoding run %d: %w", results[i].Index, err)
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// GroupSummary aggregates the runs sharing one value of one sweep
// dimension: error statistics of the model against the simulator, paper
// accuracy-band counts, and percentiles of the simulated execution time.
type GroupSummary struct {
	Dimension string // "app", "machine", "ranks" or "override"
	Value     string
	Runs      int
	Failed    int

	MeanAbsErr float64
	MaxAbsErr  float64
	Bands      map[string]int

	// Simulated-time percentiles over the group, µs.
	SimP50, SimP90, SimMax float64
}

// Summarize folds results into per-dimension summaries. Groups appear in
// dimension order (app, machine, ranks, override) and, within a dimension,
// in first-appearance order of the run list — deterministic by
// construction.
func Summarize(results []RunResult) []GroupSummary {
	dims := []struct {
		name string
		key  func(r *RunResult) string
	}{
		{"app", func(r *RunResult) string { return r.App }},
		{"machine", func(r *RunResult) string { return r.Machine }},
		{"ranks", func(r *RunResult) string { return fmt.Sprintf("P=%d", r.P) }},
		{"override", func(r *RunResult) string { return r.Override }},
	}
	var out []GroupSummary
	for _, dim := range dims {
		var order []string
		groups := map[string]*groupAcc{}
		for i := range results {
			v := dim.key(&results[i])
			acc, ok := groups[v]
			if !ok {
				acc = &groupAcc{}
				groups[v] = acc
				order = append(order, v)
			}
			acc.add(&results[i])
		}
		for _, v := range order {
			out = append(out, groups[v].summary(dim.name, v))
		}
	}
	return out
}

// groupAcc is the streaming accumulator behind one GroupSummary.
type groupAcc struct {
	errs   stats.Stream
	sims   []float64
	bands  map[string]int
	failed int
}

func (g *groupAcc) add(r *RunResult) {
	if g.bands == nil {
		g.bands = map[string]int{}
	}
	if r.Error != "" {
		g.failed++
		return
	}
	g.errs.Add(r.AbsErr)
	g.sims = append(g.sims, r.SimMicros)
	g.bands[r.Band]++
}

func (g *groupAcc) summary(dim, value string) GroupSummary {
	s := GroupSummary{
		Dimension:  dim,
		Value:      value,
		Runs:       g.errs.N() + g.failed,
		Failed:     g.failed,
		MeanAbsErr: g.errs.Mean(),
		MaxAbsErr:  g.errs.Max(),
		Bands:      g.bands,
	}
	if len(g.sims) > 0 {
		ps := stats.Percentiles(g.sims, 0.5, 0.9, 1)
		s.SimP50, s.SimP90, s.SimMax = ps[0], ps[1], ps[2]
	}
	return s
}

// RenderSummary writes the per-dimension summary tables plus a campaign
// footer (wall time, throughput) in aligned plain text.
func RenderSummary(w io.Writer, name string, results []RunResult, summaries []GroupSummary) {
	fmt.Fprintf(w, "== campaign %s: %d runs ==\n", name, len(results))
	cols := []string{"dimension", "value", "runs", "mean|err|", "max|err|", "bands " + strings.Join(metrics.ErrorBandNames(), "/"), "sim p50(µs)", "sim p90(µs)", "sim max(µs)"}
	rows := make([][]string, 0, len(summaries))
	for _, s := range summaries {
		bands := make([]string, 0, 4)
		for _, b := range metrics.ErrorBandNames() {
			bands = append(bands, fmt.Sprintf("%d", s.Bands[b]))
		}
		runs := fmt.Sprintf("%d", s.Runs)
		if s.Failed > 0 {
			runs = fmt.Sprintf("%d (%d failed)", s.Runs, s.Failed)
		}
		rows = append(rows, []string{
			s.Dimension, s.Value, runs,
			fmt.Sprintf("%.2f%%", s.MeanAbsErr*100),
			fmt.Sprintf("%.2f%%", s.MaxAbsErr*100),
			strings.Join(bands, "/"),
			fmt.Sprintf("%.4g", s.SimP50),
			fmt.Sprintf("%.4g", s.SimP90),
			fmt.Sprintf("%.4g", s.SimMax),
		})
	}
	renderTable(w, cols, rows)

	var wall, events float64
	for i := range results {
		wall += results[i].WallSeconds
		events += float64(results[i].Events)
	}
	fmt.Fprintf(w, "  total simulated work: %.3g events, %.2f cpu-seconds (%.0f runs/cpu-sec, %.3gM events/s)\n",
		events, wall, float64(len(results))/nonZero(wall), events/nonZero(wall)/1e6)
}

func nonZero(x float64) float64 {
	if x <= 0 {
		return 1e-9
	}
	return x
}

// renderTable writes rows under aligned column headers.
func renderTable(w io.Writer, cols []string, rows [][]string) {
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(cols)
	for _, row := range rows {
		line(row)
	}
}
