package campaign

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func startServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postSpec(t *testing.T, ts *httptest.Server, spec Spec) submitResponse {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

// waitDone polls the status endpoint until the campaign leaves "running".
func waitDone(t *testing.T, ts *httptest.Server, id string) statusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st statusResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still running after 30s (%d/%d)", id, st.Done, st.Total)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServerServesCampaign drives the full client workflow: submit, poll,
// fetch — and pins that the served JSONL is byte-identical to a direct
// engine run, and that a resubmission is served from the shared cache.
func TestServerServesCampaign(t *testing.T) {
	srv, ts := startServer(t)
	spec := Example()

	sub := postSpec(t, ts, spec)
	if sub.Schema != SchemaVersion || sub.ID == "" || sub.Runs != 24 {
		t.Fatalf("submit response %+v", sub)
	}
	st := waitDone(t, ts, sub.ID)
	if st.State != "done" || st.Done != st.Total || st.Error != "" {
		t.Fatalf("status %+v", st)
	}
	if st.Schema != SchemaVersion || st.Stats.Schema != SchemaVersion {
		t.Errorf("status schema versions %d/%d, want %d", st.Schema, st.Stats.Schema, SchemaVersion)
	}
	if st.Stats.Simulated != st.Total {
		t.Errorf("first submission simulated %d of %d", st.Stats.Simulated, st.Total)
	}

	resp, err := http.Get(ts.URL + sub.ResultsURL)
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	eng := Engine{Workers: 4}
	direct, err := eng.ExecuteSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := marshalRows(t, direct); !bytes.Equal(served, want) {
		t.Error("served JSONL differs from direct engine run")
	}

	// Resubmission: every run comes from the shared cache.
	sub2 := postSpec(t, ts, spec)
	st2 := waitDone(t, ts, sub2.ID)
	if st2.Stats.CacheHits != st2.Total || st2.Stats.Simulated != 0 {
		t.Errorf("resubmission stats %+v, want all cache hits", st2.Stats)
	}
	resp2, err := http.Get(ts.URL + sub2.ResultsURL)
	if err != nil {
		t.Fatal(err)
	}
	served2, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served2, served) {
		t.Error("warm-cache campaign served different bytes")
	}
	if cs := srv.Store().Stats(); cs.Hits < uint64(st2.Total) {
		t.Errorf("cache stats %+v, want ≥ %d hits", cs, st2.Total)
	}
}

func TestServerErrors(t *testing.T) {
	_, ts := startServer(t)

	t.Run("bad spec is 400", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json",
			strings.NewReader(`{"name":"x","unknown_field":1}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatal(err)
		}
		if eb.Schema != SchemaVersion || eb.Error == "" {
			t.Errorf("error body %+v", eb)
		}
	})

	t.Run("unknown id is 404", func(t *testing.T) {
		for _, path := range []string{"/v1/campaigns/c999", "/v1/campaigns/c999/results"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
			}
		}
	})

	t.Run("cache stats and health", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/cache/stats")
		if err != nil {
			t.Fatal(err)
		}
		var cs CacheStats
		err = json.NewDecoder(resp.Body).Decode(&cs)
		resp.Body.Close()
		if err != nil || cs.Schema != SchemaVersion {
			t.Errorf("cache stats decode err=%v schema=%d", err, cs.Schema)
		}
		hresp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		hb, _ := io.ReadAll(hresp.Body)
		hresp.Body.Close()
		if string(hb) != "ok\n" {
			t.Errorf("healthz = %q", hb)
		}
	})
}

// TestServerRejectsPerProcessConfig: the server owns output, hooks and
// checkpointing; a config carrying them is a construction-time error.
func TestServerRejectsPerProcessConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Output: "x.jsonl"},
		{CheckpointDir: "/tmp/x"},
		{Filter: "app=LU"},
		{RangeParts: 2, RangePart: 0},
		{OnResult: func(RunResult) {}},
	} {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("NewServer accepted per-process config %+v", cfg)
		}
	}
}

func TestServerList(t *testing.T) {
	_, ts := startServer(t)
	sub := postSpec(t, ts, Example())
	waitDone(t, ts, sub.ID)

	resp, err := http.Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list listResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Schema != SchemaVersion || len(list.Campaigns) != 1 || list.Campaigns[0].ID != sub.ID {
		t.Errorf("list %+v", list)
	}
}
