package campaign

import (
	"fmt"
	"strconv"
	"strings"
)

// KeyComponent is one labelled dimension of a run's content identity — the
// unit of the hypothesis harness's single-delta check. KeyComponents
// renders the same fields ContentKey hashes, grouped at the granularity an
// experiment delta is declared at: changing a machine's LogGP parameters is
// one delta ("machine"), not eight.
type KeyComponent struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// ComponentNames lists the KeyComponent names in render order. Every run
// produces exactly these components (with "none" placeholders where a
// block is absent), so two runs always diff component-by-component.
func ComponentNames() []string {
	return []string{"app", "collective", "workload", "machine", "node", "interconnect", "placement", "mode"}
}

// KeyComponents renders the run's content identity as labelled components
// covering exactly the fields ContentKey hashes (keycomponents_test.go
// pins the two against each other: every single-field mutation that
// changes the hash changes exactly one component, and vice versa).
//
// Granularity notes:
//   - "machine" is the LogGP parameter set after overrides — an override
//     is a machine perturbation, so it lands here, not in a dimension of
//     its own (override display names are not part of run identity).
//   - "placement" carries the rank count, the decomposition shape and the
//     boundary message sizes evaluated at that decomposition: the byte
//     sizes are app sizing functions, but their values are
//     placement-derived, so a pure rank-count delta stays a single
//     component.
func (r Run) KeyComponents(mode KeyMode) []KeyComponent {
	var b strings.Builder
	f := func(v float64) { b.WriteString(strconv.FormatFloat(v, 'x', -1, 64)); b.WriteByte(' ') }
	i := func(v int) { b.WriteString(strconv.Itoa(v)); b.WriteByte(' ') }
	s := func(v string) { fmt.Fprintf(&b, "%q ", v) }
	field := func(name string) { b.WriteString(name); b.WriteByte('=') }
	component := func(name string) KeyComponent {
		c := KeyComponent{Name: name, Value: strings.TrimSuffix(b.String(), " ")}
		b.Reset()
		return c
	}

	var out []KeyComponent

	// app: everything intrinsic to the application at any placement.
	field("name")
	s(r.bm.App.Name)
	field("src")
	s(r.appSrc)
	field("grid")
	i(r.bm.App.Grid.Nx)
	i(r.bm.App.Grid.Ny)
	i(r.bm.App.Grid.Nz)
	field("htile")
	i(r.bm.App.Htile)
	field("wg_pre")
	f(r.bm.App.WgPre)
	field("wg")
	f(r.bm.App.Wg)
	field("sweeps")
	i(r.bm.App.NSweeps)
	i(r.bm.App.NFull)
	i(r.bm.App.NDiag)
	field("corners")
	for _, c := range r.bm.Corners {
		i(int(c))
	}
	field("iterations")
	i(r.Iterations)
	out = append(out, component("app"))

	// collective: the per-iteration convergence all-reduce.
	if r.bm.ConvBytes > 0 {
		field("bytes")
		i(r.bm.ConvBytes)
		field("alg")
		i(int(r.bm.ConvAlg))
	} else {
		b.WriteString("none")
	}
	out = append(out, component("collective"))

	// workload: every knob of the per-tile compute perturbation.
	if wl := r.bm.Workload; wl != nil {
		field("dist")
		s(wl.Dist)
		field("seed")
		b.WriteString(strconv.FormatUint(wl.Seed, 10))
		b.WriteByte(' ')
		field("sigma")
		f(wl.Sigma)
		field("hot")
		f(wl.HotFrac)
		f(wl.HotMul)
		if n := wl.Noise; n != nil {
			field("noise")
			f(n.Rate)
			f(n.AmpUS)
		}
		field("blocks")
		for _, blk := range wl.Blocks {
			f(blk.X0)
			f(blk.Y0)
			f(blk.X1)
			f(blk.Y1)
			f(blk.Mul)
		}
	} else {
		b.WriteString("none")
	}
	out = append(out, component("workload"))

	// machine: the LogGP parameters after overrides (names excluded, like
	// ContentKey — relabeling a machine is not a physical change).
	p := r.mach.Params
	field("G")
	f(p.G)
	field("L")
	f(p.L)
	field("o")
	f(p.O)
	field("oh")
	f(p.H)
	field("Gcopy")
	f(p.Gcopy)
	field("Gdma")
	f(p.Gdma)
	field("ochip")
	f(p.Ochip)
	field("ocopy")
	f(p.Ocopy)
	out = append(out, component("machine"))

	// node: the on-node organisation.
	field("cores")
	i(r.mach.CoresPerNode)
	field("cx_cy")
	i(r.mach.Cx)
	i(r.mach.Cy)
	field("bus_groups")
	i(r.mach.BusGroups)
	out = append(out, component("node"))

	// interconnect: the inter-node fabric.
	ic := r.mach.Interconnect
	field("kind")
	i(int(ic.Kind))
	field("dims")
	for _, d := range ic.Dims {
		i(d)
	}
	field("leaf_spine")
	i(ic.LeafRadix)
	i(ic.Spine)
	field("linkG")
	f(ic.LinkG)
	field("hopL")
	f(ic.HopL)
	out = append(out, component("interconnect"))

	// placement: rank count, decomposition shape, and the boundary bytes
	// evaluated at this decomposition.
	field("p")
	i(r.P)
	field("dec")
	i(r.dec.N)
	i(r.dec.M)
	field("ew_bytes")
	if r.bm.App.EWBytes != nil {
		i(r.bm.App.EWBytes(r.dec, r.bm.App.Htile))
	} else {
		i(-1)
	}
	field("ns_bytes")
	if r.bm.App.NSBytes != nil {
		i(r.bm.App.NSBytes(r.dec, r.bm.App.Htile))
	} else {
		i(-1)
	}
	out = append(out, component("placement"))

	// mode: the execution-mode bits that change output bytes.
	field("hist")
	if mode.Hist {
		i(1)
	} else {
		i(0)
	}
	field("canon")
	if mode.Canon {
		i(1)
	} else {
		i(0)
	}
	out = append(out, component("mode"))

	return out
}

// DiffKeyComponents returns the names of the components whose values
// differ between two runs' component lists, in render order. It errors if
// the lists do not pair up name-by-name — impossible for lists produced by
// KeyComponents, which always emits every component.
func DiffKeyComponents(a, b []KeyComponent) ([]string, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("campaign: component lists have %d vs %d entries", len(a), len(b))
	}
	var diff []string
	for i := range a {
		if a[i].Name != b[i].Name {
			return nil, fmt.Errorf("campaign: component %d is %q vs %q", i, a[i].Name, b[i].Name)
		}
		if a[i].Value != b[i].Value {
			diff = append(diff, a[i].Name)
		}
	}
	return diff, nil
}
