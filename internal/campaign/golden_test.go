package campaign

import (
	"bytes"
	"os"
	"testing"
)

// TestExampleGoldenJSONL pins the built-in example campaign's JSONL output
// to the bytes produced before the interconnect subsystem landed
// (testdata/example_golden.jsonl, recorded at commit 5099c2d). The example
// sweep is entirely bus-only, so every row must stay byte-identical: the
// interconnect must cost bus-only runs nothing — no timing drift, no new
// JSON fields, no encoding changes.
//
// To bless an intentional output change, regenerate the file with
//
//	go run ./cmd/campaign -builtin example -workers 4 -quiet \
//	    -out internal/campaign/testdata/example_golden.jsonl
//
// and explain the drift in the commit message.
func TestExampleGoldenJSONL(t *testing.T) {
	want, err := os.ReadFile("testdata/example_golden.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Engine{Workers: 4}.ExecuteSpec(Example())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, res); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	if bytes.Equal(got, want) {
		return
	}
	gotRows, wantRows := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := range wantRows {
		if i >= len(gotRows) {
			t.Fatalf("output truncated at row %d of %d", i, len(wantRows))
		}
		if !bytes.Equal(gotRows[i], wantRows[i]) {
			t.Fatalf("row %d drifted from the pre-interconnect golden:\n got: %s\nwant: %s",
				i, gotRows[i], wantRows[i])
		}
	}
	t.Fatalf("output grew from %d to %d rows", len(wantRows), len(gotRows))
}

// TestTopologiesDeterministicAcrossWorkers is the acceptance check of the
// interconnect sweep: byte-identical JSONL for 1 and 8 workers, link
// statistics included.
func TestTopologiesDeterministicAcrossWorkers(t *testing.T) {
	runs, err := Topologies().Expand()
	if err != nil {
		t.Fatal(err)
	}
	encode := func(workers int) []byte {
		res, err := Engine{Workers: workers}.Execute(runs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	if !bytes.Contains(serial, []byte(`"topology":"torus2d"`)) ||
		!bytes.Contains(serial, []byte(`"topology":"fattree"`)) {
		t.Fatal("topologies sweep rows carry no topology field")
	}
	if par := encode(8); !bytes.Equal(serial, par) {
		t.Error("workers=8 produced different JSONL bytes than workers=1")
	}
}
