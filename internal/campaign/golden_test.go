package campaign

import (
	"bytes"
	"encoding/json"
	"maps"
	"os"
	"testing"

	"repro/internal/config"
)

// TestExampleGoldenJSONL pins the built-in example campaign's JSONL output
// to the bytes produced before the interconnect subsystem landed
// (testdata/example_golden.jsonl, recorded at commit 5099c2d). The example
// sweep is entirely bus-only, so every row must stay byte-identical: the
// interconnect must cost bus-only runs nothing — no timing drift, no new
// JSON fields, no encoding changes.
//
// To bless an intentional output change, regenerate the file with
//
//	go run ./cmd/campaign -builtin example -workers 4 -quiet \
//	    -out internal/campaign/testdata/example_golden.jsonl
//
// and explain the drift in the commit message.
func TestExampleGoldenJSONL(t *testing.T) {
	want, err := os.ReadFile("testdata/example_golden.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Engine{Workers: 4}.ExecuteSpec(Example())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, res); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	if bytes.Equal(got, want) {
		return
	}
	gotRows, wantRows := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := range wantRows {
		if i >= len(gotRows) {
			t.Fatalf("output truncated at row %d of %d", i, len(wantRows))
		}
		if !bytes.Equal(gotRows[i], wantRows[i]) {
			t.Fatalf("row %d drifted from the pre-interconnect golden:\n got: %s\nwant: %s",
				i, gotRows[i], wantRows[i])
		}
	}
	t.Fatalf("output grew from %d to %d rows", len(wantRows), len(gotRows))
}

// TestTopologiesDeterministicAcrossWorkers is the acceptance check of the
// interconnect sweep: byte-identical JSONL for 1 and 8 workers, link
// statistics included.
func TestTopologiesDeterministicAcrossWorkers(t *testing.T) {
	runs, err := Topologies().Expand()
	if err != nil {
		t.Fatal(err)
	}
	encode := func(workers int) []byte {
		res, err := Engine{Workers: workers}.Execute(runs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	if !bytes.Contains(serial, []byte(`"topology":"torus2d"`)) ||
		!bytes.Contains(serial, []byte(`"topology":"fattree"`)) {
		t.Fatal("topologies sweep rows carry no topology field")
	}
	if par := encode(8); !bytes.Equal(serial, par) {
		t.Error("workers=8 produced different JSONL bytes than workers=1")
	}
}

// TestCollectivesDeterministicAcrossWorkers is the acceptance check of the
// collective sweep: the "collectives" builtin — every simulated algorithm
// over bus-only, torus and fat-tree machines — must emit byte-identical
// JSONL for 1 and 8 workers, which also exercises collective expansion on
// Reset-reused simulators across all rank counts.
func TestCollectivesDeterministicAcrossWorkers(t *testing.T) {
	runs, err := Collectives().Expand()
	if err != nil {
		t.Fatal(err)
	}
	encode := func(workers int) []byte {
		res, err := Engine{Workers: workers}.Execute(runs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	for _, want := range []string{
		`"collective":"allreduce/auto/8B"`,
		`"collective":"allreduce/ring/8B"`,
		`"collective":"allreduce/recdouble/8B"`,
		`"collective":"allreduce/ring/65536B"`,
		`"collective":"allreduce/recdouble/65536B"`,
	} {
		if !bytes.Contains(serial, []byte(want)) {
			t.Fatalf("collectives sweep rows missing %s", want)
		}
	}
	if par := encode(8); !bytes.Equal(serial, par) {
		t.Error("workers=8 produced different JSONL bytes than workers=1")
	}
}

// TestNoCollectiveRowsUnchanged is the omitempty regression check: a run
// without a convergence collective must encode to exactly the same bytes as
// before the collective fields existed. It diffs the same run's row with
// and without the collective enabled: the enabled row must add only the
// "collective" key, the disabled row none at all — so bus-only/no-
// collective campaigns (the example golden) stay byte-identical.
func TestNoCollectiveRowsUnchanged(t *testing.T) {
	g := config.GridSpec{Nx: 24, Ny: 24, Nz: 24}
	spec := func(conv *config.ConvergenceSpec) Spec {
		return Spec{
			Name:     "omitempty",
			Apps:     []AppDim{{Preset: "lu", Grid: &g, Convergence: conv}},
			Machines: []MachineDim{{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 2}}},
			Ranks:    []int{16},
		}
	}
	encode := func(s Spec) []byte {
		res, err := Engine{Workers: 1}.ExecuteSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	pre := encode(spec(nil))
	if bytes.Contains(pre, []byte(`"collective"`)) {
		t.Fatalf("no-collective row leaks a collective field:\n%s", pre)
	}
	post := encode(spec(&config.ConvergenceSpec{Bytes: 8, Alg: "ring"}))
	if !bytes.Contains(post, []byte(`"collective":"allreduce/ring/8B"`)) {
		t.Fatalf("collective row missing its field:\n%s", post)
	}
	// Key inventory must differ by exactly {"collective"}: new fields must
	// never creep into rows that do not use them.
	preKeys, postKeys := jsonKeys(t, pre), jsonKeys(t, post)
	delete(postKeys, "collective")
	if !maps.Equal(preKeys, postKeys) {
		t.Errorf("row key sets diverged beyond the collective field:\n pre: %v\npost: %v", preKeys, postKeys)
	}
}

// jsonKeys returns the key set of a single JSONL row.
func jsonKeys(t *testing.T, row []byte) map[string]bool {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(row), &m); err != nil {
		t.Fatalf("bad JSONL row: %v", err)
	}
	keys := map[string]bool{}
	for k := range m {
		keys[k] = true
	}
	return keys
}
