package campaign

import (
	"repro/internal/config"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Example returns a small built-in campaign (24 runs, a couple of seconds)
// that demonstrates every dimension: two paper benchmarks, single- and
// dual-core XT4 nodes, three rank counts and a degraded-network LogGP
// override. `cmd/campaign -builtin example` runs it; CI uses it as the
// smoke sweep.
func Example() Spec {
	g := config.GridSpec{Nx: 24, Ny: 24, Nz: 24}
	return Spec{
		Name:       "example",
		Iterations: 1,
		Apps: []AppDim{
			{Preset: "sweep3d", Grid: &g},
			{Preset: "lu", Grid: &g},
		},
		Machines: []MachineDim{
			{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 1}},
			{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 2}},
		},
		Ranks: []int{4, 16, 36},
		LogGP: []ParamOverride{
			{Name: "baseline"},
			{Name: "slow-net", Scale: map[string]float64{"L": 4, "G": 2}},
		},
	}
}

// Flagship returns the full design-space sweep: the three paper benchmarks
// on a 48³ grid across four node designs (1–8 cores per shared bus) plus
// torus- and fat-tree-connected dual-core nodes, five rank counts and four
// network perturbations — 360 runs asking at once the kinds of questions
// Sections 5.1–5.5 ask one figure at a time.
func Flagship() Spec {
	g := config.GridSpec{Nx: 48, Ny: 48, Nz: 48}
	return Spec{
		Name:       "flagship",
		Iterations: 1,
		Apps: []AppDim{
			{Preset: "lu", Grid: &g},
			{Preset: "sweep3d", Grid: &g},
			{Preset: "chimaera", Grid: &g},
		},
		Machines: []MachineDim{
			{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 1}},
			{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 2}},
			{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 4}},
			{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 8}},
			{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 2,
				Interconnect: &topo.Spec{Kind: topo.Torus2D}}},
			{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 2,
				Interconnect: &topo.Spec{Kind: topo.FatTree}}},
		},
		Ranks: []int{16, 36, 64, 144, 256},
		LogGP: []ParamOverride{
			{Name: "baseline"},
			{Name: "slow-net", Scale: map[string]float64{"L": 4, "G": 2}},
			{Name: "fast-net", Scale: map[string]float64{"L": 0.5, "G": 0.5}},
			{Name: "half-overhead", Scale: map[string]float64{"o": 0.5, "ocopy": 0.5}},
		},
	}
}

// Topologies returns the interconnect comparison sweep: the flat-wire
// (bus-only) network of the paper against a 2D torus and a two-level
// fat-tree, over two paper benchmarks and three rank counts. It asks the
// Table 6 abstraction-error question for richer networks: how far does the
// uncontended LogGP model drift from a simulator that routes every off-node
// DMA over contended links?
func Topologies() Spec {
	g := config.GridSpec{Nx: 32, Ny: 32, Nz: 32}
	dual := func(ic *topo.Spec, label string) MachineDim {
		return MachineDim{
			MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 2, Interconnect: ic},
			Label:       label,
		}
	}
	return Spec{
		Name:       "topologies",
		Iterations: 1,
		Apps: []AppDim{
			{Preset: "sweep3d", Grid: &g},
			{Preset: "lu", Grid: &g},
		},
		Machines: []MachineDim{
			dual(nil, "xt4 dual, bus-only"),
			dual(&topo.Spec{Kind: topo.Torus2D}, "xt4 dual, torus2d"),
			dual(&topo.Spec{Kind: topo.Torus3D}, "xt4 dual, torus3d"),
			dual(&topo.Spec{Kind: topo.FatTree}, "xt4 dual, fattree"),
		},
		Ranks: []int{16, 64, 256},
	}
}

// Collectives returns the collective-algorithm sweep: the per-iteration
// convergence all-reduce that LU-style codes end every iteration with,
// executed by each algorithm — the closed-form exchange of paper equation
// (9) ("auto"), the simulated ring, and simulated recursive doubling —
// across bus-only, torus- and fat-tree-connected dual-core machines and
// three rank counts. The same sweep at two payload sizes shows where the
// ring's smaller chunks start paying for their extra rounds.
func Collectives() Spec {
	g := config.GridSpec{Nx: 24, Ny: 24, Nz: 24}
	conv := func(alg string, bytes int) *config.ConvergenceSpec {
		return &config.ConvergenceSpec{Bytes: bytes, Alg: alg}
	}
	dual := func(ic *topo.Spec, label string) MachineDim {
		return MachineDim{
			MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 2, Interconnect: ic},
			Label:       label,
		}
	}
	return Spec{
		Name:       "collectives",
		Iterations: 2,
		Apps: []AppDim{
			{Preset: "lu", Grid: &g, Convergence: conv("auto", 8)},
			{Preset: "lu", Grid: &g, Convergence: conv("ring", 8)},
			{Preset: "lu", Grid: &g, Convergence: conv("recdouble", 8)},
			{Preset: "sweep3d", Grid: &g, Convergence: conv("ring", 65536)},
			{Preset: "sweep3d", Grid: &g, Convergence: conv("recdouble", 65536)},
		},
		Machines: []MachineDim{
			dual(nil, "xt4 dual, bus-only"),
			dual(&topo.Spec{Kind: topo.Torus2D}, "xt4 dual, torus2d"),
			dual(&topo.Spec{Kind: topo.FatTree}, "xt4 dual, fattree"),
		},
		Ranks: []int{16, 36, 64},
	}
}

// Workloads returns the load-imbalance sweep: two paper benchmarks under
// fifteen per-tile workload variants — the implicit uniform baseline,
// bounded-uniform, normal and lognormal imbalance at several spreads and
// seeds, persistent hotspot ranks, OS-noise injection, and multi-block
// regions — across single- and dual-core XT4 nodes, three rank counts and
// three network perturbations (540 runs). Every variant is a distinct app
// dimension value with its own RunKey; the analytic model keeps the
// paper's uniform-compute assumption throughout, so the sweep maps where
// (and how fast) the model's accuracy decays as the uniformity assumption
// is violated.
func Workloads() Spec {
	g := config.GridSpec{Nx: 24, Ny: 24, Nz: 24}
	wl := func(s workload.Spec) *config.WorkloadSpec { return &s }
	variants := []*config.WorkloadSpec{
		nil, // uniform-compute baseline: bit-identical to the pre-workload runs
		wl(workload.Spec{Dist: workload.DistUniform, Sigma: 0.2, Seed: 1}),
		wl(workload.Spec{Dist: workload.DistNormal, Sigma: 0.1, Seed: 1}),
		wl(workload.Spec{Dist: workload.DistNormal, Sigma: 0.3, Seed: 1}),
		wl(workload.Spec{Dist: workload.DistNormal, Sigma: 0.3, Seed: 2}),
		wl(workload.Spec{Dist: workload.DistLognormal, Sigma: 0.3, Seed: 1}),
		wl(workload.Spec{Dist: workload.DistLognormal, Sigma: 0.6, Seed: 1}),
		wl(workload.Spec{Dist: workload.DistLognormal, Sigma: 0.6, Seed: 2}),
		wl(workload.Spec{Dist: workload.DistHotspot, HotFrac: 0.1, HotMul: 4, Seed: 1}),
		wl(workload.Spec{Dist: workload.DistHotspot, HotFrac: 0.25, HotMul: 2, Seed: 1}),
		wl(workload.Spec{Dist: workload.DistHotspot, HotFrac: 0.1, HotMul: 3, Seed: 2,
			Noise: &workload.NoiseSpec{Rate: 0.25, AmpUS: 50}}),
		wl(workload.Spec{Dist: workload.DistUniform,
			Noise: &workload.NoiseSpec{Rate: 1, AmpUS: 10}}),
		wl(workload.Spec{Dist: workload.DistLognormal, Sigma: 0.4, Seed: 7,
			Noise: &workload.NoiseSpec{Rate: 0.5, AmpUS: 25}}),
		wl(workload.Spec{Dist: workload.DistUniform,
			Blocks: []workload.Block{{X0: 0, Y0: 0, X1: 0.5, Y1: 0.5, Mul: 2}}}),
		wl(workload.Spec{Dist: workload.DistLognormal, Sigma: 0.3, Seed: 3,
			Blocks: []workload.Block{{X0: 0.5, Y0: 0.5, X1: 1, Y1: 1, Mul: 0.5}}}),
	}
	var dims []AppDim
	for _, preset := range []string{"sweep3d", "lu"} {
		for _, w := range variants {
			dims = append(dims, AppDim{Preset: preset, Grid: &g, Workload: w})
		}
	}
	return Spec{
		Name:       "workloads",
		Iterations: 1,
		Apps:       dims,
		Machines: []MachineDim{
			{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 1}},
			{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 2}},
		},
		Ranks: []int{4, 16, 36},
		LogGP: []ParamOverride{
			{Name: "baseline"},
			{Name: "slow-net", Scale: map[string]float64{"L": 4, "G": 2}},
			{Name: "fast-net", Scale: map[string]float64{"L": 0.5, "G": 0.5}},
		},
	}
}

// Builtin resolves a built-in spec by name; ok is false for unknown names.
func Builtin(name string) (Spec, bool) {
	switch name {
	case "example":
		return Example(), true
	case "flagship":
		return Flagship(), true
	case "topologies":
		return Topologies(), true
	case "collectives":
		return Collectives(), true
	case "workloads":
		return Workloads(), true
	}
	return Spec{}, false
}

// BuiltinNames lists the built-in campaign names.
func BuiltinNames() []string {
	return []string{"example", "flagship", "topologies", "collectives", "workloads"}
}
