package replay

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// record runs a small Sweep3D with a lognormal+noise workload under an
// Ops recorder and returns the stamped header, the recorder, and the
// result.
func record(t *testing.T, shards int) (Header, *obs.Recorder, simmpi.Result) {
	t.Helper()
	mspec := config.MachineSpec{Preset: "xt4", CoresPerNode: 2}
	mach, err := mspec.Machine()
	if err != nil {
		t.Fatalf("Machine: %v", err)
	}
	g := grid.Cube(16)
	dec := grid.MustDecompose(g, 4, 2)
	wl := workload.Spec{Dist: workload.DistLognormal, Sigma: 0.4, Seed: 7,
		Noise: &workload.NoiseSpec{Rate: 0.5, AmpUS: 25}}
	bm := apps.Sweep3D(g, 2).WithWorkload(wl)
	sched, err := bm.Schedule(dec, 2)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	topo, err := simnet.NewMachineTopology(mach, dec)
	if err != nil {
		t.Fatalf("NewMachineTopology: %v", err)
	}
	rec := &obs.Recorder{Ops: true}
	sim, err := simmpi.NewWithOptions(topo, simmpi.Options{Shards: shards, Obs: rec})
	if err != nil {
		t.Fatalf("NewWithOptions: %v", err)
	}
	for r, prog := range sched.Programs() {
		sim.SetProgram(r, prog)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	hdr := Header{
		App:      bm.App.Name,
		Workload: wl.String(),
		Machine:  mspec,
		Grid:     config.GridSpec{Nx: g.Nx, Ny: g.Ny, Nz: g.Nz},
		DecN:     dec.N,
		DecM:     dec.M,
	}.WithResult(res)
	return hdr, rec, res
}

func TestRoundTripBitIdentical(t *testing.T) {
	hdr, rec, _ := record(t, 1)

	var trace bytes.Buffer
	if err := Write(&trace, hdr, rec); err != nil {
		t.Fatalf("Write: %v", err)
	}

	gotHdr, ops, err := Read(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if gotHdr != hdr {
		t.Fatalf("header round-trip changed: %+v != %+v", gotHdr, hdr)
	}

	rec2 := &obs.Recorder{Ops: true}
	res, err := Replay(gotHdr, ops, Options{Rec: rec2})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if diffs := Diff(gotHdr, res); diffs != nil {
		t.Fatalf("replay diverged:\n%s", strings.Join(diffs, "\n"))
	}

	var trace2 bytes.Buffer
	if err := Write(&trace2, gotHdr.WithResult(res), rec2); err != nil {
		t.Fatalf("re-record Write: %v", err)
	}
	if !bytes.Equal(trace.Bytes(), trace2.Bytes()) {
		t.Fatal("re-recorded trace is not byte-identical to the original")
	}
}

// The recorded op stream must be invariant to the recording run's shard
// count: ops are per-rank program order, not event order.
func TestRecordingShardInvariant(t *testing.T) {
	hdr1, rec1, _ := record(t, 1)
	hdr4, rec4, _ := record(t, 4)
	var t1, t4 bytes.Buffer
	// Stamp both headers from the serial result so only the op streams
	// are compared; sharded and serial results themselves are compared
	// elsewhere.
	if err := Write(&t1, hdr1, rec1); err != nil {
		t.Fatalf("Write serial: %v", err)
	}
	hdr4.SimUS, hdr4.Events = hdr1.SimUS, hdr1.Events
	hdr4.Messages, hdr4.BytesSent = hdr1.Messages, hdr1.BytesSent
	if err := Write(&t4, hdr4, rec4); err != nil {
		t.Fatalf("Write sharded: %v", err)
	}
	if !bytes.Equal(t1.Bytes(), t4.Bytes()) {
		t.Fatal("op streams differ between shard counts 1 and 4")
	}
}

func TestDiffDetectsTampering(t *testing.T) {
	hdr, rec, _ := record(t, 1)
	var trace bytes.Buffer
	if err := Write(&trace, hdr, rec); err != nil {
		t.Fatalf("Write: %v", err)
	}
	gotHdr, ops, err := Read(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	// Lengthen every compute: a single tampered op deep in the pipeline
	// can hide in slack, but a global slowdown cannot.
	found := false
	for _, stream := range ops {
		for i := range stream {
			if stream[i].Kind == simmpi.OpCompute && stream[i].Dur > 0 {
				stream[i].Dur *= 2
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no compute op to tamper with")
	}
	res, err := Replay(gotHdr, ops, Options{})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if diffs := Diff(gotHdr, res); diffs == nil {
		t.Fatal("Diff missed a tampered trace")
	}
}

func TestReadRejects(t *testing.T) {
	hdr, rec, _ := record(t, 1)
	var trace bytes.Buffer
	if err := Write(&trace, hdr, rec); err != nil {
		t.Fatalf("Write: %v", err)
	}
	lines := strings.SplitAfter(trace.String(), "\n")

	for name, mangle := range map[string]string{
		"empty":          "",
		"wrong version":  strings.Replace(lines[0], `"schema_version":1`, `"schema_version":2`, 1) + strings.Join(lines[1:], ""),
		"wrong kind":     strings.Replace(lines[0], `"kind":"optrace"`, `"kind":"spans"`, 1) + strings.Join(lines[1:], ""),
		"missing rank":   strings.Join(lines[:len(lines)-2], ""),
		"duplicate rank": trace.String() + lines[1],
		"unknown field":  lines[0] + `{"rank":0,"kinds":"","peers":[],"bytes":[],"durs":[],"bogus":1}` + "\n",
		"ragged arrays":  lines[0] + strings.Replace(lines[1], `"peers":[`, `"peers":[99999,`, 1) + strings.Join(lines[2:], ""),
	} {
		if _, _, err := Read(strings.NewReader(mangle)); err == nil {
			t.Errorf("%s: Read accepted a malformed trace", name)
		}
	}
}

func TestCheckOp(t *testing.T) {
	bad := []simmpi.Op{
		{Kind: simmpi.OpCompute, Dur: -1},
		{Kind: simmpi.OpCompute, Dur: math.NaN()},
		{Kind: simmpi.OpCompute, Dur: math.Inf(1)},
		{Kind: simmpi.OpSend, Peer: 8, Bytes: 1},
		{Kind: simmpi.OpSend, Peer: 0, Bytes: -1},
		{Kind: simmpi.OpSend, Peer: 0}, // self-send (rank 0)
		{Kind: simmpi.OpRecv, Peer: -1},
		{Kind: simmpi.OpAllReduce, Peer: 99, Bytes: 8},
		{Kind: simmpi.OpBcast, Peer: 8, Bytes: 8},
		{Kind: simmpi.OpKind(200)},
	}
	for _, op := range bad {
		if err := checkOp(op, 0, 8); err == nil {
			t.Errorf("checkOp(%+v) = nil, want error", op)
		}
	}
	good := []simmpi.Op{
		simmpi.Compute(0),
		simmpi.Send(1, 64),
		simmpi.Recv(7),
		simmpi.AllReduce(8),
		simmpi.AllReduceAlg(64, simmpi.AlgRing),
		simmpi.Bcast(3, 64),
		simmpi.Barrier(),
	}
	for _, op := range good {
		if err := checkOp(op, 0, 8); err != nil {
			t.Errorf("checkOp(%+v) = %v, want nil", op, err)
		}
	}
}
