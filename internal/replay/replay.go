// Package replay implements the versioned op-trace format: a JSONL file
// holding the exact per-rank operation streams a simulation consumed —
// recorded through the obs flight recorder's Ops stream — together with
// the machine and decomposition needed to re-execute them, and the
// original result for a bit-for-bit diff.
//
// The format is line-oriented JSON with a schema_version'd header line
// followed by one record per rank:
//
//	{"schema_version":1,"kind":"optrace","machine":{...},"grid":{...},...}
//	{"rank":0,"kinds":"AAEC...","peers":[...],"bytes":[...],"durs":[...]}
//	{"rank":1,...}
//
// Rank records store the op stream as parallel arrays: kinds is the
// base64 of one byte per op (JSON's []byte encoding), peers/bytes are
// exact integers, and durs round-trips exactly because Go encodes
// float64 with the shortest representation that parses back to the same
// bits. Ops are recorded pre-expansion — a collective appears as its
// single program op, and replay re-derives the point-to-point
// constituents through the same deterministic expansion — so traces
// stay proportional to the program, not to P × collective size.
//
// Replaying a trace on the same code version must reproduce the header
// result exactly; Diff reports any field that does not match bit for
// bit. Re-recording during replay (Options.Rec) therefore yields a
// byte-identical trace file, which is the CI round-trip gate.
package replay

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/config"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/simmpi"
	"repro/internal/simnet"
)

// SchemaVersion is the trace format version. Readers reject any other
// version: a trace records exact durations of a specific schedule
// generation, so silent cross-version reuse would "replay" a different
// computation.
const SchemaVersion = 1

// Kind is the header's format discriminator.
const Kind = "optrace"

// Header is the first line of a trace file: the identity of the
// recorded run (enough to rebuild the topology and re-execute the op
// streams) plus the original result for bit-for-bit diffing.
type Header struct {
	Schema int    `json:"schema_version"`
	Kind   string `json:"kind"`

	// App and Workload are informational labels for humans and tools;
	// replay does not interpret them.
	App      string `json:"app,omitempty"`
	Workload string `json:"workload,omitempty"`

	// Machine, Grid and the decomposition shape rebuild the simulated
	// hardware: ranks = dec_n × dec_m placed by the machine's layout.
	Machine config.MachineSpec `json:"machine"`
	Grid    config.GridSpec    `json:"grid"`
	DecN    int                `json:"dec_n"`
	DecM    int                `json:"dec_m"`

	// Result fields of the recorded run, bit-exact.
	SimUS     float64 `json:"sim_us"`
	Events    uint64  `json:"events"`
	Messages  uint64  `json:"messages"`
	BytesSent uint64  `json:"bytes_sent"`
}

// Ranks returns the recorded rank count.
func (h *Header) Ranks() int { return h.DecN * h.DecM }

// WithResult returns a copy of the header with the result fields taken
// from res — how both recorders and replayers stamp their headers.
func (h Header) WithResult(res simmpi.Result) Header {
	h.Schema = SchemaVersion
	h.Kind = Kind
	h.SimUS = res.Time
	h.Events = res.Events
	h.Messages = res.Sends
	h.BytesSent = res.BytesSent
	return h
}

// rankRec is one rank's op stream as parallel arrays (see package doc).
type rankRec struct {
	Rank  int       `json:"rank"`
	Kinds []byte    `json:"kinds"`
	Peers []int32   `json:"peers"`
	Bytes []int32   `json:"bytes"`
	Durs  []float64 `json:"durs"`
}

// Write renders a trace: the header line, then one line per rank in
// rank order, from the recorder's Ops stream. The recorder must have
// been attached with Ops enabled to the run the header describes. The
// output is deterministic: same recording, same bytes.
func Write(w io.Writer, hdr Header, rec *obs.Recorder) error {
	if hdr.Schema != SchemaVersion || hdr.Kind != Kind {
		return fmt.Errorf("replay: header not stamped (schema %d kind %q); use WithResult", hdr.Schema, hdr.Kind)
	}
	if got := rec.Ranks(); got != hdr.Ranks() {
		return fmt.Errorf("replay: recorder holds %d ranks, header describes %d", got, hdr.Ranks())
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("replay: encode header: %w", err)
	}
	for r := 0; r < hdr.Ranks(); r++ {
		ops := rec.RankOps(r)
		rr := rankRec{
			Rank:  r,
			Kinds: make([]byte, len(ops)),
			Peers: make([]int32, len(ops)),
			Bytes: make([]int32, len(ops)),
			Durs:  make([]float64, len(ops)),
		}
		for i, op := range ops {
			rr.Kinds[i] = op.Kind
			rr.Peers[i] = op.Peer
			rr.Bytes[i] = op.Bytes
			rr.Durs[i] = op.Dur
		}
		if err := enc.Encode(rr); err != nil {
			return fmt.Errorf("replay: encode rank %d: %w", r, err)
		}
	}
	return bw.Flush()
}

// Read parses and validates a trace: the header plus every rank's op
// stream, indexed by rank. Each op is checked just far enough that
// replaying it cannot corrupt the simulator (kind known, peers in
// range, durations finite and non-negative, collective algorithms
// valid).
func Read(r io.Reader) (Header, [][]simmpi.Op, error) {
	var hdr Header
	sc := bufio.NewScanner(r)
	sc.Buffer(nil, 64<<20) // rank lines of long runs exceed the 64KB default
	if !sc.Scan() {
		return hdr, nil, fmt.Errorf("replay: empty trace: %w", sc.Err())
	}
	if err := config.DecodeStrict(sc.Bytes(), &hdr); err != nil {
		return hdr, nil, fmt.Errorf("replay: header: %w", err)
	}
	if hdr.Schema != SchemaVersion {
		return hdr, nil, fmt.Errorf("replay: trace schema_version %d, this reader supports %d", hdr.Schema, SchemaVersion)
	}
	if hdr.Kind != Kind {
		return hdr, nil, fmt.Errorf("replay: not an op trace (kind %q)", hdr.Kind)
	}
	if hdr.DecN <= 0 || hdr.DecM <= 0 {
		return hdr, nil, fmt.Errorf("replay: invalid decomposition %dx%d", hdr.DecN, hdr.DecM)
	}
	ranks := hdr.Ranks()
	ops := make([][]simmpi.Op, ranks)
	seen := make([]bool, ranks)
	for line := 2; sc.Scan(); line++ {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rr rankRec
		if err := config.DecodeStrict(sc.Bytes(), &rr); err != nil {
			return hdr, nil, fmt.Errorf("replay: line %d: %w", line, err)
		}
		if rr.Rank < 0 || rr.Rank >= ranks {
			return hdr, nil, fmt.Errorf("replay: line %d: rank %d outside %d ranks", line, rr.Rank, ranks)
		}
		if seen[rr.Rank] {
			return hdr, nil, fmt.Errorf("replay: line %d: duplicate record for rank %d", line, rr.Rank)
		}
		seen[rr.Rank] = true
		n := len(rr.Kinds)
		if len(rr.Peers) != n || len(rr.Bytes) != n || len(rr.Durs) != n {
			return hdr, nil, fmt.Errorf("replay: line %d: rank %d arrays disagree (%d kinds, %d peers, %d bytes, %d durs)",
				line, rr.Rank, n, len(rr.Peers), len(rr.Bytes), len(rr.Durs))
		}
		stream := make([]simmpi.Op, n)
		for i := 0; i < n; i++ {
			op := simmpi.Op{
				Kind:  simmpi.OpKind(rr.Kinds[i]),
				Peer:  rr.Peers[i],
				Bytes: rr.Bytes[i],
				Dur:   rr.Durs[i],
			}
			if err := checkOp(op, rr.Rank, ranks); err != nil {
				return hdr, nil, fmt.Errorf("replay: line %d: rank %d op %d: %w", line, rr.Rank, i, err)
			}
			stream[i] = op
		}
		ops[rr.Rank] = stream
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, fmt.Errorf("replay: %w", err)
	}
	for r, ok := range seen {
		if !ok {
			return hdr, nil, fmt.Errorf("replay: trace has no record for rank %d", r)
		}
	}
	return hdr, ops, nil
}

// checkOp validates one op against the run shape.
func checkOp(op simmpi.Op, rank, ranks int) error {
	if op.Dur < 0 || math.IsNaN(op.Dur) || math.IsInf(op.Dur, 0) {
		return fmt.Errorf("invalid duration %v", op.Dur)
	}
	if op.Bytes < 0 {
		return fmt.Errorf("negative byte count %d", op.Bytes)
	}
	switch op.Kind {
	case simmpi.OpCompute:
		return nil
	case simmpi.OpSend, simmpi.OpRecv:
		if op.Peer < 0 || int(op.Peer) >= ranks || int(op.Peer) == rank {
			return fmt.Errorf("peer %d invalid for rank %d of %d", op.Peer, rank, ranks)
		}
		return nil
	case simmpi.OpAllReduce:
		if !simmpi.ValidAllReduceAlg(simmpi.CollAlgOf(op)) {
			return fmt.Errorf("invalid all-reduce algorithm %d", op.Peer)
		}
		return nil
	case simmpi.OpBcast:
		if op.Peer < 0 || int(op.Peer) >= ranks {
			return fmt.Errorf("bcast root %d outside %d ranks", op.Peer, ranks)
		}
		return nil
	case simmpi.OpBarrier:
		return nil
	}
	return fmt.Errorf("unknown op kind %d", op.Kind)
}

// Options configures replay execution.
type Options struct {
	// Shards is the simulator shard count; 0 or 1 is serial, matching
	// the default recording path.
	Shards int
	// Rec, if non-nil, is attached to the replay simulation — with Ops
	// enabled it re-records the trace, the round-trip used by the CI
	// smoke.
	Rec *obs.Recorder
}

// Replay rebuilds the recorded run's topology from the header and
// re-executes the op streams.
func Replay(hdr Header, ops [][]simmpi.Op, o Options) (simmpi.Result, error) {
	var zero simmpi.Result
	if len(ops) != hdr.Ranks() {
		return zero, fmt.Errorf("replay: %d op streams for %d ranks", len(ops), hdr.Ranks())
	}
	mach, err := hdr.Machine.Machine()
	if err != nil {
		return zero, fmt.Errorf("replay: %w", err)
	}
	if hdr.Grid.Nx <= 0 || hdr.Grid.Ny <= 0 || hdr.Grid.Nz <= 0 {
		return zero, fmt.Errorf("replay: invalid grid %+v", hdr.Grid)
	}
	dec, err := grid.NewDecomposition(grid.NewGrid(hdr.Grid.Nx, hdr.Grid.Ny, hdr.Grid.Nz), hdr.DecN, hdr.DecM)
	if err != nil {
		return zero, fmt.Errorf("replay: %w", err)
	}
	topo, err := simnet.NewMachineTopology(mach, dec)
	if err != nil {
		return zero, fmt.Errorf("replay: %w", err)
	}
	sim, err := simmpi.NewWithOptions(topo, simmpi.Options{Shards: o.Shards, Obs: o.Rec})
	if err != nil {
		return zero, fmt.Errorf("replay: %w", err)
	}
	for r, stream := range ops {
		sim.SetProgram(r, simmpi.Ops(stream...))
	}
	res, err := sim.Run()
	if err != nil {
		return zero, fmt.Errorf("replay: %w", err)
	}
	return res, nil
}

// Diff compares a replay result against the recorded header bit for
// bit and returns a human-readable line per mismatching field; nil
// means the replay reproduced the recording exactly.
func Diff(hdr Header, res simmpi.Result) []string {
	var out []string
	if math.Float64bits(res.Time) != math.Float64bits(hdr.SimUS) {
		out = append(out, fmt.Sprintf("sim_us: recorded %v (%#x), replayed %v (%#x)",
			hdr.SimUS, math.Float64bits(hdr.SimUS), res.Time, math.Float64bits(res.Time)))
	}
	if res.Events != hdr.Events {
		out = append(out, fmt.Sprintf("events: recorded %d, replayed %d", hdr.Events, res.Events))
	}
	if res.Sends != hdr.Messages {
		out = append(out, fmt.Sprintf("messages: recorded %d, replayed %d", hdr.Messages, res.Sends))
	}
	if res.BytesSent != hdr.BytesSent {
		out = append(out, fmt.Sprintf("bytes_sent: recorded %d, replayed %d", hdr.BytesSent, res.BytesSent))
	}
	return out
}
