package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/topo"
)

func TestExampleRoundTrips(t *testing.T) {
	f := Example()
	data, err := Render(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := back.App.Benchmark()
	if err != nil {
		t.Fatal(err)
	}
	if bm.App.Name != "Chimaera" || bm.App.NSweeps != 8 || bm.App.NFull != 4 || bm.App.NDiag != 2 {
		t.Errorf("example app = %+v", bm.App)
	}
	mach, err := back.Machine.Machine()
	if err != nil {
		t.Fatal(err)
	}
	if mach.CoresPerNode != 2 {
		t.Errorf("machine = %+v", mach)
	}
	// The materialised spec evaluates like the built-in benchmark.
	rep, err := core.New(bm.App, mach).EvaluateP(64)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total <= 0 {
		t.Error("non-positive total")
	}
}

func TestLoadFromDisk(t *testing.T) {
	data, err := Render(Example())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "app.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.App.Name != "Chimaera" {
		t.Errorf("loaded app = %q", f.App.Name)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"app":{"name":"x","bogus":1}}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestParseCorner(t *testing.T) {
	for s, want := range map[string]grid.Corner{
		"NW": grid.NW, "ne": grid.NE, " sw ": grid.SW, "Se": grid.SE,
	} {
		got, err := ParseCorner(s)
		if err != nil || got != want {
			t.Errorf("ParseCorner(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCorner("north"); err == nil {
		t.Error("bad corner accepted")
	}
}

func TestAppSpecValidation(t *testing.T) {
	good := Example().App
	if _, err := good.Benchmark(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*AppSpec)
	}{
		{"no name", func(s *AppSpec) { s.Name = "" }},
		{"bad grid", func(s *AppSpec) { s.Grid.Nz = 0 }},
		{"no corners", func(s *AppSpec) { s.Corners = nil }},
		{"bad corner", func(s *AppSpec) { s.Corners = []string{"XX"} }},
		{"both sizings", func(s *AppSpec) { s.BytesPerCell = 40 }},
		{"neither sizing", func(s *AppSpec) { s.Angles = 0 }},
		{"both nonwavefront", func(s *AppSpec) {
			s.NonWavefront.Stencil = &StencilSpec{WgStencil: 0.1, BytesPerCell: 40}
		}},
		{"zero iterations", func(s *AppSpec) { s.Iterations = 0 }},
	}
	for _, tc := range cases {
		s := Example().App
		tc.mutate(&s)
		if _, err := s.Benchmark(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestLUStyleSpec(t *testing.T) {
	s := AppSpec{
		Name:         "lu-like",
		Grid:         GridSpec{Nx: 64, Ny: 64, Nz: 64},
		Wg:           0.6,
		WgPre:        0.3,
		Htile:        1,
		Corners:      []string{"NW", "SE"},
		BytesPerCell: 40,
		NonWavefront: NonWavefrontSpec{Stencil: &StencilSpec{WgStencil: 0.15, BytesPerCell: 40}},
		Iterations:   10,
	}
	bm, err := s.Benchmark()
	if err != nil {
		t.Fatal(err)
	}
	if bm.App.NSweeps != 2 || bm.App.NFull != 2 || bm.App.NDiag != 0 {
		t.Errorf("structure = %+v", bm.App)
	}
	dec := grid.MustDecompose(grid.Cube(64), 4, 4)
	if got := bm.App.EWBytes(dec, 1); got != 40*16 {
		t.Errorf("EW bytes = %d", got)
	}
	if bm.InterOps == nil {
		t.Fatal("stencil inter-ops missing")
	}
	if ops := bm.InterOps(dec)(5); len(ops) == 0 {
		t.Error("no stencil ops")
	}
}

func TestMachineSpecs(t *testing.T) {
	m, err := (MachineSpec{Preset: "sp2", CoresPerNode: 1}).Machine()
	if err != nil {
		t.Fatal(err)
	}
	if m.Params.L != 23 {
		t.Errorf("sp2 params = %+v", m.Params)
	}
	custom := machine.XT4().Params
	custom.Name = ""
	m, err = (MachineSpec{Params: &custom, CoresPerNode: 4, BusGroups: 2}).Machine()
	if err != nil {
		t.Fatal(err)
	}
	if m.Cx != 2 || m.Cy != 2 || m.BusGroups != 2 {
		t.Errorf("custom machine = %+v", m)
	}
	if !strings.Contains(m.Name, "custom") {
		t.Errorf("name = %q", m.Name)
	}
	if _, err := (MachineSpec{Preset: "cray-zz"}).Machine(); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := (MachineSpec{}).Machine(); err == nil {
		t.Error("empty spec accepted")
	}
	// Defaulting: zero cores → 1.
	m, err = (MachineSpec{Preset: "xt4"}).Machine()
	if err != nil {
		t.Fatal(err)
	}
	if m.CoresPerNode != 1 {
		t.Errorf("default cores = %d", m.CoresPerNode)
	}
}

// TestMachineSpecInterconnect: the interconnect block parses into the
// machine, and invalid or unknown specs are rejected strictly.
func TestMachineSpecInterconnect(t *testing.T) {
	var spec MachineSpec
	err := DecodeStrict([]byte(`{
	  "preset": "xt4", "cores_per_node": 2,
	  "interconnect": {"kind": "torus2d", "dims": [6, 6], "hop_l": 0.1}
	}`), &spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := spec.Machine()
	if err != nil {
		t.Fatal(err)
	}
	if m.Interconnect.Kind != topo.Torus2D || len(m.Interconnect.Dims) != 2 || m.Interconnect.HopL != 0.1 {
		t.Errorf("interconnect = %+v", m.Interconnect)
	}
	if !strings.Contains(m.String(), "torus2d[6x6]") {
		t.Errorf("machine string %q misses the fabric", m)
	}

	if err := DecodeStrict([]byte(`{"preset": "xt4", "interconnect": {"kind": "hypercube"}}`), &spec); err == nil {
		t.Error("unknown interconnect kind accepted")
	}
	bad := MachineSpec{Preset: "xt4", CoresPerNode: 2, Interconnect: &topo.Spec{Kind: topo.Torus3D, Dims: []int{2, 2}}}
	if _, err := bad.Machine(); err == nil {
		t.Error("torus3d with 2 dims accepted")
	}
}
