// Package config loads plug-and-play model inputs from JSON: an
// application spec carrying exactly the paper's Table 3 parameters and a
// machine spec carrying the LogGP platform parameters and node
// organisation. This is the "plug-and-play" workflow end to end — a user
// describes a new wavefront production code in a few lines of JSON and
// obtains both a performance model and an executable simulation, with no
// model equations to re-derive.
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/logp"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/topo"
	"repro/internal/wavefront"
	"repro/internal/workload"
)

// GridSpec is a problem size.
type GridSpec struct {
	Nx int `json:"nx"`
	Ny int `json:"ny"`
	Nz int `json:"nz"`
}

// NonWavefrontSpec selects the inter-iteration operation (Tnonwavefront).
// Exactly one field should be set; an empty spec means none.
type NonWavefrontSpec struct {
	// AllReduces performs the given number of 8-byte all-reduces
	// (Sweep3D: 2, Chimaera: 1).
	AllReduces int `json:"allreduces,omitempty"`
	// Stencil performs a four-point stencil with the given per-cell time
	// (µs) and per-cell boundary bytes (LU).
	Stencil *StencilSpec `json:"stencil,omitempty"`
}

// StencilSpec parameterises the LU-style inter-iteration stencil.
type StencilSpec struct {
	WgStencil    float64 `json:"wg_stencil"`
	BytesPerCell int     `json:"bytes_per_cell"`
}

// ConvergenceSpec enables the per-iteration convergence all-reduce: every
// rank joins an all-reduce of Bytes at the end of each iteration, executed
// by the named collective algorithm — "ring", "recdouble", or "auto" for
// the closed-form exchange of paper equation (9). An empty Alg defaults to
// "recdouble", MPI's usual choice for short reductions.
type ConvergenceSpec struct {
	Bytes int    `json:"bytes"`
	Alg   string `json:"alg,omitempty"`
}

// Apply resolves the spec onto a benchmark, validating size and algorithm.
func (c ConvergenceSpec) Apply(bm apps.Benchmark) (apps.Benchmark, error) {
	if c.Bytes <= 0 {
		return bm, fmt.Errorf("config: convergence all-reduce needs a positive size, got %d", c.Bytes)
	}
	name := c.Alg
	if name == "" {
		name = "recdouble"
	}
	alg, err := coll.ParseAlg(name)
	if err != nil {
		return bm, fmt.Errorf("config: convergence: %w", err)
	}
	if !simmpi.ValidAllReduceAlg(alg) {
		return bm, fmt.Errorf("config: convergence all-reduce cannot use algorithm %q (want auto, ring or recdouble)", name)
	}
	return bm.WithConvergence(c.Bytes, alg), nil
}

// WorkloadSpec parameterises the per-tile workload generator: seeded
// load-imbalance distributions, OS-noise injection, and multi-block
// regions (see internal/workload for field semantics). It perturbs the
// simulator's per-tile compute only; the analytic model keeps the
// paper's uniform-compute assumption.
type WorkloadSpec = workload.Spec

// AppSpec is the JSON form of the paper's Table 3 application parameters.
type AppSpec struct {
	Name  string   `json:"name"`
	Grid  GridSpec `json:"grid"`
	Wg    float64  `json:"wg"`               // µs per cell (all angles)
	WgPre float64  `json:"wg_pre,omitempty"` // µs per cell before receives
	Htile int      `json:"htile"`

	// Corners is the per-iteration sweep origin sequence (Figure 2), e.g.
	// ["SE","SE","NE","NE","SW","SW","NW","NW"]. nsweeps/nfull/ndiag are
	// derived from it.
	Corners []string `json:"corners"`

	// Message sizing: either Angles (transport codes: 8×Htile×angles×edge
	// cells) or BytesPerCell (LU-style fixed bytes per boundary cell).
	Angles       int `json:"angles,omitempty"`
	BytesPerCell int `json:"bytes_per_cell,omitempty"`

	NonWavefront NonWavefrontSpec `json:"nonwavefront,omitempty"`
	Iterations   int              `json:"iterations"`

	// Convergence, when set, adds a per-iteration convergence all-reduce
	// executed by a simulated collective algorithm (internal/coll).
	Convergence *ConvergenceSpec `json:"convergence,omitempty"`

	// Workload, when set, perturbs the simulator's per-tile compute cost
	// with seeded imbalance/noise (see WorkloadSpec).
	Workload *WorkloadSpec `json:"workload,omitempty"`
}

// MachineSpec is the JSON form of a platform description.
type MachineSpec struct {
	// Preset names a built-in parameter set: "xt4" or "sp2". When empty,
	// Params must be given.
	Preset       string       `json:"preset,omitempty"`
	Params       *logp.Params `json:"params,omitempty"`
	CoresPerNode int          `json:"cores_per_node"`
	BusGroups    int          `json:"bus_groups,omitempty"`
	// Interconnect selects the inter-node fabric, e.g.
	// {"kind": "torus2d", "dims": [6, 6]} or {"kind": "fattree",
	// "leaf_radix": 4, "spine": 4}. Omitted means the paper's flat wire.
	Interconnect *topo.Spec `json:"interconnect,omitempty"`
}

// ParseCorner converts a corner name to grid.Corner.
func ParseCorner(s string) (grid.Corner, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "NW":
		return grid.NW, nil
	case "NE":
		return grid.NE, nil
	case "SW":
		return grid.SW, nil
	case "SE":
		return grid.SE, nil
	}
	return 0, fmt.Errorf("config: unknown corner %q (want NW, NE, SW or SE)", s)
}

// Benchmark materialises the spec into a model/simulator benchmark.
func (s AppSpec) Benchmark() (apps.Benchmark, error) {
	var zero apps.Benchmark
	if s.Name == "" {
		return zero, fmt.Errorf("config: app needs a name")
	}
	if s.Grid.Nx <= 0 || s.Grid.Ny <= 0 || s.Grid.Nz <= 0 {
		return zero, fmt.Errorf("config: app %q has invalid grid %+v", s.Name, s.Grid)
	}
	if len(s.Corners) == 0 {
		return zero, fmt.Errorf("config: app %q has no sweep corners", s.Name)
	}
	if (s.Angles > 0) == (s.BytesPerCell > 0) {
		return zero, fmt.Errorf("config: app %q must set exactly one of angles or bytes_per_cell", s.Name)
	}
	corners := make([]grid.Corner, len(s.Corners))
	for i, cs := range s.Corners {
		c, err := ParseCorner(cs)
		if err != nil {
			return zero, fmt.Errorf("config: app %q: %w", s.Name, err)
		}
		corners[i] = c
	}

	var ew, ns func(grid.Decomposition, int) int
	if s.Angles > 0 {
		angles := s.Angles
		ew = func(dec grid.Decomposition, h int) int { return 8 * h * angles * dec.CellsPerRankY() }
		ns = func(dec grid.Decomposition, h int) int { return 8 * h * angles * dec.CellsPerRankX() }
	} else {
		bpc := s.BytesPerCell
		ew = func(dec grid.Decomposition, h int) int { return bpc * h * dec.CellsPerRankY() }
		ns = func(dec grid.Decomposition, h int) int { return bpc * h * dec.CellsPerRankX() }
	}

	var nonWF func(core.Env) float64
	var interOps func(grid.Decomposition) func(int) []simmpi.Op
	switch {
	case s.NonWavefront.AllReduces > 0 && s.NonWavefront.Stencil != nil:
		return zero, fmt.Errorf("config: app %q sets both allreduces and stencil", s.Name)
	case s.NonWavefront.AllReduces > 0:
		n := s.NonWavefront.AllReduces
		nonWF = core.AllReduceNonWavefront(n)
		interOps = func(grid.Decomposition) func(int) []simmpi.Op { return wavefront.AllReduceInter(n) }
	case s.NonWavefront.Stencil != nil:
		st := *s.NonWavefront.Stencil
		g := grid.NewGrid(s.Grid.Nx, s.Grid.Ny, s.Grid.Nz)
		nonWF = core.StencilNonWavefront(st.WgStencil, st.BytesPerCell)
		interOps = func(dec grid.Decomposition) func(int) []simmpi.Op {
			comp := st.WgStencil * float64(dec.CellsPerRankX()) * float64(dec.CellsPerRankY()) * float64(g.Nz)
			return wavefront.StencilInter(dec, comp,
				st.BytesPerCell*dec.CellsPerRankY()*g.Nz,
				st.BytesPerCell*dec.CellsPerRankX()*g.Nz)
		}
	}

	bm := apps.Custom(s.Name, grid.NewGrid(s.Grid.Nx, s.Grid.Ny, s.Grid.Nz),
		s.Wg, s.WgPre, s.Htile, corners, ew, ns, nonWF, s.Iterations, interOps)
	if s.Convergence != nil {
		var err error
		bm, err = s.Convergence.Apply(bm)
		if err != nil {
			return zero, fmt.Errorf("%w (app %q)", err, s.Name)
		}
	}
	if s.Workload != nil {
		if err := s.Workload.Validate(); err != nil {
			return zero, fmt.Errorf("config: app %q: %w", s.Name, err)
		}
		bm = bm.WithWorkload(*s.Workload)
	}
	if err := bm.App.Validate(); err != nil {
		return zero, err
	}
	return bm, nil
}

// Machine materialises the machine spec.
func (s MachineSpec) Machine() (machine.Machine, error) {
	var prm logp.Params
	switch strings.ToLower(s.Preset) {
	case "xt4":
		prm = logp.XT4()
	case "sp2":
		prm = logp.SP2()
	case "":
		if s.Params == nil {
			return machine.Machine{}, fmt.Errorf("config: machine needs a preset or explicit params")
		}
		prm = *s.Params
		if prm.Name == "" {
			prm.Name = "custom"
		}
	default:
		return machine.Machine{}, fmt.Errorf("config: unknown machine preset %q", s.Preset)
	}
	cores := s.CoresPerNode
	if cores <= 0 {
		cores = 1
	}
	cx, cy, err := machine.CoreRectangle(cores)
	if err != nil {
		return machine.Machine{}, err
	}
	groups := s.BusGroups
	if groups <= 0 {
		groups = 1
	}
	m := machine.Machine{
		Name:         fmt.Sprintf("%s (%d cores/node)", prm.Name, cores),
		Params:       prm,
		CoresPerNode: cores,
		Cx:           cx,
		Cy:           cy,
		BusGroups:    groups,
	}
	if s.Interconnect != nil {
		m.Interconnect = *s.Interconnect
	}
	if err := m.Validate(); err != nil {
		return machine.Machine{}, err
	}
	return m, nil
}

// File is a complete plug-and-play run description.
type File struct {
	App     AppSpec     `json:"app"`
	Machine MachineSpec `json:"machine"`
}

// DecodeStrict decodes a single JSON document into v, rejecting unknown
// fields and trailing content. Spec loaders (config files, campaign specs)
// share it so that a typo in a field name is an error, not a silently
// ignored knob.
func DecodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing content after JSON document")
	}
	return nil
}

// Parse decodes a run description from JSON bytes.
func Parse(data []byte) (File, error) {
	var f File
	if err := DecodeStrict(data, &f); err != nil {
		return File{}, fmt.Errorf("config: %w", err)
	}
	return f, nil
}

// Load reads and decodes a run description file.
func Load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, fmt.Errorf("config: %w", err)
	}
	return Parse(data)
}

// Example returns a complete example spec (the Chimaera benchmark on the
// dual-core XT4), for `plugplay -example`.
func Example() File {
	return File{
		App: AppSpec{
			Name:  "Chimaera",
			Grid:  GridSpec{Nx: 240, Ny: 240, Nz: 240},
			Wg:    apps.ChimaeraAngles * apps.GrindTime,
			Htile: 1,
			Corners: []string{
				"SE", "SE", "NE", "SW", "NE", "SW", "NW", "NW",
			},
			Angles:       apps.ChimaeraAngles,
			NonWavefront: NonWavefrontSpec{AllReduces: 1},
			Iterations:   apps.ChimaeraIters,
		},
		Machine: MachineSpec{Preset: "xt4", CoresPerNode: 2},
	}
}

// Render encodes a File as indented JSON.
func Render(f File) ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}
