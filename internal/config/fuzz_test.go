package config_test

// Fuzz coverage of the strict JSON decoding path shared by every spec
// loader: machine blocks (LogGP params, interconnect), application blocks
// (grids, corners, non-wavefront, convergence collectives) and whole
// campaign specs. The invariants: DecodeStrict and the materialisers behind
// it never panic on arbitrary input, and any object that decodes cleanly is
// re-rejected once an unknown field is injected — a typo in a knob name
// must always be an error, never silently ignored.
//
// CI runs this as a short -fuzz smoke on top of the checked-in seed corpus.

import (
	"encoding/json"
	"testing"

	"repro/internal/campaign"
	"repro/internal/config"
)

// fuzzSeeds are well-formed examples of every spec shape the decoder
// serves, so the fuzzer starts from meaningful structures.
var fuzzSeeds = []string{
	// Machine blocks, with and without interconnects.
	`{"preset": "xt4", "cores_per_node": 2}`,
	`{"preset": "sp2", "cores_per_node": 1, "bus_groups": 1}`,
	`{"preset": "xt4", "cores_per_node": 4, "interconnect": {"kind": "torus2d", "dims": [6, 6]}}`,
	`{"preset": "xt4", "cores_per_node": 2, "interconnect": {"kind": "torus3d"}}`,
	`{"preset": "xt4", "cores_per_node": 2, "interconnect": {"kind": "fattree", "leaf_radix": 4, "spine": 2}}`,
	`{"preset": "xt4", "cores_per_node": 2, "interconnect": {"kind": "bus"}}`,
	`{"params": {"Name": "custom", "G": 0.001, "L": 1.5, "O": 2, "H": 0,
	  "Gcopy": 0.0005, "Gdma": 0.0001, "Ochip": 2, "Ocopy": 1}, "cores_per_node": 2}`,
	// Application blocks, with and without convergence collectives.
	`{"name": "mini", "grid": {"nx": 8, "ny": 8, "nz": 8}, "wg": 0.5, "htile": 1,
	  "corners": ["NW", "SE"], "angles": 6, "iterations": 1}`,
	`{"name": "mini", "grid": {"nx": 8, "ny": 8, "nz": 8}, "wg": 0.5, "htile": 1,
	  "corners": ["NW", "SE"], "bytes_per_cell": 40, "iterations": 2,
	  "nonwavefront": {"allreduces": 1},
	  "convergence": {"bytes": 8, "alg": "ring"}}`,
	`{"name": "mini", "grid": {"nx": 8, "ny": 8, "nz": 8}, "wg": 0.5, "htile": 1,
	  "corners": ["SE", "SE", "NE", "NE"], "angles": 10, "iterations": 1,
	  "convergence": {"bytes": 4096, "alg": "recdouble"}}`,
	`{"name": "mini", "grid": {"nx": 8, "ny": 8, "nz": 8}, "wg": 0.5, "htile": 1,
	  "corners": ["NW"], "angles": 6, "iterations": 1, "convergence": {"bytes": 8}}`,
	// Campaign specs sweeping all dimensions.
	`{"name": "c", "apps": [{"preset": "lu", "grid": {"nx": 12, "ny": 12, "nz": 12},
	  "convergence": {"bytes": 8, "alg": "auto"}}],
	  "machines": [{"preset": "xt4", "cores_per_node": 2,
	  "interconnect": {"kind": "fattree"}}], "ranks": [4, 9]}`,
	`{"name": "c", "apps": [{"preset": "sweep3d", "grid": {"nx": 12, "ny": 12, "nz": 12},
	  "htile": 2}], "machines": [{"preset": "xt4", "cores_per_node": 1}],
	  "ranks": [4], "loggp": [{"name": "slow", "scale": {"L": 4}}]}`,
	// Degenerate shapes the decoder must survive.
	`null`, `{}`, `[]`, `42`, `"x"`, `{"kind": "torus2d"}`,
	`{"preset": "xt4", "cores_per_node": 2} trailing`,
}

// FuzzDecodeStrict drives arbitrary bytes through every strict-decoding
// surface and its materialiser.
func FuzzDecodeStrict(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var ms config.MachineSpec
		if err := config.DecodeStrict(data, &ms); err == nil {
			_, _ = ms.Machine()
			rejectUnknownField(t, data, &config.MachineSpec{})
		}
		var as config.AppSpec
		if err := config.DecodeStrict(data, &as); err == nil {
			_, _ = as.Benchmark()
			rejectUnknownField(t, data, &config.AppSpec{})
		}
		var file config.File
		if err := config.DecodeStrict(data, &file); err == nil {
			rejectUnknownField(t, data, &config.File{})
		}
		if spec, err := campaign.ParseSpec(data); err == nil {
			// A spec that parses cleanly must also expand cleanly or fail
			// with an error — never panic. Huge rank counts are legal but
			// make decomposition factoring quadratically slow; skip them to
			// keep fuzz executions fast.
			for _, p := range spec.Ranks {
				if p > 1<<20 {
					return
				}
			}
			_, _ = spec.Expand()
		}
	})
}

// rejectUnknownField re-encodes a successfully decoded JSON object with one
// extra unknown key and requires DecodeStrict to refuse it.
func rejectUnknownField(t *testing.T, data []byte, v any) {
	t.Helper()
	var m map[string]json.RawMessage
	if json.Unmarshal(data, &m) != nil || m == nil {
		return // not an object (e.g. null): nothing to inject into
	}
	if _, dup := m["zz_no_such_knob_zz"]; dup {
		return
	}
	m["zz_no_such_knob_zz"] = json.RawMessage(`1`)
	b, err := json.Marshal(m)
	if err != nil {
		return
	}
	if err := config.DecodeStrict(b, v); err == nil {
		t.Errorf("unknown field accepted by %T: %s", v, b)
	}
}
