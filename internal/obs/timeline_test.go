package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// traceFile mirrors the Chrome trace-event object form for schema checks.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Ph   string                 `json:"ph"`
	Ts   *float64               `json:"ts"`
	Dur  *float64               `json:"dur"`
	Pid  *int                   `json:"pid"`
	Tid  *int                   `json:"tid"`
	Args map[string]interface{} `json:"args"`
}

func decodeTimeline(t *testing.T, r *Recorder, opt TimelineOptions) ([]byte, traceFile) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, r, opt); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("timeline is not valid JSON: %v\n%s", err, buf.String())
	}
	return buf.Bytes(), tf
}

// TestTimelineSchema holds every event to the trace-event contract Perfetto
// needs: "M" metadata events carry a name arg; "X" complete events carry
// name, ts, dur, pid and tid.
func TestTimelineSchema(t *testing.T) {
	_, tf := decodeTimeline(t, handRecorder(), TimelineOptions{})
	if len(tf.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	var xEvents int
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				t.Errorf("event %d: metadata name %q", i, ev.Name)
			}
			if _, ok := ev.Args["name"]; !ok {
				t.Errorf("event %d: metadata without args.name", i)
			}
		case "X":
			xEvents++
			if ev.Name == "" || ev.Ts == nil || ev.Dur == nil || ev.Pid == nil || ev.Tid == nil {
				t.Errorf("event %d: incomplete X event %+v", i, ev)
			}
			if *ev.Dur < 0 {
				t.Errorf("event %d: negative duration", i)
			}
		default:
			t.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	// 3 spans + 1 link + 2 windows.
	if xEvents != 6 {
		t.Errorf("X events = %d, want 6", xEvents)
	}
}

func TestTimelineTracks(t *testing.T) {
	raw, tf := decodeTimeline(t, handRecorder(), TimelineOptions{
		LinkName: func(link int) string { return "torus+x" },
	})
	pids := map[int]bool{}
	var sawStall, sawLinkName bool
	for _, ev := range tf.TraceEvents {
		if ev.Pid != nil {
			pids[*ev.Pid] = true
		}
		if strings.HasPrefix(ev.Name, "stall") {
			sawStall = true
		}
		if ev.Ph == "M" && ev.Args["name"] == "torus+x" {
			sawLinkName = true
		}
	}
	for _, pid := range []int{pidRanks, pidLinks, pidShards} {
		if !pids[pid] {
			t.Errorf("missing process group pid %d", pid)
		}
	}
	if !sawStall {
		t.Error("zero-event window not rendered as a stall")
	}
	if !sawLinkName {
		t.Error("LinkName option ignored")
	}
	// Send spans carry peer and byte count for the Perfetto args pane.
	if !bytes.Contains(raw, []byte(`"peer":1`)) || !bytes.Contains(raw, []byte(`"wait":0.5`)) {
		t.Error("span/link args missing from the encoding")
	}
}

func TestTimelineEmptyRecorder(t *testing.T) {
	raw, tf := decodeTimeline(t, &Recorder{}, TimelineOptions{})
	if len(tf.TraceEvents) != 0 {
		t.Errorf("empty recorder produced %d events", len(tf.TraceEvents))
	}
	if !bytes.HasSuffix(raw, []byte("\n")) {
		t.Error("timeline not newline-terminated")
	}
}

func TestTimelineDeterministic(t *testing.T) {
	a, _ := decodeTimeline(t, handRecorder(), TimelineOptions{})
	b, _ := decodeTimeline(t, handRecorder(), TimelineOptions{})
	if !bytes.Equal(a, b) {
		t.Error("two identical recordings rendered differently")
	}
}
