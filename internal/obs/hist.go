package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// This file holds the log-bucketed histogram the flight recorder uses for
// every duration metric. The design constraint is byte-determinism for any
// worker or shard count: a histogram therefore stores only integer bucket
// counts — no floating-point sums whose value would depend on accumulation
// order — and every derived statistic (quantiles, approximate mean) is
// computed from the counts in fixed bucket order.

// Bucket layout: bucket 0 collects zero (and any non-positive or NaN)
// observations; bucket i ≥ 1 covers the half-open range
// [2^(histMinExp+i−1), 2^(histMinExp+i)) µs. With histMinExp = −10 the
// first nonzero bucket starts below a nanosecond and the last reaches past
// 2^40 µs ≈ two weeks of simulated time, so no realistic duration under-
// or overflows; out-of-range values clamp to the edge buckets.
const (
	histMinExp  = -10
	histMaxExp  = 40
	histBuckets = histMaxExp - histMinExp + 1 // +1 for the zero bucket
)

// Hist is a deterministic log2-bucketed histogram of durations in µs.
// The zero value is an empty histogram ready for use.
type Hist struct {
	counts [histBuckets]uint64
	n      uint64
}

// Observe records one duration.
func (h *Hist) Observe(v float64) {
	h.counts[bucketOf(v)]++
	h.n++
}

// bucketOf maps a duration to its bucket index.
func bucketOf(v float64) int {
	if !(v > 0) { // catches 0, negatives and NaN
		return 0
	}
	if math.IsInf(v, 1) { // Frexp(+Inf) reports exponent 0
		return histBuckets - 1
	}
	// Frexp returns v = f × 2^exp with f ∈ [0.5, 1), so exp is the
	// exclusive power-of-two upper bound of v's bucket.
	_, exp := math.Frexp(v)
	b := exp - histMinExp
	if b < 1 {
		return 1
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketRep returns the representative value reported for a bucket: zero
// for the zero bucket, else the geometric mean of the bucket bounds.
func bucketRep(b int) float64 {
	if b == 0 {
		return 0
	}
	return math.Ldexp(math.Sqrt2/2, histMinExp+b) // 2^(histMinExp+b−0.5)
}

// N returns the observation count.
func (h *Hist) N() uint64 { return h.n }

// Quantile returns the representative value of the bucket holding the
// q-quantile observation (0 ≤ q ≤ 1), or 0 for an empty histogram. The
// result is quantised to bucket representatives, so it is deterministic
// and merge-order independent.
func (h *Hist) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	if target > h.n {
		target = h.n
	}
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		cum += h.counts[b]
		if cum >= target {
			return bucketRep(b)
		}
	}
	return bucketRep(histBuckets - 1)
}

// Mean returns the bucket-quantised approximate mean, computed from the
// counts in fixed bucket order (deterministic for any merge order).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	var sum float64
	for b := 0; b < histBuckets; b++ {
		if h.counts[b] > 0 {
			sum += float64(h.counts[b]) * bucketRep(b)
		}
	}
	return sum / float64(h.n)
}

// Merge adds another histogram's counts into h.
func (h *Hist) Merge(o *Hist) {
	for b := range h.counts {
		h.counts[b] += o.counts[b]
	}
	h.n += o.n
}

// Reset empties the histogram.
func (h *Hist) Reset() { *h = Hist{} }

// Summary renders the headline statistics on one line, e.g.
// "n=412 p50=1.4µs p90=5.8µs p99=23µs".
func (h *Hist) Summary() string {
	if h.n == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%sµs p90=%sµs p99=%sµs",
		h.n, fmtG(h.Quantile(0.5)), fmtG(h.Quantile(0.9)), fmtG(h.Quantile(0.99)))
}

// fmtG formats a float with the shortest exact representation.
func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// SimHists bundles the simulator's duration histograms. RecvWait,
// MsgLatency and LinkDelay depend only on run content and are
// byte-identical for every worker and shard count; WindowStall measures
// the sharded scheduler itself, so it is empty on serial runs and varies
// with the shard count (keep it out of shard-invariant artifacts).
type SimHists struct {
	// RecvWait is the time a rank spent blocked in each receive, from the
	// receive post to the resume (µs).
	RecvWait Hist
	// MsgLatency is the time from each send's start to its data being
	// ready at the receiver (µs).
	MsgLatency Hist
	// LinkDelay is the per-link queueing delay of every interconnect link
	// reservation (µs); empty on flat-wire runs.
	LinkDelay Hist
	// WindowStall is the duration of every (shard, window) pair that ran
	// no events — the lookahead scheduler's idle windows (µs).
	WindowStall Hist
}

// Merge adds another bundle's counts into h.
func (h *SimHists) Merge(o *SimHists) {
	h.RecvWait.Merge(&o.RecvWait)
	h.MsgLatency.Merge(&o.MsgLatency)
	h.LinkDelay.Merge(&o.LinkDelay)
	h.WindowStall.Merge(&o.WindowStall)
}

// Reset empties every histogram.
func (h *SimHists) Reset() { *h = SimHists{} }

// Write renders the bundle as an aligned text table.
func (h *SimHists) Write(w io.Writer) {
	fmt.Fprintf(w, "%-13s %s\n", "recv_wait", h.RecvWait.Summary())
	fmt.Fprintf(w, "%-13s %s\n", "msg_latency", h.MsgLatency.Summary())
	fmt.Fprintf(w, "%-13s %s\n", "link_delay", h.LinkDelay.Summary())
	fmt.Fprintf(w, "%-13s %s\n", "window_stall", h.WindowStall.Summary())
}
