package obs

import (
	"os"
	"path/filepath"
	"testing"
)

// handRecorder builds a small two-rank recording by hand: rank 0 computes
// then sends, rank 1 receives; one eager message, one link reservation, two
// windows (one a stall).
func handRecorder() *Recorder {
	r := &Recorder{Spans: true, Messages: true, Links: true, Windows: true, Hist: true}
	r.PrepareRanks(2)
	r.RankSpan(0, SpanCompute, -1, 0, 0, 10)
	r.RankSpan(0, SpanSend, 1, 256, 10, 12)
	r.RankSpan(1, SpanRecv, 0, 256, 0, 13)
	r.AddMessages([]MsgEvent{{Send: 10, Ready: 13, Src: 0, Dst: 1, Bytes: 256}})
	r.Link(3, 10.5, 0.5, 1.5)
	r.Window(1, 0, 0, 8, 42, 2)
	r.Window(1, 1, 0, 8, 0, 0) // stall
	return r
}

func TestRecorderFlagGating(t *testing.T) {
	r := &Recorder{} // everything off
	r.PrepareRanks(1)
	r.AddMessages([]MsgEvent{{Send: 1, Ready: 2}}) // batch append is caller-gated
	r.Link(0, 1, 0.5, 1)
	r.Window(1, 0, 0, 5, 0, 0)
	if len(r.LinkList()) != 0 || len(r.WindowList()) != 0 {
		t.Error("disabled recorder collected link/window events")
	}
	if r.Hists().LinkDelay.N() != 0 || r.Hists().WindowStall.N() != 0 {
		t.Error("disabled recorder observed histograms")
	}
}

func TestRecorderStreams(t *testing.T) {
	r := handRecorder()
	if r.Ranks() != 2 {
		t.Fatalf("Ranks = %d", r.Ranks())
	}
	spans := r.SpanList()
	if len(spans) != 3 {
		t.Fatalf("spans = %d", len(spans))
	}
	// Rank-major chronological order.
	if spans[0].Kind != SpanCompute || spans[1].Kind != SpanSend || spans[2].Rank != 1 {
		t.Errorf("span order = %+v", spans)
	}
	if got := r.MsgList(); len(got) != 1 || got[0].Dst != 1 {
		t.Errorf("msgs = %+v", got)
	}
	if got := r.LinkList(); len(got) != 1 || got[0].Wait != 0.5 {
		t.Errorf("links = %+v", got)
	}
	if got := r.WindowList(); len(got) != 2 || got[0].Shard != 0 || got[1].Events != 0 {
		t.Errorf("windows = %+v", got)
	}
	// Hist flag routed the single-threaded hooks into the histograms.
	if r.Hists().LinkDelay.N() != 1 || r.Hists().WindowStall.N() != 1 {
		t.Errorf("hists = link %d stall %d", r.Hists().LinkDelay.N(), r.Hists().WindowStall.N())
	}
}

func TestRecorderListsSortByContent(t *testing.T) {
	r := &Recorder{Messages: true, Links: true, Windows: true}
	r.PrepareRanks(0)
	// Insert out of order; the lists must come back content-sorted.
	r.AddMessages([]MsgEvent{
		{Send: 5, Src: 1, Dst: 0},
		{Send: 1, Src: 0, Dst: 1},
		{Send: 5, Src: 0, Dst: 2},
	})
	r.Link(7, 4, 0, 1)
	r.Link(2, 4, 0, 1)
	r.Link(9, 1, 0, 1)
	r.Window(2, 0, 10, 20, 1, 0)
	r.Window(1, 1, 0, 10, 1, 0)
	r.Window(1, 0, 0, 10, 1, 0)

	msgs := r.MsgList()
	if msgs[0].Send != 1 || msgs[1].Src != 0 || msgs[2].Src != 1 {
		t.Errorf("msg order = %+v", msgs)
	}
	links := r.LinkList()
	if links[0].Link != 9 || links[1].Link != 2 || links[2].Link != 7 {
		t.Errorf("link order = %+v", links)
	}
	ws := r.WindowList()
	if ws[0].Index != 1 || ws[0].Shard != 0 || ws[1].Shard != 1 || ws[2].Index != 2 {
		t.Errorf("window order = %+v", ws)
	}
}

func TestRecorderResetAndReuse(t *testing.T) {
	r := handRecorder()
	r.Reset()
	if len(r.SpanList()) != 0 || len(r.MsgList()) != 0 || len(r.LinkList()) != 0 ||
		len(r.WindowList()) != 0 || r.Hists().LinkDelay.N() != 0 {
		t.Fatal("Reset left data behind")
	}
	// PrepareRanks also truncates buffers kept from an earlier, larger run.
	r.PrepareRanks(4)
	r.RankSpan(3, SpanCompute, -1, 0, 0, 1)
	r.PrepareRanks(2)
	if got := len(r.SpanList()); got != 0 {
		t.Errorf("PrepareRanks kept %d stale spans", got)
	}
	r.RankSpan(1, SpanBarrier, -1, 0, 0, 1)
	if got := r.SpanList(); len(got) != 1 || got[0].Rank != 1 {
		t.Errorf("reused recorder spans = %+v", got)
	}
}

func TestSpanNames(t *testing.T) {
	want := map[uint8]string{
		SpanCompute:   "compute",
		SpanSend:      "send",
		SpanRecv:      "recv",
		SpanAllReduce: "allreduce",
		SpanBcast:     "bcast",
		SpanBarrier:   "barrier",
	}
	for kind, name := range want {
		if got := SpanName(kind); got != name {
			t.Errorf("SpanName(%d) = %q, want %q", kind, got, name)
		}
	}
	if got := SpanName(200); got != "op" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestEnsureParent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a", "b", "out.json")
	if err := EnsureParent(path); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(filepath.Dir(path)); err != nil || !st.IsDir() {
		t.Fatalf("parent not created: %v", err)
	}
	// Bare filenames and existing directories are no-ops.
	if err := EnsureParent("bare.json"); err != nil {
		t.Errorf("bare filename: %v", err)
	}
	if err := EnsureParent(path); err != nil {
		t.Errorf("existing parent: %v", err)
	}
}
