package obs_test

// End-to-end flight-recorder tests: a Recorder attached to real simulations
// must (a) mirror the simulator's operation kinds, (b) produce byte-identical
// timeline/sampler/histogram artifacts for every shard count, pinned against
// a golden file, (c) emit schema-valid Chrome trace JSON, and (d) surface
// histograms on simmpi.Result without perturbing the simulation.
//
// To bless an intentional artifact change:
//
//	go test ./internal/obs -run TestFlightRecorderGolden -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/topo"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runFlight simulates one Sweep3D iteration on an edge³ grid over an n×m
// decomposition of the dual-core XT4 with a 2D-torus interconnect, with rec
// attached (rec may be nil).
func runFlight(t *testing.T, edge, n, m, shards int, rec *obs.Recorder) simmpi.Result {
	t.Helper()
	g := grid.Cube(edge)
	bm := apps.Sweep3D(g, 2)
	dec := grid.MustDecompose(g, n, m)
	sched, err := bm.Schedule(dec, 1)
	if err != nil {
		t.Fatal(err)
	}
	mach := machine.XT4()
	tp := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	if err := tp.AttachInterconnect(topo.Spec{Kind: topo.Torus2D}); err != nil {
		t.Fatal(err)
	}
	sim, err := simmpi.NewWithOptions(tp, simmpi.Options{Shards: shards, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	for r, p := range sched.Programs() {
		sim.SetProgram(r, p)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// shardInvariantArtifact renders the three shard-invariant artifacts —
// timeline, sampled CSV and histogram summaries — as one blob. WindowStall
// is deliberately absent: it measures the sharded scheduler itself and
// varies with the shard count (see the SimHists doc).
func shardInvariantArtifact(t *testing.T, rec *obs.Recorder, every float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteTimeline(&buf, rec, obs.TimelineOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteSamples(&buf, rec, every); err != nil {
		t.Fatal(err)
	}
	h := rec.Hists()
	fmt.Fprintf(&buf, "recv_wait %s\nmsg_latency %s\nlink_delay %s\n",
		h.RecvWait.Summary(), h.MsgLatency.Summary(), h.LinkDelay.Summary())
	return buf.Bytes()
}

// TestSpanKindParity: obs mirrors simmpi's operation kinds by value (obs is
// a leaf package and cannot import simmpi to share the constants).
func TestSpanKindParity(t *testing.T) {
	pairs := []struct {
		obs  uint8
		sim  simmpi.OpKind
		name string
	}{
		{obs.SpanCompute, simmpi.OpCompute, "compute"},
		{obs.SpanSend, simmpi.OpSend, "send"},
		{obs.SpanRecv, simmpi.OpRecv, "recv"},
		{obs.SpanAllReduce, simmpi.OpAllReduce, "allreduce"},
		{obs.SpanBcast, simmpi.OpBcast, "bcast"},
		{obs.SpanBarrier, simmpi.OpBarrier, "barrier"},
	}
	for _, p := range pairs {
		if p.obs != uint8(p.sim) {
			t.Errorf("%s: obs kind %d != simmpi kind %d", p.name, p.obs, p.sim)
		}
	}
}

// TestFlightRecorderGolden pins the full artifact blob of a small run
// byte-for-byte, and requires the identical blob from every shard count.
func TestFlightRecorderGolden(t *testing.T) {
	const path = "testdata/flight_golden.txt"
	var blobs [][]byte
	for _, shards := range []int{1, 2, 4} {
		rec := &obs.Recorder{Spans: true, Messages: true, Links: true, Hist: true}
		runFlight(t, 8, 2, 2, shards, rec)
		blobs = append(blobs, shardInvariantArtifact(t, rec, 25))
	}
	for i, blob := range blobs[1:] {
		if !bytes.Equal(blobs[0], blob) {
			t.Fatalf("artifacts diverge between 1 shard and %d shards", []int{2, 4}[i])
		}
	}
	if *update {
		if err := os.WriteFile(path, blobs[0], 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to record)", err)
	}
	if !bytes.Equal(blobs[0], want) {
		t.Fatalf("artifact drifted from golden (%d vs %d bytes); run with -update and explain the drift",
			len(blobs[0]), len(want))
	}
}

// TestFlightRecorderShardInvariantLarge repeats the invariance check on a
// contended 64-rank run (no golden: only cross-shard equality).
func TestFlightRecorderShardInvariantLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large invariance sweep")
	}
	var base []byte
	for _, shards := range []int{1, 2, 4, 8} {
		rec := &obs.Recorder{Spans: true, Messages: true, Links: true, Hist: true}
		runFlight(t, 32, 8, 8, shards, rec)
		blob := shardInvariantArtifact(t, rec, 200)
		if base == nil {
			base = blob
		} else if !bytes.Equal(base, blob) {
			t.Fatalf("artifacts diverge at %d shards", shards)
		}
	}
}

// TestTimelineSchemaFromSimulation: the rendered trace of a real run loads
// as trace-event JSON with complete events for every rank.
func TestTimelineSchemaFromSimulation(t *testing.T) {
	rec := &obs.Recorder{Spans: true, Messages: true, Links: true}
	res := runFlight(t, 16, 4, 4, 1, rec)

	var buf bytes.Buffer
	if err := obs.WriteTimeline(&buf, rec, obs.TimelineOptions{}); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	ranksSeen := map[int]bool{}
	var maxEnd float64
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
		case "X":
			if ev.Name == "" || ev.Ts == nil || ev.Dur == nil || ev.Pid == nil || ev.Tid == nil {
				t.Fatalf("event %d incomplete: %+v", i, ev)
			}
			if *ev.Pid == 1 {
				ranksSeen[*ev.Tid] = true
				if end := *ev.Ts + *ev.Dur; end > maxEnd {
					maxEnd = end
				}
			}
		default:
			t.Fatalf("event %d: phase %q", i, ev.Ph)
		}
	}
	if len(ranksSeen) != 16 {
		t.Errorf("rank tracks = %d, want 16", len(ranksSeen))
	}
	// The last rank span ends at the simulated makespan.
	if diff := maxEnd - res.Time; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("last span ends at %v, makespan %v", maxEnd, res.Time)
	}
}

// TestShardWindowTracks: a sharded run with Windows on yields one shard
// track per shard in the timeline (pid 3), with window/stall events.
func TestShardWindowTracks(t *testing.T) {
	rec := &obs.Recorder{Windows: true}
	runFlight(t, 16, 4, 4, 4, rec)
	ws := rec.WindowList()
	if len(ws) == 0 {
		t.Fatal("sharded run recorded no window events")
	}
	shards := map[int32]bool{}
	for _, w := range ws {
		shards[w.Shard] = true
		if w.Index == 0 || w.End < w.Start {
			t.Fatalf("malformed window event %+v", w)
		}
	}
	if len(shards) != 4 {
		t.Errorf("shard tracks = %d, want 4", len(shards))
	}
	var buf bytes.Buffer
	if err := obs.WriteTimeline(&buf, rec, obs.TimelineOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name":"shards"`) {
		t.Error("timeline missing the shards process group")
	}
}

// TestResultHists: histograms ride on simmpi.Result when enabled, stay nil
// when not, and observing them does not perturb the simulation.
func TestResultHists(t *testing.T) {
	plain := runFlight(t, 16, 4, 4, 1, nil)
	if plain.Hists != nil {
		t.Error("Hists attached without a recorder")
	}
	rec := &obs.Recorder{Hist: true}
	res := runFlight(t, 16, 4, 4, 1, rec)
	if res.Hists == nil {
		t.Fatal("Hists missing with Hist recorder")
	}
	if res.Time != plain.Time || res.Events != plain.Events {
		t.Errorf("recorder perturbed the run: %v/%d vs %v/%d",
			res.Time, res.Events, plain.Time, plain.Events)
	}
	if got := res.Hists.MsgLatency.N(); got != res.Sends {
		t.Errorf("MsgLatency observations = %d, messages = %d", got, res.Sends)
	}
	if res.Hists.RecvWait.N() == 0 {
		t.Error("no recv-wait observations")
	}
	if res.Hists.LinkDelay.N() != res.LinkRequests {
		t.Errorf("LinkDelay observations = %d, link requests = %d",
			res.Hists.LinkDelay.N(), res.LinkRequests)
	}
	// Accumulation across runs without Reset is documented behaviour.
	res2 := runFlight(t, 16, 4, 4, 1, rec)
	if got := res2.Hists.MsgLatency.N(); got != 2*res.Sends {
		t.Errorf("second run accumulated to %d, want %d", got, 2*res.Sends)
	}
}
