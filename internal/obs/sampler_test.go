package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func sampleRows(t *testing.T, r *Recorder, every float64) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSamples(&buf, r, every); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != sampleHeader {
		t.Fatalf("header = %q", lines[0])
	}
	return lines[1:]
}

// row parses a CSV data row into the time column and the counted columns.
func row(t *testing.T, line string) (ts float64, counts []int64, busy float64) {
	t.Helper()
	fields := strings.Split(line, ",")
	if len(fields) != numCols+2 {
		t.Fatalf("row %q has %d fields, want %d", line, len(fields), numCols+2)
	}
	ts, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fields[1 : numCols+1] {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, v)
	}
	busy, err = strconv.ParseFloat(fields[numCols+1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return ts, counts, busy
}

func TestSamplerRejectsBadInterval(t *testing.T) {
	for _, every := range []float64{0, -1} {
		if err := WriteSamples(&bytes.Buffer{}, &Recorder{}, every); err == nil {
			t.Errorf("every=%g accepted", every)
		}
	}
}

func TestSamplerCountsHandBuiltRun(t *testing.T) {
	// Rank 0: compute [0,10), send [10,12). Rank 1: recv [0,13).
	// Message in flight [10,13); link busy [10.5,12).
	r := handRecorder()
	rows := sampleRows(t, r, 5)
	// End of recording is 13 → samples at 0,5,10,15.
	if len(rows) != 4 {
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}

	ts, c, busy := row(t, rows[0]) // t=0: spans starting at 0 are active
	if ts != 0 || c[colCompute] != 1 || c[colRecv] != 1 || c[colSend] != 0 || busy != 0 {
		t.Errorf("t=0 row = %v", rows[0])
	}
	_, c, _ = row(t, rows[1]) // t=5: unchanged
	if c[colCompute] != 1 || c[colRecv] != 1 || c[colMsgs] != 0 {
		t.Errorf("t=5 row = %v", rows[1])
	}
	// t=10: compute ended exactly at 10, send started, message in flight.
	_, c, busy = row(t, rows[2])
	if c[colCompute] != 0 || c[colSend] != 1 || c[colRecv] != 1 || c[colMsgs] != 1 {
		t.Errorf("t=10 row = %v", rows[2])
	}
	if c[colRdv] != 0 {
		t.Errorf("eager message counted as rendezvous: %v", rows[2])
	}
	if busy != 0 { // link busy [10.5,12) is after this sample
		t.Errorf("t=10 busy = %g", busy)
	}
	// t=15: everything over, both ranks done, message delivered; the link
	// was busy 1.5µs inside (10,15].
	_, c, busy = row(t, rows[3])
	if c[colSend] != 0 || c[colRecv] != 0 || c[colMsgs] != 0 || c[colDone] != 2 {
		t.Errorf("t=15 row = %v", rows[3])
	}
	if busy != 1.5 {
		t.Errorf("t=15 busy = %g, want 1.5", busy)
	}
}

func TestSamplerClipsLinkBusyAcrossIntervals(t *testing.T) {
	// One link occupied [3, 9): interval (0,4] sees 1µs, (4,8] sees 4µs,
	// (8,12] sees 1µs.
	r := &Recorder{Links: true}
	r.PrepareRanks(0)
	r.Link(0, 3, 0, 6)
	rows := sampleRows(t, r, 4)
	want := []float64{0, 1, 4, 1}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for i, line := range rows {
		if _, _, busy := row(t, line); busy != want[i] {
			t.Errorf("row %d busy = %g, want %g (%q)", i, busy, want[i], line)
		}
	}
}

func TestSamplerRendezvousSubset(t *testing.T) {
	r := &Recorder{Messages: true}
	r.PrepareRanks(0)
	r.AddMessages([]MsgEvent{
		{Send: 0, Ready: 10, Src: 0, Dst: 1},
		{Send: 0, Ready: 10, Src: 1, Dst: 0, Rdv: true},
	})
	rows := sampleRows(t, r, 5)
	_, c, _ := row(t, rows[1]) // t=5
	if c[colMsgs] != 2 || c[colRdv] != 1 {
		t.Errorf("t=5 inflight=%d rdv=%d", c[colMsgs], c[colRdv])
	}
}

func TestSamplerDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteSamples(&a, handRecorder(), 3); err != nil {
		t.Fatal(err)
	}
	if err := WriteSamples(&b, handRecorder(), 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical recordings sampled differently")
	}
}
