// Package obs is the simulator's flight recorder: a unified, deterministic
// observability layer for the discrete-event MPI stack. A Recorder attached
// to a simulation (simmpi.Sim.SetObs) collects four event streams —
// per-rank activity spans, message lifetimes, interconnect link
// reservations and lookahead-window statistics — plus log-bucketed duration
// histograms (hist.go), and renders them as a Chrome trace-event timeline
// for ui.perfetto.dev (timeline.go) or a sampled CSV time series
// (sampler.go).
//
// Two properties shape the design:
//
//   - Disabled is free. Every hook in the simulator is nil-guarded (or a
//     cached boolean), so a run without a recorder performs no observability
//     work and no allocations; cmd/benchgate gates the hook overhead via
//     events_per_sec_obs_disabled.
//
//   - Enabled is deterministic. Unlike simmpi.Tracer, a Recorder does not
//     force serial execution: sharded runs append spans to per-rank buffers
//     (each rank is owned by exactly one shard), accumulate histograms in
//     per-shard scratch merged additively at the end, and record link and
//     window events only from single-threaded code (the barrier
//     coordinator). Exports sort every stream by content, and histograms
//     store only integer bucket counts, so the rendered output is
//     byte-identical for any worker or shard count. The one exception is
//     the scheduler's own telemetry — window events and the WindowStall
//     histogram — which necessarily varies with the shard count.
package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Span kinds, mirroring the simmpi operation kinds by value (asserted in
// the tests) without importing the package: obs must stay a leaf package
// importable from anywhere in the simulator stack.
const (
	SpanCompute uint8 = iota
	SpanSend
	SpanRecv
	SpanAllReduce
	SpanBcast
	SpanBarrier
)

// spanNames labels span kinds in exports.
var spanNames = [...]string{"compute", "send", "recv", "allreduce", "bcast", "barrier"}

// SpanName returns the export label of a span kind.
func SpanName(kind uint8) string {
	if int(kind) < len(spanNames) {
		return spanNames[kind]
	}
	return "op"
}

// Span is one activity interval of a rank: a compute burst or the blocking
// interval of a communication operation.
type Span struct {
	Start, End float64
	Rank       int32
	Peer       int32 // send/recv peer; -1 for compute and collectives
	Bytes      int32
	Kind       uint8
}

// MsgEvent is one completed message: send start to data ready at the
// receiver.
type MsgEvent struct {
	Send     float64 // sender's operation start time (µs)
	Ready    float64 // data ready at the receiver (µs)
	Src, Dst int32
	Bytes    int32
	Rdv      bool // rendezvous protocol (eager otherwise)
}

// LinkEvent is one interconnect link reservation.
type LinkEvent struct {
	Start float64 // service start, after queueing (µs)
	Wait  float64 // queueing delay (µs)
	Dur   float64 // link occupancy (µs)
	Link  int32
}

// OpEvent is one program operation exactly as the simulator consumed it
// from Program.Next — pre-expansion for collectives, durations
// bit-exact. A recorded op stream is a complete, replayable description
// of a rank's program (see internal/replay).
type OpEvent struct {
	Dur   float64
	Peer  int32
	Bytes int32
	Kind  uint8
}

// WindowEvent is one shard's view of one lookahead window.
type WindowEvent struct {
	Start, End float64
	Index      uint64 // window number, starting at 1
	Events     uint64 // events the shard executed inside the window
	Shard      int32
	Pending    int32 // shard event-heap depth at the closing barrier
}

// Recorder collects simulation event streams and histograms. Set the
// feature flags before attaching it to a simulation; all of them default
// to off, and recording with every flag false is valid but collects
// nothing. A Recorder accumulates across runs until Reset.
//
// The recording methods are called by the simulator under its own
// synchronisation discipline (see the package comment); they are not safe
// for arbitrary concurrent use.
type Recorder struct {
	// Spans records per-rank activity spans (timeline rank tracks, sampler
	// rank-state counts).
	Spans bool
	// Messages records message lifetimes (sampler in-flight counts).
	Messages bool
	// Links records interconnect link reservations (timeline link tracks,
	// sampler link business).
	Links bool
	// Windows records lookahead-window events on sharded runs (timeline
	// shard tracks). Serial runs have no windows.
	Windows bool
	// Hist accumulates the duration histograms.
	Hist bool
	// Ops records per-rank program op streams (trace recording for
	// internal/replay). Ops arrive in program order from the shard that
	// owns the rank, so the stream is deterministic for any shard count.
	Ops bool

	spans   [][]Span
	ops     [][]OpEvent
	msgs    []MsgEvent
	links   []LinkEvent
	windows []WindowEvent
	hists   SimHists
}

// PrepareRanks sizes the per-rank span buffers for a run of n ranks,
// truncating buffers kept from earlier runs. The simulator calls it before
// any shard goroutine starts.
func (r *Recorder) PrepareRanks(n int) {
	if cap(r.spans) < n {
		r.spans = append(r.spans[:cap(r.spans)], make([][]Span, n-cap(r.spans))...)
	}
	r.spans = r.spans[:n]
	for i := range r.spans {
		r.spans[i] = r.spans[i][:0]
	}
	if r.Ops {
		if cap(r.ops) < n {
			r.ops = append(r.ops[:cap(r.ops)], make([][]OpEvent, n-cap(r.ops))...)
		}
		r.ops = r.ops[:n]
		for i := range r.ops {
			r.ops[i] = r.ops[i][:0]
		}
	}
}

// Ranks returns the rank count of the prepared run.
func (r *Recorder) Ranks() int { return len(r.spans) }

// RankSpan records one activity span. Each rank's spans arrive in
// chronological order from the shard that owns the rank; distinct ranks may
// be recorded concurrently (they touch distinct buffer slots).
func (r *Recorder) RankSpan(rank int32, kind uint8, peer, bytes int32, start, end float64) {
	r.spans[rank] = append(r.spans[rank], Span{
		Start: start, End: end, Rank: rank, Peer: peer, Bytes: bytes, Kind: kind,
	})
}

// RankOp records one program operation. Like RankSpan, each rank's ops
// arrive in program order from the shard that owns the rank; distinct
// ranks may be recorded concurrently.
func (r *Recorder) RankOp(rank int32, kind uint8, peer, bytes int32, dur float64) {
	r.ops[rank] = append(r.ops[rank], OpEvent{Dur: dur, Peer: peer, Bytes: bytes, Kind: kind})
}

// RankOps returns rank's recorded op stream (aliased, not copied).
func (r *Recorder) RankOps(rank int) []OpEvent { return r.ops[rank] }

// AddMessages appends a batch of completed messages (a shard's scratch,
// folded in at the end of a run).
func (r *Recorder) AddMessages(ms []MsgEvent) { r.msgs = append(r.msgs, ms...) }

// Link records one interconnect link reservation. The simulator only calls
// it from single-threaded code: inline on serial runs, from the barrier
// coordinator's link replay on sharded ones. The signature matches
// topo.LinkTracer.
func (r *Recorder) Link(link int32, start, wait, dur float64) {
	if r.Links {
		r.links = append(r.links, LinkEvent{Start: start, Wait: wait, Dur: dur, Link: link})
	}
	if r.Hist {
		r.hists.LinkDelay.Observe(wait)
	}
}

// Window records one (shard, window) observation from the barrier
// coordinator; a window in which the shard ran no events counts as a stall
// of the window's length.
func (r *Recorder) Window(index uint64, shard int32, start, end float64, events uint64, pending int) {
	if r.Windows {
		r.windows = append(r.windows, WindowEvent{
			Start: start, End: end, Index: index, Events: events,
			Shard: shard, Pending: int32(pending),
		})
	}
	if r.Hist && events == 0 {
		r.hists.WindowStall.Observe(end - start)
	}
}

// MergeHists folds a shard's scratch histograms into the recorder's.
func (r *Recorder) MergeHists(h *SimHists) { r.hists.Merge(h) }

// Hists returns the accumulated histograms (aliased, not copied).
func (r *Recorder) Hists() *SimHists { return &r.hists }

// Reset empties every stream and histogram, keeping buffer capacity.
func (r *Recorder) Reset() {
	for i := range r.spans {
		r.spans[i] = r.spans[i][:0]
	}
	r.spans = r.spans[:0]
	for i := range r.ops {
		r.ops[i] = r.ops[i][:0]
	}
	r.ops = r.ops[:0]
	r.msgs = r.msgs[:0]
	r.links = r.links[:0]
	r.windows = r.windows[:0]
	r.hists.Reset()
}

// SpanList returns all spans rank-major, chronological within each rank —
// a content-derived order, identical for every shard count.
func (r *Recorder) SpanList() []Span {
	total := 0
	for i := range r.spans {
		total += len(r.spans[i])
	}
	out := make([]Span, 0, total)
	for i := range r.spans {
		out = append(out, r.spans[i]...)
	}
	return out
}

// MsgList returns the completed messages sorted by (send time, src, dst) —
// unique for blocking sends, so the order is content-derived.
func (r *Recorder) MsgList() []MsgEvent {
	out := make([]MsgEvent, len(r.msgs))
	copy(out, r.msgs)
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Send != b.Send {
			return a.Send < b.Send
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	return out
}

// LinkList returns the link reservations sorted by (service start, link,
// occupancy, wait); FCFS links cannot hold two distinct reservations with
// the same start, so the order is content-derived.
func (r *Recorder) LinkList() []LinkEvent {
	out := make([]LinkEvent, len(r.links))
	copy(out, r.links)
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Link != b.Link {
			return a.Link < b.Link
		}
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		return a.Wait < b.Wait
	})
	return out
}

// WindowList returns the window events sorted by (window index, shard).
func (r *Recorder) WindowList() []WindowEvent {
	out := make([]WindowEvent, len(r.windows))
	copy(out, r.windows)
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		return a.Shard < b.Shard
	})
	return out
}

// EnsureParent creates the parent directory of an output path so callers
// can write artifacts to paths like runs/day1/trace.json directly. A bare
// filename needs no directory and is a no-op.
func EnsureParent(path string) error {
	dir := filepath.Dir(path)
	if dir == "." || dir == "" {
		return nil
	}
	return os.MkdirAll(dir, 0o755)
}

// RangePath derives a per-range artifact path by inserting ".lo-hi" before
// the extension (or appending it when there is none), e.g.
// RangePath("out/trace.json", 60, 120) = "out/trace.60-120.json". Range-
// partitioned campaigns use it so concurrent ranges writing the same
// configured artifact path never clobber each other.
func RangePath(path string, lo, hi int) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.%d-%d%s", path[:len(path)-len(ext)], lo, hi, ext)
}
