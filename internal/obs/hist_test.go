package obs

import (
	"math"
	"strings"
	"testing"
)

func TestBucketOfEdges(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-1, 0},
		{math.NaN(), 0},
		{math.Ldexp(1, histMinExp-5), 1},  // below the first bucket clamps up
		{math.Ldexp(1, histMinExp), 1},    // 2^histMinExp: first bucket's lower bound
		{math.Ldexp(0.75, histMinExp), 1}, // below the first bucket clamps up
		{1, 1 - histMinExp},               // [0.5, 1) boundary: 1 starts the next bucket
		{0.75, -histMinExp},
		{math.MaxFloat64, histBuckets - 1}, // above the top clamps down
		{math.Inf(1), histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketRepInsideBucket(t *testing.T) {
	if bucketRep(0) != 0 {
		t.Errorf("zero-bucket rep = %g", bucketRep(0))
	}
	for b := 1; b < histBuckets; b++ {
		lo := math.Ldexp(1, histMinExp+b-1)
		hi := math.Ldexp(1, histMinExp+b)
		if rep := bucketRep(b); rep < lo || rep >= hi {
			t.Errorf("bucket %d rep %g outside [%g, %g)", b, rep, lo, hi)
		}
		if bucketOf(bucketRep(b)) != b {
			t.Errorf("bucket %d rep %g maps to bucket %d", b, bucketRep(b), bucketOf(bucketRep(b)))
		}
	}
}

func TestQuantileAndMean(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	// 90 observations near 1µs, 10 near 1000µs: p50/p90 land in the small
	// bucket, p99 in the large one.
	for i := 0; i < 90; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	small, large := bucketRep(bucketOf(1.5)), bucketRep(bucketOf(1000))
	if got := h.Quantile(0.5); got != small {
		t.Errorf("p50 = %g, want %g", got, small)
	}
	if got := h.Quantile(0.9); got != small {
		t.Errorf("p90 = %g, want %g (90th observation is still small)", got, small)
	}
	if got := h.Quantile(0.99); got != large {
		t.Errorf("p99 = %g, want %g", got, large)
	}
	if got := h.Quantile(0); got != small {
		t.Errorf("q=0 clamps to first observation, got %g", got)
	}
	if got := h.Quantile(1); got != large {
		t.Errorf("q=1 = %g, want %g", got, large)
	}
	wantMean := (90*small + 10*large) / 100
	if got := h.Mean(); math.Abs(got-wantMean) > 1e-9 {
		t.Errorf("mean = %g, want %g", got, wantMean)
	}
}

func TestMergeMatchesCombinedObservation(t *testing.T) {
	var a, b, all Hist
	vals := []float64{0, 0.001, 1, 2, 4, 1024, 1e9}
	for i, v := range vals {
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	a.Merge(&b)
	if a != all {
		t.Errorf("merged histogram differs from direct observation:\n a  %+v\n all %+v", a, all)
	}
	a.Reset()
	if a.N() != 0 || a.Quantile(0.5) != 0 {
		t.Errorf("reset histogram not empty: %+v", a)
	}
}

func TestSummaryFormat(t *testing.T) {
	var h Hist
	if h.Summary() != "n=0" {
		t.Errorf("empty summary = %q", h.Summary())
	}
	h.Observe(3)
	s := h.Summary()
	for _, want := range []string{"n=1", "p50=", "p90=", "p99=", "µs"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestSimHistsWriteAndMerge(t *testing.T) {
	var a, b SimHists
	a.RecvWait.Observe(1)
	b.MsgLatency.Observe(2)
	b.LinkDelay.Observe(3)
	b.WindowStall.Observe(4)
	a.Merge(&b)
	var sb strings.Builder
	a.Write(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("Write produced %d lines:\n%s", len(lines), out)
	}
	for i, name := range []string{"recv_wait", "msg_latency", "link_delay", "window_stall"} {
		if !strings.HasPrefix(lines[i], name) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], name)
		}
		if !strings.Contains(lines[i], "n=1") {
			t.Errorf("line %d = %q, want one observation", i, lines[i])
		}
	}
	a.Reset()
	if a.RecvWait.N() != 0 || a.WindowStall.N() != 0 {
		t.Error("Reset left observations behind")
	}
}
