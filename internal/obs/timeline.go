package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// This file renders a recording as Chrome trace-event JSON, the format
// ui.perfetto.dev (and chrome://tracing) loads directly. The object form
// {"traceEvents": [...]} is used so downstream tooling can schema-check the
// file. Three process groups organise the tracks:
//
//	pid 1 "ranks":  one thread per rank, complete ("X") events for every
//	                compute/send/recv/collective span
//	pid 2 "links":  one thread per interconnect link that saw traffic,
//	                occupancy events with the queueing delay in args
//	pid 3 "shards": one thread per shard of a parallel run, one event per
//	                lookahead window with events-run and heap depth in args;
//	                zero-event windows are flagged as stalls
//
// Simulated time is already in µs — the trace-event "ts" unit — so
// timestamps pass through unscaled. All event ordering is content-derived
// (see the Recorder list methods), so the file is byte-identical for any
// worker or shard count; shard tracks exist only when windows were
// recorded and inherently depend on the shard count.

// Trace-event process ids per track family.
const (
	pidRanks  = 1
	pidLinks  = 2
	pidShards = 3
)

// TimelineOptions customises WriteTimeline.
type TimelineOptions struct {
	// LinkName labels link tracks (e.g. topo.Interconnect.LinkName);
	// nil falls back to "link<i>".
	LinkName func(link int) string
}

// WriteTimeline renders the recording as Chrome trace-event JSON.
func WriteTimeline(w io.Writer, r *Recorder, opt TimelineOptions) error {
	bw := bufio.NewWriter(w)
	e := &traceWriter{w: bw}
	bw.WriteString("{\"traceEvents\":[")

	spans := r.SpanList()
	if len(spans) > 0 {
		e.meta("process_name", pidRanks, 0, "name", `"ranks"`)
		seen := int32(-1)
		for i := range spans {
			if spans[i].Rank != seen {
				seen = spans[i].Rank
				e.meta("thread_name", pidRanks, int(seen), "name", strconv.Quote(fmt.Sprintf("rank %d", seen)))
			}
		}
		for i := range spans {
			s := &spans[i]
			args := ""
			switch s.Kind {
			case SpanSend, SpanRecv:
				args = fmt.Sprintf(`{"peer":%d,"bytes":%d}`, s.Peer, s.Bytes)
			case SpanAllReduce, SpanBcast:
				args = fmt.Sprintf(`{"bytes":%d}`, s.Bytes)
			}
			e.complete(SpanName(s.Kind), "rank", pidRanks, int(s.Rank), s.Start, s.End-s.Start, args)
		}
	}

	links := r.LinkList()
	if len(links) > 0 {
		e.meta("process_name", pidLinks, 0, "name", `"links"`)
		// One thread per distinct link, ordered by link index.
		ids := make([]int32, 0, 8)
		last := int32(-1)
		for i := range links {
			if links[i].Link != last {
				ids = append(ids, links[i].Link)
				last = links[i].Link
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		ids = dedupInt32(ids)
		tidOf := make(map[int32]int, len(ids))
		for tid, id := range ids {
			tidOf[id] = tid
			name := fmt.Sprintf("link%d", id)
			if opt.LinkName != nil {
				name = opt.LinkName(int(id))
			}
			e.meta("thread_name", pidLinks, tid, "name", encodeJSONString(name))
		}
		for i := range links {
			l := &links[i]
			e.complete("xfer", "link", pidLinks, tidOf[l.Link], l.Start, l.Dur,
				fmt.Sprintf(`{"wait":%s}`, fmtG(l.Wait)))
		}
	}

	windows := r.WindowList()
	if len(windows) > 0 {
		e.meta("process_name", pidShards, 0, "name", `"shards"`)
		maxShard := int32(0)
		for i := range windows {
			if windows[i].Shard > maxShard {
				maxShard = windows[i].Shard
			}
		}
		for s := int32(0); s <= maxShard; s++ {
			e.meta("thread_name", pidShards, int(s), "name", strconv.Quote(fmt.Sprintf("shard %d", s)))
		}
		for i := range windows {
			wv := &windows[i]
			name := fmt.Sprintf("window %d", wv.Index)
			if wv.Events == 0 {
				name = fmt.Sprintf("stall %d", wv.Index)
			}
			e.complete(name, "window", pidShards, int(wv.Shard), wv.Start, wv.End-wv.Start,
				fmt.Sprintf(`{"events":%d,"pending":%d}`, wv.Events, wv.Pending))
		}
	}

	bw.WriteString("]}\n")
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// traceWriter emits trace events with the separator bookkeeping.
type traceWriter struct {
	w     *bufio.Writer
	first bool
	err   error
}

func (e *traceWriter) sep() {
	if !e.first {
		e.first = true
		return
	}
	e.w.WriteByte(',')
}

// meta emits a metadata ("M") event; val must be pre-encoded JSON.
func (e *traceWriter) meta(name string, pid, tid int, key, val string) {
	e.sep()
	_, err := fmt.Fprintf(e.w, "\n{\"name\":%q,\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{%q:%s}}",
		name, pid, tid, key, val)
	if err != nil && e.err == nil {
		e.err = err
	}
}

// complete emits a complete ("X") event; args must be pre-encoded JSON or
// empty.
func (e *traceWriter) complete(name, cat string, pid, tid int, ts, dur float64, args string) {
	e.sep()
	e.w.WriteString("\n{\"name\":")
	e.w.WriteString(encodeJSONString(name))
	fmt.Fprintf(e.w, ",\"cat\":%q,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d",
		cat, fmtG(ts), fmtG(dur), pid, tid)
	if args != "" {
		e.w.WriteString(",\"args\":")
		e.w.WriteString(args)
	}
	_, err := e.w.WriteString("}")
	if err != nil && e.err == nil {
		e.err = err
	}
}

// encodeJSONString encodes an arbitrary string as a JSON string literal.
func encodeJSONString(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return `"?"`
	}
	return string(b)
}

// dedupInt32 removes adjacent duplicates from a sorted slice.
func dedupInt32(s []int32) []int32 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
