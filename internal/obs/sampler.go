package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// This file renders a recording as a sampled CSV time series: the
// instantaneous state of the simulation at t = 0, Δt, 2Δt, … Sampling is
// post-processing over the recorded streams, not a hot-path hook — the
// simulator pays nothing extra for it beyond recording the streams
// themselves. Counts come from a merged delta walk (every span, message and
// link event contributes a +1/−1 edge), so a sample costs O(log) amortised
// rather than a scan, and the interval-summed link busy time accumulates in
// the sorted link-event order, keeping the floating-point sums — and the
// file bytes — identical for every worker and shard count.
//
// Per-shard event-heap depth is deliberately absent here: it is only
// well-defined at window barriers, where the Recorder already captures it
// (WindowEvent.Pending, exported on the timeline's shard tracks).

// sampleCols are the delta-counted columns of the CSV, in output order.
const (
	colCompute = iota
	colSend
	colRecv
	colColl
	colDone
	colMsgs
	colRdv
	colLinks
	numCols
)

// sampleHeader is the CSV header line.
const sampleHeader = "t_us,ranks_compute,ranks_send,ranks_recv,ranks_coll,ranks_done,msgs_inflight,rdv_inflight,links_busy,link_busy_us"

// sampleDelta is one +1/−1 edge of a counted quantity.
type sampleDelta struct {
	t   float64
	col int32
	d   int32
}

// spanCol maps a span kind to its rank-state column.
func spanCol(kind uint8) int32 {
	switch kind {
	case SpanSend:
		return colSend
	case SpanRecv:
		return colRecv
	case SpanAllReduce, SpanBcast, SpanBarrier:
		return colColl
	}
	return colCompute
}

// WriteSamples renders the recording as a CSV time series sampled every Δt
// µs of simulated time, from 0 through the first sample at or past the end
// of the recording. A sample reports the state at that instant (a span
// ending exactly at the sample time has ended); link_busy_us is the total
// link occupancy inside the preceding interval, summed over links.
func WriteSamples(w io.Writer, r *Recorder, every float64) error {
	if every <= 0 {
		return fmt.Errorf("obs: sample interval %v must be positive", every)
	}
	spans := r.SpanList()
	msgs := r.MsgList()
	links := r.LinkList()

	var deltas []sampleDelta
	add := func(t float64, col, d int32) {
		deltas = append(deltas, sampleDelta{t: t, col: col, d: d})
	}
	// Rank-state edges, plus one "done" edge per rank at its last span end.
	lastEnd := make([]float64, r.Ranks())
	for i := range spans {
		s := &spans[i]
		add(s.Start, spanCol(s.Kind), 1)
		add(s.End, spanCol(s.Kind), -1)
		if s.End > lastEnd[s.Rank] {
			lastEnd[s.Rank] = s.End
		}
	}
	for _, t := range lastEnd {
		add(t, colDone, 1)
	}
	for i := range msgs {
		m := &msgs[i]
		add(m.Send, colMsgs, 1)
		add(m.Ready, colMsgs, -1)
		if m.Rdv {
			add(m.Send, colRdv, 1)
			add(m.Ready, colRdv, -1)
		}
	}
	for i := range links {
		l := &links[i]
		add(l.Start, colLinks, 1)
		add(l.Start+l.Dur, colLinks, -1)
	}
	sort.Slice(deltas, func(i, j int) bool {
		a, b := &deltas[i], &deltas[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.d < b.d
	})

	var end float64
	for i := range deltas {
		if deltas[i].t > end {
			end = deltas[i].t
		}
	}
	steps := int(end / every)
	if float64(steps)*every < end {
		steps++
	}

	bw := bufio.NewWriter(w)
	bw.WriteString(sampleHeader)
	bw.WriteByte('\n')
	var counts [numCols]int64
	next := 0
	li := 0 // link events with Start < t, candidates for interval busy time
	for step := 0; step <= steps; step++ {
		t := float64(step) * every
		for next < len(deltas) && deltas[next].t <= t {
			counts[deltas[next].col] += int64(deltas[next].d)
			next++
		}
		// Link occupancy inside (t−Δt, t], clipped per event and summed in
		// sorted order. Events are sorted by Start, so everything relevant
		// to this interval starts before t; li skips events that ended
		// before the interval for good once the window passes them.
		lo := t - every
		var busy float64
		for li < len(links) && links[li].Start+links[li].Dur <= lo {
			li++
		}
		for j := li; j < len(links) && links[j].Start <= t; j++ {
			s, e := links[j].Start, links[j].Start+links[j].Dur
			if s < lo {
				s = lo
			}
			if e > t {
				e = t
			}
			if e > s {
				busy += e - s
			}
		}
		bw.WriteString(strconv.FormatFloat(t, 'g', -1, 64))
		for _, c := range counts {
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatInt(c, 10))
		}
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatFloat(busy, 'g', -1, 64))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
