// Four-point stencil kernel: LU applies a stencil computation between its
// two sweeps in each iteration (Tnonwavefront in the plug-and-play model,
// paper Table 3); it is also a minimal example of a non-wavefront halo
// exchange for the examples and tests.
package sweep

import (
	"fmt"
	"sync"

	"repro/internal/grid"
)

// StencilProblem is a four-point (x-y plane) Jacobi stencil over a 3-D
// field: out[c] = w0·in[c] + wn·(in[W] + in[E] + in[N] + in[S]), with
// missing neighbours treated as zero.
type StencilProblem struct {
	Grid   grid.Grid
	W0, Wn float64
	In     []float64
}

// NewStencilProblem builds a stencil problem over a deterministic field.
func NewStencilProblem(g grid.Grid) *StencilProblem {
	p := &StencilProblem{Grid: g, W0: 0.6, Wn: 0.1, In: make([]float64, g.Cells())}
	for c := range p.In {
		p.In[c] = float64(c%97) * 0.013
	}
	return p
}

func (p *StencilProblem) idx(i, j, k int) int {
	return (k*p.Grid.Ny+j)*p.Grid.Nx + i
}

// ApplySequential computes the stencil over the whole grid.
func (p *StencilProblem) ApplySequential() []float64 {
	g := p.Grid
	out := make([]float64, g.Cells())
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				s := p.W0 * p.In[p.idx(i, j, k)]
				if i > 0 {
					s += p.Wn * p.In[p.idx(i-1, j, k)]
				}
				if i < g.Nx-1 {
					s += p.Wn * p.In[p.idx(i+1, j, k)]
				}
				if j > 0 {
					s += p.Wn * p.In[p.idx(i, j-1, k)]
				}
				if j < g.Ny-1 {
					s += p.Wn * p.In[p.idx(i, j+1, k)]
				}
				out[p.idx(i, j, k)] = s
			}
		}
	}
	return out
}

// ApplyParallel computes the stencil with an m × n worker grid and halo
// exchange over channels. Unlike the wavefront kernels there is no
// pipeline: every worker exchanges halos with all neighbours, then
// computes. The result equals ApplySequential exactly.
func (p *StencilProblem) ApplyParallel(dec grid.Decomposition) ([]float64, error) {
	if dec.Grid != p.Grid {
		return nil, fmt.Errorf("sweep: decomposition grid %v does not match problem grid %v", dec.Grid, p.Grid)
	}
	g := p.Grid
	blks := blocks(dec)
	type edgeKey struct{ from, to int }
	chans := make(map[edgeKey]chan []float64)
	for r := 0; r < dec.P(); r++ {
		c := dec.CoordOf(r)
		for _, nb := range []grid.Coord{
			{I: c.I + 1, J: c.J}, {I: c.I - 1, J: c.J},
			{I: c.I, J: c.J + 1}, {I: c.I, J: c.J - 1},
		} {
			if dec.Contains(nb) {
				chans[edgeKey{r, dec.Rank(nb)}] = make(chan []float64, 1)
			}
		}
	}
	out := make([]float64, g.Cells())
	var wg sync.WaitGroup

	worker := func(rank int) {
		defer wg.Done()
		b := blks[rank]
		c := dec.CoordOf(rank)
		nxL, nyL := b.nx(), b.ny()

		// Gather the four halo faces: [k][j] for x faces, [k][i] for y.
		face := func(iFixed int) []float64 {
			f := make([]float64, g.Nz*nyL)
			for k := 0; k < g.Nz; k++ {
				for j := b.y0; j < b.y1; j++ {
					f[k*nyL+(j-b.y0)] = p.In[p.idx(iFixed, j, k)]
				}
			}
			return f
		}
		faceY := func(jFixed int) []float64 {
			f := make([]float64, g.Nz*nxL)
			for k := 0; k < g.Nz; k++ {
				for i := b.x0; i < b.x1; i++ {
					f[k*nxL+(i-b.x0)] = p.In[p.idx(i, jFixed, k)]
				}
			}
			return f
		}
		type nbInfo struct {
			coord grid.Coord
			send  []float64
		}
		nbs := []nbInfo{
			{grid.Coord{I: c.I - 1, J: c.J}, face(b.x0)},
			{grid.Coord{I: c.I + 1, J: c.J}, face(b.x1 - 1)},
			{grid.Coord{I: c.I, J: c.J - 1}, faceY(b.y0)},
			{grid.Coord{I: c.I, J: c.J + 1}, faceY(b.y1 - 1)},
		}
		for _, nb := range nbs {
			if dec.Contains(nb.coord) {
				chans[edgeKey{rank, dec.Rank(nb.coord)}] <- nb.send
			}
		}
		halo := make([][]float64, 4)
		for x, nb := range nbs {
			if dec.Contains(nb.coord) {
				halo[x] = <-chans[edgeKey{dec.Rank(nb.coord), rank}]
			}
		}
		haloW, haloE, haloN, haloS := halo[0], halo[1], halo[2], halo[3]

		for k := 0; k < g.Nz; k++ {
			for j := b.y0; j < b.y1; j++ {
				for i := b.x0; i < b.x1; i++ {
					s := p.W0 * p.In[p.idx(i, j, k)]
					switch {
					case i > b.x0:
						s += p.Wn * p.In[p.idx(i-1, j, k)]
					case haloW != nil:
						s += p.Wn * haloW[k*nyL+(j-b.y0)]
					}
					switch {
					case i < b.x1-1:
						s += p.Wn * p.In[p.idx(i+1, j, k)]
					case haloE != nil:
						s += p.Wn * haloE[k*nyL+(j-b.y0)]
					}
					switch {
					case j > b.y0:
						s += p.Wn * p.In[p.idx(i, j-1, k)]
					case haloN != nil:
						s += p.Wn * haloN[k*nxL+(i-b.x0)]
					}
					switch {
					case j < b.y1-1:
						s += p.Wn * p.In[p.idx(i, j+1, k)]
					case haloS != nil:
						s += p.Wn * haloS[k*nxL+(i-b.x0)]
					}
					out[p.idx(i, j, k)] = s
				}
			}
		}
	}

	for r := 0; r < dec.P(); r++ {
		wg.Add(1)
		go worker(r)
	}
	wg.Wait()
	return out, nil
}
