// Multi-energy-group transport: the sweep-structure re-design of paper
// Section 5.5 as executable code. A production particle transport
// simulation solves many energy groups. The conventional ("sequential
// groups") design performs all octant sweeps for group 1, then all for
// group 2, and so on — paying the pipeline fill for every group. The
// re-designed ("pipelined groups") schedule performs each sweep pair for
// all groups back to back, so wavefronts of consecutive groups follow each
// other through the processor array and the fill is paid only once per
// corner change.
//
// Both schedules compute identical per-group fluxes (verified in tests);
// only the traversal order — and therefore the parallel pipeline
// behaviour — differs.
package sweep

import (
	"fmt"

	"repro/internal/grid"
)

// MultiGroupProblem is a set of independent transport problems (energy
// groups) over a common grid and quadrature.
type MultiGroupProblem struct {
	Grid   grid.Grid
	Groups []*TransportProblem
}

// NewMultiGroupProblem builds nGroups transport problems whose sources
// differ deterministically per group.
func NewMultiGroupProblem(g grid.Grid, angles, nGroups int) *MultiGroupProblem {
	mp := &MultiGroupProblem{Grid: g, Groups: make([]*TransportProblem, nGroups)}
	for gi := range mp.Groups {
		p := NewTransportProblem(g, angles)
		scale := 1 + 0.1*float64(gi)
		for c := range p.Source {
			p.Source[c] *= scale
		}
		p.Sigma = 1 + 0.05*float64(gi)
		mp.Groups[gi] = p
	}
	return mp
}

// SolveSequentialGroups runs every octant sweep of group 0, then group 1,
// etc. (the conventional design), returning per-group fluxes.
func (mp *MultiGroupProblem) SolveSequentialGroups(octants []Octant) [][]float64 {
	out := make([][]float64, len(mp.Groups))
	for gi, p := range mp.Groups {
		out[gi] = p.SolveSequential(octants)
	}
	return out
}

// GroupSweep identifies one (octant, group) sweep in a schedule.
type GroupSweep struct {
	Octant Octant
	Group  int
}

// SequentialGroupSchedule returns the conventional order: for each group,
// all octants.
func SequentialGroupSchedule(octants []Octant, nGroups int) []GroupSweep {
	out := make([]GroupSweep, 0, len(octants)*nGroups)
	for g := 0; g < nGroups; g++ {
		for _, oct := range octants {
			out = append(out, GroupSweep{Octant: oct, Group: g})
		}
	}
	return out
}

// PipelinedGroupSchedule returns the Section 5.5 re-design: for each
// octant pair sharing an origin corner, all groups' sweeps back to back.
// Octants are grouped into runs with equal corners, preserving order.
func PipelinedGroupSchedule(octants []Octant, nGroups int) []GroupSweep {
	var out []GroupSweep
	for i := 0; i < len(octants); {
		j := i
		for j < len(octants) && octants[j].Corner == octants[i].Corner {
			j++
		}
		// Runs of same-corner octants: interleave all groups.
		for g := 0; g < nGroups; g++ {
			for k := i; k < j; k++ {
				out = append(out, GroupSweep{Octant: octants[k], Group: g})
			}
		}
		i = j
	}
	return out
}

// SolveSchedule executes an arbitrary (octant, group) schedule on the
// parallel worker grid and returns per-group fluxes. The result for each
// group is bit-identical to that group's SolveSequential provided the
// schedule contains each group's octants in the same relative order.
func (mp *MultiGroupProblem) SolveSchedule(dec grid.Decomposition, htile int, schedule []GroupSweep) ([][]float64, error) {
	if dec.Grid != mp.Grid {
		return nil, fmt.Errorf("sweep: decomposition grid %v does not match problem grid %v", dec.Grid, mp.Grid)
	}
	if htile <= 0 {
		return nil, fmt.Errorf("sweep: invalid tile height %d", htile)
	}
	for _, gs := range schedule {
		if gs.Group < 0 || gs.Group >= len(mp.Groups) {
			return nil, fmt.Errorf("sweep: schedule references group %d of %d", gs.Group, len(mp.Groups))
		}
	}
	g := mp.Grid
	nGroups := len(mp.Groups)
	nA := len(mp.Groups[0].Angles)
	tiles := (g.Nz + htile - 1) / htile
	blks := blocks(dec)

	type edgeKey struct{ from, to int }
	chans := make(map[edgeKey]chan []float64)
	for r := 0; r < dec.P(); r++ {
		c := dec.CoordOf(r)
		for _, nb := range []grid.Coord{
			{I: c.I + 1, J: c.J}, {I: c.I - 1, J: c.J},
			{I: c.I, J: c.J + 1}, {I: c.I, J: c.J - 1},
		} {
			if dec.Contains(nb) {
				chans[edgeKey{r, dec.Rank(nb)}] = make(chan []float64, tiles+1)
			}
		}
	}

	flux := make([][]float64, nGroups)
	for gi := range flux {
		flux[gi] = make([]float64, g.Cells())
	}

	done := make(chan struct{}, dec.P())
	worker := func(rank int) {
		defer func() { done <- struct{}{} }()
		b := blks[rank]
		c := dec.CoordOf(rank)
		nxL, nyL := b.nx(), b.ny()
		scratch := make([]float64, htile*nyL*nxL)
		// Per-group z inflow planes, zeroed at each group's new octant.
		zPlanes := make([][]float64, nGroups)
		for gi := range zPlanes {
			zPlanes[gi] = make([]float64, nA*nyL*nxL)
		}

		for _, gs := range schedule {
			oct := gs.Octant
			p := mp.Groups[gs.Group]
			di, dj := oct.Corner.Step()
			west := grid.Coord{I: c.I - di, J: c.J}
			north := grid.Coord{I: c.I, J: c.J - dj}
			east := grid.Coord{I: c.I + di, J: c.J}
			south := grid.Coord{I: c.I, J: c.J + dj}
			zp := zPlanes[gs.Group]
			for i := range zp {
				zp[i] = 0
			}
			for t := 0; t < tiles; t++ {
				var k0, k1 int
				if oct.ZUp {
					k0 = t * htile
					k1 = min(k0+htile, g.Nz)
				} else {
					k1 = g.Nz - t*htile
					k0 = maxInt(k1-htile, 0)
				}
				kh := k1 - k0
				var inX, inY []float64
				if dec.Contains(west) {
					inX = <-chans[edgeKey{dec.Rank(west), rank}]
				}
				if dec.Contains(north) {
					inY = <-chans[edgeKey{dec.Rank(north), rank}]
				}
				outX := make([]float64, nA*kh*nyL)
				outY := make([]float64, nA*kh*nxL)
				p.computeTile(flux[gs.Group], scratch, zp, oct, b, k0, k1, inX, inY, outX, outY)
				if dec.Contains(east) {
					chans[edgeKey{rank, dec.Rank(east)}] <- outX
				}
				if dec.Contains(south) {
					chans[edgeKey{rank, dec.Rank(south)}] <- outY
				}
			}
		}
	}

	for r := 0; r < dec.P(); r++ {
		go worker(r)
	}
	for r := 0; r < dec.P(); r++ {
		<-done
	}
	return flux, nil
}
