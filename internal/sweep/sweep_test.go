package sweep

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

var benchmarkCorners = map[string][]grid.Corner{
	"LU":       {grid.NW, grid.SE},
	"Sweep3D":  {grid.SE, grid.SE, grid.NE, grid.NE, grid.SW, grid.SW, grid.NW, grid.NW},
	"Chimaera": {grid.SE, grid.SE, grid.NE, grid.SW, grid.NE, grid.SW, grid.NW, grid.NW},
}

func TestTransportParallelMatchesSequential(t *testing.T) {
	g := grid.NewGrid(20, 18, 12)
	p := NewTransportProblem(g, 6)
	for name, corners := range benchmarkCorners {
		octs := Octants(corners)
		ref := p.SolveSequential(octs)
		for _, shape := range [][2]int{{1, 1}, {4, 3}, {2, 5}, {5, 6}} {
			dec := grid.MustDecompose(g, shape[0], shape[1])
			for _, h := range []int{1, 2, 3, 5, 12} {
				got, err := p.SolveParallel(dec, h, octs)
				if err != nil {
					t.Fatalf("%s %v h=%d: %v", name, shape, h, err)
				}
				if d := maxAbsDiff(ref, got); d != 0 {
					t.Errorf("%s %v h=%d: max diff %g, want exact", name, shape, h, d)
				}
			}
		}
	}
}

func TestTransportRandomizedProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 25,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Intn(12) + 2) // nx
			vals[1] = reflect.ValueOf(r.Intn(12) + 2) // ny
			vals[2] = reflect.ValueOf(r.Intn(10) + 1) // nz
			vals[3] = reflect.ValueOf(r.Intn(4) + 1)  // n
			vals[4] = reflect.ValueOf(r.Intn(4) + 1)  // m
			vals[5] = reflect.ValueOf(r.Intn(4) + 1)  // htile
			vals[6] = reflect.ValueOf(r.Intn(3) + 1)  // angles
		},
	}
	prop := func(nx, ny, nz, n, m, htile, angles int) bool {
		g := grid.NewGrid(nx, ny, nz)
		if n > nx || m > ny {
			return true // skip degenerate shapes with empty blocks
		}
		p := NewTransportProblem(g, angles)
		octs := Octants([]grid.Corner{grid.NW, grid.SE, grid.NE, grid.SW})
		ref := p.SolveSequential(octs)
		got, err := p.SolveParallel(grid.MustDecompose(g, n, m), htile, octs)
		if err != nil {
			return false
		}
		return maxAbsDiff(ref, got) == 0
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestTransportFluxIsPositiveAndBounded(t *testing.T) {
	g := grid.NewGrid(12, 12, 12)
	p := NewTransportProblem(g, 4)
	flux := p.SolveSequential(Octants(benchmarkCorners["Sweep3D"]))
	for c, v := range flux {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("flux[%d] = %v", c, v)
		}
	}
	// With sigma ≥ 1 and bounded source, psi per sweep is bounded by
	// max(source)·(1+a)/sigma-ish; just assert a generous cap.
	for c, v := range flux {
		if v > 1e6 {
			t.Fatalf("flux[%d] = %v implausibly large", c, v)
		}
	}
}

func TestTransportErrors(t *testing.T) {
	g := grid.NewGrid(8, 8, 8)
	p := NewTransportProblem(g, 2)
	octs := Octants(benchmarkCorners["LU"])
	if _, err := p.SolveParallel(grid.MustDecompose(grid.Cube(4), 2, 2), 1, octs); err == nil {
		t.Error("mismatched grid accepted")
	}
	if _, err := p.SolveParallel(grid.MustDecompose(g, 2, 2), 0, octs); err == nil {
		t.Error("zero tile height accepted")
	}
}

func TestOctantsAlternateZ(t *testing.T) {
	octs := Octants([]grid.Corner{grid.SE, grid.SE, grid.NE, grid.NE})
	if !octs[0].ZUp || octs[1].ZUp || !octs[2].ZUp || octs[3].ZUp {
		t.Errorf("octants = %+v", octs)
	}
}

func TestSSORParallelMatchesSequential(t *testing.T) {
	g := grid.NewGrid(17, 13, 9)
	p := NewSSORProblem(g)
	ref := p.SolveSequential()
	for _, shape := range [][2]int{{1, 1}, {2, 2}, {4, 3}, {3, 5}} {
		got, err := p.SolveParallel(grid.MustDecompose(g, shape[0], shape[1]))
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(ref, got); d != 0 {
			t.Errorf("shape %v: max diff %g", shape, d)
		}
	}
}

func TestSSORGridMismatch(t *testing.T) {
	p := NewSSORProblem(grid.Cube(8))
	if _, err := p.SolveParallel(grid.MustDecompose(grid.Cube(4), 2, 2)); err == nil {
		t.Error("mismatched grid accepted")
	}
}

func TestSSORValuesFinite(t *testing.T) {
	p := NewSSORProblem(grid.Cube(10))
	v := p.SolveSequential()
	for c, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("v[%d] = %v", c, x)
		}
	}
}

func TestStencilParallelMatchesSequential(t *testing.T) {
	g := grid.NewGrid(14, 11, 5)
	p := NewStencilProblem(g)
	ref := p.ApplySequential()
	for _, shape := range [][2]int{{1, 1}, {2, 2}, {7, 1}, {2, 5}} {
		got, err := p.ApplyParallel(grid.MustDecompose(g, shape[0], shape[1]))
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(ref, got); d != 0 {
			t.Errorf("shape %v: max diff %g", shape, d)
		}
	}
	if _, err := p.ApplyParallel(grid.MustDecompose(grid.Cube(4), 2, 2)); err == nil {
		t.Error("mismatched grid accepted")
	}
}

func TestStencilRandomizedProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 25,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Intn(10) + 2)
			vals[1] = reflect.ValueOf(r.Intn(10) + 2)
			vals[2] = reflect.ValueOf(r.Intn(5) + 1)
			vals[3] = reflect.ValueOf(r.Intn(3) + 1)
			vals[4] = reflect.ValueOf(r.Intn(3) + 1)
		},
	}
	prop := func(nx, ny, nz, n, m int) bool {
		if n > nx || m > ny {
			return true
		}
		g := grid.NewGrid(nx, ny, nz)
		p := NewStencilProblem(g)
		ref := p.ApplySequential()
		got, err := p.ApplyParallel(grid.MustDecompose(g, n, m))
		return err == nil && maxAbsDiff(ref, got) == 0
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestCalibrationsArePositive(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based calibration")
	}
	if wg := CalibrateTransportWg(2, 1); wg <= 0 {
		t.Errorf("transport Wg = %v", wg)
	}
	wg, wgPre := CalibrateSSORWg(1)
	if wg <= 0 || wgPre <= 0 {
		t.Errorf("ssor calibration = %v, %v", wg, wgPre)
	}
	if wg := CalibrateParallel(2); wg <= 0 {
		t.Errorf("parallel Wg = %v", wg)
	}
}

func TestBlocksPartitionExactly(t *testing.T) {
	g := grid.NewGrid(23, 17, 4)
	dec := grid.MustDecompose(g, 5, 3)
	bs := blocks(dec)
	covered := make([]int, g.Nx*g.Ny)
	for _, b := range bs {
		if b.nx() <= 0 || b.ny() <= 0 {
			t.Fatalf("empty block %+v", b)
		}
		for j := b.y0; j < b.y1; j++ {
			for i := b.x0; i < b.x1; i++ {
				covered[j*g.Nx+i]++
			}
		}
	}
	for c, n := range covered {
		if n != 1 {
			t.Fatalf("cell %d covered %d times", c, n)
		}
	}
}

func TestDefaultAnglesWeightsSumToOne(t *testing.T) {
	for _, n := range []int{1, 4, 6, 10} {
		var sum float64
		for _, a := range DefaultAngles(n) {
			sum += a.Weight
			if a.Ax <= 0 || a.Ay <= 0 || a.Az <= 0 {
				t.Fatalf("non-positive coefficients: %+v", a)
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("weights sum = %v for n=%d", sum, n)
		}
	}
}
