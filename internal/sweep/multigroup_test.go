package sweep

import (
	"testing"

	"repro/internal/grid"
)

func TestPipelinedScheduleSolvesSameFluxes(t *testing.T) {
	g := grid.NewGrid(16, 14, 10)
	mp := NewMultiGroupProblem(g, 3, 4)
	octs := Octants([]grid.Corner{grid.SE, grid.SE, grid.NE, grid.NE, grid.SW, grid.SW, grid.NW, grid.NW})
	ref := mp.SolveSequentialGroups(octs)

	dec := grid.MustDecompose(g, 4, 2)
	for _, tc := range []struct {
		name     string
		schedule []GroupSweep
	}{
		{"sequential", SequentialGroupSchedule(octs, 4)},
		{"pipelined", PipelinedGroupSchedule(octs, 4)},
	} {
		got, err := mp.SolveSchedule(dec, 2, tc.schedule)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for gi := range ref {
			if d := maxAbsDiff(ref[gi], got[gi]); d != 0 {
				t.Errorf("%s: group %d max diff %g", tc.name, gi, d)
			}
		}
	}
}

func TestScheduleShapes(t *testing.T) {
	octs := Octants([]grid.Corner{grid.SE, grid.SE, grid.NE, grid.NE})
	seq := SequentialGroupSchedule(octs, 3)
	pip := PipelinedGroupSchedule(octs, 3)
	if len(seq) != 12 || len(pip) != 12 {
		t.Fatalf("lengths %d/%d", len(seq), len(pip))
	}
	// Sequential: group changes only after all octants.
	if seq[0].Group != 0 || seq[3].Group != 0 || seq[4].Group != 1 {
		t.Errorf("sequential schedule = %+v", seq[:5])
	}
	// Pipelined: the SE pair runs for all groups before NE appears.
	for i := 0; i < 6; i++ {
		if pip[i].Octant.Corner != grid.SE {
			t.Errorf("pipelined[%d] = %+v, want SE run first", i, pip[i])
		}
	}
	if pip[0].Group != 0 || pip[2].Group != 1 {
		t.Errorf("pipelined group order: %+v", pip[:4])
	}
	// Every (octant-index, group) pair appears exactly once in both.
	count := func(s []GroupSweep) map[GroupSweep]int {
		m := map[GroupSweep]int{}
		for _, gs := range s {
			m[gs]++
		}
		return m
	}
	for k, v := range count(seq) {
		if v != 1 {
			t.Errorf("sequential duplicates %+v", k)
		}
	}
	for k, v := range count(pip) {
		if v != 1 {
			t.Errorf("pipelined duplicates %+v", k)
		}
	}
}

func TestSolveScheduleErrors(t *testing.T) {
	g := grid.Cube(8)
	mp := NewMultiGroupProblem(g, 2, 2)
	octs := Octants([]grid.Corner{grid.NW})
	if _, err := mp.SolveSchedule(grid.MustDecompose(grid.Cube(4), 2, 2), 1,
		SequentialGroupSchedule(octs, 2)); err == nil {
		t.Error("mismatched grid accepted")
	}
	if _, err := mp.SolveSchedule(grid.MustDecompose(g, 2, 2), 0,
		SequentialGroupSchedule(octs, 2)); err == nil {
		t.Error("zero tile height accepted")
	}
	if _, err := mp.SolveSchedule(grid.MustDecompose(g, 2, 2), 1,
		[]GroupSweep{{Octant: octs[0], Group: 7}}); err == nil {
		t.Error("out-of-range group accepted")
	}
}

func TestGroupsDifferFromEachOther(t *testing.T) {
	// Distinct sources/sigmas per group must produce distinct fluxes,
	// otherwise the multi-group test is vacuous.
	g := grid.Cube(8)
	mp := NewMultiGroupProblem(g, 2, 3)
	octs := Octants([]grid.Corner{grid.NW, grid.SE})
	fluxes := mp.SolveSequentialGroups(octs)
	if maxAbsDiff(fluxes[0], fluxes[1]) == 0 || maxAbsDiff(fluxes[1], fluxes[2]) == 0 {
		t.Error("groups produced identical fluxes")
	}
}
