// Wg calibration: the plug-and-play model takes the per-cell computation
// times Wg and Wg,pre as measured inputs (paper Table 3). These helpers
// measure them from the real kernels on the host machine. The paper
// measures Wg with the application running on at least four cores so that
// the code path matches production; the analogue here is measuring during
// a parallel run with at least four workers.
package sweep

import (
	"runtime"
	"time"

	"repro/internal/grid"
)

// CalibrateTransportWg measures the host's per-cell computation time (all
// angles, one octant visit) of the transport kernel in µs, by timing
// repeated sequential octant sweeps over a small grid.
func CalibrateTransportWg(angles int, repeats int) float64 {
	g := grid.NewGrid(32, 32, 32)
	p := NewTransportProblem(g, angles)
	octs := Octants([]grid.Corner{grid.NW, grid.SE})
	// Warm up caches and the scheduler.
	p.SolveSequential(octs)
	start := time.Now()
	for r := 0; r < repeats; r++ {
		p.SolveSequential(octs)
	}
	elapsed := time.Since(start).Seconds() * 1e6 // µs
	visits := float64(repeats) * float64(g.Cells()) * float64(len(octs))
	return elapsed / visits
}

// CalibrateSSORWg measures the per-cell substitution time (Wg) and the
// per-cell pre-computation time (Wg,pre) of the SSOR kernel in µs.
func CalibrateSSORWg(repeats int) (wg, wgPre float64) {
	g := grid.NewGrid(32, 32, 32)
	p := NewSSORProblem(g)
	p.SolveSequential()
	start := time.Now()
	for r := 0; r < repeats; r++ {
		p.SolveSequential()
	}
	elapsed := time.Since(start).Seconds() * 1e6
	visits := float64(repeats) * float64(g.Cells()) * 2 // two sweeps
	wg = elapsed / visits

	// Pre-computation: the diagonal assembly alone.
	var sink float64
	start = time.Now()
	for r := 0; r < repeats; r++ {
		for k := 0; k < g.Nz; k++ {
			for j := 0; j < g.Ny; j++ {
				for i := 0; i < g.Nx; i++ {
					sink += p.diag(i, j, k)
				}
			}
		}
	}
	elapsed = time.Since(start).Seconds() * 1e6
	wgPre = elapsed / (float64(repeats) * float64(g.Cells()))
	runtime.KeepAlive(sink)
	return wg, wgPre
}

// CalibrateParallel measures per-cell transport time during a parallel run
// with at least four workers, matching the paper's measurement protocol
// (Section 4.3: Wg measured "when the application executes on at least
// four cores").
func CalibrateParallel(angles int) float64 {
	g := grid.NewGrid(32, 32, 32)
	p := NewTransportProblem(g, angles)
	dec := grid.MustDecompose(g, 2, 2)
	octs := Octants([]grid.Corner{grid.NW, grid.SE})
	if _, err := p.SolveParallel(dec, 4, octs); err != nil {
		panic(err)
	}
	start := time.Now()
	const repeats = 3
	for r := 0; r < repeats; r++ {
		if _, err := p.SolveParallel(dec, 4, octs); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start).Seconds() * 1e6
	// Four workers run concurrently; per-worker per-cell time is the wall
	// time divided by the cells each worker visited.
	visits := float64(repeats) * float64(g.Cells()) / float64(dec.P()) * float64(len(octs))
	return elapsed / visits
}
