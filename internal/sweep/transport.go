// Package sweep implements real, executable pipelined wavefront
// computations on 3-D grids: a discrete-ordinates particle transport
// kernel (Sweep3D/Chimaera-like), an SSOR forward/backward substitution
// kernel (LU-like), and a four-point stencil.
//
// Each kernel has a sequential reference implementation and a parallel
// implementation that runs an m × n grid of goroutine workers exchanging
// boundary planes over channels — the shared-memory analogue of the MPI
// codes the paper models. The parallel implementations are verified
// against the references in the tests, and their per-cell computation
// times calibrate the model's Wg inputs (paper Table 3 lists Wg as
// "measured").
package sweep

import (
	"fmt"
	"sync"

	"repro/internal/grid"
)

// AngleCoef holds the upwind coefficients and quadrature weight of one
// discrete ordinate (angle).
type AngleCoef struct {
	Ax, Ay, Az float64 // upwind coupling coefficients, all positive
	Weight     float64 // quadrature weight for the scalar flux
}

// DefaultAngles returns a simple level-symmetric-like quadrature with the
// given number of angles.
func DefaultAngles(n int) []AngleCoef {
	angles := make([]AngleCoef, n)
	for i := range angles {
		f := float64(i+1) / float64(n+1)
		angles[i] = AngleCoef{
			Ax:     0.3 + 0.4*f,
			Ay:     0.7 - 0.4*f,
			Az:     0.5,
			Weight: 1 / float64(n),
		}
	}
	return angles
}

// Octant is one sweep direction through the 3-D grid: a corner of the 2-D
// processor array (x-y direction signs) plus a z direction.
type Octant struct {
	Corner grid.Corner
	ZUp    bool // true: sweep k = 0 → Nz−1; false: top-down
}

// Octants returns the octant sequence corresponding to a 2-D corner
// sequence, alternating the z direction as transport codes do for the
// paired octants that share a corner.
func Octants(corners []grid.Corner) []Octant {
	out := make([]Octant, len(corners))
	for i, c := range corners {
		out[i] = Octant{Corner: c, ZUp: i%2 == 0}
	}
	return out
}

// dirOf returns the x and y direction signs of a sweep from the given
// corner: a sweep originating at NW = (1,1) travels in +x and +y.
func dirOf(c grid.Corner) (xUp, yUp bool) {
	switch c {
	case grid.NW:
		return true, true
	case grid.NE:
		return false, true
	case grid.SW:
		return true, false
	default: // SE
		return false, false
	}
}

// loopRange returns the iteration bounds over [lo, hi) for an ascending or
// descending traversal, for use as: for v := start; v != end; v += step.
func loopRange(lo, hi int, up bool) (start, end, step int) {
	if up {
		return lo, hi, 1
	}
	return hi - 1, lo - 1, -1
}

// TransportProblem is a single-group discrete-ordinates transport sweep
// problem on a regular orthogonal grid: for each octant and angle, the
// angular flux satisfies the upwind relation
//
//	psi[c] = (source[c] + ax·psi_x + ay·psi_y + az·psi_z) / (sigma + ax + ay + az)
//
// where psi_x, psi_y, psi_z are the upwind neighbour values (zero inflow at
// grid boundaries). The scalar flux accumulates weight·psi over angles and
// octants.
type TransportProblem struct {
	Grid   grid.Grid
	Angles []AngleCoef
	Sigma  float64
	Source []float64 // len Nx·Ny·Nz, row-major [k][j][i]
}

// NewTransportProblem builds a transport problem with a deterministic
// synthetic source field.
func NewTransportProblem(g grid.Grid, angles int) *TransportProblem {
	p := &TransportProblem{
		Grid:   g,
		Angles: DefaultAngles(angles),
		Sigma:  1.0,
		Source: make([]float64, g.Cells()),
	}
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				// A smooth, asymmetric source so that sweep-order bugs
				// change the answer.
				p.Source[p.idx(i, j, k)] = 1 + 0.01*float64(i) + 0.02*float64(j) + 0.005*float64(k)
			}
		}
	}
	return p
}

func (p *TransportProblem) idx(i, j, k int) int {
	return (k*p.Grid.Ny+j)*p.Grid.Nx + i
}

// SolveSequential performs the octant sweeps in order and returns the
// scalar flux field. It is the reference implementation.
func (p *TransportProblem) SolveSequential(octants []Octant) []float64 {
	g := p.Grid
	flux := make([]float64, g.Cells())
	psi := make([]float64, g.Cells())
	for _, oct := range octants {
		xUp, yUp := dirOf(oct.Corner)
		for a := range p.Angles {
			ang := p.Angles[a]
			den := p.Sigma + ang.Ax + ang.Ay + ang.Az
			ks, ke, kd := loopRange(0, g.Nz, oct.ZUp)
			js, je, jd := loopRange(0, g.Ny, yUp)
			is, ie, id := loopRange(0, g.Nx, xUp)
			for k := ks; k != ke; k += kd {
				for j := js; j != je; j += jd {
					for i := is; i != ie; i += id {
						var px, py, pz float64
						if iu := i - id; iu >= 0 && iu < g.Nx {
							px = psi[p.idx(iu, j, k)]
						}
						if ju := j - jd; ju >= 0 && ju < g.Ny {
							py = psi[p.idx(i, ju, k)]
						}
						if ku := k - kd; ku >= 0 && ku < g.Nz {
							pz = psi[p.idx(i, j, ku)]
						}
						v := (p.Source[p.idx(i, j, k)] + ang.Ax*px + ang.Ay*py + ang.Az*pz) / den
						psi[p.idx(i, j, k)] = v
						flux[p.idx(i, j, k)] += ang.Weight * v
					}
				}
			}
		}
	}
	return flux
}

// block is one worker's owned sub-domain.
type block struct {
	x0, x1, y0, y1 int // owned columns [x0,x1) and rows [y0,y1)
}

func (b block) nx() int { return b.x1 - b.x0 }
func (b block) ny() int { return b.y1 - b.y0 }

// blocks partitions the grid over the decomposition; remainders are spread
// so every worker owns a contiguous block.
func blocks(dec grid.Decomposition) []block {
	g := dec.Grid
	out := make([]block, dec.P())
	for r := range out {
		c := dec.CoordOf(r)
		out[r] = block{
			x0: (c.I - 1) * g.Nx / dec.N,
			x1: c.I * g.Nx / dec.N,
			y0: (c.J - 1) * g.Ny / dec.M,
			y1: c.J * g.Ny / dec.M,
		}
	}
	return out
}

// SolveParallel executes the same octant sweeps with an m × n grid of
// goroutine workers, each owning a block of columns × rows and the full z
// extent, exchanging per-tile boundary planes over channels exactly as the
// MPI codes do: receive west, receive north, compute tile, send east, send
// south (paper Figure 4). The result is bit-identical to SolveSequential.
func (p *TransportProblem) SolveParallel(dec grid.Decomposition, htile int, octants []Octant) ([]float64, error) {
	if dec.Grid != p.Grid {
		return nil, fmt.Errorf("sweep: decomposition grid %v does not match problem grid %v", dec.Grid, p.Grid)
	}
	if htile <= 0 {
		return nil, fmt.Errorf("sweep: invalid tile height %d", htile)
	}
	g := p.Grid
	nA := len(p.Angles)
	tiles := (g.Nz + htile - 1) / htile
	blks := blocks(dec)

	// One buffered channel per directed neighbour edge; sweeps are matched
	// by program order on both sides. Buffering a full stack keeps senders
	// from blocking, so no deadlock is possible.
	type edgeKey struct{ from, to int }
	chans := make(map[edgeKey]chan []float64)
	for r := 0; r < dec.P(); r++ {
		c := dec.CoordOf(r)
		for _, nb := range []grid.Coord{
			{I: c.I + 1, J: c.J}, {I: c.I - 1, J: c.J},
			{I: c.I, J: c.J + 1}, {I: c.I, J: c.J - 1},
		} {
			if dec.Contains(nb) {
				chans[edgeKey{r, dec.Rank(nb)}] = make(chan []float64, tiles+1)
			}
		}
	}

	flux := make([]float64, g.Cells()) // each worker writes only its block
	var wg sync.WaitGroup

	worker := func(rank int) {
		defer wg.Done()
		b := blks[rank]
		c := dec.CoordOf(rank)
		nxL, nyL := b.nx(), b.ny()
		scratch := make([]float64, htile*nyL*nxL) // per-angle tile values
		zPlane := make([]float64, nA*nyL*nxL)     // per-angle z inflow plane

		for _, oct := range octants {
			di, dj := oct.Corner.Step()
			west := grid.Coord{I: c.I - di, J: c.J}
			north := grid.Coord{I: c.I, J: c.J - dj}
			east := grid.Coord{I: c.I + di, J: c.J}
			south := grid.Coord{I: c.I, J: c.J + dj}
			// Zero z inflow at the grid boundary for each new octant.
			for i := range zPlane {
				zPlane[i] = 0
			}
			for t := 0; t < tiles; t++ {
				// Tile t counts from the octant's z entry face.
				var k0, k1 int
				if oct.ZUp {
					k0 = t * htile
					k1 = min(k0+htile, g.Nz)
				} else {
					k1 = g.Nz - t*htile
					k0 = maxInt(k1-htile, 0)
				}
				kh := k1 - k0
				var inX, inY []float64
				if dec.Contains(west) {
					inX = <-chans[edgeKey{dec.Rank(west), rank}]
				}
				if dec.Contains(north) {
					inY = <-chans[edgeKey{dec.Rank(north), rank}]
				}
				outX := make([]float64, nA*kh*nyL)
				outY := make([]float64, nA*kh*nxL)
				p.computeTile(flux, scratch, zPlane, oct, b, k0, k1, inX, inY, outX, outY)
				if dec.Contains(east) {
					chans[edgeKey{rank, dec.Rank(east)}] <- outX
				}
				if dec.Contains(south) {
					chans[edgeKey{rank, dec.Rank(south)}] <- outY
				}
			}
		}
	}

	for r := 0; r < dec.P(); r++ {
		wg.Add(1)
		go worker(r)
	}
	wg.Wait()
	return flux, nil
}

// computeTile processes one tile of one octant for all angles. Boundary
// plane layouts: x planes are [angle][k-local][j-local], y planes are
// [angle][k-local][i-local], ordered along the octant's z direction (tile-
// local k index kk counts from the tile's z entry face). zPlane carries the
// per-angle z inflow into this tile and is updated to the tile's outflow.
// A nil inX or inY means zero inflow at the grid boundary.
func (p *TransportProblem) computeTile(flux, scratch, zPlane []float64, oct Octant, b block,
	k0, k1 int, inX, inY, outX, outY []float64) {
	g := p.Grid
	kh := k1 - k0
	nxL, nyL := b.nx(), b.ny()
	xUp, yUp := dirOf(oct.Corner)
	ks, ke, kd := loopRange(k0, k1, oct.ZUp)
	js, je, jd := loopRange(b.y0, b.y1, yUp)
	is, ie, id := loopRange(b.x0, b.x1, xUp)
	// kkOf maps global k to the tile-local index counting from the entry face.
	kkOf := func(k int) int {
		if oct.ZUp {
			return k - k0
		}
		return k1 - 1 - k
	}
	sidx := func(i, j, kk int) int { return (kk*nyL+(j-b.y0))*nxL + (i - b.x0) }

	for a := range p.Angles {
		ang := p.Angles[a]
		den := p.Sigma + ang.Ax + ang.Ay + ang.Az
		zBase := a * nyL * nxL
		for k := ks; k != ke; k += kd {
			kk := kkOf(k)
			for j := js; j != je; j += jd {
				for i := is; i != ie; i += id {
					var px, py, pz float64
					if iu := i - id; iu >= b.x0 && iu < b.x1 {
						px = scratch[sidx(iu, j, kk)]
					} else if inX != nil {
						px = inX[(a*kh+kk)*nyL+(j-b.y0)]
					}
					if ju := j - jd; ju >= b.y0 && ju < b.y1 {
						py = scratch[sidx(i, ju, kk)]
					} else if inY != nil {
						py = inY[(a*kh+kk)*nxL+(i-b.x0)]
					}
					if kk > 0 {
						pz = scratch[sidx(i, j, kk-1)]
					} else if ku := k - kd; ku >= 0 && ku < g.Nz {
						pz = zPlane[zBase+(j-b.y0)*nxL+(i-b.x0)]
					}
					v := (p.Source[p.idx(i, j, k)] + ang.Ax*px + ang.Ay*py + ang.Az*pz) / den
					scratch[sidx(i, j, kk)] = v
					flux[p.idx(i, j, k)] += ang.Weight * v
					if i == ie-id {
						outX[(a*kh+kk)*nyL+(j-b.y0)] = v
					}
					if j == je-jd {
						outY[(a*kh+kk)*nxL+(i-b.x0)] = v
					}
					if kk == kh-1 {
						zPlane[zBase+(j-b.y0)*nxL+(i-b.x0)] = v
					}
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
