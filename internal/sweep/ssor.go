// SSOR (LU-like) forward/backward substitution kernel. NAS LU's SSOR
// iteration performs a lower-triangular solve swept from one grid corner
// and an upper-triangular solve swept back from the opposite corner, with
// a pre-computation (the jacobian assembly, jacld/jacu) on each tile before
// the boundary values are received (paper Figure 4(a)).
package sweep

import (
	"fmt"
	"sync"

	"repro/internal/grid"
)

// SSORProblem is a simplified SSOR substitution problem on a scalar field:
//
//	forward:  v[c] = (rhs[c] + cx·v_x + cy·v_y + cz·v_z) / d[c]
//	backward: v[c] = (v[c] + cx·v_x' + cy·v_y' + cz·v_z') / d[c]
//
// where v_x, v_y, v_z are upwind neighbours in the sweep direction and
// d[c] is a diagonal coefficient assembled per cell in the pre-computation
// step (zero inflow at boundaries).
type SSORProblem struct {
	Grid       grid.Grid
	Cx, Cy, Cz float64
	Rhs        []float64
}

// NewSSORProblem builds a problem with a deterministic synthetic
// right-hand side.
func NewSSORProblem(g grid.Grid) *SSORProblem {
	p := &SSORProblem{
		Grid: g,
		Cx:   0.35, Cy: 0.25, Cz: 0.3,
		Rhs: make([]float64, g.Cells()),
	}
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				p.Rhs[p.idx(i, j, k)] = 1 + 0.003*float64(i) - 0.002*float64(j) + 0.001*float64(k)
			}
		}
	}
	return p
}

func (p *SSORProblem) idx(i, j, k int) int {
	return (k*p.Grid.Ny+j)*p.Grid.Nx + i
}

// diag is the pre-computed per-cell diagonal — the stand-in for LU's
// jacobian assembly. It must be evaluated before the substitution of a
// tile can run; the parallel implementation does so before the receives,
// like the real code.
func (p *SSORProblem) diag(i, j, k int) float64 {
	return 2 + p.Cx + p.Cy + p.Cz + 0.001*float64((i+j+k)%7)
}

// SolveSequential runs one SSOR iteration (forward + backward sweep) and
// returns the resulting field. It is the reference implementation.
func (p *SSORProblem) SolveSequential() []float64 {
	g := p.Grid
	v := make([]float64, g.Cells())
	// Forward sweep from (0,0,0).
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				var vx, vy, vz float64
				if i > 0 {
					vx = v[p.idx(i-1, j, k)]
				}
				if j > 0 {
					vy = v[p.idx(i, j-1, k)]
				}
				if k > 0 {
					vz = v[p.idx(i, j, k-1)]
				}
				v[p.idx(i, j, k)] = (p.Rhs[p.idx(i, j, k)] + p.Cx*vx + p.Cy*vy + p.Cz*vz) / p.diag(i, j, k)
			}
		}
	}
	// Backward sweep from (Nx−1, Ny−1, Nz−1).
	for k := g.Nz - 1; k >= 0; k-- {
		for j := g.Ny - 1; j >= 0; j-- {
			for i := g.Nx - 1; i >= 0; i-- {
				var vx, vy, vz float64
				if i < g.Nx-1 {
					vx = v[p.idx(i+1, j, k)]
				}
				if j < g.Ny-1 {
					vy = v[p.idx(i, j+1, k)]
				}
				if k < g.Nz-1 {
					vz = v[p.idx(i, j, k+1)]
				}
				v[p.idx(i, j, k)] = (v[p.idx(i, j, k)] + p.Cx*vx + p.Cy*vy + p.Cz*vz) / p.diag(i, j, k)
			}
		}
	}
	return v
}

// SolveParallel runs the same SSOR iteration over an m × n worker grid with
// per-tile boundary exchange (tile height 1, as in LU). The result is
// bit-identical to SolveSequential.
func (p *SSORProblem) SolveParallel(dec grid.Decomposition) ([]float64, error) {
	if dec.Grid != p.Grid {
		return nil, fmt.Errorf("sweep: decomposition grid %v does not match problem grid %v", dec.Grid, p.Grid)
	}
	g := p.Grid
	blks := blocks(dec)
	type edgeKey struct{ from, to int }
	chans := make(map[edgeKey]chan []float64)
	for r := 0; r < dec.P(); r++ {
		c := dec.CoordOf(r)
		for _, nb := range []grid.Coord{
			{I: c.I + 1, J: c.J}, {I: c.I - 1, J: c.J},
			{I: c.I, J: c.J + 1}, {I: c.I, J: c.J - 1},
		} {
			if dec.Contains(nb) {
				chans[edgeKey{r, dec.Rank(nb)}] = make(chan []float64, g.Nz+1)
			}
		}
	}

	v := make([]float64, g.Cells())
	var wg sync.WaitGroup
	sweeps := []struct {
		corner grid.Corner
		zUp    bool
		first  bool // forward sweep reads Rhs; backward reads v itself
	}{
		{grid.NW, true, true},
		{grid.SE, false, false},
	}

	worker := func(rank int) {
		defer wg.Done()
		b := blks[rank]
		c := dec.CoordOf(rank)
		nxL, nyL := b.nx(), b.ny()
		diag := make([]float64, nyL*nxL)

		for _, sw := range sweeps {
			di, dj := sw.corner.Step()
			west := grid.Coord{I: c.I - di, J: c.J}
			north := grid.Coord{I: c.I, J: c.J - dj}
			east := grid.Coord{I: c.I + di, J: c.J}
			south := grid.Coord{I: c.I, J: c.J + dj}
			xUp, yUp := dirOf(sw.corner)
			js, je, jd := loopRange(b.y0, b.y1, yUp)
			is, ie, id := loopRange(b.x0, b.x1, xUp)
			ks, ke, kd := loopRange(0, g.Nz, sw.zUp)

			for k := ks; k != ke; k += kd {
				// Pre-computation before the receives (Figure 4(a)): the
				// per-cell diagonal of this tile.
				for j := b.y0; j < b.y1; j++ {
					for i := b.x0; i < b.x1; i++ {
						diag[(j-b.y0)*nxL+(i-b.x0)] = p.diag(i, j, k)
					}
				}
				var inX, inY []float64
				if dec.Contains(west) {
					inX = <-chans[edgeKey{dec.Rank(west), rank}]
				}
				if dec.Contains(north) {
					inY = <-chans[edgeKey{dec.Rank(north), rank}]
				}
				outX := make([]float64, nyL)
				outY := make([]float64, nxL)
				for j := js; j != je; j += jd {
					for i := is; i != ie; i += id {
						var vx, vy, vz float64
						if iu := i - id; iu >= b.x0 && iu < b.x1 {
							vx = v[p.idx(iu, j, k)]
						} else if inX != nil {
							vx = inX[j-b.y0]
						}
						if ju := j - jd; ju >= b.y0 && ju < b.y1 {
							vy = v[p.idx(i, ju, k)]
						} else if inY != nil {
							vy = inY[i-b.x0]
						}
						if ku := k - kd; ku >= 0 && ku < g.Nz {
							vz = v[p.idx(i, j, ku)]
						}
						base := p.Rhs[p.idx(i, j, k)]
						if !sw.first {
							base = v[p.idx(i, j, k)]
						}
						nv := (base + p.Cx*vx + p.Cy*vy + p.Cz*vz) / diag[(j-b.y0)*nxL+(i-b.x0)]
						v[p.idx(i, j, k)] = nv
						if i == ie-id {
							outX[j-b.y0] = nv
						}
						if j == je-jd {
							outY[i-b.x0] = nv
						}
					}
				}
				if dec.Contains(east) {
					chans[edgeKey{rank, dec.Rank(east)}] <- outX
				}
				if dec.Contains(south) {
					chans[edgeKey{rank, dec.Rank(south)}] <- outY
				}
			}
		}
	}

	for r := 0; r < dec.P(); r++ {
		wg.Add(1)
		go worker(r)
	}
	wg.Wait()
	return v, nil
}
