// Package wavefront generates per-rank MPI programs for pipelined wavefront
// computations with arbitrary sweep structures, for execution on the
// discrete-event simulator (internal/simmpi).
//
// A wavefront application is described by the origin corner of each sweep
// in an iteration (paper Figure 2) plus per-tile compute times and boundary
// message sizes. The paper's sweep-precedence behaviour — which sweeps must
// fully complete, which must reach the main-diagonal corner, and which are
// fully pipelined before the next sweep begins (parameters nfull and ndiag,
// Section 4.1) — is NOT encoded explicitly: it emerges from program order
// and blocking MPI semantics, exactly as it does in the real codes. The
// Classify function recovers (nfull, ndiag) from a corner sequence and is
// verified against paper Table 3 in the tests.
package wavefront

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/simmpi"
)

// Standard per-iteration sweep corner sequences of the three benchmark
// codes (paper Figure 2, using grid.Corner naming where SE = (n,m),
// NE = (n,1), SW = (1,m), NW = (1,1)).
//
// LU performs a forward and a backward sweep. Sweep3D performs eight
// octant sweeps in pairs that share an origin corner: (n,m), (n,1), (1,m),
// (1,1). Chimaera interleaves its middle corner pairs — octant pairs
// {3,5} and {4,6} alternate origins — which is what raises its nfull from
// 2 to 4 (Section 2.2).
func LUCorners() []grid.Corner { return []grid.Corner{grid.NW, grid.SE} }

// Sweep3DCorners returns the Sweep3D octant origin sequence.
func Sweep3DCorners() []grid.Corner {
	return []grid.Corner{grid.SE, grid.SE, grid.NE, grid.NE, grid.SW, grid.SW, grid.NW, grid.NW}
}

// ChimaeraCorners returns the Chimaera octant origin sequence.
func ChimaeraCorners() []grid.Corner {
	return []grid.Corner{grid.SE, grid.SE, grid.NE, grid.SW, grid.NE, grid.SW, grid.NW, grid.NW}
}

// PipelinedGroupCorners expands a per-iteration corner sequence into the
// Section 5.5 energy-group re-design: each run of same-corner sweeps is
// repeated for all groups before moving to the next corner. For Sweep3D's
// corner pairs and 30 groups this yields 240 sweeps whose derived structure
// is nfull = 2, ndiag = 2 — exactly the model inputs the paper uses to
// project the re-design.
func PipelinedGroupCorners(corners []grid.Corner, groups int) []grid.Corner {
	var out []grid.Corner
	for i := 0; i < len(corners); {
		j := i
		for j < len(corners) && corners[j] == corners[i] {
			j++
		}
		for g := 0; g < groups; g++ {
			out = append(out, corners[i:j]...)
		}
		i = j
	}
	return out
}

// SequentialGroupCorners expands a per-iteration corner sequence into the
// conventional design: the full sweep sequence repeated once per group.
func SequentialGroupCorners(corners []grid.Corner, groups int) []grid.Corner {
	var out []grid.Corner
	for g := 0; g < groups; g++ {
		out = append(out, corners...)
	}
	return out
}

// Transition classifies how one sweep hands off to the next.
type Transition int

// Transition kinds, in increasing pipeline-fill cost.
const (
	// Pipelined: the next sweep shares the current sweep's origin corner;
	// its origin rank starts as soon as it finishes its own stack.
	Pipelined Transition = iota
	// Diagonal: the next sweep originates at a corner on the current
	// sweep's wavefront diagonal; the fill to that corner (Tdiagfill) is
	// exposed on the critical path.
	Diagonal
	// Full: the next sweep originates at the current sweep's terminal
	// corner, so the current sweep completes everywhere first (Tfullfill).
	Full
)

// String implements fmt.Stringer.
func (t Transition) String() string {
	switch t {
	case Pipelined:
		return "pipelined"
	case Diagonal:
		return "diagonal"
	case Full:
		return "full"
	}
	return fmt.Sprintf("Transition(%d)", int(t))
}

// ClassifyTransition determines the handoff kind between consecutive sweeps
// with origin corners cur and next.
func ClassifyTransition(cur, next grid.Corner) Transition {
	switch next {
	case cur:
		return Pipelined
	case cur.Opposite():
		return Full
	default:
		// The two remaining corners lie on the sweep's anti-diagonal; the
		// paper's Tdiagfill (equation r3a) covers both for the (near-)square
		// decompositions of interest.
		return Diagonal
	}
}

// Classify derives the plug-and-play model's sweep-structure parameters
// (nsweeps, nfull, ndiag — paper Table 3) from a corner sequence. The final
// sweep always counts towards nfull: it must fully complete before the
// iteration ends.
func Classify(corners []grid.Corner) (nsweeps, nfull, ndiag int) {
	nsweeps = len(corners)
	if nsweeps == 0 {
		return 0, 0, 0
	}
	for k := 0; k+1 < len(corners); k++ {
		switch ClassifyTransition(corners[k], corners[k+1]) {
		case Full:
			nfull++
		case Diagonal:
			ndiag++
		}
	}
	nfull++ // the last sweep completes fully before the iteration ends
	return nsweeps, nfull, ndiag
}

// Schedule describes the complete per-iteration structure of a wavefront
// application, sufficient to generate every rank's MPI program.
type Schedule struct {
	Dec     grid.Decomposition
	Corners []grid.Corner // origin corner of each sweep in order

	Htile int // tile height in cells (effective: mk × mmi/mmo for Sweep3D)

	// WPre and W are the per-tile pre-receive and post-receive compute
	// times in µs: Wg,pre × Htile × Nx/n × Ny/m and Wg × Htile × Nx/n × Ny/m
	// (equations r1a, r1b). They are per-tile, so the generator does not
	// need to know Wg itself.
	WPre, W float64

	// BytesEW and BytesNS are the boundary message sizes exchanged in the
	// sweep direction's east-west and north-south directions (Table 3).
	BytesEW, BytesNS int

	// Iterations is the number of wavefront iterations to run.
	Iterations int

	// InterOps, if non-nil, returns the operations a rank performs between
	// iterations (Tnonwavefront): e.g. two 8-byte all-reduces for Sweep3D,
	// one for Chimaera, or a stencil exchange for LU.
	InterOps func(rank int) []simmpi.Op

	// ConvBytes, when positive, appends a per-iteration convergence
	// all-reduce of that many bytes after the inter-iteration operations —
	// the global residual check that ends every LU iteration and
	// accumulates Sweep3D/Chimaera sums. ConvAlg selects its execution:
	// AlgAuto uses the closed-form exchange of paper equation (9), AlgRing
	// and AlgRecDouble run the simulated algorithms whose point-to-point
	// constituents contend for buses and interconnect links. Zero ConvBytes
	// (the default) changes nothing: existing schedules are untouched.
	ConvBytes int
	ConvAlg   simmpi.CollAlg

	// Tile, if non-nil, makes per-tile compute cost a function instead
	// of a constant: for each (rank, sweep, tile) it returns a
	// multiplier applied to both WPre and W and an additive extra in µs
	// added to the post-receive compute (workload imbalance and OS
	// noise — see internal/workload). It must be a pure function of its
	// arguments: programs may be re-generated and replayed, and shards
	// evaluate ranks in nondeterministic wall-clock order. A nil Tile —
	// or one returning exactly (1, 0) everywhere — leaves the schedule
	// bit-identical to the constant-cost path. Negative results are
	// clamped to zero: simulated time cannot run backwards.
	Tile func(rank, sweep, tile int) (mul, extraUS float64)
}

// Validate reports configuration errors.
func (s *Schedule) Validate() error {
	if len(s.Corners) == 0 {
		return fmt.Errorf("wavefront: schedule has no sweeps")
	}
	if s.Htile <= 0 {
		return fmt.Errorf("wavefront: invalid Htile %d", s.Htile)
	}
	if s.Iterations <= 0 {
		return fmt.Errorf("wavefront: invalid iteration count %d", s.Iterations)
	}
	if s.W < 0 || s.WPre < 0 {
		return fmt.Errorf("wavefront: negative per-tile work (W=%v, Wpre=%v)", s.W, s.WPre)
	}
	if s.BytesEW < 0 || s.BytesNS < 0 {
		return fmt.Errorf("wavefront: negative message size")
	}
	if s.ConvBytes < 0 {
		return fmt.Errorf("wavefront: negative convergence all-reduce size %d", s.ConvBytes)
	}
	if s.ConvBytes > 0 && !simmpi.ValidAllReduceAlg(s.ConvAlg) {
		return fmt.Errorf("wavefront: convergence all-reduce cannot use algorithm %d", s.ConvAlg)
	}
	return nil
}

// TilesPerStack returns the number of tiles per sweep per rank, Nz/Htile.
func (s *Schedule) TilesPerStack() int { return s.Dec.TilesPerStack(s.Htile) }

// sweepOps builds the per-tile operation template of one rank for one
// sweep: [Wpre] [RecvW] [RecvN] [Compute W] [SendE] [SendS], where the
// west/north/east/south roles are relative to the sweep direction
// (paper Figure 4: LU pre-computes before the receives).
func (s *Schedule) sweepOps(rank int, corner grid.Corner) []simmpi.Op {
	c := s.Dec.CoordOf(rank)
	di, dj := corner.Step()
	ops := make([]simmpi.Op, 0, 6)
	if s.WPre > 0 {
		ops = append(ops, simmpi.Compute(s.WPre))
	}
	if w := (grid.Coord{I: c.I - di, J: c.J}); s.Dec.Contains(w) {
		ops = append(ops, simmpi.Recv(s.Dec.Rank(w)))
	}
	if n := (grid.Coord{I: c.I, J: c.J - dj}); s.Dec.Contains(n) {
		ops = append(ops, simmpi.Recv(s.Dec.Rank(n)))
	}
	ops = append(ops, simmpi.Compute(s.W))
	if e := (grid.Coord{I: c.I + di, J: c.J}); s.Dec.Contains(e) {
		ops = append(ops, simmpi.Send(s.Dec.Rank(e), s.BytesEW))
	}
	if so := (grid.Coord{I: c.I, J: c.J + dj}); s.Dec.Contains(so) {
		ops = append(ops, simmpi.Send(s.Dec.Rank(so), s.BytesNS))
	}
	return ops
}

// Program returns rank's lazily-generated MPI program for the whole run:
// Iterations × (sweeps × tiles + inter-iteration operations).
func (s *Schedule) Program(rank int) simmpi.Program {
	p := &rankProgram{sched: s, rank: rank}
	p.loadSweep()
	return p
}

// rankProgram is the lazy program iterator for one rank. Programs for large
// runs have millions of operations; only the current sweep's 6-op template
// is materialised.
type rankProgram struct {
	sched *Schedule
	rank  int

	iter  int // current iteration
	sweep int // current sweep within the iteration
	tile  int // current tile within the sweep
	stage int // index into tileOps

	tileOps  []simmpi.Op
	inter    []simmpi.Op
	interIx  int
	inInter  bool
	convDone bool // convergence all-reduce emitted for this iteration
	done     bool

	// preIx and wIx locate the pre-receive and post-receive compute ops
	// inside tileOps when a Tile cost function is attached; -1 when
	// absent. sweepOps allocates the template fresh per sweep, so
	// patching durations in place is safe.
	preIx, wIx int
}

func (p *rankProgram) loadSweep() {
	p.tileOps = p.sched.sweepOps(p.rank, p.sched.Corners[p.sweep])
	p.tile = 0
	p.stage = 0
	if p.sched.Tile != nil {
		p.preIx, p.wIx = -1, -1
		for i := range p.tileOps {
			if p.tileOps[i].Kind == simmpi.OpCompute {
				if p.wIx >= 0 { // second compute: the first was the pre-compute
					p.preIx, p.wIx = p.wIx, i
				} else {
					p.wIx = i
				}
			}
		}
		p.patchTile()
	}
}

// patchTile rewrites the current tile's compute durations from the
// schedule's Tile cost function.
func (p *rankProgram) patchTile() {
	mul, extra := p.sched.Tile(p.rank, p.sweep, p.tile)
	if mul < 0 {
		mul = 0
	}
	if extra < 0 {
		extra = 0
	}
	if p.preIx >= 0 {
		p.tileOps[p.preIx].Dur = p.sched.WPre * mul
	}
	p.tileOps[p.wIx].Dur = p.sched.W*mul + extra
}

// Next implements simmpi.Program. The within-tile case is the hot path —
// the simulator calls Next once per operation — so it is split from the
// tile/sweep/iteration bookkeeping.
func (p *rankProgram) Next() (simmpi.Op, bool) {
	if p.stage < len(p.tileOps) && !p.inInter && !p.done {
		op := p.tileOps[p.stage]
		p.stage++
		return op, true
	}
	return p.nextSlow()
}

// nextSlow advances tile, sweep and iteration bookkeeping.
func (p *rankProgram) nextSlow() (simmpi.Op, bool) {
	s := p.sched
	for {
		if p.done {
			return simmpi.Op{}, false
		}
		if p.inInter {
			if p.interIx < len(p.inter) {
				op := p.inter[p.interIx]
				p.interIx++
				return op, true
			}
			// The convergence all-reduce is synthesized from iterator state
			// rather than appended to the InterOps slice: the slice is
			// callee-owned, and appending would allocate once per rank per
			// iteration.
			if s.ConvBytes > 0 && !p.convDone {
				p.convDone = true
				return simmpi.AllReduceAlg(s.ConvBytes, s.ConvAlg), true
			}
			p.inInter = false
			p.iter++
			if p.iter >= s.Iterations {
				p.done = true
				return simmpi.Op{}, false
			}
			p.sweep = 0
			p.loadSweep()
		}
		if p.stage < len(p.tileOps) {
			op := p.tileOps[p.stage]
			p.stage++
			return op, true
		}
		// Tile finished.
		p.tile++
		p.stage = 0
		if p.tile < s.TilesPerStack() {
			if s.Tile != nil {
				p.patchTile()
			}
			continue
		}
		// Sweep finished.
		p.sweep++
		if p.sweep < len(s.Corners) {
			p.loadSweep()
			continue
		}
		// Iteration finished: run inter-iteration operations (possibly none),
		// then the convergence all-reduce if one is configured.
		p.inInter = true
		p.interIx = 0
		p.convDone = false
		if s.InterOps != nil {
			p.inter = s.InterOps(p.rank)
		} else {
			p.inter = nil
		}
	}
}

// Programs returns the programs of all ranks, indexed by rank.
func (s *Schedule) Programs() []simmpi.Program {
	ps := make([]simmpi.Program, s.Dec.P())
	for r := range ps {
		ps[r] = s.Program(r)
	}
	return ps
}

// AllReduceInter returns an InterOps function performing count 8-byte
// all-reduces, the Tnonwavefront of Sweep3D (count = 2) and Chimaera
// (count = 1), per paper Table 3.
func AllReduceInter(count int) func(rank int) []simmpi.Op {
	return func(int) []simmpi.Op {
		ops := make([]simmpi.Op, count)
		for i := range ops {
			ops[i] = simmpi.AllReduce(8)
		}
		return ops
	}
}

// StencilInter returns an InterOps function modelling LU's four-point
// stencil computation between iterations (paper Section 4.1): each rank
// exchanges one boundary message with each existing neighbour and computes
// over its local cells. Receives are posted after all sends so the exchange
// cannot deadlock under rendezvous: sends of at most the eager threshold
// complete locally, and larger sends are gated only by the matching
// receives, which every neighbour eventually posts in a compatible order.
// For safety the generated exchange uses eager-sized messages per neighbour
// pair whenever possible; larger stencil halos are split into eager chunks.
func StencilInter(dec grid.Decomposition, computePerRank float64, bytesEW, bytesNS int) func(rank int) []simmpi.Op {
	return func(rank int) []simmpi.Op {
		c := dec.CoordOf(rank)
		var ops []simmpi.Op
		type nb struct {
			coord grid.Coord
			bytes int
		}
		nbs := []nb{
			{grid.Coord{I: c.I - 1, J: c.J}, bytesEW},
			{grid.Coord{I: c.I + 1, J: c.J}, bytesEW},
			{grid.Coord{I: c.I, J: c.J - 1}, bytesNS},
			{grid.Coord{I: c.I, J: c.J + 1}, bytesNS},
		}
		appendChunked := func(mk func(peer, bytes int) simmpi.Op, peer, bytes int) {
			for bytes > 0 {
				n := bytes
				if n > 1024 {
					n = 1024
				}
				ops = append(ops, mk(peer, n))
				bytes -= n
			}
		}
		for _, b := range nbs {
			if dec.Contains(b.coord) {
				appendChunked(func(p, n int) simmpi.Op { return simmpi.Send(p, n) }, dec.Rank(b.coord), b.bytes)
			}
		}
		for _, b := range nbs {
			if dec.Contains(b.coord) {
				appendChunked(func(p, n int) simmpi.Op { return simmpi.Recv(p) }, dec.Rank(b.coord), b.bytes)
			}
		}
		ops = append(ops, simmpi.Compute(computePerRank))
		return ops
	}
}
