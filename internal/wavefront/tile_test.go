package wavefront

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/simmpi"
)

func tileSched(t *testing.T, wpre float64, tile func(rank, sweep, tile int) (float64, float64)) *Schedule {
	t.Helper()
	s := &Schedule{
		Dec:        grid.MustDecompose(grid.NewGrid(8, 8, 8), 2, 2),
		Corners:    []grid.Corner{grid.NW, grid.SE},
		Htile:      2,
		WPre:       wpre,
		W:          10,
		BytesEW:    64,
		BytesNS:    64,
		Iterations: 2,
		Tile:       tile,
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return s
}

func drain(t *testing.T, p simmpi.Program) []simmpi.Op {
	t.Helper()
	var ops []simmpi.Op
	for {
		op, ok := p.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
		if len(ops) > 1<<16 {
			t.Fatal("program did not terminate")
		}
	}
}

// A nil Tile and an identity Tile must produce identical op streams —
// the bit-exactness contract the uniform workload relies on.
func TestTileIdentityMatchesNil(t *testing.T) {
	for _, wpre := range []float64{0, 3} {
		base := tileSched(t, wpre, nil)
		ident := tileSched(t, wpre, func(int, int, int) (float64, float64) { return 1, 0 })
		for r := 0; r < base.Dec.P(); r++ {
			a, b := drain(t, base.Program(r)), drain(t, ident.Program(r))
			if len(a) != len(b) {
				t.Fatalf("wpre=%v rank %d: op counts differ (%d vs %d)", wpre, r, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("wpre=%v rank %d op %d: %+v vs %+v", wpre, r, i, a[i], b[i])
				}
			}
		}
	}
}

// A varying Tile must patch both computes of every tile with that
// tile's own multiplier and put the additive term on the post-receive
// compute only.
func TestTilePatchesPerTile(t *testing.T) {
	mul := func(rank, sweep, tile int) float64 {
		return 1 + float64(rank)/10 + float64(sweep)/100 + float64(tile)/1000
	}
	s := tileSched(t, 3, func(rank, sweep, tile int) (float64, float64) {
		return mul(rank, sweep, tile), float64(tile)
	})
	for r := 0; r < s.Dec.P(); r++ {
		ops := drain(t, s.Program(r))
		tilesPerSweep := s.TilesPerStack()
		sweep, tile, computes := 0, 0, 0
		for _, op := range ops {
			if op.Kind != simmpi.OpCompute {
				continue
			}
			m := mul(r, sweep, tile)
			var want float64
			if computes == 0 {
				want = s.WPre * m
			} else {
				want = s.W*m + float64(tile)
			}
			if op.Dur != want {
				t.Fatalf("rank %d sweep %d tile %d compute %d: dur %v, want %v",
					r, sweep, tile, computes, op.Dur, want)
			}
			computes++
			if computes == 2 {
				computes = 0
				tile++
				if tile == tilesPerSweep {
					tile = 0
					sweep++
					if sweep == len(s.Corners) {
						sweep = 0 // next iteration
					}
				}
			}
		}
	}
}

// Negative returns are clamped to zero durations, never negative.
func TestTileClampsNegative(t *testing.T) {
	s := tileSched(t, 3, func(int, int, int) (float64, float64) { return -2, -5 })
	for _, op := range drain(t, s.Program(0)) {
		if op.Kind == simmpi.OpCompute && op.Dur != 0 {
			t.Fatalf("compute dur %v, want 0 after clamping", op.Dur)
		}
	}
}
