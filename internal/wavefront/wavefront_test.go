package wavefront

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/logp"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
)

func TestClassifyMatchesTable3(t *testing.T) {
	// The headline property: the sweep-structure parameters derived from
	// the Figure 2 corner sequences equal the paper's Table 3 values.
	for _, tc := range []struct {
		name       string
		corners    []grid.Corner
		ns, nf, nd int
	}{
		{"LU", LUCorners(), 2, 2, 0},
		{"Sweep3D", Sweep3DCorners(), 8, 2, 2},
		{"Chimaera", ChimaeraCorners(), 8, 4, 2},
	} {
		ns, nf, nd := Classify(tc.corners)
		if ns != tc.ns || nf != tc.nf || nd != tc.nd {
			t.Errorf("%s: Classify = (%d,%d,%d), want (%d,%d,%d)",
				tc.name, ns, nf, nd, tc.ns, tc.nf, tc.nd)
		}
	}
}

func TestClassifyTransitionKinds(t *testing.T) {
	if got := ClassifyTransition(grid.NW, grid.NW); got != Pipelined {
		t.Errorf("same corner = %v", got)
	}
	if got := ClassifyTransition(grid.NW, grid.SE); got != Full {
		t.Errorf("opposite corner = %v", got)
	}
	if got := ClassifyTransition(grid.NW, grid.SW); got != Diagonal {
		t.Errorf("adjacent corner = %v", got)
	}
	if got := ClassifyTransition(grid.NW, grid.NE); got != Diagonal {
		t.Errorf("other adjacent corner = %v", got)
	}
	for _, tr := range []Transition{Pipelined, Diagonal, Full} {
		if tr.String() == "" {
			t.Error("empty transition name")
		}
	}
}

func TestClassifyEmptyAndCounts(t *testing.T) {
	ns, nf, nd := Classify(nil)
	if ns != 0 || nf != 0 || nd != 0 {
		t.Errorf("empty = %d %d %d", ns, nf, nd)
	}
	// Property: nfull ≥ 1 (final sweep), nfull + ndiag ≤ nsweeps.
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := r.Intn(12) + 1
			cs := make([]grid.Corner, n)
			for i := range cs {
				cs[i] = grid.Corner(r.Intn(4))
			}
			vals[0] = reflect.ValueOf(cs)
		},
	}
	prop := func(cs []grid.Corner) bool {
		ns, nf, nd := Classify(cs)
		return ns == len(cs) && nf >= 1 && nf+nd <= ns
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func testSchedule(dec grid.Decomposition, corners []grid.Corner, iters int) *Schedule {
	return &Schedule{
		Dec:        dec,
		Corners:    corners,
		Htile:      2,
		W:          10,
		WPre:       0,
		BytesEW:    2048,
		BytesNS:    2048,
		Iterations: iters,
		InterOps:   AllReduceInter(1),
	}
}

func TestScheduleValidate(t *testing.T) {
	dec := grid.MustDecompose(grid.Cube(8), 2, 2)
	good := testSchedule(dec, LUCorners(), 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *good
	bad.Corners = nil
	if bad.Validate() == nil {
		t.Error("no sweeps accepted")
	}
	bad = *good
	bad.Htile = 0
	if bad.Validate() == nil {
		t.Error("zero Htile accepted")
	}
	bad = *good
	bad.Iterations = 0
	if bad.Validate() == nil {
		t.Error("zero iterations accepted")
	}
	bad = *good
	bad.W = -1
	if bad.Validate() == nil {
		t.Error("negative work accepted")
	}
	bad = *good
	bad.BytesNS = -1
	if bad.Validate() == nil {
		t.Error("negative bytes accepted")
	}
}

func TestProgramOpCount(t *testing.T) {
	// Interior rank: per tile 2 recv + compute + 2 send = 5 ops; corner
	// origin: compute + 2 sends = 3 ops.
	g := grid.NewGrid(12, 12, 8)
	dec := grid.MustDecompose(g, 3, 3)
	s := testSchedule(dec, []grid.Corner{grid.NW}, 1)
	s.InterOps = nil
	tiles := s.TilesPerStack() // 4
	count := func(rank int) int {
		p := s.Program(rank)
		n := 0
		for {
			if _, ok := p.Next(); !ok {
				return n
			}
			n++
		}
	}
	center := dec.Rank(grid.Coord{I: 2, J: 2})
	origin := dec.Rank(grid.Coord{I: 1, J: 1})
	terminal := dec.Rank(grid.Coord{I: 3, J: 3})
	if got := count(center); got != 5*tiles {
		t.Errorf("center ops = %d, want %d", got, 5*tiles)
	}
	if got := count(origin); got != 3*tiles {
		t.Errorf("origin ops = %d, want %d", got, 3*tiles)
	}
	if got := count(terminal); got != 3*tiles { // 2 recvs + compute
		t.Errorf("terminal ops = %d, want %d", got, 3*tiles)
	}
}

func TestProgramPreComputeOrdering(t *testing.T) {
	// With WPre > 0 the first op of every tile must be the pre-compute,
	// before any receive (paper Figure 4(a)).
	g := grid.NewGrid(8, 8, 4)
	dec := grid.MustDecompose(g, 2, 2)
	s := testSchedule(dec, LUCorners(), 1)
	s.WPre = 3
	s.Htile = 1
	p := s.Program(dec.Rank(grid.Coord{I: 2, J: 2}))
	op, ok := p.Next()
	if !ok || op.Kind != simmpi.OpCompute || op.Dur != 3 {
		t.Fatalf("first op = %+v, want pre-compute", op)
	}
	op, _ = p.Next()
	if op.Kind != simmpi.OpRecv {
		t.Fatalf("second op = %+v, want recv", op)
	}
}

func TestRecvBeforeComputeBeforeSend(t *testing.T) {
	g := grid.NewGrid(8, 8, 4)
	dec := grid.MustDecompose(g, 2, 2)
	s := testSchedule(dec, []grid.Corner{grid.SE}, 1)
	s.InterOps = nil
	p := s.Program(dec.Rank(grid.Coord{I: 1, J: 1})) // terminal for SE sweep
	kinds := []simmpi.OpKind{}
	for {
		op, ok := p.Next()
		if !ok {
			break
		}
		kinds = append(kinds, op.Kind)
	}
	tiles := s.TilesPerStack()
	if len(kinds) != 3*tiles {
		t.Fatalf("got %d ops", len(kinds))
	}
	for i := 0; i < tiles; i++ {
		if kinds[3*i] != simmpi.OpRecv || kinds[3*i+1] != simmpi.OpRecv || kinds[3*i+2] != simmpi.OpCompute {
			t.Fatalf("tile %d kinds = %v", i, kinds[3*i:3*i+3])
		}
	}
}

func runSchedule(t *testing.T, s *Schedule, mach machine.Machine) simmpi.Result {
	t.Helper()
	topo := simnet.NewTopology(mach.Params, s.Dec.P(), simnet.GridPlacement(s.Dec, mach))
	sim := simmpi.New(topo)
	for r, p := range s.Programs() {
		sim.SetProgram(r, p)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllBenchmarkStructuresRunWithoutDeadlock(t *testing.T) {
	g := grid.NewGrid(16, 16, 8)
	dec := grid.MustDecompose(g, 4, 4)
	for _, tc := range []struct {
		name    string
		corners []grid.Corner
	}{
		{"LU", LUCorners()},
		{"Sweep3D", Sweep3DCorners()},
		{"Chimaera", ChimaeraCorners()},
	} {
		s := testSchedule(dec, tc.corners, 2)
		res := runSchedule(t, s, machine.XT4())
		if res.Time <= 0 {
			t.Errorf("%s: zero time", tc.name)
		}
	}
}

func TestEmergentSweepPrecedence(t *testing.T) {
	// The simulator's emergent iteration time must order the three
	// structures by their fill counts: with identical per-sweep work,
	// LU-per-sweep < Sweep3D-per-sweep < Chimaera-per-sweep when
	// normalised, because nfull(LU)/2 = 1, Sweep3D: (2 full + 2 diag)/8,
	// Chimaera: (4 full + 2 diag)/8. Compare Sweep3D vs Chimaera directly
	// (same sweep count): Chimaera's extra full fills make it slower.
	g := grid.NewGrid(16, 16, 8)
	dec := grid.MustDecompose(g, 4, 4)
	mach := machine.XT4SingleCore()
	s3d := runSchedule(t, testSchedule(dec, Sweep3DCorners(), 1), mach)
	chi := runSchedule(t, testSchedule(dec, ChimaeraCorners(), 1), mach)
	if chi.Time <= s3d.Time {
		t.Errorf("Chimaera structure (%v) should be slower than Sweep3D (%v)", chi.Time, s3d.Time)
	}
}

func TestPipelinedPairIsFasterThanOppositePair(t *testing.T) {
	// Two sweeps from the same corner pipeline back-to-back; two from
	// opposite corners serialise with a full fill between them.
	g := grid.NewGrid(16, 16, 8)
	dec := grid.MustDecompose(g, 4, 4)
	mach := machine.XT4SingleCore()
	same := runSchedule(t, testSchedule(dec, []grid.Corner{grid.NW, grid.NW}, 1), mach)
	opp := runSchedule(t, testSchedule(dec, []grid.Corner{grid.NW, grid.SE}, 1), mach)
	if same.Time >= opp.Time {
		t.Errorf("pipelined pair (%v) should beat full pair (%v)", same.Time, opp.Time)
	}
}

func TestStencilInterRunsAndChunks(t *testing.T) {
	g := grid.NewGrid(16, 16, 8)
	dec := grid.MustDecompose(g, 4, 4)
	s := testSchedule(dec, LUCorners(), 2)
	s.InterOps = StencilInter(dec, 100, 3000, 2000) // forces chunking
	res := runSchedule(t, s, machine.XT4())
	if res.Time <= 0 {
		t.Error("zero time")
	}
	// Chunked exchange: each >1024 halo splits into eager pieces.
	ops := StencilInter(dec, 100, 3000, 2000)(dec.Rank(grid.Coord{I: 2, J: 2}))
	sends, recvs := 0, 0
	for _, op := range ops {
		switch op.Kind {
		case simmpi.OpSend:
			sends++
			if op.Bytes > 1024 {
				t.Errorf("oversized stencil chunk: %d bytes", op.Bytes)
			}
		case simmpi.OpRecv:
			recvs++
		}
	}
	if sends != recvs || sends != 2*3+2*2 { // 3 chunks EW ×2 + 2 chunks NS ×2
		t.Errorf("sends=%d recvs=%d", sends, recvs)
	}
}

func TestAllReduceInterCount(t *testing.T) {
	ops := AllReduceInter(2)(0)
	if len(ops) != 2 || ops[0].Kind != simmpi.OpAllReduce || ops[1].Kind != simmpi.OpAllReduce {
		t.Errorf("ops = %+v", ops)
	}
}

func TestMultiIterationScaling(t *testing.T) {
	// Two iterations should cost roughly twice one iteration (the pipeline
	// drains between iterations because of the all-reduce barrier).
	g := grid.NewGrid(16, 16, 8)
	dec := grid.MustDecompose(g, 4, 4)
	mach := machine.XT4SingleCore()
	one := runSchedule(t, testSchedule(dec, Sweep3DCorners(), 1), mach)
	two := runSchedule(t, testSchedule(dec, Sweep3DCorners(), 2), mach)
	ratio := two.Time / one.Time
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("iteration scaling ratio = %v, want ≈2", ratio)
	}
}

func TestSingleRankSchedule(t *testing.T) {
	g := grid.NewGrid(8, 8, 4)
	dec := grid.MustDecompose(g, 1, 1)
	s := testSchedule(dec, Sweep3DCorners(), 1)
	res := runSchedule(t, s, machine.XT4SingleCore())
	// One rank: no communication; time = sweeps × tiles × W.
	want := 8 * float64(s.TilesPerStack()) * s.W
	if res.Time != want {
		t.Errorf("single-rank time = %v, want %v", res.Time, want)
	}
}

func TestLogGPDependencyChain(t *testing.T) {
	// On a 1×2 pipeline with one sweep and one tile, the downstream rank
	// finishes exactly at W + TotalComm + W (single-core nodes).
	p := logp.XT4()
	g := grid.NewGrid(2, 1, 1)
	dec := grid.MustDecompose(g, 2, 1)
	s := &Schedule{
		Dec: dec, Corners: []grid.Corner{grid.NW}, Htile: 1,
		W: 50, BytesEW: 512, BytesNS: 512, Iterations: 1,
	}
	res := runSchedule(t, s, machine.XT4SingleCore())
	want := 50 + p.TotalCommOffNode(512) + 50
	if res.Time != want {
		t.Errorf("chain time = %v, want %v", res.Time, want)
	}
}
