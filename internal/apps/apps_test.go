package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/wavefront"
)

func TestTable3Parameters(t *testing.T) {
	g := grid.Cube(48)
	for _, tc := range []struct {
		bm                    Benchmark
		nsweeps, nfull, ndiag int
		wgPrePositive         bool
		htile                 int
	}{
		{LU(g), 2, 2, 0, true, 1},
		{Sweep3D(g, 2), 8, 2, 2, false, 2},
		{Chimaera(g, 1), 8, 4, 2, false, 1},
	} {
		a := tc.bm.App
		if a.NSweeps != tc.nsweeps || a.NFull != tc.nfull || a.NDiag != tc.ndiag {
			t.Errorf("%s: structure (%d,%d,%d), want (%d,%d,%d)", a.Name,
				a.NSweeps, a.NFull, a.NDiag, tc.nsweeps, tc.nfull, tc.ndiag)
		}
		if (a.WgPre > 0) != tc.wgPrePositive {
			t.Errorf("%s: WgPre = %v", a.Name, a.WgPre)
		}
		if a.Htile != tc.htile {
			t.Errorf("%s: Htile = %d", a.Name, a.Htile)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestMessageSizesMatchTable3(t *testing.T) {
	g := grid.Cube(48)
	dec := grid.MustDecompose(g, 4, 4) // 12 cells per rank per dimension

	lu := LU(g).App
	if got, want := lu.EWBytes(dec, 1), 40*12; got != want {
		t.Errorf("LU EW = %d, want 40×Ny/m = %d", got, want)
	}
	if got, want := lu.NSBytes(dec, 1), 40*12; got != want {
		t.Errorf("LU NS = %d, want 40×Nx/n = %d", got, want)
	}

	s3d := Sweep3D(g, 2).App
	if got, want := s3d.EWBytes(dec, 2), 8*2*6*12; got != want {
		t.Errorf("Sweep3D EW = %d, want 8×Htile×angles×Ny/m = %d", got, want)
	}
	chi := Chimaera(g, 1).App
	if got, want := chi.NSBytes(dec, 1), 8*1*10*12; got != want {
		t.Errorf("Chimaera NS = %d, want %d", got, want)
	}
}

func TestRelativeComputeCosts(t *testing.T) {
	// Chimaera computes ten angles to Sweep3D's six at the same grind
	// time (Section 5.1).
	g := grid.Cube(48)
	s3d, chi := Sweep3D(g, 1).App, Chimaera(g, 1).App
	if chi.Wg/s3d.Wg < 1.6 || chi.Wg/s3d.Wg > 1.7 {
		t.Errorf("Wg ratio = %v, want 10/6", chi.Wg/s3d.Wg)
	}
}

func TestWithHelpers(t *testing.T) {
	g := grid.Cube(48)
	bm := Sweep3D(g, 2)
	if got := bm.WithHtile(4).App.Htile; got != 4 {
		t.Errorf("WithHtile = %d", got)
	}
	if got := bm.WithIterations(7).App.Iterations; got != 7 {
		t.Errorf("WithIterations = %d", got)
	}
	w := bm.WithWg(1.5, 0.5)
	if w.App.Wg != 1.5 || w.App.WgPre != 0.5 {
		t.Errorf("WithWg = %v/%v", w.App.Wg, w.App.WgPre)
	}
	if bm.App.Htile != 2 || bm.App.Wg == 1.5 {
		t.Error("helpers mutated the receiver")
	}
}

func TestScheduleConsistentWithModel(t *testing.T) {
	// The schedule's per-tile work and message sizes must equal the model's
	// (r1a/r1b and Table 3 sizes), so simulator and model describe the same
	// computation.
	g := grid.Cube(48)
	dec := grid.MustDecompose(g, 4, 4)
	for _, bm := range []Benchmark{LU(g), Sweep3D(g, 2), Chimaera(g, 1)} {
		s, err := bm.Schedule(dec, 1)
		if err != nil {
			t.Fatalf("%s: %v", bm.App.Name, err)
		}
		if want := bm.App.Wg * dec.CellsPerTile(bm.App.Htile); s.W != want {
			t.Errorf("%s: W = %v, want %v", bm.App.Name, s.W, want)
		}
		if want := bm.App.WgPre * dec.CellsPerTile(bm.App.Htile); s.WPre != want {
			t.Errorf("%s: WPre = %v, want %v", bm.App.Name, s.WPre, want)
		}
		if s.BytesEW != bm.App.EWBytes(dec, bm.App.Htile) {
			t.Errorf("%s: EW bytes mismatch", bm.App.Name)
		}
		if len(s.Corners) != bm.App.NSweeps {
			t.Errorf("%s: %d corners vs %d sweeps", bm.App.Name, len(s.Corners), bm.App.NSweeps)
		}
	}
}

func TestScheduleGridMismatch(t *testing.T) {
	bm := LU(grid.Cube(48))
	if _, err := bm.Schedule(grid.MustDecompose(grid.Cube(32), 4, 4), 1); err == nil {
		t.Error("mismatched grid accepted")
	}
}

func TestCustomBenchmark(t *testing.T) {
	g := grid.Cube(32)
	corners := []grid.Corner{grid.NW, grid.SE, grid.NE, grid.SW}
	bm := Custom("X", g, 0.5, 0.1, 2, corners,
		func(dec grid.Decomposition, h int) int { return 8 * h * dec.CellsPerRankY() },
		func(dec grid.Decomposition, h int) int { return 8 * h * dec.CellsPerRankX() },
		core.AllReduceNonWavefront(1), 3,
		func(dec grid.Decomposition) func(int) []simmpi.Op { return wavefront.AllReduceInter(1) })
	ns, nf, nd := wavefront.Classify(corners)
	if bm.App.NSweeps != ns || bm.App.NFull != nf || bm.App.NDiag != nd {
		t.Errorf("custom structure = (%d,%d,%d), want (%d,%d,%d)",
			bm.App.NSweeps, bm.App.NFull, bm.App.NDiag, ns, nf, nd)
	}
	if err := bm.App.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := core.New(bm.App, machine.XT4()).EvaluateP(16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total <= 0 {
		t.Error("zero total")
	}
}

func TestLUInterOpsBuildStencil(t *testing.T) {
	g := grid.Cube(48)
	dec := grid.MustDecompose(g, 4, 4)
	ops := LU(g).InterOps(dec)(dec.Rank(grid.Coord{I: 2, J: 2}))
	var sends, recvs, computes int
	for _, op := range ops {
		switch op.Kind {
		case simmpi.OpSend:
			sends++
		case simmpi.OpRecv:
			recvs++
		case simmpi.OpCompute:
			computes++
		}
	}
	if sends == 0 || sends != recvs || computes != 1 {
		t.Errorf("stencil ops: %d sends, %d recvs, %d computes", sends, recvs, computes)
	}
}

func TestGrindTimeConstant(t *testing.T) {
	if GrindTime <= 0 || GrindTime > 10 {
		t.Errorf("implausible grind time %v µs", GrindTime)
	}
	g := grid.Cube(48)
	if got := Sweep3D(g, 1).App.Wg; got != Sweep3DAngles*GrindTime {
		t.Errorf("Sweep3D Wg = %v", got)
	}
	if got := Chimaera(g, 1).App.Wg; got != ChimaeraAngles*GrindTime {
		t.Errorf("Chimaera Wg = %v", got)
	}
}

// TestWithConvergenceReplaces checks that repeated WithConvergence calls
// replace the collective term rather than stacking: the analytic model must
// match a single application of the final configuration, in both the
// schedule and the NonWavefront closure.
func TestWithConvergenceReplaces(t *testing.T) {
	g := grid.Cube(24)
	mach := machine.XT4()
	dec := grid.MustDecompose(g, 4, 4)
	env := core.Env{Machine: mach, Dec: dec, Htile: 2}

	once := Sweep3D(g, 2).WithConvergence(4096, simmpi.AlgRing)
	twice := Sweep3D(g, 2).
		WithConvergence(65536, simmpi.AlgRecDouble).
		WithConvergence(4096, simmpi.AlgRing)
	if twice.ConvBytes != 4096 || twice.ConvAlg != simmpi.AlgRing {
		t.Fatalf("replacement kept old knobs: %d bytes alg %d", twice.ConvBytes, twice.ConvAlg)
	}
	if got, want := twice.App.NonWavefront(env), once.App.NonWavefront(env); got != want {
		t.Errorf("double WithConvergence model term %v, want %v (stacked, not replaced)", got, want)
	}
	base := Sweep3D(g, 2).App.NonWavefront(env)
	if got := once.App.NonWavefront(env); got <= base {
		t.Errorf("convergence term added nothing: %v vs base %v", got, base)
	}
}
