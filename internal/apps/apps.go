// Package apps provides the plug-and-play model input parameters of the
// three benchmark codes studied in the paper (Table 3) — NAS LU, LANL
// Sweep3D and AWE Chimaera — together with the sweep schedules needed to
// execute the same computations on the discrete-event simulator.
//
// The per-cell computation times (Wg, Wg,pre) are "measured" inputs in the
// paper. This reproduction calibrates them from a single per-cell-per-angle
// grind time so that the three codes have the paper's relative costs:
// Sweep3D computes six angles per cell, Chimaera ten (paper Section 5.1),
// and on 16K processors Sweep3D's 20M-cell problem has per-iteration cost
// similar to Chimaera's 240³ problem. Callers may override Wg with values
// measured from the real kernels in internal/sweep.
package apps

import (
	"fmt"
	"strings"

	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/simmpi"
	"repro/internal/wavefront"
	"repro/internal/workload"
)

// GrindTime is the calibrated computation time per cell per angle in µs.
// It plays the role of the paper's measured Wg inputs (see package doc).
const GrindTime = 0.123

// Default workload constants from the paper.
const (
	Sweep3DAngles     = 6   // mmo, paper Section 5
	ChimaeraAngles    = 10  // paper Section 5.1
	LUBytesPerCell    = 40  // five doubles per boundary cell (Table 3)
	ChimaeraIters     = 419 // iterations per time step (Section 5)
	Sweep3DIters      = 120 // representative iterations per step (Section 5)
	LUIters           = 250 // NAS LU SSOR iteration count
	Sweep3DEnergyGrps = 30  // energy groups for production problems (Section 5.2)
)

// Benchmark couples a model parameter set with the information the
// simulator needs to execute the same computation: the sweep origin corner
// sequence (Figure 2) and the inter-iteration operations.
type Benchmark struct {
	core.App
	Corners  []grid.Corner
	InterOps func(dec grid.Decomposition) func(rank int) []simmpi.Op

	// ConvBytes and ConvAlg, when ConvBytes > 0, add a per-iteration
	// convergence all-reduce to both the simulator schedule and the
	// analytic model (see WithConvergence). Zero means none — the paper's
	// Table 3 configurations.
	ConvBytes int
	ConvAlg   simmpi.CollAlg

	// Workload, if non-nil, perturbs the simulator's per-tile compute
	// cost (see WithWorkload). The analytic model keeps the paper's
	// uniform-compute assumption regardless.
	Workload *workload.Spec

	// nonWFBase is the benchmark's NonWavefront before WithConvergence
	// wrapped it, so repeated WithConvergence calls replace the collective
	// term instead of stacking terms the schedule does not execute.
	nonWFBase func(core.Env) float64
}

// transportBytes returns the Table 3 boundary message size functions for a
// particle transport code computing the given number of angles:
// 8 × Htile × #angles × (cells along the boundary).
func transportBytesEW(angles int) func(grid.Decomposition, int) int {
	return func(dec grid.Decomposition, htile int) int {
		return 8 * htile * angles * dec.CellsPerRankY()
	}
}

func transportBytesNS(angles int) func(grid.Decomposition, int) int {
	return func(dec grid.Decomposition, htile int) int {
		return 8 * htile * angles * dec.CellsPerRankX()
	}
}

// LU returns the NAS LU benchmark parameters (Table 3): two sweeps per
// iteration, both completing fully; a pre-computation before the receives;
// tile height fixed at one cell; 40-byte-per-cell boundary messages; and a
// four-point stencil between iterations.
func LU(g grid.Grid) Benchmark {
	app := core.App{
		Name:  "LU",
		Grid:  g,
		Wg:    0.60,
		WgPre: 0.30,
		Htile: 1,
		EWBytes: func(dec grid.Decomposition, _ int) int {
			return LUBytesPerCell * dec.CellsPerRankY()
		},
		NSBytes: func(dec grid.Decomposition, _ int) int {
			return LUBytesPerCell * dec.CellsPerRankX()
		},
		NonWavefront: core.StencilNonWavefront(0.15, LUBytesPerCell),
		Iterations:   LUIters,
	}.FromCorners(wavefront.LUCorners())
	return Benchmark{
		App:     app,
		Corners: wavefront.LUCorners(),
		InterOps: func(dec grid.Decomposition) func(int) []simmpi.Op {
			comp := 0.15 * float64(dec.CellsPerRankX()) * float64(dec.CellsPerRankY()) * float64(g.Nz)
			return wavefront.StencilInter(dec, comp,
				LUBytesPerCell*dec.CellsPerRankY()*g.Nz,
				LUBytesPerCell*dec.CellsPerRankX()*g.Nz)
		},
	}
}

// Sweep3D returns the LANL Sweep3D benchmark parameters (Table 3): eight
// octant sweeps in same-corner pairs, nfull = 2 and ndiag = 2, six angles,
// effective tile height Htile = mk × mmi/mmo, and two all-reduces between
// iterations.
func Sweep3D(g grid.Grid, htile int) Benchmark {
	app := core.App{
		Name:         "Sweep3D",
		Grid:         g,
		Wg:           Sweep3DAngles * GrindTime,
		WgPre:        0,
		Htile:        htile,
		EWBytes:      transportBytesEW(Sweep3DAngles),
		NSBytes:      transportBytesNS(Sweep3DAngles),
		NonWavefront: core.AllReduceNonWavefront(2),
		Iterations:   Sweep3DIters,
	}.FromCorners(wavefront.Sweep3DCorners())
	return Benchmark{
		App:     app,
		Corners: wavefront.Sweep3DCorners(),
		InterOps: func(grid.Decomposition) func(int) []simmpi.Op {
			return wavefront.AllReduceInter(2)
		},
	}
}

// Chimaera returns the AWE Chimaera benchmark parameters (Table 3): eight
// sweeps with the interleaved middle corner pairs that raise nfull to 4,
// ten angles, fixed tile height of one cell (the paper's proposed Htile
// parameter can be explored with WithHtile), and one all-reduce between
// iterations.
func Chimaera(g grid.Grid, htile int) Benchmark {
	app := core.App{
		Name:         "Chimaera",
		Grid:         g,
		Wg:           ChimaeraAngles * GrindTime,
		WgPre:        0,
		Htile:        htile,
		EWBytes:      transportBytesEW(ChimaeraAngles),
		NSBytes:      transportBytesNS(ChimaeraAngles),
		NonWavefront: core.AllReduceNonWavefront(1),
		Iterations:   ChimaeraIters,
	}.FromCorners(wavefront.ChimaeraCorners())
	return Benchmark{
		App:     app,
		Corners: wavefront.ChimaeraCorners(),
		InterOps: func(grid.Decomposition) func(int) []simmpi.Op {
			return wavefront.AllReduceInter(1)
		},
	}
}

// Custom builds a benchmark for a user-defined wavefront code — the
// "plug-and-play" use case: specify the inputs of Table 3 and obtain both a
// model and an executable simulator schedule.
func Custom(name string, g grid.Grid, wg, wgPre float64, htile int,
	corners []grid.Corner, ewBytes, nsBytes func(grid.Decomposition, int) int,
	nonWavefront func(core.Env) float64, iterations int,
	interOps func(dec grid.Decomposition) func(int) []simmpi.Op) Benchmark {
	app := core.App{
		Name:         name,
		Grid:         g,
		Wg:           wg,
		WgPre:        wgPre,
		Htile:        htile,
		EWBytes:      ewBytes,
		NSBytes:      nsBytes,
		NonWavefront: nonWavefront,
		Iterations:   iterations,
	}.FromCorners(corners)
	return Benchmark{App: app, Corners: corners, InterOps: interOps}
}

// Preset resolves a named paper benchmark ("lu", "sweep3d" or "chimaera",
// case-insensitive) on the given grid. A non-positive htile selects the
// benchmark's default tile height (LU 1, Sweep3D 2, Chimaera 1) — the one
// policy shared by every preset-taking surface (campaign specs, topoplan).
func Preset(name string, g grid.Grid, htile int) (Benchmark, error) {
	switch strings.ToLower(name) {
	case "lu":
		bm := LU(g)
		if htile > 0 {
			bm = bm.WithHtile(htile)
		}
		return bm, nil
	case "sweep3d":
		if htile <= 0 {
			htile = 2
		}
		return Sweep3D(g, htile), nil
	case "chimaera":
		if htile <= 0 {
			htile = 1
		}
		return Chimaera(g, htile), nil
	}
	return Benchmark{}, fmt.Errorf("apps: unknown app preset %q (want lu, sweep3d or chimaera)", name)
}

// WithHtile returns a copy of the benchmark with a different tile height.
func (b Benchmark) WithHtile(h int) Benchmark {
	b.App = b.App.WithHtile(h)
	return b
}

// WithIterations returns a copy with a different per-time-step iteration
// count.
func (b Benchmark) WithIterations(n int) Benchmark {
	b.App.Iterations = n
	return b
}

// WithWg returns a copy with measured per-cell computation times, e.g.
// calibrated from the real kernels in internal/sweep.
func (b Benchmark) WithWg(wg, wgPre float64) Benchmark {
	b.App.Wg = wg
	b.App.WgPre = wgPre
	return b
}

// WithConvergence returns a copy that performs a per-iteration convergence
// all-reduce of the given size executed by the given collective algorithm
// (coll.ParseAlg names it; AlgAuto is the closed-form exchange, AlgRing and
// AlgRecDouble the simulated algorithms of internal/coll). The analytic
// model gains the matching closed-form term on top of the benchmark's
// existing Tnonwavefront, so model-vs-simulator error remains a like-for-
// like comparison. Calling it again replaces the previous convergence
// collective in both the schedule and the model.
func (b Benchmark) WithConvergence(bytes int, alg simmpi.CollAlg) Benchmark {
	base := b.App.NonWavefront
	if b.ConvBytes > 0 {
		base = b.nonWFBase // unwrap the previous convergence term
	}
	b.nonWFBase = base
	b.ConvBytes, b.ConvAlg = bytes, alg
	c := coll.Collective{Kind: coll.Allreduce, Alg: alg, Bytes: bytes}
	b.App.NonWavefront = func(e core.Env) float64 {
		t := c.Model(e.Machine, e.P())
		if base != nil {
			t += base(e)
		}
		return t
	}
	return b
}

// WithWorkload returns a copy whose simulator schedules draw per-tile
// compute costs from the given workload spec: base × mul + noise, with
// mul and noise pure seeded functions of (rank, sweep, tile) — load
// imbalance, OS noise and multi-block regions (see internal/workload).
// Only the simulator side changes; the analytic model deliberately
// keeps the paper's uniform-compute assumption, so the model-vs-
// simulator error under imbalance is the measured quantity. A uniform
// spec (the zero value) leaves schedules bit-identical to no workload.
func (b Benchmark) WithWorkload(spec workload.Spec) Benchmark {
	b.Workload = &spec
	return b
}

// Schedule builds the simulator schedule of one iteration batch of the
// benchmark on the given decomposition.
func (b Benchmark) Schedule(dec grid.Decomposition, iterations int) (*wavefront.Schedule, error) {
	if dec.Grid != b.App.Grid {
		return nil, fmt.Errorf("apps: decomposition grid %v does not match app grid %v",
			dec.Grid, b.App.Grid)
	}
	var inter func(int) []simmpi.Op
	if b.InterOps != nil {
		inter = b.InterOps(dec)
	}
	s := &wavefront.Schedule{
		Dec:        dec,
		Corners:    b.Corners,
		Htile:      b.App.Htile,
		WPre:       b.App.WgPre * dec.CellsPerTile(b.App.Htile),
		W:          b.App.Wg * dec.CellsPerTile(b.App.Htile),
		BytesEW:    b.App.EWBytes(dec, b.App.Htile),
		BytesNS:    b.App.NSBytes(dec, b.App.Htile),
		Iterations: iterations,
		InterOps:   inter,
		ConvBytes:  b.ConvBytes,
		ConvAlg:    b.ConvAlg,
	}
	if b.Workload != nil {
		gen, err := workload.New(*b.Workload, dec)
		if err != nil {
			return nil, fmt.Errorf("apps: %s workload: %w", b.App.Name, err)
		}
		s.Tile = gen.Tile
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
