package main

import (
	"bytes"
	"flag"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// TestFlagInventory pins planner's flag surface.
func TestFlagInventory(t *testing.T) {
	fs := flag.NewFlagSet("planner", flag.ContinueOnError)
	registerFlags(fs)
	var got []string
	fs.VisitAll(func(f *flag.Flag) { got = append(got, f.Name) })
	sort.Strings(got)
	want := []string{"app", "cube", "groups", "htile", "minpartition", "pavail", "steps"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("flag inventory drifted:\n got %v\nwant %v", got, want)
	}
}

// TestRunOutput smoke-tests the default invocation (kept small via -cube):
// the header, the table and the recommendation line must all appear.
func TestRunOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-cube", "100", "-pavail", "16384"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"# Sweep3D", "partition", "steps/month", "recommendation: min R/X"} {
		if !strings.Contains(s, want) {
			t.Errorf("output lacks %q:\n%s", want, s)
		}
	}
}

// TestRunAllPresets: every preset the shared resolver knows — including
// lu, which the old hand-rolled switch lacked — plans without error.
func TestRunAllPresets(t *testing.T) {
	for _, app := range []string{"lu", "sweep3d", "chimaera"} {
		var out bytes.Buffer
		if err := run([]string{"-app", app, "-cube", "100", "-pavail", "16384"}, &out); err != nil {
			t.Errorf("run -app %s: %v", app, err)
		}
	}
}

// TestRunUnknownApp: an unknown preset is an error return, not os.Exit.
func TestRunUnknownApp(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-app", "hydra"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown app preset") {
		t.Errorf("unknown app: %v", err)
	}
}
