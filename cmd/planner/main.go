// Command planner answers the procurement and configuration questions of
// paper Section 5.2 for a particle transport workload: given an available
// processor count, it reports the scaling curve, the throughput of
// partitioned parallel simulations, and the optimal partition under the
// R/X and R²/X criteria.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/metrics"
)

func main() {
	app := flag.String("app", "sweep3d", "benchmark: sweep3d, chimaera")
	cube := flag.Int("cube", 1000, "problem size (cube edge, cells)")
	pavail := flag.Int("pavail", 131072, "available processor count")
	steps := flag.Float64("steps", 1e4, "time steps per simulation")
	groups := flag.Float64("groups", 30, "energy groups (multiplies runtime)")
	minPart := flag.Int("minpartition", 4096, "smallest partition to consider")
	flag.Parse()

	g := grid.Cube(*cube)
	var bm apps.Benchmark
	switch *app {
	case "sweep3d":
		bm = apps.Sweep3D(g, 2)
	case "chimaera":
		bm = apps.Chimaera(g, 2)
	default:
		fmt.Fprintf(os.Stderr, "planner: unknown app %q\n", *app)
		os.Exit(2)
	}
	mach := machine.XT4()
	eval := func(p int) (float64, error) {
		rep, err := core.New(bm.App, mach).EvaluateP(p)
		if err != nil {
			return 0, err
		}
		return rep.Total * *groups * *steps, nil
	}

	fmt.Printf("# %s %v on %s, %g steps × %g groups\n", bm.App.Name, g, mach.Name, *steps, *groups)
	fmt.Printf("%10s %14s %16s %12s %12s\n", "partition", "jobs", "R (days)", "R/X (norm)", "steps/month")
	var jobs []int
	for j := 1; *pavail/j >= *minPart; j *= 2 {
		jobs = append(jobs, j)
	}
	points, err := metrics.Partitions(*pavail, jobs, eval)
	if err != nil {
		fmt.Fprintln(os.Stderr, "planner:", err)
		os.Exit(1)
	}
	minRX := points[0].RoverX
	for _, p := range points {
		if p.RoverX < minRX {
			minRX = p.RoverX
		}
	}
	for _, p := range points {
		fmt.Printf("%10d %14d %16.2f %12.3f %12.1f\n",
			p.Partition, p.Jobs, p.R/1e6/86400, p.RoverX/minRX,
			metrics.TimeStepsPerMonth(p.R / *steps))
	}
	a, _ := metrics.Optimal(points, metrics.MinRoverX)
	b, _ := metrics.Optimal(points, metrics.MinR2overX)
	fmt.Printf("\nrecommendation: min R/X → %d jobs on %d-core partitions; min R²/X → %d jobs on %d-core partitions\n",
		a.Jobs, a.Partition, b.Jobs, b.Partition)
}
