// Command planner answers the procurement and configuration questions of
// paper Section 5.2 for a particle transport workload: given an available
// processor count, it reports the scaling curve, the throughput of
// partitioned parallel simulations, and the optimal partition under the
// R/X and R²/X criteria.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/metrics"
)

// plannerFlags is the command's flag surface; registration is separated
// from run so tests can pin the inventory.
type plannerFlags struct {
	app     *string
	htile   *int
	cube    *int
	pavail  *int
	steps   *float64
	groups  *float64
	minPart *int
}

func registerFlags(fs *flag.FlagSet) plannerFlags {
	return plannerFlags{
		app:     fs.String("app", "sweep3d", "benchmark preset: lu, sweep3d, chimaera"),
		htile:   fs.Int("htile", 0, "tile height (default: the preset's own — LU 1, Sweep3D 2, Chimaera 1)"),
		cube:    fs.Int("cube", 1000, "problem size (cube edge, cells)"),
		pavail:  fs.Int("pavail", 131072, "available processor count"),
		steps:   fs.Float64("steps", 1e4, "time steps per simulation"),
		groups:  fs.Float64("groups", 30, "energy groups (multiplies runtime)"),
		minPart: fs.Int("minpartition", 4096, "smallest partition to consider"),
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "planner:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("planner", flag.ContinueOnError)
	f := registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g := grid.Cube(*f.cube)
	bm, err := apps.Preset(*f.app, g, *f.htile)
	if err != nil {
		return err
	}
	mach := machine.XT4()
	eval := func(p int) (float64, error) {
		rep, err := core.New(bm.App, mach).EvaluateP(p)
		if err != nil {
			return 0, err
		}
		return rep.Total * *f.groups * *f.steps, nil
	}

	fmt.Fprintf(out, "# %s %v on %s, %g steps × %g groups\n", bm.App.Name, g, mach.Name, *f.steps, *f.groups)
	fmt.Fprintf(out, "%10s %14s %16s %12s %12s\n", "partition", "jobs", "R (days)", "R/X (norm)", "steps/month")
	var jobs []int
	for j := 1; *f.pavail/j >= *f.minPart; j *= 2 {
		jobs = append(jobs, j)
	}
	points, err := metrics.Partitions(*f.pavail, jobs, eval)
	if err != nil {
		return err
	}
	minRX := points[0].RoverX
	for _, p := range points {
		if p.RoverX < minRX {
			minRX = p.RoverX
		}
	}
	for _, p := range points {
		fmt.Fprintf(out, "%10d %14d %16.2f %12.3f %12.1f\n",
			p.Partition, p.Jobs, p.R/1e6/86400, p.RoverX/minRX,
			metrics.TimeStepsPerMonth(p.R / *f.steps))
	}
	a, _ := metrics.Optimal(points, metrics.MinRoverX)
	b, _ := metrics.Optimal(points, metrics.MinR2overX)
	fmt.Fprintf(out, "\nrecommendation: min R/X → %d jobs on %d-core partitions; min R²/X → %d jobs on %d-core partitions\n",
		a.Jobs, a.Partition, b.Jobs, b.Partition)
	return nil
}
