// Command plugplay is the end-to-end plug-and-play workflow: read a JSON
// description of a wavefront application and a machine (the paper's
// Table 3 inputs), predict its runtime with the re-usable model across a
// processor sweep, and optionally validate a point against the
// discrete-event simulator with a per-rank activity profile.
//
// Usage:
//
//	plugplay -example > app.json     # write a template spec
//	plugplay -f app.json -p 256,1024,4096
//	plugplay -f app.json -p 256 -simulate -gantt
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/trace"
)

func main() {
	file := flag.String("f", "", "JSON run description (see -example)")
	plist := flag.String("p", "256,1024,4096", "comma-separated processor counts")
	simulate := flag.Bool("simulate", false, "validate the first processor count on the simulator")
	gantt := flag.Bool("gantt", false, "with -simulate: print a per-rank activity chart")
	example := flag.Bool("example", false, "print an example spec and exit")
	iters := flag.Int("simiters", 1, "iterations to simulate with -simulate")
	flag.Parse()

	if *example {
		out, err := config.Render(config.Example())
		check(err)
		fmt.Println(string(out))
		return
	}
	if *file == "" {
		fmt.Fprintln(os.Stderr, "plugplay: -f required (or -example)")
		os.Exit(2)
	}
	f, err := config.Load(*file)
	check(err)
	bm, err := f.App.Benchmark()
	check(err)
	mach, err := f.Machine.Machine()
	check(err)

	fmt.Printf("# %s on %s\n", bm.App.Name, mach)
	fmt.Printf("# nsweeps=%d nfull=%d ndiag=%d Htile=%d iterations=%d\n",
		bm.App.NSweeps, bm.App.NFull, bm.App.NDiag, bm.App.Htile, bm.App.Iterations)
	fmt.Printf("%10s %12s %14s %10s %10s\n", "P", "s/step", "fill(ms/iter)", "comm%", "speedup")

	var ps []int
	for _, s := range strings.Split(*plist, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		check(err)
		ps = append(ps, p)
	}
	var base float64
	for i, p := range ps {
		rep, err := core.New(bm.App, mach).EvaluateP(p)
		check(err)
		if i == 0 {
			base = rep.Total
		}
		fmt.Printf("%10d %12.3f %14.3f %9.1f%% %9.2fx\n",
			p, rep.TotalSeconds(), rep.FillTimePerIter/1e3,
			rep.CommPerIter/rep.TimePerIteration*100, base/rep.Total)
	}

	if !*simulate {
		return
	}
	p := ps[0]
	dec, err := grid.SquareDecomposition(bm.App.Grid, p)
	check(err)
	bmSim := bm.WithIterations(*iters)
	rep, err := core.New(bmSim.App, mach).Evaluate(dec)
	check(err)
	sched, err := bmSim.Schedule(dec, *iters)
	check(err)
	topo, err := simnet.NewMachineTopology(mach, dec)
	check(err)
	rec := trace.NewRecorder()
	sim, err := simmpi.NewWithOptions(topo, simmpi.Options{Tracer: rec})
	check(err)
	for r, prog := range sched.Programs() {
		sim.SetProgram(r, prog)
	}
	res, err := sim.Run()
	check(err)

	fmt.Printf("\n# simulation at P=%d (%d iteration(s))\n", p, *iters)
	fmt.Printf("simulated: %.3f ms   model: %.3f ms   error: %+.2f%%\n",
		res.Time/1e3, rep.Total/1e3, (rep.Total-res.Time)/res.Time*100)
	profiles := rec.Profile(dec.P())
	sum := trace.Summarize(profiles)
	fmt.Printf("mean comm share: %.1f%% (model predicts %.1f%%); busiest rank %d; most comm-bound rank %d\n",
		sum.MeanCommShare*100, rep.CommPerIter/rep.TimePerIteration*100,
		sum.CriticalRank, sum.BoundRank)
	for _, pr := range trace.TopCommBound(profiles, 3) {
		fmt.Printf("  rank %4d: compute %.1fµs, send %.1fµs, recv %.1fµs, coll %.1fµs (%.1f%% comm)\n",
			pr.Rank, pr.Compute, pr.Send, pr.Recv, pr.Coll, pr.CommShare()*100)
	}
	if *gantt {
		fmt.Println()
		rec.Gantt(os.Stdout, dec.P(), 100)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "plugplay:", err)
		os.Exit(1)
	}
}
