// Command wavebench regenerates the paper's tables and figures: it runs
// the experiment drivers of internal/experiments and prints the rows each
// paper artefact plots.
//
// Usage:
//
//	wavebench -list
//	wavebench -exp fig5
//	wavebench -exp all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run (see -list), or 'all'")
	quick := flag.Bool("quick", false, "reduced problem/processor sizes for fast runs")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, id := range experiments.IDs() {
			fmt.Println("  " + id)
		}
		return
	}

	if *exp == "all" {
		tables, err := experiments.All(*quick)
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "wavebench:", err)
			os.Exit(1)
		}
		return
	}

	for _, id := range strings.Split(*exp, ",") {
		t, err := experiments.Run(strings.TrimSpace(id), *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wavebench:", err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
	}
}
