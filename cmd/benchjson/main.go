// Command benchjson runs the simulator's key performance benchmarks and
// writes the results as JSON so the performance trajectory can be tracked
// across pull requests (the CI workflow archives the file).
//
// Usage:
//
//	go run ./cmd/benchjson [-o BENCH_simmpi.json] [-benchtime N]
//
// The headline metric reproduces BenchmarkSimulatorEventRate: one full
// Sweep3D iteration (64³ grid, 16×16 decomposition, 256 ranks on the XT4
// model) per op, reporting discrete-event throughput and the per-event
// allocation rate. The same workload is repeated at 4 conservative-parallel
// shards (parallel_events_per_sec, barrier_stalls_per_window) so the serial
// and sharded trajectories are directly comparable. Batch throughput is
// tracked alongside them: the built-in example campaign (24 model+simulator
// runs across the sweep dimensions) executed on the full worker pool,
// reported in runs per second. A handful of experiment drivers are timed as
// end-to-end regression canaries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/apps"
	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
)

type driverTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
	Rows    int     `json:"rows"`
}

type report struct {
	Benchmark      string  `json:"benchmark"`
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	EventsPerRun   uint64  `json:"events_per_run"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerOp     int64   `json:"bytes_per_op"`

	// The same workload with the observability recorder explicitly
	// detached (simmpi.Options{Obs: nil}): the nil-guarded hooks must keep
	// the disabled path as fast as having no hooks at all, and this metric
	// is what the benchgate holds to that claim.
	EventsPerSecObsDisabled float64 `json:"events_per_sec_obs_disabled"`

	// Campaign batch throughput on the built-in example sweep: how many
	// model+simulator runs per second the worker pool sustains.
	CampaignRuns       int     `json:"campaign_runs"`
	CampaignWorkers    int     `json:"campaign_workers"`
	CampaignSeconds    float64 `json:"campaign_seconds"`
	CampaignRunsPerSec float64 `json:"campaign_runs_per_sec"`

	// Conservative-parallel throughput: the event-rate workload run at
	// K=4 shards (simmpi.Options{Shards: 4}), so the two events/s columns are
	// directly comparable. barrier_stalls_per_window is deterministic —
	// the fraction of (shard, window) pairs that ran no events, the load-
	// imbalance diagnostic of the sharded scheduler.
	ParallelShards         int     `json:"parallel_shards"`
	ParallelEventsPerSec   float64 `json:"parallel_events_per_sec"`
	ParallelWindows        uint64  `json:"parallel_windows"`
	BarrierStallsPerWindow float64 `json:"barrier_stalls_per_window"`

	Drivers       []driverTiming `json:"drivers"`
	GeneratedUnix int64          `json:"generated_unix"`
}

// campaignRate executes the built-in example campaign repeatedly (after one
// warm-up) and reports batch throughput in runs per second.
func campaignRate(repeats int) (runs, workers int, seconds float64) {
	spec := campaign.Example()
	expanded, err := spec.Expand()
	if err != nil {
		panic(err)
	}
	workers = runtime.GOMAXPROCS(0)
	eng := campaign.Engine{Workers: workers}
	if _, err := eng.Execute(expanded); err != nil { // warm-up
		panic(err)
	}
	start := time.Now()
	for i := 0; i < repeats; i++ {
		if _, err := eng.Execute(expanded); err != nil {
			panic(err)
		}
	}
	return len(expanded) * repeats, workers, time.Since(start).Seconds()
}

// eventRate runs the event-rate workload iters times (after one warm-up)
// and measures wall time and heap allocations per op. obsDisabled runs the
// workload with the observability recorder explicitly configured nil
// (simmpi.Options) — semantically identical to never attaching one, measured
// separately so the nil-guarded hook cost is tracked as its own metric.
func eventRate(iters int, obsDisabled bool) (nsPerOp float64, events uint64, allocsPerOp, bytesPerOp int64) {
	g := grid.Cube(64)
	bm := apps.Sweep3D(g, 2)
	mach := machine.XT4()
	dec := grid.MustDecompose(g, 16, 16)
	run := func() uint64 {
		sched, err := bm.Schedule(dec, 1)
		if err != nil {
			panic(err)
		}
		topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
		var sim *simmpi.Sim
		if obsDisabled {
			// Explicitly configure a nil recorder — semantically identical
			// to never attaching one — so the nil-guarded hook cost is
			// measured as its own metric.
			s, err := simmpi.NewWithOptions(topo, simmpi.Options{Obs: nil})
			if err != nil {
				panic(err)
			}
			sim = s
		} else {
			sim = simmpi.New(topo)
		}
		for r, p := range sched.Programs() {
			sim.SetProgram(r, p)
		}
		res, err := sim.Run()
		if err != nil {
			panic(err)
		}
		return res.Events
	}
	events = run() // warm-up
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		events = run()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	allocsPerOp = int64(after.Mallocs-before.Mallocs) / int64(iters)
	bytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / int64(iters)
	return nsPerOp, events, allocsPerOp, bytesPerOp
}

// parallelRate runs the event-rate workload at the given shard count
// (after one warm-up) and reports wall time per op plus the scheduler's
// window statistics.
func parallelRate(iters, shards int) (nsPerOp float64, events, windows, stalls uint64) {
	g := grid.Cube(64)
	bm := apps.Sweep3D(g, 2)
	mach := machine.XT4()
	dec := grid.MustDecompose(g, 16, 16)
	run := func() {
		sched, err := bm.Schedule(dec, 1)
		if err != nil {
			panic(err)
		}
		topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
		sim, err := simmpi.NewWithOptions(topo, simmpi.Options{Shards: shards})
		if err != nil {
			panic(err)
		}
		for r, p := range sched.Programs() {
			sim.SetProgram(r, p)
		}
		res, err := sim.Run()
		if err != nil {
			panic(err)
		}
		events = res.Events
		_, windows, stalls = sim.ParallelStats()
	}
	run() // warm-up
	start := time.Now()
	for i := 0; i < iters; i++ {
		run()
	}
	nsPerOp = float64(time.Since(start).Nanoseconds()) / float64(iters)
	return nsPerOp, events, windows, stalls
}

func main() {
	out := flag.String("o", "BENCH_simmpi.json", "output path")
	iters := flag.Int("benchtime", 10, "iteration count for the event-rate benchmark")
	flag.Parse()

	nsPerOp, events, allocsPerOp, bytesPerOp := eventRate(*iters, false)
	obsNsPerOp, obsEvents, _, _ := eventRate(*iters, true)
	parNsPerOp, parEvents, parWindows, parStalls := parallelRate(*iters, 4)
	campRuns, campWorkers, campSeconds := campaignRate(*iters)

	rep := report{
		Benchmark:      "BenchmarkSimulatorEventRate",
		Iterations:     *iters,
		NsPerOp:        nsPerOp,
		EventsPerRun:   events,
		EventsPerSec:   float64(events) / (nsPerOp / 1e9),
		AllocsPerOp:    allocsPerOp,
		AllocsPerEvent: float64(allocsPerOp) / float64(events),
		BytesPerOp:     bytesPerOp,

		EventsPerSecObsDisabled: float64(obsEvents) / (obsNsPerOp / 1e9),

		CampaignRuns:       campRuns,
		CampaignWorkers:    campWorkers,
		CampaignSeconds:    campSeconds,
		CampaignRunsPerSec: float64(campRuns) / campSeconds,

		ParallelShards:         4,
		ParallelEventsPerSec:   float64(parEvents) / (parNsPerOp / 1e9),
		ParallelWindows:        parWindows,
		BarrierStallsPerWindow: float64(parStalls) / float64(parWindows),

		GeneratedUnix: time.Now().Unix(),
	}

	for _, id := range []string{"table4", "fig10", "fig11"} {
		start := time.Now()
		tab, err := experiments.Run(id, false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: driver %s: %v\n", id, err)
			os.Exit(1)
		}
		rep.Drivers = append(rep.Drivers, driverTiming{
			ID:      id,
			Seconds: time.Since(start).Seconds(),
			Rows:    len(tab.Rows),
		})
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %.1fM events/s serial, %.1fM events/s at %d shards (%.3f stalls/window), %.4f allocs/event, %.0f campaign runs/s (%d workers), %d iterations\n",
		*out, rep.EventsPerSec/1e6, rep.ParallelEventsPerSec/1e6, rep.ParallelShards,
		rep.BarrierStallsPerWindow, rep.AllocsPerEvent, rep.CampaignRunsPerSec, rep.CampaignWorkers, rep.Iterations)
}
