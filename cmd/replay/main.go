// Command replay re-executes a recorded op trace (internal/replay) and
// diffs the result against the recording bit for bit — the determinism
// gate for the simulator: same ops on the same machine description must
// yield the same virtual time, event count and traffic, to the last
// bit, on any host.
//
// Usage:
//
//	replay -in trace.jsonl [-out replayed.jsonl] [-shards K] [-quiet]
//
// With -out the replay re-records itself to a new trace file; when the
// replay matches the recording, the two files are byte-identical (the
// CI round-trip smoke cmp's them). A result mismatch prints the
// diverging fields and exits 1.
//
// Record traces with `sweepsim -record-trace trace.jsonl`.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/obs"
	"repro/internal/replay"
)

func main() {
	in := flag.String("in", "", "trace file to replay (required)")
	out := flag.String("out", "", "re-record the replay to this trace file")
	shards := cliflags.RegisterShards(flag.CommandLine, 1)
	quiet := flag.Bool("quiet", false, "suppress per-run output")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "replay: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	check(err)
	hdr, ops, err := replay.Read(f)
	check(err)
	check(f.Close())

	var rec *obs.Recorder
	if *out != "" {
		rec = &obs.Recorder{Ops: true}
	}
	res, err := replay.Replay(hdr, ops, replay.Options{Shards: *shards, Rec: rec})
	check(err)

	if !*quiet {
		label := hdr.App
		if hdr.Workload != "" {
			label += " / " + hdr.Workload
		}
		fmt.Printf("replayed:  %s (%d ranks, %dx%d)\n", label, hdr.Ranks(), hdr.DecN, hdr.DecM)
		fmt.Printf("simulated: %.1f µs, %d events, %d messages, %d bytes\n",
			res.Time, res.Events, res.Sends, res.BytesSent)
	}

	if rec != nil {
		check(obs.EnsureParent(*out))
		of, err := os.Create(*out)
		check(err)
		check(replay.Write(of, hdr.WithResult(res), rec))
		check(of.Close())
		if !*quiet {
			fmt.Printf("re-recorded: %s\n", *out)
		}
	}

	if diffs := replay.Diff(hdr, res); diffs != nil {
		fmt.Fprintln(os.Stderr, "replay: result diverged from the recording:")
		for _, d := range diffs {
			fmt.Fprintln(os.Stderr, "  "+d)
		}
		os.Exit(1)
	}
	if !*quiet {
		fmt.Println("result:    bit-identical to the recording")
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}
