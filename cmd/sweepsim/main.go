// Command sweepsim executes a wavefront benchmark on the discrete-event
// MPI simulator and compares the result with the plug-and-play model
// prediction — the reproduction's analogue of running the real code on the
// Cray XT4 and validating the model against it.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/simmpi"
	"repro/internal/simnet"
)

func main() {
	app := flag.String("app", "sweep3d", "benchmark: lu, sweep3d, chimaera")
	cube := flag.Int("cube", 64, "problem size (cube edge, cells)")
	p := flag.Int("p", 64, "total processor (core) count")
	htile := flag.Int("htile", 2, "tile height")
	iters := flag.Int("iters", 2, "iterations to simulate")
	cores := flag.Int("cores", 2, "cores per node")
	shards := flag.Int("shards", 1, "conservative-parallel shard count (results are bit-identical for every sharded count)")
	hist := flag.Bool("hist", false, "print duration-histogram summaries (recv wait, message latency, link delay)")
	chromeTrace := flag.String("chrome-trace", "", "write a Chrome trace-event timeline (load in Perfetto) to this file")
	sampleEvery := flag.Float64("sample-every", 0, "sample time-series metrics every Δt µs into -sample-out")
	sampleOut := flag.String("sample-out", "samples.csv", "time-series CSV path for -sample-every")
	traceWindows := flag.Bool("trace-windows", false, "include per-shard lookahead-window tracks in -chrome-trace (these depend on -shards)")
	pf := prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := pf.Start()
	check(err)
	defer func() { check(stopProf()) }()

	g := grid.Cube(*cube)
	var bm apps.Benchmark
	switch *app {
	case "lu":
		bm = apps.LU(g)
	case "sweep3d":
		bm = apps.Sweep3D(g, *htile)
	case "chimaera":
		bm = apps.Chimaera(g, *htile)
	default:
		fmt.Fprintf(os.Stderr, "sweepsim: unknown app %q\n", *app)
		os.Exit(2)
	}
	bm = bm.WithIterations(*iters)

	mach, err := machine.XT4MultiCore(*cores)
	check(err)
	dec, err := grid.SquareDecomposition(g, *p)
	check(err)

	rep, err := core.New(bm.App, mach).Evaluate(dec)
	check(err)

	sched, err := bm.Schedule(dec, *iters)
	check(err)
	topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	sim := simmpi.New(topo)
	sim.SetShards(*shards)
	var rec *obs.Recorder
	if *hist || *chromeTrace != "" || *sampleEvery > 0 {
		rec = &obs.Recorder{
			Spans:    *chromeTrace != "" || *sampleEvery > 0,
			Messages: *chromeTrace != "" || *sampleEvery > 0,
			Links:    *chromeTrace != "" || *sampleEvery > 0,
			Windows:  *traceWindows,
			Hist:     *hist,
		}
		sim.SetObs(rec)
	}
	for r, prog := range sched.Programs() {
		sim.SetProgram(r, prog)
	}
	res, err := sim.Run()
	check(err)

	fmt.Printf("app=%s grid=%v P=%d (%dx%d) cores/node=%d Htile=%d iterations=%d\n",
		bm.App.Name, g, dec.P(), dec.N, dec.M, mach.CoresPerNode, bm.App.Htile, *iters)
	fmt.Printf("simulated:   %12.1f µs  (%.4f s)\n", res.Time, res.Time/1e6)
	fmt.Printf("model:       %12.1f µs  (%.4f s)\n", rep.Total, rep.Total/1e6)
	fmt.Printf("error:       %+11.2f%%\n", (rep.Total-res.Time)/res.Time*100)
	fmt.Printf("breakdown:   fill=%.1fµs stack=%.1fµs non-wavefront=%.1fµs per iteration\n",
		rep.FillTimePerIter, float64(bm.App.NSweeps)*rep.TStack, rep.TNonWavefront)
	fmt.Printf("model comm:  %.1f%% of iteration\n", rep.CommPerIter/rep.TimePerIteration*100)
	fmt.Printf("simulator:   %d events, %d messages, %d bus waits (%.1fµs total wait)\n",
		res.Events, res.Sends, res.BusQueued, res.BusWait)
	if k, windows, stalls := sim.ParallelStats(); k > 1 {
		fmt.Printf("parallel:    %d shards, %d lookahead windows, %d barrier stalls\n",
			k, windows, stalls)
	}
	if *hist && res.Hists != nil {
		fmt.Println("histograms (µs):")
		res.Hists.Write(os.Stdout)
	}
	if *chromeTrace != "" {
		opt := obs.TimelineOptions{}
		if ic := topo.Interconnect(); ic != nil {
			opt.LinkName = ic.LinkName
		}
		check(writeArtifact(*chromeTrace, func(f *os.File) error {
			return obs.WriteTimeline(f, rec, opt)
		}))
		fmt.Printf("trace:       %s (open in https://ui.perfetto.dev)\n", *chromeTrace)
	}
	if *sampleEvery > 0 {
		check(writeArtifact(*sampleOut, func(f *os.File) error {
			return obs.WriteSamples(f, rec, *sampleEvery)
		}))
		fmt.Printf("samples:     %s (every %gµs)\n", *sampleOut, *sampleEvery)
	}
}

// writeArtifact creates path (parents included) and streams one
// observability artifact into it.
func writeArtifact(path string, write func(*os.File) error) error {
	if err := obs.EnsureParent(path); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepsim:", err)
		os.Exit(1)
	}
}
