// Command sweepsim executes a wavefront benchmark on the discrete-event
// MPI simulator and compares the result with the plug-and-play model
// prediction — the reproduction's analogue of running the real code on the
// Cray XT4 and validating the model against it.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/cliflags"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/replay"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/workload"
)

func main() {
	app := flag.String("app", "sweep3d", "benchmark: lu, sweep3d, chimaera")
	cube := flag.Int("cube", 64, "problem size (cube edge, cells)")
	p := flag.Int("p", 64, "total processor (core) count")
	htile := flag.Int("htile", 2, "tile height")
	iters := flag.Int("iters", 2, "iterations to simulate")
	cores := flag.Int("cores", 2, "cores per node")
	wlJSON := flag.String("workload", "", `per-tile workload spec as inline JSON, e.g. '{"dist":"lognormal","sigma":0.4,"seed":7}' (see internal/workload)`)
	recordTrace := flag.String("record-trace", "", "record the run's op trace to this JSONL file (replay with cmd/replay)")
	shards := cliflags.RegisterShards(flag.CommandLine, 1)
	obsFlags := cliflags.RegisterObs(flag.CommandLine)
	pf := prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := pf.Start()
	check(err)
	defer func() { check(stopProf()) }()

	g := grid.Cube(*cube)
	var bm apps.Benchmark
	switch *app {
	case "lu":
		bm = apps.LU(g)
	case "sweep3d":
		bm = apps.Sweep3D(g, *htile)
	case "chimaera":
		bm = apps.Chimaera(g, *htile)
	default:
		fmt.Fprintf(os.Stderr, "sweepsim: unknown app %q\n", *app)
		os.Exit(2)
	}
	bm = bm.WithIterations(*iters)

	var wl workload.Spec
	if *wlJSON != "" {
		if err := config.DecodeStrict([]byte(*wlJSON), &wl); err != nil {
			check(fmt.Errorf("-workload: %w", err))
		}
		bm = bm.WithWorkload(wl)
	}

	// The machine is built from its config spec so a recorded trace
	// header describes exactly the hardware this run simulated.
	mspec := config.MachineSpec{Preset: "xt4", CoresPerNode: *cores}
	mach, err := mspec.Machine()
	check(err)
	dec, err := grid.SquareDecomposition(g, *p)
	check(err)

	rep, err := core.New(bm.App, mach).Evaluate(dec)
	check(err)

	sched, err := bm.Schedule(dec, *iters)
	check(err)
	topo, err := simnet.NewMachineTopology(mach, dec)
	check(err)
	rec := obsFlags.Recorder()
	if obsFlags.Hist {
		if rec == nil {
			rec = &obs.Recorder{}
		}
		rec.Hist = true
	}
	if *recordTrace != "" {
		if rec == nil {
			rec = &obs.Recorder{}
		}
		rec.Ops = true
	}
	sim, err := simmpi.NewWithOptions(topo, simmpi.Options{Shards: *shards, Obs: rec})
	check(err)
	for r, prog := range sched.Programs() {
		sim.SetProgram(r, prog)
	}
	res, err := sim.Run()
	check(err)

	fmt.Printf("app=%s grid=%v P=%d (%dx%d) cores/node=%d Htile=%d iterations=%d\n",
		bm.App.Name, g, dec.P(), dec.N, dec.M, mach.CoresPerNode, bm.App.Htile, *iters)
	fmt.Printf("simulated:   %12.1f µs  (%.4f s)\n", res.Time, res.Time/1e6)
	fmt.Printf("model:       %12.1f µs  (%.4f s)\n", rep.Total, rep.Total/1e6)
	fmt.Printf("error:       %+11.2f%%\n", (rep.Total-res.Time)/res.Time*100)
	fmt.Printf("breakdown:   fill=%.1fµs stack=%.1fµs non-wavefront=%.1fµs per iteration\n",
		rep.FillTimePerIter, float64(bm.App.NSweeps)*rep.TStack, rep.TNonWavefront)
	fmt.Printf("model comm:  %.1f%% of iteration\n", rep.CommPerIter/rep.TimePerIteration*100)
	fmt.Printf("simulator:   %d events, %d messages, %d bus waits (%.1fµs total wait)\n",
		res.Events, res.Sends, res.BusQueued, res.BusWait)
	if k, windows, stalls := sim.ParallelStats(); k > 1 {
		fmt.Printf("parallel:    %d shards, %d lookahead windows, %d barrier stalls\n",
			k, windows, stalls)
	}
	if *recordTrace != "" {
		hdr := replay.Header{
			App:      bm.App.Name,
			Workload: workloadLabel(bm),
			Machine:  mspec,
			Grid:     config.GridSpec{Nx: g.Nx, Ny: g.Ny, Nz: g.Nz},
			DecN:     dec.N,
			DecM:     dec.M,
		}.WithResult(res)
		check(obs.EnsureParent(*recordTrace))
		tf, err := os.Create(*recordTrace)
		check(err)
		check(replay.Write(tf, hdr, rec))
		check(tf.Close())
		fmt.Printf("trace:       %s (replay with `replay -in %s`)\n", *recordTrace, *recordTrace)
	}
	if obsFlags.Hist && res.Hists != nil {
		fmt.Println("histograms (µs):")
		res.Hists.Write(os.Stdout)
	}
	topt := obs.TimelineOptions{}
	if ic := topo.Interconnect(); ic != nil {
		topt.LinkName = ic.LinkName
	}
	check(obsFlags.WriteArtifacts(rec, topt, nil))
	if obsFlags.ChromeTrace != "" {
		fmt.Printf("trace:       %s (open in https://ui.perfetto.dev)\n", obsFlags.ChromeTrace)
	}
	if obsFlags.SampleEvery > 0 {
		fmt.Printf("samples:     %s (every %gµs)\n", obsFlags.SampleOut, obsFlags.SampleEvery)
	}
}

func workloadLabel(bm apps.Benchmark) string {
	if bm.Workload == nil {
		return ""
	}
	return bm.Workload.String()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepsim:", err)
		os.Exit(1)
	}
}
