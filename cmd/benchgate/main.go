// Command benchgate compares a fresh cmd/benchjson report against the
// checked-in baseline (BENCH_baseline.json) and fails when a headline
// throughput metric regressed beyond the threshold. CI runs it on every
// push so a performance regression fails the build the same way a broken
// test does.
//
// Usage:
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_simmpi.json [-threshold 0.15]
//
// Gated metrics:
//
//   - events_per_sec: discrete-event throughput of one Sweep3D iteration
//     (fails below (1−threshold)×baseline)
//   - campaign_runs_per_sec: worker-pool batch throughput
//     (fails below (1−threshold)×baseline)
//   - allocs_per_event: allocation rate of the hot path — deterministic,
//     so it is gated absolutely: it may not exceed baseline + 0.05
//   - parallel_events_per_sec: the same workload at 4 shards
//     (fails below (1−threshold)×baseline)
//   - barrier_stalls_per_window: sharded-scheduler load imbalance,
//     deterministic; may not exceed baseline + 0.25
//   - events_per_sec_obs_disabled: the event-rate workload with the
//     observability recorder explicitly detached — holds the nil-guarded
//     hooks to their zero-cost-when-disabled claim
//     (fails below (1−threshold)×baseline)
//
// The parallel and obs-disabled gates are skipped when the baseline
// predates the corresponding subsystem and lacks the fields, so old
// blessed baselines pass.
//
// Exit status 0 when every gate passes, 1 on regression, 2 on bad input.
// To bless a new baseline, see README.md ("CI performance gate").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// metrics is the subset of the benchjson report the gate reads; unknown
// fields are ignored so the report can grow freely.
type metrics struct {
	EventsPerSec       float64 `json:"events_per_sec"`
	CampaignRunsPerSec float64 `json:"campaign_runs_per_sec"`
	AllocsPerEvent     float64 `json:"allocs_per_event"`
	GeneratedUnix      int64   `json:"generated_unix"`

	// Conservative-parallel metrics (absent in baselines recorded before
	// the sharded scheduler existed — those gates are skipped then, so an
	// old blessed baseline still passes).
	ParallelEventsPerSec   float64 `json:"parallel_events_per_sec"`
	BarrierStallsPerWindow float64 `json:"barrier_stalls_per_window"`

	// Observability-disabled throughput (absent in baselines recorded
	// before the obs layer existed — the gate is skipped then).
	EventsPerSecObsDisabled float64 `json:"events_per_sec_obs_disabled"`
}

func load(path string) (metrics, error) {
	var m metrics
	data, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("%s: %w", path, err)
	}
	if m.EventsPerSec <= 0 || m.CampaignRunsPerSec <= 0 {
		return m, fmt.Errorf("%s: missing throughput metrics", path)
	}
	return m, nil
}

func main() {
	basePath := flag.String("baseline", "BENCH_baseline.json", "blessed baseline report")
	curPath := flag.String("current", "BENCH_simmpi.json", "freshly measured report")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional throughput regression")
	flag.Parse()

	if *threshold <= 0 || *threshold >= 1 {
		fmt.Fprintf(os.Stderr, "benchgate: threshold %v outside (0, 1)\n", *threshold)
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := load(*curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	failed := false
	gate := func(name string, baseline, current float64) {
		floor := baseline * (1 - *threshold)
		change := current/baseline - 1
		status := "ok"
		if current < floor {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-22s baseline %12.4g  current %12.4g  change %+7.2f%%  floor %12.4g  %s\n",
			name, baseline, current, 100*change, floor, status)
	}
	gate("events_per_sec", base.EventsPerSec, cur.EventsPerSec)
	gate("campaign_runs_per_sec", base.CampaignRunsPerSec, cur.CampaignRunsPerSec)
	if base.ParallelEventsPerSec > 0 {
		gate("parallel_events_per_sec", base.ParallelEventsPerSec, cur.ParallelEventsPerSec)
	} else {
		fmt.Printf("%-22s skipped (baseline lacks parallel metrics)\n", "parallel_events_per_sec")
	}
	if base.EventsPerSecObsDisabled > 0 {
		gate("events/s_obs_disabled", base.EventsPerSecObsDisabled, cur.EventsPerSecObsDisabled)
	} else {
		fmt.Printf("%-22s skipped (baseline lacks obs-disabled metric)\n", "events/s_obs_disabled")
	}

	// Allocations are deterministic, not noisy: any real increase is a leak
	// into the hot path. A small absolute slack covers runtime bookkeeping.
	const allocSlack = 0.05
	status := "ok"
	if cur.AllocsPerEvent > base.AllocsPerEvent+allocSlack {
		status = "FAIL"
		failed = true
	}
	fmt.Printf("%-22s baseline %12.4g  current %12.4g  ceiling %12.4g  %s\n",
		"allocs_per_event", base.AllocsPerEvent, cur.AllocsPerEvent, base.AllocsPerEvent+allocSlack, status)

	// Stalls per window are deterministic for a fixed workload; the slack
	// only covers intentional workload evolution, not scheduler drift.
	if base.ParallelEventsPerSec > 0 {
		const stallSlack = 0.25
		status := "ok"
		if cur.BarrierStallsPerWindow > base.BarrierStallsPerWindow+stallSlack {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-22s baseline %12.4g  current %12.4g  ceiling %12.4g  %s\n",
			"barrier_stalls/window", base.BarrierStallsPerWindow, cur.BarrierStallsPerWindow,
			base.BarrierStallsPerWindow+stallSlack, status)
	}

	if failed {
		fmt.Printf("\nperformance gate FAILED (threshold %.0f%%). If the regression is intended,\n", *threshold*100)
		fmt.Println("bless a new baseline: go run ./cmd/benchjson -benchtime 20 -o BENCH_baseline.json")
		os.Exit(1)
	}
	fmt.Println("\nperformance gate passed")
}
