// Command topoplan compares inter-node interconnect topologies for one
// workload: it runs the discrete-event simulator with the off-node network
// modelled as the paper's flat wire (bus-only), a 2D/3D torus and a
// two-level fat-tree, and reports the analytic-vs-simulated abstraction
// error per topology together with per-link utilisation — the Table 6
// abstraction-error study extended to richer networks.
//
// Usage:
//
//	topoplan -app sweep3d -grid 32 -ranks 256 -cores 2
//	topoplan -app lu -grid 48 -ranks 144 -topos torus2d,fattree -links 8
//	topoplan -app chimaera -grid 32 -ranks 64 -hopl 0.2 -linkg 0.001
//
// Per-link utilisation is busy time divided by the simulated makespan; the
// hottest links show where a topology saturates first.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/topo"
)

func main() {
	app := flag.String("app", "sweep3d", "benchmark: lu, sweep3d or chimaera")
	gridEdge := flag.Int("grid", 32, "cubic problem size (edge cells)")
	htile := flag.Int("htile", 0, "tile height (0: benchmark default)")
	ranks := flag.Int("ranks", 64, "MPI rank count")
	cores := flag.Int("cores", 2, "cores per node")
	topos := flag.String("topos", "bus,torus2d,torus3d,fattree", "comma-separated topologies to compare")
	linkG := flag.Float64("linkg", 0, "per-byte link occupancy µs/byte (0: machine G)")
	hopL := flag.Float64("hopl", 0, "per-hop router latency µs (0: default)")
	topLinks := flag.Int("links", 5, "hottest links to list per topology (0: none)")
	iters := flag.Int("iterations", 1, "wavefront iterations")
	flag.Parse()

	bm, err := benchmark(*app, *gridEdge, *htile)
	check(err)
	bm = bm.WithIterations(*iters)
	base, err := machine.XT4MultiCore(*cores)
	check(err)
	dec, err := grid.SquareDecomposition(bm.App.Grid, *ranks)
	check(err)

	rep, err := core.New(bm.App, base).Evaluate(dec)
	check(err)
	fmt.Printf("# %s %s, htile %d, P=%d on %s — %d nodes, model %.4g µs (uncontended LogGP)\n",
		bm.App.Name, bm.App.Grid, bm.App.Htile, dec.P(), base.Name, base.Nodes(dec.P()), rep.Total)

	type row struct {
		name    string
		ic      *topo.Interconnect
		res     simmpi.Result
		simTime float64
		hists   *obs.SimHists
	}
	var rows []row
	for _, name := range strings.Split(*topos, ",") {
		name = strings.TrimSpace(name)
		kind, err := topo.ParseKind(name)
		check(err)
		spec := topo.Spec{Kind: kind, LinkG: *linkG, HopL: *hopL}
		if kind == topo.Bus {
			spec = topo.Spec{}
		}
		mach := base.WithInterconnect(spec)

		sched, err := bm.Schedule(dec, *iters)
		check(err)
		t, err := simnet.NewMachineTopology(mach, dec)
		check(err)
		sim, err := simmpi.NewWithOptions(t, simmpi.Options{Obs: &obs.Recorder{Hist: true}})
		check(err)
		for r, p := range sched.Programs() {
			sim.SetProgram(r, p)
		}
		res, err := sim.Run()
		check(err)
		rows = append(rows, row{name: name, ic: t.Interconnect(), res: res, simTime: res.Time, hists: res.Hists})
	}

	fmt.Printf("%-10s %7s %12s %12s %9s %9s %13s %10s\n",
		"topology", "links", "model(µs)", "sim(µs)", "abs.err", "hops/msg", "link-wait(µs)", "max util")
	for _, r := range rows {
		hopsPerMsg := "-"
		if r.res.Sends > 0 && r.ic != nil {
			hopsPerMsg = fmt.Sprintf("%.2f", float64(r.res.LinkRequests)/float64(r.res.Sends))
		}
		maxUtil := "-"
		if r.ic != nil && r.simTime > 0 {
			maxUtil = fmt.Sprintf("%.2f%%", 100*r.ic.MaxLinkBusy()/r.simTime)
		}
		fmt.Printf("%-10s %7d %12.4g %12.4g %8.2f%% %9s %13.4g %10s\n",
			r.name, r.ic.LinkCount(), rep.Total, r.simTime,
			100*stats.RelErr(rep.Total, r.simTime), hopsPerMsg, r.res.LinkWait, maxUtil)
	}

	// Latency distributions: where the mean link-wait column above hides
	// tail contention, the per-message percentiles expose it.
	fmt.Printf("\n%-10s %14s %14s %14s %14s\n",
		"topology", "recv-wait p50", "recv-wait p99", "link-delay p50", "link-delay p99")
	for _, r := range rows {
		ld50, ld99 := "-", "-"
		if r.hists.LinkDelay.N() > 0 {
			ld50 = fmt.Sprintf("%.4g", r.hists.LinkDelay.Quantile(0.5))
			ld99 = fmt.Sprintf("%.4g", r.hists.LinkDelay.Quantile(0.99))
		}
		fmt.Printf("%-10s %14.4g %14.4g %14s %14s\n",
			r.name, r.hists.RecvWait.Quantile(0.5), r.hists.RecvWait.Quantile(0.99), ld50, ld99)
	}

	if *topLinks > 0 {
		for _, r := range rows {
			if r.ic == nil {
				continue
			}
			fmt.Printf("\n%s: %s, hop latency %.3g µs\n", r.name, r.ic.Describe(), r.ic.HopL())
			type linkRow struct {
				name         string
				busy, waited float64
				requests     uint64
			}
			var links []linkRow
			for i := 0; i < r.ic.LinkCount(); i++ {
				rq, _, busy, waited := r.ic.LinkStats(i)
				if rq > 0 {
					links = append(links, linkRow{r.ic.LinkName(i), busy, waited, rq})
				}
			}
			sort.Slice(links, func(a, b int) bool {
				if links[a].busy != links[b].busy {
					return links[a].busy > links[b].busy
				}
				if links[a].waited != links[b].waited {
					return links[a].waited > links[b].waited
				}
				return links[a].name < links[b].name
			})
			fmt.Printf("  %-12s %10s %9s %13s\n", "link", "messages", "util", "waited(µs)")
			for i, l := range links {
				if i >= *topLinks {
					fmt.Printf("  … %d more active links\n", len(links)-i)
					break
				}
				fmt.Printf("  %-12s %10d %8.2f%% %13.4g\n",
					l.name, l.requests, 100*l.busy/r.simTime, l.waited)
			}
		}
	}
}

// benchmark resolves a paper benchmark preset on a cubic grid.
func benchmark(name string, edge, htile int) (apps.Benchmark, error) {
	if edge <= 0 {
		return apps.Benchmark{}, fmt.Errorf("invalid grid edge %d", edge)
	}
	return apps.Preset(name, grid.Cube(edge), htile)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "topoplan:", err)
		os.Exit(1)
	}
}
