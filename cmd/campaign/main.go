// Command campaign executes declarative scenario sweeps: a JSON spec of
// applications × machines × rank counts × LogGP overrides expands into a
// deterministic run list that a worker pool of reusable simulators churns
// through, comparing the plug-and-play model against the discrete-event
// simulator on every run.
//
// Usage:
//
//	campaign -spec sweep.json [-workers N] [-shards K] [-out runs.jsonl] [-filter expr]
//	campaign -builtin example            # small built-in demonstration sweep
//	campaign -builtin flagship           # the 240-run design-space sweep
//	campaign -spec sweep.json -list      # show the expanded runs, don't execute
//	campaign -print-spec example         # print a built-in spec as JSON
//
// The JSONL output contains only deterministic fields: the same spec
// produces byte-identical files for any -workers value. Filters restrict
// the sweep, e.g. -filter "app=LU,p=64|256,override=baseline".
//
// Observability: -hist attaches duration histograms to every run (a
// "hists" field per JSONL row), while -chrome-trace and -sample-every
// flight-record the first filtered run into a Chrome trace-event timeline
// and a time-series CSV. All three outputs are byte-identical for any
// -workers or -shards value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/prof"
)

func main() {
	specPath := flag.String("spec", "", "campaign spec file (JSON)")
	builtin := flag.String("builtin", "", "run a built-in campaign: "+strings.Join(campaign.BuiltinNames(), ", "))
	printSpec := flag.String("print-spec", "", "print a built-in campaign spec as JSON and exit")
	list := flag.Bool("list", false, "list the expanded runs without executing")
	filter := flag.String("filter", "", "restrict runs, e.g. \"app=LU,p=64|256,override=baseline\"")
	workers := flag.Int("workers", 0, "worker pool size (default: GOMAXPROCS)")
	shards := flag.Int("shards", 0, "override the spec's simulator shard count (results are bit-identical for every sharded count)")
	out := flag.String("out", "", "write per-run results as JSONL to this file")
	hist := flag.Bool("hist", false, "attach duration-histogram percentiles to every run's JSONL row")
	chromeTrace := flag.String("chrome-trace", "", "write a Chrome trace-event timeline of the first run to this file")
	sampleEvery := flag.Float64("sample-every", 0, "sample the first run's time-series metrics every Δt µs")
	sampleOut := flag.String("sample-out", "samples.csv", "time-series CSV path for -sample-every")
	traceWindows := flag.Bool("trace-windows", false, "include per-shard lookahead-window tracks in -chrome-trace (these depend on -shards)")
	quiet := flag.Bool("quiet", false, "suppress the progress ticker and summary tables")
	pf := prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := pf.Start()
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fail(err)
		}
	}()

	if *printSpec != "" {
		spec, ok := campaign.Builtin(*printSpec)
		if !ok {
			fail(fmt.Errorf("unknown built-in campaign %q (want %s)", *printSpec, strings.Join(campaign.BuiltinNames(), ", ")))
		}
		data, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Println(string(data))
		return
	}

	var spec campaign.Spec
	switch {
	case *specPath != "" && *builtin != "":
		fail(fmt.Errorf("use -spec or -builtin, not both"))
	case *specPath != "":
		s, err := campaign.LoadSpec(*specPath)
		if err != nil {
			fail(err)
		}
		spec = s
	case *builtin != "":
		s, ok := campaign.Builtin(*builtin)
		if !ok {
			fail(fmt.Errorf("unknown built-in campaign %q (want %s)", *builtin, strings.Join(campaign.BuiltinNames(), ", ")))
		}
		spec = s
	default:
		flag.Usage()
		os.Exit(2)
	}

	runs, err := spec.Expand()
	if err != nil {
		fail(err)
	}
	if *filter != "" {
		f, err := campaign.ParseFilter(*filter)
		if err != nil {
			fail(err)
		}
		runs = f.Apply(runs)
	}
	if len(runs) == 0 {
		fail(fmt.Errorf("campaign %q has no runs after filtering", spec.Name))
	}

	if *list {
		for _, r := range runs {
			fmt.Printf("%4d  %s\n", r.Index, r.Key())
		}
		fmt.Printf("%d runs\n", len(runs))
		return
	}

	// Open the output before executing: an unwritable -out path must fail
	// here, not after minutes of sweeping. Parent directories are created.
	var outFile *os.File
	if *out != "" {
		if err := obs.EnsureParent(*out); err != nil {
			fail(fmt.Errorf("creating output directory: %w", err))
		}
		f, err := os.Create(*out)
		if err != nil {
			fail(fmt.Errorf("opening -out: %w", err))
		}
		outFile = f
	}

	eng := campaign.Engine{Workers: *workers, Shards: *shards, Hist: *hist}
	var rec *obs.Recorder
	if *chromeTrace != "" || *sampleEvery > 0 {
		rec = &obs.Recorder{Spans: true, Messages: true, Links: true, Windows: *traceWindows}
		eng.Obs = rec
		eng.ObsRun = runs[0].Index // flight-record the first filtered run
	}
	if !*quiet {
		eng.Progress = func(done, total int) {
			if done == total || done%50 == 0 {
				fmt.Fprintf(os.Stderr, "\r%d/%d runs", done, total)
			}
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	start := time.Now()
	results, err := eng.Execute(runs)
	wall := time.Since(start)
	if err != nil {
		// Write what completed before failing: partial JSONL aids triage.
		writeOut(outFile, results)
		fail(err)
	}
	writeOut(outFile, results)

	if rec != nil {
		if *chromeTrace != "" {
			if err := writeArtifact(*chromeTrace, func(f *os.File) error {
				return obs.WriteTimeline(f, rec, obs.TimelineOptions{})
			}); err != nil {
				fail(err)
			}
		}
		if *sampleEvery > 0 {
			if err := writeArtifact(*sampleOut, func(f *os.File) error {
				return obs.WriteSamples(f, rec, *sampleEvery)
			}); err != nil {
				fail(err)
			}
		}
	}

	if !*quiet {
		campaign.RenderSummary(os.Stdout, spec.Name, results, campaign.Summarize(results))
		w := eng.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		fmt.Printf("  wall time: %.2fs with %d workers (%.0f runs/s)\n",
			wall.Seconds(), w, float64(len(results))/wall.Seconds())
	}
}

// writeArtifact creates path (parents included) and streams one
// observability artifact into it.
func writeArtifact(path string, write func(*os.File) error) error {
	if err := obs.EnsureParent(path); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeOut writes the JSONL results to the pre-opened -out file, if any.
func writeOut(f *os.File, results []campaign.RunResult) {
	if f == nil {
		return
	}
	if err := campaign.WriteJSONL(f, results); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	msg := err.Error()
	if !strings.HasPrefix(msg, "campaign:") {
		msg = "campaign: " + msg
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}
