// Command campaign executes declarative scenario sweeps: a JSON spec of
// applications × machines × rank counts × LogGP overrides expands into a
// deterministic run list that a worker pool of reusable simulators churns
// through, comparing the plug-and-play model against the discrete-event
// simulator on every run.
//
// Usage:
//
//	campaign -spec sweep.json [-workers N] [-shards K] [-out runs.jsonl] [-filter expr]
//	campaign -builtin example            # small built-in demonstration sweep
//	campaign -builtin flagship           # the 240-run design-space sweep
//	campaign -spec sweep.json -list      # show the expanded runs, don't execute
//	campaign -print-spec example         # print a built-in spec as JSON
//
// The JSONL output contains only deterministic fields: the same spec
// produces byte-identical files for any -workers value. Filters restrict
// the sweep, e.g. -filter "app=LU,p=64|256,override=baseline".
//
// Serving-layer features (see campaign.Config):
//
//	-cache-dir DIR   memoize results by content address in DIR/cache.jsonl;
//	                 re-running an overlapping sweep serves repeated runs
//	                 from the cache, byte-identical to cold execution
//	-range I/N       execute only slice I of N of the filtered run list
//	                 (deterministic partitioning for multi-process sweeps)
//	-checkpoint DIR  append each finished row to a per-range checkpoint
//	                 file; re-running after a crash resumes where it died
//	-merge           reassemble the full -out JSONL from DIR's checkpoints
//	                 (byte-identical to a single-process run) and exit
//
// Observability: -hist attaches duration histograms to every run (a
// "hists" field per JSONL row), while -chrome-trace and -sample-every
// flight-record the first filtered run into a Chrome trace-event timeline
// and a time-series CSV. All three outputs are byte-identical for any
// -workers or -shards value. When a -range excludes the flight-recorded
// run, no trace artifacts are written; recorded artifacts from ranged runs
// get a ".lo-hi" path suffix so ranges never clobber each other.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/cliflags"
	"repro/internal/obs"
	"repro/internal/prof"
)

func main() {
	specPath := flag.String("spec", "", "campaign spec file (JSON)")
	builtin := flag.String("builtin", "", "run a built-in campaign: "+strings.Join(campaign.BuiltinNames(), ", "))
	printSpec := flag.String("print-spec", "", "print a built-in campaign spec as JSON and exit")
	list := flag.Bool("list", false, "list the expanded runs without executing")
	filter := flag.String("filter", "", "restrict runs, e.g. \"app=LU,p=64|256,override=baseline\"")
	workers := cliflags.RegisterWorkers(flag.CommandLine)
	shards := cliflags.RegisterShards(flag.CommandLine, 0)
	out := flag.String("out", "", "write per-run results as JSONL to this file")
	rangeSpec := flag.String("range", "", "execute slice I of N of the run list, e.g. 0/4")
	ckptDir := flag.String("checkpoint", "", "checkpoint finished rows into this directory and resume from it")
	merge := flag.Bool("merge", false, "merge -checkpoint files into -out and exit (requires both flags)")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache directory (cache.jsonl inside it)")
	obsFlags := cliflags.RegisterObs(flag.CommandLine)
	quiet := flag.Bool("quiet", false, "suppress the progress ticker and summary tables")
	pf := prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := pf.Start()
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fail(err)
		}
	}()

	if *printSpec != "" {
		spec, ok := campaign.Builtin(*printSpec)
		if !ok {
			fail(fmt.Errorf("unknown built-in campaign %q (want %s)", *printSpec, strings.Join(campaign.BuiltinNames(), ", ")))
		}
		data, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Println(string(data))
		return
	}

	var spec campaign.Spec
	switch {
	case *specPath != "" && *builtin != "":
		fail(fmt.Errorf("use -spec or -builtin, not both"))
	case *specPath != "":
		s, err := campaign.LoadSpec(*specPath)
		if err != nil {
			fail(err)
		}
		spec = s
	case *builtin != "":
		s, ok := campaign.Builtin(*builtin)
		if !ok {
			fail(fmt.Errorf("unknown built-in campaign %q (want %s)", *builtin, strings.Join(campaign.BuiltinNames(), ", ")))
		}
		spec = s
	default:
		flag.Usage()
		os.Exit(2)
	}

	// The expansion is needed up front for -list, -merge (total run count)
	// and flight-recorder targeting; execution re-expands inside
	// ExecuteSpec, which is cheap and keeps one code path.
	runs, err := spec.Expand()
	if err != nil {
		fail(err)
	}
	if *filter != "" {
		f, err := campaign.ParseFilter(*filter)
		if err != nil {
			fail(err)
		}
		runs = f.Apply(runs)
	}
	if len(runs) == 0 {
		fail(fmt.Errorf("campaign %q has no runs after filtering", spec.Name))
	}

	if *list {
		for _, r := range runs {
			fmt.Printf("%4d  %s\n", r.Index, r.Key())
		}
		fmt.Printf("%d runs\n", len(runs))
		return
	}

	if *merge {
		if *ckptDir == "" || *out == "" {
			fail(fmt.Errorf("-merge needs -checkpoint and -out"))
		}
		if err := obs.EnsureParent(*out); err != nil {
			fail(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := campaign.MergeCheckpoints(*ckptDir, len(runs), f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		if !*quiet {
			fmt.Printf("merged %d runs from %s into %s\n", len(runs), *ckptDir, *out)
		}
		return
	}

	cfg := campaign.Config{
		Workers:       *workers,
		Shards:        *shards,
		Hist:          obsFlags.Hist,
		Filter:        *filter,
		Output:        *out,
		CheckpointDir: *ckptDir,
	}
	part, parts, err := parseRange(*rangeSpec)
	if err != nil {
		fail(err)
	}
	cfg.RangePart, cfg.RangeParts = part, parts

	var store *campaign.DiskStore
	if *cacheDir != "" {
		store, err = campaign.OpenDiskStore(filepath.Join(*cacheDir, "cache.jsonl"))
		if err != nil {
			fail(err)
		}
		defer store.Close()
		cfg.Store = store
	}

	rec := obsFlags.Recorder()
	if rec != nil {
		cfg.Obs = rec
		cfg.ObsRun = runs[0].Index // flight-record the first filtered run
	}
	if !*quiet {
		cfg.Progress = func(done, total int) {
			if done == total || done%50 == 0 {
				fmt.Fprintf(os.Stderr, "\r%d/%d runs", done, total)
			}
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	eng, err := campaign.NewEngine(cfg)
	if err != nil {
		fail(err)
	}
	start := time.Now()
	results, err := eng.ExecuteSpec(spec)
	wall := time.Since(start)
	if err != nil {
		fail(err)
	}

	// A range that excludes the flight-recorded run leaves the recorder
	// empty; only write artifacts when this process executed that run, and
	// suffix their paths with the range so concurrent parts stay apart.
	if rec != nil && rangeContains(results, cfg.ObsRun) {
		pathFn := func(p string) string { return p }
		if cfg.RangeParts > 1 && len(results) > 0 {
			lo := results[0].Index
			hi := results[len(results)-1].Index + 1
			pathFn = func(p string) string { return obs.RangePath(p, lo, hi) }
		}
		if err := obsFlags.WriteArtifacts(rec, obs.TimelineOptions{}, pathFn); err != nil {
			fail(err)
		}
	}

	if !*quiet {
		campaign.RenderSummary(os.Stdout, spec.Name, results, campaign.Summarize(results))
		w := cfg.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		st := eng.Stats()
		fmt.Printf("  wall time: %.2fs with %d workers (%.0f runs/s)\n",
			wall.Seconds(), w, float64(len(results))/wall.Seconds())
		if st.CacheHits > 0 || st.CheckpointHits > 0 {
			fmt.Printf("  served: %d simulated, %d cache hits, %d checkpoint hits\n",
				st.Simulated, st.CacheHits, st.CheckpointHits)
		}
		if store != nil {
			cs := store.Stats()
			fmt.Printf("  cache: %d entries, %d hits / %d misses this invocation\n",
				cs.Entries, cs.Hits, cs.Misses)
		}
	}
}

// parseRange parses the -range I/N syntax; empty means the whole list.
func parseRange(s string) (part, parts int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &part, &parts); err != nil {
		return 0, 0, fmt.Errorf("campaign: -range wants I/N (e.g. 0/4), got %q", s)
	}
	if parts < 1 || part < 0 || part >= parts {
		return 0, 0, fmt.Errorf("campaign: -range %q out of bounds", s)
	}
	return part, parts, nil
}

// rangeContains reports whether the executed slice includes the run index.
func rangeContains(results []campaign.RunResult, index int) bool {
	for i := range results {
		if results[i].Index == index {
			return true
		}
	}
	return false
}

func fail(err error) {
	msg := err.Error()
	if !strings.HasPrefix(msg, "campaign:") {
		msg = "campaign: " + msg
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}
