// Command collplan studies MPI collective algorithms on a simulated
// machine: for each algorithm it reports the closed-form LogGP prediction,
// the discrete-event completion time (point-to-point constituents contending
// for node buses and interconnect links) and the model's abstraction error;
// it then scans message sizes to locate the ring vs recursive-doubling
// all-reduce crossover — the size above which the ring's P-times-smaller
// chunks beat recursive doubling's fewer rounds.
//
// Usage:
//
//	collplan -ranks 64 -cores 2
//	collplan -ranks 256 -cores 2 -topo torus2d -bytes 65536
//	collplan -ranks 32 -topo fattree -minbytes 8 -maxbytes 4194304
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/coll"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/simmpi"
	"repro/internal/stats"
	"repro/internal/topo"
)

func main() {
	ranks := flag.Int("ranks", 64, "MPI rank count")
	cores := flag.Int("cores", 2, "cores per node")
	topoName := flag.String("topo", "bus", "interconnect: bus, torus2d, torus3d or fattree")
	bytes := flag.Int("bytes", 65536, "payload size for the per-algorithm table")
	minBytes := flag.Int("minbytes", 8, "crossover scan start size")
	maxBytes := flag.Int("maxbytes", 1<<20, "crossover scan end size")
	flag.Parse()

	if *minBytes <= 0 || *maxBytes < *minBytes {
		fmt.Fprintf(os.Stderr, "collplan: invalid scan range [%d, %d]\n", *minBytes, *maxBytes)
		os.Exit(1)
	}
	kind, err := topo.ParseKind(*topoName)
	check(err)
	mach, err := machine.XT4MultiCore(*cores)
	check(err)
	if kind != topo.Bus {
		mach = mach.WithInterconnect(topo.Spec{Kind: kind})
	}
	fmt.Printf("# collectives over %d ranks on %s\n", *ranks, mach)

	cs := []coll.Collective{
		{Kind: coll.Bcast, Alg: simmpi.AlgBinomial, Bytes: *bytes},
		{Kind: coll.Allreduce, Alg: simmpi.AlgRing, Bytes: *bytes},
		{Kind: coll.Allreduce, Alg: simmpi.AlgRecDouble, Bytes: *bytes},
		{Kind: coll.Barrier},
	}
	runner := coll.Runner{Obs: &obs.Recorder{Hist: true}}
	fmt.Printf("%-26s %12s %12s %10s %9s %13s %13s %11s %11s\n",
		"collective", "model(µs)", "sim(µs)", "model err", "messages", "bus wait(µs)", "link wait(µs)",
		"wait p50", "wait p99")
	for _, c := range cs {
		runner.Obs.Reset() // per-collective percentiles, not cumulative
		res, err := runner.Run(mach, *ranks, c)
		check(err)
		model := c.Model(mach, *ranks)
		w50, w99 := "-", "-"
		if h := &res.Hists.RecvWait; h.N() > 0 {
			w50 = fmt.Sprintf("%.4g", h.Quantile(0.5))
			w99 = fmt.Sprintf("%.4g", h.Quantile(0.99))
		}
		fmt.Printf("%-26s %12.4g %12.4g %+9.2f%% %9d %13.4g %13.4g %11s %11s\n",
			c.String(), model, res.Time,
			100*stats.SignedRelErr(model, res.Time), res.Sends, res.BusWait, res.LinkWait, w50, w99)
	}

	var sizes []int
	for s := *minBytes; s <= *maxBytes; s *= 2 {
		sizes = append(sizes, s)
	}
	pts, err := coll.CrossoverScan(mach, *ranks, sizes)
	check(err)
	fmt.Printf("\n# ring vs recursive-doubling all-reduce by payload size\n")
	fmt.Printf("%10s %12s %12s %9s\n", "bytes", "ring(µs)", "recdbl(µs)", "winner")
	for _, pt := range pts {
		winner := "recdouble"
		if pt.Ring <= pt.RecDouble {
			winner = "ring"
		}
		fmt.Printf("%10d %12.4g %12.4g %9s\n", pt.Bytes, pt.Ring, pt.RecDouble, winner)
	}
	if cross := coll.Crossover(pts); cross >= 0 {
		fmt.Printf("crossover: ring wins from %d bytes\n", cross)
	} else {
		fmt.Printf("crossover: recursive doubling wins across the scanned range\n")
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "collplan:", err)
		os.Exit(1)
	}
}
