package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/cliflags"
	"repro/internal/hypothesis"
)

// TestFlagInventory pins hypoth's flag surface and checks the shared flags
// carry the shared registry's help text.
func TestFlagInventory(t *testing.T) {
	fs := flag.NewFlagSet("hypoth", flag.ContinueOnError)
	registerFlags(fs)
	var got []string
	fs.VisitAll(func(f *flag.Flag) { got = append(got, f.Name) })
	sort.Strings(got)
	want := []string{"all", "list", "out", "run", "shards", "workers"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("flag inventory drifted:\n got %v\nwant %v", got, want)
	}

	shared := flag.NewFlagSet("shared", flag.ContinueOnError)
	cliflags.RegisterWorkers(shared)
	cliflags.RegisterShards(shared, 2)
	for _, name := range []string{"workers", "shards"} {
		if fs.Lookup(name).Usage != shared.Lookup(name).Usage {
			t.Errorf("-%s help text differs from the cliflags registry", name)
		}
	}
	if fs.Lookup("shards").DefValue != "2" {
		t.Errorf("-shards default = %s, want 2 (the canonical event-order family)", fs.Lookup("shards").DefValue)
	}
}

// TestRunList: -list prints every builtin experiment ID.
func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, e := range hypothesis.Builtin() {
		if !strings.Contains(out.String(), e.ID) {
			t.Errorf("-list output lacks %q", e.ID)
		}
	}
}

// TestRunOne executes one cheap builtin experiment end to end and checks
// the report files and the stdout verdict line.
func TestRunOne(t *testing.T) {
	dir := t.TempDir()
	id := "strong-scaling-16-to-64"
	var out bytes.Buffer
	if err := run([]string{"-run", id, "-out", dir, "-workers", "2"}, &out); err != nil {
		t.Fatalf("run -run %s: %v", id, err)
	}
	if !strings.Contains(out.String(), id) || !strings.Contains(out.String(), "median") {
		t.Errorf("verdict line missing from output: %q", out.String())
	}
	for _, ext := range []string{".json", ".md"} {
		data, err := os.ReadFile(filepath.Join(dir, id+ext))
		if err != nil {
			t.Fatalf("report %s: %v", ext, err)
		}
		if len(data) == 0 {
			t.Errorf("report %s is empty", ext)
		}
	}
}

// TestRunErrors: the error paths return errors instead of exiting.
func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "no-such-id"}, &out); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown id: %v", err)
	}
	if err := run([]string{}, &out); err == nil {
		t.Error("no action flag accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
