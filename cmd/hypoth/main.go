// Command hypoth runs controlled experiments over the campaign engine:
// paired baseline/treatment campaigns differing in exactly one
// machine-checked dimension, executed across multiple workload seeds with
// standing invariant checks, rendered into confirm/refute reports.
//
// Usage:
//
//	hypoth -list
//	hypoth -run <id> [-out DIR] [-workers N] [-shards K]
//	hypoth -all [-out DIR] [-workers N] [-shards K]
//
// Each experiment writes <out>/<id>.json and <out>/<id>.md; -all also
// writes the <out>/README.md index. Reports contain only deterministic
// content, and shard counts are clamped into the canonical (≥ 2) family,
// so the files are byte-identical for every -workers/-shards setting —
// CI regenerates the committed hypotheses/ directory and diffs it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/cliflags"
	"repro/internal/hypothesis"
)

// hypothFlags is the command's flag surface; registration is separated
// from run so tests can pin the inventory against the shared cliflags
// registry.
type hypothFlags struct {
	list    *bool
	runID   *string
	all     *bool
	out     *string
	workers *int
	shards  *int
}

func registerFlags(fs *flag.FlagSet) hypothFlags {
	return hypothFlags{
		list:    fs.Bool("list", false, "list the builtin experiments and exit"),
		runID:   fs.String("run", "", "run one builtin experiment by id"),
		all:     fs.Bool("all", false, "run the whole builtin suite and write the index"),
		out:     fs.String("out", "hypotheses", "directory the reports are written to"),
		workers: cliflags.RegisterWorkers(fs),
		shards:  cliflags.RegisterShards(fs, 2),
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hypoth:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hypoth", flag.ContinueOnError)
	f := registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *f.list:
		return list(out)
	case *f.runID != "":
		e, ok := hypothesis.BuiltinByID(*f.runID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *f.runID)
		}
		_, err := execute(out, *f.out, hypothesis.Config{Workers: *f.workers, Shards: *f.shards}, e)
		return err
	case *f.all:
		cfg := hypothesis.Config{Workers: *f.workers, Shards: *f.shards}
		var reports []*hypothesis.Report
		for _, e := range hypothesis.Builtin() {
			rep, err := execute(out, *f.out, cfg, e)
			if err != nil {
				return err
			}
			reports = append(reports, rep)
		}
		if err := writeReport(filepath.Join(*f.out, "README.md"), func(w *os.File) error {
			return hypothesis.WriteIndex(w, reports)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d reports and the index to %s\n", len(reports), *f.out)
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("one of -list, -run or -all is required")
	}
}

// list prints the builtin suite.
func list(out io.Writer) error {
	for _, e := range hypothesis.Builtin() {
		fmt.Fprintf(out, "%-40s %-16s %-10s %-9s %s\n", e.ID, e.Family, e.Metric, e.Direction, e.Title)
	}
	return nil
}

// execute runs one experiment and writes its JSON and Markdown reports.
func execute(out io.Writer, dir string, cfg hypothesis.Config, e hypothesis.Experiment) (*hypothesis.Report, error) {
	rep, err := hypothesis.Run(e, cfg)
	if err != nil {
		return nil, err
	}
	if err := writeReport(filepath.Join(dir, e.ID+".json"), func(f *os.File) error {
		return rep.WriteJSON(f)
	}); err != nil {
		return nil, err
	}
	if err := writeReport(filepath.Join(dir, e.ID+".md"), func(f *os.File) error {
		return rep.WriteMarkdown(f)
	}); err != nil {
		return nil, err
	}
	inv := "invariants pass"
	if !rep.InvariantsPass() {
		inv = "INVARIANTS VIOLATED"
	}
	fmt.Fprintf(out, "%-40s %-13s median %+.2f%%  %s\n", e.ID, rep.Verdict, rep.Effect.Median*100, inv)
	return rep, nil
}

// writeReport creates path (parents included) and streams one report into
// it.
func writeReport(path string, write func(*os.File) error) error {
	return cliflags.WriteArtifact(path, write)
}
