package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/cliflags"
)

// TestRunStartStop drives the daemon through a full lifecycle: start on an
// ephemeral port with a disk-backed cache, serve a request, then stop via
// the graceful-shutdown path and check the deferred cleanups ran (the
// disk cache file must exist and run must return nil — not os.Exit).
func TestRunStartStop(t *testing.T) {
	dir := t.TempDir()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-cache-dir", dir}, ready, stop)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d %q", resp.StatusCode, body)
	}

	// Submit a tiny campaign so shutdown exercises a daemon that did work.
	spec := strings.NewReader(`{
	  "name": "smoke",
	  "apps": [{"preset": "lu", "grid": {"nx": 8, "ny": 8, "nz": 8}}],
	  "machines": [{"preset": "xt4", "cores_per_node": 1}],
	  "ranks": [4]
	}`)
	resp, err = http.Post("http://"+addr+"/v1/campaigns", "application/json", spec)
	if err != nil {
		t.Fatalf("POST /v1/campaigns: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/campaigns = %d, want 202", resp.StatusCode)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on graceful stop", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	if _, err := os.Stat(filepath.Join(dir, "cache.jsonl")); err != nil {
		t.Errorf("disk cache was not closed cleanly: %v", err)
	}

	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("daemon still serving after shutdown")
	}
}

// TestRunListenError: a listener failure must surface as an error return
// (running the deferred cleanups), not hang or os.Exit.
func TestRunListenError(t *testing.T) {
	err := run([]string{"-addr", "256.256.256.256:0"}, nil, nil)
	if err == nil {
		t.Fatal("run accepted an unlistenable address")
	}
}

// TestFlagInventory pins campaignd's flag surface and checks the shared
// flags carry the shared registry's help text — a drift back to an inline
// definition (the old -hist bug) fails here.
func TestFlagInventory(t *testing.T) {
	fs := flag.NewFlagSet("campaignd", flag.ContinueOnError)
	registerFlags(fs)
	var got []string
	fs.VisitAll(func(f *flag.Flag) { got = append(got, f.Name) })
	sort.Strings(got)
	want := []string{"addr", "cache-dir", "cache-size", "cpuprofile", "exectrace",
		"hist", "memprofile", "shards", "workers"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("flag inventory drifted:\n got %v\nwant %v", got, want)
	}

	shared := flag.NewFlagSet("shared", flag.ContinueOnError)
	cliflags.RegisterHist(shared)
	cliflags.RegisterWorkers(shared)
	cliflags.RegisterShards(shared, 0)
	obsFS := flag.NewFlagSet("obs", flag.ContinueOnError)
	cliflags.RegisterObs(obsFS)
	for _, name := range []string{"hist", "workers", "shards"} {
		if fs.Lookup(name).Usage != shared.Lookup(name).Usage {
			t.Errorf("-%s help text differs from the cliflags registry", name)
		}
	}
	if fs.Lookup("hist").Usage != obsFS.Lookup("hist").Usage {
		t.Error("-hist help text differs between RegisterHist and RegisterObs")
	}
}
