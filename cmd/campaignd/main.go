// Command campaignd serves campaign execution over HTTP/JSON. Clients
// POST a campaign spec and poll for status and results while the daemon
// executes runs on its worker pool; every campaign shares one
// content-addressed result cache, so overlapping sweeps submitted by
// different clients (or the same client twice) are served from cache,
// byte-identical to cold execution.
//
// Usage:
//
//	campaignd [-addr :8080] [-workers N] [-shards K] [-cache-size N] [-cache-dir DIR]
//
// Endpoints:
//
//	POST /v1/campaigns           submit a spec (the JSON format of
//	                             `campaign -print-spec example`), 202 + id
//	GET  /v1/campaigns           list submitted campaigns
//	GET  /v1/campaigns/{id}      status: state, done/total, exec stats
//	GET  /v1/campaigns/{id}/results   results as JSONL, index order
//	GET  /v1/cache/stats         shared cache hit/miss counters
//	GET  /healthz                liveness probe
//
// Every JSON response and JSONL row carries a "schema_version" field; see
// the README's campaign-service section for the compatibility rule.
//
// With -cache-dir the cache is tiered: an in-memory LRU in front of a
// persistent JSONL file in that directory, so a restarted daemon keeps its
// accumulated results.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"repro/internal/campaign"
	"repro/internal/cliflags"
	"repro/internal/prof"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := cliflags.RegisterWorkers(flag.CommandLine)
	shards := cliflags.RegisterShards(flag.CommandLine, 0)
	hist := flag.Bool("hist", false, "attach duration-histogram percentiles to every run's JSONL row")
	cacheSize := flag.Int("cache-size", 0, "in-memory cache capacity in results (default 65536)")
	cacheDir := flag.String("cache-dir", "", "persist the cache to cache.jsonl in this directory (tiered under the in-memory LRU)")
	pf := prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := pf.Start()
	check(err)
	defer func() { check(stopProf()) }()

	var store campaign.ResultStore = campaign.NewMemoryStore(*cacheSize)
	if *cacheDir != "" {
		disk, err := campaign.OpenDiskStore(filepath.Join(*cacheDir, "cache.jsonl"))
		check(err)
		defer disk.Close()
		store = campaign.NewTieredStore(store, disk)
	}

	srv, err := campaign.NewServer(campaign.Config{
		Workers: *workers,
		Shards:  *shards,
		Hist:    *hist,
		Store:   store,
	})
	check(err)

	fmt.Printf("campaignd: listening on %s (POST a spec to /v1/campaigns)\n", *addr)
	check(http.ListenAndServe(*addr, srv.Handler()))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}
}
