// Command campaignd serves campaign execution over HTTP/JSON. Clients
// POST a campaign spec and poll for status and results while the daemon
// executes runs on its worker pool; every campaign shares one
// content-addressed result cache, so overlapping sweeps submitted by
// different clients (or the same client twice) are served from cache,
// byte-identical to cold execution.
//
// Usage:
//
//	campaignd [-addr :8080] [-workers N] [-shards K] [-cache-size N] [-cache-dir DIR]
//
// Endpoints:
//
//	POST /v1/campaigns           submit a spec (the JSON format of
//	                             `campaign -print-spec example`), 202 + id
//	GET  /v1/campaigns           list submitted campaigns
//	GET  /v1/campaigns/{id}      status: state, done/total, exec stats
//	GET  /v1/campaigns/{id}/results   results as JSONL, index order
//	GET  /v1/cache/stats         shared cache hit/miss counters
//	GET  /healthz                liveness probe
//
// Every JSON response and JSONL row carries a "schema_version" field; see
// the README's campaign-service section for the compatibility rule.
//
// With -cache-dir the cache is tiered: an in-memory LRU in front of a
// persistent JSONL file in that directory, so a restarted daemon keeps its
// accumulated results.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight responses
// get a drain window, then the disk cache and profiles are flushed and
// closed before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/cliflags"
	"repro/internal/prof"
)

// daemonFlags is campaignd's flag surface; registration is separated from
// run so tests can pin the inventory against the shared cliflags registry.
type daemonFlags struct {
	addr      *string
	workers   *int
	shards    *int
	hist      *bool
	cacheSize *int
	cacheDir  *string
	prof      *prof.Flags
}

func registerFlags(fs *flag.FlagSet) daemonFlags {
	return daemonFlags{
		addr:      fs.String("addr", ":8080", "listen address"),
		workers:   cliflags.RegisterWorkers(fs),
		shards:    cliflags.RegisterShards(fs, 0),
		hist:      cliflags.RegisterHist(fs),
		cacheSize: fs.Int("cache-size", 0, "in-memory cache capacity in results (default 65536)"),
		cacheDir:  fs.String("cache-dir", "", "persist the cache to cache.jsonl in this directory (tiered under the in-memory LRU)"),
		prof:      prof.Register(fs),
	}
}

func main() {
	if err := run(os.Args[1:], nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}
}

// run is the daemon body: it returns (rather than os.Exit-ing) so the
// deferred cleanups — disk-cache close, profile flush, listener close —
// execute on every path, including serve errors and signal-triggered
// shutdown. ready, if non-nil, receives the bound address once the
// listener is up; closing stop requests the same graceful shutdown a
// SIGINT/SIGTERM would (both are for tests — main passes nil).
func run(args []string, ready chan<- string, stop <-chan struct{}) (err error) {
	fs := flag.NewFlagSet("campaignd", flag.ContinueOnError)
	f := registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := f.prof.Start()
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, stopProf()) }()

	var store campaign.ResultStore = campaign.NewMemoryStore(*f.cacheSize)
	if *f.cacheDir != "" {
		disk, derr := campaign.OpenDiskStore(filepath.Join(*f.cacheDir, "cache.jsonl"))
		if derr != nil {
			return derr
		}
		defer func() { err = errors.Join(err, disk.Close()) }()
		store = campaign.NewTieredStore(store, disk)
	}

	srv, err := campaign.NewServer(campaign.Config{
		Workers: *f.workers,
		Shards:  *f.shards,
		Hist:    *f.hist,
		Store:   store,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *f.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		// Results of a large campaign stream as one response; give the
		// writer a generous but bounded window so a stalled client cannot
		// pin a connection forever.
		WriteTimeout: 10 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	fmt.Printf("campaignd: listening on %s (POST a spec to /v1/campaigns)\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Serve only returns before Shutdown on listener failure.
		return err
	case <-ctx.Done():
	case <-stop:
	}

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	<-serveErr // drain the ErrServerClosed that Shutdown makes Serve return
	return nil
}
