// Command pingpong runs the MPI ping-pong microbenchmark of paper Section 3
// on the simulated platform and prints the half round-trip times together
// with the Table 1 model predictions (Figure 3), then derives the platform
// parameters (Table 2).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fitting"
	"repro/internal/logp"
	"repro/internal/machine"
)

func main() {
	rounds := flag.Int("rounds", 4, "round trips per message size")
	onchip := flag.Bool("onchip", false, "measure the on-chip path instead of off-node")
	flag.Parse()

	mach := machine.XT4()
	path := logp.OffNode
	if *onchip {
		path = logp.OnChip
	}
	sizes := fitting.DefaultSizes()
	meas, err := fitting.Sweep(mach, path, sizes, *rounds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pingpong:", err)
		os.Exit(1)
	}
	model := fitting.ModelCurve(mach.Params, path, sizes)
	fmt.Printf("# %s ping-pong on %s\n", path, mach.Name)
	fmt.Printf("%10s %14s %14s\n", "bytes", "simulated(µs)", "model(µs)")
	for i := range meas {
		fmt.Printf("%10d %14.4f %14.4f\n", meas[i].Bytes, meas[i].Time, model[i].Time)
	}

	d, err := fitting.DeriveTable2(mach)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pingpong:", err)
		os.Exit(1)
	}
	fmt.Println("\n# derived platform parameters (Table 2)")
	fmt.Printf("G      = %.6f µs/byte (1/G = %.2f GB/s)\n", d.G, 1/d.G/1e3)
	fmt.Printf("L      = %.4f µs\n", d.L)
	fmt.Printf("o      = %.4f µs\n", d.O)
	fmt.Printf("Gcopy  = %.6f µs/byte\n", d.Gcopy)
	fmt.Printf("Gdma   = %.6f µs/byte\n", d.Gdma)
	fmt.Printf("ocopy  = %.4f µs\n", d.Ocopy)
	fmt.Printf("o-chip = %.4f µs\n", d.Ochip)
}
